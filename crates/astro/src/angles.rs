//! Angle helpers: normalization, wrapping, and degree/radian conversion.

use core::f64::consts::{PI, TAU};

/// Normalizes an angle to `[0, 2π)`.
#[inline]
pub fn wrap_two_pi(angle: f64) -> f64 {
    let a = angle % TAU;
    if a < 0.0 {
        a + TAU
    } else {
        a
    }
}

/// Normalizes an angle to `(-π, π]`.
#[inline]
pub fn wrap_pi(angle: f64) -> f64 {
    let a = wrap_two_pi(angle);
    if a > PI {
        a - TAU
    } else {
        a
    }
}

/// Smallest absolute angular separation between two angles \[rad\],
/// in `[0, π]`.
#[inline]
pub fn separation(a: f64, b: f64) -> f64 {
    wrap_pi(a - b).abs()
}

/// Converts degrees to radians.
#[inline]
pub fn deg2rad(deg: f64) -> f64 {
    deg.to_radians()
}

/// Converts radians to degrees.
#[inline]
pub fn rad2deg(rad: f64) -> f64 {
    rad.to_degrees()
}

/// Wraps an hour-of-day value to `[0, 24)`.
#[inline]
pub fn wrap_hours(h: f64) -> f64 {
    let r = h % 24.0;
    if r < 0.0 {
        r + 24.0
    } else {
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_two_pi_ranges() {
        assert!((wrap_two_pi(-0.1) - (TAU - 0.1)).abs() < 1e-12);
        assert!((wrap_two_pi(TAU + 0.3) - 0.3).abs() < 1e-12);
        assert_eq!(wrap_two_pi(0.0), 0.0);
    }

    #[test]
    fn wrap_pi_ranges() {
        assert!((wrap_pi(PI + 0.1) - (-PI + 0.1)).abs() < 1e-12);
        assert!((wrap_pi(-PI - 0.1) - (PI - 0.1)).abs() < 1e-12);
        assert!((wrap_pi(PI) - PI).abs() < 1e-12);
    }

    #[test]
    fn separation_is_symmetric_and_small() {
        assert!((separation(0.1, TAU - 0.1) - 0.2).abs() < 1e-12);
        assert!((separation(TAU - 0.1, 0.1) - 0.2).abs() < 1e-12);
        assert!(separation(1.0, 1.0) < 1e-15);
    }

    #[test]
    fn wrap_hours_ranges() {
        assert!((wrap_hours(-1.0) - 23.0).abs() < 1e-12);
        assert!((wrap_hours(25.5) - 1.5).abs() < 1e-12);
        assert_eq!(wrap_hours(0.0), 0.0);
    }
}
