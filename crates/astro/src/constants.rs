//! Physical and astronomical constants used throughout the workspace.
//!
//! Values follow Vallado, *Fundamentals of Astrodynamics and Applications*
//! (the paper's astrodynamics reference), WGS-84/EGM-96 where applicable.

/// Earth gravitational parameter μ = GM⊕ \[km³/s²\] (EGM-96).
pub const EARTH_MU: f64 = 398_600.441_8;

/// Earth equatorial radius \[km\] (WGS-84).
///
/// Used both as the orbital reference radius for J2 and as the spherical
/// Earth radius for coverage geometry (the paper works at spherical-Earth
/// fidelity).
pub const EARTH_RADIUS_KM: f64 = 6378.137;

/// Earth second zonal harmonic J₂ (dimensionless, EGM-96).
///
/// J₂ drives the secular nodal precession that sun-synchronous orbits
/// exploit: `Ω̇ = -(3/2) J₂ n (Re/p)² cos i`.
pub const EARTH_J2: f64 = 1.082_626_68e-3;

/// Earth inertial rotation rate \[rad/s\] (sidereal).
pub const EARTH_ROTATION_RATE: f64 = 7.292_115_146_706_979e-5;

/// Mean solar day \[s\].
pub const SOLAR_DAY_S: f64 = 86_400.0;

/// Sidereal day \[s\] — one Earth rotation relative to the stars.
pub const SIDEREAL_DAY_S: f64 = 86_164.090_53;

/// Mean tropical year \[days\] — drives the required sun-synchronous nodal
/// precession rate of 360° per year.
pub const TROPICAL_YEAR_DAYS: f64 = 365.242_19;

/// Required nodal precession rate for a sun-synchronous orbit \[rad/s\]:
/// one full revolution of the ascending node per tropical year, eastward.
pub const SUN_SYNC_NODE_RATE: f64 =
    2.0 * core::f64::consts::PI / (TROPICAL_YEAR_DAYS * SOLAR_DAY_S);

/// Obliquity of the ecliptic at J2000 \[rad\] (23.439 291°).
pub const OBLIQUITY_J2000: f64 = 0.409_092_804_222_329_3;

/// Astronomical unit \[km\].
pub const AU_KM: f64 = 1.495_978_707e8;

/// Julian date of the J2000.0 epoch (2000-01-01 12:00 TT).
pub const JD_J2000: f64 = 2_451_545.0;

/// Seconds per Julian day.
pub const SECONDS_PER_DAY: f64 = 86_400.0;

/// Julian century in days.
pub const JULIAN_CENTURY_DAYS: f64 = 36_525.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sun_sync_rate_matches_degrees_per_day() {
        // The canonical value quoted in astrodynamics texts: ~0.9856°/day.
        let deg_per_day = SUN_SYNC_NODE_RATE.to_degrees() * SOLAR_DAY_S;
        assert!((deg_per_day - 0.9856).abs() < 1e-3, "got {deg_per_day}");
    }

    #[test]
    fn sidereal_day_shorter_than_solar() {
        assert!(std::hint::black_box(SIDEREAL_DAY_S) < SOLAR_DAY_S);
        // Earth rotation rate consistent with the sidereal day to ~1e-9.
        let rate = 2.0 * core::f64::consts::PI / SIDEREAL_DAY_S;
        assert!((rate - EARTH_ROTATION_RATE).abs() / EARTH_ROTATION_RATE < 1e-6);
    }
}
