//! Coverage geometry: spherical coverage caps, streets of coverage, and
//! analytic constellation sizing.
//!
//! All results use the classic spherical-cap model: a satellite at altitude
//! `h` serving users above a minimum elevation angle `ε` covers a spherical
//! cap of Earth-central half-angle
//!
//! ```text
//! θ = arccos( Re/(Re+h) · cos ε ) − ε
//! ```
//!
//! The workspace default minimum elevation is [`DEFAULT_MIN_ELEVATION_DEG`]
//! (30°), which calibrates the analytic sizes to the satellite counts the
//! paper reports (see EXPERIMENTS.md for the sensitivity ablation).

use crate::constants::EARTH_RADIUS_KM;
use crate::error::{AstroError, Result};
use core::f64::consts::PI;

/// Default minimum elevation angle \[degrees\] used across the workspace.
///
/// 30° reproduces the paper's headline satellite counts (RGT ≈ 356 vs
/// Walker ≈ 200 at 1215 km) and is within the 25–40° range used by
/// deployed LEO systems.
pub const DEFAULT_MIN_ELEVATION_DEG: f64 = 30.0;

/// Earth-central coverage half-angle θ \[rad\] for a satellite at
/// `altitude_km` with minimum elevation `min_elevation` \[rad\].
///
/// # Errors
/// Returns [`AstroError::InfeasibleGeometry`] for non-positive altitudes or
/// elevations outside `[0, π/2)`.
pub fn coverage_half_angle(altitude_km: f64, min_elevation: f64) -> Result<f64> {
    if altitude_km <= 0.0 {
        return Err(AstroError::InfeasibleGeometry { what: "altitude must be positive" });
    }
    if !(0.0..PI / 2.0).contains(&min_elevation) {
        return Err(AstroError::InfeasibleGeometry { what: "min elevation must be in [0, pi/2)" });
    }
    let ratio = EARTH_RADIUS_KM / (EARTH_RADIUS_KM + altitude_km);
    Ok((ratio * min_elevation.cos()).acos() - min_elevation)
}

/// Nadir cone half-angle η \[rad\] at the satellite corresponding to the
/// same geometry: `sin η = Re/(Re+h) · cos ε`.
///
/// # Errors
/// Same domain as [`coverage_half_angle`].
pub fn nadir_half_angle(altitude_km: f64, min_elevation: f64) -> Result<f64> {
    if altitude_km <= 0.0 {
        return Err(AstroError::InfeasibleGeometry { what: "altitude must be positive" });
    }
    if !(0.0..PI / 2.0).contains(&min_elevation) {
        return Err(AstroError::InfeasibleGeometry { what: "min elevation must be in [0, pi/2)" });
    }
    let ratio = EARTH_RADIUS_KM / (EARTH_RADIUS_KM + altitude_km);
    Ok((ratio * min_elevation.cos()).asin())
}

/// Slant range \[km\] from satellite to a user at the coverage edge.
///
/// # Errors
/// Same domain as [`coverage_half_angle`].
pub fn slant_range_km(altitude_km: f64, min_elevation: f64) -> Result<f64> {
    let theta = coverage_half_angle(altitude_km, min_elevation)?;
    let r = EARTH_RADIUS_KM + altitude_km;
    // Law of cosines in the Earth-center / satellite / user triangle.
    Ok((EARTH_RADIUS_KM * EARTH_RADIUS_KM + r * r - 2.0 * EARTH_RADIUS_KM * r * theta.cos()).sqrt())
}

/// Elevation angle \[rad\] of a satellite seen from a ground point at
/// Earth-central separation `central_angle` \[rad\], for a satellite at
/// `altitude_km`. Negative values mean the satellite is below the horizon.
pub fn elevation_at_central_angle(altitude_km: f64, central_angle: f64) -> f64 {
    let r = EARTH_RADIUS_KM + altitude_km;
    let (s, c) = central_angle.sin_cos();
    // tan ε = (cos θ - Re/r) / sin θ
    ((c - EARTH_RADIUS_KM / r) / s).atan()
}

/// Half-width `c` \[rad\] of the *street of coverage* laid down by
/// `sats_per_plane` equally spaced satellites each covering a cap of
/// half-angle `theta`:
///
/// ```text
/// cos θ = cos c · cos(π/S)   ⇒   c = arccos(cos θ / cos(π/S))
/// ```
///
/// # Errors
/// Returns [`AstroError::InfeasibleGeometry`] when the satellites are too
/// sparse for their caps to overlap (`π/S > θ`).
pub fn street_half_width(theta: f64, sats_per_plane: usize) -> Result<f64> {
    if sats_per_plane == 0 {
        return Err(AstroError::InfeasibleGeometry { what: "need at least one satellite" });
    }
    let half_spacing = PI / sats_per_plane as f64;
    let ratio = theta.cos() / half_spacing.cos();
    if !(0.0..=1.0).contains(&ratio) {
        return Err(AstroError::InfeasibleGeometry {
            what: "caps of adjacent satellites in plane do not overlap",
        });
    }
    Ok(ratio.acos())
}

/// Minimum satellites in one plane so that every point of the sub-satellite
/// track is continuously covered (adjacent caps touch): `S = ⌈π/θ⌉`.
pub fn min_sats_for_track_coverage(theta: f64) -> usize {
    (PI / theta).ceil() as usize
}

/// Satellites per plane for a *robust* street: in-plane spacing equal to θ
/// (adjacent caps overlap at 50%), giving a street half-width of
/// `√3/2 · θ`. This is the spacing rule used throughout the paper
/// reproduction (it recovers the paper's RGT and SS-plane satellite
/// counts).
pub fn sats_per_plane_half_overlap(theta: f64) -> usize {
    (2.0 * PI / theta).ceil() as usize
}

/// Result of analytic Walker-delta sizing for continuous coverage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WalkerSizing {
    /// Number of orbital planes.
    pub planes: usize,
    /// Satellites per plane.
    pub sats_per_plane: usize,
}

impl WalkerSizing {
    /// Total satellite count.
    pub fn total(&self) -> usize {
        self.planes * self.sats_per_plane
    }
}

/// Analytic streets-of-coverage sizing of a Walker-delta constellation for
/// continuous coverage of the latitude band reachable at inclination
/// `inclination` \[rad\], with per-satellite cap half-angle `theta` \[rad\].
///
/// The binding constraint for the mid-inclination constellations studied in
/// the paper is the equator: ascending and descending streets of `P` planes
/// cross it at effective spacing `π/P`, with perpendicular width reduced by
/// `sin i`, giving `P ≥ π·sin i / (2c)`. The satellites-per-plane count `S`
/// trades against street width `c(S)`; this routine searches `S` for the
/// minimum total.
///
/// # Errors
/// Returns [`AstroError::InfeasibleGeometry`] for `theta` outside
/// `(0, π/2)` or inclination outside `(0, π)`.
pub fn size_walker_delta(theta: f64, inclination: f64) -> Result<WalkerSizing> {
    if !(theta > 0.0 && theta < PI / 2.0) {
        return Err(AstroError::InfeasibleGeometry { what: "theta must be in (0, pi/2)" });
    }
    if !(inclination > 0.0 && inclination < PI) {
        return Err(AstroError::InfeasibleGeometry { what: "inclination must be in (0, pi)" });
    }
    let sin_i = inclination.sin().max(0.05);
    let s_min = min_sats_for_track_coverage(theta).max(2);
    let mut best: Option<WalkerSizing> = None;
    // Beyond ~4x the minimum in-plane count the street width saturates at
    // theta and totals only grow; the search window is generous.
    for s in s_min..=(s_min * 4 + 8) {
        let Ok(c) = street_half_width(theta, s) else { continue };
        if c <= 1e-9 {
            continue;
        }
        let planes = ((PI * sin_i) / (2.0 * c)).ceil() as usize;
        let planes = planes.max(1);
        let candidate = WalkerSizing { planes, sats_per_plane: s };
        if best.is_none_or(|b| candidate.total() < b.total()) {
            best = Some(candidate);
        }
    }
    best.ok_or(AstroError::InfeasibleGeometry { what: "no feasible street configuration" })
}

/// Convenience: Walker-delta sizing from altitude and elevation instead of
/// a precomputed θ.
///
/// # Errors
/// Propagates the domain errors of [`coverage_half_angle`] and
/// [`size_walker_delta`].
pub fn size_walker_delta_at(
    altitude_km: f64,
    min_elevation: f64,
    inclination: f64,
) -> Result<WalkerSizing> {
    size_walker_delta(coverage_half_angle(altitude_km, min_elevation)?, inclination)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS30: f64 = 30.0 * PI / 180.0;

    #[test]
    fn coverage_half_angle_reference_values() {
        // At 560 km / ε=30°: θ ≈ 7.25°.
        let t = coverage_half_angle(560.0, EPS30).unwrap().to_degrees();
        assert!((t - 7.25).abs() < 0.1, "theta = {t}");
        // At 1215 km / ε=30°: θ ≈ 13.3°.
        let t = coverage_half_angle(1215.0, EPS30).unwrap().to_degrees();
        assert!((t - 13.3).abs() < 0.15, "theta = {t}");
    }

    #[test]
    fn coverage_monotone_in_altitude_and_elevation() {
        let mut prev = 0.0;
        for h in [300.0, 600.0, 1200.0, 2000.0] {
            let t = coverage_half_angle(h, EPS30).unwrap();
            assert!(t > prev, "theta not increasing at {h}");
            prev = t;
        }
        let t_low = coverage_half_angle(560.0, 0.1).unwrap();
        let t_high = coverage_half_angle(560.0, 0.9).unwrap();
        assert!(t_low > t_high);
    }

    #[test]
    fn zero_elevation_is_horizon_geometry() {
        // At ε=0, θ = arccos(Re/(Re+h)).
        let t = coverage_half_angle(560.0, 0.0).unwrap();
        let expect = (EARTH_RADIUS_KM / (EARTH_RADIUS_KM + 560.0)).acos();
        assert!((t - expect).abs() < 1e-12);
    }

    #[test]
    fn elevation_at_cap_edge_equals_min_elevation() {
        let theta = coverage_half_angle(560.0, EPS30).unwrap();
        let e = elevation_at_central_angle(560.0, theta);
        assert!((e - EPS30).abs() < 1e-9);
        // At nadir-adjacent separation elevation approaches 90°.
        let near = elevation_at_central_angle(560.0, 1e-6);
        assert!(near > 89.0f64.to_radians());
    }

    #[test]
    fn slant_range_bounds() {
        let d = slant_range_km(560.0, EPS30).unwrap();
        // Between the altitude (nadir) and the horizon distance.
        assert!(d > 560.0 && d < 3000.0, "slant = {d}");
    }

    #[test]
    fn street_width_behaviour() {
        let theta = 0.2;
        // Too few satellites: caps don't overlap.
        assert!(street_half_width(theta, 3).is_err());
        // Marginal: c ≈ 0.
        let s_min = min_sats_for_track_coverage(theta);
        let c_min = street_half_width(theta, s_min).unwrap();
        assert!(c_min >= 0.0 && c_min < theta);
        // More satellites: street approaches theta.
        let c_dense = street_half_width(theta, s_min * 8).unwrap();
        assert!(c_dense > c_min && c_dense < theta);
        assert!((street_half_width(theta, 10_000).unwrap() - theta).abs() < 1e-3);
    }

    #[test]
    fn half_overlap_street_width_is_sqrt3_over_2_theta() {
        let theta: f64 = 0.15;
        let s = sats_per_plane_half_overlap(theta);
        let c = street_half_width(theta, s).unwrap();
        // Spacing theta (half overlap) gives c = acos(cos θ / cos(θ/2)) ≈ √3/2·θ
        // for small θ.
        let expect = (theta.cos() / (theta / 2.0).cos()).acos();
        assert!((c - expect).abs() < 0.02 * theta, "c = {c}, expect ≈ {expect}");
        assert!((expect - 3f64.sqrt() / 2.0 * theta).abs() < 0.01 * theta);
    }

    #[test]
    fn walker_sizing_paper_anchor_1215km() {
        // The paper's Fig. 1 anchor: ~200 satellites at 1215 km, 65°.
        let sizing = size_walker_delta_at(1215.0, EPS30, 65f64.to_radians()).unwrap();
        let n = sizing.total();
        assert!((150..=260).contains(&n), "total = {n} ({sizing:?})");
    }

    #[test]
    fn walker_sizing_decreases_with_altitude() {
        let lo = size_walker_delta_at(500.0, EPS30, 65f64.to_radians()).unwrap().total();
        let hi = size_walker_delta_at(2000.0, EPS30, 65f64.to_radians()).unwrap().total();
        assert!(lo > hi, "lo={lo} hi={hi}");
    }

    #[test]
    fn walker_sizing_rejects_bad_domain() {
        assert!(size_walker_delta(0.0, 1.0).is_err());
        assert!(size_walker_delta(2.0, 1.0).is_err());
        assert!(size_walker_delta(0.2, 0.0).is_err());
        assert!(coverage_half_angle(-5.0, 0.3).is_err());
        assert!(nadir_half_angle(560.0, 2.0).is_err());
    }

    #[test]
    fn nadir_plus_coverage_plus_elevation_is_right_angle() {
        // η + θ + ε = 90° (spherical triangle identity).
        let h = 780.0;
        let eps = 0.4;
        let eta = nadir_half_angle(h, eps).unwrap();
        let theta = coverage_half_angle(h, eps).unwrap();
        assert!((eta + theta + eps - PI / 2.0).abs() < 1e-12);
    }
}
