//! Atmospheric drag: density model, orbital decay, de-orbit lifetime, and
//! station-keeping budgets.
//!
//! Drag is the other half of the sustainability story: it sets the
//! propellant each satellite spends holding its altitude, how fast dead
//! satellites de-orbit (debris risk vs self-cleaning), and thus part of
//! the launch-mass ledger in `ssplane-core::sustainability`.

use crate::constants::{EARTH_MU, EARTH_RADIUS_KM};
use crate::error::{AstroError, Result};

/// Piecewise-exponential atmosphere (Vallado table 8-4, abbreviated to
/// the LEO bands this workspace designs in): `(base altitude km, nominal
/// density kg/m³, scale height km)`.
const ATMOSPHERE_TABLE: &[(f64, f64, f64)] = &[
    (150.0, 2.070e-9, 22.523),
    (200.0, 2.789e-10, 37.105),
    (250.0, 7.248e-11, 45.546),
    (300.0, 2.418e-11, 53.628),
    (350.0, 9.518e-12, 53.298),
    (400.0, 3.725e-12, 58.515),
    (450.0, 1.585e-12, 60.828),
    (500.0, 6.967e-13, 63.822),
    (600.0, 1.454e-13, 71.835),
    (700.0, 3.614e-14, 88.667),
    (800.0, 1.170e-14, 124.64),
    (900.0, 5.245e-15, 181.05),
    (1000.0, 3.019e-15, 268.00),
];

/// Atmospheric mass density \[kg/m³\] at `altitude_km`, scaled by a
/// solar-activity factor (≈0.5 at deep minimum to ≈2+ at strong maximum;
/// pass 1.0 for mean conditions).
///
/// # Errors
/// Returns [`AstroError::InfeasibleGeometry`] below 150 km (re-entry
/// interface — the model is not meaningful there).
pub fn atmospheric_density(altitude_km: f64, activity_factor: f64) -> Result<f64> {
    if altitude_km < 150.0 {
        return Err(AstroError::InfeasibleGeometry {
            what: "density model valid only above 150 km",
        });
    }
    let row = ATMOSPHERE_TABLE
        .iter()
        .rev()
        .find(|&&(h0, _, _)| altitude_km >= h0)
        .copied()
        .unwrap_or(ATMOSPHERE_TABLE[0]);
    let (h0, rho0, scale) = row;
    Ok(rho0 * (-(altitude_km - h0) / scale).exp() * activity_factor.max(0.0))
}

/// Ballistic coefficient bundle: `Cd · A / m` \[m²/kg\].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BallisticCoefficient(pub f64);

impl Default for BallisticCoefficient {
    /// Starlink-class flat-panel satellite: Cd ≈ 2.2, A/m ≈ 0.01 m²/kg.
    fn default() -> Self {
        BallisticCoefficient(0.022)
    }
}

/// Circular-orbit decay rate \[km per day\] from drag at `altitude_km`.
///
/// `da/dt = −ρ · v · a · B` per unit time with v the circular speed —
/// the standard secular result for circular orbits.
///
/// # Errors
/// See [`atmospheric_density`].
pub fn decay_rate_km_per_day(
    altitude_km: f64,
    bc: BallisticCoefficient,
    activity_factor: f64,
) -> Result<f64> {
    let rho = atmospheric_density(altitude_km, activity_factor)?; // kg/m³
    let a_m = (EARTH_RADIUS_KM + altitude_km) * 1e3; // m
    let v = (EARTH_MU * 1e9 / a_m).sqrt(); // m/s
                                           // da/dt = -rho * v * a * B  [m/s] -> km/day
    Ok(rho * v * a_m * bc.0 * 86_400.0 / 1e3)
}

/// Estimated uncontrolled de-orbit lifetime \[years\] from `altitude_km`
/// down to the 180 km re-entry interface, integrating the decay rate in
/// 1 km steps.
///
/// # Errors
/// See [`atmospheric_density`].
pub fn deorbit_lifetime_years(
    altitude_km: f64,
    bc: BallisticCoefficient,
    activity_factor: f64,
) -> Result<f64> {
    let mut h = altitude_km;
    let mut days = 0.0;
    while h > 180.0 {
        let rate = decay_rate_km_per_day(h.max(150.0), bc, activity_factor)?;
        if rate <= 0.0 {
            return Err(AstroError::InfeasibleGeometry { what: "non-positive decay rate" });
        }
        let step = 1.0f64.min(h - 180.0).max(1e-3);
        days += step / rate;
        h -= step;
        if days > 1e9 {
            break; // > 2.7 Myr: effectively never; stop integrating
        }
    }
    Ok(days / 365.25)
}

/// Station-keeping Δv \[m/s per year\] to hold a circular orbit against
/// drag: the per-orbit drag impulse `π·ρ·a·v·B` times orbits per year.
///
/// # Errors
/// See [`atmospheric_density`].
pub fn stationkeeping_dv_m_s_per_year(
    altitude_km: f64,
    bc: BallisticCoefficient,
    activity_factor: f64,
) -> Result<f64> {
    let rho = atmospheric_density(altitude_km, activity_factor)?;
    let a_m = (EARTH_RADIUS_KM + altitude_km) * 1e3;
    let v = (EARTH_MU * 1e9 / a_m).sqrt();
    let dv_per_orbit = core::f64::consts::PI * rho * a_m * v * bc.0;
    let period_s = core::f64::consts::TAU * (a_m.powi(3) / (EARTH_MU * 1e9)).sqrt();
    Ok(dv_per_orbit * (365.25 * 86_400.0 / period_s))
}

/// Propellant mass fraction per year for the station-keeping budget,
/// via the rocket equation with specific impulse `isp_s` (e.g. ~1500 s
/// for the Hall/ion thrusters LEO constellations fly).
///
/// # Errors
/// Rejects non-positive Isp; propagates density-model errors.
pub fn propellant_fraction_per_year(
    altitude_km: f64,
    bc: BallisticCoefficient,
    activity_factor: f64,
    isp_s: f64,
) -> Result<f64> {
    if isp_s <= 0.0 {
        return Err(AstroError::InvalidElement {
            name: "isp_s",
            value: isp_s,
            constraint: "positive",
        });
    }
    let dv = stationkeeping_dv_m_s_per_year(altitude_km, bc, activity_factor)?;
    Ok(1.0 - (-dv / (isp_s * 9.80665)).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_reference_values() {
        // Table anchors reproduce exactly at the base altitudes.
        let d = atmospheric_density(500.0, 1.0).unwrap();
        assert!((d - 6.967e-13).abs() / 6.967e-13 < 1e-9);
        // Interpolation decreases between anchors.
        let d550 = atmospheric_density(550.0, 1.0).unwrap();
        let d600 = atmospheric_density(600.0, 1.0).unwrap();
        assert!(d > d550 && d550 > d600);
        // Activity scaling is linear.
        assert!(
            (atmospheric_density(560.0, 2.0).unwrap()
                - 2.0 * atmospheric_density(560.0, 1.0).unwrap())
            .abs()
                < 1e-20
        );
        // Below the interface: rejected.
        assert!(atmospheric_density(100.0, 1.0).is_err());
    }

    #[test]
    fn density_monotone_decreasing() {
        let mut prev = f64::INFINITY;
        for h in (150..1400).step_by(25) {
            let d = atmospheric_density(h as f64, 1.0).unwrap();
            assert!(d < prev, "density not decreasing at {h} km");
            prev = d;
        }
    }

    #[test]
    fn starlink_class_stationkeeping_budget() {
        // Published Starlink-class budgets: a few m/s per year at ~550 km.
        let dv = stationkeeping_dv_m_s_per_year(560.0, Default::default(), 1.0).unwrap();
        assert!((0.5..20.0).contains(&dv), "dv = {dv} m/s/yr");
        // Higher orbit, lower budget.
        let dv_high = stationkeeping_dv_m_s_per_year(1200.0, Default::default(), 1.0).unwrap();
        assert!(dv_high < 0.1 * dv);
        // Solar max roughly doubles it.
        let dv_max = stationkeeping_dv_m_s_per_year(560.0, Default::default(), 2.0).unwrap();
        assert!((dv_max / dv - 2.0).abs() < 1e-9);
    }

    #[test]
    fn deorbit_lifetimes_by_altitude() {
        let bc = BallisticCoefficient::default();
        // ~400 km: months-to-years (ISS resupply regime).
        let low = deorbit_lifetime_years(400.0, bc, 1.0).unwrap();
        assert!((0.1..8.0).contains(&low), "400 km lifetime {low} yr");
        // ~560 km: years-to-decades (the paper's design altitude is
        // self-cleaning on decadal scales).
        let mid = deorbit_lifetime_years(560.0, bc, 1.0).unwrap();
        assert!((1.0..80.0).contains(&mid), "560 km lifetime {mid} yr");
        // ~1200 km: centuries+ (the debris-risk regime the paper's
        // refs [8, 15] warn about).
        let high = deorbit_lifetime_years(1200.0, bc, 1.0).unwrap();
        assert!(high > 100.0, "1200 km lifetime {high} yr");
        assert!(low < mid && mid < high);
    }

    #[test]
    fn propellant_fraction_small_and_monotone() {
        let f = propellant_fraction_per_year(560.0, Default::default(), 1.0, 1500.0).unwrap();
        assert!((1e-6..0.01).contains(&f), "fraction = {f}");
        // Lower Isp costs more propellant.
        let f_chem = propellant_fraction_per_year(560.0, Default::default(), 1.0, 220.0).unwrap();
        assert!(f_chem > f);
        assert!(propellant_fraction_per_year(560.0, Default::default(), 1.0, 0.0).is_err());
    }
}
