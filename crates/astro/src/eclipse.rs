//! Eclipse geometry and solar beta angle.
//!
//! The LTAN of a sun-synchronous plane is not only a demand-coverage
//! choice (§4.2) but a power-system one: a *dawn-dusk* plane (LTAN ≈
//! 06:00/18:00) keeps its solar panels nearly always lit, while a
//! *noon-midnight* plane (LTAN ≈ 00:00/12:00) is eclipsed every orbit.
//! The greedy designer places planes at demand-driven LTANs, so this
//! module quantifies the power cost of each choice.

use crate::constants::EARTH_RADIUS_KM;
use crate::kepler::OrbitalElements;
use crate::linalg::Vec3;
use crate::sun::sun_position;
use crate::time::Epoch;

/// Solar beta angle \[rad\]: the angle between the sun direction and the
/// orbital plane, in `[-π/2, π/2]`. |β| = 90° means the sun is normal to
/// the plane (no eclipses); β ≈ 0 maximizes eclipse duration.
pub fn beta_angle(epoch: Epoch, elements: &OrbitalElements) -> f64 {
    // Orbit normal in ECI.
    let (si, ci) = elements.inclination.sin_cos();
    let (sr, cr) = elements.raan.sin_cos();
    let normal = Vec3::new(sr * si, -cr * si, ci);
    let sun = sun_position(epoch).direction_eci;
    (normal.dot(sun)).clamp(-1.0, 1.0).asin()
}

/// Fraction of the orbit spent in the Earth's (cylindrical) shadow for a
/// circular orbit with the given beta angle.
///
/// Cylindrical-shadow model (Vallado §5.3): eclipse occurs while the
/// satellite's anti-sun angle keeps it inside the shadow cylinder of
/// radius Rₑ. Zero when `|sin β| ≥ Rₑ/a` (the orbit clears the cylinder).
pub fn eclipse_fraction(semi_major_axis_km: f64, beta: f64) -> f64 {
    let rho = EARTH_RADIUS_KM / semi_major_axis_km;
    let cos_beta = beta.cos();
    if cos_beta <= 0.0 {
        return 0.0;
    }
    let s = (rho * rho - beta.sin() * beta.sin()).max(0.0);
    if s == 0.0 {
        return 0.0;
    }
    // Half-angle of the eclipse arc.
    let half_arc = (s.sqrt() / cos_beta).min(1.0).asin();
    half_arc / core::f64::consts::PI
}

/// Eclipse fraction of a circular orbit at `epoch` (combines
/// [`beta_angle`] and [`eclipse_fraction`]).
pub fn orbit_eclipse_fraction(epoch: Epoch, elements: &OrbitalElements) -> f64 {
    eclipse_fraction(elements.semi_major_axis_km, beta_angle(epoch, elements))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sunsync::sun_synchronous_orbit;

    #[test]
    fn beta_angle_bounds() {
        let el = OrbitalElements::circular(560.0, 1.0, 2.0, 0.0).unwrap();
        for days in [0.0, 91.0, 182.0, 273.0] {
            let b = beta_angle(Epoch::from_days_j2000(days), &el);
            assert!(b.abs() <= core::f64::consts::FRAC_PI_2 + 1e-12);
        }
    }

    #[test]
    fn eclipse_fraction_extremes() {
        let a = EARTH_RADIUS_KM + 560.0;
        // Beta = 0: maximum eclipse, roughly asin(Re/a)/pi ≈ 0.37.
        let max = eclipse_fraction(a, 0.0);
        assert!((0.3..0.45).contains(&max), "max eclipse fraction {max}");
        // Sun normal to the plane: no eclipse.
        assert_eq!(eclipse_fraction(a, core::f64::consts::FRAC_PI_2), 0.0);
        // Monotone decreasing in |beta|.
        let mid = eclipse_fraction(a, 0.5);
        assert!(mid < max && mid > 0.0);
        // Higher orbits eclipse less at beta = 0.
        assert!(eclipse_fraction(a + 20_000.0, 0.0) < max);
    }

    #[test]
    fn dawn_dusk_sso_nearly_eclipse_free() {
        // LTAN 06:00 SSO: sun roughly normal to the plane year-round.
        let orbit = sun_synchronous_orbit(560.0).unwrap().with_ltan(6.0);
        let mut worst = 0.0f64;
        for month in 1..=12 {
            let epoch = Epoch::from_calendar(2021, month, 15, 0, 0, 0.0);
            let el = orbit.elements_at(epoch, 0.0).unwrap();
            worst = worst.max(orbit_eclipse_fraction(epoch, &el));
        }
        // Well below the ~0.37 of a beta-0 orbit; the residual months are
        // the solstice seasons when the solar declination tips the sun
        // out of the plane normal.
        assert!(worst < 0.27, "dawn-dusk worst-month eclipse fraction {worst}");
    }

    #[test]
    fn noon_midnight_sso_eclipses_every_orbit() {
        let orbit = sun_synchronous_orbit(560.0).unwrap().with_ltan(12.0);
        let epoch = Epoch::from_calendar(2021, 3, 20, 12, 0, 0.0);
        let el = orbit.elements_at(epoch, 0.0).unwrap();
        let frac = orbit_eclipse_fraction(epoch, &el);
        assert!(frac > 0.3, "noon-midnight eclipse fraction {frac}");
        // And strictly worse than the dawn-dusk plane at the same epoch.
        let dd = sun_synchronous_orbit(560.0).unwrap().with_ltan(6.0);
        let dd_el = dd.elements_at(epoch, 0.0).unwrap();
        assert!(orbit_eclipse_fraction(epoch, &dd_el) < frac);
    }

    #[test]
    fn sso_beta_stable_over_year() {
        // Sun-synchrony holds the beta angle (hence power budget) nearly
        // constant across seasons — another operational advantage of the
        // SS-plane primitive. Allow the declination-driven wobble.
        let orbit = sun_synchronous_orbit(560.0).unwrap().with_ltan(9.0);
        let mut betas = Vec::new();
        for month in 1..=12 {
            let epoch = Epoch::from_calendar(2021, month, 15, 0, 0, 0.0);
            let el = orbit.elements_at(epoch, 0.0).unwrap();
            betas.push(beta_angle(epoch, &el).to_degrees());
        }
        let max = betas.iter().cloned().fold(f64::MIN, f64::max);
        let min = betas.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max - min < 30.0, "beta swing {min}..{max}");
        // Control: a 53° non-SS plane's beta swings much more over a year
        // as the node drifts relative to the sun.
        let el = OrbitalElements::circular(560.0, 53f64.to_radians(), 0.0, 0.0).unwrap();
        let prop = crate::propagate::J2Propagator::new(Epoch::J2000, el).unwrap();
        let mut swing = (f64::MAX, f64::MIN);
        for day in (0..365).step_by(10) {
            let t = Epoch::from_days_j2000(day as f64);
            let b = beta_angle(t, &prop.elements_at(t)).to_degrees();
            swing = (swing.0.min(b), swing.1.max(b));
        }
        assert!(swing.1 - swing.0 > max - min, "non-SS swing {swing:?}");
    }
}
