//! Error types for the astrodynamics substrate.

use core::fmt;

/// Result alias with [`AstroError`].
pub type Result<T> = core::result::Result<T, AstroError>;

/// Errors produced by orbit design and propagation routines.
#[derive(Debug, Clone, PartialEq)]
pub enum AstroError {
    /// An orbital element was outside its physical domain
    /// (e.g. eccentricity < 0, semi-major axis below the Earth surface).
    InvalidElement {
        /// Which element was invalid.
        name: &'static str,
        /// The offending value.
        value: f64,
        /// Human-readable constraint description.
        constraint: &'static str,
    },
    /// An iterative solver failed to converge.
    NoConvergence {
        /// The solver that failed.
        what: &'static str,
        /// Iterations attempted.
        iterations: usize,
    },
    /// No solution exists for the requested design parameters
    /// (e.g. a sun-synchronous orbit above the altitude where the required
    /// inclination exceeds 180°, or a repeat ground track outside the
    /// requested altitude window).
    NoSolution {
        /// Description of the infeasible request.
        what: &'static str,
    },
    /// The requested geometry is infeasible
    /// (e.g. minimum elevation so high the coverage cap is empty).
    InfeasibleGeometry {
        /// Description of the infeasible geometry.
        what: &'static str,
    },
}

impl fmt::Display for AstroError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AstroError::InvalidElement { name, value, constraint } => {
                write!(f, "invalid orbital element {name} = {value}: must satisfy {constraint}")
            }
            AstroError::NoConvergence { what, iterations } => {
                write!(f, "{what} failed to converge after {iterations} iterations")
            }
            AstroError::NoSolution { what } => write!(f, "no solution: {what}"),
            AstroError::InfeasibleGeometry { what } => write!(f, "infeasible geometry: {what}"),
        }
    }
}

impl std::error::Error for AstroError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = AstroError::InvalidElement { name: "e", value: -0.1, constraint: "0 <= e < 1" };
        assert!(e.to_string().contains("invalid orbital element e"));
        let e = AstroError::NoConvergence { what: "Kepler solver", iterations: 50 };
        assert!(e.to_string().contains("50 iterations"));
        let e = AstroError::NoSolution { what: "SSO above 5974 km" };
        assert!(e.to_string().contains("no solution"));
        let e = AstroError::InfeasibleGeometry { what: "empty cap" };
        assert!(e.to_string().contains("infeasible"));
    }
}
