//! Reference frames: ECI ↔ ECEF ↔ geodetic, and the sun-relative frame.
//!
//! The sun-relative frame is the conceptual core of the SS-plane design:
//! a coordinate system `(latitude, local solar time)` in which the paper's
//! demand model is (approximately) stationary. A sun-synchronous orbital
//! plane traces a *fixed* curve in this frame, which is what lets a
//! constellation "pin" supply to demand.

use crate::angles::{wrap_pi, wrap_two_pi};
use crate::geo::GeoPoint;
use crate::linalg::{Mat3, Vec3};
use crate::sun::local_solar_time_of_right_ascension;
use crate::time::Epoch;

/// Rotates an ECI position vector into the Earth-fixed (ECEF) frame.
#[inline]
pub fn eci_to_ecef(epoch: Epoch, r_eci: Vec3) -> Vec3 {
    Mat3::rot_z(epoch.gmst()) * r_eci
}

/// Rotates an ECEF position vector into the ECI frame.
#[inline]
pub fn ecef_to_eci(epoch: Epoch, r_ecef: Vec3) -> Vec3 {
    Mat3::rot_z(-epoch.gmst()) * r_ecef
}

/// Sub-satellite point and altitude for an ECI position.
///
/// Returns `(ground point, altitude above the spherical Earth in km)`.
/// Returns `None` for the zero vector.
pub fn subsatellite_point(epoch: Epoch, r_eci: Vec3) -> Option<(GeoPoint, f64)> {
    let r_ecef = eci_to_ecef(epoch, r_eci);
    let point = GeoPoint::from_vector(r_ecef)?;
    Some((point, r_ecef.norm() - crate::constants::EARTH_RADIUS_KM))
}

/// Geodetic (spherical) coordinates to an ECEF position vector \[km\].
#[inline]
pub fn geodetic_to_ecef(point: GeoPoint, altitude_km: f64) -> Vec3 {
    point.to_unit_vector() * (crate::constants::EARTH_RADIUS_KM + altitude_km)
}

/// A position expressed in the sun-relative grid the paper's demand model
/// lives on.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SunRelativePoint {
    /// Latitude \[rad\], identical to the geographic latitude.
    pub lat: f64,
    /// Mean local solar time \[hours, 0-24)\]. 12.0 is local noon (the
    /// meridian facing the Sun).
    pub local_time_h: f64,
}

impl SunRelativePoint {
    /// Local solar time expressed as an angle from midnight \[rad, 0-2π)\].
    #[inline]
    pub fn local_time_angle(&self) -> f64 {
        self.local_time_h / 24.0 * core::f64::consts::TAU
    }
}

/// Converts an ECI position to the sun-relative grid at `epoch`.
///
/// Returns `None` for the zero vector.
pub fn eci_to_sun_relative(epoch: Epoch, r_eci: Vec3) -> Option<SunRelativePoint> {
    let n = r_eci.normalized()?;
    let lat = n.z.clamp(-1.0, 1.0).asin();
    let right_ascension = wrap_two_pi(n.y.atan2(n.x));
    Some(SunRelativePoint {
        lat,
        local_time_h: local_solar_time_of_right_ascension(epoch, right_ascension),
    })
}

/// Converts a ground point to the sun-relative grid at `epoch`.
pub fn ground_to_sun_relative(epoch: Epoch, point: GeoPoint) -> SunRelativePoint {
    SunRelativePoint {
        lat: point.lat,
        local_time_h: crate::sun::local_solar_time_of_longitude(epoch, point.lon),
    }
}

/// Ground longitude \[rad\] currently sitting at local solar time
/// `local_time_h` at `epoch` (inverse of [`ground_to_sun_relative`] in the
/// longitude coordinate).
pub fn longitude_of_local_time(epoch: Epoch, local_time_h: f64) -> f64 {
    // local time at lon L: lst(L) = lst(0) + L/15°; solve for L.
    let lst0 = crate::sun::local_solar_time_of_longitude(epoch, 0.0);
    wrap_pi(((local_time_h - lst0) * 15.0).to_radians())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::EARTH_RADIUS_KM;

    #[test]
    fn eci_ecef_round_trip() {
        let e = Epoch::from_calendar(2021, 4, 1, 3, 45, 0.0);
        let r = Vec3::new(7000.0, -1234.5, 3456.7);
        let back = ecef_to_eci(e, eci_to_ecef(e, r));
        assert!((back - r).norm() < 1e-9);
    }

    #[test]
    fn subsatellite_altitude() {
        let e = Epoch::J2000;
        let r = Vec3::new(EARTH_RADIUS_KM + 560.0, 0.0, 0.0);
        let (_, alt) = subsatellite_point(e, r).unwrap();
        assert!((alt - 560.0).abs() < 1e-9);
    }

    #[test]
    fn geodetic_ecef_round_trip() {
        let p = GeoPoint::from_degrees(45.0, -120.0);
        let r = geodetic_to_ecef(p, 560.0);
        let (q, alt) = {
            let gp = GeoPoint::from_vector(r).unwrap();
            (gp, r.norm() - EARTH_RADIUS_KM)
        };
        assert!((q.lat - p.lat).abs() < 1e-12);
        assert!(crate::angles::separation(q.lon, p.lon) < 1e-12);
        assert!((alt - 560.0).abs() < 1e-9);
    }

    #[test]
    fn sun_relative_ground_point_consistency() {
        // A ground point's sun-relative coordinates computed directly and
        // via ECI must agree.
        let e = Epoch::from_calendar(2022, 9, 10, 15, 30, 0.0);
        let p = GeoPoint::from_degrees(37.0, 23.0);
        let direct = ground_to_sun_relative(e, p);
        let via_eci = eci_to_sun_relative(e, ecef_to_eci(e, geodetic_to_ecef(p, 0.0))).unwrap();
        assert!((direct.lat - via_eci.lat).abs() < 1e-9);
        let dh = (direct.local_time_h - via_eci.local_time_h).abs();
        assert!(dh.min(24.0 - dh) < 1e-6, "dh = {dh}");
    }

    #[test]
    fn longitude_of_local_time_inverts() {
        let e = Epoch::from_calendar(2022, 2, 2, 22, 0, 0.0);
        for lt in [0.0, 5.5, 12.0, 18.25] {
            let lon = longitude_of_local_time(e, lt);
            let back = crate::sun::local_solar_time_of_longitude(e, lon);
            let dh = (back - lt).abs();
            assert!(dh.min(24.0 - dh) < 1e-6, "lt {lt} -> lon {lon} -> {back}");
        }
    }

    #[test]
    fn sun_relative_point_is_stationary_for_sun_fixed_observer() {
        // A point rotating with the *mean sun* keeps constant local time.
        // Approximate: take the subsolar longitude at two epochs; both map
        // to local noon.
        for (y, m, d) in [(2020, 1, 1), (2020, 7, 1)] {
            let e = Epoch::from_calendar(y, m, d, 8, 0, 0.0);
            let lon = crate::sun::subsolar_longitude(e);
            let sr = ground_to_sun_relative(e, GeoPoint::new(0.3, lon));
            assert!((sr.local_time_h - 12.0).abs() < 1e-6, "{:?}", sr);
        }
    }

    #[test]
    fn local_time_angle_range() {
        let p = SunRelativePoint { lat: 0.0, local_time_h: 6.0 };
        assert!((p.local_time_angle() - core::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }
}
