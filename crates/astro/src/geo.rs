//! Spherical-Earth geography: geodetic points, great-circle math.

use crate::constants::EARTH_RADIUS_KM;
use crate::linalg::Vec3;

/// A point on the (spherical) Earth surface.
///
/// Latitude in `[-π/2, π/2]`, longitude in `(-π, π]`, radians.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GeoPoint {
    /// Geocentric latitude \[rad\], positive north.
    pub lat: f64,
    /// Longitude \[rad\], positive east.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point from latitude/longitude in radians.
    #[inline]
    pub fn new(lat: f64, lon: f64) -> Self {
        GeoPoint { lat, lon: crate::angles::wrap_pi(lon) }
    }

    /// Creates a point from latitude/longitude in degrees.
    #[inline]
    pub fn from_degrees(lat_deg: f64, lon_deg: f64) -> Self {
        GeoPoint::new(lat_deg.to_radians(), lon_deg.to_radians())
    }

    /// Latitude in degrees.
    #[inline]
    pub fn lat_deg(&self) -> f64 {
        self.lat.to_degrees()
    }

    /// Longitude in degrees.
    #[inline]
    pub fn lon_deg(&self) -> f64 {
        self.lon.to_degrees()
    }

    /// Unit vector from the Earth's center through this point (in the
    /// Earth-fixed frame).
    #[inline]
    pub fn to_unit_vector(&self) -> Vec3 {
        let (slat, clat) = self.lat.sin_cos();
        let (slon, clon) = self.lon.sin_cos();
        Vec3::new(clat * clon, clat * slon, slat)
    }

    /// Recovers a point from any non-zero vector in the Earth-fixed frame
    /// (only the direction is used).
    ///
    /// Returns the north pole for vectors along ±Z with zero horizontal
    /// component and `None` only for the zero vector.
    pub fn from_vector(v: Vec3) -> Option<Self> {
        let n = v.normalized()?;
        // atan2 keeps full precision near the poles where asin(z) degrades.
        let horizontal = (n.x * n.x + n.y * n.y).sqrt();
        Some(GeoPoint { lat: n.z.atan2(horizontal), lon: n.y.atan2(n.x) })
    }

    /// Great-circle central angle to `other` \[rad\], in `[0, π]`.
    pub fn central_angle_to(&self, other: &GeoPoint) -> f64 {
        self.to_unit_vector().angle_to(other.to_unit_vector())
    }

    /// Great-circle surface distance to `other` \[km\] on the spherical
    /// Earth.
    #[inline]
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        self.central_angle_to(other) * EARTH_RADIUS_KM
    }

    /// Initial great-circle bearing toward `other` \[rad\], clockwise from
    /// north, in `[0, 2π)`.
    pub fn bearing_to(&self, other: &GeoPoint) -> f64 {
        let dlon = other.lon - self.lon;
        let y = dlon.sin() * other.lat.cos();
        let x = self.lat.cos() * other.lat.sin() - self.lat.sin() * other.lat.cos() * dlon.cos();
        crate::angles::wrap_two_pi(y.atan2(x))
    }
}

/// Area of a spherical cap of angular radius `theta` \[rad\] on the unit
/// sphere \[steradians\]: `2π(1 - cos θ)`.
#[inline]
pub fn spherical_cap_area(theta: f64) -> f64 {
    core::f64::consts::TAU * (1.0 - theta.cos())
}

/// Fraction of the sphere's surface inside a cap of angular radius `theta`.
#[inline]
pub fn spherical_cap_fraction(theta: f64) -> f64 {
    spherical_cap_area(theta) / (2.0 * core::f64::consts::TAU)
}

/// Area \[km²\] of the latitude band `[lat0, lat1]` on the spherical Earth.
pub fn latitude_band_area_km2(lat0: f64, lat1: f64) -> f64 {
    let (lo, hi) = if lat0 <= lat1 { (lat0, lat1) } else { (lat1, lat0) };
    core::f64::consts::TAU * EARTH_RADIUS_KM * EARTH_RADIUS_KM * (hi.sin() - lo.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn unit_vector_round_trip() {
        for (lat, lon) in [(0.0, 0.0), (0.5, 1.0), (-1.2, -2.9), (FRAC_PI_2 - 1e-6, 0.3)] {
            let p = GeoPoint::new(lat, lon);
            let q = GeoPoint::from_vector(p.to_unit_vector()).unwrap();
            assert!((p.lat - q.lat).abs() < 1e-12);
            assert!(crate::angles::separation(p.lon, q.lon) < 1e-9);
        }
    }

    #[test]
    fn central_angle_quarter_turn() {
        let equator = GeoPoint::from_degrees(0.0, 0.0);
        let pole = GeoPoint::from_degrees(90.0, 0.0);
        assert!((equator.central_angle_to(&pole) - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn antipodal_distance() {
        let a = GeoPoint::from_degrees(10.0, 20.0);
        let b = GeoPoint::from_degrees(-10.0, -160.0);
        assert!((a.central_angle_to(&b) - PI).abs() < 1e-9);
    }

    #[test]
    fn bearing_north_and_east() {
        let origin = GeoPoint::from_degrees(0.0, 0.0);
        let north = GeoPoint::from_degrees(10.0, 0.0);
        let east = GeoPoint::from_degrees(0.0, 10.0);
        assert!(origin.bearing_to(&north).abs() < 1e-9);
        assert!((origin.bearing_to(&east) - FRAC_PI_2).abs() < 1e-9);
    }

    #[test]
    fn cap_area_limits() {
        assert!(spherical_cap_area(0.0).abs() < 1e-15);
        assert!((spherical_cap_area(PI) - 2.0 * core::f64::consts::TAU).abs() < 1e-12);
        assert!((spherical_cap_fraction(FRAC_PI_2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn band_area_sums_to_sphere() {
        let total: f64 = latitude_band_area_km2(-FRAC_PI_2, FRAC_PI_2);
        let sphere = 4.0 * PI * EARTH_RADIUS_KM * EARTH_RADIUS_KM;
        assert!((total - sphere).abs() / sphere < 1e-12);
        // Symmetric bands have equal area.
        let n = latitude_band_area_km2(0.2, 0.5);
        let s = latitude_band_area_km2(-0.5, -0.2);
        assert!((n - s).abs() < 1e-6);
    }

    #[test]
    fn known_city_distance() {
        // London <-> New York: ~5570 km great-circle.
        let london = GeoPoint::from_degrees(51.5074, -0.1278);
        let nyc = GeoPoint::from_degrees(40.7128, -74.0060);
        let d = london.distance_km(&nyc);
        assert!((d - 5570.0).abs() < 60.0, "d = {d}");
    }
}
