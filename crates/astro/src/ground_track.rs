//! Ground tracks: sampled sub-satellite paths and their coverage swaths.

use crate::error::Result;
use crate::frames::subsatellite_point;
use crate::geo::GeoPoint;
use crate::kepler::OrbitalElements;
use crate::propagate::J2Propagator;
use crate::time::Epoch;

/// One sample of a ground track.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TrackSample {
    /// Sample epoch.
    pub epoch: Epoch,
    /// Sub-satellite point.
    pub point: GeoPoint,
    /// Altitude above the spherical Earth \[km\].
    pub altitude_km: f64,
}

/// A sampled ground track.
#[derive(Debug, Clone, Default)]
pub struct GroundTrack {
    /// Samples in time order.
    pub samples: Vec<TrackSample>,
}

impl GroundTrack {
    /// Samples the ground track of `elements` starting at `epoch` for
    /// `duration_s` seconds with the given step, under secular J2 motion.
    ///
    /// # Errors
    /// Propagates element validation / Kepler-solver failure.
    pub fn sample(
        epoch: Epoch,
        elements: &OrbitalElements,
        duration_s: f64,
        step_s: f64,
    ) -> Result<GroundTrack> {
        let prop = J2Propagator::new(epoch, *elements)?;
        let n = (duration_s / step_s).ceil() as usize;
        let mut samples = Vec::with_capacity(n + 1);
        for k in 0..=n {
            // The final sample lands exactly at `duration_s` even when the
            // step does not divide it.
            let t = epoch + (k as f64 * step_s).min(duration_s);
            let r = prop.position_at(t)?;
            let (point, altitude_km) =
                subsatellite_point(t, r).expect("orbital radius is never zero");
            samples.push(TrackSample { epoch: t, point, altitude_km });
        }
        Ok(GroundTrack { samples })
    }

    /// Total along-track length \[rad of Earth-central angle\], summing
    /// great-circle hops between consecutive samples.
    pub fn length_rad(&self) -> f64 {
        self.samples.windows(2).map(|w| w[0].point.central_angle_to(&w[1].point)).sum()
    }

    /// Minimum central angle \[rad\] from `target` to any sample of the
    /// track (∞ if the track is empty).
    pub fn min_central_angle_to(&self, target: &GeoPoint) -> f64 {
        self.samples.iter().map(|s| s.point.central_angle_to(target)).fold(f64::INFINITY, f64::min)
    }

    /// Whether `target` lies inside the swath of half-width
    /// `swath_half_angle` \[rad\] around the track.
    pub fn swath_covers(&self, target: &GeoPoint, swath_half_angle: f64) -> bool {
        self.min_central_angle_to(target) <= swath_half_angle
    }

    /// Fraction of a latitude/longitude grid (`n_lat × n_lon`, cell
    /// centers) covered by the swath — a cheap global coverage metric used
    /// by tests and the Fig. 2 reproduction.
    pub fn swath_area_fraction(&self, swath_half_angle: f64, n_lat: usize, n_lon: usize) -> f64 {
        let mut covered = 0.0;
        let mut total = 0.0;
        for i in 0..n_lat {
            let lat = -core::f64::consts::FRAC_PI_2
                + core::f64::consts::PI * (i as f64 + 0.5) / n_lat as f64;
            // Weight cells by cos(lat) for equal-area accounting.
            let w = lat.cos();
            for j in 0..n_lon {
                let lon = -core::f64::consts::PI
                    + core::f64::consts::TAU * (j as f64 + 0.5) / n_lon as f64;
                total += w;
                if self.swath_covers(&GeoPoint::new(lat, lon), swath_half_angle) {
                    covered += w;
                }
            }
        }
        if total == 0.0 {
            0.0
        } else {
            covered / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rgt::rgt_orbit;

    const INC65: f64 = 65.0 * core::f64::consts::PI / 180.0;

    fn one_day_track(el: &OrbitalElements) -> GroundTrack {
        GroundTrack::sample(Epoch::J2000, el, 86_400.0, 30.0).unwrap()
    }

    #[test]
    fn track_latitude_bounded_by_inclination() {
        let el = OrbitalElements::circular(560.0, INC65, 0.3, 0.0).unwrap();
        let track = one_day_track(&el);
        let max_lat = track.samples.iter().map(|s| s.point.lat.abs()).fold(0.0, f64::max);
        assert!(max_lat <= INC65 + 0.01);
        assert!(max_lat >= INC65 - 0.05, "track should reach the inclination latitude");
    }

    #[test]
    fn rgt_track_closes_after_repeat_cycle() {
        // The 15:1 RGT must return to (almost) the same ground point after
        // one repeat cycle (1 nodal day ≈ 15 nodal periods).
        let o = rgt_orbit(15, 1, INC65).unwrap();
        let el = o.reference_elements();
        let t_n = crate::propagate::nodal_period_s(&el);
        let prop = J2Propagator::new(Epoch::J2000, el).unwrap();
        let (p0, _) =
            subsatellite_point(Epoch::J2000, prop.position_at(Epoch::J2000).unwrap()).unwrap();
        let t1 = Epoch::J2000 + 15.0 * t_n;
        let (p1, _) = subsatellite_point(t1, prop.position_at(t1).unwrap()).unwrap();
        let gap = p0.central_angle_to(&p1).to_degrees();
        assert!(gap < 0.5, "repeat-cycle closure error = {gap} deg");
    }

    #[test]
    fn non_rgt_track_does_not_close() {
        // At 700 km (not an RGT altitude for 65°), the track must NOT
        // close after ~14.8 orbits.
        let el = OrbitalElements::circular(700.0, INC65, 0.0, 0.0).unwrap();
        let prop = J2Propagator::new(Epoch::J2000, el).unwrap();
        let (p0, _) =
            subsatellite_point(Epoch::J2000, prop.position_at(Epoch::J2000).unwrap()).unwrap();
        let t1 = Epoch::J2000 + 86_400.0;
        let (p1, _) = subsatellite_point(t1, prop.position_at(t1).unwrap()).unwrap();
        assert!(p0.central_angle_to(&p1).to_degrees() > 1.0);
    }

    #[test]
    fn sampled_length_matches_analytic_rgt_length() {
        let o = rgt_orbit(15, 1, INC65).unwrap();
        let el = o.reference_elements();
        let t_n = crate::propagate::nodal_period_s(&el);
        let track = GroundTrack::sample(Epoch::J2000, &el, 15.0 * t_n, 10.0).unwrap();
        let sampled = track.length_rad();
        let analytic = o.ground_track_length();
        assert!(
            (sampled - analytic).abs() / analytic < 0.01,
            "sampled {sampled} vs analytic {analytic}"
        );
    }

    #[test]
    fn swath_coverage_sanity() {
        let el = OrbitalElements::circular(560.0, INC65, 0.0, 0.0).unwrap();
        let track = one_day_track(&el);
        // The equator gets crossed ~30 times; a generous swath covers a
        // point on the equator, and the poles are never covered.
        assert!(track.swath_covers(&GeoPoint::from_degrees(0.0, 10.0), 0.2));
        assert!(!track.swath_covers(&GeoPoint::from_degrees(89.0, 0.0), 0.1));
        let frac = track.swath_area_fraction(0.1266, 36, 72);
        assert!(frac > 0.5 && frac < 1.0, "one-day 560 km swath fraction = {frac}");
    }

    #[test]
    fn empty_track_behaviour() {
        let t = GroundTrack::default();
        assert_eq!(t.length_rad(), 0.0);
        assert!(t.min_central_angle_to(&GeoPoint::default()).is_infinite());
        assert!(!t.swath_covers(&GeoPoint::default(), 1.0));
    }
}
