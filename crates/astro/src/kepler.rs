//! Keplerian orbital elements, anomaly conversions, and conversion to/from
//! Cartesian state vectors.

use crate::angles::wrap_two_pi;
use crate::constants::{EARTH_MU, EARTH_RADIUS_KM};
use crate::error::{AstroError, Result};
use crate::linalg::{Mat3, Vec3};
use core::f64::consts::TAU;

/// Maximum iterations for the Kepler-equation Newton solver.
const KEPLER_MAX_ITER: usize = 50;
/// Convergence tolerance for the Kepler-equation solver \[rad\].
const KEPLER_TOL: f64 = 1e-12;

/// Classical Keplerian orbital elements (Earth-centered).
///
/// Angles in radians, semi-major axis in kilometers. The fast variable is
/// the **mean anomaly** `mean_anomaly` — the natural choice for secular J2
/// propagation.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OrbitalElements {
    /// Semi-major axis \[km\]. Must exceed the Earth radius for the orbits
    /// this crate designs.
    pub semi_major_axis_km: f64,
    /// Eccentricity (0 ≤ e < 1; this crate designs near-circular orbits).
    pub eccentricity: f64,
    /// Inclination \[rad\], in `[0, π]`. Values > π/2 are retrograde
    /// (sun-synchronous orbits live here).
    pub inclination: f64,
    /// Right ascension of the ascending node Ω \[rad\].
    pub raan: f64,
    /// Argument of perigee ω \[rad\].
    pub arg_perigee: f64,
    /// Mean anomaly M \[rad\].
    pub mean_anomaly: f64,
}

impl OrbitalElements {
    /// Creates a circular orbit at the given altitude, inclination, RAAN and
    /// argument of latitude (angle from the ascending node along track).
    ///
    /// # Errors
    /// Returns [`AstroError::InvalidElement`] if the altitude is negative or
    /// the inclination falls outside `[0, π]`.
    pub fn circular(
        altitude_km: f64,
        inclination: f64,
        raan: f64,
        arg_latitude: f64,
    ) -> Result<Self> {
        if altitude_km < 0.0 {
            return Err(AstroError::InvalidElement {
                name: "altitude_km",
                value: altitude_km,
                constraint: "altitude >= 0",
            });
        }
        if !(0.0..=core::f64::consts::PI).contains(&inclination) {
            return Err(AstroError::InvalidElement {
                name: "inclination",
                value: inclination,
                constraint: "0 <= i <= pi",
            });
        }
        Ok(OrbitalElements {
            semi_major_axis_km: EARTH_RADIUS_KM + altitude_km,
            eccentricity: 0.0,
            inclination,
            raan: wrap_two_pi(raan),
            arg_perigee: 0.0,
            // For e = 0 mean anomaly equals true anomaly; with ω = 0 the
            // mean anomaly is the argument of latitude.
            mean_anomaly: wrap_two_pi(arg_latitude),
        })
    }

    /// Validates the elements' physical domain.
    ///
    /// # Errors
    /// Returns [`AstroError::InvalidElement`] naming the first element that
    /// violates its constraint.
    pub fn validate(&self) -> Result<()> {
        if !self.semi_major_axis_km.is_finite() || self.semi_major_axis_km <= EARTH_RADIUS_KM * 0.5
        {
            return Err(AstroError::InvalidElement {
                name: "semi_major_axis_km",
                value: self.semi_major_axis_km,
                constraint: "finite and well above Earth's center",
            });
        }
        if !(0.0..1.0).contains(&self.eccentricity) {
            return Err(AstroError::InvalidElement {
                name: "eccentricity",
                value: self.eccentricity,
                constraint: "0 <= e < 1 (elliptical)",
            });
        }
        if !(0.0..=core::f64::consts::PI).contains(&self.inclination) {
            return Err(AstroError::InvalidElement {
                name: "inclination",
                value: self.inclination,
                constraint: "0 <= i <= pi",
            });
        }
        Ok(())
    }

    /// Altitude of a circular orbit \[km\] (semi-major axis minus Earth
    /// radius). For eccentric orbits this is the mean altitude.
    #[inline]
    pub fn altitude_km(&self) -> f64 {
        self.semi_major_axis_km - EARTH_RADIUS_KM
    }

    /// Inclination in degrees (convenience for display and tests).
    #[inline]
    pub fn inclination_deg(&self) -> f64 {
        self.inclination.to_degrees()
    }

    /// Mean motion n = √(μ/a³) \[rad/s\].
    #[inline]
    pub fn mean_motion(&self) -> f64 {
        (EARTH_MU / self.semi_major_axis_km.powi(3)).sqrt()
    }

    /// Keplerian (unperturbed) orbital period \[s\].
    #[inline]
    pub fn period_s(&self) -> f64 {
        TAU / self.mean_motion()
    }

    /// Semi-latus rectum p = a(1-e²) \[km\].
    #[inline]
    pub fn semi_latus_rectum(&self) -> f64 {
        self.semi_major_axis_km * (1.0 - self.eccentricity * self.eccentricity)
    }

    /// Converts the elements to an ECI Cartesian state (position km,
    /// velocity km/s).
    ///
    /// # Errors
    /// Propagates Kepler-solver non-convergence (practically unreachable
    /// for valid eccentricities).
    pub fn to_cartesian(&self) -> Result<(Vec3, Vec3)> {
        self.validate()?;
        let e = self.eccentricity;
        let ea = solve_kepler(self.mean_anomaly, e)?;
        let nu = eccentric_to_true(ea, e);
        let p = self.semi_latus_rectum();
        let r = p / (1.0 + e * nu.cos());

        // Perifocal frame position/velocity.
        let (snu, cnu) = nu.sin_cos();
        let r_pf = Vec3::new(r * cnu, r * snu, 0.0);
        let coef = (EARTH_MU / p).sqrt();
        let v_pf = Vec3::new(-coef * snu, coef * (e + cnu), 0.0);

        // Perifocal -> ECI: ROT3(-Ω) ROT1(-i) ROT3(-ω).
        let dcm = Mat3::rot_z(-self.raan)
            .mul_mat(Mat3::rot_x(-self.inclination))
            .mul_mat(Mat3::rot_z(-self.arg_perigee));
        Ok((dcm * r_pf, dcm * v_pf))
    }

    /// Recovers orbital elements from an ECI Cartesian state.
    ///
    /// Near-circular and near-equatorial degeneracies are resolved with the
    /// usual conventions (node at +X for equatorial orbits, perigee at the
    /// node for circular orbits).
    ///
    /// # Errors
    /// Returns [`AstroError::InvalidElement`] for unbound (parabolic or
    /// hyperbolic) states.
    pub fn from_cartesian(position_km: Vec3, velocity_km_s: Vec3) -> Result<Self> {
        let r = position_km.norm();
        let v2 = velocity_km_s.norm_squared();
        let energy = v2 / 2.0 - EARTH_MU / r;
        if energy >= 0.0 {
            return Err(AstroError::InvalidElement {
                name: "specific energy",
                value: energy,
                constraint: "negative (bound orbit)",
            });
        }
        let a = -EARTH_MU / (2.0 * energy);

        let h = position_km.cross(velocity_km_s);
        let hn = h.norm();
        // Eccentricity vector.
        let e_vec = velocity_km_s.cross(h) / EARTH_MU - position_km / r;
        let e = e_vec.norm();

        let inclination = (h.z / hn).acos();

        // Node vector (points to ascending node).
        let n_vec = Vec3::Z.cross(h);
        let nn = n_vec.norm();
        let equatorial = nn < 1e-11 * hn;
        let circular = e < 1e-11;

        let raan = if equatorial { 0.0 } else { wrap_two_pi(n_vec.y.atan2(n_vec.x)) };

        let arg_perigee = if circular {
            0.0
        } else if equatorial {
            // Angle of e_vec from +X, signed by h direction.
            let w = e_vec.y.atan2(e_vec.x);
            wrap_two_pi(if h.z >= 0.0 { w } else { -w })
        } else {
            let cos_w = (n_vec.dot(e_vec) / (nn * e)).clamp(-1.0, 1.0);
            let mut w = cos_w.acos();
            if e_vec.z < 0.0 {
                w = TAU - w;
            }
            w
        };

        // True anomaly (or argument of latitude for circular orbits).
        let nu = if circular {
            if equatorial {
                wrap_two_pi(position_km.y.atan2(position_km.x) - raan)
            } else {
                let cos_u = (n_vec.dot(position_km) / (nn * r)).clamp(-1.0, 1.0);
                let mut u = cos_u.acos();
                if position_km.z < 0.0 {
                    u = TAU - u;
                }
                u
            }
        } else {
            let cos_nu = (e_vec.dot(position_km) / (e * r)).clamp(-1.0, 1.0);
            let mut nu = cos_nu.acos();
            if position_km.dot(velocity_km_s) < 0.0 {
                nu = TAU - nu;
            }
            nu
        };

        let ea = true_to_eccentric(nu, e);
        let mean_anomaly = wrap_two_pi(ea - e * ea.sin());

        Ok(OrbitalElements {
            semi_major_axis_km: a,
            eccentricity: e,
            inclination,
            raan,
            arg_perigee,
            mean_anomaly,
        })
    }
}

/// Solves Kepler's equation `M = E - e sin E` for the eccentric anomaly `E`.
///
/// Newton-Raphson with a third-order starter; converges in a handful of
/// iterations for all elliptical eccentricities.
///
/// # Errors
/// Returns [`AstroError::NoConvergence`] if the tolerance is not reached
/// within the iteration cap (not observed for `0 <= e < 1`).
pub fn solve_kepler(mean_anomaly: f64, eccentricity: f64) -> Result<f64> {
    let m = wrap_two_pi(mean_anomaly);
    let e = eccentricity;
    // Starter (Vallado alg. 2): E0 = M + e sin M works well below e ~ 0.9.
    let mut ea = if e < 0.8 { m + e * m.sin() } else { core::f64::consts::PI };
    for _ in 0..KEPLER_MAX_ITER {
        let f = ea - e * ea.sin() - m;
        let fp = 1.0 - e * ea.cos();
        let delta = f / fp;
        ea -= delta;
        if delta.abs() < KEPLER_TOL {
            return Ok(ea);
        }
    }
    Err(AstroError::NoConvergence { what: "Kepler equation solver", iterations: KEPLER_MAX_ITER })
}

/// Converts eccentric anomaly to true anomaly.
#[inline]
pub fn eccentric_to_true(ea: f64, e: f64) -> f64 {
    let beta = e / (1.0 + (1.0 - e * e).sqrt());
    ea + 2.0 * (beta * ea.sin() / (1.0 - beta * ea.cos())).atan()
}

/// Converts true anomaly to eccentric anomaly.
#[inline]
pub fn true_to_eccentric(nu: f64, e: f64) -> f64 {
    let beta = e / (1.0 + (1.0 - e * e).sqrt());
    nu - 2.0 * (beta * nu.sin() / (1.0 + beta * nu.cos())).atan()
}

/// Converts mean anomaly directly to true anomaly.
///
/// # Errors
/// Propagates Kepler-solver non-convergence.
pub fn mean_to_true(mean_anomaly: f64, e: f64) -> Result<f64> {
    Ok(eccentric_to_true(solve_kepler(mean_anomaly, e)?, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::angles::separation;

    #[test]
    fn circular_orbit_basics() {
        let el = OrbitalElements::circular(560.0, 65f64.to_radians(), 0.0, 0.0).unwrap();
        assert!((el.altitude_km() - 560.0).abs() < 1e-9);
        // ~95.7 minutes at 560 km.
        assert!((el.period_s() / 60.0 - 95.6).abs() < 0.5, "T = {} min", el.period_s() / 60.0);
    }

    #[test]
    fn kepler_solver_exact_for_circular() {
        let ea = solve_kepler(1.234, 0.0).unwrap();
        assert!((ea - 1.234).abs() < 1e-12);
    }

    #[test]
    fn kepler_solver_satisfies_equation() {
        for &e in &[0.001, 0.1, 0.5, 0.9, 0.99] {
            for i in 0..32 {
                let m = TAU * (i as f64) / 32.0;
                let ea = solve_kepler(m, e).unwrap();
                let residual = (ea - e * ea.sin() - m + TAU) % TAU;
                let residual = residual.min(TAU - residual);
                assert!(residual < 1e-10, "e={e} m={m} residual={residual}");
            }
        }
    }

    #[test]
    fn anomaly_round_trip() {
        for &e in &[0.0, 0.2, 0.7] {
            for i in 0..16 {
                let nu = TAU * (i as f64) / 16.0;
                let ea = true_to_eccentric(nu, e);
                let back = eccentric_to_true(ea, e);
                assert!(separation(nu, back) < 1e-10, "e={e} nu={nu} back={back}");
            }
        }
    }

    #[test]
    fn cartesian_round_trip_general_orbit() {
        let el = OrbitalElements {
            semi_major_axis_km: 7100.0,
            eccentricity: 0.02,
            inclination: 1.2,
            raan: 2.3,
            arg_perigee: 0.7,
            mean_anomaly: 4.0,
        };
        let (r, v) = el.to_cartesian().unwrap();
        let back = OrbitalElements::from_cartesian(r, v).unwrap();
        assert!((back.semi_major_axis_km - el.semi_major_axis_km).abs() < 1e-6);
        assert!((back.eccentricity - el.eccentricity).abs() < 1e-9);
        assert!((back.inclination - el.inclination).abs() < 1e-9);
        assert!(separation(back.raan, el.raan) < 1e-9);
        assert!(separation(back.arg_perigee, el.arg_perigee) < 1e-8);
        assert!(separation(back.mean_anomaly, el.mean_anomaly) < 1e-8);
    }

    #[test]
    fn cartesian_round_trip_circular_retrograde() {
        // Sun-synchronous-like orbit: retrograde, circular.
        let el = OrbitalElements::circular(560.0, 97.7f64.to_radians(), 1.0, 2.5).unwrap();
        let (r, v) = el.to_cartesian().unwrap();
        let back = OrbitalElements::from_cartesian(r, v).unwrap();
        assert!((back.inclination - el.inclination).abs() < 1e-9);
        assert!(separation(back.raan, el.raan) < 1e-9);
        // For circular orbits compare argument of latitude (ω + M).
        let u0 = el.arg_perigee + el.mean_anomaly;
        let u1 = back.arg_perigee + back.mean_anomaly;
        assert!(separation(u0, u1) < 1e-8);
    }

    #[test]
    fn vis_viva_on_conversion() {
        let el = OrbitalElements::circular(1000.0, 0.9, 0.3, 1.1).unwrap();
        let (r, v) = el.to_cartesian().unwrap();
        let vis_viva = (EARTH_MU * (2.0 / r.norm() - 1.0 / el.semi_major_axis_km)).sqrt();
        assert!((v.norm() - vis_viva).abs() < 1e-9);
    }

    #[test]
    fn hyperbolic_state_rejected() {
        let r = Vec3::new(EARTH_RADIUS_KM + 500.0, 0.0, 0.0);
        let v = Vec3::new(0.0, 20.0, 0.0); // way above escape velocity
        assert!(matches!(
            OrbitalElements::from_cartesian(r, v),
            Err(AstroError::InvalidElement { .. })
        ));
    }

    #[test]
    fn invalid_elements_rejected() {
        assert!(OrbitalElements::circular(-10.0, 0.5, 0.0, 0.0).is_err());
        assert!(OrbitalElements::circular(500.0, 3.5, 0.0, 0.0).is_err());
        let mut el = OrbitalElements::circular(500.0, 0.5, 0.0, 0.0).unwrap();
        el.eccentricity = 1.5;
        assert!(el.validate().is_err());
    }
}
