//! # ssplane-astro
//!
//! Orbital-mechanics substrate for the `ss-plane` project, a reproduction of
//! *"Sustainability or Survivability? Eliminating the Need to Choose in LEO
//! Satellite Constellations"* (HotNets 2025).
//!
//! This crate implements, from scratch, every piece of astrodynamics the
//! paper relies on:
//!
//! * time systems ([`time`]): Julian dates, Greenwich Mean Sidereal Time,
//!   local solar time;
//! * small fixed-size linear algebra ([`linalg`]);
//! * Keplerian orbital elements and anomaly conversions ([`kepler`]);
//! * two-body propagation with secular J2 effects ([`propagate`]) — J2 nodal
//!   precession is the physical mechanism that makes sun-synchronous orbits
//!   possible, so it is treated as a first-class citizen;
//! * a low-precision solar ephemeris ([`sun`]);
//! * reference frames ([`frames`]): ECI ↔ ECEF ↔ geodetic, plus the
//!   *sun-relative* frame in which the paper's demand model is stationary;
//! * spherical-Earth geography helpers ([`geo`]);
//! * coverage geometry ([`coverage`]): min-elevation coverage caps and
//!   streets-of-coverage constellation sizing;
//! * Walker-delta constellation generation ([`walker`]);
//! * sun-synchronous orbit design ([`sunsync`]);
//! * repeat-ground-track orbit design ([`rgt`]);
//! * ground tracks and swaths ([`ground_track`]).
//!
//! ## Conventions
//!
//! * Lengths are in **kilometers**, velocities in **km/s**, angles in
//!   **radians** (helpers in [`angles`] convert), times in **seconds**.
//! * Epochs are carried as seconds since J2000.0 (TT ≈ UTC is assumed; the
//!   sub-minute difference is irrelevant at the fidelity of the paper).
//! * The Earth is modeled as a rotating sphere of radius
//!   [`constants::EARTH_RADIUS_KM`] with a J2 zonal harmonic. This is the
//!   same fidelity the paper works at.
//!
//! ## Quick example
//!
//! ```
//! use ssplane_astro::sunsync;
//!
//! // The paper's reference altitude: ~560 km sun-synchronous orbit.
//! let orbit = sunsync::sun_synchronous_orbit(560.0).unwrap();
//! assert!(orbit.inclination_deg() > 97.0 && orbit.inclination_deg() < 98.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod angles;
pub mod constants;
pub mod coverage;
pub mod drag;
pub mod eclipse;
pub mod error;
pub mod frames;
pub mod geo;
pub mod ground_track;
pub mod kepler;
pub mod linalg;
pub mod propagate;
pub mod rgt;
pub mod sun;
pub mod sunsync;
pub mod time;
pub mod walker;

pub use error::{AstroError, Result};
pub use kepler::OrbitalElements;
pub use linalg::Vec3;
pub use time::Epoch;
