//! Minimal fixed-size linear algebra: 3-vectors and 3×3 rotation matrices.
//!
//! Deliberately small and dependency-free (in the spirit of smoltcp's
//! "simplicity over cleverness"): only the operations the rest of the
//! workspace needs, all `f64`, all `#[inline]`-friendly value types.

use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 3-dimensional vector of `f64` components.
///
/// Units are contextual (km for positions, km/s for velocities, unitless for
/// directions); operations never change units implicitly.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };
    /// Unit vector along +X.
    pub const X: Vec3 = Vec3 { x: 1.0, y: 0.0, z: 0.0 };
    /// Unit vector along +Y.
    pub const Y: Vec3 = Vec3 { x: 0.0, y: 1.0, z: 0.0 };
    /// Unit vector along +Z.
    pub const Z: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 1.0 };

    /// Constructs a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm (avoids the square root).
    #[inline]
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product (right-handed).
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Returns the unit vector in this direction.
    ///
    /// Returns `None` for vectors with norm below `1e-300` to avoid
    /// producing NaNs from near-zero input.
    #[inline]
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n < 1e-300 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Angle between two vectors in radians, in `[0, π]`.
    ///
    /// Numerically robust near 0 and π (uses `atan2` of cross/dot rather
    /// than `acos` of the clamped dot product).
    #[inline]
    pub fn angle_to(self, rhs: Vec3) -> f64 {
        self.cross(rhs).norm().atan2(self.dot(rhs))
    }

    /// Component-wise linear interpolation: `self + t * (rhs - self)`.
    #[inline]
    pub fn lerp(self, rhs: Vec3, t: f64) -> Vec3 {
        self + (rhs - self) * t
    }

    /// True if any component is NaN or infinite.
    #[inline]
    pub fn is_non_finite(self) -> bool {
        !(self.x.is_finite() && self.y.is_finite() && self.z.is_finite())
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

/// A 3×3 matrix stored row-major, used for frame rotations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat3 {
    /// Rows of the matrix.
    pub rows: [Vec3; 3],
}

impl Mat3 {
    /// Identity matrix.
    pub const IDENTITY: Mat3 = Mat3 { rows: [Vec3::X, Vec3::Y, Vec3::Z] };

    /// Builds a matrix from three rows.
    #[inline]
    pub const fn from_rows(r0: Vec3, r1: Vec3, r2: Vec3) -> Mat3 {
        Mat3 { rows: [r0, r1, r2] }
    }

    /// Rotation about the X axis by `angle` radians (passive/frame
    /// rotation convention, Vallado's ROT1).
    pub fn rot_x(angle: f64) -> Mat3 {
        let (s, c) = angle.sin_cos();
        Mat3::from_rows(Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, c, s), Vec3::new(0.0, -s, c))
    }

    /// Rotation about the Y axis by `angle` radians (ROT2).
    pub fn rot_y(angle: f64) -> Mat3 {
        let (s, c) = angle.sin_cos();
        Mat3::from_rows(Vec3::new(c, 0.0, -s), Vec3::new(0.0, 1.0, 0.0), Vec3::new(s, 0.0, c))
    }

    /// Rotation about the Z axis by `angle` radians (ROT3).
    pub fn rot_z(angle: f64) -> Mat3 {
        let (s, c) = angle.sin_cos();
        Mat3::from_rows(Vec3::new(c, s, 0.0), Vec3::new(-s, c, 0.0), Vec3::new(0.0, 0.0, 1.0))
    }

    /// Matrix transpose (= inverse for rotation matrices).
    pub fn transpose(self) -> Mat3 {
        let [a, b, c] = self.rows;
        Mat3::from_rows(
            Vec3::new(a.x, b.x, c.x),
            Vec3::new(a.y, b.y, c.y),
            Vec3::new(a.z, b.z, c.z),
        )
    }

    /// Matrix-matrix product.
    pub fn mul_mat(self, rhs: Mat3) -> Mat3 {
        let t = rhs.transpose();
        Mat3::from_rows(
            Vec3::new(
                self.rows[0].dot(t.rows[0]),
                self.rows[0].dot(t.rows[1]),
                self.rows[0].dot(t.rows[2]),
            ),
            Vec3::new(
                self.rows[1].dot(t.rows[0]),
                self.rows[1].dot(t.rows[1]),
                self.rows[1].dot(t.rows[2]),
            ),
            Vec3::new(
                self.rows[2].dot(t.rows[0]),
                self.rows[2].dot(t.rows[1]),
                self.rows[2].dot(t.rows[2]),
            ),
        )
    }
}

impl Mul<Vec3> for Mat3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        Vec3::new(self.rows[0].dot(v), self.rows[1].dot(v), self.rows[2].dot(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::f64::consts::{FRAC_PI_2, PI};

    fn approx(a: Vec3, b: Vec3, tol: f64) -> bool {
        (a - b).norm() < tol
    }

    #[test]
    fn cross_product_right_handed() {
        assert!(approx(Vec3::X.cross(Vec3::Y), Vec3::Z, 1e-15));
        assert!(approx(Vec3::Y.cross(Vec3::Z), Vec3::X, 1e-15));
        assert!(approx(Vec3::Z.cross(Vec3::X), Vec3::Y, 1e-15));
    }

    #[test]
    fn angle_to_is_robust_at_extremes() {
        assert!((Vec3::X.angle_to(Vec3::X)).abs() < 1e-12);
        assert!((Vec3::X.angle_to(-Vec3::X) - PI).abs() < 1e-12);
        assert!((Vec3::X.angle_to(Vec3::Y) - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn rot_z_passive_convention() {
        // A frame rotation by +90° about Z maps the +X axis vector onto the
        // new frame's -Y... i.e. expresses an inertial +X vector as +(-Y)?
        // Concretely: rot_z(90°) * X = (cos90·1, -sin90·1, 0) = (0,-1,0)?
        // With ROT3 rows ((c,s,0),(-s,c,0),(0,0,1)): M*X = (c,-s,0).
        let m = Mat3::rot_z(FRAC_PI_2);
        let v = m * Vec3::X;
        assert!(approx(v, -Vec3::Y, 1e-12), "{v:?}");
        // And the transpose undoes it.
        assert!(approx(m.transpose() * v, Vec3::X, 1e-12));
    }

    #[test]
    fn rotation_preserves_norm() {
        let v = Vec3::new(1.3, -2.7, 0.4);
        let m = Mat3::rot_x(0.3).mul_mat(Mat3::rot_z(-1.1)).mul_mat(Mat3::rot_y(2.2));
        assert!(((m * v).norm() - v.norm()).abs() < 1e-12);
    }

    #[test]
    fn normalized_rejects_zero() {
        assert!(Vec3::ZERO.normalized().is_none());
        let u = Vec3::new(3.0, 4.0, 0.0).normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 0.0, 9.0);
        assert!(approx(a.lerp(b, 0.0), a, 1e-15));
        assert!(approx(a.lerp(b, 1.0), b, 1e-15));
        assert!(approx(a.lerp(b, 0.5), (a + b) * 0.5, 1e-15));
    }
}
