//! Orbit propagation with secular J2 effects.
//!
//! Two propagators are provided:
//!
//! * [`J2Propagator`] — the workhorse: closed-form secular propagation of
//!   the mean elements (Ω, ω, M advance linearly in time). This captures
//!   exactly the physics the paper's arguments rest on — J2 nodal
//!   precession (sun-synchrony) and nodal-period commensurability (repeat
//!   ground tracks) — at a few ns per evaluation and with no accumulation
//!   of numerical error over multi-day horizons.
//! * [`NumericalPropagator`] — an RK4 integrator of the full two-body + J2
//!   acceleration, used in tests to validate the secular rates and
//!   available for callers who need short-arc osculating states.

use crate::constants::{EARTH_J2, EARTH_MU, EARTH_RADIUS_KM};
use crate::error::Result;
use crate::kepler::OrbitalElements;
use crate::linalg::Vec3;
use crate::time::Epoch;

/// Secular J2 rates (radians per second) for a given mean-element set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct J2Rates {
    /// Nodal precession rate Ω̇ \[rad/s\]. Negative for prograde orbits,
    /// positive for retrograde — sun-synchronous orbits choose the
    /// inclination where this equals [`crate::constants::SUN_SYNC_NODE_RATE`].
    pub raan_rate: f64,
    /// Apsidal rotation rate ω̇ \[rad/s\].
    pub arg_perigee_rate: f64,
    /// Secular correction to the mean anomaly rate beyond the two-body mean
    /// motion \[rad/s\].
    pub mean_anomaly_drift: f64,
}

/// Computes the secular J2 rates for the given elements.
///
/// Standard first-order secular theory (Vallado §9.4):
///
/// ```text
/// Ω̇  = -(3/2) J₂ n (Re/p)² cos i
/// ω̇  =  (3/4) J₂ n (Re/p)² (5 cos²i - 1)
/// ΔṀ =  (3/4) J₂ n (Re/p)² √(1-e²) (3 cos²i - 1)
/// ```
pub fn j2_rates(elements: &OrbitalElements) -> J2Rates {
    let n = elements.mean_motion();
    let p = elements.semi_latus_rectum();
    let cos_i = elements.inclination.cos();
    let k = 1.5 * EARTH_J2 * (EARTH_RADIUS_KM / p).powi(2) * n;
    let e2 = elements.eccentricity * elements.eccentricity;
    J2Rates {
        raan_rate: -k * cos_i,
        arg_perigee_rate: 0.5 * k * (5.0 * cos_i * cos_i - 1.0),
        mean_anomaly_drift: 0.5 * k * (1.0 - e2).sqrt() * (3.0 * cos_i * cos_i - 1.0),
    }
}

/// Nodal (draconic) period: time between successive ascending-node
/// crossings \[s\], accounting for secular J2 rates.
pub fn nodal_period_s(elements: &OrbitalElements) -> f64 {
    let rates = j2_rates(elements);
    let angular_rate = elements.mean_motion() + rates.mean_anomaly_drift + rates.arg_perigee_rate;
    core::f64::consts::TAU / angular_rate
}

/// Closed-form secular J2 propagator over mean elements.
///
/// Construct once per satellite; evaluation at any epoch is O(1) and does
/// not accumulate error, which matters for the multi-day fluence and
/// coverage integrations driving the paper's figures.
#[derive(Debug, Clone, Copy)]
pub struct J2Propagator {
    epoch: Epoch,
    elements: OrbitalElements,
    rates: J2Rates,
    mean_motion: f64,
}

impl J2Propagator {
    /// Creates a propagator for `elements` valid at `epoch`.
    ///
    /// # Errors
    /// Returns an error if the elements are outside their physical domain.
    pub fn new(epoch: Epoch, elements: OrbitalElements) -> Result<Self> {
        elements.validate()?;
        Ok(J2Propagator {
            epoch,
            elements,
            rates: j2_rates(&elements),
            mean_motion: elements.mean_motion(),
        })
    }

    /// The reference epoch of the propagator.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// The mean elements at the reference epoch.
    pub fn elements(&self) -> &OrbitalElements {
        &self.elements
    }

    /// The secular rates in effect.
    pub fn rates(&self) -> J2Rates {
        self.rates
    }

    /// Mean elements propagated to epoch `t`.
    pub fn elements_at(&self, t: Epoch) -> OrbitalElements {
        let dt = t - self.epoch;
        let mut el = self.elements;
        el.raan = crate::angles::wrap_two_pi(el.raan + self.rates.raan_rate * dt);
        el.arg_perigee =
            crate::angles::wrap_two_pi(el.arg_perigee + self.rates.arg_perigee_rate * dt);
        el.mean_anomaly = crate::angles::wrap_two_pi(
            el.mean_anomaly + (self.mean_motion + self.rates.mean_anomaly_drift) * dt,
        );
        el
    }

    /// ECI state (position km, velocity km/s) at epoch `t`.
    ///
    /// # Errors
    /// Propagates Kepler-solver failure (practically unreachable).
    pub fn state_at(&self, t: Epoch) -> Result<(Vec3, Vec3)> {
        self.elements_at(t).to_cartesian()
    }

    /// ECI position \[km\] at epoch `t` (velocity discarded).
    ///
    /// # Errors
    /// Propagates Kepler-solver failure (practically unreachable).
    pub fn position_at(&self, t: Epoch) -> Result<Vec3> {
        Ok(self.state_at(t)?.0)
    }
}

/// Batch-propagates a satellite set to one epoch, writing ECI positions
/// \[km\] into parallel structure-of-arrays buffers.
///
/// This is the entry point the `ssplane-lsn` snapshot cache builds on:
/// one call fills a whole constellation's worth of coordinates for one
/// time slot, and because the output buffers are plain `&mut [f64]`
/// slices, a caller can carve a larger time-grid allocation into
/// disjoint per-slot chunks and fill them from parallel workers. Each
/// position is computed by [`J2Propagator::position_at`], so the values
/// are bit-identical to per-satellite calls.
///
/// # Panics
/// If the buffer lengths differ from `props.len()`.
///
/// # Errors
/// Propagates Kepler-solver failure (practically unreachable).
pub fn batch_positions_soa(
    props: &[J2Propagator],
    t: Epoch,
    xs: &mut [f64],
    ys: &mut [f64],
    zs: &mut [f64],
) -> Result<()> {
    assert!(
        xs.len() == props.len() && ys.len() == props.len() && zs.len() == props.len(),
        "SoA buffers must match the propagator count"
    );
    for (i, prop) in props.iter().enumerate() {
        let r = prop.position_at(t)?;
        xs[i] = r.x;
        ys[i] = r.y;
        zs[i] = r.z;
    }
    Ok(())
}

/// Two-body + J2 point-mass acceleration \[km/s²\] at ECI position `r`.
pub fn acceleration_two_body_j2(r: Vec3) -> Vec3 {
    let rn = r.norm();
    let rn2 = rn * rn;
    let two_body = r * (-EARTH_MU / (rn2 * rn));
    // J2 perturbation (Vallado eq. 8-30).
    let k = -1.5 * EARTH_J2 * EARTH_MU * EARTH_RADIUS_KM * EARTH_RADIUS_KM / (rn2 * rn2 * rn);
    let z2_r2 = (r.z * r.z) / rn2;
    let j2 = Vec3::new(
        k * r.x * (1.0 - 5.0 * z2_r2),
        k * r.y * (1.0 - 5.0 * z2_r2),
        k * r.z * (3.0 - 5.0 * z2_r2),
    );
    two_body + j2
}

/// Fixed-step RK4 integrator of the two-body + J2 equations of motion.
///
/// Used for validating [`J2Propagator`]'s secular rates and for short-arc
/// work where osculating (rather than mean) states matter.
#[derive(Debug, Clone)]
pub struct NumericalPropagator {
    epoch: Epoch,
    position: Vec3,
    velocity: Vec3,
    /// Integration step \[s\]. 10 s keeps LEO position error < 1 m/orbit.
    pub step_s: f64,
}

impl NumericalPropagator {
    /// Creates a numerical propagator from an initial ECI state.
    pub fn new(epoch: Epoch, position_km: Vec3, velocity_km_s: Vec3) -> Self {
        NumericalPropagator { epoch, position: position_km, velocity: velocity_km_s, step_s: 10.0 }
    }

    /// Creates a numerical propagator from mean elements (converted to an
    /// osculating-equivalent Cartesian state).
    ///
    /// # Errors
    /// Propagates element validation / Kepler-solver failure.
    pub fn from_elements(epoch: Epoch, elements: &OrbitalElements) -> Result<Self> {
        let (r, v) = elements.to_cartesian()?;
        Ok(Self::new(epoch, r, v))
    }

    /// Integrates forward (or backward) to epoch `t` and returns the state.
    pub fn propagate_to(&mut self, t: Epoch) -> (Vec3, Vec3) {
        let mut remaining = t - self.epoch;
        let dir = if remaining >= 0.0 { 1.0 } else { -1.0 };
        remaining = remaining.abs();
        while remaining > 0.0 {
            let h = remaining.min(self.step_s) * dir;
            self.rk4_step(h);
            remaining -= h.abs();
        }
        self.epoch = t;
        (self.position, self.velocity)
    }

    fn rk4_step(&mut self, h: f64) {
        let (r0, v0) = (self.position, self.velocity);

        let k1v = acceleration_two_body_j2(r0);
        let k1r = v0;

        let k2v = acceleration_two_body_j2(r0 + k1r * (h / 2.0));
        let k2r = v0 + k1v * (h / 2.0);

        let k3v = acceleration_two_body_j2(r0 + k2r * (h / 2.0));
        let k3r = v0 + k2v * (h / 2.0);

        let k4v = acceleration_two_body_j2(r0 + k3r * h);
        let k4r = v0 + k3v * h;

        self.position = r0 + (k1r + 2.0 * k2r + 2.0 * k3r + k4r) * (h / 6.0);
        self.velocity = v0 + (k1v + 2.0 * k2v + 2.0 * k3v + k4v) * (h / 6.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::angles::separation;
    use crate::constants::SUN_SYNC_NODE_RATE;

    fn circ(alt: f64, inc_deg: f64) -> OrbitalElements {
        OrbitalElements::circular(alt, inc_deg.to_radians(), 0.0, 0.0).unwrap()
    }

    #[test]
    fn j2_rates_signs() {
        // Prograde: node regresses (west); retrograde: node advances (east).
        assert!(j2_rates(&circ(560.0, 53.0)).raan_rate < 0.0);
        assert!(j2_rates(&circ(560.0, 97.7)).raan_rate > 0.0);
        // Polar orbit: no nodal precession.
        assert!(j2_rates(&circ(560.0, 90.0)).raan_rate.abs() < 1e-12);
    }

    #[test]
    fn j2_nodal_rate_matches_reference_value() {
        // Textbook check: ISS-like orbit (420 km, 51.6°) precesses about
        // -5.0 °/day.
        let rates = j2_rates(&circ(420.0, 51.6));
        let deg_day = rates.raan_rate.to_degrees() * 86400.0;
        assert!((deg_day + 5.0).abs() < 0.15, "got {deg_day} deg/day");
    }

    #[test]
    fn sun_sync_inclination_gives_sun_sync_rate() {
        // ~97.64° at 560 km is the known SSO inclination.
        let rates = j2_rates(&circ(560.0, 97.64));
        assert!(
            (rates.raan_rate - SUN_SYNC_NODE_RATE).abs() / SUN_SYNC_NODE_RATE < 0.01,
            "raan rate {} vs target {}",
            rates.raan_rate,
            SUN_SYNC_NODE_RATE
        );
    }

    #[test]
    fn secular_propagation_wraps_and_advances() {
        let el = circ(560.0, 65.0);
        let prop = J2Propagator::new(Epoch::J2000, el).unwrap();
        let one_day = Epoch::J2000 + 86400.0;
        let el1 = prop.elements_at(one_day);
        // About 15.2 orbits/day at 560 km: mean anomaly advanced and wrapped.
        assert!((0.0..core::f64::consts::TAU).contains(&el1.mean_anomaly));
        // Node moved west by a few degrees.
        let moved = separation(el1.raan, el.raan).to_degrees();
        assert!(moved > 2.0 && moved < 8.0, "node moved {moved} deg/day");
    }

    #[test]
    fn numerical_propagator_conserves_radius_for_circular() {
        let el = circ(560.0, 65.0);
        let mut num = NumericalPropagator::from_elements(Epoch::J2000, &el).unwrap();
        let (r, _) = num.propagate_to(Epoch::J2000 + el.period_s());
        // J2 causes small periodic radius oscillation (~10 km), not secular decay.
        assert!((r.norm() - el.semi_major_axis_km).abs() < 25.0);
    }

    #[test]
    fn secular_node_rate_matches_numerical_integration() {
        // Validate the secular Ω̇ against brute-force RK4 over 10 orbits.
        let el = circ(700.0, 98.0);
        let period = el.period_s();
        let horizon = 10.0 * period;
        let mut num = NumericalPropagator::from_elements(Epoch::J2000, &el).unwrap();
        let (r, v) = num.propagate_to(Epoch::J2000 + horizon);
        let osc = OrbitalElements::from_cartesian(r, v).unwrap();
        let analytic = j2_rates(&el).raan_rate * horizon;
        let numeric = crate::angles::wrap_pi(osc.raan - el.raan);
        // Agreement within ~6% over 10 orbits (short-period terms not modeled
        // in the secular theory account for the residual).
        let err = (numeric - analytic).abs() / analytic.abs();
        assert!(err < 0.06, "numeric {numeric}, analytic {analytic}, rel err {err}");
    }

    #[test]
    fn rk4_energy_stability() {
        let el = circ(560.0, 97.7);
        let (r0, v0) = el.to_cartesian().unwrap();
        let energy = |r: Vec3, v: Vec3| {
            v.norm_squared() / 2.0
                - EARTH_MU / r.norm()
                - EARTH_MU * EARTH_J2 * EARTH_RADIUS_KM * EARTH_RADIUS_KM / (2.0 * r.norm().powi(3))
                    * (1.0 - 3.0 * (r.z / r.norm()).powi(2))
        };
        let e0 = energy(r0, v0);
        let mut num = NumericalPropagator::new(Epoch::J2000, r0, v0);
        let (r1, v1) = num.propagate_to(Epoch::J2000 + 86400.0);
        let e1 = energy(r1, v1);
        assert!(((e1 - e0) / e0).abs() < 1e-7, "energy drift {}", (e1 - e0) / e0);
    }

    #[test]
    fn batch_positions_match_per_satellite_calls() {
        let props: Vec<J2Propagator> = (0..7)
            .map(|k| {
                let el = OrbitalElements::circular(
                    560.0 + 10.0 * f64::from(k),
                    1.7,
                    0.3,
                    0.2 * f64::from(k),
                )
                .unwrap();
                J2Propagator::new(Epoch::J2000, el).unwrap()
            })
            .collect();
        let t = Epoch::J2000 + 4321.0;
        let (mut xs, mut ys, mut zs) = (vec![0.0; 7], vec![0.0; 7], vec![0.0; 7]);
        batch_positions_soa(&props, t, &mut xs, &mut ys, &mut zs).unwrap();
        for (i, prop) in props.iter().enumerate() {
            let r = prop.position_at(t).unwrap();
            assert_eq!((xs[i], ys[i], zs[i]), (r.x, r.y, r.z), "satellite {i}");
        }
    }

    #[test]
    fn nodal_period_shorter_than_keplerian_for_sso() {
        // For retrograde SSO, ω̇+ΔṀ > 0 near the critical inclination? Just
        // check it is within 1% of the Keplerian period and positive.
        let el = circ(560.0, 97.64);
        let t_n = nodal_period_s(&el);
        assert!(t_n > 0.0);
        assert!((t_n - el.period_s()).abs() / el.period_s() < 0.01);
    }
}
