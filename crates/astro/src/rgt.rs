//! Repeat ground-track (RGT) orbit design and coverage analysis.
//!
//! An RGT orbit retraces the same path over the Earth's surface every
//! `m` nodal days / `k` revolutions. §2.2 of the paper shows these orbits
//! are *not* a shortcut to small constellations: covering a single track
//! continuously takes **more** satellites than uniform Walker-delta
//! coverage at the same altitude, and most LEO RGTs end up nearly uniform
//! anyway because adjacent passes sit closer than a swath width.
//!
//! The repeat condition, including secular J2 rates, is
//!
//! ```text
//! (n + ΔṀ + ω̇) / (ω⊕ − Ω̇) = k / m
//! ```
//!
//! i.e. `k` nodal revolutions fit exactly into `m` rotations of the Earth
//! *relative to the precessing orbital plane*.

use crate::constants::EARTH_ROTATION_RATE;
use crate::error::{AstroError, Result};
use crate::kepler::OrbitalElements;
use crate::linalg::Vec3;
use crate::propagate::j2_rates;
use core::f64::consts::TAU;

/// A repeat-ground-track orbit: `revs` revolutions per `days` nodal days.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RgtOrbit {
    /// Revolutions per repeat cycle `k`.
    pub revs: u32,
    /// Nodal days per repeat cycle `m` (coprime with `revs`).
    pub days: u32,
    /// Circular altitude \[km\] solving the commensurability condition.
    pub altitude_km: f64,
    /// Inclination \[rad\].
    pub inclination: f64,
}

impl RgtOrbit {
    /// Revolutions per nodal day (`k/m`).
    pub fn revs_per_day(&self) -> f64 {
        self.revs as f64 / self.days as f64
    }

    /// Equatorial spacing between adjacent ascending passes after the full
    /// repeat cycle \[rad\]: the `k` ascending nodes are evenly spread, so
    /// `2π/k`.
    pub fn equatorial_pass_spacing(&self) -> f64 {
        TAU / self.revs as f64
    }

    /// Spacing between adjacent passes measured *perpendicular to the
    /// track* at the equator \[rad\].
    ///
    /// The ground track crosses the equator with azimuth set by the
    /// satellite's Earth-relative velocity; the perpendicular gap is the
    /// equatorial spacing scaled by the cosine of that azimuth.
    pub fn perpendicular_pass_spacing(&self) -> f64 {
        let el = self.reference_elements();
        let rates = j2_rates(&el);
        let n_eff = el.mean_motion() + rates.mean_anomaly_drift + rates.arg_perigee_rate;
        let w_eff = EARTH_ROTATION_RATE - rates.raan_rate;
        let north = n_eff * self.inclination.sin();
        let east = n_eff * self.inclination.cos() - w_eff;
        let cos_azimuth = north / (north * north + east * east).sqrt();
        self.equatorial_pass_spacing() * cos_azimuth
    }

    /// Length of the full repeat-cycle ground track \[rad of Earth-central
    /// angle\], computed by integrating the Earth-relative sub-satellite
    /// angular speed over one cycle.
    pub fn ground_track_length(&self) -> f64 {
        let el = self.reference_elements();
        let rates = j2_rates(&el);
        let n_eff = el.mean_motion() + rates.mean_anomaly_drift + rates.arg_perigee_rate;
        let w_eff = EARTH_ROTATION_RATE - rates.raan_rate;
        let (si, ci) = self.inclination.sin_cos();
        let h_hat = Vec3::new(0.0, -si, ci);
        let z_hat = Vec3::Z;

        // Integrate |n_eff (ĥ×r̂) - w_eff (ẑ×r̂)| du / n_eff over k revs.
        let steps = 720;
        let mut length = 0.0;
        for s in 0..steps {
            let u = TAU * (s as f64 + 0.5) / steps as f64;
            let (su, cu) = u.sin_cos();
            // Position direction at argument of latitude u (node at +X).
            let r_hat = Vec3::new(cu, ci * su, si * su);
            let vel = h_hat.cross(r_hat) * n_eff - z_hat.cross(r_hat) * w_eff;
            length += vel.norm() / n_eff * (TAU / steps as f64);
        }
        length * self.revs as f64
    }

    /// Minimum satellites to keep the whole track covered with in-track
    /// spacing `spacing` \[rad\] (typically the coverage half-angle θ for
    /// the paper's half-overlap rule, or `2θ` for touching caps).
    pub fn sats_to_cover_track(&self, spacing: f64) -> usize {
        (self.ground_track_length() / spacing).ceil() as usize
    }

    /// Whether adjacent passes of this RGT sit within one full swath
    /// (width `2·swath_half_width`) of each other — in which case the
    /// "targeted" RGT coverage degenerates into near-uniform global
    /// coverage (the paper's Fig. 1 distinction between the `RGT (unif.)`
    /// and `RGT (non-unif.)` series).
    pub fn is_effectively_uniform(&self, swath_half_width: f64) -> bool {
        self.perpendicular_pass_spacing() <= 2.0 * swath_half_width
    }

    /// Reference circular elements for this orbit (node/phase zero).
    pub fn reference_elements(&self) -> OrbitalElements {
        OrbitalElements {
            semi_major_axis_km: crate::constants::EARTH_RADIUS_KM + self.altitude_km,
            eccentricity: 0.0,
            inclination: self.inclination,
            raan: 0.0,
            arg_perigee: 0.0,
            mean_anomaly: 0.0,
        }
    }
}

/// Residual of the repeat condition at a given altitude: positive when the
/// orbit completes more than `k/m` revolutions per nodal day.
fn repeat_residual(altitude_km: f64, inclination: f64, revs: u32, days: u32) -> f64 {
    let el = OrbitalElements {
        semi_major_axis_km: crate::constants::EARTH_RADIUS_KM + altitude_km,
        eccentricity: 0.0,
        inclination,
        raan: 0.0,
        arg_perigee: 0.0,
        mean_anomaly: 0.0,
    };
    let rates = j2_rates(&el);
    let n_eff = el.mean_motion() + rates.mean_anomaly_drift + rates.arg_perigee_rate;
    let w_eff = EARTH_ROTATION_RATE - rates.raan_rate;
    n_eff / w_eff - revs as f64 / days as f64
}

/// Solves for the altitude \[km\] of the `revs:days` repeat ground track at
/// the given inclination, by bisection over 150–40 000 km.
///
/// # Errors
/// Returns [`AstroError::NoSolution`] when the ratio is outside the LEO+
/// range bracketed by the search interval.
pub fn find_rgt_altitude(revs: u32, days: u32, inclination: f64) -> Result<f64> {
    if days == 0 || revs == 0 {
        return Err(AstroError::NoSolution { what: "revs and days must be non-zero" });
    }
    let (mut lo, mut hi) = (150.0_f64, 40_000.0_f64);
    let f_lo = repeat_residual(lo, inclination, revs, days);
    let f_hi = repeat_residual(hi, inclination, revs, days);
    // Mean motion decreases with altitude, so the residual is decreasing.
    if f_lo < 0.0 || f_hi > 0.0 {
        return Err(AstroError::NoSolution {
            what: "requested revs/day outside bracketed altitudes",
        });
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if repeat_residual(mid, inclination, revs, days) > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-9 {
            break;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Builds the RGT orbit for `revs:days` at `inclination`.
///
/// # Errors
/// See [`find_rgt_altitude`].
pub fn rgt_orbit(revs: u32, days: u32, inclination: f64) -> Result<RgtOrbit> {
    Ok(RgtOrbit {
        revs,
        days,
        altitude_km: find_rgt_altitude(revs, days, inclination)?,
        inclination,
    })
}

/// Greatest common divisor (for reducing `revs:days` to lowest terms).
fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Enumerates all distinct RGT orbits with altitude inside
/// `[min_altitude_km, max_altitude_km]`, repeat cycles up to `max_days`
/// nodal days, at the given inclination. `revs:days` pairs are reduced to
/// lowest terms so each physical orbit appears once, sorted by altitude.
pub fn enumerate_rgt_orbits(
    min_altitude_km: f64,
    max_altitude_km: f64,
    max_days: u32,
    inclination: f64,
) -> Vec<RgtOrbit> {
    let mut out: Vec<RgtOrbit> = Vec::new();
    for days in 1..=max_days {
        // Bounding revs/day for LEO: about 11–16.3.
        let lo_revs = (10.0 * days as f64).floor() as u32;
        let hi_revs = (17.0 * days as f64).ceil() as u32;
        for revs in lo_revs..=hi_revs {
            if gcd(revs, days) != 1 {
                continue;
            }
            let Ok(alt) = find_rgt_altitude(revs, days, inclination) else { continue };
            if alt < min_altitude_km || alt > max_altitude_km {
                continue;
            }
            out.push(RgtOrbit { revs, days, altitude_km: alt, inclination });
        }
    }
    out.sort_by(|a, b| a.altitude_km.partial_cmp(&b.altitude_km).expect("finite altitudes"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const INC65: f64 = 65.0 * core::f64::consts::PI / 180.0;

    #[test]
    fn paper_anchor_altitudes() {
        // The paper's two anchors at 65°: the 15/1 RGT "~560 km" and the
        // 13/1 RGT at "1215 km". Our solver honors J2 in the repeat
        // condition (nodal day, not sidereal day), which sits the same k:m
        // orbits ~30-50 km lower than the two-body values the paper quotes;
        // the windows below accept both conventions.
        let a15 = find_rgt_altitude(15, 1, INC65).unwrap();
        assert!((460.0..=580.0).contains(&a15), "15:1 altitude = {a15}");
        let a13 = find_rgt_altitude(13, 1, INC65).unwrap();
        assert!((1130.0..=1260.0).contains(&a13), "13:1 altitude = {a13}");
    }

    #[test]
    fn altitude_decreases_with_revs() {
        let a14 = find_rgt_altitude(14, 1, INC65).unwrap();
        let a15 = find_rgt_altitude(15, 1, INC65).unwrap();
        let a16 = find_rgt_altitude(16, 1, INC65).unwrap();
        assert!(a14 > a15 && a15 > a16);
    }

    #[test]
    fn residual_actually_zero_at_solution() {
        let alt = find_rgt_altitude(15, 1, INC65).unwrap();
        assert!(repeat_residual(alt, INC65, 15, 1).abs() < 1e-9);
    }

    #[test]
    fn enumerate_is_sorted_dedup_and_in_range() {
        let orbits = enumerate_rgt_orbits(500.0, 2000.0, 3, INC65);
        assert!(!orbits.is_empty());
        for w in orbits.windows(2) {
            assert!(w[0].altitude_km <= w[1].altitude_km);
            assert!((w[0].altitude_km - w[1].altitude_km).abs() > 1e-6);
        }
        for o in &orbits {
            assert!((500.0..=2000.0).contains(&o.altitude_km));
            assert_eq!(gcd(o.revs, o.days), 1);
        }
        // Daily repeats 13,14,15 must be present.
        for k in [13, 14, 15] {
            assert!(orbits.iter().any(|o| o.revs == k && o.days == 1), "missing {k}:1");
        }
    }

    #[test]
    fn track_length_close_to_k_revolutions() {
        // Earth-relative track length per rev is a bit less than 2π for
        // prograde LEO (co-rotation), within ~10%.
        let o = rgt_orbit(15, 1, INC65).unwrap();
        let len = o.ground_track_length();
        let naive = 15.0 * TAU;
        assert!(len < naive && len > naive * 0.85, "len = {len}, naive = {naive}");
    }

    #[test]
    fn perpendicular_spacing_less_than_equatorial() {
        let o = rgt_orbit(14, 1, INC65).unwrap();
        assert!(o.perpendicular_pass_spacing() < o.equatorial_pass_spacing());
        assert!(o.perpendicular_pass_spacing() > 0.5 * o.equatorial_pass_spacing());
    }

    #[test]
    fn uniformity_classification_monotone_in_swath() {
        let o = rgt_orbit(13, 1, INC65).unwrap();
        assert!(!o.is_effectively_uniform(0.01));
        assert!(o.is_effectively_uniform(1.0));
    }

    #[test]
    fn multi_day_rgts_are_denser() {
        // A 2-day repeat at similar altitude has ~2x the passes, so its
        // perpendicular spacing is ~half.
        let one_day = rgt_orbit(14, 1, INC65).unwrap();
        let two_day = rgt_orbit(29, 2, INC65).unwrap();
        assert!(two_day.perpendicular_pass_spacing() < 0.6 * one_day.perpendicular_pass_spacing());
    }

    #[test]
    fn invalid_requests_rejected() {
        assert!(find_rgt_altitude(0, 1, INC65).is_err());
        assert!(find_rgt_altitude(1, 0, INC65).is_err());
        assert!(find_rgt_altitude(100, 1, INC65).is_err()); // absurd revs/day
    }

    #[test]
    fn sats_to_cover_track_scales_inversely_with_spacing() {
        let o = rgt_orbit(13, 1, INC65).unwrap();
        let n1 = o.sats_to_cover_track(0.1);
        let n2 = o.sats_to_cover_track(0.2);
        assert!(n1 >= 2 * n2 - 2, "n1={n1} n2={n2}");
    }
}
