//! Low-precision solar ephemeris.
//!
//! Implements the Astronomical Almanac's low-precision solar position
//! (accurate to ~0.01° between 1950 and 2050 — far beyond the needs of
//! local-solar-time bookkeeping), plus helpers for the quantities the
//! SS-plane design revolves around: the sun's right ascension, solar
//! declination, and mean local solar time.

use crate::angles::{wrap_hours, wrap_two_pi};
use crate::constants::{AU_KM, OBLIQUITY_J2000};
use crate::linalg::Vec3;
use crate::time::Epoch;

/// Geometric solar position in the ECI (equatorial, J2000-aligned) frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SunPosition {
    /// Unit vector from the Earth's center toward the Sun, ECI frame.
    pub direction_eci: Vec3,
    /// Distance to the Sun \[km\].
    pub distance_km: f64,
    /// Apparent ecliptic longitude \[rad\].
    pub ecliptic_longitude: f64,
    /// Right ascension \[rad\], in `[0, 2π)`.
    pub right_ascension: f64,
    /// Declination \[rad\].
    pub declination: f64,
}

/// Computes the solar position at `epoch` (Astronomical Almanac
/// low-precision formulae; Vallado alg. 29).
pub fn sun_position(epoch: Epoch) -> SunPosition {
    let t = epoch.julian_centuries();
    // Mean longitude and mean anomaly of the Sun [deg].
    let mean_lon = 280.460 + 36_000.771 * t;
    let mean_anom = (357.529_109_2 + 35_999.050_34 * t).to_radians();
    // Ecliptic longitude with equation-of-center correction [deg].
    let ecl_lon_deg =
        mean_lon + 1.914_666_471 * mean_anom.sin() + 0.019_994_643 * (2.0 * mean_anom).sin();
    let ecl_lon = wrap_two_pi(ecl_lon_deg.to_radians());
    let distance_au =
        1.000_140_612 - 0.016_708_617 * mean_anom.cos() - 0.000_139_589 * (2.0 * mean_anom).cos();

    let eps = OBLIQUITY_J2000;
    let (sin_l, cos_l) = ecl_lon.sin_cos();
    let direction = Vec3::new(cos_l, eps.cos() * sin_l, eps.sin() * sin_l);

    let right_ascension = wrap_two_pi((eps.cos() * sin_l).atan2(cos_l));
    let declination = (eps.sin() * sin_l).asin();

    SunPosition {
        direction_eci: direction,
        distance_km: distance_au * AU_KM,
        ecliptic_longitude: ecl_lon,
        right_ascension,
        declination,
    }
}

/// Mean local solar time \[hours, 0-24) at the given **inertial** right
/// ascension `alpha` \[rad\] and epoch.
///
/// This is the clock the SS-plane design runs on: a point whose right
/// ascension stays fixed relative to the Sun's keeps a constant mean local
/// solar time. 12:00 corresponds to `alpha` equal to the Sun's mean right
/// ascension.
pub fn local_solar_time_of_right_ascension(epoch: Epoch, alpha: f64) -> f64 {
    // Use the *mean* sun (uniform motion) so that the mapping is exactly
    // periodic with the mean solar day; the equation of time (< ±16 min)
    // is deliberately excluded, matching the paper's use of mean local time.
    let t = epoch.julian_centuries();
    let mean_sun_ra = wrap_two_pi((280.460f64 + 36_000.771 * t).to_radians());
    wrap_hours(12.0 + (alpha - mean_sun_ra).to_degrees() / 15.0)
}

/// Mean local solar time \[hours, 0-24) at a **ground** longitude \[rad\]
/// (east positive) and epoch.
pub fn local_solar_time_of_longitude(epoch: Epoch, longitude: f64) -> f64 {
    let gmst = epoch.gmst();
    // The inertial right ascension currently over this longitude:
    local_solar_time_of_right_ascension(epoch, wrap_two_pi(gmst + longitude))
}

/// Sub-solar ground longitude \[rad, (-π, π]\] at `epoch`: where it is
/// mean local noon.
pub fn subsolar_longitude(epoch: Epoch) -> f64 {
    let t = epoch.julian_centuries();
    let mean_sun_ra = wrap_two_pi((280.460f64 + 36_000.771 * t).to_radians());
    crate::angles::wrap_pi(mean_sun_ra - epoch.gmst())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sun_near_vernal_equinox_in_march() {
        // ~2020 March 20: sun's declination crosses zero, RA near 0.
        let e = Epoch::from_calendar(2020, 3, 20, 4, 0, 0.0);
        let s = sun_position(e);
        assert!(s.declination.to_degrees().abs() < 0.6, "decl {}", s.declination.to_degrees());
        let ra_deg = s.right_ascension.to_degrees();
        assert!(!(2.0..=358.0).contains(&ra_deg), "ra {ra_deg}");
    }

    #[test]
    fn sun_declination_at_solstices() {
        let summer = sun_position(Epoch::from_calendar(2020, 6, 20, 22, 0, 0.0));
        assert!((summer.declination.to_degrees() - 23.43).abs() < 0.1);
        let winter = sun_position(Epoch::from_calendar(2020, 12, 21, 10, 0, 0.0));
        assert!((winter.declination.to_degrees() + 23.43).abs() < 0.1);
    }

    #[test]
    fn sun_distance_seasonal_variation() {
        // Perihelion early January (~0.983 AU), aphelion early July (~1.017 AU).
        let jan = sun_position(Epoch::from_calendar(2021, 1, 3, 0, 0, 0.0));
        let jul = sun_position(Epoch::from_calendar(2021, 7, 5, 0, 0, 0.0));
        assert!(jan.distance_km < jul.distance_km);
        assert!((jan.distance_km / AU_KM - 0.9833).abs() < 2e-3);
        assert!((jul.distance_km / AU_KM - 1.0167).abs() < 2e-3);
    }

    #[test]
    fn direction_is_unit() {
        let s = sun_position(Epoch::J2000 + 12345.0 * 86400.0 / 100.0);
        assert!((s.direction_eci.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn solar_time_of_suns_ra_is_noon() {
        for days in [0.0, 100.3, 2000.7] {
            let e = Epoch::from_days_j2000(days);
            let t = e.julian_centuries();
            let mean_ra = wrap_two_pi((280.460f64 + 36_000.771 * t).to_radians());
            let lst = local_solar_time_of_right_ascension(e, mean_ra);
            assert!((lst - 12.0).abs() < 1e-9, "lst {lst}");
        }
    }

    #[test]
    fn solar_time_increases_eastward() {
        let e = Epoch::from_calendar(2022, 5, 4, 9, 30, 0.0);
        let t0 = local_solar_time_of_longitude(e, 0.0);
        let t15e = local_solar_time_of_longitude(e, 15f64.to_radians());
        // 15° east = +1 hour (mod 24).
        let diff = crate::angles::wrap_hours(t15e - t0);
        assert!((diff - 1.0).abs() < 1e-6, "diff {diff}");
    }

    #[test]
    fn greenwich_solar_time_tracks_utc() {
        // Mean solar time at longitude 0 should equal UTC within the
        // equation-of-time-free model (~small numerical slack).
        for (y, m, d, h) in [(2020, 1, 1, 6), (2021, 7, 15, 18), (2023, 3, 3, 0)] {
            let e = Epoch::from_calendar(y, m, d, h, 0, 0.0);
            let lst = local_solar_time_of_longitude(e, 0.0);
            let err = (lst - h as f64).abs().min(24.0 - (lst - h as f64).abs());
            assert!(err < 0.1, "{y}-{m}-{d} {h}h: lst {lst}");
        }
    }

    #[test]
    fn subsolar_longitude_midnight_is_antimeridian() {
        let e = Epoch::from_calendar(2021, 3, 21, 0, 0, 0.0);
        let lon = subsolar_longitude(e).to_degrees();
        assert!(lon.abs() > 176.0, "subsolar lon at UTC midnight: {lon}");
    }
}
