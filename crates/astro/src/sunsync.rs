//! Sun-synchronous orbit design — the astrodynamic primitive behind the
//! paper's *SS-plane*.
//!
//! A sun-synchronous orbit (SSO) chooses the inclination at which J2 nodal
//! precession exactly tracks the Sun's mean motion (360° per tropical
//! year, eastward). Its orbital plane therefore keeps a fixed orientation
//! relative to the Sun: every ascending equator crossing happens at the
//! same *mean local solar time* (the LTAN), and the whole plane traces a
//! **fixed curve on the (latitude, local-time-of-day) grid** — the property
//! §4.1 of the paper builds its constellation design on.

use crate::angles::{wrap_hours, wrap_two_pi};
use crate::constants::SUN_SYNC_NODE_RATE;
use crate::error::{AstroError, Result};
use crate::frames::SunRelativePoint;
use crate::kepler::OrbitalElements;
use crate::propagate::j2_rates;
use crate::time::Epoch;
use core::f64::consts::TAU;

/// Highest altitude \[km\] at which a sun-synchronous inclination exists
/// (where the required inclination reaches 180°); ~5975 km for Earth.
pub fn max_sun_synchronous_altitude_km() -> f64 {
    // Solve cos i = -1 in the closed form below by bisection on altitude.
    let mut lo = 4000.0;
    let mut hi = 8000.0;
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if sun_synchronous_inclination(mid).is_ok() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Sun-synchronous inclination \[rad\] for a circular orbit at
/// `altitude_km`.
///
/// Closed form from the J2 secular node rate:
/// `cos i = -ρ_ss / [ (3/2) J₂ n (Re/a)² ]`, always > 90° (retrograde) —
/// the reason the paper notes SS launches cost extra fuel.
///
/// # Errors
/// Returns [`AstroError::NoSolution`] above the altitude where the
/// required `|cos i|` exceeds 1, and [`AstroError::InvalidElement`] for
/// non-positive altitudes.
pub fn sun_synchronous_inclination(altitude_km: f64) -> Result<f64> {
    if altitude_km <= 0.0 {
        return Err(AstroError::InvalidElement {
            name: "altitude_km",
            value: altitude_km,
            constraint: "positive",
        });
    }
    let probe = OrbitalElements::circular(altitude_km, core::f64::consts::FRAC_PI_2, 0.0, 0.0)?;
    let n = probe.mean_motion();
    let k = 1.5
        * crate::constants::EARTH_J2
        * (crate::constants::EARTH_RADIUS_KM / probe.semi_major_axis_km).powi(2)
        * n;
    let cos_i = -SUN_SYNC_NODE_RATE / k;
    if cos_i < -1.0 {
        return Err(AstroError::NoSolution {
            what: "sun-synchronous inclination undefined at this altitude (too high)",
        });
    }
    Ok(cos_i.acos())
}

/// A sun-synchronous circular orbit, identified by its altitude and its
/// **LTAN** — the mean local solar time (hours) of the ascending node.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SunSyncOrbit {
    /// Circular altitude \[km\].
    pub altitude_km: f64,
    /// Inclination \[rad\] (retrograde, > π/2).
    pub inclination: f64,
    /// Local time of the ascending node \[hours, 0–24)\].
    pub ltan_h: f64,
}

/// Builds the sun-synchronous orbit at `altitude_km` (solving the
/// inclination) with LTAN 12:00 (noon).
///
/// # Errors
/// See [`sun_synchronous_inclination`].
pub fn sun_synchronous_orbit(altitude_km: f64) -> Result<SunSyncOrbit> {
    Ok(SunSyncOrbit {
        altitude_km,
        inclination: sun_synchronous_inclination(altitude_km)?,
        ltan_h: 12.0,
    })
}

impl SunSyncOrbit {
    /// Returns a copy with the given LTAN \[hours\].
    pub fn with_ltan(self, ltan_h: f64) -> Self {
        SunSyncOrbit { ltan_h: wrap_hours(ltan_h), ..self }
    }

    /// Inclination in degrees.
    pub fn inclination_deg(&self) -> f64 {
        self.inclination.to_degrees()
    }

    /// Local solar time \[hours\] of the *descending* node: LTAN + 12 h.
    pub fn ltdn_h(&self) -> f64 {
        wrap_hours(self.ltan_h + 12.0)
    }

    /// Maximum |latitude| \[rad\] reached by the ground track:
    /// `π - i` for retrograde orbits.
    pub fn max_latitude(&self) -> f64 {
        if self.inclination > core::f64::consts::FRAC_PI_2 {
            core::f64::consts::PI - self.inclination
        } else {
            self.inclination
        }
    }

    /// RAAN \[rad\] that realizes this LTAN at `epoch`: the node sits
    /// `(LTAN − 12h)` east of the mean sun's right ascension.
    pub fn raan_at(&self, epoch: Epoch) -> f64 {
        let t = epoch.julian_centuries();
        let mean_sun_ra = wrap_two_pi((280.460f64 + 36_000.771 * t).to_radians());
        wrap_two_pi(mean_sun_ra + (self.ltan_h - 12.0) / 24.0 * TAU)
    }

    /// Orbital elements of a satellite in this plane at `epoch`, at
    /// argument of latitude `arg_latitude` \[rad\].
    ///
    /// # Errors
    /// Propagates element validation failure.
    pub fn elements_at(&self, epoch: Epoch, arg_latitude: f64) -> Result<OrbitalElements> {
        OrbitalElements::circular(
            self.altitude_km,
            self.inclination,
            self.raan_at(epoch),
            arg_latitude,
        )
    }

    /// Elements of `n_sats` satellites evenly spaced along the plane.
    ///
    /// # Errors
    /// Propagates element validation failure; errors on `n_sats == 0`.
    pub fn plane_elements(&self, epoch: Epoch, n_sats: usize) -> Result<Vec<OrbitalElements>> {
        if n_sats == 0 {
            return Err(AstroError::InvalidElement {
                name: "n_sats",
                value: 0.0,
                constraint: "non-zero",
            });
        }
        (0..n_sats).map(|j| self.elements_at(epoch, TAU * j as f64 / n_sats as f64)).collect()
    }

    /// The point of the plane's **fixed sun-relative track** at argument of
    /// latitude `u` \[rad\].
    ///
    /// For a sun-synchronous plane this curve does not move (up to the
    /// equation of time): latitude `φ = asin(sin i · sin u)` and local time
    /// offset from the LTAN given by the node-relative right ascension
    /// `Δα = atan2(cos i · sin u, cos u)`.
    pub fn sun_relative_point(&self, u: f64) -> SunRelativePoint {
        let (su, cu) = u.sin_cos();
        let lat = (self.inclination.sin() * su).clamp(-1.0, 1.0).asin();
        let dalpha = (self.inclination.cos() * su).atan2(cu);
        SunRelativePoint { lat, local_time_h: wrap_hours(self.ltan_h + dalpha / TAU * 24.0) }
    }

    /// Verifies sun-synchrony: the actual J2 node rate of this orbit
    /// relative to the target rate, as a relative error.
    pub fn node_rate_relative_error(&self) -> f64 {
        let el = OrbitalElements {
            semi_major_axis_km: crate::constants::EARTH_RADIUS_KM + self.altitude_km,
            eccentricity: 0.0,
            inclination: self.inclination,
            raan: 0.0,
            arg_perigee: 0.0,
            mean_anomaly: 0.0,
        };
        (j2_rates(&el).raan_rate - SUN_SYNC_NODE_RATE).abs() / SUN_SYNC_NODE_RATE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frames::{eci_to_sun_relative, subsatellite_point};
    use crate::propagate::J2Propagator;

    #[test]
    fn known_sso_inclinations() {
        // Reference values (Vallado / mission handbooks):
        // 560 km -> ~97.6°, 800 km -> ~98.6°, 1000 km -> ~99.5°.
        for (alt, expect) in [(560.0, 97.64), (800.0, 98.6), (1000.0, 99.48)] {
            let i = sun_synchronous_inclination(alt).unwrap().to_degrees();
            assert!((i - expect).abs() < 0.15, "alt {alt}: i = {i}, expected ~{expect}");
        }
    }

    #[test]
    fn sso_is_retrograde_and_rate_exact() {
        let orbit = sun_synchronous_orbit(560.0).unwrap();
        assert!(orbit.inclination > core::f64::consts::FRAC_PI_2);
        assert!(orbit.node_rate_relative_error() < 1e-9);
    }

    #[test]
    fn sso_infeasible_at_high_altitude() {
        assert!(sun_synchronous_inclination(8000.0).is_err());
        let max = max_sun_synchronous_altitude_km();
        assert!((max - 5975.0).abs() < 150.0, "max SSO altitude = {max}");
        assert!(sun_synchronous_inclination(-5.0).is_err());
    }

    #[test]
    fn ltan_round_trip_through_raan() {
        // Build elements from LTAN, propagate to the ascending node, and
        // check the sub-satellite local time equals the LTAN.
        let epoch = Epoch::from_calendar(2021, 3, 1, 0, 0, 0.0);
        let orbit = sun_synchronous_orbit(560.0).unwrap().with_ltan(10.5);
        let el = orbit.elements_at(epoch, 0.0).unwrap(); // at ascending node
        let (r, _) = el.to_cartesian().unwrap();
        let sr = eci_to_sun_relative(epoch, r).unwrap();
        let dh = (sr.local_time_h - 10.5).abs();
        assert!(dh.min(24.0 - dh) < 0.02, "LTAN realized as {}", sr.local_time_h);
        assert!(sr.lat.abs() < 1e-9);
    }

    #[test]
    fn ltan_stays_fixed_over_months() {
        // The defining property: propagate 120 days under J2 and check the
        // ascending-node local time has not drifted.
        let epoch = Epoch::from_calendar(2021, 1, 1, 0, 0, 0.0);
        let orbit = sun_synchronous_orbit(560.0).unwrap().with_ltan(13.0);
        let el = orbit.elements_at(epoch, 0.0).unwrap();
        let prop = J2Propagator::new(epoch, el).unwrap();

        // Find an ascending equator crossing ~120 days out by scanning.
        let t0 = epoch + 120.0 * 86400.0;
        let mut crossing = None;
        let mut prev: Option<(f64, Epoch)> = None;
        for step in 0..2000 {
            let t = t0 + step as f64 * 10.0;
            let (r, _) = prop.state_at(t).unwrap();
            let lat = (r.z / r.norm()).asin();
            if let Some((plat, pt)) = prev {
                if plat < 0.0 && lat >= 0.0 {
                    // linear interpolation to the crossing
                    let frac = -plat / (lat - plat);
                    crossing =
                        Some(Epoch::from_seconds_j2000(pt.seconds_j2000() + frac * (t - pt)));
                    break;
                }
            }
            prev = Some((lat, t));
        }
        let tc = crossing.expect("found ascending crossing");
        let (r, _) = prop.state_at(tc).unwrap();
        let sr = eci_to_sun_relative(tc, r).unwrap();
        let dh = (sr.local_time_h - 13.0).abs();
        assert!(dh.min(24.0 - dh) < 0.1, "LTAN after 120 d: {}", sr.local_time_h);
    }

    #[test]
    fn non_sso_ltan_drifts() {
        // Control experiment: a 65° orbit's node local time drifts by hours
        // within 120 days (this is exactly why non-SS constellations cannot
        // pin supply to local time).
        let epoch = Epoch::from_calendar(2021, 1, 1, 0, 0, 0.0);
        let el = OrbitalElements::circular(560.0, 65f64.to_radians(), 0.0, 0.0).unwrap();
        let prop = J2Propagator::new(epoch, el).unwrap();
        let raan_rate = prop.rates().raan_rate;
        // Node local-time drift rate = (Ω̇ - ρ_ss) in hours/day.
        let drift_h_per_day = (raan_rate - SUN_SYNC_NODE_RATE) * 86400.0 / TAU * 24.0;
        // (-3.1°/day node regression - 0.99°/day sun motion) / 15°/h ≈ -0.27 h/day.
        assert!(drift_h_per_day < -0.2, "drift = {drift_h_per_day} h/day");
    }

    #[test]
    fn sun_relative_track_shape() {
        let orbit = sun_synchronous_orbit(560.0).unwrap().with_ltan(14.0);
        // u = 0: ascending node -> (0°, LTAN).
        let p0 = orbit.sun_relative_point(0.0);
        assert!(p0.lat.abs() < 1e-12 && (p0.local_time_h - 14.0).abs() < 1e-9);
        // u = π: descending node -> (0°, LTAN+12).
        let p180 = orbit.sun_relative_point(core::f64::consts::PI);
        assert!(p180.lat.abs() < 1e-9);
        let dh = (p180.local_time_h - 2.0).abs();
        assert!(dh.min(24.0 - dh) < 1e-6, "ltdn = {}", p180.local_time_h);
        // u = π/2: maximum latitude = 180° - i.
        let p90 = orbit.sun_relative_point(core::f64::consts::FRAC_PI_2);
        assert!((p90.lat - orbit.max_latitude()).abs() < 1e-9);
    }

    #[test]
    fn sun_relative_track_matches_propagation() {
        // The analytic sun-relative curve must agree with brute-force
        // propagation + frame conversion at a sample of points.
        let epoch = Epoch::from_calendar(2021, 6, 1, 0, 0, 0.0);
        let orbit = sun_synchronous_orbit(560.0).unwrap().with_ltan(9.0);
        for j in 0..8 {
            let u = TAU * j as f64 / 8.0;
            let el = orbit.elements_at(epoch, u).unwrap();
            let (r, _) = el.to_cartesian().unwrap();
            let sr = eci_to_sun_relative(epoch, r).unwrap();
            let analytic = orbit.sun_relative_point(u);
            assert!((sr.lat - analytic.lat).abs() < 1e-6, "u={u}");
            let dh = (sr.local_time_h - analytic.local_time_h).abs();
            assert!(
                dh.min(24.0 - dh) < 0.02,
                "u={u}: {} vs {}",
                sr.local_time_h,
                analytic.local_time_h
            );
        }
        // And the sub-satellite points are physically at those latitudes.
        let el = orbit.elements_at(epoch, 1.0).unwrap();
        let (r, _) = el.to_cartesian().unwrap();
        let (gp, alt) = subsatellite_point(epoch, r).unwrap();
        assert!((alt - 560.0).abs() < 20.0);
        assert!((gp.lat - orbit.sun_relative_point(1.0).lat).abs() < 1e-6);
    }

    #[test]
    fn plane_elements_even_spacing() {
        let epoch = Epoch::J2000;
        let orbit = sun_synchronous_orbit(560.0).unwrap();
        let sats = orbit.plane_elements(epoch, 20).unwrap();
        assert_eq!(sats.len(), 20);
        for w in sats.windows(2) {
            let d = crate::angles::separation(w[1].mean_anomaly, w[0].mean_anomaly);
            assert!((d - TAU / 20.0).abs() < 1e-9);
        }
        assert!(orbit.plane_elements(epoch, 0).is_err());
    }
}
