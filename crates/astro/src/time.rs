//! Time systems: epochs, Julian dates, and Greenwich Mean Sidereal Time.
//!
//! All epochs are carried as seconds relative to J2000.0 (2000-01-01
//! 12:00:00). The workspace treats UTC ≈ UT1 ≈ TT: the differences
//! (≲ 70 s) shift absolute phases by fractions of a degree, far below the
//! fidelity of a constellation design study, and keeping a single time
//! scale removes a whole class of bookkeeping bugs.

use crate::constants::{JD_J2000, JULIAN_CENTURY_DAYS, SECONDS_PER_DAY};
use core::f64::consts::TAU;
use core::ops::{Add, Sub};

/// An instant in time, stored as seconds since the J2000.0 epoch.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Epoch {
    seconds_since_j2000: f64,
}

impl Epoch {
    /// The J2000.0 epoch itself.
    pub const J2000: Epoch = Epoch { seconds_since_j2000: 0.0 };

    /// Builds an epoch from seconds since J2000.0.
    #[inline]
    pub const fn from_seconds_j2000(seconds: f64) -> Self {
        Epoch { seconds_since_j2000: seconds }
    }

    /// Builds an epoch from days since J2000.0.
    #[inline]
    pub fn from_days_j2000(days: f64) -> Self {
        Epoch { seconds_since_j2000: days * SECONDS_PER_DAY }
    }

    /// Builds an epoch from a Julian date.
    #[inline]
    pub fn from_julian_date(jd: f64) -> Self {
        Epoch::from_days_j2000(jd - JD_J2000)
    }

    /// Builds an epoch from a calendar date/time (proleptic Gregorian,
    /// treated as UTC). Months are 1-12, days 1-31; no validation of
    /// calendar legality beyond the algorithm's domain (years 1901-2099).
    pub fn from_calendar(
        year: i32,
        month: u32,
        day: u32,
        hour: u32,
        minute: u32,
        second: f64,
    ) -> Self {
        // Vallado's "JDay" algorithm, valid 1901-2099.
        let y = year as f64;
        let m = month as f64;
        let d = day as f64;
        let jd = 367.0 * y - ((7.0 * (y + ((m + 9.0) / 12.0).floor())) / 4.0).floor()
            + (275.0 * m / 9.0).floor()
            + d
            + 1_721_013.5;
        let frac = (hour as f64 * 3600.0 + minute as f64 * 60.0 + second) / SECONDS_PER_DAY;
        Epoch::from_julian_date(jd + frac)
    }

    /// Seconds since J2000.0.
    #[inline]
    pub const fn seconds_j2000(self) -> f64 {
        self.seconds_since_j2000
    }

    /// Days since J2000.0.
    #[inline]
    pub fn days_j2000(self) -> f64 {
        self.seconds_since_j2000 / SECONDS_PER_DAY
    }

    /// Julian date.
    #[inline]
    pub fn julian_date(self) -> f64 {
        JD_J2000 + self.days_j2000()
    }

    /// Julian centuries since J2000.0 (used by low-precision ephemerides).
    #[inline]
    pub fn julian_centuries(self) -> f64 {
        self.days_j2000() / JULIAN_CENTURY_DAYS
    }

    /// Greenwich Mean Sidereal Time \[rad\], in `[0, 2π)`.
    ///
    /// IAU 1982 model (Vallado eq. 3-47), adequate to ≪ 0.1° over the
    /// simulation horizons used here.
    pub fn gmst(self) -> f64 {
        let t = self.julian_centuries();
        // Seconds of sidereal time.
        let gmst_s =
            67_310.548_41 + (876_600.0 * 3600.0 + 8_640_184.812_866) * t + 0.093_104 * t * t
                - 6.2e-6 * t * t * t;
        let frac = (gmst_s % SECONDS_PER_DAY) / SECONDS_PER_DAY;
        let rad = frac * TAU;
        if rad < 0.0 {
            rad + TAU
        } else {
            rad
        }
    }

    /// Hours elapsed in the current UTC day, `[0, 24)`.
    ///
    /// J2000.0 falls at 12:00, hence the half-day offset.
    pub fn utc_hours_of_day(self) -> f64 {
        let days = self.days_j2000() + 0.5; // shift so 0.0 is midnight
        let frac = days - days.floor();
        frac * 24.0
    }
}

impl Add<f64> for Epoch {
    type Output = Epoch;
    /// Advances the epoch by `rhs` seconds.
    #[inline]
    fn add(self, rhs: f64) -> Epoch {
        Epoch::from_seconds_j2000(self.seconds_since_j2000 + rhs)
    }
}

impl Sub<Epoch> for Epoch {
    type Output = f64;
    /// Difference between epochs in seconds.
    #[inline]
    fn sub(self, rhs: Epoch) -> f64 {
        self.seconds_since_j2000 - rhs.seconds_since_j2000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn j2000_calendar_round_trip() {
        let e = Epoch::from_calendar(2000, 1, 1, 12, 0, 0.0);
        assert!((e.julian_date() - JD_J2000).abs() < 1e-9);
        assert!(e.seconds_j2000().abs() < 1e-4);
    }

    #[test]
    fn known_julian_date_vallado_example() {
        // Vallado example 3-4: 1996-10-26 14:20:00 UTC -> JD 2450383.09722222.
        let e = Epoch::from_calendar(1996, 10, 26, 14, 20, 0.0);
        assert!((e.julian_date() - 2_450_383.097_222_22).abs() < 1e-6);
    }

    #[test]
    fn gmst_at_j2000_matches_reference() {
        // GMST at J2000.0 is 280.4606...° (18h 41m 50.5s).
        let gmst_deg = Epoch::J2000.gmst().to_degrees();
        assert!((gmst_deg - 280.4606).abs() < 0.01, "gmst = {gmst_deg}");
    }

    #[test]
    fn gmst_advances_one_rev_per_sidereal_day() {
        use crate::constants::SIDEREAL_DAY_S;
        let e0 = Epoch::J2000;
        let e1 = e0 + SIDEREAL_DAY_S;
        let d = crate::angles::separation(e0.gmst(), e1.gmst());
        assert!(d < 1e-4, "gmst drift over one sidereal day = {d} rad");
    }

    #[test]
    fn utc_hours_of_day_noon_at_j2000() {
        assert!((Epoch::J2000.utc_hours_of_day() - 12.0).abs() < 1e-9);
        let midnight = Epoch::from_calendar(2020, 6, 1, 0, 0, 0.0);
        assert!(midnight.utc_hours_of_day() < 1e-9 || midnight.utc_hours_of_day() > 24.0 - 1e-9);
    }

    #[test]
    fn epoch_arithmetic() {
        let e = Epoch::J2000 + 3600.0;
        assert!((e - Epoch::J2000 - 3600.0).abs() < 1e-12);
        assert!((e.days_j2000() - 3600.0 / 86400.0).abs() < 1e-12);
    }
}
