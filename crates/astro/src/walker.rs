//! Walker-delta constellation generation.
//!
//! A Walker-delta pattern `i: t/p/f` distributes `t` satellites over `p`
//! planes of common inclination `i`, with ascending nodes evenly spread
//! over the full 0–2π of right ascension and an inter-plane phase offset of
//! `2π·f/t` — the geometry used by Starlink-class constellations and by the
//! paper's baseline designs.

use crate::error::{AstroError, Result};
use crate::kepler::OrbitalElements;
use core::f64::consts::TAU;

/// A Walker-delta constellation specification.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WalkerDelta {
    /// Circular-orbit altitude \[km\].
    pub altitude_km: f64,
    /// Common inclination \[rad\].
    pub inclination: f64,
    /// Total number of satellites `t`.
    pub total_sats: usize,
    /// Number of planes `p` (must divide `t`).
    pub planes: usize,
    /// Phasing parameter `f` in `0..p`.
    pub phasing: usize,
    /// Right ascension of the first plane's node \[rad\].
    pub raan_offset: f64,
}

impl WalkerDelta {
    /// Creates a Walker-delta specification, validating divisibility.
    ///
    /// # Errors
    /// Returns [`AstroError::InvalidElement`] if `p` does not divide `t`,
    /// either is zero, or `f >= p`.
    pub fn new(
        altitude_km: f64,
        inclination: f64,
        total_sats: usize,
        planes: usize,
        phasing: usize,
    ) -> Result<Self> {
        if planes == 0 || total_sats == 0 {
            return Err(AstroError::InvalidElement {
                name: "planes/total_sats",
                value: planes.min(total_sats) as f64,
                constraint: "non-zero",
            });
        }
        if !total_sats.is_multiple_of(planes) {
            return Err(AstroError::InvalidElement {
                name: "total_sats",
                value: total_sats as f64,
                constraint: "divisible by planes",
            });
        }
        if phasing >= planes {
            return Err(AstroError::InvalidElement {
                name: "phasing",
                value: phasing as f64,
                constraint: "f < p",
            });
        }
        Ok(WalkerDelta { altitude_km, inclination, total_sats, planes, phasing, raan_offset: 0.0 })
    }

    /// Satellites per plane.
    #[inline]
    pub fn sats_per_plane(&self) -> usize {
        self.total_sats / self.planes
    }

    /// Generates the orbital elements of every satellite.
    ///
    /// Satellite `(plane k, slot j)` sits at RAAN `Ω₀ + 2πk/p` and argument
    /// of latitude `2πj/s + 2πfk/t`.
    ///
    /// # Errors
    /// Propagates element validation failure (e.g. negative altitude).
    pub fn generate(&self) -> Result<Vec<OrbitalElements>> {
        let s = self.sats_per_plane();
        let mut out = Vec::with_capacity(self.total_sats);
        for plane in 0..self.planes {
            let raan = self.raan_offset + TAU * plane as f64 / self.planes as f64;
            let phase = TAU * (self.phasing * plane) as f64 / self.total_sats as f64;
            for slot in 0..s {
                let u = TAU * slot as f64 / s as f64 + phase;
                out.push(OrbitalElements::circular(self.altitude_km, self.inclination, raan, u)?);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::angles::separation;

    #[test]
    fn generates_t_satellites() {
        let w = WalkerDelta::new(560.0, 1.0, 60, 12, 1).unwrap();
        let sats = w.generate().unwrap();
        assert_eq!(sats.len(), 60);
        assert_eq!(w.sats_per_plane(), 5);
    }

    #[test]
    fn planes_evenly_spread_in_raan() {
        let w = WalkerDelta::new(560.0, 1.0, 24, 6, 0).unwrap();
        let sats = w.generate().unwrap();
        let spacing = TAU / 6.0;
        for p in 0..6 {
            let raan = sats[p * 4].raan;
            assert!(separation(raan, spacing * p as f64) < 1e-12);
            // All sats in a plane share the RAAN.
            for j in 0..4 {
                assert!(separation(sats[p * 4 + j].raan, raan) < 1e-12);
            }
        }
    }

    #[test]
    fn in_plane_phasing_even() {
        let w = WalkerDelta::new(560.0, 0.9, 20, 4, 2).unwrap();
        let sats = w.generate().unwrap();
        for p in 0..4 {
            for j in 0..4 {
                let a = sats[p * 5 + j].mean_anomaly;
                let b = sats[p * 5 + j + 1].mean_anomaly;
                assert!(separation(b - a, TAU / 5.0) < 1e-9);
            }
        }
        // Adjacent planes offset by 2π f / t = 2π·2/20.
        let du = separation(sats[5].mean_anomaly, sats[0].mean_anomaly + TAU * 2.0 / 20.0);
        assert!(du < 1e-9, "du = {du}");
    }

    #[test]
    fn validation_errors() {
        assert!(WalkerDelta::new(560.0, 1.0, 10, 3, 0).is_err()); // 3 ∤ 10
        assert!(WalkerDelta::new(560.0, 1.0, 0, 1, 0).is_err());
        assert!(WalkerDelta::new(560.0, 1.0, 10, 0, 0).is_err());
        assert!(WalkerDelta::new(560.0, 1.0, 10, 5, 5).is_err()); // f >= p
    }

    #[test]
    fn all_elements_valid_and_circular() {
        let w = WalkerDelta::new(1200.0, 1.2, 36, 6, 3).unwrap();
        for el in w.generate().unwrap() {
            el.validate().unwrap();
            assert_eq!(el.eccentricity, 0.0);
            assert!((el.altitude_km() - 1200.0).abs() < 1e-9);
        }
    }
}
