//! Property-based tests for the astrodynamics substrate.

use proptest::prelude::*;
use ssplane_astro::angles::{separation, wrap_hours, wrap_pi, wrap_two_pi};
use ssplane_astro::coverage::{
    coverage_half_angle, sats_per_plane_half_overlap, street_half_width,
};
use ssplane_astro::frames::{ecef_to_eci, eci_to_ecef, ground_to_sun_relative};
use ssplane_astro::geo::GeoPoint;
use ssplane_astro::kepler::{eccentric_to_true, solve_kepler, true_to_eccentric, OrbitalElements};
use ssplane_astro::linalg::Vec3;
use ssplane_astro::sunsync::sun_synchronous_inclination;
use ssplane_astro::time::Epoch;
use std::f64::consts::{PI, TAU};

proptest! {
    #[test]
    fn wrap_two_pi_in_range(a in -1e6f64..1e6) {
        let w = wrap_two_pi(a);
        prop_assert!((0.0..TAU).contains(&w));
        // Idempotent.
        prop_assert!((wrap_two_pi(w) - w).abs() < 1e-12);
        // Same angle modulo 2π.
        prop_assert!(separation(a, w) < 1e-6);
    }

    #[test]
    fn wrap_pi_in_range(a in -1e6f64..1e6) {
        let w = wrap_pi(a);
        prop_assert!((-PI..=PI).contains(&w));
        prop_assert!(separation(a, w) < 1e-6);
    }

    #[test]
    fn wrap_hours_in_range(h in -1e5f64..1e5) {
        let w = wrap_hours(h);
        prop_assert!((0.0..24.0).contains(&w));
    }

    #[test]
    fn kepler_equation_satisfied(m in 0.0f64..TAU, e in 0.0f64..0.95) {
        let ea = solve_kepler(m, e).unwrap();
        let resid = separation(ea - e * ea.sin(), m);
        prop_assert!(resid < 1e-9, "residual {resid}");
    }

    #[test]
    fn anomaly_round_trip(nu in 0.0f64..TAU, e in 0.0f64..0.9) {
        let ea = true_to_eccentric(nu, e);
        prop_assert!(separation(eccentric_to_true(ea, e), nu) < 1e-9);
    }

    #[test]
    fn elements_cartesian_round_trip(
        alt in 300.0f64..3000.0,
        ecc in 0.0f64..0.05,
        inc in 0.05f64..3.0,
        raan in 0.0f64..TAU,
        argp in 0.0f64..TAU,
        ma in 0.0f64..TAU,
    ) {
        let el = OrbitalElements {
            semi_major_axis_km: 6378.137 + alt,
            eccentricity: ecc,
            inclination: inc,
            raan,
            arg_perigee: argp,
            mean_anomaly: ma,
        };
        let (r, v) = el.to_cartesian().unwrap();
        prop_assert!(!r.is_non_finite() && !v.is_non_finite());
        let back = OrbitalElements::from_cartesian(r, v).unwrap();
        prop_assert!((back.semi_major_axis_km - el.semi_major_axis_km).abs() < 1e-5);
        prop_assert!((back.eccentricity - el.eccentricity).abs() < 1e-8);
        prop_assert!((back.inclination - el.inclination).abs() < 1e-8);
        // Compare the full argument of latitude + node to dodge the
        // circular-orbit degeneracy of ω.
        let (r2, v2) = back.to_cartesian().unwrap();
        prop_assert!((r - r2).norm() < 1e-4, "position mismatch {:?}", (r - r2).norm());
        prop_assert!((v - v2).norm() < 1e-7);
    }

    #[test]
    fn geo_round_trip(lat in -1.5f64..1.5, lon in -3.1f64..3.1) {
        let p = GeoPoint::new(lat, lon);
        let q = GeoPoint::from_vector(p.to_unit_vector()).unwrap();
        prop_assert!((p.lat - q.lat).abs() < 1e-10);
        prop_assert!(separation(p.lon, q.lon) < 1e-10);
    }

    #[test]
    fn central_angle_symmetric_and_triangle(
        lat1 in -1.5f64..1.5, lon1 in -3.1f64..3.1,
        lat2 in -1.5f64..1.5, lon2 in -3.1f64..3.1,
        lat3 in -1.5f64..1.5, lon3 in -3.1f64..3.1,
    ) {
        let a = GeoPoint::new(lat1, lon1);
        let b = GeoPoint::new(lat2, lon2);
        let c = GeoPoint::new(lat3, lon3);
        let ab = a.central_angle_to(&b);
        prop_assert!((ab - b.central_angle_to(&a)).abs() < 1e-12);
        prop_assert!(ab <= a.central_angle_to(&c) + c.central_angle_to(&b) + 1e-9);
        prop_assert!((0.0..=PI + 1e-12).contains(&ab));
    }

    #[test]
    fn eci_ecef_round_trip(
        x in -9000.0f64..9000.0, y in -9000.0f64..9000.0, z in -9000.0f64..9000.0,
        days in -3650.0f64..3650.0,
    ) {
        let e = Epoch::from_days_j2000(days);
        let r = Vec3::new(x, y, z);
        let back = ecef_to_eci(e, eci_to_ecef(e, r));
        prop_assert!((back - r).norm() < 1e-8);
        // Rotation preserves norm.
        prop_assert!((eci_to_ecef(e, r).norm() - r.norm()).abs() < 1e-8);
    }

    #[test]
    fn coverage_half_angle_bounded(alt in 200.0f64..5000.0, elev in 0.0f64..1.4) {
        let theta = coverage_half_angle(alt, elev).unwrap();
        prop_assert!(theta > 0.0 && theta < PI / 2.0);
        // Larger elevation shrinks coverage.
        if elev + 0.05 < 1.4 {
            prop_assert!(coverage_half_angle(alt, elev + 0.05).unwrap() < theta);
        }
    }

    #[test]
    fn street_width_below_theta(theta in 0.02f64..1.0, extra in 0usize..64) {
        let s_min = (PI / theta).ceil() as usize;
        let c = street_half_width(theta, s_min + extra).unwrap();
        prop_assert!((0.0..=theta + 1e-12).contains(&c));
        // More satellites never narrows the street.
        let c2 = street_half_width(theta, s_min + extra + 1).unwrap();
        prop_assert!(c2 >= c - 1e-12);
    }

    #[test]
    fn half_overlap_count_covers(theta in 0.02f64..1.0) {
        let s = sats_per_plane_half_overlap(theta);
        // Spacing 2π/s must be at most θ.
        prop_assert!(TAU / s as f64 <= theta + 1e-12);
    }

    #[test]
    fn sso_inclination_retrograde_monotone(alt in 250.0f64..2000.0) {
        let i = sun_synchronous_inclination(alt).unwrap();
        prop_assert!(i > PI / 2.0 && i < PI);
        let i2 = sun_synchronous_inclination(alt + 50.0).unwrap();
        prop_assert!(i2 > i, "SSO inclination must grow with altitude");
    }

    #[test]
    fn sun_relative_lat_preserved(lat in -1.5f64..1.5, lon in -3.1f64..3.1, days in 0.0f64..365.0) {
        let e = Epoch::from_days_j2000(days);
        let sr = ground_to_sun_relative(e, GeoPoint::new(lat, lon));
        prop_assert!((sr.lat - lat).abs() < 1e-12);
        prop_assert!((0.0..24.0).contains(&sr.local_time_h));
    }
}
