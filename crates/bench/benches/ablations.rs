//! Ablation benches: time the design pipeline under the alternative
//! configurations of DESIGN.md §6 (the *result* comparison is produced by
//! `repro ablations`; these measure the cost of each variant).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssplane_bench::figures::{default_demand_model, default_grid};
use ssplane_core::designer::{design_ss_constellation, BranchRule, DesignConfig};
use ssplane_core::walker_baseline::{
    design_walker_constellation, SupplyModel, WalkerBaselineConfig,
};
use ssplane_demand::grid::LatTodGrid;
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let model = default_demand_model();
    let grid = default_grid(&model);
    let demand = grid.scaled(100.0 / grid.total());

    let mut group = c.benchmark_group("branch_rule");
    for rule in [BranchRule::BestOfBoth, BranchRule::AscendingOnly, BranchRule::Alternate] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{rule:?}")),
            &rule,
            |b, &rule| {
                b.iter(|| {
                    let cons = design_ss_constellation(
                        black_box(&demand),
                        DesignConfig { branch_rule: rule, ..Default::default() },
                    )
                    .unwrap();
                    black_box(cons.total_sats())
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("grid_resolution");
    for (lat, tod) in [(24usize, 16usize), (36, 24), (72, 48)] {
        let g = LatTodGrid::from_model(&model, lat, tod).unwrap();
        let d = g.scaled(100.0 / g.total());
        group.bench_with_input(BenchmarkId::from_parameter(format!("{lat}x{tod}")), &d, |b, d| {
            b.iter(|| {
                let cons = design_ss_constellation(black_box(d), DesignConfig::default()).unwrap();
                black_box(cons.total_sats())
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("wd_supply_model");
    for supply in [SupplyModel::WorstCase, SupplyModel::TimeAverage] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{supply:?}")),
            &supply,
            |b, &supply| {
                b.iter(|| {
                    let cons = design_walker_constellation(
                        black_box(&demand),
                        WalkerBaselineConfig { supply_model: supply, ..Default::default() },
                    )
                    .unwrap();
                    black_box(cons.total_sats())
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ablations
}
criterion_main!(benches);
