//! Attack-search benches: candidate-evaluation throughput of the
//! `DegradedEvaluator` (the per-candidate mask → filtered topology →
//! traffic-assignment pipeline every search step pays) against the
//! incremental `IncrementalScorer` delta path (shortest-path-tree
//! repair and affected-flow filtering) at 1k- and 10k-satellite scale,
//! plus one end-to-end `optimize_attack` run on the 1k constellation.
//! The incremental batch is pinned byte-identical to the full path
//! before it is timed.
//!
//! The headline numbers land in `BENCH_attack_opt.json` at the
//! repository root; re-capture with
//! `cargo bench -p ssplane-bench --bench attack_opt`.

use criterion::{criterion_group, criterion_main, Criterion};
use ssplane_astro::geo::GeoPoint;
use ssplane_astro::time::Epoch;
use ssplane_astro::walker::WalkerDelta;
use ssplane_lsn::optimizer::{
    optimize_attack, AttackBudget, AttackObjective, AttackSearchConfig, DegradedEvaluator,
};
use ssplane_lsn::snapshot::{time_grid, SnapshotSeries};
use ssplane_lsn::topology::{Constellation, SatId};
use ssplane_lsn::traffic::Flow;
use std::hint::black_box;

/// The benchmark time grid: 4 slots, 2 minutes apart (every candidate
/// is scored over all slots).
const SLOTS: usize = 4;
const SLOT_S: f64 = 120.0;

/// Candidates per measured batch (single-plane attacks, one per plane
/// stride — the shape a greedy frontier scores).
const BATCH: usize = 10;

fn walker(planes: usize, per_plane: usize) -> Constellation {
    let pattern = WalkerDelta::new(550.0, 53f64.to_radians(), planes * per_plane, planes, 1)
        .unwrap()
        .generate()
        .unwrap();
    Constellation::from_planes(Epoch::J2000, pattern.chunks(per_plane).map(<[_]>::to_vec).collect())
        .unwrap()
}

/// The same deterministic city-to-city flow set the disruption bench
/// routes.
fn flows() -> Vec<Flow> {
    let cities = [
        (40.7, -74.0),
        (51.5, -0.1),
        (35.7, 139.7),
        (-23.5, -46.6),
        (19.1, 72.9),
        (30.0, 31.2),
        (55.8, 37.6),
        (1.3, 103.8),
        (34.1, -118.2),
        (48.9, 2.3),
        (-33.9, 151.2),
        (52.5, 13.4),
    ];
    let mut out = Vec::new();
    for (i, &(a_lat, a_lon)) in cities.iter().enumerate() {
        for &(b_lat, b_lon) in cities.iter().skip(i + 1).step_by(5) {
            out.push(Flow {
                src: GeoPoint::from_degrees(a_lat, a_lon),
                dst: GeoPoint::from_degrees(b_lat, b_lon),
                demand: 1.0,
            });
        }
    }
    out
}

/// `BATCH` single-plane candidates, strided across the plane count.
fn plane_candidates(planes: usize, per_plane: usize) -> Vec<Vec<SatId>> {
    (0..BATCH)
        .map(|k| {
            let p = k * planes / BATCH;
            (0..per_plane).map(|s| SatId { plane: p, slot: s }).collect()
        })
        .collect()
}

fn bench_scale(criterion: &mut Criterion, label: &str, planes: usize, per_plane: usize) {
    let c = walker(planes, per_plane);
    let series =
        SnapshotSeries::build_parallel(&c, &time_grid(Epoch::J2000, SLOTS, SLOT_S), 0).unwrap();
    let flow_list = flows();
    let evaluator =
        DegradedEvaluator::new(&series, &flow_list, 20f64.to_radians(), Default::default())
            .unwrap();
    let candidates = plane_candidates(planes, per_plane);

    let group_name = format!("attack_opt_{label}");
    let mut group = criterion.benchmark_group(&group_name);
    group.sample_size(10);

    // Evaluator construction: the once-per-system cost (intact per-slot
    // topologies + intact traffic) the candidates amortize.
    group.bench_with_input(
        criterion::BenchmarkId::new("evaluator_build", format!("{SLOTS}slots")),
        &(),
        |b, ()| {
            b.iter(|| {
                black_box(
                    DegradedEvaluator::new(
                        &series,
                        &flow_list,
                        20f64.to_radians(),
                        Default::default(),
                    )
                    .unwrap()
                    .intact()
                    .len(),
                )
            })
        },
    );

    // The headline: candidate-evaluation throughput. Each candidate
    // filters the prebuilt intact topology per slot and re-routes the
    // flow set — candidates/sec = BATCH / measured seconds.
    group.bench_with_input(
        criterion::BenchmarkId::new("score_batch", format!("{BATCH}x1plane")),
        &(),
        |b, ()| {
            b.iter(|| {
                black_box(
                    evaluator
                        .score_batch(&candidates, AttackObjective::RoutedFraction, 0)
                        .unwrap()
                        .len(),
                )
            })
        },
    );

    // Incremental scorer on the same batch: per-source trees repaired
    // from the cached intact state instead of rebuilt per candidate.
    // Pinned byte-identical to the full path before timing; the cache is
    // cleared inside the loop so every iteration pays the honest
    // delta-from-intact cost, never a seen-cache hit.
    let scorer = evaluator.incremental_scorer(AttackObjective::RoutedFraction);
    let full = evaluator.score_batch(&candidates, AttackObjective::RoutedFraction, 0).unwrap();
    let fast = scorer.score_batch(&candidates, 0).unwrap();
    assert_eq!(
        full.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "incremental scorer diverged from full evaluation at {label}"
    );
    group.bench_with_input(
        criterion::BenchmarkId::new("score_batch_incremental", format!("{BATCH}x1plane")),
        &(),
        |b, ()| {
            b.iter(|| {
                scorer.clear_cache();
                black_box(scorer.score_batch(&candidates, 0).unwrap().len())
            })
        },
    );

    group.finish();
}

fn bench_attack_opt(criterion: &mut Criterion) {
    // 1k satellites: 10 planes x 100 slots.
    bench_scale(criterion, "1000sats", 10, 100);
    // 10k satellites: 50 planes x 200 slots (the mega-constellation
    // geometry every other bench uses).
    bench_scale(criterion, "10000sats", 50, 200);

    // One full search at 1k-satellite scale for context: greedy k=2 over
    // 10 planes + 1 restart of 4 swaps.
    let c = walker(10, 100);
    let series =
        SnapshotSeries::build_parallel(&c, &time_grid(Epoch::J2000, SLOTS, SLOT_S), 0).unwrap();
    let flow_list = flows();
    let evaluator =
        DegradedEvaluator::new(&series, &flow_list, 20f64.to_radians(), Default::default())
            .unwrap();
    let config = AttackSearchConfig {
        objective: AttackObjective::RoutedFraction,
        budget: AttackBudget::Planes(2),
        restarts: 1,
        swaps: 4,
        threads: 0,
    };
    let mut group = criterion.benchmark_group("attack_opt_search");
    group.sample_size(10);
    group.bench_with_input(
        criterion::BenchmarkId::new("optimize_attack", "1000sats_2planes"),
        &(),
        |b, ()| {
            b.iter(|| {
                black_box(
                    optimize_attack(&evaluator, &config, 42, &[]).unwrap().candidates_evaluated,
                )
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_attack_opt);
criterion_main!(benches);
