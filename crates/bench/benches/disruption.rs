//! Degraded-network benches on mega-constellation geometry: the
//! outage-coupled network stage (attack mask + outage-timeline mask per
//! slot over one shared `SnapshotSeries`) against the intact stage, plus
//! the cost of the masked +grid build and of generating a 10k-satellite
//! outage timeline.
//!
//! The headline numbers land in `BENCH_disruption.json` at the
//! repository root; re-capture with
//! `cargo bench -p ssplane-bench --bench disruption`.

use criterion::{criterion_group, criterion_main, Criterion};
use ssplane_astro::geo::GeoPoint;
use ssplane_astro::time::Epoch;
use ssplane_astro::walker::WalkerDelta;
use ssplane_lsn::disruption::{AttackModel, AttackTarget, RadiationExponential, RandomSats};
use ssplane_lsn::failures::FailureModel;
use ssplane_lsn::snapshot::{time_grid, SnapshotSeries};
use ssplane_lsn::spares::SparePolicy;
use ssplane_lsn::survivability::{outage_timeline, SurvivabilityConfig};
use ssplane_lsn::topology::{Constellation, GridTopologyConfig, Topology};
use ssplane_lsn::traffic::{assign_traffic, Flow};
use ssplane_radiation::fluence::DailyFluence;
use std::hint::black_box;

/// The benchmark time grid: 8 slots, 2 minutes apart.
const SLOTS: usize = 8;
const SLOT_S: f64 = 120.0;

/// Mega-constellation shape: 50 planes x 200 slots at 550 km / 53 deg.
const PLANES: usize = 50;
const PER_PLANE: usize = 200;

fn mega_constellation() -> (Constellation, Vec<Vec<ssplane_astro::kepler::OrbitalElements>>) {
    let pattern = WalkerDelta::new(550.0, 53f64.to_radians(), PLANES * PER_PLANE, PLANES, 1)
        .unwrap()
        .generate()
        .unwrap();
    let planes: Vec<Vec<_>> = pattern.chunks(PER_PLANE).map(<[_]>::to_vec).collect();
    (Constellation::from_planes(Epoch::J2000, planes.clone()).unwrap(), planes)
}

/// A deterministic city-to-city flow set (no demand model needed here).
fn flows() -> Vec<Flow> {
    let cities = [
        (40.7, -74.0),
        (51.5, -0.1),
        (35.7, 139.7),
        (-23.5, -46.6),
        (19.1, 72.9),
        (30.0, 31.2),
        (55.8, 37.6),
        (1.3, 103.8),
        (34.1, -118.2),
        (48.9, 2.3),
        (-33.9, 151.2),
        (52.5, 13.4),
    ];
    let mut out = Vec::new();
    for (i, &(a_lat, a_lon)) in cities.iter().enumerate() {
        for &(b_lat, b_lon) in cities.iter().skip(i + 1).step_by(5) {
            out.push(Flow {
                src: GeoPoint::from_degrees(a_lat, a_lon),
                dst: GeoPoint::from_degrees(b_lat, b_lon),
                demand: 1.0,
            });
        }
    }
    out
}

/// The network stage over a prebuilt series, optionally masking each
/// slot with `masks[k]`. Returns total routed flows.
fn traffic_stage(
    series: &SnapshotSeries,
    flow_list: &[Flow],
    min_elevation: f64,
    config: GridTopologyConfig,
    masks: Option<&[Vec<bool>]>,
) -> usize {
    let mut routed = 0usize;
    for (k, snapshot) in series.iter().enumerate() {
        let snapshot = match masks {
            Some(m) => snapshot.with_alive(&m[k]),
            None => snapshot,
        };
        let topology = Topology::plus_grid(&snapshot, config).unwrap();
        routed += assign_traffic(&snapshot, &topology, flow_list, min_elevation).unwrap().routed;
    }
    routed
}

fn bench_disruption(criterion: &mut Criterion) {
    let (c, element_planes) = mega_constellation();
    let start = Epoch::J2000;
    let config = GridTopologyConfig::default();
    let min_elev = 20f64.to_radians();
    let flow_list = flows();
    let series = SnapshotSeries::build_parallel(&c, &time_grid(start, SLOTS, SLOT_S), 0).unwrap();
    let total = series.n_sats();

    // The disruption: a seeded 10% random-satellite attack plus a hot
    // radiation-exponential outage timeline, sampled per slot across the
    // mission — the same masking the scenario engine's
    // `network.with_outages` stage performs.
    let target = AttackTarget {
        planes: element_planes.iter().map(Vec::as_slice).collect(),
        plane_groups: (0..PLANES).collect(),
        epoch: start,
    };
    let attack = RandomSats { sats_lost: total / 10 };
    let destroyed = attack.destroyed(&target, 42).unwrap();
    let mut alive_base = vec![true; total];
    for id in &destroyed {
        alive_base[id.plane * PER_PLANE + id.slot] = false;
    }
    let dead: Vec<bool> = alive_base.iter().map(|&a| !a).collect();
    let doses = vec![DailyFluence { electron: 3.5e10, proton: 2.2e7 }; PLANES];
    let plane_sats = vec![PER_PLANE; PLANES];
    let process = RadiationExponential { model: FailureModel::default() };
    let policy = SparePolicy::PerPlane { spares_per_plane: 2, replacement_days: 3.0 };
    let sim_config = SurvivabilityConfig::default();
    let timeline =
        outage_timeline(&doses, &plane_sats, Some(&dead), &process, &policy, sim_config).unwrap();
    let masks: Vec<Vec<bool>> = (0..SLOTS)
        .map(|k| {
            let mut mask = alive_base.clone();
            let day = timeline.horizon_days * (k as f64 + 0.5) / SLOTS as f64;
            timeline.mask_alive(day, &mut mask);
            mask
        })
        .collect();

    // Sanity: the degraded stage can never out-route the intact one.
    let intact_routed = traffic_stage(&series, &flow_list, min_elev, config, None);
    let degraded_routed = traffic_stage(&series, &flow_list, min_elev, config, Some(&masks));
    assert!(degraded_routed <= intact_routed, "{degraded_routed} > {intact_routed}");

    let mut group = criterion.benchmark_group("disruption_10000sats");
    group.sample_size(10);

    // Generating the whole 10k-satellite outage timeline (5-year
    // mission, per-satellite intervals).
    group.bench_with_input(
        criterion::BenchmarkId::new("outage_timeline", "5y_mission"),
        &(),
        |b, ()| {
            b.iter(|| {
                black_box(
                    outage_timeline(
                        &doses,
                        &plane_sats,
                        Some(&dead),
                        &process,
                        &policy,
                        sim_config,
                    )
                    .unwrap()
                    .failures,
                )
            })
        },
    );

    // Single-slot +grid: intact vs masked build.
    let single = SnapshotSeries::build(&c, &[start]).unwrap();
    group.bench_with_input(criterion::BenchmarkId::new("plus_grid", "intact"), &(), |b, ()| {
        b.iter(|| black_box(Topology::plus_grid(&single.snapshot(0), config).unwrap().links.len()))
    });
    group.bench_with_input(
        criterion::BenchmarkId::new("plus_grid", "masked_10pct"),
        &(),
        |b, ()| {
            b.iter(|| {
                black_box(
                    Topology::plus_grid(&single.snapshot(0).with_alive(&masks[0]), config)
                        .unwrap()
                        .links
                        .len(),
                )
            })
        },
    );

    // The 8-slot network stage: intact baseline vs the outage-coupled
    // degraded pass (both off the same prebuilt series, as in the
    // scenario engine).
    group.bench_with_input(
        criterion::BenchmarkId::new("traffic_stage_8slots", "intact"),
        &(),
        |b, ()| b.iter(|| black_box(traffic_stage(&series, &flow_list, min_elev, config, None))),
    );
    group.bench_with_input(
        criterion::BenchmarkId::new("traffic_stage_8slots", "degraded"),
        &(),
        |b, ()| {
            b.iter(|| black_box(traffic_stage(&series, &flow_list, min_elev, config, Some(&masks))))
        },
    );

    group.finish();
}

criterion_group!(benches, bench_disruption);
criterion_main!(benches);
