//! Criterion bench for the Fig. 1 pipeline: RGT enumeration + coverage
//! analysis + Walker sizing across the 500–2000 km window.

use criterion::{criterion_group, criterion_main, Criterion};
use ssplane_bench::figures::fig1;
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    c.bench_function("fig1_full_sweep", |b| {
        b.iter(|| {
            let data = fig1::data(black_box(fig1::Params::default())).unwrap();
            black_box(data.rgts.len() + data.walker.len())
        })
    });
    c.bench_function("fig1_rgt_enumeration_only", |b| {
        b.iter(|| {
            let orbits = ssplane_astro::rgt::enumerate_rgt_orbits(
                black_box(500.0),
                2000.0,
                4,
                1.134, // 65°
            );
            black_box(orbits.len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fig1
}
criterion_main!(benches);
