//! Criterion bench for the Fig. 7 pipeline: daily fluence integration
//! along orbits through the belt model.

use criterion::{criterion_group, criterion_main, Criterion};
use ssplane_astro::kepler::OrbitalElements;
use ssplane_astro::time::Epoch;
use ssplane_radiation::fluence::daily_fluence;
use ssplane_radiation::RadiationEnvironment;
use std::hint::black_box;

fn bench_fluence(c: &mut Criterion) {
    let env = RadiationEnvironment::default();
    let epoch = Epoch::from_calendar(2013, 6, 1, 0, 0, 0.0);
    let el = OrbitalElements::circular(560.0, 65f64.to_radians(), 0.0, 0.0).unwrap();

    c.bench_function("daily_fluence_560km_60s_step", |b| {
        b.iter(|| black_box(daily_fluence(&env, black_box(&el), epoch, 60.0).unwrap()))
    });

    c.bench_function("flux_eval_single_point", |b| {
        let r = ssplane_astro::linalg::Vec3::new(6938.0, 0.0, 0.0);
        b.iter(|| black_box(env.flux_eci(black_box(r), epoch).unwrap()))
    });

    c.bench_function("fig7_sweep_5_inclinations", |b| {
        b.iter(|| {
            let sweep = ssplane_radiation::fluence::fluence_vs_inclination(
                &env,
                560.0,
                black_box(&[50.0, 65.0, 80.0, 90.0, 97.64]),
                epoch,
                120.0,
            )
            .unwrap();
            black_box(sweep.len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fluence
}
criterion_main!(benches);
