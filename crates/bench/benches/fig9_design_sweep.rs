//! Criterion bench for the Fig. 9 pipeline: the greedy SS-plane designer
//! and the multi-shell Walker baseline on the realistic demand grid.

use criterion::{criterion_group, criterion_main, Criterion};
use ssplane_bench::figures::{default_demand_model, default_grid};
use ssplane_core::designer::{design_ss_constellation, DesignConfig};
use ssplane_core::walker_baseline::{design_walker_constellation, WalkerBaselineConfig};
use std::hint::black_box;

fn bench_designers(c: &mut Criterion) {
    let model = default_demand_model();
    let grid = default_grid(&model);
    let demand = grid.scaled(200.0 / grid.total());

    c.bench_function("ss_greedy_design_B200", |b| {
        b.iter(|| {
            let cons =
                design_ss_constellation(black_box(&demand), DesignConfig::default()).unwrap();
            black_box(cons.total_sats())
        })
    });

    c.bench_function("walker_baseline_design_B200", |b| {
        b.iter(|| {
            let cons =
                design_walker_constellation(black_box(&demand), WalkerBaselineConfig::default())
                    .unwrap();
            black_box(cons.total_sats())
        })
    });

    c.bench_function("demand_grid_build_36x24", |b| {
        b.iter(|| {
            let g =
                ssplane_demand::grid::LatTodGrid::from_model(black_box(&model), 36, 24).unwrap();
            black_box(g.total())
        })
    });
}

criterion_group! {
    name = benches;
    // Each iteration runs a full constellation design; keep sampling light.
    config = Criterion::default().sample_size(10);
    targets = bench_designers
}
criterion_main!(benches);
