//! Percolation-analytics benches on mega-constellation geometry: the
//! union-find loss-fraction sweep (32 steps over 10k satellites), the
//! deflated-power-iteration λ₂, and the full scenario-stage equivalent
//! (4 slots × 2 orderings + per-slot λ₂) — the ISSUE's "a few seconds"
//! budget, measured.
//!
//! The headline numbers land in `BENCH_percolation.json` at the
//! repository root; re-capture with
//! `cargo bench -p ssplane-bench --bench percolation`.

use criterion::{criterion_group, criterion_main, Criterion};
use ssplane_astro::time::Epoch;
use ssplane_astro::walker::WalkerDelta;
use ssplane_lsn::percolation::{
    algebraic_connectivity, percolation_sweep, plane_spread_ordering, random_ordering,
    Lambda2Config,
};
use ssplane_lsn::snapshot::{time_grid, SnapshotSeries};
use ssplane_lsn::topology::{Constellation, GridTopologyConfig, Topology};
use std::hint::black_box;

/// The benchmark time grid: 4 slots, 2 minutes apart.
const SLOTS: usize = 4;
const SLOT_S: f64 = 120.0;

/// Loss-fraction steps per sweep (the scenario default).
const STEPS: usize = 32;

/// Mega-constellation shape: 50 planes x 200 slots at 550 km / 53 deg.
const PLANES: usize = 50;
const PER_PLANE: usize = 200;

fn mega_constellation() -> Constellation {
    let pattern = WalkerDelta::new(550.0, 53f64.to_radians(), PLANES * PER_PLANE, PLANES, 1)
        .unwrap()
        .generate()
        .unwrap();
    let planes: Vec<Vec<_>> = pattern.chunks(PER_PLANE).map(<[_]>::to_vec).collect();
    Constellation::from_planes(Epoch::J2000, planes).unwrap()
}

fn bench_percolation(criterion: &mut Criterion) {
    let c = mega_constellation();
    let config = GridTopologyConfig::default();
    let series =
        SnapshotSeries::build_parallel(&c, &time_grid(Epoch::J2000, SLOTS, SLOT_S), 0).unwrap();
    let topologies: Vec<Topology> =
        (0..SLOTS).map(|k| Topology::plus_grid(&series.snapshot(k), config).unwrap()).collect();
    let n = series.n_sats();
    let spread = plane_spread_ordering(&topologies[0]);
    let random = random_ordering(n, 42);
    let alive = vec![true; n];

    // Sanity: targeted plane loss collapses the +grid before uniform
    // random loss does, at 10k-satellite scale too.
    let targeted = percolation_sweep(&topologies[0], &spread, STEPS);
    let baseline = percolation_sweep(&topologies[0], &random, STEPS);
    let (t, r) =
        (targeted.masking_threshold(0.1).unwrap(), baseline.masking_threshold(0.1).unwrap());
    assert!(t < r, "targeted {t} vs random {r}");

    let mut group = criterion.benchmark_group("percolation_10000sats");
    group.sample_size(10);

    // One 32-step loss sweep: reverse union-find replay of the whole
    // removal ordering, 33 curve points.
    group.bench_with_input(
        criterion::BenchmarkId::new("sweep_32steps", "leading-planes"),
        &(),
        |b, ()| {
            b.iter(|| black_box(percolation_sweep(&topologies[0], &spread, STEPS).giant_fraction))
        },
    );
    group.bench_with_input(
        criterion::BenchmarkId::new("sweep_32steps", "random-sats"),
        &(),
        |b, ()| {
            b.iter(|| black_box(percolation_sweep(&topologies[0], &random, STEPS).giant_fraction))
        },
    );

    // Algebraic connectivity of the intact 10k-node +grid: the seeded
    // deflated power iteration.
    group.bench_with_input(criterion::BenchmarkId::new("lambda2", "intact"), &(), |b, ()| {
        b.iter(|| {
            black_box(algebraic_connectivity(&topologies[0], &alive, &Lambda2Config::default()))
        })
    });

    // The full scenario-stage equivalent: per-slot λ₂ plus both
    // orderings' sweeps over every slot — the `{name}.percolation`
    // stage's whole workload at `network.time_grid_slots = 4`.
    group.bench_with_input(
        criterion::BenchmarkId::new("stage_4slots", "lambda2+2x_sweeps"),
        &(),
        |b, ()| {
            b.iter(|| {
                let mut acc = 0.0;
                for topology in &topologies {
                    acc += algebraic_connectivity(topology, &alive, &Lambda2Config::default());
                    acc += percolation_sweep(topology, &spread, STEPS).mean_giant();
                    acc += percolation_sweep(topology, &random, STEPS).mean_giant();
                }
                black_box(acc)
            })
        },
    );

    group.finish();
}

criterion_group!(benches, bench_percolation);
criterion_main!(benches);
