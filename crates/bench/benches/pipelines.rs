//! Micro-benchmarks of the substrate hot paths: Kepler solving, J2
//! propagation, frame conversion, coverage geometry, and plane-footprint
//! computation.

use criterion::{criterion_group, criterion_main, Criterion};
use ssplane_astro::kepler::{solve_kepler, OrbitalElements};
use ssplane_astro::propagate::J2Propagator;
use ssplane_astro::sunsync::sun_synchronous_orbit;
use ssplane_astro::time::Epoch;
use ssplane_core::ssplane::SsPlane;
use ssplane_demand::grid::LatTodGrid;
use std::hint::black_box;

fn bench_pipelines(c: &mut Criterion) {
    c.bench_function("kepler_solve_e02", |b| {
        b.iter(|| black_box(solve_kepler(black_box(2.1), 0.2).unwrap()))
    });

    let el = OrbitalElements::circular(560.0, 1.7, 0.3, 0.1).unwrap();
    let prop = J2Propagator::new(Epoch::J2000, el).unwrap();
    c.bench_function("j2_propagate_state", |b| {
        let t = Epoch::J2000 + 12_345.0;
        b.iter(|| black_box(prop.state_at(black_box(t)).unwrap()))
    });

    c.bench_function("gmst", |b| {
        let t = Epoch::J2000 + 98_765.0;
        b.iter(|| black_box(black_box(t).gmst()))
    });

    let orbit = sun_synchronous_orbit(560.0).unwrap();
    let grid = LatTodGrid::from_values(36, 24, vec![1.0; 36 * 24]).unwrap();
    c.bench_function("ss_plane_covered_cells_36x24", |b| {
        let plane = SsPlane { orbit: orbit.with_ltan(10.0), n_sats: 50 };
        b.iter(|| black_box(plane.covered_cells(black_box(&grid), 0.109).len()))
    });

    c.bench_function("walker_sizing", |b| {
        b.iter(|| {
            black_box(ssplane_astro::coverage::size_walker_delta(black_box(0.1266), 1.134).unwrap())
        })
    });
}

criterion_group!(benches, bench_pipelines);
criterion_main!(benches);
