//! Topology and time-expanded-routing benches on mega-constellation
//! geometry: the legacy rebuild-per-slot path (re-propagating positions
//! on demand, O(S_p x S_q) cross-plane nearest-slot scans) against the
//! `SnapshotSeries` path (one batch propagation over the whole time
//! grid, sorted-by-angle nearest-slot search).
//!
//! The headline numbers land in `BENCH_topology.json` at the repository
//! root; re-capture with
//! `cargo bench -p ssplane-bench --bench topology`.

use criterion::{criterion_group, criterion_main, Criterion};
use ssplane_astro::constants::EARTH_RADIUS_KM;
use ssplane_astro::coverage::elevation_at_central_angle;
use ssplane_astro::frames::ecef_to_eci;
use ssplane_astro::geo::GeoPoint;
use ssplane_astro::time::Epoch;
use ssplane_astro::walker::WalkerDelta;
use ssplane_lsn::routing::{route_over_time, shortest_path};
use ssplane_lsn::snapshot::{time_grid, SnapshotSeries};
use ssplane_lsn::topology::{Constellation, GridTopologyConfig, SatId, Topology};
use ssplane_lsn::traffic::{assign_traffic, Flow};
use std::hint::black_box;

/// The benchmark time grid: 8 slots, 2 minutes apart.
const SLOTS: usize = 8;
const SLOT_S: f64 = 120.0;

/// Reference ground pair (New York -> London).
const NYC: (f64, f64) = (40.7, -74.0);
const LONDON: (f64, f64) = (51.5, -0.1);

/// The mega-constellation geometry: a 10 000-satellite Walker delta
/// (50 planes x 200 slots at 550 km / 53 deg), the scale the
/// `mega-constellation` scenario pushes the Walker baseline to.
fn mega_constellation() -> Constellation {
    let pattern =
        WalkerDelta::new(550.0, 53f64.to_radians(), 10_000, 50, 1).unwrap().generate().unwrap();
    let planes = pattern.chunks(200).map(<[_]>::to_vec).collect();
    Constellation::from_planes(Epoch::J2000, planes).unwrap()
}

/// A deterministic city-to-city flow set (no demand model needed here).
fn flows() -> Vec<Flow> {
    let cities = [
        (40.7, -74.0),
        (51.5, -0.1),
        (35.7, 139.7),
        (-23.5, -46.6),
        (19.1, 72.9),
        (30.0, 31.2),
        (55.8, 37.6),
        (1.3, 103.8),
        (34.1, -118.2),
        (48.9, 2.3),
        (-33.9, 151.2),
        (52.5, 13.4),
    ];
    let mut out = Vec::new();
    for (i, &(a_lat, a_lon)) in cities.iter().enumerate() {
        for &(b_lat, b_lon) in cities.iter().skip(i + 1).step_by(5) {
            out.push(Flow {
                src: GeoPoint::from_degrees(a_lat, a_lon),
                dst: GeoPoint::from_degrees(b_lat, b_lon),
                demand: 1.0,
            });
        }
    }
    out
}

/// The legacy ground-attachment scan: propagates every satellite at `t`
/// (exactly what `serving_satellite` did before the snapshot refactor).
fn serving_satellite_legacy(
    c: &Constellation,
    ground: GeoPoint,
    t: Epoch,
    min_elevation: f64,
) -> Option<(SatId, f64)> {
    let g_eci = ecef_to_eci(t, ground.to_unit_vector() * EARTH_RADIUS_KM);
    let mut best: Option<(SatId, f64)> = None;
    for id in c.ids() {
        let r = c.position(id, t).unwrap();
        let central = g_eci.angle_to(r);
        let elev = elevation_at_central_angle(r.norm() - EARTH_RADIUS_KM, central.max(1e-9));
        if elev >= min_elevation && best.is_none_or(|(_, be)| elev > be) {
            best = Some((id, elev));
        }
    }
    best
}

/// The legacy time-expanded route: rebuild the topology and re-propagate
/// ground attachment per slot. Returns the reachable-slot count.
fn route_over_time_legacy(
    c: &Constellation,
    src: GeoPoint,
    dst: GeoPoint,
    start: Epoch,
    min_elevation: f64,
    config: GridTopologyConfig,
) -> usize {
    let mut reachable = 0usize;
    for k in 0..SLOTS {
        let t = start + k as f64 * SLOT_S;
        let topology = Topology::plus_grid_at(c, t, config).unwrap();
        let (Some((s_sat, _)), Some((d_sat, _))) = (
            serving_satellite_legacy(c, src, t, min_elevation),
            serving_satellite_legacy(c, dst, t, min_elevation),
        ) else {
            continue;
        };
        if s_sat == d_sat || shortest_path(&topology, s_sat, d_sat).is_ok() {
            reachable += 1;
        }
    }
    reachable
}

/// The legacy traffic stage: per slot, rebuild the topology and route
/// every flow with per-flow ground attachment (2 N propagations per
/// flow) and a per-pair Dijkstra.
fn traffic_stage_legacy(
    c: &Constellation,
    flow_list: &[Flow],
    start: Epoch,
    min_elevation: f64,
    config: GridTopologyConfig,
) -> usize {
    let mut routed = 0usize;
    for k in 0..SLOTS {
        let t = start + k as f64 * SLOT_S;
        let topology = Topology::plus_grid_at(c, t, config).unwrap();
        for flow in flow_list {
            let (Some((s_sat, _)), Some((d_sat, _))) = (
                serving_satellite_legacy(c, flow.src, t, min_elevation),
                serving_satellite_legacy(c, flow.dst, t, min_elevation),
            ) else {
                continue;
            };
            if s_sat == d_sat || shortest_path(&topology, s_sat, d_sat).is_ok() {
                routed += 1;
            }
        }
    }
    routed
}

/// The snapshot-path traffic stage: one series build, then per-slot
/// topology + batched assignment.
fn traffic_stage_snapshot(
    c: &Constellation,
    flow_list: &[Flow],
    start: Epoch,
    min_elevation: f64,
    config: GridTopologyConfig,
) -> usize {
    let series = SnapshotSeries::build_parallel(c, &time_grid(start, SLOTS, SLOT_S), 0).unwrap();
    let mut routed = 0usize;
    for snapshot in series.iter() {
        let topology = Topology::plus_grid(&snapshot, config).unwrap();
        routed += assign_traffic(&snapshot, &topology, flow_list, min_elevation).unwrap().routed;
    }
    routed
}

fn bench_topology(criterion: &mut Criterion) {
    let c = mega_constellation();
    let start = Epoch::J2000;
    let config = GridTopologyConfig::default();
    let min_elev = 20f64.to_radians();
    let src = GeoPoint::from_degrees(NYC.0, NYC.1);
    let dst = GeoPoint::from_degrees(LONDON.0, LONDON.1);
    let flow_list = flows();

    // Sanity: the two paths agree before we time them.
    let legacy_reachable = route_over_time_legacy(&c, src, dst, start, min_elev, config);
    let series = SnapshotSeries::build(&c, &time_grid(start, SLOTS, SLOT_S)).unwrap();
    let snapshot_routes = route_over_time(&series, src, dst, min_elev, config).unwrap();
    assert_eq!(legacy_reachable, snapshot_routes.reachable_slots(), "paths disagree");
    assert_eq!(
        traffic_stage_legacy(&c, &flow_list, start, min_elev, config),
        traffic_stage_snapshot(&c, &flow_list, start, min_elev, config),
        "traffic stages disagree"
    );

    let mut group = criterion.benchmark_group("topology_10000sats");
    group.sample_size(10);

    // Single-slot +grid: legacy per-pair scan vs sorted-by-angle search
    // over a prebuilt snapshot.
    group.bench_with_input(
        criterion::BenchmarkId::new("plus_grid", "legacy_scan"),
        &(),
        |b, ()| {
            b.iter(|| black_box(Topology::plus_grid_at(&c, start, config).unwrap().links.len()))
        },
    );
    let single = SnapshotSeries::build(&c, &[start]).unwrap();
    group.bench_with_input(
        criterion::BenchmarkId::new("plus_grid", "snapshot_sorted"),
        &(),
        |b, ()| {
            b.iter(|| {
                black_box(Topology::plus_grid(&single.snapshot(0), config).unwrap().links.len())
            })
        },
    );

    // The multi-slot network stage, slot-by-slot rebuild vs shared cache.
    group.bench_with_input(
        criterion::BenchmarkId::new("route_over_time_8slots", "legacy_rebuild"),
        &(),
        |b, ()| b.iter(|| black_box(route_over_time_legacy(&c, src, dst, start, min_elev, config))),
    );
    group.bench_with_input(
        criterion::BenchmarkId::new("route_over_time_8slots", "snapshot_series"),
        &(),
        |b, ()| {
            b.iter(|| {
                let series =
                    SnapshotSeries::build_parallel(&c, &time_grid(start, SLOTS, SLOT_S), 0)
                        .unwrap();
                black_box(
                    route_over_time(&series, src, dst, min_elev, config).unwrap().reachable_slots(),
                )
            })
        },
    );

    group.bench_with_input(
        criterion::BenchmarkId::new("traffic_stage_8slots", "legacy_rebuild"),
        &(),
        |b, ()| b.iter(|| black_box(traffic_stage_legacy(&c, &flow_list, start, min_elev, config))),
    );
    group.bench_with_input(
        criterion::BenchmarkId::new("traffic_stage_8slots", "snapshot_series"),
        &(),
        |b, ()| {
            b.iter(|| black_box(traffic_stage_snapshot(&c, &flow_list, start, min_elev, config)))
        },
    );

    group.finish();
}

criterion_group!(benches, bench_topology);
criterion_main!(benches);
