//! Population-scale traffic-engine benches: seeded gravity-model
//! synthesis of the 100k-pair workload, and the capacity-constrained
//! served-demand assignment (attachment aggregation → k-path candidates
//! → residual waterfilling) at 10k-satellite scale — one slot and the
//! full 4-slot grid, the per-scenario stage `scenario-runner` pays.
//!
//! The headline numbers land in `BENCH_traffic_scale.json` at the
//! repository root; re-capture with
//! `cargo bench -p ssplane-bench --bench traffic_scale`.

use criterion::{criterion_group, criterion_main, Criterion};
use ssplane_astro::time::Epoch;
use ssplane_astro::walker::WalkerDelta;
use ssplane_demand::gravity::{gravity_flows, GravityConfig};
use ssplane_demand::spatiotemporal::DemandModel;
use ssplane_lsn::snapshot::{time_grid, SnapshotSeries};
use ssplane_lsn::topology::{Constellation, Topology};
use ssplane_lsn::traffic_engine::{assign_capacity_constrained, CapacityConfig, TrafficWorkload};
use std::hint::black_box;

/// The benchmark time grid: 4 slots, 2 minutes apart (the multi-slot
/// stage assigns the workload once per slot).
const SLOTS: usize = 4;
const SLOT_S: f64 = 120.0;

/// City-pair flows in the synthesized workload.
const PAIRS: usize = 100_000;

/// Total offered demand in link-capacity units — deep enough into
/// saturation that waterfilling and drop accounting are both on the
/// measured path, not just the attachment aggregation.
const OFFERED: f64 = 200.0;

fn walker(planes: usize, per_plane: usize) -> Constellation {
    let pattern = WalkerDelta::new(550.0, 53f64.to_radians(), planes * per_plane, planes, 1)
        .unwrap()
        .generate()
        .unwrap();
    Constellation::from_planes(Epoch::J2000, pattern.chunks(per_plane).map(<[_]>::to_vec).collect())
        .unwrap()
}

fn bench_traffic_scale(criterion: &mut Criterion) {
    let model = DemandModel::synthetic_seeded(42).unwrap();
    let config = GravityConfig { pairs: PAIRS, ..GravityConfig::default() };

    let mut group = criterion.benchmark_group("traffic_scale");
    group.sample_size(10);

    // Workload synthesis: 100k seeded city-pair flows over the
    // population grid (chunked parallel RNG, deterministic per seed).
    group.bench_with_input(
        criterion::BenchmarkId::new("gravity_flows", format!("{PAIRS}pairs")),
        &(),
        |b, ()| b.iter(|| black_box(gravity_flows(&model, &config, 0).unwrap().len())),
    );

    let gravity = gravity_flows(&model, &config, 0).unwrap();
    let total: f64 = gravity.iter().map(|g| g.rate).sum();
    let workload = TrafficWorkload::from_gravity(
        &gravity,
        OFFERED / total,
        CapacityConfig { link_capacity: 1.0, k_paths: 2 },
    );

    // 10k satellites: 50 planes x 200 slots (the mega-constellation
    // geometry every other bench uses), with the per-slot +grid
    // topologies prebuilt exactly as the runner's evaluator holds them.
    let c = walker(50, 200);
    let series =
        SnapshotSeries::build_parallel(&c, &time_grid(Epoch::J2000, SLOTS, SLOT_S), 0).unwrap();
    let topologies: Vec<Topology> = series
        .iter()
        .map(|snapshot| Topology::plus_grid(&snapshot, Default::default()).unwrap())
        .collect();
    let min_elevation = 20f64.to_radians();

    // One slot: ServingIndex attachment of 100k flows + penalized
    // k-path rounds + waterfilling on the 10k-node topology.
    group.sample_size(5);
    group.bench_with_input(
        criterion::BenchmarkId::new("assign_slot", format!("10000sats_{PAIRS}flows")),
        &(),
        |b, ()| {
            b.iter(|| {
                black_box(
                    assign_capacity_constrained(
                        &series.snapshot(0),
                        &topologies[0],
                        &workload.flows,
                        min_elevation,
                        &workload.capacity,
                    )
                    .unwrap()
                    .served_fraction,
                )
            })
        },
    );

    // The full multi-slot stage: the acceptance number — every slot of
    // the grid assigned back-to-back, as one scenario point pays it.
    group.sample_size(3);
    group.bench_with_input(
        criterion::BenchmarkId::new("assign_grid", format!("{SLOTS}slots")),
        &(),
        |b, ()| {
            b.iter(|| {
                let mut served = 0.0;
                for (k, topology) in topologies.iter().enumerate() {
                    served += assign_capacity_constrained(
                        &series.snapshot(k),
                        topology,
                        &workload.flows,
                        min_elevation,
                        &workload.capacity,
                    )
                    .unwrap()
                    .served_fraction;
                }
                black_box(served)
            })
        },
    );

    group.finish();
}

criterion_group!(benches, bench_traffic_scale);
criterion_main!(benches);
