//! `repro` — regenerates every figure of the paper's evaluation.
//!
//! ```text
//! repro <fig1..fig10|ablations|extensions|all> [--quick]
//! ```
//!
//! Output is printed to stdout as aligned tables or CSV; EXPERIMENTS.md
//! records the paper-vs-measured comparison for each experiment.
//! `--quick` shrinks sweep sizes ~10x for smoke runs.

use ssplane_bench::figures;
use std::process::ExitCode;

fn run_figure(name: &str, quick: bool) -> Result<String, Box<dyn std::error::Error>> {
    let text = match name {
        "fig1" => {
            let params = figures::fig1::Params {
                walker_step_km: if quick { 500.0 } else { 100.0 },
                ..Default::default()
            };
            figures::fig1::render(&figures::fig1::data(params)?)
        }
        "fig2" => {
            let params = figures::fig2::Params {
                step_s: if quick { 120.0 } else { 30.0 },
                ..Default::default()
            };
            figures::fig2::render(&figures::fig2::data(params)?)
        }
        "fig3" => figures::fig3::render(&figures::fig3::data()),
        "fig4" => {
            let params = if quick {
                figures::fig4::Params { n_sites: 60, n_days: 60, ..Default::default() }
            } else {
                Default::default()
            };
            figures::fig4::render(&figures::fig4::data(params))
        }
        "fig5" => {
            let params = if quick {
                figures::fig5::Params { rings: 9, sectors: 24, ..Default::default() }
            } else {
                Default::default()
            };
            figures::fig5::render(&figures::fig5::data(params)?)
        }
        "fig6" => {
            let params = if quick {
                figures::fig6::Params { n_days: 16, n_lat: 19, n_lon: 36, ..Default::default() }
            } else {
                Default::default()
            };
            figures::fig6::render(&figures::fig6::data(params)?)
        }
        "fig7" => {
            let params = if quick {
                figures::fig7::Params {
                    inclinations_deg: vec![50.0, 57.5, 65.0, 72.5, 80.0, 90.0, 97.64],
                    step_s: 60.0,
                    ..Default::default()
                }
            } else {
                Default::default()
            };
            figures::fig7::render(&figures::fig7::data(params)?)
        }
        "fig8" => figures::fig8::render(&figures::fig8::data()),
        "fig9" => {
            let params = if quick {
                figures::fig9::Params { totals: vec![10.0, 100.0, 1000.0], ..Default::default() }
            } else {
                Default::default()
            };
            figures::fig9::render(&figures::fig9::data(params)?)
        }
        "fig10" => {
            let params = if quick {
                figures::fig10::Params {
                    totals: vec![100.0],
                    phases: 1,
                    step_s: 120.0,
                    ..Default::default()
                }
            } else {
                Default::default()
            };
            figures::fig10::render(&figures::fig10::data(params)?)
        }
        "ablations" => figures::ablations::render(&figures::ablations::data()?),
        "extensions" => figures::extensions::render(&figures::extensions::data(if quick {
            50.0
        } else {
            200.0
        })?),
        other => return Err(format!("unknown figure '{other}'").into()),
    };
    Ok(text)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let targets: Vec<String> = args.into_iter().filter(|a| a != "--quick").collect();
    let all = ["fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"];
    let selected: Vec<&str> = match targets.first().map(String::as_str) {
        None | Some("all") => all.to_vec(),
        Some(name) => vec![name],
    };
    for name in selected {
        println!("==== {name} ====");
        match run_figure(name, quick) {
            Ok(text) => println!("{text}"),
            Err(e) => {
                eprintln!("error generating {name}: {e}");
                eprintln!("usage: repro <fig1..fig10|all> [--quick]");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
