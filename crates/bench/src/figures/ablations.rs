//! Ablations of the design choices called out in DESIGN.md §6:
//! branch-selection rule, minimum elevation, grid resolution, and the
//! Walker supply model.

use crate::render;
use ssplane_core::designer::{design_ss_constellation, BranchRule, DesignConfig};
use ssplane_core::error::Result;
use ssplane_core::walker_baseline::{
    design_walker_constellation, SupplyModel, WalkerBaselineConfig,
};
use ssplane_demand::grid::LatTodGrid;

/// One ablation outcome: a configuration label and the satellite count it
/// produces at the probe demand level.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Which knob was varied.
    pub knob: &'static str,
    /// The setting.
    pub setting: String,
    /// Total satellites designed.
    pub total_sats: usize,
    /// Planes or shells.
    pub groups: usize,
}

/// Probe total-demand level for the ablations \[satellite capacities\].
pub const PROBE_TOTAL_B: f64 = 200.0;

/// Runs all ablations at the probe demand level.
///
/// # Errors
/// Propagates designer failure.
pub fn data() -> Result<Vec<AblationRow>> {
    let model = super::default_demand_model();
    let mut rows = Vec::new();

    // --- Branch rule (greedy plane selection) -------------------------
    let grid = super::default_grid(&model);
    let demand = grid.scaled(PROBE_TOTAL_B / grid.total());
    for rule in [BranchRule::BestOfBoth, BranchRule::AscendingOnly, BranchRule::Alternate] {
        let c = design_ss_constellation(
            &demand,
            DesignConfig { branch_rule: rule, ..Default::default() },
        )?;
        rows.push(AblationRow {
            knob: "branch_rule",
            setting: format!("{rule:?}"),
            total_sats: c.total_sats(),
            groups: c.planes.len(),
        });
    }

    // --- Minimum elevation ---------------------------------------------
    for elev in [15.0, 25.0, 30.0, 40.0] {
        let c = design_ss_constellation(
            &demand,
            DesignConfig { min_elevation_deg: elev, ..Default::default() },
        )?;
        rows.push(AblationRow {
            knob: "min_elevation_deg",
            setting: format!("{elev}"),
            total_sats: c.total_sats(),
            groups: c.planes.len(),
        });
    }

    // --- Grid resolution -------------------------------------------------
    for (lat_bins, tod_bins) in [(24usize, 16usize), (36, 24), (72, 48)] {
        let g = LatTodGrid::from_model(&model, lat_bins, tod_bins)?;
        let d = g.scaled(PROBE_TOTAL_B / g.total());
        let c = design_ss_constellation(&d, DesignConfig::default())?;
        rows.push(AblationRow {
            knob: "grid_resolution",
            setting: format!("{lat_bins}x{tod_bins}"),
            total_sats: c.total_sats(),
            groups: c.planes.len(),
        });
    }

    // --- Walker supply model (baseline strength) -------------------------
    for supply in [SupplyModel::WorstCase, SupplyModel::TimeAverage] {
        let c = design_walker_constellation(
            &demand,
            WalkerBaselineConfig { supply_model: supply, ..Default::default() },
        )?;
        rows.push(AblationRow {
            knob: "wd_supply_model",
            setting: format!("{supply:?}"),
            total_sats: c.total_sats(),
            groups: c.shells.len(),
        });
    }

    // --- Single- vs multi-shell baseline ---------------------------------
    for (label, candidates) in [
        ("multi_shell", vec![15.0, 25.0, 35.0, 45.0, 55.0, 65.0, 75.0, 85.0]),
        ("single_65deg", vec![65.0]),
    ] {
        let c = design_walker_constellation(
            &demand,
            WalkerBaselineConfig { candidate_inclinations_deg: candidates, ..Default::default() },
        )?;
        rows.push(AblationRow {
            knob: "wd_shells",
            setting: label.to_string(),
            total_sats: c.total_sats(),
            groups: c.shells.len(),
        });
    }

    Ok(rows)
}

/// Renders the ablation table.
pub fn render(rows: &[AblationRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.knob.to_string(),
                r.setting.clone(),
                r.total_sats.to_string(),
                r.groups.to_string(),
            ]
        })
        .collect();
    render::table(&["knob", "setting", "total_sats", "planes/shells"], &table_rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_run_and_are_robust() {
        let rows = data().unwrap();
        assert!(rows.len() >= 12);
        // Branch rules agree within 25% (the greedy is robust to the
        // choice, as the paper's loose specification implies).
        let branch: Vec<usize> =
            rows.iter().filter(|r| r.knob == "branch_rule").map(|r| r.total_sats).collect();
        let max = *branch.iter().max().unwrap() as f64;
        let min = *branch.iter().min().unwrap() as f64;
        assert!(max / min < 1.25, "branch-rule spread {min}..{max}");
        // Lower elevation mask -> fewer satellites (monotone).
        let elev: Vec<usize> =
            rows.iter().filter(|r| r.knob == "min_elevation_deg").map(|r| r.total_sats).collect();
        assert!(elev.windows(2).all(|w| w[0] <= w[1]), "elevation not monotone: {elev:?}");
        // The worst-case supply model is the stronger (larger) baseline.
        let supply: Vec<usize> =
            rows.iter().filter(|r| r.knob == "wd_supply_model").map(|r| r.total_sats).collect();
        assert!(supply[0] > supply[1], "worst-case {} vs time-average {}", supply[0], supply[1]);
        assert!(render(&rows).contains("wd_supply_model"));
    }
}
