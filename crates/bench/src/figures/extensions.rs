//! Extension experiments beyond the paper's figures: the sustainability
//! ledger (title claim, quantified), per-plane eclipse/power feasibility,
//! and the handoff-minimizing schedule — the "future work" directions §5
//! sketches, made measurable.

use crate::render;
use ssplane_core::designer::{design_ss_constellation, DesignConfig};
use ssplane_core::error::Result as CoreResult;
use ssplane_core::sustainability::{assess, SustainabilityParams, SustainabilityReport};
use ssplane_core::walker_baseline::{design_walker_constellation, WalkerBaselineConfig};
use ssplane_radiation::fluence::daily_fluence;
use ssplane_radiation::RadiationEnvironment;

/// The extension dataset.
#[derive(Debug, Clone)]
pub struct ExtensionData {
    /// Probe total-demand level.
    pub total_b: f64,
    /// Sustainability ledgers (SS, WD).
    pub sustainability: (SustainabilityReport, SustainabilityReport),
    /// Per-plane `(LTAN h, eclipse fraction)` of the SS design.
    pub eclipse_by_plane: Vec<(f64, f64)>,
}

/// Runs the extension experiments at total demand `total_b`.
///
/// # Errors
/// Propagates design or fluence failure.
pub fn data(total_b: f64) -> CoreResult<ExtensionData> {
    let model = super::default_demand_model();
    let grid = super::default_grid(&model);
    let demand = grid.scaled(total_b / grid.total());
    let epoch = super::design_epoch();
    let env = RadiationEnvironment::default();

    let ss = design_ss_constellation(&demand, DesignConfig::default())?;
    let wd = design_walker_constellation(&demand, WalkerBaselineConfig::default())?;

    // Representative doses.
    let ss_dose = {
        let el = ss.planes[0].orbit.elements_at(epoch, 0.0)?;
        daily_fluence(&env, &el, epoch, 60.0)?
    };
    // Dose of the WD shell holding the most satellites.
    let wd_dose = {
        let shell =
            wd.shells.iter().max_by_key(|s| s.n_sats).expect("baseline has at least one shell");
        let el = ssplane_astro::kepler::OrbitalElements::circular(
            shell.altitude_km,
            shell.inclination,
            0.0,
            0.0,
        )?;
        daily_fluence(&env, &el, epoch, 60.0)?
    };

    let params = SustainabilityParams::default();
    let ss_ledger = assess(ss.total_sats(), ss.planes.len(), ss_dose, true, params)?;
    let wd_shell_count: usize = wd.shells.iter().map(|s| s.planes).sum();
    let wd_ledger = assess(wd.total_sats(), wd_shell_count, wd_dose, false, params)?;

    let eclipse_by_plane = ss
        .planes
        .iter()
        .map(|p| {
            let el = p.orbit.elements_at(epoch, 0.0)?;
            Ok((p.orbit.ltan_h, ssplane_astro::eclipse::orbit_eclipse_fraction(epoch, &el)))
        })
        .collect::<CoreResult<Vec<_>>>()?;

    Ok(ExtensionData { total_b, sustainability: (ss_ledger, wd_ledger), eclipse_by_plane })
}

/// Renders the extension report.
pub fn render(d: &ExtensionData) -> String {
    let (ss, wd) = &d.sustainability;
    let ledger_rows = vec![
        vec![
            "SS-plane".to_string(),
            ss.active_sats.to_string(),
            ss.spare_sats.to_string(),
            render::fnum(ss.fleet_mass_kg / 1000.0),
            render::fnum(ss.launches_per_year),
            render::fnum(ss.reentry_aerosol_kg_per_year),
        ],
        vec![
            "Walker".to_string(),
            wd.active_sats.to_string(),
            wd.spare_sats.to_string(),
            render::fnum(wd.fleet_mass_kg / 1000.0),
            render::fnum(wd.launches_per_year),
            render::fnum(wd.reentry_aerosol_kg_per_year),
        ],
    ];
    let mut out = format!("# sustainability ledger at total demand B = {}\n", d.total_b);
    out.push_str(&render::table(
        &["design", "active", "spares", "fleet_mass_t", "launches/yr", "aerosol_kg/yr"],
        &ledger_rows,
    ));
    out.push_str("\n# SS plane eclipse fractions (power feasibility per LTAN)\n");
    let rows: Vec<Vec<String>> = d
        .eclipse_by_plane
        .iter()
        .map(|&(ltan, frac)| vec![format!("{ltan:.2}"), format!("{frac:.3}")])
        .collect();
    out.push_str(&render::table(&["ltan_h", "eclipse_fraction"], &rows));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extensions_reproduce_title_claim() {
        let d = data(100.0).unwrap();
        let (ss, wd) = &d.sustainability;
        // Sustainability AND survivability: smaller fleet mass, fewer
        // launches, less re-entry aerosol — despite the retrograde launch
        // penalty.
        assert!(ss.fleet_mass_kg < wd.fleet_mass_kg);
        assert!(ss.launches_per_year < wd.launches_per_year);
        assert!(ss.reentry_aerosol_kg_per_year < wd.reentry_aerosol_kg_per_year);
        // Eclipse fractions physical.
        assert!(!d.eclipse_by_plane.is_empty());
        for &(ltan, frac) in &d.eclipse_by_plane {
            assert!((0.0..24.0).contains(&ltan));
            assert!((0.0..0.45).contains(&frac));
        }
        assert!(render(&d).contains("fleet_mass_t"));
    }
}
