//! Figure 1: minimum satellites to cover a single repeat ground track
//! (uniform / non-uniform) vs a Walker-delta constellation, by altitude.

use crate::render;
use ssplane_core::error::Result;
use ssplane_core::rgt_analysis::{fig1_data, Fig1Data};

/// Parameters of the Fig. 1 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Lower altitude bound \[km\].
    pub min_alt_km: f64,
    /// Upper altitude bound \[km\].
    pub max_alt_km: f64,
    /// Maximum repeat-cycle length \[nodal days\].
    pub max_days: u32,
    /// Orbit inclination \[rad\].
    pub inclination: f64,
    /// Minimum elevation \[deg\].
    pub min_elevation_deg: f64,
    /// Walker curve sampling step \[km\].
    pub walker_step_km: f64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            min_alt_km: 500.0,
            max_alt_km: 2000.0,
            max_days: 4,
            inclination: super::comparison_inclination(),
            min_elevation_deg: ssplane_astro::coverage::DEFAULT_MIN_ELEVATION_DEG,
            walker_step_km: 100.0,
        }
    }
}

/// Computes the Fig. 1 dataset.
///
/// # Errors
/// Propagates coverage-geometry domain errors.
pub fn data(params: Params) -> Result<Fig1Data> {
    fig1_data(
        params.min_alt_km,
        params.max_alt_km,
        params.max_days,
        params.inclination,
        params.min_elevation_deg,
        params.walker_step_km,
    )
}

/// Renders the dataset as the three series of the figure.
pub fn render(data: &Fig1Data) -> String {
    let mut rows = Vec::new();
    for r in &data.rgts {
        rows.push(vec![
            format!("{:.0}", r.orbit.altitude_km),
            format!("RGT ({})", if r.effectively_uniform { "unif." } else { "non-unif." }),
            format!("{}:{}", r.orbit.revs, r.orbit.days),
            r.sats_required.to_string(),
        ]);
    }
    for w in &data.walker {
        rows.push(vec![
            format!("{:.0}", w.altitude_km),
            "Walker (total)".to_string(),
            "-".to_string(),
            w.sats_required.to_string(),
        ]);
    }
    rows.sort_by(|a, b| {
        a[0].parse::<f64>()
            .unwrap_or(0.0)
            .partial_cmp(&b[0].parse::<f64>().unwrap_or(0.0))
            .expect("finite")
    });
    render::table(&["altitude_km", "series", "revs:days", "satellites"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_reproduce_headline() {
        let d = data(Params::default()).unwrap();
        assert!(d.non_uniform().count() == 3);
        assert!(!d.walker.is_empty());
        let text = render(&d);
        assert!(text.contains("Walker (total)"));
        assert!(text.contains("non-unif."));
        assert!(text.contains("13:1"));
    }
}
