//! Figure 10: median per-satellite daily radiation fluence of the
//! constellations designed in Fig. 9 (a: electrons, b: protons).

use crate::render;
use ssplane_core::designer::{design_ss_constellation, DesignConfig};
use ssplane_core::error::Result;
use ssplane_core::evaluate::{fig10_row, Fig10Row};
use ssplane_core::walker_baseline::{design_walker_constellation, WalkerBaselineConfig};
use ssplane_radiation::RadiationEnvironment;

/// Parameters of the Fig. 10 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Total-demand multipliers B to evaluate.
    pub totals: Vec<f64>,
    /// SS designer configuration.
    pub ss: DesignConfig,
    /// Walker baseline configuration.
    pub wd: WalkerBaselineConfig,
    /// Phases sampled per plane for the fluence median.
    pub phases: usize,
    /// Fluence integration step \[s\].
    pub step_s: f64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            totals: vec![10.0, 100.0, 1000.0],
            ss: DesignConfig::default(),
            wd: WalkerBaselineConfig::default(),
            phases: 2,
            step_s: 60.0,
        }
    }
}

/// Runs the sweep: designs both constellations per B and evaluates the
/// median per-satellite daily fluence.
///
/// # Errors
/// Propagates design or fluence-integration failure.
pub fn data(params: Params) -> Result<Vec<Fig10Row>> {
    let model = super::default_demand_model();
    let grid = super::default_grid(&model);
    let grid_total = grid.total();
    let env = RadiationEnvironment::default();
    let epoch = super::design_epoch();
    params
        .totals
        .iter()
        .map(|&b| {
            let demand = grid.scaled(b / grid_total);
            let ss = design_ss_constellation(&demand, params.ss)?;
            let wd = design_walker_constellation(&demand, params.wd.clone())?;
            fig10_row(b, &ss, &wd, &env, epoch, params.phases, params.step_s)
        })
        .collect()
}

/// Renders both species' series.
pub fn render(d: &[Fig10Row]) -> String {
    let rows: Vec<Vec<String>> = d
        .iter()
        .map(|r| {
            vec![
                render::fnum(r.multiplier),
                render::fnum(r.ss.electron),
                render::fnum(r.wd.electron),
                render::fnum(r.ss.proton),
                render::fnum(r.wd.proton),
                format!("{:.1}%", 100.0 * (1.0 - r.ss.electron / r.wd.electron)),
                format!("{:.1}%", 100.0 * (1.0 - r.ss.proton / r.wd.proton)),
            ]
        })
        .collect();
    render::table(
        &["total_demand_B", "SS_e", "WD_e", "SS_p", "WD_p", "e_saving", "p_saving"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_quick() {
        let d = data(Params {
            totals: vec![50.0],
            phases: 1,
            step_s: 120.0,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(d.len(), 1);
        let r = &d[0];
        assert!(r.ss.electron > 0.0 && r.wd.electron > 0.0);
        // The paper's claim: SS sees less proton radiation than WD, and
        // the electron median is not worse than WD's by any large factor.
        assert!(r.ss.proton < r.wd.proton, "ss {:e} wd {:e}", r.ss.proton, r.wd.proton);
        assert!(render(&d).contains("e_saving"));
    }
}
