//! Figure 10: median per-satellite daily radiation fluence of the
//! constellations designed in Fig. 9 (a: electrons, b: protons).

use crate::render;
use ssplane_core::designer::DesignConfig;
use ssplane_core::evaluate::Fig10Row;
use ssplane_core::walker_baseline::WalkerBaselineConfig;
use ssplane_radiation::fluence::DailyFluence;
use ssplane_scenario::error::Result;
use ssplane_scenario::runner::Runner;
use ssplane_scenario::spec::ScenarioSpec;
use ssplane_scenario::sweep::{SweepAxis, SweepSpec};
use ssplane_scenario::toml::TomlValue;

/// Parameters of the Fig. 10 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Total-demand multipliers B to evaluate.
    pub totals: Vec<f64>,
    /// SS designer configuration.
    pub ss: DesignConfig,
    /// Walker baseline configuration.
    pub wd: WalkerBaselineConfig,
    /// Phases sampled per plane for the fluence median.
    pub phases: usize,
    /// Fluence integration step \[s\].
    pub step_s: f64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            totals: vec![10.0, 100.0, 1000.0],
            ss: DesignConfig::default(),
            wd: WalkerBaselineConfig::default(),
            phases: 2,
            step_s: 60.0,
        }
    }
}

/// Runs the sweep **through the scenario engine**: designs both
/// constellations per B and evaluates the median per-satellite daily
/// fluence (the engine's radiation stage is the Fig. 10 sampling:
/// representative phases per plane/shell, population-weighted median).
///
/// # Errors
/// Propagates design or fluence-integration failure (tagged by the
/// engine).
pub fn data(params: Params) -> Result<Vec<Fig10Row>> {
    let outcome = Runner::default().run_sweep(&sweep_spec(&params))?;
    params
        .totals
        .iter()
        .zip(outcome.reports)
        .map(|(&b, report)| {
            let report = report?;
            let fluence = |name: &str| {
                // A zero-plane design has no fluence stage; the direct
                // pipeline's behavior for that degenerate case is a zero
                // median (weighted_median_fluence of no samples), so
                // mirror it rather than panic.
                report.system(name).and_then(|s| s.fluence.as_ref()).map_or_else(
                    DailyFluence::default,
                    |f| DailyFluence { electron: f.median_electron, proton: f.median_proton },
                )
            };
            Ok(Fig10Row { multiplier: b, ss: fluence("ss"), wd: fluence("wd") })
        })
        .collect()
}

/// The Fig. 10 sweep as a scenario grid: design + radiation stages, one
/// axis over the total-demand level.
pub fn sweep_spec(params: &Params) -> SweepSpec {
    let mut base = ScenarioSpec::named("fig10");
    base.design.kinds = vec!["ss", "wd"];
    base.design.ss = params.ss;
    base.design.wd = params.wd.clone();
    base.radiation.enabled = true;
    base.radiation.phases = params.phases;
    base.radiation.step_s = params.step_s;
    base.survivability.enabled = false;
    SweepSpec {
        base,
        axes: vec![SweepAxis {
            param: "demand.total_demand_b".to_string(),
            values: params.totals.iter().map(|&b| TomlValue::Float(b)).collect(),
        }],
    }
}

/// Renders both species' series.
pub fn render(d: &[Fig10Row]) -> String {
    let rows: Vec<Vec<String>> = d
        .iter()
        .map(|r| {
            vec![
                render::fnum(r.multiplier),
                render::fnum(r.ss.electron),
                render::fnum(r.wd.electron),
                render::fnum(r.ss.proton),
                render::fnum(r.wd.proton),
                format!("{:.1}%", 100.0 * (1.0 - r.ss.electron / r.wd.electron)),
                format!("{:.1}%", 100.0 * (1.0 - r.ss.proton / r.wd.proton)),
            ]
        })
        .collect();
    render::table(
        &["total_demand_B", "SS_e", "WD_e", "SS_p", "WD_p", "e_saving", "p_saving"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_quick() {
        let d = data(Params { totals: vec![50.0], phases: 1, step_s: 120.0, ..Default::default() })
            .unwrap();
        assert_eq!(d.len(), 1);
        let r = &d[0];
        assert!(r.ss.electron > 0.0 && r.wd.electron > 0.0);
        // The paper's claim: SS sees less proton radiation than WD, and
        // the electron median is not worse than WD's by any large factor.
        assert!(r.ss.proton < r.wd.proton, "ss {:e} wd {:e}", r.ss.proton, r.wd.proton);
        assert!(render(&d).contains("e_saving"));
    }

    #[test]
    fn fig10_matches_the_direct_pipeline() {
        // The refactor contract: going through the scenario engine must
        // reproduce the hand-written pipeline bit for bit.
        let params = Params { totals: vec![40.0], phases: 1, step_s: 180.0, ..Default::default() };
        let engine = data(params.clone()).unwrap();

        let model = crate::figures::default_demand_model();
        let grid = crate::figures::default_grid(&model);
        let env = ssplane_radiation::RadiationEnvironment::default();
        let epoch = crate::figures::design_epoch();
        let demand = grid.scaled(40.0 / grid.total());
        let ss = ssplane_core::designer::design_ss_constellation(&demand, params.ss).unwrap();
        let wd =
            ssplane_core::walker_baseline::design_walker_constellation(&demand, params.wd.clone())
                .unwrap();
        let direct = ssplane_core::evaluate::fig10_row(
            40.0,
            &ss,
            &wd,
            &env,
            epoch,
            params.phases,
            params.step_s,
        )
        .unwrap();
        assert_eq!(engine[0].ss, direct.ss);
        assert_eq!(engine[0].wd, direct.wd);
    }
}
