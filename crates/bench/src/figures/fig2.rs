//! Figure 2: example repeat ground track (65°, ~560 km) and the surface
//! region covered by a single satellite following it.

use crate::render;
use ssplane_astro::coverage::{
    coverage_half_angle, sats_per_plane_half_overlap, street_half_width,
};
use ssplane_astro::error::Result;
use ssplane_astro::ground_track::GroundTrack;
use ssplane_astro::propagate::nodal_period_s;
use ssplane_astro::rgt::rgt_orbit;
use ssplane_astro::time::Epoch;

/// Parameters for the Fig. 2 track.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Revolutions per repeat cycle.
    pub revs: u32,
    /// Nodal days per cycle.
    pub days: u32,
    /// Inclination \[rad\].
    pub inclination: f64,
    /// Minimum elevation \[deg\] for the swath.
    pub min_elevation_deg: f64,
    /// Track sampling step \[s\].
    pub step_s: f64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            revs: 15,
            days: 1,
            inclination: super::comparison_inclination(),
            min_elevation_deg: ssplane_astro::coverage::DEFAULT_MIN_ELEVATION_DEG,
            step_s: 30.0,
        }
    }
}

/// The Fig. 2 dataset: the sampled closed track plus swath geometry.
#[derive(Debug, Clone)]
pub struct Fig2Data {
    /// Altitude of the RGT \[km\].
    pub altitude_km: f64,
    /// Sampled sub-satellite points (lat°, lon°).
    pub track_deg: Vec<(f64, f64)>,
    /// Swath half-width \[deg\] of the half-overlap street.
    pub swath_half_deg: f64,
    /// Fraction of the Earth's surface inside the swath.
    pub covered_fraction: f64,
}

/// Computes the Fig. 2 dataset.
///
/// # Errors
/// Propagates RGT-solver or propagation failure.
pub fn data(params: Params) -> Result<Fig2Data> {
    let orbit = rgt_orbit(params.revs, params.days, params.inclination)?;
    let el = orbit.reference_elements();
    // One full repeat cycle = `revs` nodal revolutions.
    let cycle_s = params.revs as f64 * nodal_period_s(&el);
    let track = GroundTrack::sample(Epoch::J2000, &el, cycle_s, params.step_s)?;
    let theta = coverage_half_angle(orbit.altitude_km, params.min_elevation_deg.to_radians())?;
    let swath = street_half_width(theta, sats_per_plane_half_overlap(theta))?;
    let covered_fraction = track.swath_area_fraction(swath, 60, 120);
    Ok(Fig2Data {
        altitude_km: orbit.altitude_km,
        track_deg: track.samples.iter().map(|s| (s.point.lat_deg(), s.point.lon_deg())).collect(),
        swath_half_deg: swath.to_degrees(),
        covered_fraction,
    })
}

/// Renders a down-sampled track plus summary.
pub fn render(d: &Fig2Data) -> String {
    let mut out = format!(
        "# RGT altitude {:.1} km, swath half-width {:.2} deg, surface fraction covered {:.3}\n",
        d.altitude_km, d.swath_half_deg, d.covered_fraction
    );
    let rows: Vec<Vec<String>> = d
        .track_deg
        .iter()
        .step_by(10)
        .map(|&(lat, lon)| vec![render::fnum(lat), render::fnum(lon)])
        .collect();
    out.push_str(&render::csv(&["lat_deg", "lon_deg"], &rows));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn track_properties() {
        let d = data(Params::default()).unwrap();
        assert!((450.0..650.0).contains(&d.altitude_km), "altitude {}", d.altitude_km);
        assert!(d.track_deg.len() > 1000);
        // Latitudes bounded by inclination.
        for &(lat, _) in &d.track_deg {
            assert!(lat.abs() <= 65.5);
        }
        // A single-satellite swath covers a sizable but partial fraction.
        assert!(d.covered_fraction > 0.2 && d.covered_fraction < 0.95, "{}", d.covered_fraction);
        assert!(render(&d).contains("lat_deg"));
    }
}
