//! Figure 3: maximum population density per 0.5° latitude bin.

use crate::render;

/// The Fig. 3 dataset: `(latitude°, max persons/km²)` per bin.
pub type Fig3Data = Vec<(f64, f64)>;

/// Computes the Fig. 3 profile from the default synthetic population.
pub fn data() -> Fig3Data {
    super::default_demand_model().population.max_density_per_latitude()
}

/// Renders as CSV.
pub fn render(d: &Fig3Data) -> String {
    let rows: Vec<Vec<String>> =
        d.iter().map(|&(lat, dens)| vec![render::fnum(lat), render::fnum(dens)]).collect();
    render::csv(&["lat_deg", "max_density_per_km2"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_shape() {
        let d = data();
        assert_eq!(d.len(), 360); // 0.5° bins
        let peak = d.iter().cloned().fold((0.0, 0.0), |a, b| if b.1 > a.1 { b } else { a });
        // Peak ~6000 at intermediate northern latitude.
        assert!((4000.0..6200.0).contains(&peak.1), "peak {}", peak.1);
        assert!((10.0..45.0).contains(&peak.0), "peak lat {}", peak.0);
        // Poles empty.
        assert!(d[0].1 < 1.0 && d[359].1 < 100.0);
        assert!(render(&d).starts_with("lat_deg"));
    }
}
