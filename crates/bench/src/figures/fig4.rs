//! Figure 4: bandwidth demand (% of site median) vs local time of day —
//! median and 95th percentile over synthetic telemetry sites.

use crate::render;
use ssplane_demand::diurnal::{simulate_sites, DiurnalStats, SiteSimConfig};

/// Parameters for the site simulation (defaults mirror the paper's
/// dataset: 283 sites, one year).
pub type Params = SiteSimConfig;

/// Computes the Fig. 4 percentile curves.
pub fn data(params: Params) -> DiurnalStats {
    simulate_sites(&ssplane_demand::DiurnalModel::default(), params)
}

/// Renders as CSV.
pub fn render(d: &DiurnalStats) -> String {
    let rows: Vec<Vec<String>> = d
        .hours
        .iter()
        .zip(d.median_percent.iter().zip(&d.p95_percent))
        .map(|(&h, (&m, &p))| vec![render::fnum(h), render::fnum(m), render::fnum(p)])
        .collect();
    render::csv(&["hour", "median_pct", "p95_pct"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shape_quick() {
        let d = data(Params { n_sites: 40, n_days: 40, bins: 24, seed: 7 });
        assert_eq!(d.hours.len(), 24);
        let peak = d.median_percent.iter().cloned().fold(0.0, f64::max);
        let trough = d.median_percent.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(peak > 150.0 && trough < 80.0, "peak {peak} trough {trough}");
        assert!(render(&d).contains("p95_pct"));
    }
}
