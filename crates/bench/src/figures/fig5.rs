//! Figure 5: the spatiotemporal demand model viewed from above the North
//! Pole with the Sun at the top, at hours 0/6/12/18 UTC.

use crate::render;
use ssplane_demand::error::Result;

/// Parameters of the polar snapshots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Latitude rings from pole to equator.
    pub rings: usize,
    /// Local-time sectors around the clock.
    pub sectors: usize,
    /// UTC hours to snapshot.
    pub hours: [f64; 4],
}

impl Default for Params {
    fn default() -> Self {
        Params { rings: 18, sectors: 48, hours: [0.0, 6.0, 12.0, 18.0] }
    }
}

/// The Fig. 5 dataset: per snapshot hour, a polar demand grid.
pub type Fig5Data = Vec<(f64, Vec<Vec<f64>>)>;

/// Computes the four polar snapshots.
///
/// # Errors
/// Propagates grid-construction failure.
pub fn data(params: Params) -> Result<Fig5Data> {
    let model = super::default_demand_model();
    params
        .hours
        .iter()
        .map(|&h| Ok((h, model.polar_snapshot(h, params.rings, params.sectors)?)))
        .collect()
}

/// Renders as long-form CSV (hour, ring, sector, demand).
pub fn render(d: &Fig5Data) -> String {
    let mut rows = Vec::new();
    for (hour, grid) in d {
        for (ring, sectors) in grid.iter().enumerate() {
            for (sector, &v) in sectors.iter().enumerate() {
                rows.push(vec![
                    render::fnum(*hour),
                    ring.to_string(),
                    sector.to_string(),
                    render::fnum(v),
                ]);
            }
        }
    }
    render::csv(&["utc_hour", "ring", "sector", "demand"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_snapshots_with_structure() {
        let d = data(Params { rings: 6, sectors: 12, hours: [0.0, 6.0, 12.0, 18.0] }).unwrap();
        assert_eq!(d.len(), 4);
        for (_, grid) in &d {
            assert_eq!(grid.len(), 6);
            assert_eq!(grid[0].len(), 12);
        }
        // Total demand in the sun frame is similar across UTC hours
        // (stationarity) within longitude-sampling noise.
        let totals: Vec<f64> = d.iter().map(|(_, g)| g.iter().flatten().sum::<f64>()).collect();
        let max = totals.iter().cloned().fold(0.0, f64::max);
        let min = totals.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max < 25.0 * min.max(1e-9), "totals {totals:?}");
        assert!(render(&d).contains("utc_hour"));
    }
}
