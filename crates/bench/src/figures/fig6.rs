//! Figure 6: maximum electron flux at 560 km over a sample of days from
//! solar cycle 24.

use crate::render;
use ssplane_radiation::error::Result;
use ssplane_radiation::{RadiationEnvironment, Species};

/// Parameters of the flux map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Altitude \[km\].
    pub altitude_km: f64,
    /// Number of sampled days from cycle 24 (the paper uses 128).
    pub n_days: usize,
    /// Latitude rows.
    pub n_lat: usize,
    /// Longitude columns.
    pub n_lon: usize,
    /// Species to map.
    pub species: Species,
    /// Day-sampling seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            altitude_km: 560.0,
            n_days: 128,
            n_lat: 45,
            n_lon: 90,
            species: Species::Electron,
            seed: 6,
        }
    }
}

/// The Fig. 6 dataset.
#[derive(Debug, Clone)]
pub struct Fig6Data {
    /// Map rows (south→north) × columns (west→east) \[#/cm²/s/MeV\].
    pub map: Vec<Vec<f64>>,
    /// Parameters used.
    pub params: Params,
}

impl Fig6Data {
    /// Center latitude of row `i` \[deg\].
    pub fn lat_of(&self, i: usize) -> f64 {
        -90.0 + 180.0 * (i as f64 + 0.5) / self.params.n_lat as f64
    }

    /// Center longitude of column `j` \[deg\].
    pub fn lon_of(&self, j: usize) -> f64 {
        -180.0 + 360.0 * (j as f64 + 0.5) / self.params.n_lon as f64
    }

    /// Location (lat°, lon°) and value of the map maximum.
    pub fn peak(&self) -> (f64, f64, f64) {
        let mut best = (0.0, 0.0, 0.0);
        for (i, row) in self.map.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v > best.2 {
                    best = (self.lat_of(i), self.lon_of(j), v);
                }
            }
        }
        best
    }
}

/// Computes the max-flux map.
///
/// # Errors
/// Propagates flux-evaluation failure.
pub fn data(params: Params) -> Result<Fig6Data> {
    let env = RadiationEnvironment::default();
    let days = env.solar.sample_days(params.n_days, params.seed);
    let map =
        env.max_flux_map(params.species, params.altitude_km, &days, params.n_lat, params.n_lon)?;
    Ok(Fig6Data { map, params })
}

/// Renders as long-form CSV.
pub fn render(d: &Fig6Data) -> String {
    let mut rows = Vec::new();
    for (i, row) in d.map.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            rows.push(vec![render::fnum(d.lat_of(i)), render::fnum(d.lon_of(j)), render::fnum(v)]);
        }
    }
    render::csv(&["lat_deg", "lon_deg", "max_flux"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saa_and_horns_visible() {
        let d = data(Params { n_days: 12, n_lat: 19, n_lon: 36, ..Default::default() }).unwrap();
        // The map's electron peak is either the SAA or a horn; the SAA
        // region must clearly beat the equatorial Pacific.
        let row = 6; // ~ -28°
        let saa = d.map[row][13]; // ~ -45°E
        let pacific = d.map[row][34]; // ~165°E
        assert!(saa > 3.0 * pacific.max(1e-9), "SAA {saa:e} vs Pacific {pacific:e}");
        // Horn row outshines the mid-latitude row at the same longitude.
        let horn = d.map[16][18]; // ~+66°, 5°E
        let mid = d.map[12][18]; // ~+28°
        assert!(horn > mid, "horn {horn:e} vs mid {mid:e}");
        assert!(render(&d).contains("max_flux"));
        let (_, _, peak) = d.peak();
        assert!(peak > 0.0);
    }
}
