//! Figure 7: estimated daily radiation fluence for 560 km orbits as a
//! function of inclination (a: electrons, b: protons).

use crate::render;
use ssplane_radiation::error::Result;
use ssplane_radiation::fluence::{fluence_vs_inclination, DailyFluence};
use ssplane_radiation::RadiationEnvironment;

/// Parameters of the inclination sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Altitude \[km\].
    pub altitude_km: f64,
    /// Inclinations \[deg\].
    pub inclinations_deg: Vec<f64>,
    /// Integration step \[s\].
    pub step_s: f64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            altitude_km: 560.0,
            inclinations_deg: (0..=20).map(|k| 50.0 + 2.5 * k as f64).collect(),
            step_s: 30.0,
        }
    }
}

/// Computes the fluence-vs-inclination sweep.
///
/// # Errors
/// Propagates fluence-integration failure.
pub fn data(params: Params) -> Result<Vec<(f64, DailyFluence)>> {
    fluence_vs_inclination(
        &RadiationEnvironment::default(),
        params.altitude_km,
        &params.inclinations_deg,
        super::design_epoch(),
        params.step_s,
    )
}

/// Renders as CSV with electron and proton columns.
pub fn render(d: &[(f64, DailyFluence)]) -> String {
    let rows: Vec<Vec<String>> = d
        .iter()
        .map(|&(inc, f)| vec![render::fnum(inc), render::fnum(f.electron), render::fnum(f.proton)])
        .collect();
    render::csv(&["inclination_deg", "electron_fluence", "proton_fluence"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_shape_quick() {
        let d = data(Params {
            inclinations_deg: vec![50.0, 65.0, 80.0, 97.64],
            step_s: 120.0,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(d.len(), 4);
        // Electrons peak at moderate inclination; SSO below 65°.
        let e: Vec<f64> = d.iter().map(|(_, f)| f.electron).collect();
        assert!(e[1] > e[0], "65 > 50");
        assert!(e[1] > e[3], "65 > SSO");
        // Protons decrease with inclination over this range.
        let p: Vec<f64> = d.iter().map(|(_, f)| f.proton).collect();
        assert!(p[0] > p[3], "protons 50 > SSO");
        assert!(render(&d).contains("proton_fluence"));
    }
}
