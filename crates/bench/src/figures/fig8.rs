//! Figure 8: the sun-relative demand grid — bandwidth demand as a
//! function of local time of day and latitude, normalized to a unit peak.

use crate::render;
use ssplane_demand::grid::LatTodGrid;

/// Computes the Fig. 8 grid at the paper's resolution.
pub fn data() -> LatTodGrid {
    let model = super::default_demand_model();
    super::default_grid(&model)
}

/// Renders as long-form CSV (percent of peak, as the paper's colorbar).
pub fn render(grid: &LatTodGrid) -> String {
    let mut rows = Vec::new();
    for (i, j, v) in grid.cells() {
        rows.push(vec![
            render::fnum(grid.lat_center_deg(i)),
            render::fnum(grid.tod_center_h(j)),
            render::fnum(100.0 * v),
        ]);
    }
    render::csv(&["lat_deg", "local_time_h", "demand_pct"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_grid_structure() {
        let g = data();
        assert!((g.peak() - 1.0).abs() < 1e-12);
        let (i, j) = g.argmax().unwrap();
        let lat = g.lat_center_deg(i);
        let hour = g.tod_center_h(j);
        assert!((5.0..50.0).contains(&lat), "peak lat {lat}");
        assert!((10.0..22.0).contains(&hour), "peak hour {hour}");
        assert!(render(&g).contains("demand_pct"));
    }
}
