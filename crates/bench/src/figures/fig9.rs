//! Figure 9: satellites required to satisfy the spatiotemporal demand of
//! Fig. 8, as a function of the **total** bandwidth demand (in multiples
//! of one satellite's capacity), for the SS-plane design vs the
//! multi-shell Walker-delta baseline.

use crate::render;
use ssplane_core::designer::DesignConfig;
use ssplane_core::evaluate::Fig9Row;
use ssplane_core::walker_baseline::WalkerBaselineConfig;
use ssplane_scenario::error::Result;
use ssplane_scenario::runner::Runner;
use ssplane_scenario::spec::ScenarioSpec;
use ssplane_scenario::sweep::{SweepAxis, SweepSpec};
use ssplane_scenario::toml::TomlValue;

/// Parameters of the Fig. 9 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Total-demand multipliers B (satellite capacities).
    pub totals: Vec<f64>,
    /// SS designer configuration.
    pub ss: DesignConfig,
    /// Walker baseline configuration.
    pub wd: WalkerBaselineConfig,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            totals: vec![10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0],
            ss: DesignConfig::default(),
            wd: WalkerBaselineConfig::default(),
        }
    }
}

/// One rendered row: the design outcome at a total-demand level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig9Point {
    /// Total bandwidth demand B \[satellite capacities\].
    pub total_demand: f64,
    /// The underlying design row.
    pub row: Fig9Row,
}

/// Runs the sweep **through the scenario engine**: the totals become a
/// `demand.total_demand_b` axis over a design-only [`ScenarioSpec`], and
/// the parallel [`Runner`] executes the grid. The demand grid is
/// normalized so its **total** equals each requested B (Fig. 9's x-axis:
/// "total bandwidth demand measured in multiples of a single satellite's
/// bandwidth capacity").
///
/// # Errors
/// Propagates designer failure (tagged by the engine).
pub fn data(params: Params) -> Result<Vec<Fig9Point>> {
    let outcome = Runner::default().run_sweep(&sweep_spec(&params))?;
    params
        .totals
        .iter()
        .zip(outcome.reports)
        .map(|(&b, report)| {
            let report = report?;
            let ss = report.system("ss").expect("fig9 designs both systems");
            let wd = report.system("wd").expect("fig9 designs both systems");
            Ok(Fig9Point {
                total_demand: b,
                row: Fig9Row {
                    multiplier: report.demand_multiplier,
                    ss_sats: ss.design.sats,
                    ss_planes: ss.design.planes,
                    wd_sats: wd.design.sats,
                    wd_shells: wd.design.shells,
                },
            })
        })
        .collect()
}

/// The Fig. 9 sweep as a scenario grid: design stage only, one axis over
/// the total-demand level.
pub fn sweep_spec(params: &Params) -> SweepSpec {
    let mut base = ScenarioSpec::named("fig9");
    base.design.kinds = vec!["ss", "wd"];
    base.design.ss = params.ss;
    base.design.wd = params.wd.clone();
    base.radiation.enabled = false;
    base.survivability.enabled = false;
    SweepSpec {
        base,
        axes: vec![SweepAxis {
            param: "demand.total_demand_b".to_string(),
            values: params.totals.iter().map(|&b| TomlValue::Float(b)).collect(),
        }],
    }
}

/// Renders the two series.
pub fn render(d: &[Fig9Point]) -> String {
    let rows: Vec<Vec<String>> = d
        .iter()
        .map(|p| {
            vec![
                render::fnum(p.total_demand),
                p.row.ss_sats.to_string(),
                p.row.ss_planes.to_string(),
                p.row.wd_sats.to_string(),
                p.row.wd_shells.to_string(),
                format!("{:.2}", p.row.wd_sats as f64 / p.row.ss_sats.max(1) as f64),
            ]
        })
        .collect();
    render::table(
        &["total_demand_B", "SS_sats", "SS_planes", "WD_sats", "WD_shells", "WD/SS"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_quick_sweep() {
        let d = data(Params { totals: vec![10.0, 500.0], ..Default::default() }).unwrap();
        assert_eq!(d.len(), 2);
        for p in &d {
            assert!(p.row.ss_sats < p.row.wd_sats, "SS must beat WD at B={}", p.total_demand);
        }
        assert!(d[1].row.ss_sats >= d[0].row.ss_sats);
        assert!(render(&d).contains("WD/SS"));
    }

    #[test]
    fn fig9_matches_the_direct_pipeline() {
        // The refactor contract: going through the scenario engine must
        // reproduce the hand-written evaluate sweep exactly.
        let params = Params { totals: vec![10.0, 200.0], ..Default::default() };
        let engine = data(params.clone()).unwrap();

        let model = crate::figures::default_demand_model();
        let grid = crate::figures::default_grid(&model);
        let grid_total = grid.total();
        let multipliers: Vec<f64> = params.totals.iter().map(|b| b / grid_total).collect();
        let direct =
            ssplane_core::evaluate::fig9_sweep(&grid, &multipliers, params.ss, &params.wd).unwrap();
        assert_eq!(engine.len(), direct.len());
        for (e, d) in engine.iter().zip(&direct) {
            assert_eq!(e.row, *d);
        }
    }
}
