//! One module per figure of the paper's evaluation.
//!
//! Shared defaults live here: the synthetic demand model (Fig. 3/4/5/8),
//! the demand grid resolution the designers consume, the radiation
//! environment, and the reference epochs. Every module exposes
//! `data(params)` returning a typed series and `render(&data)` producing
//! the text the `repro` binary prints.

pub mod ablations;
pub mod extensions;
pub mod fig1;
pub mod fig10;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;

use ssplane_astro::time::Epoch;
use ssplane_demand::grid::LatTodGrid;
use ssplane_demand::DemandModel;
use ssplane_radiation::RadiationEnvironment;

/// Inclination of the paper's Walker/RGT comparisons \[rad\] (65°).
pub fn comparison_inclination() -> f64 {
    65f64.to_radians()
}

/// Reference design epoch: mid solar cycle 24 (stable activity).
pub fn design_epoch() -> Epoch {
    Epoch::from_calendar(2013, 6, 1, 0, 0, 0.0)
}

/// The default synthetic demand model (seeded; see ssplane-demand).
///
/// # Panics
/// Never for the default configuration (non-zero grid dimensions).
pub fn default_demand_model() -> DemandModel {
    DemandModel::synthetic_default().expect("default demand configuration is valid")
}

/// The sun-relative demand grid at the paper's Fig. 8 resolution
/// (5° × 1 h).
///
/// # Panics
/// Never for valid models (non-zero dimensions are hardcoded).
pub fn default_grid(model: &DemandModel) -> LatTodGrid {
    LatTodGrid::from_model(model, 36, 24).expect("grid dimensions are non-zero")
}

/// The default radiation environment (offset tilted dipole + cycle 24).
pub fn default_environment() -> RadiationEnvironment {
    RadiationEnvironment::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_construct() {
        let model = default_demand_model();
        let grid = default_grid(&model);
        assert_eq!(grid.lat_bins(), 36);
        assert_eq!(grid.tod_bins(), 24);
        assert!((default_environment().solar.period_days - 4018.0).abs() < 1.0);
        assert!(comparison_inclination() > 1.1);
        assert!(design_epoch().julian_date() > 2_456_000.0);
    }
}
