//! # ssplane-bench
//!
//! Figure-regeneration library for the `ss-plane` paper reproduction.
//!
//! Every figure in the paper's evaluation is backed by one module in
//! [`figures`], returning typed series that the `repro` binary renders,
//! the Criterion benches time, and the workspace integration tests assert
//! shape properties on. EXPERIMENTS.md records paper-vs-measured values.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod figures;
pub mod render;
