//! Plain-text rendering helpers for the `repro` harness: aligned series
//! tables and CSV output.

/// Renders a table: header row plus rows of columns, space-aligned.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    for (i, h) in headers.iter().enumerate() {
        out.push_str(&format!("{:>w$} ", h, w = widths[i]));
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(&format!("{:>w$} ", cell, w = widths.get(i).copied().unwrap_or(8)));
        }
        out.push('\n');
    }
    out
}

/// Renders rows as CSV with a header.
pub fn csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = headers.join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Formats a float compactly (engineering-friendly).
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1e5 || x.abs() < 1e-3 {
        format!("{x:.3e}")
    } else if x.fract().abs() < 1e-9 {
        format!("{x:.0}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = table(&["a", "bbb"], &[vec!["10".into(), "2".into()]]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("bbb"));
        assert!(lines[1].trim_start().starts_with("10"));
    }

    #[test]
    fn csv_format() {
        let c = csv(&["x", "y"], &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]]);
        assert_eq!(c, "x,y\n1,2\n3,4\n");
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(42.0), "42");
        assert!(fnum(1.23456e9).contains('e'));
        assert!(fnum(0.5).starts_with("0.5"));
    }
}
