//! Offline stand-in for the subset of the `criterion` benchmarking API
//! this workspace uses: `Criterion::{default, sample_size,
//! bench_function, benchmark_group}`, `BenchmarkGroup::{bench_with_input,
//! finish}`, `BenchmarkId::from_parameter`, `Bencher::iter`, `black_box`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's full statistical machinery it performs a short
//! warm-up, then times `sample_size` batches and reports the median
//! per-iteration latency on stdout. That is enough to compare hot-path
//! variants in this repository; absolute numbers carry no CI guarantees.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Mirror of `BenchmarkId::from_parameter`.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { text: parameter.to_string() }
    }

    /// Mirror of `BenchmarkId::new`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { text: format!("{}/{}", function_name.into(), parameter) }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last_median: Duration,
}

impl Bencher {
    /// Times `routine`, storing the median per-iteration latency.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch-size calibration: grow the batch until one
        // batch costs ≥ ~1 ms (or a growth cap is hit) so Instant overhead
        // is amortized.
        let mut iters = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        self.iters_per_sample = iters;
        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            per_iter.push(t0.elapsed() / iters as u32);
        }
        per_iter.sort();
        self.last_median = per_iter[per_iter.len() / 2];
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut b =
            Bencher { iters_per_sample: 1, samples: self.sample_size, last_median: Duration::ZERO };
        f(&mut b);
        println!(
            "bench {label:<48} median {:>12.3?}  ({} iters/sample, {} samples)",
            b.last_median,
            b.iters_per_sample,
            b.samples.max(1)
        );
    }

    /// Mirror of `Criterion::bench_function`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, f);
        self
    }

    /// Mirror of `Criterion::benchmark_group`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// A named group of related benchmark cases.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Mirror of `BenchmarkGroup::bench_with_input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.text);
        self.criterion.run_one(&label, |b| f(b, input));
        self
    }

    /// Mirror of `BenchmarkGroup::sample_size`.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Mirror of `BenchmarkGroup::finish` (a no-op here).
    pub fn finish(self) {}
}

/// Mirror of `criterion_group!` (both the simple and the `name = ...;
/// config = ...; targets = ...` forms).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

/// Mirror of `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
