//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses: the `proptest!` macro with `name in strategy` bindings, range and
//! tuple strategies, `collection::vec`, `ProptestConfig::with_cases`, and
//! the `prop_assert*` macros.
//!
//! Unlike the real crate there is **no shrinking**: a failing case panics
//! with the sampled inputs printed, which is enough signal for the
//! property suites in this repository. Case generation is deterministic —
//! the RNG stream is a pure function of the test name and case index — so
//! failures reproduce across runs and machines.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use config::ProptestConfig;

/// Run-configuration (only the case count is honoured).
pub mod config {
    /// Mirror of `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default is 256; 64 keeps the numeric suites fast
            // while still exercising the input space densely.
            ProptestConfig { cases: 64 }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value: std::fmt::Debug;
        /// Samples one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    // Span arithmetic in i128: same-type subtraction
                    // would overflow wide or extreme ranges (e.g.
                    // `-100i8..100`, or i64 ranges spanning > i64::MAX).
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "empty integer range strategy");
                    let offset = (rng.gen::<u64>() as i128).rem_euclid(span);
                    ((self.start as i128) + offset) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                    assert!(span > 0, "empty integer range strategy");
                    let offset = (rng.gen::<u64>() as i128).rem_euclid(span);
                    ((*self.start() as i128) + offset) as $t
                }
            }
        )+};
    }
    int_range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            let u: f64 = rng.gen();
            self.start + (self.end - self.start) * u
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            let u: f64 = rng.gen();
            self.start() + (self.end() - self.start()) * u
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut StdRng) -> f32 {
            let u: f32 = rng.gen();
            self.start + (self.end - self.start) * u
        }
    }

    /// A constant strategy (mirror of `proptest::strategy::Just`).
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone + std::fmt::Debug>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Something usable as the size argument of [`vec()`]: an exact length
    /// or a half-open range of lengths.
    pub trait SizeRange {
        /// Picks a concrete length.
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            let span = self.end - self.start;
            assert!(span > 0, "empty vec-size range");
            self.start + (rng.gen::<u64>() as usize) % span
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// Mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Support code the `proptest!` expansion calls into.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// FNV-1a hash of the test name: the per-test RNG stream root.
    pub fn seed_for(test_name: &str, case: u32) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        StdRng::seed_from_u64(h ^ ((case as u64) << 32))
    }
}

/// The glob-import surface used by the property suites.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Mirror of `proptest::prop_assert!` (panics instead of returning a
/// `TestCaseError`; no shrinking happens here anyway).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Mirror of `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Mirror of `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Mirror of `proptest::proptest!`: expands each `fn name(arg in strategy,
/// ...) { body }` item into a `#[test]` that samples `cases` inputs and
/// runs the body on each, printing the inputs on panic.
#[macro_export]
macro_rules! proptest {
    { #![proptest_config($cfg:expr)] $($rest:tt)* } => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    { $($rest:tt)* } => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`] (one arm per item).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    { ($cfg:expr); } => {};
    {
        ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    } => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng =
                    $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name)), case);
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let input_desc = format!(
                    concat!("case ", "{}", $(concat!("; ", stringify!($arg), " = {:?}")),+),
                    case, $(&$arg),+
                );
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                if let Err(e) = result {
                    eprintln!("proptest failure in {}: {}", stringify!($name), input_desc);
                    ::std::panic::resume_unwind(e);
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn extreme_integer_ranges_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let x = (-100i8..100).sample(&mut rng);
            assert!((-100..100).contains(&x));
            let y = (i64::MIN..i64::MAX).sample(&mut rng);
            assert!(y < i64::MAX);
            let z = (0u64..=u64::MAX).sample(&mut rng);
            let _ = z; // any u64 is in range; the point is no panic
            let w = (-5i64..=5).sample(&mut rng);
            assert!((-5..=5).contains(&w));
        }
    }
}
