//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen::<f64>()` (plus the other primitive `gen` outputs for good
//! measure).
//!
//! The build environment has no crates.io access, so the workspace vendors
//! this minimal implementation. The generator is **not** the upstream
//! ChaCha12 `StdRng` — it is xoshiro256++ seeded through SplitMix64, which
//! has excellent statistical quality for simulation workloads. Everything
//! in this repository that consumes randomness is calibrated against
//! *statistical* properties (hazard rates, noise amplitudes), never
//! against a specific upstream stream, so the substitution is safe; it is
//! still deterministic for a given seed, which is what the reproducibility
//! tests assert.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Concrete generator types.
pub mod rngs {
    /// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        /// Advances the generator one step.
        pub(crate) fn step(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A seedable generator (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion of the 64-bit seed into the 256-bit state,
        // as recommended by the xoshiro authors.
        let mut x = state;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        rngs::StdRng { s }
    }
}

/// Values producible by [`Rng::gen`] (the `Standard` distribution of the
/// real crate, collapsed onto the types this workspace draws).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw(rng: &mut rngs::StdRng) -> Self;
}

impl Standard for f64 {
    fn draw(rng: &mut rngs::StdRng) -> f64 {
        // 53 uniform mantissa bits: [0, 1).
        (rng.step() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw(rng: &mut rngs::StdRng) -> f32 {
        (rng.step() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw(rng: &mut rngs::StdRng) -> u64 {
        rng.step()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut rngs::StdRng) -> u32 {
        (rng.step() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw(rng: &mut rngs::StdRng) -> bool {
        rng.step() & 1 == 1
    }
}

/// The user-facing generator trait.
pub trait Rng {
    /// Draws a value of type `T` (uniform over `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T;

    /// Draws a uniform value in `[low, high)`.
    fn gen_range_f64(&mut self, low: f64, high: f64) -> f64 {
        low + (high - low) * self.gen::<f64>()
    }

    /// Draws a uniform index in `[0, span)` by scaling a single `f64`
    /// draw — the one float-scaled index recipe every seeded sampler in
    /// the workspace shares (victim selection, restart sampling), so a
    /// given seed keeps producing byte-identical index streams wherever
    /// the draw is made. The `min` clamp guards the `gen() == 1.0 - ulp`
    /// edge where scaling could round up to `span`.
    ///
    /// # Panics
    /// If `span == 0` (an empty range has no index to draw).
    fn gen_index(&mut self, span: usize) -> usize {
        assert!(span > 0, "gen_index span must be positive");
        ((self.gen::<f64>() * span as f64) as usize).min(span - 1)
    }
}

impl Rng for rngs::StdRng {
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn gen_index_matches_the_float_scaled_draw() {
        // The helper must be bit-compatible with the historical inline
        // recipe `((gen::<f64>() * span) as usize).min(span - 1)`: seeded
        // index streams (attack victim sets, restart samples) are pinned
        // byte-identical across the refactor.
        let mut a = StdRng::seed_from_u64(17);
        let mut b = StdRng::seed_from_u64(17);
        for span in [1usize, 2, 7, 40, 1000] {
            for _ in 0..50 {
                let expect = ((b.gen::<f64>() * span as f64) as usize).min(span - 1);
                assert_eq!(a.gen_index(span), expect, "span {span}");
            }
        }
        // Every draw lands in range; span 1 is always 0.
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert!(rng.gen_index(13) < 13);
            assert_eq!(rng.gen_index(1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "gen_index span must be positive")]
    fn gen_index_rejects_empty_spans() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_index(0);
    }

    #[test]
    fn f64_in_unit_interval_and_well_spread() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
