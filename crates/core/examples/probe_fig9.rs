//! Quick probe of the Fig. 9 sweep on the realistic synthetic demand grid.

use ssplane_core::designer::DesignConfig;
use ssplane_core::evaluate::fig9_sweep;
use ssplane_core::walker_baseline::WalkerBaselineConfig;
use ssplane_demand::grid::LatTodGrid;
use ssplane_demand::DemandModel;

fn main() {
    let model = DemandModel::synthetic_default().unwrap();
    let grid = LatTodGrid::from_model(&model, 36, 24).unwrap();
    println!("grid peak {} total {:.1}", grid.peak(), grid.total());
    // Fig. 9 caption: B is the TOTAL demand in satellite capacities.
    let multipliers: Vec<f64> =
        [10.0, 30.0, 100.0, 300.0, 1000.0, 3000.0].iter().map(|b| b / grid.total()).collect();
    let rows =
        fig9_sweep(&grid, &multipliers, DesignConfig::default(), &WalkerBaselineConfig::default())
            .unwrap();
    println!(
        "{:>8} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "B", "SS sats", "planes", "WD sats", "shells", "WD/SS"
    );
    for r in rows {
        println!(
            "{:>8.0} {:>9} {:>9} {:>9} {:>9} {:>7.2}",
            r.multiplier * grid.total(),
            r.ss_sats,
            r.ss_planes,
            r.wd_sats,
            r.wd_shells,
            r.wd_sats as f64 / r.ss_sats.max(1) as f64
        );
    }
}
