//! The greedy SS-plane constellation designer (§4.2 of the paper).
//!
//! Given the sun-relative demand grid scaled to a *bandwidth multiplier*
//! (demand in multiples of one satellite's capacity), the algorithm is the
//! paper's:
//!
//! 1. select the (latitude, time-of-day) cell with maximum residual
//!    demand;
//! 2. add an SS-plane whose track intersects that cell, and subtract one
//!    satellite of capacity from every cell covered by the plane's swath
//!    (clamping at zero);
//! 3. repeat until all demand is satisfied.
//!
//! Each plane covers a large range of cells besides the peak (the whole
//! track, which widens dramatically near the turn-around latitudes), which
//! is why the greedy converges quickly even though it is not optimal.
//!
//! One refinement the paper leaves open is *which* of the two planes
//! through the peak cell to take (ascending or descending branch); we pick
//! the one that removes more residual demand, and expose the choice for
//! the ablation benches ([`BranchRule`]).

use crate::error::{CoreError, Result};
use crate::ssplane::{planes_through, SsPlane};
use ssplane_astro::coverage::{
    coverage_half_angle, sats_per_plane_half_overlap, street_half_width,
};
use ssplane_astro::kepler::OrbitalElements;
use ssplane_astro::sunsync::sun_synchronous_orbit;
use ssplane_astro::time::Epoch;
use ssplane_demand::grid::LatTodGrid;

/// How the designer chooses between the ascending- and descending-branch
/// planes through the peak cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BranchRule {
    /// Evaluate both and keep the one that removes more residual demand
    /// (the default).
    #[default]
    BestOfBoth,
    /// Always the ascending branch (ablation).
    AscendingOnly,
    /// Alternate branches (ablation).
    Alternate,
}

/// Designer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignConfig {
    /// Constellation altitude \[km\] (the paper evaluates ~560 km).
    pub altitude_km: f64,
    /// Minimum user elevation angle \[deg\] (drives the coverage cap).
    pub min_elevation_deg: f64,
    /// Capacity of one satellite in demand units (the demand grid is in
    /// multiples of this; the paper sets it to 1).
    pub sat_capacity: f64,
    /// Safety bound on the number of planes.
    pub max_planes: usize,
    /// Branch selection rule.
    pub branch_rule: BranchRule,
    /// Demand below this is considered satisfied (absolute units).
    pub epsilon: f64,
}

impl Default for DesignConfig {
    fn default() -> Self {
        DesignConfig {
            altitude_km: 560.0,
            min_elevation_deg: ssplane_astro::coverage::DEFAULT_MIN_ELEVATION_DEG,
            sat_capacity: 1.0,
            max_planes: 50_000,
            branch_rule: BranchRule::BestOfBoth,
            epsilon: 1e-9,
        }
    }
}

/// A designed SS-plane constellation.
#[derive(Debug, Clone)]
pub struct SsConstellation {
    /// The selected planes (LTANs vary; altitude/inclination shared).
    pub planes: Vec<SsPlane>,
    /// Satellites per plane (street-of-coverage sizing at the design
    /// altitude/elevation).
    pub sats_per_plane: usize,
    /// Swath half-angle \[rad\] used for cell coverage.
    pub swath_half_angle: f64,
    /// The configuration that produced the design.
    pub config: DesignConfig,
    /// Demand (capacity units) that no SS-plane at this altitude can reach
    /// — cells poleward of the orbit's maximum latitude plus swath. Zero
    /// for realistic demand models.
    pub unserved_demand: f64,
}

impl SsConstellation {
    /// Total satellite count.
    pub fn total_sats(&self) -> usize {
        self.planes.len() * self.sats_per_plane
    }

    /// Orbital elements of every satellite at `epoch`.
    ///
    /// # Errors
    /// Propagates element generation failure.
    pub fn satellites(&self, epoch: Epoch) -> Result<Vec<OrbitalElements>> {
        let mut out = Vec::with_capacity(self.total_sats());
        for p in &self.planes {
            out.extend(p.satellites(epoch)?);
        }
        Ok(out)
    }

    /// The common inclination \[rad\] (all SS-planes at one altitude share
    /// it) — the property that keeps Fig. 10's SS radiation curve flat.
    pub fn inclination(&self) -> Option<f64> {
        self.planes.first().map(|p| p.orbit.inclination)
    }
}

/// Residual demand removed by subtracting `capacity` from `cells` of
/// `grid` (without mutating it).
fn removable(grid: &LatTodGrid, cells: &[(usize, usize)], capacity: f64) -> f64 {
    cells.iter().map(|&(i, j)| grid.value(i, j).min(capacity)).sum()
}

/// Subtracts `capacity` from every listed cell, clamping at zero.
fn subtract(grid: &mut LatTodGrid, cells: &[(usize, usize)], capacity: f64) {
    for &(i, j) in cells {
        let v = grid.value_mut(i, j);
        *v = (*v - capacity).max(0.0);
    }
}

/// Runs the paper's greedy SS-plane cover on `demand` (already scaled to
/// the bandwidth multiplier).
///
/// # Errors
/// * [`CoreError::BadConfig`] for out-of-domain configuration;
/// * [`CoreError::PlaneBudgetExhausted`] if `max_planes` is hit;
/// * astrodynamics errors for infeasible geometry.
pub fn design_ss_constellation(
    demand: &LatTodGrid,
    config: DesignConfig,
) -> Result<SsConstellation> {
    if config.sat_capacity <= 0.0 {
        return Err(CoreError::BadConfig { name: "sat_capacity", constraint: "> 0" });
    }
    if config.max_planes == 0 {
        return Err(CoreError::BadConfig { name: "max_planes", constraint: "> 0" });
    }
    let theta = coverage_half_angle(config.altitude_km, config.min_elevation_deg.to_radians())?;
    let sats_per_plane = sats_per_plane_half_overlap(theta);
    let swath = street_half_width(theta, sats_per_plane)?;
    let orbit = sun_synchronous_orbit(config.altitude_km)?;

    let mut residual = demand.clone();
    let mut planes: Vec<SsPlane> = Vec::new();
    let mut flip = false;
    let mut unserved = 0.0f64;

    while let Some((i, j)) = residual.argmax() {
        if residual.value(i, j) <= config.epsilon {
            break;
        }
        if planes.len() >= config.max_planes {
            return Err(CoreError::PlaneBudgetExhausted {
                placed: planes.len(),
                residual_demand: residual.total(),
            });
        }
        let lat = residual.lat_center_deg(i).to_radians();
        let tod = residual.tod_center_h(j);
        // Demand above the orbit's max latitude cannot be served by this
        // inclination; clamp the target to the reachable band (its swath
        // still reaches the cell if within the swath margin).
        let max_lat = orbit.max_latitude() - 1e-6;
        let target_lat = lat.clamp(-max_lat, max_lat);
        let candidates = planes_through(orbit, target_lat, tod, sats_per_plane)
            .expect("target latitude clamped into reachable band");

        let chosen = match config.branch_rule {
            BranchRule::AscendingOnly => candidates[0],
            BranchRule::Alternate => {
                flip = !flip;
                candidates[if flip { 0 } else { 1 }]
            }
            BranchRule::BestOfBoth => {
                let gain0 = removable(
                    &residual,
                    &candidates[0].covered_cells(&residual, swath),
                    config.sat_capacity,
                );
                let gain1 = removable(
                    &residual,
                    &candidates[1].covered_cells(&residual, swath),
                    config.sat_capacity,
                );
                candidates[if gain0 >= gain1 { 0 } else { 1 }]
            }
        };
        let cells = chosen.covered_cells(&residual, swath);
        if !cells.contains(&(i, j)) {
            // The peak cell sits poleward of the constellation's reach
            // (|lat| > max latitude + swath margin): no SS-plane at this
            // altitude can serve it. Mark it unserved and move on rather
            // than looping (only near-pole cells can hit this, and the
            // synthetic demand there is vanishingly small).
            unserved += residual.value(i, j);
            *residual.value_mut(i, j) = 0.0;
            continue;
        }
        subtract(&mut residual, &cells, config.sat_capacity);
        planes.push(chosen);
    }

    Ok(SsConstellation {
        planes,
        sats_per_plane,
        swath_half_angle: swath,
        config,
        unserved_demand: unserved,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point_demand(lat_idx: usize, tod_idx: usize, value: f64) -> LatTodGrid {
        let mut v = vec![0.0; 36 * 24];
        v[lat_idx * 24 + tod_idx] = value;
        LatTodGrid::from_values(36, 24, v).unwrap()
    }

    fn fast_config() -> DesignConfig {
        DesignConfig { max_planes: 5000, ..Default::default() }
    }

    #[test]
    fn empty_demand_needs_no_planes() {
        let g = LatTodGrid::from_values(36, 24, vec![0.0; 36 * 24]).unwrap();
        let c = design_ss_constellation(&g, fast_config()).unwrap();
        assert_eq!(c.planes.len(), 0);
        assert_eq!(c.total_sats(), 0);
        assert!(c.inclination().is_none());
    }

    #[test]
    fn single_cell_demand_takes_ceil_capacity_planes() {
        // Demand of 3.5 satellite-capacities at one cell → 4 planes.
        let g = point_demand(25, 14, 3.5);
        let c = design_ss_constellation(&g, fast_config()).unwrap();
        assert_eq!(c.planes.len(), 4, "got {} planes", c.planes.len());
        // ~50 satellites per plane at 560 km / 30° elevation.
        assert!((40..=60).contains(&c.sats_per_plane), "S = {}", c.sats_per_plane);
    }

    #[test]
    fn demand_is_satisfied_by_construction() {
        // Re-run the subtraction with the returned planes and verify the
        // demand empties.
        let mut v = vec![0.0; 36 * 24];
        for (k, slot) in v.iter_mut().enumerate() {
            *slot = ((k % 7) as f64) * 0.5;
        }
        // Zero out polar rows (unreachable demand is a modelling artifact).
        for i in [0, 1, 34, 35] {
            for j in 0..24 {
                v[i * 24 + j] = 0.0;
            }
        }
        let g = LatTodGrid::from_values(36, 24, v).unwrap();
        let c = design_ss_constellation(&g, fast_config()).unwrap();
        let mut residual = g.clone();
        for p in &c.planes {
            let cells = p.covered_cells(&residual, c.swath_half_angle);
            subtract(&mut residual, &cells, c.config.sat_capacity);
        }
        assert!(residual.is_satisfied(1e-9), "left {}", residual.total());
    }

    #[test]
    fn plane_count_grows_sublinearly_near_origin_then_linearly() {
        // Greedy plane counts for increasing multipliers are monotone
        // non-decreasing.
        let base = point_demand(22, 15, 1.0);
        let mut prev = 0;
        for mult in [1.0, 2.0, 5.0, 10.0] {
            let c = design_ss_constellation(&base.scaled(mult), fast_config()).unwrap();
            assert!(c.planes.len() >= prev);
            assert_eq!(c.planes.len(), mult as usize, "point demand costs mult planes");
            prev = c.planes.len();
        }
    }

    #[test]
    fn shared_track_demand_cheaper_than_spread_demand() {
        // Demand spread along one plane's track costs fewer planes than
        // the same total demand spread across opposing local times.
        let orbit = sun_synchronous_orbit(560.0).unwrap();
        let g_empty = LatTodGrid::from_values(36, 24, vec![0.0; 36 * 24]).unwrap();

        // On-track: sample the LTAN-10h plane's own path.
        let plane = SsPlane { orbit: orbit.with_ltan(10.0), n_sats: 1 };
        let mut on_track = g_empty.clone();
        for p in plane.track_points(48) {
            let (i, j) = on_track.cell_of(p);
            *on_track.value_mut(i, j) = 1.0;
        }
        let cost_on = design_ss_constellation(&on_track, fast_config()).unwrap().planes.len();

        // Spread: same number of unit-demand cells, but scattered at a
        // fixed latitude across all local times (no single plane covers
        // opposite-noon cells at low latitude).
        let n_cells = {
            let mut n = 0;
            for i in 0..36 {
                for j in 0..24 {
                    if on_track.value(i, j) > 0.0 {
                        n += 1;
                    }
                }
            }
            n
        };
        let mut spread = g_empty.clone();
        let mut placed = 0;
        'outer: for j in 0..24 {
            for i in [20usize, 23, 17] {
                if placed == n_cells {
                    break 'outer;
                }
                *spread.value_mut(i, j) = 1.0;
                placed += 1;
            }
        }
        let cost_spread = design_ss_constellation(&spread, fast_config()).unwrap().planes.len();
        assert!(cost_on < cost_spread, "on-track {cost_on} planes vs spread {cost_spread} planes");
    }

    #[test]
    fn branch_rules_all_converge() {
        let g = point_demand(20, 8, 2.0);
        for rule in [BranchRule::BestOfBoth, BranchRule::AscendingOnly, BranchRule::Alternate] {
            let c =
                design_ss_constellation(&g, DesignConfig { branch_rule: rule, ..fast_config() })
                    .unwrap();
            assert_eq!(c.planes.len(), 2, "{rule:?}");
        }
    }

    #[test]
    fn bad_config_rejected() {
        let g = point_demand(20, 8, 1.0);
        assert!(matches!(
            design_ss_constellation(&g, DesignConfig { sat_capacity: 0.0, ..fast_config() }),
            Err(CoreError::BadConfig { .. })
        ));
        assert!(matches!(
            design_ss_constellation(&g, DesignConfig { max_planes: 0, ..fast_config() }),
            Err(CoreError::BadConfig { .. })
        ));
    }

    #[test]
    fn plane_budget_error_reports_residual() {
        let g = point_demand(20, 8, 10.0);
        let err = design_ss_constellation(&g, DesignConfig { max_planes: 3, ..fast_config() })
            .unwrap_err();
        match err {
            CoreError::PlaneBudgetExhausted { placed, residual_demand } => {
                assert_eq!(placed, 3);
                assert!((residual_demand - 7.0).abs() < 1e-9);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn all_planes_share_inclination() {
        let g = point_demand(25, 14, 3.0);
        let c = design_ss_constellation(&g, fast_config()).unwrap();
        let inc = c.inclination().unwrap();
        for p in &c.planes {
            assert!((p.orbit.inclination - inc).abs() < 1e-12);
        }
        // Retrograde sun-synchronous.
        assert!(inc > core::f64::consts::FRAC_PI_2);
    }
}
