//! Error types for constellation design.

use core::fmt;

/// Result alias with [`CoreError`].
pub type Result<T> = core::result::Result<T, CoreError>;

/// Errors produced by the constellation designers and evaluators.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An astrodynamics routine failed.
    Astro(ssplane_astro::AstroError),
    /// A demand-model routine failed.
    Demand(ssplane_demand::DemandError),
    /// A radiation routine failed.
    Radiation(ssplane_radiation::RadiationError),
    /// The design loop hit its plane budget before satisfying demand —
    /// either the budget is too small or the demand is infeasible for the
    /// configured geometry.
    PlaneBudgetExhausted {
        /// Planes placed before giving up.
        placed: usize,
        /// Demand still outstanding (sum over cells).
        residual_demand: f64,
    },
    /// A configuration parameter was out of its domain.
    BadConfig {
        /// Parameter name.
        name: &'static str,
        /// Constraint description.
        constraint: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Astro(e) => write!(f, "astrodynamics error: {e}"),
            CoreError::Demand(e) => write!(f, "demand model error: {e}"),
            CoreError::Radiation(e) => write!(f, "radiation model error: {e}"),
            CoreError::PlaneBudgetExhausted { placed, residual_demand } => write!(
                f,
                "design did not converge: {placed} planes placed, {residual_demand:.2} demand left"
            ),
            CoreError::BadConfig { name, constraint } => {
                write!(f, "bad configuration {name}: must satisfy {constraint}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Astro(e) => Some(e),
            CoreError::Demand(e) => Some(e),
            CoreError::Radiation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ssplane_astro::AstroError> for CoreError {
    fn from(e: ssplane_astro::AstroError) -> Self {
        CoreError::Astro(e)
    }
}

impl From<ssplane_demand::DemandError> for CoreError {
    fn from(e: ssplane_demand::DemandError) -> Self {
        CoreError::Demand(e)
    }
}

impl From<ssplane_radiation::RadiationError> for CoreError {
    fn from(e: ssplane_radiation::RadiationError) -> Self {
        CoreError::Radiation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_conversion() {
        let e: CoreError = ssplane_astro::AstroError::NoSolution { what: "x" }.into();
        assert!(e.to_string().contains("astrodynamics"));
        assert!(e.source().is_some());
        let e = CoreError::PlaneBudgetExhausted { placed: 10, residual_demand: 3.5 };
        assert!(e.to_string().contains("10 planes"));
        assert!(e.source().is_none());
        let e: CoreError = ssplane_demand::DemandError::EmptyGrid { dimension: "lat" }.into();
        assert!(e.to_string().contains("demand"));
        let e: CoreError =
            ssplane_radiation::RadiationError::BelowSurface { radius_km: 1.0 }.into();
        assert!(e.to_string().contains("radiation"));
    }
}
