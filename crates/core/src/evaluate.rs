//! Constellation evaluation: the Fig. 9 satellite-count sweep, empirical
//! demand-satisfaction verification, and the Fig. 10 radiation statistics.

use crate::designer::{design_ss_constellation, DesignConfig, SsConstellation};
use crate::error::Result;
use crate::walker_baseline::{
    design_walker_constellation, latitude_requirements, WalkerBaselineConfig, WalkerConstellation,
};
use ssplane_astro::coverage::coverage_half_angle;
use ssplane_astro::frames::eci_to_sun_relative;
use ssplane_astro::kepler::OrbitalElements;
use ssplane_astro::propagate::J2Propagator;
use ssplane_astro::time::Epoch;
use ssplane_demand::grid::LatTodGrid;
use ssplane_radiation::fluence::{daily_fluence, DailyFluence};
use ssplane_radiation::RadiationEnvironment;

/// One row of the Fig. 9 comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig9Row {
    /// Bandwidth multiplier (total demand in units of one satellite's
    /// capacity at the peak cell).
    pub multiplier: f64,
    /// SS-plane constellation: total satellites.
    pub ss_sats: usize,
    /// SS-plane constellation: number of planes.
    pub ss_planes: usize,
    /// Walker baseline: total satellites.
    pub wd_sats: usize,
    /// Walker baseline: number of shells.
    pub wd_shells: usize,
}

/// Runs the paper's Fig. 9 sweep: designs both constellations for each
/// bandwidth multiplier applied to the normalized demand grid.
///
/// # Errors
/// Propagates designer failure.
pub fn fig9_sweep(
    base_demand: &LatTodGrid,
    multipliers: &[f64],
    ss_config: DesignConfig,
    wd_config: &WalkerBaselineConfig,
) -> Result<Vec<Fig9Row>> {
    multipliers
        .iter()
        .map(|&m| {
            let demand = base_demand.scaled(m);
            let ss = design_ss_constellation(&demand, ss_config)?;
            let wd = design_walker_constellation(&demand, wd_config.clone())?;
            Ok(Fig9Row {
                multiplier: m,
                ss_sats: ss.total_sats(),
                ss_planes: ss.planes.len(),
                wd_sats: wd.total_sats(),
                wd_shells: wd.shells.len(),
            })
        })
        .collect()
}

/// Result of empirically checking a constellation against the demand grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SatisfactionReport {
    /// Demand cells with positive demand that were checked.
    pub cells_checked: usize,
    /// Cells whose worst-case observed supply met their demand.
    pub cells_satisfied: usize,
    /// Largest demand-minus-supply over all cells and sample times
    /// (capacity units; ≤ 0 means fully satisfied).
    pub worst_shortfall: f64,
    /// Demand-weighted mean of supply/demand (≥ 1 means satisfied on
    /// average).
    pub mean_supply_ratio: f64,
}

impl SatisfactionReport {
    /// Fraction of checked cells satisfied.
    pub fn satisfied_fraction(&self) -> f64 {
        if self.cells_checked == 0 {
            1.0
        } else {
            self.cells_satisfied as f64 / self.cells_checked as f64
        }
    }
}

/// Empirically verifies an SS constellation against the sun-relative
/// demand grid by propagating every satellite over `n_time_samples`
/// instants spanning one day and counting satellites within the coverage
/// cap of each demanded cell center.
///
/// # Errors
/// Propagates propagation failure.
pub fn verify_sun_relative_supply(
    satellites: &[OrbitalElements],
    demand: &LatTodGrid,
    epoch: Epoch,
    n_time_samples: usize,
    altitude_km: f64,
    min_elevation_deg: f64,
) -> Result<SatisfactionReport> {
    let theta = coverage_half_angle(altitude_km, min_elevation_deg.to_radians())?;
    let props: Vec<J2Propagator> = satellites
        .iter()
        .map(|el| J2Propagator::new(epoch, *el))
        .collect::<std::result::Result<_, _>>()?;

    // Demanded cells.
    let cells: Vec<(usize, usize, f64)> = demand.cells().filter(|&(_, _, v)| v > 1e-12).collect();
    let mut min_supply = vec![f64::INFINITY; cells.len()];

    for s in 0..n_time_samples.max(1) {
        let t = epoch + 86_400.0 * s as f64 / n_time_samples.max(1) as f64;
        // Sun-relative satellite positions at t.
        let sat_points: Vec<(f64, f64)> = props
            .iter()
            .map(|p| {
                let r = p.position_at(t)?;
                let sr = eci_to_sun_relative(t, r).expect("orbital radius non-zero");
                Ok((sr.lat, sr.local_time_h))
            })
            .collect::<Result<_>>()?;
        for (k, &(i, j, _)) in cells.iter().enumerate() {
            let lat_c = demand.lat_center_deg(i).to_radians();
            let tod_c = demand.tod_center_h(j);
            let mut count = 0.0;
            for &(slat, stod) in &sat_points {
                let dl = slat - lat_c;
                if dl.abs() > theta {
                    continue;
                }
                let mut dh = (stod - tod_c).abs();
                if dh > 12.0 {
                    dh = 24.0 - dh;
                }
                let dt = dh / 24.0 * core::f64::consts::TAU * 0.5 * (slat.cos() + lat_c.cos());
                if dl * dl + dt * dt <= theta * theta {
                    count += 1.0;
                }
            }
            if count < min_supply[k] {
                min_supply[k] = count;
            }
        }
    }

    let mut satisfied = 0usize;
    let mut worst = f64::NEG_INFINITY;
    let mut weighted_ratio = 0.0;
    let mut weight = 0.0;
    for (k, &(_, _, d)) in cells.iter().enumerate() {
        let shortfall = d - min_supply[k];
        if shortfall <= 1e-9 {
            satisfied += 1;
        }
        worst = worst.max(shortfall);
        weighted_ratio += d * (min_supply[k] / d);
        weight += d;
    }
    Ok(SatisfactionReport {
        cells_checked: cells.len(),
        cells_satisfied: satisfied,
        worst_shortfall: if cells.is_empty() { 0.0 } else { worst },
        mean_supply_ratio: if weight == 0.0 { 1.0 } else { weighted_ratio / weight },
    })
}

/// Empirically verifies a Walker constellation against the Earth-fixed
/// requirement (time-max demand per latitude): samples ground points
/// across longitudes and times and reports the worst observed supply per
/// latitude band.
///
/// # Errors
/// Propagates propagation failure.
pub fn verify_earth_fixed_supply(
    satellites: &[OrbitalElements],
    demand: &LatTodGrid,
    epoch: Epoch,
    n_time_samples: usize,
    n_lon_samples: usize,
    altitude_km: f64,
    min_elevation_deg: f64,
) -> Result<SatisfactionReport> {
    let theta = coverage_half_angle(altitude_km, min_elevation_deg.to_radians())?;
    let props: Vec<J2Propagator> = satellites
        .iter()
        .map(|el| J2Propagator::new(epoch, *el))
        .collect::<std::result::Result<_, _>>()?;
    let requirements: Vec<(f64, f64)> =
        latitude_requirements(demand).into_iter().filter(|&(_, d)| d > 1e-12).collect();

    // Average observed supply per band (the analytic designer provisions
    // for the mean multiplicity; instantaneous dips are the spare pool's
    // job — see the lsn crate).
    let mut supply_sum = vec![0.0f64; requirements.len()];
    let mut n_obs = 0usize;
    for s in 0..n_time_samples.max(1) {
        let t = epoch + 86_400.0 * s as f64 / n_time_samples.max(1) as f64;
        let sat_ecef: Vec<ssplane_astro::linalg::Vec3> = props
            .iter()
            .map(|p| Ok(ssplane_astro::frames::eci_to_ecef(t, p.position_at(t)?)))
            .collect::<Result<_>>()?;
        n_obs += 1;
        for (k, &(lat, _)) in requirements.iter().enumerate() {
            let mut band_min = f64::INFINITY;
            for l in 0..n_lon_samples.max(1) {
                let lon = core::f64::consts::TAU * l as f64 / n_lon_samples.max(1) as f64;
                let ground = ssplane_astro::geo::GeoPoint::new(lat, lon).to_unit_vector();
                let mut count = 0.0;
                for r in &sat_ecef {
                    let angle = ground.angle_to(*r);
                    if angle <= theta {
                        count += 1.0;
                    }
                }
                band_min = band_min.min(count);
            }
            supply_sum[k] += band_min;
        }
    }

    let mut satisfied = 0usize;
    let mut worst = f64::NEG_INFINITY;
    let mut weighted_ratio = 0.0;
    let mut weight = 0.0;
    for (k, &(_, d)) in requirements.iter().enumerate() {
        let avg = supply_sum[k] / n_obs as f64;
        let shortfall = d - avg;
        if shortfall <= 1e-9 {
            satisfied += 1;
        }
        worst = worst.max(shortfall);
        weighted_ratio += d * (avg / d);
        weight += d;
    }
    Ok(SatisfactionReport {
        cells_checked: requirements.len(),
        cells_satisfied: satisfied,
        worst_shortfall: if requirements.is_empty() { 0.0 } else { worst },
        mean_supply_ratio: if weight == 0.0 { 1.0 } else { weighted_ratio / weight },
    })
}

/// Weighted per-satellite fluence samples for a constellation, evaluated
/// on representative phases per plane/shell (satellites in one plane share
/// their daily environment to within a few percent, so sampling `phases`
/// per plane with the plane's population as weight reproduces the
/// constellation median at a fraction of the cost).
///
/// # Errors
/// Propagates fluence-integration failure.
pub fn plane_fluence_samples(
    groups: &[(OrbitalElements, usize)],
    env: &RadiationEnvironment,
    epoch: Epoch,
    phases: usize,
    step_s: f64,
) -> Result<Vec<(DailyFluence, usize)>> {
    let phases = phases.max(1);
    let mut out = Vec::with_capacity(groups.len() * phases);
    for &(el, weight) in groups {
        for k in 0..phases {
            let mut sample = el;
            sample.mean_anomaly = ssplane_astro::angles::wrap_two_pi(
                el.mean_anomaly + core::f64::consts::TAU * k as f64 / phases as f64,
            );
            let f = daily_fluence(env, &sample, epoch, step_s)?;
            out.push((f, weight.div_ceil(phases).max(1)));
        }
    }
    Ok(out)
}

/// Weighted median of fluence samples, component-wise.
pub fn weighted_median_fluence(samples: &[(DailyFluence, usize)]) -> DailyFluence {
    if samples.is_empty() {
        return DailyFluence::default();
    }
    let component = |extract: fn(&DailyFluence) -> f64| -> f64 {
        let mut v: Vec<(f64, usize)> = samples.iter().map(|(f, w)| (extract(f), *w)).collect();
        v.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite fluence"));
        let total: usize = v.iter().map(|x| x.1).sum();
        let mut acc = 0usize;
        for (val, w) in &v {
            acc += w;
            if acc * 2 >= total {
                return *val;
            }
        }
        v.last().expect("non-empty").0
    };
    DailyFluence { electron: component(|f| f.electron), proton: component(|f| f.proton) }
}

/// One row of the Fig. 10 comparison: median per-satellite daily fluence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig10Row {
    /// Bandwidth multiplier.
    pub multiplier: f64,
    /// Median fluence across the SS constellation.
    pub ss: DailyFluence,
    /// Median fluence across the Walker baseline.
    pub wd: DailyFluence,
}

/// Computes the Fig. 10 row for a designed pair of constellations.
///
/// # Errors
/// Propagates fluence-integration failure.
pub fn fig10_row(
    multiplier: f64,
    ss: &SsConstellation,
    wd: &WalkerConstellation,
    env: &RadiationEnvironment,
    epoch: Epoch,
    phases: usize,
    step_s: f64,
) -> Result<Fig10Row> {
    let ss_groups: Vec<(OrbitalElements, usize)> = ss
        .planes
        .iter()
        .map(|p| Ok((p.orbit.elements_at(epoch, 0.0)?, p.n_sats)))
        .collect::<Result<_>>()?;
    let wd_groups: Vec<(OrbitalElements, usize)> = wd
        .shells
        .iter()
        .map(|s| Ok((OrbitalElements::circular(s.altitude_km, s.inclination, 0.0, 0.0)?, s.n_sats)))
        .collect::<Result<_>>()?;
    let ss_samples = plane_fluence_samples(&ss_groups, env, epoch, phases, step_s)?;
    let wd_samples = plane_fluence_samples(&wd_groups, env, epoch, phases, step_s)?;
    Ok(Fig10Row {
        multiplier,
        ss: weighted_median_fluence(&ss_samples),
        wd: weighted_median_fluence(&wd_samples),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designer::BranchRule;

    fn small_demand() -> LatTodGrid {
        // A paper-shaped demand pattern: population envelope across
        // latitudes (southern tropics through northern Europe) times a
        // diurnal day/night profile. Latitude spread is what forces the
        // Walker baseline into multiple shells.
        let mut v = vec![0.0; 36 * 24];
        for i in 0..36 {
            let lat = -90.0 + 5.0 * (i as f64 + 0.5);
            let envelope = (-((lat - 25.0) / 18.0f64).powi(2) / 2.0).exp()
                + 0.35 * (-((lat + 10.0) / 12.0f64).powi(2) / 2.0).exp();
            if envelope < 0.02 {
                continue;
            }
            for j in 0..24 {
                let h = j as f64 + 0.5;
                let diurnal =
                    (0.92 * (core::f64::consts::TAU * (h - 15.0) / 24.0).cos()).exp() / 2.5;
                v[i * 24 + j] = envelope * diurnal.min(1.0);
            }
        }
        LatTodGrid::from_values(36, 24, v).unwrap()
    }

    fn ss_cfg() -> DesignConfig {
        DesignConfig { max_planes: 5000, branch_rule: BranchRule::BestOfBoth, ..Default::default() }
    }

    #[test]
    fn fig9_rows_monotone_and_ss_wins_at_low_b() {
        let rows = fig9_sweep(
            &small_demand(),
            &[1.0, 4.0, 16.0],
            ss_cfg(),
            &WalkerBaselineConfig::default(),
        )
        .unwrap();
        assert_eq!(rows.len(), 3);
        for w in rows.windows(2) {
            assert!(w[1].ss_sats >= w[0].ss_sats);
            assert!(w[1].wd_sats >= w[0].wd_sats);
        }
        // Once demand dominates the floors, SS beats WD clearly. (At tiny
        // multipliers on this *compact* demand block the SS floor of ~11
        // planes can exceed a single small Walker shell — the paper's gap
        // appears on realistic demand spanning many latitudes, asserted in
        // the workspace integration tests.)
        let last = rows.last().unwrap();
        assert!(last.ss_sats < last.wd_sats, "ss {} vs wd {}", last.ss_sats, last.wd_sats);
    }

    #[test]
    fn ss_design_verifies_against_demand() {
        let demand = small_demand().scaled(2.0);
        let ss = design_ss_constellation(&demand, ss_cfg()).unwrap();
        let epoch = Epoch::from_calendar(2021, 3, 20, 12, 0, 0.0);
        let sats = ss.satellites(epoch).unwrap();
        let report = verify_sun_relative_supply(
            &sats,
            &demand,
            epoch,
            8,
            ss.config.altitude_km,
            ss.config.min_elevation_deg,
        )
        .unwrap();
        assert!(report.cells_checked > 0);
        // The street-of-coverage design must hold up under propagation:
        // nearly all demanded cells see their required supply.
        assert!(
            report.satisfied_fraction() > 0.9,
            "satisfied {:.3}, worst shortfall {:.2}",
            report.satisfied_fraction(),
            report.worst_shortfall
        );
        assert!(report.mean_supply_ratio > 1.0, "ratio {}", report.mean_supply_ratio);
    }

    #[test]
    fn wd_design_verifies_on_average() {
        let demand = small_demand().scaled(2.0);
        let wd = design_walker_constellation(&demand, Default::default()).unwrap();
        let epoch = Epoch::from_calendar(2021, 3, 20, 12, 0, 0.0);
        let sats = wd.satellites().unwrap();
        let report = verify_earth_fixed_supply(
            &sats,
            &demand,
            epoch,
            6,
            8,
            wd.config.altitude_km,
            wd.config.min_elevation_deg,
        )
        .unwrap();
        assert!(report.cells_checked > 0);
        assert!(
            report.mean_supply_ratio > 0.8,
            "mean supply ratio {:.3}",
            report.mean_supply_ratio
        );
    }

    #[test]
    fn weighted_median_behaviour() {
        let samples = vec![
            (DailyFluence { electron: 1.0, proton: 1.0 }, 1),
            (DailyFluence { electron: 2.0, proton: 2.0 }, 1),
            (DailyFluence { electron: 100.0, proton: 0.5 }, 8),
        ];
        let med = weighted_median_fluence(&samples);
        assert_eq!(med.electron, 100.0); // weight-dominated
        assert_eq!(med.proton, 0.5);
        assert_eq!(weighted_median_fluence(&[]), DailyFluence::default());
    }

    #[test]
    fn fig10_ss_below_wd_for_electrons() {
        let demand = small_demand().scaled(2.0);
        let ss = design_ss_constellation(&demand, ss_cfg()).unwrap();
        let wd = design_walker_constellation(&demand, Default::default()).unwrap();
        let env = RadiationEnvironment::default();
        let epoch = Epoch::from_calendar(2013, 6, 1, 0, 0, 0.0);
        let row = fig10_row(2.0, &ss, &wd, &env, epoch, 1, 120.0).unwrap();
        assert!(row.ss.electron > 0.0 && row.wd.electron > 0.0);
        // The headline claim: SS's retrograde high-inclination planes see
        // less radiation than the population-matched Walker shells.
        assert!(
            row.ss.proton < row.wd.proton,
            "ss p {:e} vs wd p {:e}",
            row.ss.proton,
            row.wd.proton
        );
    }
}
