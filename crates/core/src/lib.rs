//! # ssplane-core
//!
//! The primary contribution of the `ss-plane` paper reproduction:
//! **sun-synchronous-plane constellation design** (§4 of *"Sustainability
//! or Survivability? Eliminating the Need to Choose in LEO Satellite
//! Constellations"*, HotNets 2025).
//!
//! The pipeline:
//!
//! 1. [`ssplane`] — the **SS-plane primitive**: a sun-synchronous orbital
//!    plane is a *fixed curve* on the (latitude, local-time-of-day) demand
//!    grid; a plane with satellites spaced for a continuous street of
//!    coverage contributes one satellite of capacity to every grid cell
//!    its swath touches.
//! 2. [`designer`] — the paper's greedy cover algorithm (§4.2): repeatedly
//!    put an SS-plane through the maximum-demand cell and subtract one
//!    satellite of capacity along its path, until the grid is satisfied.
//! 3. [`walker_baseline`] — the comparison system: multi-shell
//!    Walker-delta constellations whose shell inclinations are chosen from
//!    the population-density profile (the stronger, demand-aware variant
//!    of the uniform baseline).
//! 4. [`rgt_analysis`] — the §2.2 negative result: covering a single
//!    repeat ground track costs *more* satellites than uniform Walker
//!    coverage (Fig. 1) — plus the demand-driven RGT designer that lets
//!    scenarios evaluate the losing option side by side.
//! 5. [`evaluate`] — satellite-count sweeps (Fig. 9), simulation-based
//!    demand-satisfaction verification, and per-satellite radiation
//!    statistics (Fig. 10).
//! 6. [`system`] — the pluggable design/evaluation API: the [`Designer`]
//!    trait and [`DesignedSystem`] output every downstream stage (attack,
//!    fluence, survivability, networking) consumes generically.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod designer;
pub mod error;
pub mod evaluate;
pub mod rgt_analysis;
pub mod ssplane;
pub mod sustainability;
pub mod system;
pub mod walker_baseline;

pub use designer::{design_ss_constellation, DesignConfig, SsConstellation};
pub use error::{CoreError, Result};
pub use rgt_analysis::{design_rgt_constellation, RgtConstellation, RgtDesignConfig};
pub use ssplane::SsPlane;
pub use system::{
    DesignParams, DesignSummary, DesignedSystem, Designer, RgtDesigner, SsDesigner, SystemPlane,
    WalkerDesigner,
};
pub use walker_baseline::{design_walker_constellation, WalkerConstellation};
