//! Repeat-ground-track coverage analysis — the §2.2 negative result
//! (Fig. 1): covering a single RGT continuously costs more satellites than
//! a uniform Walker-delta at the same altitude, and most LEO RGTs provide
//! near-uniform coverage anyway.

use crate::error::Result;
use ssplane_astro::coverage::{
    coverage_half_angle, sats_per_plane_half_overlap, size_walker_delta, street_half_width,
};
use ssplane_astro::rgt::{enumerate_rgt_orbits, RgtOrbit};

/// Coverage cost of one RGT orbit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RgtCoverage {
    /// The orbit analyzed.
    pub orbit: RgtOrbit,
    /// Satellites required for continuous coverage of the track (paper's
    /// half-overlap spacing: in-track spacing of one coverage half-angle).
    pub sats_required: usize,
    /// Whether adjacent passes sit within a swath width — i.e. the RGT
    /// degenerates to near-uniform coverage (Fig. 1's `RGT (unif.)`
    /// series vs `RGT (non-unif.)`).
    pub effectively_uniform: bool,
}

/// One row of the Fig. 1 Walker series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkerCoverage {
    /// Altitude \[km\].
    pub altitude_km: f64,
    /// Total satellites for continuous uniform coverage.
    pub sats_required: usize,
}

/// The full Fig. 1 dataset.
#[derive(Debug, Clone)]
pub struct Fig1Data {
    /// RGT orbits found in the altitude window with their coverage costs.
    pub rgts: Vec<RgtCoverage>,
    /// Walker-delta sizing across the altitude sweep.
    pub walker: Vec<WalkerCoverage>,
}

impl Fig1Data {
    /// The non-uniform RGT rows (the interesting series).
    pub fn non_uniform(&self) -> impl Iterator<Item = &RgtCoverage> {
        self.rgts.iter().filter(|r| !r.effectively_uniform)
    }

    /// The uniform RGT rows.
    pub fn uniform(&self) -> impl Iterator<Item = &RgtCoverage> {
        self.rgts.iter().filter(|r| r.effectively_uniform)
    }
}

/// Analyzes one RGT's coverage cost at the given elevation mask.
///
/// # Errors
/// Propagates coverage-geometry domain errors.
pub fn analyze_rgt(orbit: RgtOrbit, min_elevation_deg: f64) -> Result<RgtCoverage> {
    let theta = coverage_half_angle(orbit.altitude_km, min_elevation_deg.to_radians())?;
    // Paper spacing rule: in-track spacing = θ (adjacent caps 50%
    // overlapped), giving a street of half-width √3/2·θ.
    let sats_required = orbit.sats_to_cover_track(theta);
    let swath_half = street_half_width(theta, sats_per_plane_half_overlap(theta))?;
    Ok(RgtCoverage {
        orbit,
        sats_required,
        effectively_uniform: orbit.is_effectively_uniform(swath_half),
    })
}

/// Generates the complete Fig. 1 dataset: all RGTs with repeat cycles up
/// to `max_days` and altitudes in `[min_alt, max_alt]` km, plus the
/// Walker-delta curve sampled every `walker_step_km`.
///
/// # Errors
/// Propagates coverage-geometry domain errors.
pub fn fig1_data(
    min_alt_km: f64,
    max_alt_km: f64,
    max_days: u32,
    inclination: f64,
    min_elevation_deg: f64,
    walker_step_km: f64,
) -> Result<Fig1Data> {
    let mut rgts = Vec::new();
    for orbit in enumerate_rgt_orbits(min_alt_km, max_alt_km, max_days, inclination) {
        rgts.push(analyze_rgt(orbit, min_elevation_deg)?);
    }
    let mut walker = Vec::new();
    let mut alt = min_alt_km;
    while alt <= max_alt_km + 1e-9 {
        let theta = coverage_half_angle(alt, min_elevation_deg.to_radians())?;
        let sizing = size_walker_delta(theta, inclination)?;
        walker.push(WalkerCoverage { altitude_km: alt, sats_required: sizing.total() });
        alt += walker_step_km;
    }
    Ok(Fig1Data { rgts, walker })
}

#[cfg(test)]
mod tests {
    use super::*;

    const INC65: f64 = 65.0 * core::f64::consts::PI / 180.0;

    fn data() -> Fig1Data {
        fig1_data(500.0, 2000.0, 4, INC65, 30.0, 250.0).unwrap()
    }

    #[test]
    fn paper_anchor_13_to_1_rgt() {
        // Fig. 1's headline: the ~1215 km daily RGT needs ≥356 satellites
        // vs ≥200 for Walker. Our J2-aware RGT altitude sits near 1170 km;
        // accept the window and check the counts land in the paper's
        // regime.
        let d = data();
        let rgt13 = d
            .rgts
            .iter()
            .find(|r| r.orbit.revs == 13 && r.orbit.days == 1)
            .expect("13:1 RGT in range");
        assert!(
            (280..=430).contains(&rgt13.sats_required),
            "13:1 needs {} sats",
            rgt13.sats_required
        );
        assert!(!rgt13.effectively_uniform, "13:1 must be in the non-uniform series");

        let walker_at = d
            .walker
            .iter()
            .min_by(|a, b| {
                (a.altitude_km - rgt13.orbit.altitude_km)
                    .abs()
                    .partial_cmp(&(b.altitude_km - rgt13.orbit.altitude_km).abs())
                    .unwrap()
            })
            .unwrap();
        assert!(
            (140..=280).contains(&walker_at.sats_required),
            "walker needs {}",
            walker_at.sats_required
        );
        // The paper's point: RGT coverage strictly worse than Walker.
        assert!(rgt13.sats_required as f64 > 1.3 * walker_at.sats_required as f64);
    }

    #[test]
    fn exactly_three_non_uniform_daily_rgts() {
        // "only three of the possible RGTs at LEO do not automatically
        // provide uniform global coverage" — the daily 13:1, 14:1, 15:1.
        let d = data();
        let non_uniform: Vec<_> = d.non_uniform().collect();
        assert_eq!(non_uniform.len(), 3, "{non_uniform:?}");
        let mut revs: Vec<u32> = non_uniform.iter().map(|r| r.orbit.revs).collect();
        revs.sort_unstable();
        assert_eq!(revs, vec![13, 14, 15]);
        for r in &non_uniform {
            assert_eq!(r.orbit.days, 1);
        }
    }

    #[test]
    fn rgt_always_costs_more_than_walker_at_same_altitude() {
        // The paper's Fig. 1 takeaway, across every RGT in the window.
        let d = data();
        for r in &d.rgts {
            let w = d
                .walker
                .iter()
                .min_by(|a, b| {
                    (a.altitude_km - r.orbit.altitude_km)
                        .abs()
                        .partial_cmp(&(b.altitude_km - r.orbit.altitude_km).abs())
                        .unwrap()
                })
                .unwrap();
            assert!(
                r.sats_required > w.sats_required,
                "{}:{} at {:.0} km: RGT {} <= Walker {}",
                r.orbit.revs,
                r.orbit.days,
                r.orbit.altitude_km,
                r.sats_required,
                w.sats_required
            );
        }
    }

    #[test]
    fn multi_day_rgts_are_uniform() {
        let d = data();
        for r in &d.rgts {
            if r.orbit.days >= 2 {
                assert!(
                    r.effectively_uniform,
                    "{}:{} at {:.0} km should be uniform",
                    r.orbit.revs, r.orbit.days, r.orbit.altitude_km
                );
            }
        }
    }

    #[test]
    fn walker_curve_monotone_decreasing() {
        let d = data();
        for w in d.walker.windows(2) {
            assert!(w[0].sats_required >= w[1].sats_required, "walker not decreasing: {:?}", w);
        }
    }

    #[test]
    fn sats_required_decrease_with_altitude_within_series() {
        // Within the daily (m=1) series, higher k (lower altitude) needs
        // more satellites.
        let d = data();
        let mut daily: Vec<_> = d.rgts.iter().filter(|r| r.orbit.days == 1).collect();
        daily.sort_by(|a, b| a.orbit.altitude_km.partial_cmp(&b.orbit.altitude_km).unwrap());
        for pair in daily.windows(2) {
            assert!(pair[0].sats_required > pair[1].sats_required);
        }
    }
}
