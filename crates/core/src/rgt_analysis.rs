//! Repeat-ground-track coverage analysis — the §2.2 negative result
//! (Fig. 1): covering a single RGT continuously costs more satellites than
//! a uniform Walker-delta at the same altitude, and most LEO RGTs provide
//! near-uniform coverage anyway.
//!
//! Besides the Fig. 1 dataset, this module hosts the **demand-driven RGT
//! designer** ([`design_rgt_constellation`]): the same negative result
//! expressed as a [`crate::system::Designer`]-compatible design point, so
//! scenario sweeps can put the RGT option side by side with the SS-plane
//! and Walker systems and watch it lose.

use crate::error::{CoreError, Result};
use crate::walker_baseline::latitude_requirements;
use ssplane_astro::angles::wrap_two_pi;
use ssplane_astro::coverage::{
    coverage_half_angle, sats_per_plane_half_overlap, size_walker_delta, street_half_width,
};
use ssplane_astro::kepler::OrbitalElements;
use ssplane_astro::rgt::{enumerate_rgt_orbits, rgt_orbit, RgtOrbit};
use ssplane_demand::grid::LatTodGrid;
use std::f64::consts::TAU;

/// Coverage cost of one RGT orbit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RgtCoverage {
    /// The orbit analyzed.
    pub orbit: RgtOrbit,
    /// Satellites required for continuous coverage of the track (paper's
    /// half-overlap spacing: in-track spacing of one coverage half-angle).
    pub sats_required: usize,
    /// Whether adjacent passes sit within a swath width — i.e. the RGT
    /// degenerates to near-uniform coverage (Fig. 1's `RGT (unif.)`
    /// series vs `RGT (non-unif.)`).
    pub effectively_uniform: bool,
}

/// One row of the Fig. 1 Walker series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkerCoverage {
    /// Altitude \[km\].
    pub altitude_km: f64,
    /// Total satellites for continuous uniform coverage.
    pub sats_required: usize,
}

/// The full Fig. 1 dataset.
#[derive(Debug, Clone)]
pub struct Fig1Data {
    /// RGT orbits found in the altitude window with their coverage costs.
    pub rgts: Vec<RgtCoverage>,
    /// Walker-delta sizing across the altitude sweep.
    pub walker: Vec<WalkerCoverage>,
}

impl Fig1Data {
    /// The non-uniform RGT rows (the interesting series).
    pub fn non_uniform(&self) -> impl Iterator<Item = &RgtCoverage> {
        self.rgts.iter().filter(|r| !r.effectively_uniform)
    }

    /// The uniform RGT rows.
    pub fn uniform(&self) -> impl Iterator<Item = &RgtCoverage> {
        self.rgts.iter().filter(|r| r.effectively_uniform)
    }
}

/// Analyzes one RGT's coverage cost at the given elevation mask.
///
/// # Errors
/// Propagates coverage-geometry domain errors.
pub fn analyze_rgt(orbit: RgtOrbit, min_elevation_deg: f64) -> Result<RgtCoverage> {
    let theta = coverage_half_angle(orbit.altitude_km, min_elevation_deg.to_radians())?;
    // Paper spacing rule: in-track spacing = θ (adjacent caps 50%
    // overlapped), giving a street of half-width √3/2·θ.
    let sats_required = orbit.sats_to_cover_track(theta);
    let swath_half = street_half_width(theta, sats_per_plane_half_overlap(theta))?;
    Ok(RgtCoverage {
        orbit,
        sats_required,
        effectively_uniform: orbit.is_effectively_uniform(swath_half),
    })
}

/// Generates the complete Fig. 1 dataset: all RGTs with repeat cycles up
/// to `max_days` and altitudes in `[min_alt, max_alt]` km, plus the
/// Walker-delta curve sampled every `walker_step_km`.
///
/// # Errors
/// Propagates coverage-geometry domain errors.
pub fn fig1_data(
    min_alt_km: f64,
    max_alt_km: f64,
    max_days: u32,
    inclination: f64,
    min_elevation_deg: f64,
    walker_step_km: f64,
) -> Result<Fig1Data> {
    let mut rgts = Vec::new();
    for orbit in enumerate_rgt_orbits(min_alt_km, max_alt_km, max_days, inclination) {
        rgts.push(analyze_rgt(orbit, min_elevation_deg)?);
    }
    let mut walker = Vec::new();
    let mut alt = min_alt_km;
    while alt <= max_alt_km + 1e-9 {
        let theta = coverage_half_angle(alt, min_elevation_deg.to_radians())?;
        let sizing = size_walker_delta(theta, inclination)?;
        walker.push(WalkerCoverage { altitude_km: alt, sats_required: sizing.total() });
        alt += walker_step_km;
    }
    Ok(Fig1Data { rgts, walker })
}

/// Configuration of the demand-driven RGT designer.
#[derive(Debug, Clone, PartialEq)]
pub struct RgtDesignConfig {
    /// Revolutions per repeat cycle `k` (the default 15:1 is the paper's
    /// ~560 km daily repeat, the closest RGT to the SS design altitude).
    pub revs: u32,
    /// Nodal days per repeat cycle `m`.
    pub days: u32,
    /// Orbit inclination \[deg\] (the paper's comparisons use 65°).
    pub inclination_deg: f64,
    /// Minimum user elevation \[deg\].
    pub min_elevation_deg: f64,
    /// Capacity of one satellite in demand units.
    pub sat_capacity: f64,
}

impl Default for RgtDesignConfig {
    fn default() -> Self {
        RgtDesignConfig {
            revs: 15,
            days: 1,
            inclination_deg: 65.0,
            min_elevation_deg: ssplane_astro::coverage::DEFAULT_MIN_ELEVATION_DEG,
            sat_capacity: 1.0,
        }
    }
}

/// A designed repeat-ground-track constellation: satellites strung along
/// one repeating track at the spacing needed for continuous coverage,
/// replicated to the demand's worst-case multiplicity.
#[derive(Debug, Clone)]
pub struct RgtConstellation {
    /// The underlying repeat-ground-track orbit.
    pub orbit: RgtOrbit,
    /// Track-arc groups the satellites are organized into (one per
    /// revolution of the repeat cycle) — the "plane" unit the attack and
    /// spare-provisioning stages act on.
    pub planes: usize,
    /// Satellites per arc group.
    pub sats_per_plane: usize,
    /// Coverage multiplicity the demand required (peak simultaneous
    /// satellites per track point).
    pub multiplicity: usize,
    /// Demand (capacity units) beyond the track's latitude reach.
    pub unserved_demand: f64,
    /// The configuration that produced the design.
    pub config: RgtDesignConfig,
}

impl RgtConstellation {
    /// Total satellite count.
    pub fn total_sats(&self) -> usize {
        self.planes * self.sats_per_plane
    }

    /// Orbital elements of every satellite, grouped by track arc.
    ///
    /// Satellites are placed at equal time offsets `τ_j = j·P/N` along the
    /// repeat cycle of period `P` (`N` total satellites). A satellite
    /// trailing the reference ground track by `τ` must sit at
    /// `RAAN = (ω⊕ − Ω̇)·τ` and mean anomaly `−n_eff·τ`; with the repeat
    /// condition `n_eff·P = 2πk`, `(ω⊕ − Ω̇)·P = 2πm` these reduce to the
    /// closed form `RAAN_j = 2π·m·j/N`, `M_j = −2π·k·j/N`. Group `p` is
    /// the contiguous arc `j ∈ [p·N/planes, (p+1)·N/planes)` — for a
    /// track-following constellation the natural analogue of an orbital
    /// plane (and what a plane-loss attack removes: a stretch of track).
    ///
    /// # Errors
    /// Propagates element validation failure.
    pub fn satellites(&self) -> Result<Vec<Vec<OrbitalElements>>> {
        let n = self.total_sats();
        let mut out = Vec::with_capacity(self.planes);
        for p in 0..self.planes {
            let mut arc = Vec::with_capacity(self.sats_per_plane);
            for s in 0..self.sats_per_plane {
                let f = (p * self.sats_per_plane + s) as f64 / n as f64;
                let raan = wrap_two_pi(TAU * self.orbit.days as f64 * f);
                let u = wrap_two_pi(-TAU * self.orbit.revs as f64 * f);
                arc.push(
                    OrbitalElements::circular(
                        self.orbit.altitude_km,
                        self.orbit.inclination,
                        raan,
                        u,
                    )
                    .map_err(CoreError::from)?,
                );
            }
            out.push(arc);
        }
        Ok(out)
    }
}

/// Designs the RGT constellation for `demand` (scaled to the bandwidth
/// multiplier): continuous coverage of the `revs:days` repeat track at the
/// worst-case multiplicity the demand requires, mirroring the Walker
/// baseline's worst-case supply accounting. Demand poleward of the track's
/// reach (`|lat| > i_eff + swath`) is reported unserved, as in the
/// SS designer.
///
/// # Errors
/// * [`CoreError::BadConfig`] for non-positive capacity;
/// * astrodynamics errors for infeasible `revs:days` requests or geometry.
pub fn design_rgt_constellation(
    demand: &LatTodGrid,
    config: RgtDesignConfig,
) -> Result<RgtConstellation> {
    if config.sat_capacity <= 0.0 {
        return Err(CoreError::BadConfig { name: "sat_capacity", constraint: "> 0" });
    }
    let inclination = config.inclination_deg.to_radians();
    let orbit = rgt_orbit(config.revs, config.days, inclination).map_err(CoreError::from)?;
    let theta = coverage_half_angle(orbit.altitude_km, config.min_elevation_deg.to_radians())?;
    let swath = street_half_width(theta, sats_per_plane_half_overlap(theta))?;

    // Worst-case multiplicity over the latitudes the track reaches; demand
    // beyond reach is unserved (summed over the full grid rows, matching
    // the SS designer's unserved accounting).
    let i_eff = inclination.min(core::f64::consts::PI - inclination);
    let reach = i_eff + swath;
    let mut multiplicity = 0.0f64;
    let mut unserved = 0.0f64;
    for (i, (lat, peak)) in latitude_requirements(demand).into_iter().enumerate() {
        if lat.abs() <= reach {
            multiplicity = multiplicity.max(peak / config.sat_capacity);
        } else {
            unserved += (0..demand.tod_bins()).map(|j| demand.value(i, j)).sum::<f64>();
        }
    }

    let (planes, sats_per_plane, multiplicity) = if multiplicity <= 1e-9 {
        (0, 0, 0)
    } else {
        let m = multiplicity.ceil() as usize;
        let base = orbit.sats_to_cover_track(theta);
        let planes = config.revs.max(1) as usize;
        (planes, (m * base).div_ceil(planes), m)
    };
    Ok(RgtConstellation {
        orbit,
        planes,
        sats_per_plane,
        multiplicity,
        unserved_demand: unserved,
        config,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const INC65: f64 = 65.0 * core::f64::consts::PI / 180.0;

    fn data() -> Fig1Data {
        fig1_data(500.0, 2000.0, 4, INC65, 30.0, 250.0).unwrap()
    }

    #[test]
    fn paper_anchor_13_to_1_rgt() {
        // Fig. 1's headline: the ~1215 km daily RGT needs ≥356 satellites
        // vs ≥200 for Walker. Our J2-aware RGT altitude sits near 1170 km;
        // accept the window and check the counts land in the paper's
        // regime.
        let d = data();
        let rgt13 = d
            .rgts
            .iter()
            .find(|r| r.orbit.revs == 13 && r.orbit.days == 1)
            .expect("13:1 RGT in range");
        assert!(
            (280..=430).contains(&rgt13.sats_required),
            "13:1 needs {} sats",
            rgt13.sats_required
        );
        assert!(!rgt13.effectively_uniform, "13:1 must be in the non-uniform series");

        let walker_at = d
            .walker
            .iter()
            .min_by(|a, b| {
                (a.altitude_km - rgt13.orbit.altitude_km)
                    .abs()
                    .partial_cmp(&(b.altitude_km - rgt13.orbit.altitude_km).abs())
                    .unwrap()
            })
            .unwrap();
        assert!(
            (140..=280).contains(&walker_at.sats_required),
            "walker needs {}",
            walker_at.sats_required
        );
        // The paper's point: RGT coverage strictly worse than Walker.
        assert!(rgt13.sats_required as f64 > 1.3 * walker_at.sats_required as f64);
    }

    #[test]
    fn exactly_three_non_uniform_daily_rgts() {
        // "only three of the possible RGTs at LEO do not automatically
        // provide uniform global coverage" — the daily 13:1, 14:1, 15:1.
        let d = data();
        let non_uniform: Vec<_> = d.non_uniform().collect();
        assert_eq!(non_uniform.len(), 3, "{non_uniform:?}");
        let mut revs: Vec<u32> = non_uniform.iter().map(|r| r.orbit.revs).collect();
        revs.sort_unstable();
        assert_eq!(revs, vec![13, 14, 15]);
        for r in &non_uniform {
            assert_eq!(r.orbit.days, 1);
        }
    }

    #[test]
    fn rgt_always_costs_more_than_walker_at_same_altitude() {
        // The paper's Fig. 1 takeaway, across every RGT in the window.
        let d = data();
        for r in &d.rgts {
            let w = d
                .walker
                .iter()
                .min_by(|a, b| {
                    (a.altitude_km - r.orbit.altitude_km)
                        .abs()
                        .partial_cmp(&(b.altitude_km - r.orbit.altitude_km).abs())
                        .unwrap()
                })
                .unwrap();
            assert!(
                r.sats_required > w.sats_required,
                "{}:{} at {:.0} km: RGT {} <= Walker {}",
                r.orbit.revs,
                r.orbit.days,
                r.orbit.altitude_km,
                r.sats_required,
                w.sats_required
            );
        }
    }

    #[test]
    fn multi_day_rgts_are_uniform() {
        let d = data();
        for r in &d.rgts {
            if r.orbit.days >= 2 {
                assert!(
                    r.effectively_uniform,
                    "{}:{} at {:.0} km should be uniform",
                    r.orbit.revs, r.orbit.days, r.orbit.altitude_km
                );
            }
        }
    }

    #[test]
    fn walker_curve_monotone_decreasing() {
        let d = data();
        for w in d.walker.windows(2) {
            assert!(w[0].sats_required >= w[1].sats_required, "walker not decreasing: {:?}", w);
        }
    }

    #[test]
    fn sats_required_decrease_with_altitude_within_series() {
        // Within the daily (m=1) series, higher k (lower altitude) needs
        // more satellites.
        let d = data();
        let mut daily: Vec<_> = d.rgts.iter().filter(|r| r.orbit.days == 1).collect();
        daily.sort_by(|a, b| a.orbit.altitude_km.partial_cmp(&b.orbit.altitude_km).unwrap());
        for pair in daily.windows(2) {
            assert!(pair[0].sats_required > pair[1].sats_required);
        }
    }

    fn band_demand(rows: &[(usize, f64)]) -> LatTodGrid {
        let mut v = vec![0.0; 36 * 24];
        for &(i, val) in rows {
            for j in 0..24 {
                v[i * 24 + j] = val;
            }
        }
        LatTodGrid::from_values(36, 24, v).unwrap()
    }

    #[test]
    fn rgt_design_scales_with_demand_multiplicity() {
        let one = design_rgt_constellation(&band_demand(&[(23, 1.0)]), Default::default()).unwrap();
        let three =
            design_rgt_constellation(&band_demand(&[(23, 3.0)]), Default::default()).unwrap();
        assert!(one.total_sats() > 0);
        assert_eq!(one.multiplicity, 1);
        assert_eq!(three.multiplicity, 3);
        assert!(three.total_sats() >= 3 * one.total_sats() - 3 * one.planes);
        // The §2.2 negative result holds for the designed system too: the
        // track-coverage floor dwarfs a Walker shell's.
        assert!(one.total_sats() > 300, "floor = {}", one.total_sats());
    }

    #[test]
    fn rgt_design_empty_and_unreachable_demand() {
        let empty = design_rgt_constellation(&band_demand(&[]), Default::default()).unwrap();
        assert_eq!(empty.total_sats(), 0);
        assert_eq!(empty.planes, 0);
        assert!(empty.satellites().unwrap().is_empty());
        // Demand at ±87.5° only: beyond a 65° track's reach.
        let polar =
            design_rgt_constellation(&band_demand(&[(35, 2.0)]), Default::default()).unwrap();
        assert_eq!(polar.total_sats(), 0);
        assert!(polar.unserved_demand > 0.0);
    }

    #[test]
    fn rgt_satellites_follow_the_repeat_track_structure() {
        let c = design_rgt_constellation(&band_demand(&[(23, 1.0)]), Default::default()).unwrap();
        let arcs = c.satellites().unwrap();
        assert_eq!(arcs.len(), c.planes);
        let n = c.total_sats();
        assert_eq!(arcs.iter().map(Vec::len).sum::<usize>(), n);
        // The closed-form placement: satellite j at RAAN 2π·m·j/N and
        // argument −2π·k·j/N, all on the solved altitude/inclination.
        for (j, el) in arcs.iter().flatten().enumerate() {
            assert!((el.altitude_km() - c.orbit.altitude_km).abs() < 1e-9);
            assert!((el.inclination - c.orbit.inclination).abs() < 1e-12);
            let expect_raan = wrap_two_pi(TAU * c.orbit.days as f64 * j as f64 / n as f64);
            assert!(
                ssplane_astro::angles::separation(el.raan, expect_raan) < 1e-9,
                "sat {j}: raan {} vs {expect_raan}",
                el.raan
            );
        }
    }

    #[test]
    fn rgt_design_bad_config_rejected() {
        let g = band_demand(&[(23, 1.0)]);
        assert!(design_rgt_constellation(
            &g,
            RgtDesignConfig { sat_capacity: 0.0, ..Default::default() }
        )
        .is_err());
        assert!(design_rgt_constellation(&g, RgtDesignConfig { revs: 0, ..Default::default() })
            .is_err());
    }
}
