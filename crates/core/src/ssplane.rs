//! The SS-plane primitive (§4.1): a sun-synchronous orbital plane as a
//! fixed path on the (latitude, local-time-of-day) demand grid.

use crate::error::Result;
use ssplane_astro::frames::SunRelativePoint;
use ssplane_astro::kepler::OrbitalElements;
use ssplane_astro::sunsync::SunSyncOrbit;
use ssplane_astro::time::Epoch;
use ssplane_demand::grid::LatTodGrid;

/// A sun-synchronous plane populated with equally spaced satellites.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SsPlane {
    /// The plane's orbit (altitude, inclination, LTAN).
    pub orbit: SunSyncOrbit,
    /// Number of satellites in the plane.
    pub n_sats: usize,
}

impl SsPlane {
    /// Samples the plane's fixed sun-relative track at `n` points of
    /// argument of latitude.
    pub fn track_points(&self, n: usize) -> Vec<SunRelativePoint> {
        (0..n)
            .map(|k| self.orbit.sun_relative_point(core::f64::consts::TAU * k as f64 / n as f64))
            .collect()
    }

    /// The set of grid cells supplied by the plane: cells whose *area*
    /// intersects the swath of half-width `swath_half_angle` \[rad\]
    /// around the plane's track.
    ///
    /// A cell counts as covered when its center lies within
    /// `swath + half-cell-diagonal` of the track — the paper's grid model
    /// subtracts a satellite of capacity from every "point covered by the
    /// plane's path", i.e. any cell the swath touches. Distance on the
    /// grid uses the local metric `Δσ² ≈ Δlat² + (cos(lat)·Δlon)²` with
    /// `Δlon = Δtod·15°`, exact to second order for the swath widths of
    /// interest (≲ 0.2 rad).
    pub fn covered_cells(&self, grid: &LatTodGrid, swath_half_angle: f64) -> Vec<(usize, usize)> {
        let lat_bins = grid.lat_bins();
        let tod_bins = grid.tod_bins();
        let dlat = core::f64::consts::PI / lat_bins as f64;
        let dtod_rad = core::f64::consts::TAU / tod_bins as f64; // hour bin as angle

        // Sample the track densely relative to both the cell size and the
        // swath radius.
        let n_samples = (4.0 * core::f64::consts::TAU / swath_half_angle.min(dlat).max(1e-3))
            .ceil()
            .clamp(256.0, 8192.0) as usize;
        let mut covered = vec![false; lat_bins * tod_bins];

        for s in 0..n_samples {
            let u = core::f64::consts::TAU * s as f64 / n_samples as f64;
            let p = self.orbit.sun_relative_point(u);
            let cos_lat = p.lat.cos().max(0.05);

            // Swath dilated by the half-diagonal of a cell at this
            // latitude (cell-area intersection test via its center).
            let half_diag = ((dlat / 2.0).powi(2) + (dtod_rad * cos_lat / 2.0).powi(2)).sqrt();
            let reach = swath_half_angle + half_diag;

            // Neighborhood of cells possibly within reach.
            let lat_reach = (reach / dlat).ceil() as isize + 1;
            let tod_reach = (reach / (cos_lat * dtod_rad)).ceil() as isize + 1;
            let (ci, cj) = grid.cell_of(p);
            for di in -lat_reach..=lat_reach {
                let i = ci as isize + di;
                if i < 0 || i >= lat_bins as isize {
                    continue;
                }
                let i = i as usize;
                let lat_c = grid.lat_center_deg(i).to_radians();
                let dl = lat_c - p.lat;
                for dj in -tod_reach..=tod_reach {
                    let j = (cj as isize + dj).rem_euclid(tod_bins as isize) as usize;
                    if covered[i * tod_bins + j] {
                        continue;
                    }
                    // Hour difference with wrap, as an angle.
                    let mut dh = (grid.tod_center_h(j) - p.local_time_h).abs();
                    if dh > 12.0 {
                        dh = 24.0 - dh;
                    }
                    let dt = dh / 24.0 * core::f64::consts::TAU * 0.5 * (lat_c.cos() + p.lat.cos());
                    if dl * dl + dt * dt <= reach * reach {
                        covered[i * tod_bins + j] = true;
                    }
                }
            }
        }
        let mut out = Vec::new();
        for i in 0..lat_bins {
            for j in 0..tod_bins {
                if covered[i * tod_bins + j] {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// Orbital elements of the plane's satellites at `epoch`.
    ///
    /// # Errors
    /// Propagates element validation failure; errors if the plane has zero
    /// satellites.
    pub fn satellites(&self, epoch: Epoch) -> Result<Vec<OrbitalElements>> {
        Ok(self.orbit.plane_elements(epoch, self.n_sats)?)
    }
}

/// The two SS-planes (ascending-branch and descending-branch) whose tracks
/// pass through the sun-relative point `(lat, tod_h)`, for the orbit
/// template `orbit` (altitude/inclination fixed, LTAN solved).
///
/// Returns `None` if `|lat|` exceeds the orbit's maximum latitude (no
/// plane at this inclination reaches the point).
pub fn planes_through(
    orbit: SunSyncOrbit,
    lat: f64,
    tod_h: f64,
    n_sats: usize,
) -> Option<[SsPlane; 2]> {
    let max_lat = orbit.max_latitude();
    if lat.abs() > max_lat {
        return None;
    }
    // lat = asin(sin i · sin u)  ⇒  sin u = sin lat / sin i.
    let sin_u = (lat.sin() / orbit.inclination.sin()).clamp(-1.0, 1.0);
    let u_asc = sin_u.asin(); // ascending branch (u near 0 or 2π)
    let u_desc = core::f64::consts::PI - u_asc; // descending branch

    let plane_for = |u: f64| {
        // The track's local time at u for LTAN=0, then shift the LTAN so
        // the track passes through tod_h at this u.
        let base = orbit.with_ltan(0.0).sun_relative_point(u);
        let ltan = ssplane_astro::angles::wrap_hours(tod_h - base.local_time_h);
        SsPlane { orbit: orbit.with_ltan(ltan), n_sats }
    };
    Some([plane_for(u_asc), plane_for(u_desc)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssplane_astro::sunsync::sun_synchronous_orbit;
    use ssplane_demand::grid::LatTodGrid;

    fn orbit() -> SunSyncOrbit {
        sun_synchronous_orbit(560.0).unwrap()
    }

    fn uniform_grid() -> LatTodGrid {
        LatTodGrid::from_values(36, 24, vec![1.0; 36 * 24]).unwrap()
    }

    #[test]
    fn track_points_shape() {
        let plane = SsPlane { orbit: orbit().with_ltan(13.5), n_sats: 20 };
        let pts = plane.track_points(64);
        assert_eq!(pts.len(), 64);
        // Track reaches ±max latitude.
        let max = pts.iter().map(|p| p.lat.abs()).fold(0.0, f64::max);
        assert!((max - plane.orbit.max_latitude()).abs() < 0.01);
        // Equator crossings at LTAN and LTAN+12.
        assert!((pts[0].local_time_h - 13.5).abs() < 1e-9);
    }

    #[test]
    fn covered_cells_contains_both_branches() {
        let grid = uniform_grid();
        let plane = SsPlane { orbit: orbit().with_ltan(10.0), n_sats: 20 };
        let cells = plane.covered_cells(&grid, 0.12);
        assert!(!cells.is_empty());
        // The ascending equator cell (lat 0, tod 10) and descending (tod 22)
        // must both be covered.
        let eq_row = 18; // lat ≈ +2.5° row center for 36 bins... row 18 = +2.5
        let asc_col = 10; // tod 10.5h
        let desc_col = 22; // tod 22.5h
        assert!(
            cells
                .iter()
                .any(|&(i, j)| (i as i32 - eq_row).abs() <= 1 && (j as i32 - asc_col).abs() <= 1),
            "ascending node not covered"
        );
        assert!(
            cells
                .iter()
                .any(|&(i, j)| (i as i32 - eq_row).abs() <= 1 && (j as i32 - desc_col).abs() <= 1),
            "descending node not covered"
        );
    }

    #[test]
    fn covered_cells_grow_with_swath() {
        let grid = uniform_grid();
        let plane = SsPlane { orbit: orbit().with_ltan(6.0), n_sats: 20 };
        let narrow = plane.covered_cells(&grid, 0.05).len();
        let wide = plane.covered_cells(&grid, 0.2).len();
        assert!(wide > narrow, "wide {wide} vs narrow {narrow}");
        // All cells valid.
        for (i, j) in plane.covered_cells(&grid, 0.2) {
            assert!(i < grid.lat_bins() && j < grid.tod_bins());
        }
    }

    #[test]
    fn high_latitude_cells_covered_wide_in_tod() {
        // Near the turn-around latitude the plane sweeps a wide range of
        // local times: many tod columns covered at the top rows.
        let grid = uniform_grid();
        let plane = SsPlane { orbit: orbit().with_ltan(12.0), n_sats: 20 };
        let cells = plane.covered_cells(&grid, 0.12);
        let max_lat_row =
            ((90.0 + plane.orbit.max_latitude().to_degrees()) / 5.0).floor() as usize - 1;
        let cols_at_top: usize = cells.iter().filter(|&&(i, _)| i == max_lat_row).count();
        let cols_at_equator: usize = cells.iter().filter(|&&(i, _)| i == 18).count();
        assert!(
            cols_at_top > 2 * cols_at_equator,
            "top row cols {cols_at_top} vs equator {cols_at_equator}"
        );
    }

    #[test]
    fn planes_through_hits_target_cell() {
        // Target cell *centers*, as the greedy designer does: the plane
        // then passes exactly through the center and the cell is covered
        // for any positive swath.
        let grid = uniform_grid();
        for (i, j) in [(25usize, 14usize), (14, 9), (18, 3), (30, 20)] {
            let lat = grid.lat_center_deg(i).to_radians();
            let tod = grid.tod_center_h(j);
            let planes = planes_through(orbit(), lat, tod, 10).unwrap();
            for plane in planes {
                let cells = plane.covered_cells(&grid, 0.1);
                assert!(
                    cells.contains(&(i, j)),
                    "plane ltan {:.2} misses cell ({i}, {j})",
                    plane.orbit.ltan_h
                );
            }
        }
    }

    #[test]
    fn planes_through_rejects_polar_targets() {
        assert!(planes_through(orbit(), 89f64.to_radians(), 12.0, 10).is_none());
        assert!(planes_through(orbit(), -89f64.to_radians(), 12.0, 10).is_none());
        // Max latitude itself is fine.
        let max = orbit().max_latitude() - 1e-6;
        assert!(planes_through(orbit(), max, 12.0, 10).is_some());
    }

    #[test]
    fn ascending_descending_branches_differ() {
        let [a, d] = planes_through(orbit(), 0.5, 10.0, 10).unwrap();
        // Same point covered, different LTANs (unless the point is at the
        // turnaround).
        assert!((a.orbit.ltan_h - d.orbit.ltan_h).abs() > 0.1);
    }

    #[test]
    fn satellites_generated() {
        let plane = SsPlane { orbit: orbit().with_ltan(9.0), n_sats: 12 };
        let sats = plane.satellites(Epoch::J2000).unwrap();
        assert_eq!(sats.len(), 12);
        for el in sats {
            assert!((el.inclination - plane.orbit.inclination).abs() < 1e-12);
        }
    }
}
