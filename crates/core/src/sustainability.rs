//! Sustainability accounting — the paper's title claim, quantified.
//!
//! The paper motivates SS-plane design with the environmental cost of
//! megaconstellations: continuous launch cadence, de-orbit disposal
//! burning satellites into the upper atmosphere (its refs. [8, 10]), and
//! the survivability tax of spare satellites. This module turns a
//! constellation design plus its radiation environment into those costs,
//! so the SS-vs-Walker comparison can be made in fleet mass and annual
//! launches rather than raw satellite counts.
//!
//! The model is deliberately first-order and fully parameterized: every
//! constant is a field with a documented default, and the comparisons the
//! tests assert are ratio claims that hold across wide parameter ranges.

use crate::error::Result;
use ssplane_radiation::fluence::DailyFluence;

/// Per-satellite and launch-vehicle cost parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SustainabilityParams {
    /// Satellite wet mass \[kg\] (Starlink v2-mini-class default).
    pub satellite_mass_kg: f64,
    /// Extra launch cost factor for retrograde (sun-synchronous) orbits:
    /// launching against the Earth's spin costs payload capacity. The
    /// paper concedes "higher launch costs"; ~10% capacity penalty at
    /// 97.6° vs 53° is representative.
    pub retrograde_mass_penalty: f64,
    /// Satellite design life \[years\] absent radiation failures.
    pub design_life_years: f64,
    /// Payload capacity of one launch \[kg\] to the design altitude.
    pub launch_capacity_kg: f64,
    /// Fraction of satellite mass that survives re-entry ablation into
    /// long-lived upper-atmosphere aerosol (alumina), per its ref. \[10\].
    pub ablation_aerosol_fraction: f64,
    /// Baseline annual failure hazard per satellite (non-radiation).
    pub baseline_hazard_per_year: f64,
    /// Hazard per unit electron daily fluence \[1/yr per #/cm²/MeV/day\].
    pub electron_hazard_coeff: f64,
    /// Hazard per unit proton daily fluence.
    pub proton_hazard_coeff: f64,
    /// Spare satellites carried per plane per expected in-period failure
    /// (sizing looseness; deployed systems carry 2-10 per plane).
    pub spare_margin: f64,
    /// Resupply cadence \[days\].
    pub resupply_days: f64,
}

impl Default for SustainabilityParams {
    fn default() -> Self {
        SustainabilityParams {
            satellite_mass_kg: 800.0,
            retrograde_mass_penalty: 0.10,
            design_life_years: 5.0,
            launch_capacity_kg: 16_000.0,
            ablation_aerosol_fraction: 0.3,
            baseline_hazard_per_year: 0.01,
            electron_hazard_coeff: 1.2e-12,
            proton_hazard_coeff: 1.0e-9,
            spare_margin: 2.0,
            resupply_days: 180.0,
        }
    }
}

/// The sustainability ledger of one constellation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SustainabilityReport {
    /// Active satellites.
    pub active_sats: usize,
    /// Spare satellites carried in orbit.
    pub spare_sats: usize,
    /// Total fleet mass \[kg\], including the retrograde penalty as
    /// equivalent mass.
    pub fleet_mass_kg: f64,
    /// Satellites replaced per year (end-of-life + radiation failures).
    pub replacement_rate_per_year: f64,
    /// Launches per year to sustain the fleet.
    pub launches_per_year: f64,
    /// Upper-atmosphere aerosol deposited per year by re-entry \[kg\].
    pub reentry_aerosol_kg_per_year: f64,
}

/// Computes the ledger for a constellation of `active_sats` satellites in
/// `planes` planes with representative daily dose `dose`, retrograde or
/// not.
///
/// # Errors
/// Rejects non-positive parameters.
pub fn assess(
    active_sats: usize,
    planes: usize,
    dose: DailyFluence,
    retrograde: bool,
    params: SustainabilityParams,
) -> Result<SustainabilityReport> {
    if params.satellite_mass_kg <= 0.0
        || params.launch_capacity_kg <= 0.0
        || params.design_life_years <= 0.0
    {
        return Err(crate::error::CoreError::BadConfig {
            name: "SustainabilityParams",
            constraint: "positive masses, capacity, and design life",
        });
    }
    let hazard = params.baseline_hazard_per_year
        + params.electron_hazard_coeff * dose.electron
        + params.proton_hazard_coeff * dose.proton;
    // Replacement: radiation/random failures plus scheduled end-of-life.
    let replacement_rate = active_sats as f64 * (hazard + 1.0 / params.design_life_years);
    // Spares: margin x expected failures per plane per resupply period,
    // at least 1 per plane, summed over planes.
    let per_plane_failures = if planes == 0 {
        0.0
    } else {
        active_sats as f64 / planes as f64 * hazard * params.resupply_days / 365.25
    };
    let spares_per_plane = (params.spare_margin * per_plane_failures).ceil().max(1.0);
    let spare_sats = (spares_per_plane * planes as f64) as usize;

    let mass_factor = if retrograde { 1.0 + params.retrograde_mass_penalty } else { 1.0 };
    let per_sat_mass = params.satellite_mass_kg * mass_factor;
    let fleet_mass = (active_sats + spare_sats) as f64 * per_sat_mass;
    let launches = replacement_rate * per_sat_mass / params.launch_capacity_kg;
    let aerosol = replacement_rate * params.satellite_mass_kg * params.ablation_aerosol_fraction;

    Ok(SustainabilityReport {
        active_sats,
        spare_sats,
        fleet_mass_kg: fleet_mass,
        replacement_rate_per_year: replacement_rate,
        launches_per_year: launches,
        reentry_aerosol_kg_per_year: aerosol,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dose(e: f64, p: f64) -> DailyFluence {
        DailyFluence { electron: e, proton: p }
    }

    #[test]
    fn basic_ledger() {
        let r = assess(1000, 20, dose(2e10, 2e7), true, Default::default()).unwrap();
        assert_eq!(r.active_sats, 1000);
        assert!(r.spare_sats >= 20, "at least one spare per plane");
        assert!(r.fleet_mass_kg > 800.0 * 1000.0);
        assert!(r.replacement_rate_per_year > 1000.0 / 5.0 - 1e-9);
        assert!(r.launches_per_year > 0.0);
        assert!(r.reentry_aerosol_kg_per_year > 0.0);
    }

    #[test]
    fn paper_headline_ss_cheaper_despite_retrograde_penalty() {
        // SS: fewer satellites (Fig. 9) and less radiation (Fig. 10), but
        // retrograde launch penalty. WD: more satellites, more radiation.
        // Representative mid-demand numbers from the fig9/fig10 pipelines.
        let ss = assess(4150, 83, dose(2.04e10, 2.13e7), true, Default::default()).unwrap();
        let wd = assess(11_939, 140, dose(2.54e10, 2.77e7), false, Default::default()).unwrap();
        assert!(
            ss.fleet_mass_kg < 0.5 * wd.fleet_mass_kg,
            "SS fleet {:.0} t vs WD {:.0} t",
            ss.fleet_mass_kg / 1000.0,
            wd.fleet_mass_kg / 1000.0
        );
        assert!(ss.launches_per_year < wd.launches_per_year);
        assert!(ss.reentry_aerosol_kg_per_year < 0.5 * wd.reentry_aerosol_kg_per_year);
    }

    #[test]
    fn radiation_dose_raises_spares_and_launches() {
        let cool = assess(1000, 20, dose(1e10, 1e7), false, Default::default()).unwrap();
        let hot = assess(1000, 20, dose(8e10, 9e7), false, Default::default()).unwrap();
        assert!(hot.spare_sats >= cool.spare_sats);
        assert!(hot.replacement_rate_per_year > cool.replacement_rate_per_year);
        assert!(hot.launches_per_year > cool.launches_per_year);
    }

    #[test]
    fn retrograde_penalty_applies() {
        let pro = assess(100, 5, dose(1e10, 1e7), false, Default::default()).unwrap();
        let retro = assess(100, 5, dose(1e10, 1e7), true, Default::default()).unwrap();
        assert!(retro.fleet_mass_kg > pro.fleet_mass_kg);
        assert!((retro.fleet_mass_kg / pro.fleet_mass_kg - 1.1).abs() < 0.02);
    }

    #[test]
    fn invalid_params_rejected() {
        let p = SustainabilityParams { satellite_mass_kg: 0.0, ..Default::default() };
        assert!(assess(10, 2, dose(1e10, 1e7), false, p).is_err());
        let p = SustainabilityParams { design_life_years: -1.0, ..Default::default() };
        assert!(assess(10, 2, dose(1e10, 1e7), false, p).is_err());
    }

    #[test]
    fn zero_planes_safe() {
        let r = assess(0, 0, dose(1e10, 1e7), false, Default::default()).unwrap();
        assert_eq!(r.spare_sats, 0);
        assert_eq!(r.fleet_mass_kg, 0.0);
    }
}
