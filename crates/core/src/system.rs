//! The pluggable design/evaluation API: every constellation family the
//! pipeline can evaluate is a [`Designer`] producing a [`DesignedSystem`].
//!
//! The paper's argument is a head-to-head comparison of constellation
//! *designs*; the scenario engine therefore runs one generic per-system
//! pipeline (design → attack → fluence → survivability → network) over
//! whatever set of designers a scenario selects. A `DesignedSystem`
//! carries exactly what those downstream stages need:
//!
//! * a **design summary** (the satellite/plane/shell counts a report
//!   prints),
//! * the **fluence-evaluation groups** — `(representative elements,
//!   satellites)` per group, the Fig. 10 sampling unit (one per SS plane,
//!   one per Walker shell, one per RGT track),
//! * the **plane structure** — the unit plane-loss attacks and per-plane
//!   spare budgets act on, each plane tagged with the evaluation group
//!   its radiation dose comes from,
//! * the **satellite geometry** per plane, so the networking stage can
//!   build ISL topologies for any system, not just the SS design.
//!
//! Three designers ship: [`SsDesigner`] (§4.2 greedy cover),
//! [`WalkerDesigner`] (the demand-aware multi-shell baseline), and
//! [`RgtDesigner`] (the §2.2 negative result as a design point).

use crate::designer::{design_ss_constellation, DesignConfig};
use crate::error::Result;
use crate::rgt_analysis::{design_rgt_constellation, RgtDesignConfig};
use crate::walker_baseline::{design_walker_constellation, WalkerBaselineConfig};
use ssplane_astro::kepler::OrbitalElements;
use ssplane_astro::time::Epoch;
use ssplane_demand::grid::LatTodGrid;

/// Inputs shared by every designer besides the demand grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignParams {
    /// The epoch satellite geometry and evaluation elements are generated
    /// at (the scenario's radiation epoch, so fluence evaluation and
    /// networking see one consistent sky).
    pub epoch: Epoch,
}

/// One orbital plane (or plane-like group) of a designed system.
#[derive(Debug, Clone)]
pub struct SystemPlane {
    /// Satellites in the plane.
    pub n_sats: usize,
    /// Index into [`DesignedSystem::eval_groups`] this plane's radiation
    /// dose comes from (its own group for SS planes; the owning shell for
    /// Walker; the single track group for RGT).
    pub eval_idx: usize,
    /// Orbital elements of the plane's satellites at the design epoch.
    pub satellites: Vec<OrbitalElements>,
}

/// The design-stage outcome a report prints, computed by the designer so
/// each family controls its own accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignSummary {
    /// Total satellites.
    pub sats: usize,
    /// Orbital planes (for Walker: summed across shells).
    pub planes: usize,
    /// Evaluation shells (SS: one per plane; Walker: stacked shells; RGT:
    /// one track).
    pub shells: usize,
    /// Satellites per plane (family-specific: SS street-of-coverage
    /// sizing, Walker constellation mean, RGT arc size).
    pub sats_per_plane: usize,
    /// Representative inclination \[deg\] (SS: the common inclination;
    /// Walker: satellite-weighted mean; RGT: the track inclination).
    pub inclination_deg: f64,
    /// Demand the design could not serve (capacity units).
    pub unserved_demand: f64,
}

/// Everything downstream stages need from one designed system.
#[derive(Debug, Clone)]
pub struct DesignedSystem {
    /// The design summary.
    pub summary: DesignSummary,
    /// `(representative elements, satellites)` per fluence-evaluation
    /// group — the exact Fig. 10 grouping, for numerical parity with the
    /// figure pipeline.
    pub eval_groups: Vec<(OrbitalElements, usize)>,
    /// The real orbital planes, in design order (the order attacks and
    /// spare budgets index).
    pub planes: Vec<SystemPlane>,
    /// Permutation of `planes` for ISL-topology construction (SS planes
    /// sort by LTAN so the +grid links neighbouring local times; Walker
    /// and RGT use design order).
    pub network_order: Vec<usize>,
}

impl DesignedSystem {
    /// Per-plane satellite elements in network (topology) order.
    pub fn network_planes(&self) -> Vec<Vec<OrbitalElements>> {
        self.network_order.iter().map(|&i| self.planes[i].satellites.clone()).collect()
    }

    /// Total satellites across planes.
    pub fn total_sats(&self) -> usize {
        self.planes.iter().map(|p| p.n_sats).sum()
    }
}

/// A constellation design family, pluggable into the generic scenario
/// pipeline.
pub trait Designer {
    /// The family's registry name — also the report key its results are
    /// published under (`"ss"`, `"wd"`, `"rgt"`).
    fn name(&self) -> &'static str;

    /// Designs the system for `demand` (already scaled to the bandwidth
    /// multiplier).
    ///
    /// # Errors
    /// Family-specific design failure (bad configuration, infeasible
    /// geometry, plane-budget exhaustion).
    fn design(&self, demand: &LatTodGrid, params: &DesignParams) -> Result<DesignedSystem>;
}

/// The SS-plane greedy designer (§4.2) as a [`Designer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsDesigner {
    /// The underlying designer configuration.
    pub config: DesignConfig,
}

impl Designer for SsDesigner {
    fn name(&self) -> &'static str {
        "ss"
    }

    fn design(&self, demand: &LatTodGrid, params: &DesignParams) -> Result<DesignedSystem> {
        let ss = design_ss_constellation(demand, self.config)?;
        let eval_groups: Vec<(OrbitalElements, usize)> = ss
            .planes
            .iter()
            .map(|p| Ok((p.orbit.elements_at(params.epoch, 0.0)?, p.n_sats)))
            .collect::<Result<_>>()?;
        let planes: Vec<SystemPlane> = ss
            .planes
            .iter()
            .enumerate()
            .map(|(i, p)| {
                Ok(SystemPlane {
                    n_sats: p.n_sats,
                    eval_idx: i,
                    satellites: p.satellites(params.epoch)?,
                })
            })
            .collect::<Result<_>>()?;
        // The network stage orders SS planes by LTAN (stable sort, as the
        // pre-`Designer` pipeline did) so the +grid topology links planes
        // adjacent in local time.
        let mut network_order: Vec<usize> = (0..ss.planes.len()).collect();
        network_order.sort_by(|&a, &b| {
            ss.planes[a].orbit.ltan_h.partial_cmp(&ss.planes[b].orbit.ltan_h).expect("finite LTAN")
        });
        Ok(DesignedSystem {
            summary: DesignSummary {
                sats: ss.total_sats(),
                planes: ss.planes.len(),
                shells: ss.planes.len(),
                sats_per_plane: ss.sats_per_plane,
                inclination_deg: ss.inclination().map_or(0.0, f64::to_degrees),
                unserved_demand: ss.unserved_demand,
            },
            eval_groups,
            planes,
            network_order,
        })
    }
}

/// The demand-aware multi-shell Walker baseline as a [`Designer`].
#[derive(Debug, Clone, PartialEq)]
pub struct WalkerDesigner {
    /// The underlying designer configuration.
    pub config: WalkerBaselineConfig,
}

impl Designer for WalkerDesigner {
    fn name(&self) -> &'static str {
        "wd"
    }

    fn design(&self, demand: &LatTodGrid, _params: &DesignParams) -> Result<DesignedSystem> {
        let wd = design_walker_constellation(demand, self.config.clone())?;
        let mut eval_groups = Vec::with_capacity(wd.shells.len());
        let mut planes: Vec<SystemPlane> = Vec::new();
        for (s, shell) in wd.shells.iter().enumerate() {
            let elements =
                OrbitalElements::circular(shell.altitude_km, shell.inclination, 0.0, 0.0)?;
            eval_groups.push((elements, shell.n_sats));
            // The shell's real Walker pattern, one plane per group — the
            // same geometry `WalkerConstellation::satellites` flattens.
            for arc in shell.plane_satellites()? {
                planes.push(SystemPlane { n_sats: arc.len(), eval_idx: s, satellites: arc });
            }
        }
        let total_sats = wd.total_sats();
        let total_planes = planes.len();
        let inclination_deg = if total_sats == 0 {
            0.0
        } else {
            wd.shells.iter().map(|s| s.inclination.to_degrees() * s.n_sats as f64).sum::<f64>()
                / total_sats as f64
        };
        let network_order: Vec<usize> = (0..total_planes).collect();
        Ok(DesignedSystem {
            summary: DesignSummary {
                sats: total_sats,
                planes: total_planes,
                shells: wd.shells.len(),
                sats_per_plane: total_sats.checked_div(total_planes).unwrap_or(0),
                inclination_deg,
                unserved_demand: 0.0,
            },
            eval_groups,
            planes,
            network_order,
        })
    }
}

/// The demand-driven repeat-ground-track designer as a [`Designer`] (the
/// §2.2 negative result, runnable as a scenario design point).
#[derive(Debug, Clone, PartialEq)]
pub struct RgtDesigner {
    /// The underlying designer configuration.
    pub config: RgtDesignConfig,
}

impl Designer for RgtDesigner {
    fn name(&self) -> &'static str {
        "rgt"
    }

    fn design(&self, demand: &LatTodGrid, _params: &DesignParams) -> Result<DesignedSystem> {
        let rgt = design_rgt_constellation(demand, self.config.clone())?;
        let total = rgt.total_sats();
        let eval_groups = if total == 0 {
            Vec::new()
        } else {
            // Satellites share the track's altitude/inclination, so one
            // evaluation group covers the constellation (phases sample the
            // orbit, exactly as for a Walker shell).
            vec![(rgt.orbit.reference_elements(), total)]
        };
        let planes: Vec<SystemPlane> = rgt
            .satellites()?
            .into_iter()
            .map(|arc| SystemPlane { n_sats: arc.len(), eval_idx: 0, satellites: arc })
            .collect();
        let network_order: Vec<usize> = (0..planes.len()).collect();
        Ok(DesignedSystem {
            summary: DesignSummary {
                sats: total,
                planes: rgt.planes,
                shells: usize::from(total > 0),
                sats_per_plane: rgt.sats_per_plane,
                inclination_deg: rgt.config.inclination_deg,
                unserved_demand: rgt.unserved_demand,
            },
            eval_groups,
            planes,
            network_order,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssplane_demand::grid::LatTodGrid;

    fn demand() -> LatTodGrid {
        let mut v = vec![0.0; 36 * 24];
        for j in 0..24 {
            v[23 * 24 + j] = 2.0; // ~27.5°N, flat over the day
            v[26 * 24 + j] = 1.0; // ~42.5°N
        }
        LatTodGrid::from_values(36, 24, v).unwrap()
    }

    fn params() -> DesignParams {
        DesignParams { epoch: Epoch::from_calendar(2013, 6, 1, 0, 0, 0.0) }
    }

    #[test]
    fn all_three_designers_produce_consistent_systems() {
        let d = demand();
        let designers: [&dyn Designer; 3] = [
            &SsDesigner { config: DesignConfig::default() },
            &WalkerDesigner { config: WalkerBaselineConfig::default() },
            &RgtDesigner { config: RgtDesignConfig::default() },
        ];
        for designer in designers {
            let sys = designer.design(&d, &params()).unwrap();
            assert_eq!(sys.summary.sats, sys.total_sats(), "{}", designer.name());
            assert_eq!(sys.summary.planes, sys.planes.len(), "{}", designer.name());
            assert_eq!(sys.network_order.len(), sys.planes.len(), "{}", designer.name());
            let eval_total: usize = sys.eval_groups.iter().map(|&(_, n)| n).sum();
            assert_eq!(eval_total, sys.total_sats(), "{}", designer.name());
            for p in &sys.planes {
                assert!(p.eval_idx < sys.eval_groups.len(), "{}", designer.name());
                assert_eq!(p.satellites.len(), p.n_sats, "{}", designer.name());
            }
            // network_order is a permutation.
            let mut order = sys.network_order.clone();
            order.sort_unstable();
            assert_eq!(order, (0..sys.planes.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn ss_network_order_sorts_by_ltan() {
        let sys =
            SsDesigner { config: DesignConfig::default() }.design(&demand(), &params()).unwrap();
        assert!(!sys.planes.is_empty());
        let net = sys.network_planes();
        assert_eq!(net.len(), sys.planes.len());
        // RAANs of the first satellite per plane must be non-decreasing in
        // LTAN order — spot-check via the raw elements being reordered.
        assert_eq!(net.iter().map(Vec::len).sum::<usize>(), sys.total_sats());
    }

    #[test]
    fn registry_names_are_the_report_keys() {
        assert_eq!(SsDesigner { config: DesignConfig::default() }.name(), "ss");
        assert_eq!(WalkerDesigner { config: WalkerBaselineConfig::default() }.name(), "wd");
        assert_eq!(RgtDesigner { config: RgtDesignConfig::default() }.name(), "rgt");
    }
}
