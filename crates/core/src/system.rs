//! The pluggable design/evaluation API: every constellation family the
//! pipeline can evaluate is a [`Designer`] producing a [`DesignedSystem`].
//!
//! The paper's argument is a head-to-head comparison of constellation
//! *designs*; the scenario engine therefore runs one generic per-system
//! pipeline (design → attack → fluence → survivability → network) over
//! whatever set of designers a scenario selects. A `DesignedSystem`
//! carries exactly what those downstream stages need:
//!
//! * a **design summary** (the satellite/plane/shell counts a report
//!   prints),
//! * the **fluence-evaluation groups** — `(representative elements,
//!   satellites)` per group, the Fig. 10 sampling unit (one per SS plane,
//!   one per Walker shell, one per RGT track),
//! * the **plane structure** — the unit plane-loss attacks and per-plane
//!   spare budgets act on, each plane tagged with the evaluation group
//!   its radiation dose comes from,
//! * the **satellite geometry** per plane, so the networking stage can
//!   build ISL topologies for any system, not just the SS design.
//!
//! Five designers ship: [`SsDesigner`] (§4.2 greedy cover),
//! [`WalkerDesigner`] (the demand-aware multi-shell baseline),
//! [`RgtDesigner`] (the §2.2 negative result as a design point),
//! [`SlimDesigner`] (plane-slimmed Walker variants per "Your
//! Mega-Constellations Can Be Slim"), and [`StarlinkDesigner`] (the
//! deployed Starlink Gen1 shell catalog). [`DESIGNER_REGISTRY`] is the
//! canonical name/order list consumers resolve against.

use crate::designer::{design_ss_constellation, DesignConfig};
use crate::error::{CoreError, Result};
use crate::rgt_analysis::{design_rgt_constellation, RgtDesignConfig};
use crate::walker_baseline::{design_walker_constellation, WalkerBaselineConfig, WalkerShell};
use ssplane_astro::kepler::OrbitalElements;
use ssplane_astro::time::Epoch;
use ssplane_demand::grid::LatTodGrid;

/// The canonical designer registry: `(name, one-line summary)` in the
/// fixed order systems execute and serialize in. Report bytes depend on
/// this order, so new families append — they never reorder the existing
/// names.
pub const DESIGNER_REGISTRY: &[(&str, &str)] = &[
    ("ss", "sun-synchronous SS-plane greedy cover (the paper's design)"),
    ("wd", "demand-aware multi-shell Walker baseline"),
    ("rgt", "demand-driven repeat-ground-track design"),
    ("slim", "plane-slimmed Walker variant (reduced planes per shell)"),
    ("starlink", "deployed Starlink Gen1 shell catalog"),
];

/// Inputs shared by every designer besides the demand grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignParams {
    /// The epoch satellite geometry and evaluation elements are generated
    /// at (the scenario's radiation epoch, so fluence evaluation and
    /// networking see one consistent sky).
    pub epoch: Epoch,
}

/// One orbital plane (or plane-like group) of a designed system.
#[derive(Debug, Clone)]
pub struct SystemPlane {
    /// Satellites in the plane.
    pub n_sats: usize,
    /// Index into [`DesignedSystem::eval_groups`] this plane's radiation
    /// dose comes from (its own group for SS planes; the owning shell for
    /// Walker; the single track group for RGT).
    pub eval_idx: usize,
    /// Orbital elements of the plane's satellites at the design epoch.
    pub satellites: Vec<OrbitalElements>,
}

/// The design-stage outcome a report prints, computed by the designer so
/// each family controls its own accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignSummary {
    /// Total satellites.
    pub sats: usize,
    /// Orbital planes (for Walker: summed across shells).
    pub planes: usize,
    /// Evaluation shells (SS: one per plane; Walker: stacked shells; RGT:
    /// one track).
    pub shells: usize,
    /// Satellites per plane (family-specific: SS street-of-coverage
    /// sizing, Walker constellation mean, RGT arc size).
    pub sats_per_plane: usize,
    /// Representative inclination \[deg\] (SS: the common inclination;
    /// Walker: satellite-weighted mean; RGT: the track inclination).
    pub inclination_deg: f64,
    /// Demand the design could not serve (capacity units).
    pub unserved_demand: f64,
}

/// Everything downstream stages need from one designed system.
#[derive(Debug, Clone)]
pub struct DesignedSystem {
    /// The design summary.
    pub summary: DesignSummary,
    /// `(representative elements, satellites)` per fluence-evaluation
    /// group — the exact Fig. 10 grouping, for numerical parity with the
    /// figure pipeline.
    pub eval_groups: Vec<(OrbitalElements, usize)>,
    /// The real orbital planes, in design order (the order attacks and
    /// spare budgets index).
    pub planes: Vec<SystemPlane>,
    /// Permutation of `planes` for ISL-topology construction (SS planes
    /// sort by LTAN so the +grid links neighbouring local times; Walker
    /// and RGT use design order).
    pub network_order: Vec<usize>,
}

/// Shell-level metadata of a designed system: one entry per
/// fluence-evaluation group, in group order. For a multi-shell catalog
/// (Walker, Starlink) this is the physical shell structure; for the SS
/// design each plane is its own "shell" at the shared altitude.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShellMeta {
    /// Shell altitude \[km\] (from the group's representative elements).
    pub altitude_km: f64,
    /// Shell inclination \[deg\].
    pub inclination_deg: f64,
    /// Planes tagged with this shell's evaluation-group index.
    pub planes: usize,
    /// Satellites in the shell.
    pub sats: usize,
}

impl DesignedSystem {
    /// Per-plane satellite elements in network (topology) order.
    pub fn network_planes(&self) -> Vec<Vec<OrbitalElements>> {
        self.network_order.iter().map(|&i| self.planes[i].satellites.clone()).collect()
    }

    /// Total satellites across planes.
    pub fn total_sats(&self) -> usize {
        self.planes.iter().map(|p| p.n_sats).sum()
    }

    /// The system's shell structure: one [`ShellMeta`] per evaluation
    /// group, derived from the group's representative elements and the
    /// planes tagged with its index — the semantic target of
    /// `attack.kind = "shell"` (shell `k` destroys exactly the planes of
    /// `shell_meta()[k]`).
    pub fn shell_meta(&self) -> Vec<ShellMeta> {
        self.eval_groups
            .iter()
            .enumerate()
            .map(|(g, (elements, sats))| ShellMeta {
                altitude_km: elements.altitude_km(),
                inclination_deg: elements.inclination_deg(),
                planes: self.planes.iter().filter(|p| p.eval_idx == g).count(),
                sats: *sats,
            })
            .collect()
    }
}

/// A constellation design family, pluggable into the generic scenario
/// pipeline.
pub trait Designer {
    /// The family's registry name — also the report key its results are
    /// published under (`"ss"`, `"wd"`, `"rgt"`).
    fn name(&self) -> &'static str;

    /// Designs the system for `demand` (already scaled to the bandwidth
    /// multiplier).
    ///
    /// # Errors
    /// Family-specific design failure (bad configuration, infeasible
    /// geometry, plane-budget exhaustion).
    fn design(&self, demand: &LatTodGrid, params: &DesignParams) -> Result<DesignedSystem>;
}

/// The SS-plane greedy designer (§4.2) as a [`Designer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsDesigner {
    /// The underlying designer configuration.
    pub config: DesignConfig,
}

impl Designer for SsDesigner {
    fn name(&self) -> &'static str {
        "ss"
    }

    fn design(&self, demand: &LatTodGrid, params: &DesignParams) -> Result<DesignedSystem> {
        let ss = design_ss_constellation(demand, self.config)?;
        let eval_groups: Vec<(OrbitalElements, usize)> = ss
            .planes
            .iter()
            .map(|p| Ok((p.orbit.elements_at(params.epoch, 0.0)?, p.n_sats)))
            .collect::<Result<_>>()?;
        let planes: Vec<SystemPlane> = ss
            .planes
            .iter()
            .enumerate()
            .map(|(i, p)| {
                Ok(SystemPlane {
                    n_sats: p.n_sats,
                    eval_idx: i,
                    satellites: p.satellites(params.epoch)?,
                })
            })
            .collect::<Result<_>>()?;
        // The network stage orders SS planes by LTAN (stable sort, as the
        // pre-`Designer` pipeline did) so the +grid topology links planes
        // adjacent in local time.
        let mut network_order: Vec<usize> = (0..ss.planes.len()).collect();
        network_order.sort_by(|&a, &b| {
            ss.planes[a].orbit.ltan_h.partial_cmp(&ss.planes[b].orbit.ltan_h).expect("finite LTAN")
        });
        Ok(DesignedSystem {
            summary: DesignSummary {
                sats: ss.total_sats(),
                planes: ss.planes.len(),
                shells: ss.planes.len(),
                sats_per_plane: ss.sats_per_plane,
                inclination_deg: ss.inclination().map_or(0.0, f64::to_degrees),
                unserved_demand: ss.unserved_demand,
            },
            eval_groups,
            planes,
            network_order,
        })
    }
}

/// The demand-aware multi-shell Walker baseline as a [`Designer`].
#[derive(Debug, Clone, PartialEq)]
pub struct WalkerDesigner {
    /// The underlying designer configuration.
    pub config: WalkerBaselineConfig,
}

impl Designer for WalkerDesigner {
    fn name(&self) -> &'static str {
        "wd"
    }

    fn design(&self, demand: &LatTodGrid, _params: &DesignParams) -> Result<DesignedSystem> {
        let wd = design_walker_constellation(demand, self.config.clone())?;
        system_from_shells(&wd.shells)
    }
}

/// The shared shell-stack assembly of every Walker-shaped family
/// (Walker baseline, slim variants, the Starlink catalog): one
/// evaluation group per shell with the shell's circular elements as the
/// group representative, the shell's real Walker pattern as one plane
/// per group, satellite-weighted mean inclination, design network
/// order. Arithmetic is exactly the pre-refactor `WalkerDesigner` body,
/// so existing `wd` reports stay byte-identical.
fn system_from_shells(shells: &[WalkerShell]) -> Result<DesignedSystem> {
    let mut eval_groups = Vec::with_capacity(shells.len());
    let mut planes: Vec<SystemPlane> = Vec::new();
    for (s, shell) in shells.iter().enumerate() {
        let elements = OrbitalElements::circular(shell.altitude_km, shell.inclination, 0.0, 0.0)?;
        eval_groups.push((elements, shell.n_sats));
        // The shell's real Walker pattern, one plane per group — the
        // same geometry `WalkerConstellation::satellites` flattens.
        for arc in shell.plane_satellites()? {
            planes.push(SystemPlane { n_sats: arc.len(), eval_idx: s, satellites: arc });
        }
    }
    let total_sats: usize = shells.iter().map(|s| s.n_sats).sum();
    let total_planes = planes.len();
    let inclination_deg = if total_sats == 0 {
        0.0
    } else {
        shells.iter().map(|s| s.inclination.to_degrees() * s.n_sats as f64).sum::<f64>()
            / total_sats as f64
    };
    let network_order: Vec<usize> = (0..total_planes).collect();
    Ok(DesignedSystem {
        summary: DesignSummary {
            sats: total_sats,
            planes: total_planes,
            shells: shells.len(),
            sats_per_plane: total_sats.checked_div(total_planes).unwrap_or(0),
            inclination_deg,
            unserved_demand: 0.0,
        },
        eval_groups,
        planes,
        network_order,
    })
}

/// The demand-driven repeat-ground-track designer as a [`Designer`] (the
/// §2.2 negative result, runnable as a scenario design point).
#[derive(Debug, Clone, PartialEq)]
pub struct RgtDesigner {
    /// The underlying designer configuration.
    pub config: RgtDesignConfig,
}

impl Designer for RgtDesigner {
    fn name(&self) -> &'static str {
        "rgt"
    }

    fn design(&self, demand: &LatTodGrid, _params: &DesignParams) -> Result<DesignedSystem> {
        let rgt = design_rgt_constellation(demand, self.config.clone())?;
        let total = rgt.total_sats();
        let eval_groups = if total == 0 {
            Vec::new()
        } else {
            // Satellites share the track's altitude/inclination, so one
            // evaluation group covers the constellation (phases sample the
            // orbit, exactly as for a Walker shell).
            vec![(rgt.orbit.reference_elements(), total)]
        };
        let planes: Vec<SystemPlane> = rgt
            .satellites()?
            .into_iter()
            .map(|arc| SystemPlane { n_sats: arc.len(), eval_idx: 0, satellites: arc })
            .collect();
        let network_order: Vec<usize> = (0..planes.len()).collect();
        Ok(DesignedSystem {
            summary: DesignSummary {
                sats: total,
                planes: rgt.planes,
                shells: usize::from(total > 0),
                sats_per_plane: rgt.sats_per_plane,
                inclination_deg: rgt.config.inclination_deg,
                unserved_demand: rgt.unserved_demand,
            },
            eval_groups,
            planes,
            network_order,
        })
    }
}

/// The deployed Starlink Gen1 shell catalog: `(altitude_km,
/// inclination_deg, planes, sats_per_plane)` per shell, in the FCC
/// authorization order ("Starlink Constellation: Deployment,
/// Configuration, and Dynamics" documents the same structure). 4408
/// satellites across five shells at full scale.
pub const STARLINK_GEN1_SHELLS: &[(f64, f64, usize, usize)] = &[
    (550.0, 53.0, 72, 22),
    (540.0, 53.2, 72, 22),
    (570.0, 70.0, 36, 20),
    (560.0, 97.6, 6, 58),
    (560.0, 97.6, 4, 43),
];

/// Catalog designer reproducing the deployed Starlink Gen1 shells as a
/// [`Designer`]. Demand-independent: the catalog *is* the design. One
/// evaluation group per deployed shell, so fluence and survivability are
/// computed per shell and `attack.kind = "shell"` destroys exactly one
/// deployed shell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StarlinkDesigner {
    /// Uniform down-scale of the catalog in `(0, 1]`: each shell keeps
    /// `max(1, round(planes × scale))` planes of `max(1, round(spp ×
    /// scale))` satellites, preserving the shell structure at
    /// test-tractable sizes. `1.0` is the full 4408-satellite catalog.
    pub scale: f64,
}

impl Default for StarlinkDesigner {
    fn default() -> Self {
        Self { scale: 1.0 }
    }
}

impl Designer for StarlinkDesigner {
    fn name(&self) -> &'static str {
        "starlink"
    }

    fn design(&self, _demand: &LatTodGrid, _params: &DesignParams) -> Result<DesignedSystem> {
        if !(self.scale.is_finite() && self.scale > 0.0 && self.scale <= 1.0) {
            return Err(CoreError::BadConfig {
                name: "starlink_scale",
                constraint: "0 < scale <= 1",
            });
        }
        let shells: Vec<WalkerShell> = STARLINK_GEN1_SHELLS
            .iter()
            .map(|&(altitude_km, inclination_deg, planes, spp)| {
                let planes = ((planes as f64 * self.scale).round() as usize).max(1);
                let spp = ((spp as f64 * self.scale).round() as usize).max(1);
                WalkerShell {
                    inclination: inclination_deg.to_radians(),
                    altitude_km,
                    n_sats: planes * spp,
                    planes,
                }
            })
            .collect();
        system_from_shells(&shells)
    }
}

/// Plane-slimmed Walker variant as a [`Designer`]: runs the demand-aware
/// Walker baseline, then thins each shell to `clamp(round(planes ×
/// plane_factor), min_planes, planes)` planes while keeping the per-plane
/// satellite count — the "Your Mega-Constellations Can Be Slim" recipe of
/// trading plane count for cost, scored head-to-head on
/// survivability-per-satellite in the design shootout.
#[derive(Debug, Clone, PartialEq)]
pub struct SlimDesigner {
    /// The Walker baseline configuration the slimming starts from.
    pub config: WalkerBaselineConfig,
    /// Fraction of each shell's planes to keep, in `(0, 1]`.
    pub plane_factor: f64,
    /// Floor on planes per shell after slimming (never raises a shell
    /// above its baseline plane count).
    pub min_planes: usize,
}

impl Default for SlimDesigner {
    fn default() -> Self {
        Self { config: WalkerBaselineConfig::default(), plane_factor: 0.5, min_planes: 3 }
    }
}

impl Designer for SlimDesigner {
    fn name(&self) -> &'static str {
        "slim"
    }

    fn design(&self, demand: &LatTodGrid, _params: &DesignParams) -> Result<DesignedSystem> {
        if !(self.plane_factor.is_finite() && self.plane_factor > 0.0 && self.plane_factor <= 1.0) {
            return Err(CoreError::BadConfig {
                name: "slim_plane_factor",
                constraint: "0 < factor <= 1",
            });
        }
        if self.min_planes == 0 {
            return Err(CoreError::BadConfig { name: "slim_min_planes", constraint: ">= 1" });
        }
        let wd = design_walker_constellation(demand, self.config.clone())?;
        let shells: Vec<WalkerShell> = wd
            .shells
            .iter()
            .map(|shell| {
                let per_plane = (shell.n_sats / shell.planes.max(1)).max(1);
                let slim_planes = ((shell.planes as f64 * self.plane_factor).round() as usize)
                    .clamp(self.min_planes.min(shell.planes).max(1), shell.planes.max(1));
                WalkerShell {
                    inclination: shell.inclination,
                    altitude_km: shell.altitude_km,
                    n_sats: slim_planes * per_plane,
                    planes: slim_planes,
                }
            })
            .collect();
        system_from_shells(&shells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssplane_demand::grid::LatTodGrid;

    fn demand() -> LatTodGrid {
        let mut v = vec![0.0; 36 * 24];
        for j in 0..24 {
            v[23 * 24 + j] = 2.0; // ~27.5°N, flat over the day
            v[26 * 24 + j] = 1.0; // ~42.5°N
        }
        LatTodGrid::from_values(36, 24, v).unwrap()
    }

    fn params() -> DesignParams {
        DesignParams { epoch: Epoch::from_calendar(2013, 6, 1, 0, 0, 0.0) }
    }

    #[test]
    fn all_registered_designers_produce_consistent_systems() {
        let d = demand();
        let designers: [&dyn Designer; 5] = [
            &SsDesigner { config: DesignConfig::default() },
            &WalkerDesigner { config: WalkerBaselineConfig::default() },
            &RgtDesigner { config: RgtDesignConfig::default() },
            &SlimDesigner::default(),
            &StarlinkDesigner { scale: 0.2 },
        ];
        for designer in designers {
            let sys = designer.design(&d, &params()).unwrap();
            assert_eq!(sys.summary.sats, sys.total_sats(), "{}", designer.name());
            assert_eq!(sys.summary.planes, sys.planes.len(), "{}", designer.name());
            assert_eq!(sys.network_order.len(), sys.planes.len(), "{}", designer.name());
            let eval_total: usize = sys.eval_groups.iter().map(|&(_, n)| n).sum();
            assert_eq!(eval_total, sys.total_sats(), "{}", designer.name());
            for p in &sys.planes {
                assert!(p.eval_idx < sys.eval_groups.len(), "{}", designer.name());
                assert_eq!(p.satellites.len(), p.n_sats, "{}", designer.name());
            }
            // network_order is a permutation.
            let mut order = sys.network_order.clone();
            order.sort_unstable();
            assert_eq!(order, (0..sys.planes.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn ss_network_order_sorts_by_ltan() {
        let sys =
            SsDesigner { config: DesignConfig::default() }.design(&demand(), &params()).unwrap();
        assert!(!sys.planes.is_empty());
        let net = sys.network_planes();
        assert_eq!(net.len(), sys.planes.len());
        // RAANs of the first satellite per plane must be non-decreasing in
        // LTAN order — spot-check via the raw elements being reordered.
        assert_eq!(net.iter().map(Vec::len).sum::<usize>(), sys.total_sats());
    }

    #[test]
    fn registry_names_are_the_report_keys() {
        assert_eq!(SsDesigner { config: DesignConfig::default() }.name(), "ss");
        assert_eq!(WalkerDesigner { config: WalkerBaselineConfig::default() }.name(), "wd");
        assert_eq!(RgtDesigner { config: RgtDesignConfig::default() }.name(), "rgt");
        assert_eq!(SlimDesigner::default().name(), "slim");
        assert_eq!(StarlinkDesigner::default().name(), "starlink");
        let names: Vec<&str> = DESIGNER_REGISTRY.iter().map(|&(n, _)| n).collect();
        assert_eq!(names, ["ss", "wd", "rgt", "slim", "starlink"]);
    }

    #[test]
    fn starlink_catalog_reproduces_deployed_shell_structure() {
        let sys = StarlinkDesigner::default().design(&demand(), &params()).unwrap();
        assert_eq!(sys.summary.sats, 4408);
        assert_eq!(sys.summary.shells, 5);
        assert_eq!(sys.summary.planes, 72 + 72 + 36 + 6 + 4);
        let meta = sys.shell_meta();
        assert_eq!(meta.len(), STARLINK_GEN1_SHELLS.len());
        for (m, &(alt, inc, planes, spp)) in meta.iter().zip(STARLINK_GEN1_SHELLS) {
            assert!((m.altitude_km - alt).abs() < 1e-6, "{m:?}");
            assert!((m.inclination_deg - inc).abs() < 1e-9, "{m:?}");
            assert_eq!(m.planes, planes, "{m:?}");
            assert_eq!(m.sats, planes * spp, "{m:?}");
        }
        // Shell satellite shares: the semantic `attack.kind = "shell"`
        // checks against (shell 0 holds 1584/4408 of the constellation).
        assert_eq!(meta[0].sats, 1584);
    }

    #[test]
    fn starlink_scale_shrinks_every_shell_and_rejects_bad_values() {
        let small = StarlinkDesigner { scale: 0.1 }.design(&demand(), &params()).unwrap();
        let full = StarlinkDesigner::default().design(&demand(), &params()).unwrap();
        assert_eq!(small.summary.shells, 5);
        assert!(small.summary.sats < full.summary.sats);
        for m in small.shell_meta() {
            assert!(m.planes >= 1 && m.sats >= 1, "{m:?}");
        }
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            assert!(StarlinkDesigner { scale: bad }.design(&demand(), &params()).is_err());
        }
    }

    #[test]
    fn slim_keeps_shell_structure_with_fewer_sats_than_walker() {
        let d = demand();
        let wd = WalkerDesigner { config: WalkerBaselineConfig::default() }
            .design(&d, &params())
            .unwrap();
        let slim = SlimDesigner::default().design(&d, &params()).unwrap();
        assert_eq!(slim.summary.shells, wd.summary.shells);
        assert!(slim.summary.sats <= wd.summary.sats);
        assert!(slim.summary.planes <= wd.summary.planes);
        for (s, w) in slim.shell_meta().iter().zip(wd.shell_meta()) {
            assert!(s.planes <= w.planes && s.planes >= 1, "{s:?} vs {w:?}");
            assert!((s.altitude_km - w.altitude_km).abs() < 1e-9);
        }
        // factor = 1 is the identity on the plane structure.
        let same = SlimDesigner { plane_factor: 1.0, ..SlimDesigner::default() }
            .design(&d, &params())
            .unwrap();
        assert_eq!(same.summary.planes, wd.summary.planes);
        for bad in [0.0, 2.0, f64::NAN] {
            let designer = SlimDesigner { plane_factor: bad, ..SlimDesigner::default() };
            assert!(designer.design(&d, &params()).is_err());
        }
        let designer = SlimDesigner { min_planes: 0, ..SlimDesigner::default() };
        assert!(designer.design(&d, &params()).is_err());
    }

    #[test]
    fn shell_meta_matches_eval_groups_and_plane_tags() {
        let sys = WalkerDesigner { config: WalkerBaselineConfig::default() }
            .design(&demand(), &params())
            .unwrap();
        let meta = sys.shell_meta();
        assert_eq!(meta.len(), sys.eval_groups.len());
        assert_eq!(meta.iter().map(|m| m.sats).sum::<usize>(), sys.total_sats());
        assert_eq!(meta.iter().map(|m| m.planes).sum::<usize>(), sys.planes.len());
    }
}
