//! Multi-shell Walker-delta baseline designer.
//!
//! The paper's comparison constellation (Fig. 9): Walker-delta shells
//! stacked around the design altitude, with shell inclinations "determined
//! by maximum population density at each latitude". This module implements
//! that as a greedy capacity-placement loop driven by an analytic supply
//! model:
//!
//! * the demand a Walker constellation must provision for is the
//!   *time-maximum* demand at every latitude — it cannot exploit the
//!   diurnal structure because its planes drift through all local times
//!   (see [`ssplane_astro::sunsync`] for the drift rate);
//! * a satellite at inclination `i` spends its time in latitudes `< i`
//!   with the classic dwell density peaking at the turn-around, so shells
//!   are placed at the inclinations that most efficiently cover the
//!   worst remaining latitude deficit;
//! * every shell is finally rounded up to a feasible continuous-coverage
//!   Walker pattern (streets-of-coverage sizing), which produces the
//!   satellite-count floor visible at low bandwidth multipliers in Fig. 9.

use crate::error::{CoreError, Result};
use ssplane_astro::coverage::{coverage_half_angle, size_walker_delta};
use ssplane_astro::kepler::OrbitalElements;
use ssplane_astro::walker::WalkerDelta;
use ssplane_demand::grid::LatTodGrid;

/// How a Walker shell's supply is accounted against demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SupplyModel {
    /// **Worst-case multiplicity** (default): a shell provides continuous
    /// `m`-fold coverage of its latitude band only when sized at `m ×` the
    /// streets-of-coverage minimum. This is what a bandwidth guarantee
    /// requires and what produces the paper's WD satellite counts.
    #[default]
    WorstCase,
    /// **Time-average multiplicity** (ablation): supply counted as the
    /// mean number of satellites overhead ([`coverage_kernel`]). Cheaper
    /// on paper but does not guarantee capacity at any instant.
    TimeAverage,
}

/// Configuration for the Walker baseline designer.
#[derive(Debug, Clone, PartialEq)]
pub struct WalkerBaselineConfig {
    /// Nominal altitude \[km\]; shells are stacked every
    /// `shell_spacing_km` around it.
    pub altitude_km: f64,
    /// Vertical spacing between stacked shells \[km\].
    pub shell_spacing_km: f64,
    /// Minimum user elevation \[deg\].
    pub min_elevation_deg: f64,
    /// Capacity of one satellite in demand units.
    pub sat_capacity: f64,
    /// Candidate shell inclinations \[deg\].
    pub candidate_inclinations_deg: Vec<f64>,
    /// Supply accounting model.
    pub supply_model: SupplyModel,
    /// Safety bound on design iterations.
    pub max_iterations: usize,
}

impl Default for WalkerBaselineConfig {
    fn default() -> Self {
        WalkerBaselineConfig {
            altitude_km: 560.0,
            shell_spacing_km: 10.0,
            min_elevation_deg: ssplane_astro::coverage::DEFAULT_MIN_ELEVATION_DEG,
            sat_capacity: 1.0,
            candidate_inclinations_deg: vec![15.0, 25.0, 35.0, 45.0, 55.0, 65.0, 75.0, 85.0],
            supply_model: SupplyModel::WorstCase,
            max_iterations: 10_000,
        }
    }
}

/// One Walker-delta shell of the baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkerShell {
    /// Shell inclination \[rad\].
    pub inclination: f64,
    /// Shell altitude \[km\].
    pub altitude_km: f64,
    /// Total satellites in the shell (a feasible `planes × sats_per_plane`
    /// Walker pattern).
    pub n_sats: usize,
    /// Number of planes.
    pub planes: usize,
}

impl WalkerShell {
    /// The shell's Walker pattern, chunked into its planes (plane-major;
    /// `n_sats = planes × sats_per_plane` by construction). The single
    /// home of the shell's phasing convention (`F = 1 mod planes`), so
    /// every consumer — flat satellite lists, the network stage's plane
    /// geometry — sees the same orbits.
    ///
    /// # Errors
    /// Propagates Walker-pattern generation failure.
    pub fn plane_satellites(&self) -> Result<Vec<Vec<OrbitalElements>>> {
        let n_planes = self.planes.max(1);
        let pattern = WalkerDelta::new(
            self.altitude_km,
            self.inclination,
            self.n_sats,
            n_planes,
            1 % n_planes,
        )?
        .generate()?;
        let per_plane = (self.n_sats / n_planes).max(1);
        Ok(pattern.chunks(per_plane).map(<[_]>::to_vec).collect())
    }
}

/// The designed multi-shell Walker constellation.
#[derive(Debug, Clone)]
pub struct WalkerConstellation {
    /// Shells, in the order placed.
    pub shells: Vec<WalkerShell>,
    /// Configuration used.
    pub config: WalkerBaselineConfig,
}

impl WalkerConstellation {
    /// Total satellites across shells.
    pub fn total_sats(&self) -> usize {
        self.shells.iter().map(|s| s.n_sats).sum()
    }

    /// Orbital elements of every satellite, shell by shell.
    ///
    /// # Errors
    /// Propagates Walker-pattern generation failure.
    pub fn satellites(&self) -> Result<Vec<OrbitalElements>> {
        let mut out = Vec::with_capacity(self.total_sats());
        for shell in &self.shells {
            out.extend(shell.plane_satellites()?.into_iter().flatten());
        }
        Ok(out)
    }
}

/// Time-averaged number of satellites covering a ground point at latitude
/// `lat` \[rad\], per satellite of a shell at inclination `inclination`
/// with coverage half-angle `theta` — the analytic supply kernel.
///
/// Computed as the probability that the satellite's sub-point falls within
/// the point's coverage cap: `∫ p(φ′) · Δλ(φ, φ′)/π dφ′`, where `p` is the
/// orbital latitude-dwell density and `Δλ` the cap's longitude half-width.
pub fn coverage_kernel(lat: f64, inclination: f64, theta: f64) -> f64 {
    // Retrograde orbits cover the same latitudes as their supplement.
    let i_eff = inclination.min(core::f64::consts::PI - inclination);
    if i_eff <= 0.0 {
        return 0.0;
    }
    let sin_i = i_eff.sin();
    let lo = (lat - theta).max(-i_eff + 1e-9);
    let hi = (lat + theta).min(i_eff - 1e-9);
    if lo >= hi {
        return 0.0;
    }
    let steps = 32;
    let dl = (hi - lo) / steps as f64;
    let cos_t = theta.cos();
    let mut acc = 0.0;
    for k in 0..steps {
        let phi = lo + (k as f64 + 0.5) * dl;
        let s = phi.sin();
        let denom = (sin_i * sin_i - s * s).max(1e-12).sqrt();
        let p = phi.cos() / (core::f64::consts::PI * denom);
        // Longitude half-width of the cap at latitude φ′ seen from a point
        // at latitude `lat`.
        let cos_dl = ((cos_t - lat.sin() * s) / (lat.cos() * phi.cos())).clamp(-1.0, 1.0);
        let dlam = cos_dl.acos();
        acc += p * (dlam / core::f64::consts::PI) * dl;
    }
    acc
}

/// Per-latitude-band requirement for a time-invariant constellation: the
/// maximum demand over the day in each latitude row of the grid.
pub fn latitude_requirements(demand: &LatTodGrid) -> Vec<(f64, f64)> {
    (0..demand.lat_bins())
        .map(|i| {
            let peak = (0..demand.tod_bins()).map(|j| demand.value(i, j)).fold(0.0, f64::max);
            (demand.lat_center_deg(i).to_radians(), peak)
        })
        .collect()
}

/// Designs the multi-shell Walker-delta baseline for `demand` (scaled to
/// the bandwidth multiplier).
///
/// # Errors
/// * [`CoreError::BadConfig`] for empty candidate sets or non-positive
///   capacity;
/// * [`CoreError::PlaneBudgetExhausted`] if the iteration bound is hit;
/// * astrodynamics errors for infeasible geometry.
pub fn design_walker_constellation(
    demand: &LatTodGrid,
    config: WalkerBaselineConfig,
) -> Result<WalkerConstellation> {
    if config.sat_capacity <= 0.0 {
        return Err(CoreError::BadConfig { name: "sat_capacity", constraint: "> 0" });
    }
    if config.candidate_inclinations_deg.is_empty() {
        return Err(CoreError::BadConfig {
            name: "candidate_inclinations_deg",
            constraint: "non-empty",
        });
    }
    let theta = coverage_half_angle(config.altitude_km, config.min_elevation_deg.to_radians())?;

    // Requirements: satellites simultaneously in view per latitude band.
    let mut deficits: Vec<(f64, f64)> = latitude_requirements(demand)
        .into_iter()
        .map(|(lat, d)| (lat, d / config.sat_capacity))
        .collect();

    let candidates: Vec<f64> =
        config.candidate_inclinations_deg.iter().map(|d| d.to_radians()).collect();

    let alloc = match config.supply_model {
        SupplyModel::WorstCase => allocate_worst_case(&mut deficits, &candidates, theta, &config)?,
        SupplyModel::TimeAverage => {
            allocate_time_average(&mut deficits, &candidates, theta, &config)?
        }
    };

    // Round every used inclination into a feasible shell: at least the
    // continuous-coverage minimum, in full planes.
    let mut shells = Vec::new();
    let mut shell_idx = 0usize;
    for (c, &n) in alloc.iter().enumerate() {
        if n <= 0.0 {
            continue;
        }
        let sizing = size_walker_delta(theta, candidates[c])?;
        let n_min = sizing.total();
        let per_plane = sizing.sats_per_plane;
        let n_target = (n.ceil() as usize).max(n_min);
        let planes = n_target.div_ceil(per_plane);
        let altitude = config.altitude_km + shell_idx as f64 * config.shell_spacing_km;
        shells.push(WalkerShell {
            inclination: candidates[c],
            altitude_km: altitude,
            n_sats: planes * per_plane,
            planes,
        });
        shell_idx += 1;
    }
    Ok(WalkerConstellation { shells, config })
}

/// Worst-case multiplicity allocation: a shell at inclination `i` sized at
/// `m ×` its streets-of-coverage minimum provides continuous `m`-fold
/// coverage of the band `|lat| ≤ i_eff + θ` (and nothing beyond). For each
/// worst remaining deficit the *cheapest covering* inclination (the one
/// minimizing coverage-minimum satellites, i.e. the lowest feasible
/// inclination — which is exactly "determined by the population latitude")
/// is filled in one shot.
fn allocate_worst_case(
    deficits: &mut [(f64, f64)],
    candidates: &[f64],
    theta: f64,
    config: &WalkerBaselineConfig,
) -> Result<Vec<f64>> {
    // Coverage minima per candidate.
    let minima: Vec<usize> = candidates
        .iter()
        .map(|&inc| Ok(size_walker_delta(theta, inc)?.total()))
        .collect::<Result<Vec<_>>>()?;
    let mut alloc = vec![0.0; candidates.len()];
    let mut iterations = 0usize;
    while let Some((band, &(_, worst))) = deficits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).expect("finite demand"))
    {
        if worst <= 1e-9 {
            break;
        }
        iterations += 1;
        if iterations > config.max_iterations {
            return Err(CoreError::PlaneBudgetExhausted {
                placed: iterations,
                residual_demand: deficits.iter().map(|d| d.1.max(0.0)).sum(),
            });
        }
        let lat = deficits[band].0.abs();
        // Cheapest candidate whose coverage band reaches this latitude.
        let best = candidates
            .iter()
            .enumerate()
            .filter(|&(_, &inc)| {
                let i_eff = inc.min(core::f64::consts::PI - inc);
                i_eff + theta >= lat
            })
            .min_by_key(|&(c, _)| minima[c])
            .map(|(c, _)| c);
        let Some(best) = best else {
            // Unreachable latitude: mark unserved.
            deficits[band].1 = 0.0;
            continue;
        };
        let m = worst.ceil();
        alloc[best] += m * minima[best] as f64;
        let i_eff = candidates[best].min(core::f64::consts::PI - candidates[best]);
        for d in deficits.iter_mut() {
            if d.0.abs() <= i_eff + theta {
                d.1 = (d.1 - m).max(0.0);
            }
        }
    }
    Ok(alloc)
}

/// Time-average allocation (ablation): fills deficits using the mean
/// overhead-multiplicity kernel.
fn allocate_time_average(
    deficits: &mut [(f64, f64)],
    candidates: &[f64],
    theta: f64,
    config: &WalkerBaselineConfig,
) -> Result<Vec<f64>> {
    let kernels: Vec<Vec<f64>> = candidates
        .iter()
        .map(|&inc| deficits.iter().map(|&(lat, _)| coverage_kernel(lat, inc, theta)).collect())
        .collect();
    let mut alloc = vec![0.0; candidates.len()];
    let mut iterations = 0usize;
    while let Some((band, &(_, worst))) = deficits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).expect("finite demand"))
    {
        if worst <= 1e-9 {
            break;
        }
        iterations += 1;
        if iterations > config.max_iterations {
            return Err(CoreError::PlaneBudgetExhausted {
                placed: iterations,
                residual_demand: deficits.iter().map(|d| d.1.max(0.0)).sum(),
            });
        }
        let (best, kernel) = kernels
            .iter()
            .enumerate()
            .map(|(c, k)| (c, k[band]))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite kernel"))
            .expect("non-empty candidates");
        if kernel <= 0.0 {
            deficits[band].1 = 0.0;
            continue;
        }
        let dn = (worst / kernel).ceil();
        alloc[best] += dn;
        for (b, d) in deficits.iter_mut().enumerate() {
            d.1 = (d.1 - dn * kernels[best][b]).max(0.0);
        }
    }
    Ok(alloc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_with_rows(rows: &[(usize, f64)]) -> LatTodGrid {
        let mut v = vec![0.0; 36 * 24];
        for &(i, val) in rows {
            for j in 0..24 {
                v[i * 24 + j] = val;
            }
        }
        LatTodGrid::from_values(36, 24, v).unwrap()
    }

    #[test]
    fn kernel_basic_properties() {
        let theta = 0.13;
        // Peak near the turn-around latitude.
        let at_inc = coverage_kernel(0.5, 0.5, theta);
        let at_eq = coverage_kernel(0.0, 0.5, theta);
        assert!(at_inc > at_eq, "turnaround {at_inc} vs equator {at_eq}");
        // Zero beyond reach.
        assert_eq!(coverage_kernel(0.8, 0.5, theta), 0.0);
        // Symmetric in hemisphere.
        let n = coverage_kernel(0.3, 0.9, theta);
        let s = coverage_kernel(-0.3, 0.9, theta);
        assert!((n - s).abs() < 1e-9);
        // Retrograde equivalence: i and π−i identical.
        let pro = coverage_kernel(0.4, 1.0, theta);
        let retro = coverage_kernel(0.4, core::f64::consts::PI - 1.0, theta);
        assert!((pro - retro).abs() < 1e-12);
    }

    #[test]
    fn kernel_integrates_to_cap_fraction() {
        // Summing n_vis over a fine latitude partition weighted by band
        // area fraction recovers the cap's share of the sphere:
        // ∫ kernel(φ) cosφ/2 dφ = (1-cosθ)/2.
        let theta: f64 = 0.13;
        let inc = 1.0;
        let steps = 400;
        let mut acc = 0.0;
        for k in 0..steps {
            let lat = -core::f64::consts::FRAC_PI_2
                + core::f64::consts::PI * (k as f64 + 0.5) / steps as f64;
            acc += coverage_kernel(lat, inc, theta) * lat.cos() / 2.0
                * (core::f64::consts::PI / steps as f64);
        }
        let expect = (1.0 - theta.cos()) / 2.0;
        assert!((acc - expect).abs() / expect < 0.05, "acc {acc} vs {expect}");
    }

    #[test]
    fn empty_demand_no_shells() {
        let g = grid_with_rows(&[]);
        let c = design_walker_constellation(&g, Default::default()).unwrap();
        assert!(c.shells.is_empty());
        assert_eq!(c.total_sats(), 0);
    }

    #[test]
    fn single_band_demand_selects_matching_inclination() {
        // Demand at ~+25° latitude (row 23 of 36 → center 27.5°).
        let g = grid_with_rows(&[(23, 3.0)]);
        let c = design_walker_constellation(&g, Default::default()).unwrap();
        assert!(!c.shells.is_empty());
        // The chosen shell's inclination is near (at or slightly above)
        // the demand latitude.
        let inc = c.shells[0].inclination.to_degrees();
        assert!((20.0..=45.0).contains(&inc), "chose {inc}°");
    }

    #[test]
    fn coverage_floor_at_small_demand() {
        // Tiny demand still costs the continuous-coverage minimum.
        let g_small = grid_with_rows(&[(23, 0.2)]);
        let c_small = design_walker_constellation(&g_small, Default::default()).unwrap();
        let g_smaller = grid_with_rows(&[(23, 0.01)]);
        let c_smaller = design_walker_constellation(&g_smaller, Default::default()).unwrap();
        assert_eq!(c_small.total_sats(), c_smaller.total_sats());
        // A single low-inclination shell's streets-of-coverage minimum.
        assert!(c_small.total_sats() > 150, "floor = {}", c_small.total_sats());
    }

    #[test]
    fn total_grows_with_demand() {
        let mut prev = 0;
        for mult in [1.0, 10.0, 100.0] {
            let g = grid_with_rows(&[(23, mult), (27, 0.6 * mult), (13, 0.4 * mult)]);
            let c = design_walker_constellation(&g, Default::default()).unwrap();
            assert!(c.total_sats() >= prev, "not monotone at {mult}");
            prev = c.total_sats();
        }
        // Large demand ⇒ roughly linear growth (well past the floor).
        assert!(prev > 10_000, "100x demand should need >10k sats, got {prev}");
    }

    #[test]
    fn satellites_generate_valid_walker_patterns() {
        let g = grid_with_rows(&[(23, 2.0), (30, 1.0)]);
        let c = design_walker_constellation(&g, Default::default()).unwrap();
        let sats = c.satellites().unwrap();
        assert_eq!(sats.len(), c.total_sats());
        // Shells stacked at distinct altitudes.
        for (a, b) in c.shells.iter().zip(c.shells.iter().skip(1)) {
            assert!((a.altitude_km - b.altitude_km).abs() >= c.config.shell_spacing_km - 1e-9);
        }
    }

    #[test]
    fn bad_config_rejected() {
        let g = grid_with_rows(&[(23, 1.0)]);
        assert!(design_walker_constellation(
            &g,
            WalkerBaselineConfig { sat_capacity: 0.0, ..Default::default() }
        )
        .is_err());
        assert!(design_walker_constellation(
            &g,
            WalkerBaselineConfig { candidate_inclinations_deg: vec![], ..Default::default() }
        )
        .is_err());
    }

    #[test]
    fn polar_demand_handled_gracefully() {
        // Demand at ±87.5° (rows 0/35) is beyond all candidate
        // inclinations + swath: the designer must not loop forever.
        let g = grid_with_rows(&[(35, 1.0)]);
        let c = design_walker_constellation(&g, Default::default()).unwrap();
        // Either an 85° shell covers it or it is declared unserviceable;
        // both are acceptable terminations.
        let _ = c.total_sats();
    }
}
