//! Property-based tests for the constellation designers.

use proptest::prelude::*;
use ssplane_astro::sunsync::sun_synchronous_orbit;
use ssplane_core::designer::{design_ss_constellation, DesignConfig};
use ssplane_core::ssplane::{planes_through, SsPlane};
use ssplane_core::walker_baseline::coverage_kernel;
use ssplane_demand::grid::LatTodGrid;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn covered_cells_valid_and_monotone_in_swath(
        ltan in 0.0f64..24.0,
        swath in 0.03f64..0.2,
    ) {
        let orbit = sun_synchronous_orbit(560.0).unwrap();
        let plane = SsPlane { orbit: orbit.with_ltan(ltan), n_sats: 10 };
        let grid = LatTodGrid::from_values(36, 24, vec![0.0; 36 * 24]).unwrap();
        let narrow = plane.covered_cells(&grid, swath);
        let wide = plane.covered_cells(&grid, swath + 0.05);
        prop_assert!(!narrow.is_empty());
        for &(i, j) in &narrow {
            prop_assert!(i < 36 && j < 24);
        }
        // Monotonicity: widening the swath never loses cells.
        for c in &narrow {
            prop_assert!(wide.contains(c), "cell {c:?} lost when widening");
        }
    }

    #[test]
    fn planes_through_cover_their_target(
        lat_frac in -0.95f64..0.95,
        tod in 0.0f64..24.0,
    ) {
        let orbit = sun_synchronous_orbit(560.0).unwrap();
        let lat = lat_frac * orbit.max_latitude();
        let planes = planes_through(orbit, lat, tod, 10).unwrap();
        for plane in planes {
            // The target point is on the track: its nearest track point is
            // within a tiny angular distance.
            let best = plane
                .track_points(2048)
                .into_iter()
                .map(|p| {
                    let dl = p.lat - lat;
                    let mut dh = (p.local_time_h - tod).abs();
                    if dh > 12.0 { dh = 24.0 - dh; }
                    let dt = dh / 24.0 * core::f64::consts::TAU * lat.cos();
                    (dl * dl + dt * dt).sqrt()
                })
                .fold(f64::INFINITY, f64::min);
            prop_assert!(best < 0.02, "track misses target by {best} rad");
        }
    }

    #[test]
    fn greedy_satisfies_any_small_demand(
        cells in proptest::collection::vec((4usize..32, 0usize..24, 0.1f64..3.0), 1..6),
    ) {
        let mut v = vec![0.0; 36 * 24];
        for &(i, j, d) in &cells {
            v[i * 24 + j] = d;
        }
        let grid = LatTodGrid::from_values(36, 24, v).unwrap();
        let c = design_ss_constellation(
            &grid,
            DesignConfig { max_planes: 2000, ..Default::default() },
        )
        .unwrap();
        // Termination with a sane plane count: at most ceil(total) + cells.
        let bound = grid.total().ceil() as usize + cells.len() * 2 + 2;
        prop_assert!(c.planes.len() <= bound, "{} planes for bound {}", c.planes.len(), bound);
        prop_assert_eq!(c.unserved_demand, 0.0);
    }

    #[test]
    fn kernel_bounded_and_zero_beyond_reach(
        lat in -1.5f64..1.5,
        inc in 0.1f64..3.0,
        theta in 0.05f64..0.3,
    ) {
        let k = coverage_kernel(lat, inc, theta);
        prop_assert!(k >= 0.0 && k.is_finite());
        // A single satellite covers at most the cap fraction enhanced by
        // dwell: bound loosely by 1.
        prop_assert!(k <= 1.0, "kernel {k}");
        let i_eff = inc.min(core::f64::consts::PI - inc);
        if lat.abs() > i_eff + theta {
            prop_assert_eq!(k, 0.0);
        }
    }
}
