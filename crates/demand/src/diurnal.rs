//! Diurnal (time-of-day) traffic seasonality.
//!
//! A generative stand-in for the CESNET-TimeSeries24 dataset (the paper's
//! ref. \[17\]): 283 sites of throughput telemetry whose median-normalized
//! load exhibits a strong waking/sleeping cycle. The model reproduces the
//! two curves the paper plots in Fig. 4 — the median and the 95th
//! percentile of load (as % of each site's median) grouped by local time
//! of day — and exposes the normalized diurnal weight used by the demand
//! grid of Fig. 8.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Smooth analytic diurnal shape in log-load space.
///
/// Two harmonics: the fundamental (waking/sleeping) plus a second harmonic
/// that flattens the working-hours plateau and deepens the pre-dawn
/// trough, matching access-network telemetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalModel {
    /// Amplitude of the 24 h harmonic (log space).
    pub a1: f64,
    /// Hour of the fundamental's peak.
    pub peak_hour: f64,
    /// Amplitude of the 12 h harmonic (log space).
    pub a2: f64,
    /// Phase hour of the second harmonic.
    pub second_peak_hour: f64,
}

impl Default for DiurnalModel {
    fn default() -> Self {
        // Calibrated to Fig. 4: median curve swings ~39% → ~258% of site
        // median with the trough near 03:30 and the peak near 16:00 local.
        DiurnalModel { a1: 0.92, peak_hour: 15.0, a2: 0.12, second_peak_hour: 18.0 }
    }
}

impl DiurnalModel {
    /// Log-space load shape at `hour` (unnormalized).
    fn log_shape(&self, hour: f64) -> f64 {
        use core::f64::consts::TAU;
        self.a1 * (TAU * (hour - self.peak_hour) / 24.0).cos()
            + self.a2 * (2.0 * TAU * (hour - self.second_peak_hour) / 24.0).cos()
    }

    /// Load relative to the *daily median* at local `hour` (1.0 = median).
    ///
    /// This is the noise-free median curve of Fig. 4 divided by 100%.
    pub fn relative_load(&self, hour: f64) -> f64 {
        (self.log_shape(hour) - self.median_log_shape()).exp()
    }

    /// The median curve of Fig. 4: % of site median at local `hour`.
    pub fn median_percent(&self, hour: f64) -> f64 {
        100.0 * self.relative_load(hour)
    }

    /// Normalized diurnal weight in `(0, 1]` (1.0 at the daily peak) —
    /// the factor the demand grid multiplies population density by.
    pub fn weight(&self, hour: f64) -> f64 {
        (self.log_shape(hour) - self.peak_log_shape()).exp()
    }

    /// Hour (to one-minute resolution) of the daily peak.
    pub fn argmax_hour(&self) -> f64 {
        let mut best = (f64::NEG_INFINITY, 0.0);
        for k in 0..(24 * 60) {
            let h = k as f64 / 60.0;
            let v = self.log_shape(h);
            if v > best.0 {
                best = (v, h);
            }
        }
        best.1
    }

    fn peak_log_shape(&self) -> f64 {
        // The peak is a pure function of the model parameters but costs a
        // 1440-point scan plus refinement, and weight() sits in hot loops
        // (demand-grid builds, flow rejection sampling) — so memoize the
        // last model's peak per thread. The one-slot cache hits ~always:
        // callers overwhelmingly use a single model per run.
        use std::cell::Cell;
        thread_local! {
            static LAST: Cell<Option<(DiurnalModel, f64)>> = const { Cell::new(None) };
        }
        LAST.with(|slot| {
            if let Some((model, peak)) = slot.get() {
                if model == *self {
                    return peak;
                }
            }
            let peak = self.compute_peak_log_shape();
            slot.set(Some((*self, peak)));
            peak
        })
    }

    fn compute_peak_log_shape(&self) -> f64 {
        // The minute grid brackets the global peak but does not hit it
        // exactly, and weight() must stay ≤ 1 for *every* hour, not just
        // grid hours; refine within the bracket (the shape is smooth and
        // locally unimodal there) before reading off the maximum.
        let h0 = self.argmax_hour();
        let (mut lo, mut hi) = (h0 - 1.0 / 60.0, h0 + 1.0 / 60.0);
        for _ in 0..64 {
            let m1 = lo + (hi - lo) / 3.0;
            let m2 = hi - (hi - lo) / 3.0;
            if self.log_shape(m1) < self.log_shape(m2) {
                lo = m1;
            } else {
                hi = m2;
            }
        }
        self.log_shape(0.5 * (lo + hi))
    }

    fn median_log_shape(&self) -> f64 {
        let mut vals: Vec<f64> = (0..(24 * 12)).map(|k| self.log_shape(k as f64 / 12.0)).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        vals[vals.len() / 2]
    }
}

/// Percentile curves of median-normalized load grouped by time of day —
/// the reproduction of Fig. 4.
#[derive(Debug, Clone)]
pub struct DiurnalStats {
    /// Bin center hours (length = `bins`).
    pub hours: Vec<f64>,
    /// Median of load (% of each site's median) per hour bin.
    pub median_percent: Vec<f64>,
    /// 95th percentile per hour bin.
    pub p95_percent: Vec<f64>,
}

/// Configuration for the synthetic multi-site telemetry generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteSimConfig {
    /// Number of sites (the paper's dataset has 283).
    pub n_sites: usize,
    /// Days of hourly telemetry per site (the paper uses a year).
    pub n_days: usize,
    /// Hour bins for the output curves.
    pub bins: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SiteSimConfig {
    fn default() -> Self {
        SiteSimConfig { n_sites: 283, n_days: 365, bins: 24, seed: 7 }
    }
}

/// Standard normal sample via Box–Muller (keeps the dependency surface to
/// `rand` alone).
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

/// Simulates `n_sites` of hourly throughput telemetry and returns the
/// Fig. 4 percentile curves.
///
/// Each site gets heterogeneous scale (lognormal), diurnal amplitude,
/// phase (timezone/behaviour jitter), weekday/weekend modulation, and
/// heavy-tailed per-sample noise; every sample is normalized by its own
/// site's median before aggregation, exactly as the paper describes.
pub fn simulate_sites(model: &DiurnalModel, config: SiteSimConfig) -> DiurnalStats {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let bins = config.bins.max(1);
    // per-bin collection of normalized samples
    let mut samples: Vec<Vec<f64>> = vec![Vec::new(); bins];

    for _ in 0..config.n_sites {
        let scale = (1.5 * normal(&mut rng)).exp(); // site size heterogeneity
        let amp = (0.25 * normal(&mut rng)).exp(); // diurnal amplitude heterogeneity
        let phase = 0.8 * normal(&mut rng); // behavioural phase jitter [h]
        let noise_sigma = 0.5 + rng.gen::<f64>(); // per-site tail heaviness
        let weekend_drop = 0.3 + 0.4 * rng.gen::<f64>(); // weekend load factor

        let mut site_values = Vec::with_capacity(config.n_days * 24);
        for day in 0..config.n_days {
            let weekday = day % 7 < 5;
            let day_factor = if weekday { 1.0 } else { weekend_drop };
            for hour in 0..24 {
                let h = hour as f64 + 0.5;
                let log_v = amp * model.log_shape(h + phase)
                    + noise_sigma * normal(&mut rng)
                    + day_factor.ln();
                site_values.push((hour, scale * log_v.exp()));
            }
        }
        // Normalize by the site median.
        let mut sorted: Vec<f64> = site_values.iter().map(|&(_, v)| v).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let site_median = sorted[sorted.len() / 2].max(1e-30);
        for (hour, v) in site_values {
            let bin = hour * bins / 24;
            samples[bin].push(v / site_median * 100.0);
        }
    }

    let percentile = |v: &mut Vec<f64>, p: f64| -> f64 {
        if v.is_empty() {
            return f64::NAN;
        }
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let idx = ((v.len() as f64 - 1.0) * p).round() as usize;
        v[idx]
    };

    let mut median_percent = Vec::with_capacity(bins);
    let mut p95_percent = Vec::with_capacity(bins);
    let mut hours = Vec::with_capacity(bins);
    for (b, bucket) in samples.iter_mut().enumerate() {
        hours.push(24.0 * (b as f64 + 0.5) / bins as f64);
        median_percent.push(percentile(bucket, 0.5));
        p95_percent.push(percentile(bucket, 0.95));
    }
    DiurnalStats { hours, median_percent, p95_percent }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_curve_fig4_calibration() {
        let m = DiurnalModel::default();
        // Trough in the pre-dawn hours, well below the median.
        let trough = (0..24).map(|h| m.median_percent(h as f64)).fold(f64::INFINITY, f64::min);
        assert!(trough > 20.0 && trough < 70.0, "trough = {trough}%");
        // Peak in the afternoon/evening, ~2-3x the median.
        let peak = (0..24).map(|h| m.median_percent(h as f64)).fold(0.0, f64::max);
        assert!(peak > 180.0 && peak < 400.0, "peak = {peak}%");
        // Trough hour is at night, peak in waking hours.
        let argmax = m.argmax_hour();
        assert!((12.0..23.0).contains(&argmax), "peak hour = {argmax}");
    }

    #[test]
    fn weight_normalized_to_unit_peak() {
        let m = DiurnalModel::default();
        let max = (0..24 * 60).map(|k| m.weight(k as f64 / 60.0)).fold(0.0, f64::max);
        assert!((max - 1.0).abs() < 1e-6, "max weight = {max}");
        for h in 0..24 {
            let w = m.weight(h as f64);
            assert!(w > 0.0 && w <= 1.0 + 1e-12);
        }
        // Night-to-peak ratio ~ 1:6-1:12 (cf. Fig. 8's dark band at night).
        let night = m.weight(4.0);
        assert!(night < 0.2, "night weight = {night}");
    }

    #[test]
    fn weight_is_24h_periodic() {
        let m = DiurnalModel::default();
        for h in [0.0, 3.7, 12.0, 23.9] {
            assert!((m.weight(h) - m.weight(h + 24.0)).abs() < 1e-12);
            assert!((m.weight(h) - m.weight(h - 24.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn simulated_percentiles_match_fig4_shape() {
        let stats = simulate_sites(
            &DiurnalModel::default(),
            SiteSimConfig { n_sites: 60, n_days: 60, bins: 24, seed: 7 },
        );
        assert_eq!(stats.hours.len(), 24);
        // Median curve straddles 100% (it is % of site median).
        let med_min = stats.median_percent.iter().cloned().fold(f64::INFINITY, f64::min);
        let med_max = stats.median_percent.iter().cloned().fold(0.0, f64::max);
        assert!(med_min < 100.0 && med_max > 100.0, "median range [{med_min}, {med_max}]");
        // p95 well above the median everywhere (heavy-tailed sites), and in
        // the Fig. 4 range (several 100% to ~10000%).
        for (m, p) in stats.median_percent.iter().zip(&stats.p95_percent) {
            assert!(p > m, "p95 {p} <= median {m}");
        }
        let p95_max = stats.p95_percent.iter().cloned().fold(0.0, f64::max);
        assert!(p95_max > 500.0 && p95_max < 50_000.0, "p95 peak = {p95_max}");
        // Diurnal structure survives aggregation: daytime median > night median.
        let day = stats.median_percent[15];
        let night = stats.median_percent[4];
        assert!(day > 2.0 * night, "day {day} vs night {night}");
    }

    #[test]
    fn simulation_is_deterministic() {
        let cfg = SiteSimConfig { n_sites: 10, n_days: 10, bins: 24, seed: 3 };
        let a = simulate_sites(&DiurnalModel::default(), cfg);
        let b = simulate_sites(&DiurnalModel::default(), cfg);
        assert_eq!(a.median_percent, b.median_percent);
        assert_eq!(a.p95_percent, b.p95_percent);
    }

    #[test]
    fn relative_load_median_is_one() {
        // The median over a day of relative_load must be ~1 by construction.
        let m = DiurnalModel::default();
        let mut v: Vec<f64> = (0..24 * 12).map(|k| m.relative_load(k as f64 / 12.0)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = v[v.len() / 2];
        assert!((med - 1.0).abs() < 0.02, "median relative load = {med}");
    }
}
