//! Error types for the demand substrate.

use core::fmt;

/// Result alias with [`DemandError`].
pub type Result<T> = core::result::Result<T, DemandError>;

/// Errors produced by demand-model construction and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DemandError {
    /// A grid was requested with a zero-sized dimension.
    EmptyGrid {
        /// Which dimension was empty.
        dimension: &'static str,
    },
    /// A query parameter was out of its domain.
    OutOfDomain {
        /// Parameter name.
        name: &'static str,
        /// Expected domain description.
        expected: &'static str,
    },
}

impl fmt::Display for DemandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DemandError::EmptyGrid { dimension } => {
                write!(f, "grid dimension {dimension} must be non-zero")
            }
            DemandError::OutOfDomain { name, expected } => {
                write!(f, "parameter {name} out of domain: expected {expected}")
            }
        }
    }
}

impl std::error::Error for DemandError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(DemandError::EmptyGrid { dimension: "lat" }.to_string().contains("lat"));
        assert!(DemandError::OutOfDomain { name: "hour", expected: "[0,24)" }
            .to_string()
            .contains("hour"));
    }
}
