//! Demand forecasting — the §5(4) control-plane primitive.
//!
//! The paper's research agenda asks for control planes "periodically
//! updated with bandwidth forecasts". Because the demand this workspace
//! models is dominated by deterministic diurnal seasonality, a small
//! harmonic regression captures most of it; this module fits one and
//! reports forecast quality, giving the `lsn` layer a realistic predicted
//! load to schedule against.

use crate::error::{DemandError, Result};

/// A fitted harmonic (Fourier) day-periodic model:
/// `ŷ(h) = c₀ + Σₖ aₖ cos(2πkh/24) + bₖ sin(2πkh/24)`.
#[derive(Debug, Clone, PartialEq)]
pub struct HarmonicForecaster {
    /// Mean term.
    pub c0: f64,
    /// Cosine coefficients per harmonic (k = 1..).
    pub a: Vec<f64>,
    /// Sine coefficients per harmonic.
    pub b: Vec<f64>,
}

impl HarmonicForecaster {
    /// Fits `harmonics` day-periodic harmonics to hourly samples
    /// `(hour-of-day, value)` by direct Fourier projection (exact least
    /// squares when hours are uniformly sampled).
    ///
    /// # Errors
    /// Rejects empty inputs and zero harmonics.
    pub fn fit(samples: &[(f64, f64)], harmonics: usize) -> Result<Self> {
        if samples.is_empty() {
            return Err(DemandError::EmptyGrid { dimension: "samples" });
        }
        if harmonics == 0 {
            return Err(DemandError::OutOfDomain { name: "harmonics", expected: ">= 1" });
        }
        let n = samples.len() as f64;
        let c0 = samples.iter().map(|&(_, v)| v).sum::<f64>() / n;
        let mut a = Vec::with_capacity(harmonics);
        let mut b = Vec::with_capacity(harmonics);
        for k in 1..=harmonics {
            let w = core::f64::consts::TAU * k as f64 / 24.0;
            let ak = 2.0 / n * samples.iter().map(|&(h, v)| (v - c0) * (w * h).cos()).sum::<f64>();
            let bk = 2.0 / n * samples.iter().map(|&(h, v)| (v - c0) * (w * h).sin()).sum::<f64>();
            a.push(ak);
            b.push(bk);
        }
        Ok(HarmonicForecaster { c0, a, b })
    }

    /// Predicted value at hour-of-day `h`.
    pub fn predict(&self, h: f64) -> f64 {
        let mut y = self.c0;
        for (k, (&ak, &bk)) in self.a.iter().zip(&self.b).enumerate() {
            let w = core::f64::consts::TAU * (k + 1) as f64 / 24.0;
            y += ak * (w * h).cos() + bk * (w * h).sin();
        }
        y
    }

    /// Mean absolute percentage error against held-out samples
    /// (values ≤ `floor` are skipped to avoid division blowups).
    pub fn mape(&self, samples: &[(f64, f64)], floor: f64) -> f64 {
        let mut acc = 0.0;
        let mut n = 0usize;
        for &(h, v) in samples {
            if v.abs() <= floor {
                continue;
            }
            acc += ((self.predict(h) - v) / v).abs();
            n += 1;
        }
        if n == 0 {
            f64::NAN
        } else {
            acc / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diurnal::DiurnalModel;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn diurnal_samples(days: usize, noise: f64, seed: u64) -> Vec<(f64, f64)> {
        let model = DiurnalModel::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for _ in 0..days {
            for hour in 0..24 {
                let h = hour as f64 + 0.5;
                let v = model.relative_load(h) * (1.0 + noise * (rng.gen::<f64>() - 0.5));
                out.push((h, v));
            }
        }
        out
    }

    #[test]
    fn fits_pure_harmonic_exactly() {
        let samples: Vec<(f64, f64)> = (0..240)
            .map(|k| {
                let h = k as f64 / 10.0;
                (h, 5.0 + 2.0 * (core::f64::consts::TAU * h / 24.0).cos())
            })
            .collect();
        let f = HarmonicForecaster::fit(&samples, 2).unwrap();
        assert!((f.c0 - 5.0).abs() < 1e-9);
        assert!((f.a[0] - 2.0).abs() < 1e-9);
        assert!(f.b[0].abs() < 1e-9);
        assert!(f.a[1].abs() < 1e-9, "no spurious second harmonic");
        for &(h, v) in &samples {
            assert!((f.predict(h) - v).abs() < 1e-9);
        }
    }

    #[test]
    fn forecasts_diurnal_demand_well() {
        // Train on 20 noisy days, test on 10 held-out days.
        let train = diurnal_samples(20, 0.2, 1);
        let test = diurnal_samples(10, 0.2, 2);
        let f = HarmonicForecaster::fit(&train, 3).unwrap();
        let mape = f.mape(&test, 1e-6);
        assert!(mape < 0.15, "held-out MAPE = {mape}");
        // The fitted curve tracks the true peak/trough ordering.
        assert!(f.predict(15.5) > 2.0 * f.predict(3.5));
    }

    #[test]
    fn more_harmonics_fit_no_worse_in_sample() {
        let train = diurnal_samples(10, 0.05, 3);
        let f1 = HarmonicForecaster::fit(&train, 1).unwrap();
        let f3 = HarmonicForecaster::fit(&train, 3).unwrap();
        let m1 = f1.mape(&train, 1e-6);
        let m3 = f3.mape(&train, 1e-6);
        assert!(m3 <= m1 + 0.02, "m1 {m1} vs m3 {m3}");
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(HarmonicForecaster::fit(&[], 2).is_err());
        assert!(HarmonicForecaster::fit(&[(0.0, 1.0)], 0).is_err());
        // Degenerate MAPE: all below floor.
        let f = HarmonicForecaster::fit(&[(0.0, 1.0), (12.0, 1.0)], 1).unwrap();
        assert!(f.mape(&[(0.0, 0.0)], 1e-6).is_nan());
    }
}
