//! Gravity-model synthesis of city-pair traffic flows — the
//! population-scale workload generator.
//!
//! The network stage historically routed a hand-counted flow sample; a
//! production-scale evaluation needs 10⁵–10⁶ flows whose *rates* carry
//! real demand weight. This module derives that workload from the same
//! [`PopulationGrid`] × [`DiurnalModel`] substrate everything else uses
//! (via [`DemandModel`]):
//!
//! 1. **Attraction sites** — the top-N grid cells by demand *mass*
//!    (density × diurnal weight × cell area) at the configured UTC hour:
//!    the synthetic stand-ins for metro areas.
//! 2. **Pair sampling** — source and destination sites drawn with
//!    probability proportional to site mass (the product form
//!    `m_i · m_j` of the classic gravity model), importance-weighted by
//!    an exponential distance-deterrence term.
//! 3. **Conservation** — flow rates are normalized so the emitted total
//!    equals the whole grid's demand mass at that hour, so aggregate
//!    statistics stay comparable across `pairs` settings and the grid
//!    total is conserved exactly (up to float summation).
//!
//! Determinism contract: the flow list is a pure function of
//! `(model, config)` — byte-identical across runs **and thread counts**.
//! Generation is chunked; every chunk owns a seed derived from
//! `config.seed` and its chunk index, workers claim chunk indices off an
//! atomic queue, and chunks are concatenated in index order.
//!
//! [`PopulationGrid`]: crate::population::PopulationGrid
//! [`DiurnalModel`]: crate::diurnal::DiurnalModel

use crate::error::{DemandError, Result};
use crate::spatiotemporal::DemandModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssplane_astro::geo::GeoPoint;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Flows generated per RNG chunk — the unit of parallelism *and* of the
/// determinism contract (each chunk's stream is independent of who runs
/// it).
const CHUNK: usize = 8192;

/// Per-chunk seed salt (distinct from every other stream salt in the
/// workspace).
const CHUNK_SALT: u64 = 0x6772_6176_6974_7921; // "gravity!"

/// Configuration of one gravity-model synthesis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GravityConfig {
    /// City-pair flows to emit.
    pub pairs: usize,
    /// Attraction sites: the top-N demand cells pairs are drawn from.
    pub sites: usize,
    /// UTC hour the demand field is evaluated at.
    pub utc_hour: f64,
    /// Distance-deterrence scale \[km\]: pair weight carries
    /// `exp(-d / deterrence_km)`.
    pub deterrence_km: f64,
    /// RNG seed; the flow list is byte-identical per seed.
    pub seed: u64,
}

impl Default for GravityConfig {
    fn default() -> Self {
        GravityConfig {
            pairs: 100_000,
            sites: 256,
            utc_hour: 12.0,
            deterrence_km: 8000.0,
            seed: 42,
        }
    }
}

/// One attraction site: a top-demand grid cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GravitySite {
    /// Cell-center latitude \[deg\].
    pub lat_deg: f64,
    /// Cell-center longitude \[deg\].
    pub lon_deg: f64,
    /// Demand mass at the configured hour (density × diurnal weight ×
    /// cell area).
    pub mass: f64,
}

/// One synthesized city-pair flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GravityFlow {
    /// Source latitude \[deg\].
    pub src_lat_deg: f64,
    /// Source longitude \[deg\].
    pub src_lon_deg: f64,
    /// Destination latitude \[deg\].
    pub dst_lat_deg: f64,
    /// Destination longitude \[deg\].
    pub dst_lon_deg: f64,
    /// Offered rate, in the same units as [`grid_demand_total`].
    pub rate: f64,
}

/// The whole grid's demand mass at `utc_hour` — the total the emitted
/// flow rates conserve (summed in fixed south-to-north, west-to-east
/// cell order).
pub fn grid_demand_total(model: &DemandModel, utc_hour: f64) -> f64 {
    let grid = &model.population;
    let mut total = 0.0;
    for i in 0..grid.lat_bins() {
        let area = grid.cell_area_km2(i);
        let lat = grid.lat_center_deg(i);
        for j in 0..grid.lon_bins() {
            total += model.demand_at_utc(lat, grid.lon_center_deg(j), utc_hour) * area;
        }
    }
    total
}

/// The top `n_sites` grid cells by demand mass at `utc_hour`, heaviest
/// first (ties break on cell index, so the selection is deterministic).
/// Cells with zero mass never become sites.
pub fn gravity_sites(model: &DemandModel, utc_hour: f64, n_sites: usize) -> Vec<GravitySite> {
    let grid = &model.population;
    let mut cells: Vec<(f64, usize, usize)> = Vec::with_capacity(grid.lat_bins() * grid.lon_bins());
    for i in 0..grid.lat_bins() {
        let area = grid.cell_area_km2(i);
        let lat = grid.lat_center_deg(i);
        for j in 0..grid.lon_bins() {
            let mass = model.demand_at_utc(lat, grid.lon_center_deg(j), utc_hour) * area;
            if mass > 0.0 {
                cells.push((mass, i, j));
            }
        }
    }
    cells.sort_by(|a, b| {
        b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal).then((a.1, a.2).cmp(&(b.1, b.2)))
    });
    cells.truncate(n_sites);
    cells
        .into_iter()
        .map(|(mass, i, j)| GravitySite {
            lat_deg: grid.lat_center_deg(i),
            lon_deg: grid.lon_center_deg(j),
            mass,
        })
        .collect()
}

/// Draws one site index proportionally to site mass: binary search on
/// the cumulative-mass prefix.
fn pick_site(prefix: &[f64], rng: &mut StdRng) -> usize {
    let total = *prefix.last().expect("at least one site");
    let u = rng.gen::<f64>() * total;
    prefix.partition_point(|&p| p <= u).min(prefix.len() - 1)
}

/// One raw draw: source site, destination site, gravity weight.
type RawDraw = (u32, u32, f64);

/// One chunk of raw `(src, dst, weight)` draws on its own seeded stream.
fn generate_chunk(
    chunk: usize,
    count: usize,
    sites: &[GravitySite],
    prefix: &[f64],
    distance: &[Vec<f64>],
    config: &GravityConfig,
) -> Vec<RawDraw> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ (chunk as u64 + 1).wrapping_mul(CHUNK_SALT));
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let src = pick_site(prefix, &mut rng);
        let dst = loop {
            let d = pick_site(prefix, &mut rng);
            if d != src {
                break d;
            }
        };
        let w =
            sites[src].mass * sites[dst].mass * (-distance[src][dst] / config.deterrence_km).exp();
        out.push((src as u32, dst as u32, w));
    }
    out
}

/// Synthesizes `config.pairs` gravity-model flows over `threads` workers
/// (`0` = the machine). The output is byte-identical for every thread
/// count and the rates sum to [`grid_demand_total`] at `config.utc_hour`.
///
/// # Errors
/// [`DemandError::EmptyGrid`] when `pairs` is zero or fewer than two
/// sites carry demand mass, and [`DemandError::OutOfDomain`] for a
/// non-positive deterrence scale.
pub fn gravity_flows(
    model: &DemandModel,
    config: &GravityConfig,
    threads: usize,
) -> Result<Vec<GravityFlow>> {
    if config.pairs == 0 {
        return Err(DemandError::EmptyGrid { dimension: "pairs" });
    }
    if config.deterrence_km <= 0.0 {
        return Err(DemandError::OutOfDomain {
            name: "deterrence_km",
            expected: "a positive distance scale [km]",
        });
    }
    let sites = gravity_sites(model, config.utc_hour, config.sites);
    if sites.len() < 2 {
        return Err(DemandError::EmptyGrid { dimension: "sites" });
    }

    // Shared sampling tables: cumulative mass and the site-to-site
    // great-circle distance matrix (a few hundred sites → trivially
    // small next to the draw count).
    let mut prefix = Vec::with_capacity(sites.len());
    let mut acc = 0.0;
    for s in &sites {
        acc += s.mass;
        prefix.push(acc);
    }
    let points: Vec<GeoPoint> =
        sites.iter().map(|s| GeoPoint::from_degrees(s.lat_deg, s.lon_deg)).collect();
    let distance: Vec<Vec<f64>> =
        points.iter().map(|a| points.iter().map(|b| a.distance_km(b)).collect()).collect();

    // Chunked generation: workers claim chunk indices off an atomic
    // queue and write into that chunk's slot; concatenation in chunk
    // order makes the output independent of scheduling.
    let n_chunks = config.pairs.div_ceil(CHUNK);
    let chunk_len = |c: usize| CHUNK.min(config.pairs - c * CHUNK);
    let auto = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    let workers = if threads == 0 { auto } else { threads }.clamp(1, n_chunks);
    let chunks: Vec<Vec<RawDraw>> = if workers <= 1 {
        (0..n_chunks)
            .map(|c| generate_chunk(c, chunk_len(c), &sites, &prefix, &distance, config))
            .collect()
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Vec<RawDraw>>>> =
            (0..n_chunks).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= n_chunks {
                        break;
                    }
                    let out = generate_chunk(c, chunk_len(c), &sites, &prefix, &distance, config);
                    *slots[c].lock().expect("chunk slot poisoned") = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("chunk slot poisoned").expect("chunk claimed"))
            .collect()
    };

    // Normalize in chunk-then-draw order so the float summation is the
    // same serial reduction for every thread count.
    let weight_sum: f64 = chunks.iter().flatten().map(|&(_, _, w)| w).sum();
    if weight_sum <= 0.0 {
        return Err(DemandError::OutOfDomain {
            name: "deterrence_km",
            expected: "a scale that leaves at least one pair with positive weight",
        });
    }
    let scale = grid_demand_total(model, config.utc_hour) / weight_sum;
    Ok(chunks
        .iter()
        .flatten()
        .map(|&(s, d, w)| {
            let (s, d) = (&sites[s as usize], &sites[d as usize]);
            GravityFlow {
                src_lat_deg: s.lat_deg,
                src_lon_deg: s.lon_deg,
                dst_lat_deg: d.lat_deg,
                dst_lon_deg: d.lon_deg,
                rate: w * scale,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diurnal::DiurnalModel;
    use crate::population::{PopulationConfig, PopulationGrid};
    use proptest::prelude::*;

    fn model() -> DemandModel {
        DemandModel::new(
            PopulationGrid::synthetic(PopulationConfig {
                lat_bins: 90,
                lon_bins: 180,
                n_cities: 400,
                seed: 42,
            })
            .unwrap(),
            DiurnalModel::default(),
        )
    }

    fn config(pairs: usize, seed: u64) -> GravityConfig {
        GravityConfig { pairs, sites: 64, seed, ..Default::default() }
    }

    #[test]
    fn sites_are_the_heaviest_cells_in_order() {
        let m = model();
        let sites = gravity_sites(&m, 12.0, 48);
        assert_eq!(sites.len(), 48);
        for pair in sites.windows(2) {
            assert!(pair[0].mass >= pair[1].mass, "sites must be sorted heaviest-first");
        }
        assert!(sites[0].mass > 0.0);
        // Sites sit at inhabited latitudes.
        for s in &sites {
            assert!(s.lat_deg.abs() < 65.0, "site at {}", s.lat_deg);
        }
    }

    #[test]
    fn flows_conserve_the_grid_total_and_are_deterministic() {
        let m = model();
        let flows = gravity_flows(&m, &config(10_000, 7), 1).unwrap();
        assert_eq!(flows.len(), 10_000);
        let total: f64 = flows.iter().map(|f| f.rate).sum();
        let grid_total = grid_demand_total(&m, 12.0);
        assert!(
            (total - grid_total).abs() / grid_total < 1e-9,
            "emitted {total} vs grid {grid_total}"
        );
        for f in &flows {
            assert!(f.rate > 0.0);
            assert!(
                (f.src_lat_deg, f.src_lon_deg) != (f.dst_lat_deg, f.dst_lon_deg),
                "self-pair emitted"
            );
        }
        let again = gravity_flows(&m, &config(10_000, 7), 1).unwrap();
        assert_eq!(flows, again);
        let other_seed = gravity_flows(&m, &config(10_000, 8), 1).unwrap();
        assert_ne!(flows, other_seed);
    }

    #[test]
    fn thread_count_does_not_change_the_bytes() {
        let m = model();
        // Spans multiple chunks so the queue actually interleaves.
        let cfg = config(3 * CHUNK + 100, 21);
        let serial = gravity_flows(&m, &cfg, 1).unwrap();
        for threads in [0, 2, 4, 7] {
            let parallel = gravity_flows(&m, &cfg, threads).unwrap();
            assert_eq!(serial.len(), parallel.len());
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.rate.to_bits(), b.rate.to_bits(), "{threads} threads changed bytes");
                assert_eq!(a.src_lat_deg.to_bits(), b.src_lat_deg.to_bits());
                assert_eq!(a.dst_lon_deg.to_bits(), b.dst_lon_deg.to_bits());
            }
        }
    }

    #[test]
    fn bad_configs_are_rejected() {
        let m = model();
        assert!(gravity_flows(&m, &GravityConfig { pairs: 0, ..Default::default() }, 1).is_err());
        assert!(gravity_flows(&m, &GravityConfig { sites: 1, ..Default::default() }, 1).is_err());
        assert!(gravity_flows(&m, &GravityConfig { deterrence_km: 0.0, ..Default::default() }, 1)
            .is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Conservation holds for any seed, pair count, and site budget:
        /// the emitted rates always sum to the grid's demand mass.
        #[test]
        fn conservation_is_seed_and_size_independent(
            seed in 0u64..1000,
            pairs in 1usize..3000,
            sites in 2usize..96,
        ) {
            let m = model();
            let cfg = GravityConfig { pairs, sites, seed, ..Default::default() };
            let flows = gravity_flows(&m, &cfg, 1).unwrap();
            prop_assert_eq!(flows.len(), pairs);
            let total: f64 = flows.iter().map(|f| f.rate).sum();
            let grid_total = grid_demand_total(&m, cfg.utc_hour);
            prop_assert!((total - grid_total).abs() / grid_total < 1e-9);
        }
    }
}
