//! The sun-relative demand grid (§4.1, Fig. 8): bandwidth demand as a
//! function of **latitude** and **local time of day**.
//!
//! Each `(latitude, time-of-day)` point of this grid sees every longitude
//! as the Earth rotates underneath, so it must be provisioned for the
//! *maximum* demand over longitudes at that latitude, scaled by the diurnal
//! weight at its (fixed) local time. A constellation that satisfies this
//! grid satisfies the rotating Earth-fixed demand — the key reduction that
//! turns constellation design into a 2-D covering problem.

use crate::error::{DemandError, Result};
use crate::spatiotemporal::DemandModel;
use ssplane_astro::frames::SunRelativePoint;

/// A latitude × time-of-day demand grid.
///
/// Values are stored normalized so the peak cell is `1.0`; scale by a
/// *bandwidth multiplier* (demand measured in multiples of one satellite's
/// capacity, as in the paper's Figs. 9-10) via [`LatTodGrid::scaled`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LatTodGrid {
    lat_bins: usize,
    tod_bins: usize,
    /// Row-major `[lat][tod]`, south-to-north, midnight-to-midnight.
    values: Vec<f64>,
}

impl LatTodGrid {
    /// Default latitude resolution used by the paper reproduction (2.5°).
    pub const DEFAULT_LAT_BINS: usize = 72;
    /// Default time-of-day resolution (30 min).
    pub const DEFAULT_TOD_BINS: usize = 48;

    /// Builds the grid from a demand model:
    /// `value(lat, tod) = max_lon population(lat, lon) × diurnal(tod)`,
    /// normalized to a unit peak.
    ///
    /// # Errors
    /// Returns [`DemandError::EmptyGrid`] for zero-sized dimensions.
    pub fn from_model(model: &DemandModel, lat_bins: usize, tod_bins: usize) -> Result<Self> {
        if lat_bins == 0 {
            return Err(DemandError::EmptyGrid { dimension: "lat_bins" });
        }
        if tod_bins == 0 {
            return Err(DemandError::EmptyGrid { dimension: "tod_bins" });
        }
        // Max population density per latitude bin (aggregating the
        // population grid's finer rows into ours).
        let profile = model.population.max_density_per_latitude();
        let mut max_pop = vec![0.0f64; lat_bins];
        for (lat_deg, dens) in profile {
            let i =
                (((lat_deg + 90.0) / 180.0 * lat_bins as f64).floor() as usize).min(lat_bins - 1);
            max_pop[i] = max_pop[i].max(dens);
        }
        let mut values = vec![0.0; lat_bins * tod_bins];
        let mut peak = 0.0f64;
        for (i, &pop) in max_pop.iter().enumerate() {
            for j in 0..tod_bins {
                let hour = 24.0 * (j as f64 + 0.5) / tod_bins as f64;
                let v = pop * model.diurnal.weight(hour);
                values[i * tod_bins + j] = v;
                peak = peak.max(v);
            }
        }
        if peak > 0.0 {
            for v in &mut values {
                *v /= peak;
            }
        }
        Ok(LatTodGrid { lat_bins, tod_bins, values })
    }

    /// Builds a grid directly from raw values (row-major `[lat][tod]`),
    /// used by tests and ablations. Values are **not** renormalized.
    ///
    /// # Errors
    /// Returns [`DemandError::EmptyGrid`] if dimensions are zero or
    /// [`DemandError::OutOfDomain`] if the value count mismatches.
    pub fn from_values(lat_bins: usize, tod_bins: usize, values: Vec<f64>) -> Result<Self> {
        if lat_bins == 0 {
            return Err(DemandError::EmptyGrid { dimension: "lat_bins" });
        }
        if tod_bins == 0 {
            return Err(DemandError::EmptyGrid { dimension: "tod_bins" });
        }
        if values.len() != lat_bins * tod_bins {
            return Err(DemandError::OutOfDomain {
                name: "values",
                expected: "lat_bins * tod_bins entries",
            });
        }
        Ok(LatTodGrid { lat_bins, tod_bins, values })
    }

    /// Number of latitude bins.
    pub fn lat_bins(&self) -> usize {
        self.lat_bins
    }

    /// Number of time-of-day bins.
    pub fn tod_bins(&self) -> usize {
        self.tod_bins
    }

    /// Value of cell `(lat index, tod index)`.
    pub fn value(&self, i: usize, j: usize) -> f64 {
        self.values[i * self.tod_bins + j]
    }

    /// Mutable access to cell `(i, j)` (used by the greedy designer's
    /// demand-subtraction step).
    pub fn value_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        &mut self.values[i * self.tod_bins + j]
    }

    /// Center latitude \[deg\] of bin `i`.
    pub fn lat_center_deg(&self, i: usize) -> f64 {
        -90.0 + 180.0 * (i as f64 + 0.5) / self.lat_bins as f64
    }

    /// Center hour of time-of-day bin `j`.
    pub fn tod_center_h(&self, j: usize) -> f64 {
        24.0 * (j as f64 + 0.5) / self.tod_bins as f64
    }

    /// Bin indices containing a sun-relative point.
    pub fn cell_of(&self, p: SunRelativePoint) -> (usize, usize) {
        let lat_deg = p.lat.to_degrees();
        let i = (((lat_deg + 90.0) / 180.0 * self.lat_bins as f64).floor() as isize)
            .clamp(0, self.lat_bins as isize - 1) as usize;
        let h = p.local_time_h.rem_euclid(24.0);
        let j = ((h / 24.0 * self.tod_bins as f64).floor() as usize).min(self.tod_bins - 1);
        (i, j)
    }

    /// Returns a copy with all values multiplied by `multiplier`.
    pub fn scaled(&self, multiplier: f64) -> LatTodGrid {
        LatTodGrid {
            lat_bins: self.lat_bins,
            tod_bins: self.tod_bins,
            values: self.values.iter().map(|v| v * multiplier).collect(),
        }
    }

    /// The maximum cell value.
    pub fn peak(&self) -> f64 {
        self.values.iter().cloned().fold(0.0, f64::max)
    }

    /// Sum of all cell values.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Index `(i, j)` of the maximum cell, or `None` if all cells are ≤ 0.
    pub fn argmax(&self) -> Option<(usize, usize)> {
        let (mut best, mut best_idx) = (0.0f64, None);
        for i in 0..self.lat_bins {
            for j in 0..self.tod_bins {
                let v = self.value(i, j);
                if v > best {
                    best = v;
                    best_idx = Some((i, j));
                }
            }
        }
        best_idx
    }

    /// True if every cell is ≤ `eps`.
    pub fn is_satisfied(&self, eps: f64) -> bool {
        self.values.iter().all(|&v| v <= eps)
    }

    /// Iterates `(lat_idx, tod_idx, value)` over all cells.
    pub fn cells(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.lat_bins)
            .flat_map(move |i| (0..self.tod_bins).map(move |j| (i, j, self.value(i, j))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diurnal::DiurnalModel;
    use crate::population::{PopulationConfig, PopulationGrid};

    fn grid() -> LatTodGrid {
        let model = DemandModel::new(
            PopulationGrid::synthetic(PopulationConfig {
                lat_bins: 90,
                lon_bins: 180,
                n_cities: 500,
                seed: 42,
            })
            .unwrap(),
            DiurnalModel::default(),
        );
        LatTodGrid::from_model(&model, 36, 24).unwrap()
    }

    #[test]
    fn normalized_peak_is_one() {
        let g = grid();
        assert!((g.peak() - 1.0).abs() < 1e-12);
        for (_, _, v) in g.cells() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn fig8_structure_lat_and_tod() {
        let g = grid();
        // The peak cell sits at intermediate northern latitude and waking
        // hours.
        let (i, j) = g.argmax().unwrap();
        let lat = g.lat_center_deg(i);
        let hour = g.tod_center_h(j);
        assert!((5.0..55.0).contains(&lat), "peak lat = {lat}");
        assert!((9.0..23.0).contains(&hour), "peak hour = {hour}");
        // Night columns are much quieter than day columns.
        let col_sum = |j: usize| (0..g.lat_bins()).map(|i| g.value(i, j)).sum::<f64>();
        let night = col_sum(4); // ~04:30
        let day = col_sum(15); // ~15:30
        assert!(day > 3.0 * night, "day {day} night {night}");
        // Polar rows empty.
        let row_sum = |i: usize| (0..g.tod_bins()).map(|j| g.value(i, j)).sum::<f64>();
        assert!(row_sum(0) < 1e-3);
        assert!(row_sum(g.lat_bins() - 1) < 0.2 * row_sum(g.lat_bins() / 2 + 4));
    }

    #[test]
    fn scaling_and_satisfaction() {
        let g = grid();
        let s = g.scaled(10.0);
        assert!((s.peak() - 10.0).abs() < 1e-9);
        assert!((s.total() - 10.0 * g.total()).abs() < 1e-6);
        assert!(!s.is_satisfied(1e-9));
        assert!(s.scaled(0.0).is_satisfied(0.0));
    }

    #[test]
    fn cell_of_round_trip() {
        let g = grid();
        for i in [0, 10, 35] {
            for j in [0, 12, 23] {
                let p = SunRelativePoint {
                    lat: g.lat_center_deg(i).to_radians(),
                    local_time_h: g.tod_center_h(j),
                };
                assert_eq!(g.cell_of(p), (i, j));
            }
        }
        // Extremes clamp / wrap safely.
        let north_pole =
            SunRelativePoint { lat: core::f64::consts::FRAC_PI_2 - 1e-4, local_time_h: 24.0 };
        let (i, j) = g.cell_of(north_pole);
        assert_eq!(i, g.lat_bins() - 1);
        assert_eq!(j, 0);
    }

    #[test]
    fn from_values_validation() {
        assert!(LatTodGrid::from_values(0, 4, vec![]).is_err());
        assert!(LatTodGrid::from_values(4, 0, vec![]).is_err());
        assert!(LatTodGrid::from_values(2, 2, vec![0.0; 3]).is_err());
        let g = LatTodGrid::from_values(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(g.value(1, 1), 4.0);
        assert_eq!(g.argmax(), Some((1, 1)));
    }

    #[test]
    fn argmax_none_when_empty() {
        let g = LatTodGrid::from_values(2, 2, vec![0.0; 4]).unwrap();
        assert_eq!(g.argmax(), None);
        assert!(g.is_satisfied(0.0));
    }
}
