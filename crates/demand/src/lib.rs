//! # ssplane-demand
//!
//! The spatiotemporal Internet-bandwidth-demand substrate of the `ss-plane`
//! project (§3.1 of the paper).
//!
//! The paper grounds its demand model in two external datasets that are not
//! redistributable, so this crate implements calibrated synthetic
//! equivalents (see DESIGN.md §2 for the substitution argument):
//!
//! * [`population`] — a procedural stand-in for the SEDAC Gridded World
//!   Population: a 0.5°-resolution density grid whose *max-density-per-
//!   latitude* profile matches the paper's Fig. 3 (population clustered at
//!   intermediate northern latitudes, peak ≈ 6000 /km²).
//! * [`diurnal`] — a generative stand-in for CESNET-TimeSeries24: per-site
//!   throughput seasonality with waking/sleeping cycles whose
//!   median/95th-percentile-of-median-normalized-load curves match Fig. 4.
//! * [`spatiotemporal`] — their product: bandwidth demand as a function of
//!   (latitude, longitude, local solar time), the model behind Fig. 5.
//! * [`grid`] — the **sun-relative demand grid**: demand as a function of
//!   (latitude, local time of day), stationary in the sun-relative frame —
//!   the object the SS-plane designer covers (Fig. 8).
//! * [`gravity`] — the population-scale workload: a seeded gravity model
//!   over the top demand cells emitting 10⁵–10⁶ city-pair flows whose
//!   rates conserve the grid's demand mass, deterministic per seed and
//!   across thread counts.
//!
//! Everything is deterministic given a seed; no files are read.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod diurnal;
pub mod error;
pub mod forecast;
pub mod gravity;
pub mod grid;
pub mod population;
pub mod spatiotemporal;

pub use diurnal::DiurnalModel;
pub use error::{DemandError, Result};
pub use gravity::{gravity_flows, gravity_sites, GravityConfig, GravityFlow};
pub use grid::LatTodGrid;
pub use population::PopulationGrid;
pub use spatiotemporal::DemandModel;
