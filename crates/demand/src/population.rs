//! Synthetic gridded world population density.
//!
//! A procedural stand-in for the SEDAC Gridded World Population dataset the
//! paper uses (its ref. \[11\]). The generator is calibrated so that the
//! *maximum density per latitude* profile — the only spatial moment the
//! paper's Fig. 3 and the constellation designers consume — matches the
//! published curve: population mass concentrated at intermediate northern
//! latitudes with a peak of ≈ 6000 persons/km² near 20–30°N, a secondary
//! southern-hemisphere mass near the tropics, and near-zero density
//! poleward of ±60°.
//!
//! Spatial texture (continents, Zipf-sized city clusters) is added so the
//! Earth-fixed demand map of Fig. 5 has realistic longitudinal clustering.

use crate::error::{DemandError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the synthetic population generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PopulationConfig {
    /// Number of latitude bins (default 360 → 0.5° cells, matching SEDAC).
    pub lat_bins: usize,
    /// Number of longitude bins (default 720 → 0.5° cells).
    pub lon_bins: usize,
    /// Number of synthetic city clusters.
    pub n_cities: usize,
    /// RNG seed; every run with the same seed is identical.
    pub seed: u64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig { lat_bins: 360, lon_bins: 720, n_cities: 2500, seed: 42 }
    }
}

/// Rectangular "continent" regions (lat/lon degrees) with sampling weights
/// roughly proportional to real population shares.
const LAND_BOXES: &[(f64, f64, f64, f64, f64)] = &[
    // (lat_min, lat_max, lon_min, lon_max, weight)
    (15.0, 55.0, -125.0, -65.0, 0.07),  // North America
    (-40.0, 15.0, -82.0, -40.0, 0.06),  // Central & South America
    (36.0, 60.0, -10.0, 40.0, 0.10),    // Europe
    (-35.0, 36.0, -16.0, 50.0, 0.17),   // Africa & Middle East (west)
    (5.0, 40.0, 50.0, 92.0, 0.28),      // South Asia / Middle East (east)
    (18.0, 48.0, 92.0, 130.0, 0.20),    // East Asia
    (-10.0, 18.0, 92.0, 128.0, 0.09),   // Southeast Asia
    (-40.0, -12.0, 113.0, 155.0, 0.02), // Australia
    (30.0, 45.0, 128.0, 143.0, 0.01),   // Japan / Korea (east)
];

/// The latitude envelope \[persons/km²\]: target maximum density at each
/// latitude, matched to the paper's Fig. 3.
///
/// Modeled as the max of Gaussian components so each peak value is
/// directly controlled.
pub fn latitude_envelope(lat_deg: f64) -> f64 {
    const COMPONENTS: &[(f64, f64, f64)] = &[
        // (center latitude, sigma, peak persons/km²)
        (23.0, 11.0, 6000.0), // South/East Asia belt — the Fig. 3 peak
        (38.0, 7.0, 4200.0),  // Mediterranean/China/US band
        (50.0, 5.0, 1800.0),  // Northern Europe
        (8.0, 8.0, 3200.0),   // Equatorial belt
        (-8.0, 8.0, 2000.0),  // Southern tropics (Java, Brazil)
        (-30.0, 6.0, 1000.0), // Southern mid-latitudes
    ];
    COMPONENTS
        .iter()
        .map(|&(mu, sigma, peak)| peak * (-((lat_deg - mu) / sigma).powi(2) / 2.0).exp())
        .fold(0.0, f64::max)
}

/// A latitude × longitude grid of population density \[persons/km²\].
#[derive(Debug, Clone)]
pub struct PopulationGrid {
    lat_bins: usize,
    lon_bins: usize,
    /// Row-major `[lat][lon]`, south-to-north, west-to-east.
    density: Vec<f64>,
}

impl PopulationGrid {
    /// Generates the synthetic population grid.
    ///
    /// # Errors
    /// Returns [`DemandError::EmptyGrid`] for zero-sized dimensions.
    pub fn synthetic(config: PopulationConfig) -> Result<Self> {
        if config.lat_bins == 0 {
            return Err(DemandError::EmptyGrid { dimension: "lat_bins" });
        }
        if config.lon_bins == 0 {
            return Err(DemandError::EmptyGrid { dimension: "lon_bins" });
        }
        let mut rng = StdRng::seed_from_u64(config.seed);

        // --- Sample city clusters ---------------------------------------
        struct City {
            lat: f64,
            lon: f64,
            /// Peak modulation contribution in [0, 1].
            amplitude: f64,
            /// Kernel width [deg].
            sigma: f64,
        }
        let total_weight: f64 = LAND_BOXES.iter().map(|b| b.4).sum();
        let mut cities = Vec::with_capacity(config.n_cities + 4 * LAND_BOXES.len());
        // Anchor megacities: a few per land box, guaranteeing that each
        // region's core latitudes saturate the envelope (the SEDAC max-per-
        // latitude curve is achieved by a single dense city in each band).
        for &(lat_min, lat_max, lon_min, lon_max, _) in LAND_BOXES {
            for a in 0..4 {
                let frac = (a as f64 + 0.5) / 4.0;
                let lat = lat_min + (lat_max - lat_min) * frac;
                let lon = lon_min + (lon_max - lon_min) * rng.gen::<f64>();
                cities.push(City { lat, lon, amplitude: 2.0, sigma: 1.0 + rng.gen::<f64>() });
            }
        }
        for rank in 0..config.n_cities {
            // Pick a land box by weight.
            let mut pick = rng.gen::<f64>() * total_weight;
            let mut chosen = LAND_BOXES[0];
            for b in LAND_BOXES {
                pick -= b.4;
                if pick <= 0.0 {
                    chosen = *b;
                    break;
                }
            }
            let (lat_min, lat_max, lon_min, lon_max, _) = chosen;
            // Rejection-sample latitude proportionally to the envelope so
            // big cities sit where Fig. 3 has mass.
            let env_max = (0..64)
                .map(|k| latitude_envelope(lat_min + (lat_max - lat_min) * (k as f64 + 0.5) / 64.0))
                .fold(1e-9, f64::max);
            let lat = loop {
                let cand = lat_min + (lat_max - lat_min) * rng.gen::<f64>();
                if rng.gen::<f64>() * env_max <= latitude_envelope(cand) {
                    break cand;
                }
            };
            let lon = lon_min + (lon_max - lon_min) * rng.gen::<f64>();
            // Zipf-like sizes: the first few hundred cities can saturate
            // the envelope; the tail adds texture.
            let amplitude = (1.0 / (1.0 + rank as f64).powf(0.55)).min(1.0) * 3.0;
            let sigma = 0.5 + 1.5 * rng.gen::<f64>();
            cities.push(City { lat, lon, amplitude, sigma });
        }

        // --- Fill the grid ----------------------------------------------
        let mut density = vec![0.0; config.lat_bins * config.lon_bins];
        let dlat = 180.0 / config.lat_bins as f64;
        let dlon = 360.0 / config.lon_bins as f64;
        for i in 0..config.lat_bins {
            let lat = -90.0 + dlat * (i as f64 + 0.5);
            let envelope = latitude_envelope(lat);
            if envelope < 1e-6 {
                continue;
            }
            for j in 0..config.lon_bins {
                let lon = -180.0 + dlon * (j as f64 + 0.5);
                let on_land = LAND_BOXES
                    .iter()
                    .any(|&(a, b, c, d, _)| lat >= a && lat <= b && lon >= c && lon <= d);
                let base = if on_land { 0.02 } else { 0.0005 };
                let mut modulation = base;
                for city in &cities {
                    let dl = (lat - city.lat) / city.sigma;
                    // Longitude wrap for kernels near the date line.
                    let mut dlon_c = (lon - city.lon).abs();
                    if dlon_c > 180.0 {
                        dlon_c = 360.0 - dlon_c;
                    }
                    let dn = dlon_c / city.sigma;
                    let d2 = dl * dl + dn * dn;
                    if d2 < 16.0 {
                        modulation += city.amplitude * (-d2 / 2.0).exp();
                    }
                }
                density[i * config.lon_bins + j] = envelope * modulation.min(1.0);
            }
        }
        Ok(PopulationGrid { lat_bins: config.lat_bins, lon_bins: config.lon_bins, density })
    }

    /// Number of latitude bins.
    pub fn lat_bins(&self) -> usize {
        self.lat_bins
    }

    /// Number of longitude bins.
    pub fn lon_bins(&self) -> usize {
        self.lon_bins
    }

    /// Center latitude \[deg\] of latitude bin `i` (south to north).
    pub fn lat_center_deg(&self, i: usize) -> f64 {
        -90.0 + 180.0 * (i as f64 + 0.5) / self.lat_bins as f64
    }

    /// Center longitude \[deg\] of longitude bin `j` (west to east).
    pub fn lon_center_deg(&self, j: usize) -> f64 {
        -180.0 + 360.0 * (j as f64 + 0.5) / self.lon_bins as f64
    }

    /// Density \[persons/km²\] of cell `(i, j)`.
    pub fn cell(&self, i: usize, j: usize) -> f64 {
        self.density[i * self.lon_bins + j]
    }

    /// Density at geographic coordinates \[deg\] (nearest cell; longitude
    /// wraps, latitude clamps).
    pub fn density_at(&self, lat_deg: f64, lon_deg: f64) -> f64 {
        let i = (((lat_deg + 90.0) / 180.0 * self.lat_bins as f64).floor() as isize)
            .clamp(0, self.lat_bins as isize - 1) as usize;
        let mut lon = (lon_deg + 180.0).rem_euclid(360.0);
        if lon >= 360.0 {
            lon -= 360.0;
        }
        let j = ((lon / 360.0 * self.lon_bins as f64).floor() as usize).min(self.lon_bins - 1);
        self.cell(i, j)
    }

    /// Maximum density over all longitudes at each latitude — the paper's
    /// Fig. 3 curve. Returns `(lat_center_deg, max_density)` pairs, south
    /// to north.
    pub fn max_density_per_latitude(&self) -> Vec<(f64, f64)> {
        (0..self.lat_bins)
            .map(|i| {
                let max = (0..self.lon_bins).map(|j| self.cell(i, j)).fold(0.0, f64::max);
                (self.lat_center_deg(i), max)
            })
            .collect()
    }

    /// Area \[km²\] of one cell in latitude row `i`.
    pub fn cell_area_km2(&self, i: usize) -> f64 {
        let dlat = core::f64::consts::PI / self.lat_bins as f64;
        let lat0 = -core::f64::consts::FRAC_PI_2 + dlat * i as f64;
        ssplane_astro::geo::latitude_band_area_km2(lat0, lat0 + dlat) / self.lon_bins as f64
    }

    /// Total population (density × area summed over the grid).
    pub fn total_population(&self) -> f64 {
        (0..self.lat_bins)
            .map(|i| {
                let area = self.cell_area_km2(i);
                (0..self.lon_bins).map(|j| self.cell(i, j) * area).sum::<f64>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssplane_astro::constants::EARTH_RADIUS_KM;

    fn small_grid() -> PopulationGrid {
        PopulationGrid::synthetic(PopulationConfig {
            lat_bins: 90,
            lon_bins: 180,
            n_cities: 600,
            seed: 42,
        })
        .unwrap()
    }

    #[test]
    fn envelope_matches_fig3_shape() {
        // Peak ~6000 near 20-30N.
        let peak = latitude_envelope(23.0);
        assert!((peak - 6000.0).abs() < 50.0);
        // Intermediate northern latitudes dominate the south.
        assert!(latitude_envelope(35.0) > latitude_envelope(-35.0));
        // Near-zero poleward of ±60°.
        assert!(latitude_envelope(70.0) < 100.0);
        assert!(latitude_envelope(-70.0) < 10.0);
        assert!(latitude_envelope(89.0) < 1.0);
    }

    #[test]
    fn grid_max_per_latitude_tracks_envelope() {
        let g = small_grid();
        let profile = g.max_density_per_latitude();
        // At populated latitudes the realized max should come within 40% of
        // the envelope (cities saturate the modulation).
        for target_lat in [23.0, 38.0, 8.0] {
            let (lat, max) = profile
                .iter()
                .min_by(|a, b| {
                    (a.0 - target_lat).abs().partial_cmp(&(b.0 - target_lat).abs()).unwrap()
                })
                .copied()
                .unwrap();
            let env = latitude_envelope(lat);
            assert!(max > 0.6 * env, "lat {lat}: max {max} vs envelope {env}");
            assert!(max <= env + 1e-9, "modulation must be clamped at 1");
        }
        // Poles empty.
        assert!(profile.first().unwrap().1 < 1.0);
        assert!(profile.last().unwrap().1 < 100.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small_grid();
        let b = small_grid();
        assert_eq!(a.density, b.density);
        let c = PopulationGrid::synthetic(PopulationConfig {
            seed: 43,
            lat_bins: 90,
            lon_bins: 180,
            n_cities: 600,
        })
        .unwrap();
        assert_ne!(a.density, c.density);
    }

    #[test]
    fn density_lookup_consistent_with_cells() {
        let g = small_grid();
        let lat = g.lat_center_deg(40);
        let lon = g.lon_center_deg(100);
        assert_eq!(g.density_at(lat, lon), g.cell(40, 100));
        // Longitude wrap.
        assert_eq!(g.density_at(lat, lon + 360.0), g.cell(40, 100));
        assert_eq!(g.density_at(lat, lon - 360.0), g.cell(40, 100));
        // Latitude clamp at the poles.
        let _ = g.density_at(95.0, 0.0);
        let _ = g.density_at(-95.0, 0.0);
    }

    #[test]
    fn total_population_plausible() {
        let g = small_grid();
        let total = g.total_population();
        // Synthetic effective population: order 10^9 - 10^11.
        assert!(total > 1e9 && total < 1e11, "total = {total:e}");
    }

    #[test]
    fn ocean_cells_sparse() {
        let g = small_grid();
        // Mid-Pacific around (0°, -150°): far from any land box.
        let d = g.density_at(0.0, -150.0);
        assert!(d < 0.01 * latitude_envelope(0.0), "pacific density = {d}");
    }

    #[test]
    fn empty_grid_rejected() {
        assert!(PopulationGrid::synthetic(PopulationConfig { lat_bins: 0, ..Default::default() })
            .is_err());
        assert!(PopulationGrid::synthetic(PopulationConfig { lon_bins: 0, ..Default::default() })
            .is_err());
    }

    #[test]
    fn cell_areas_sum_to_earth_surface() {
        let g = small_grid();
        let total: f64 = (0..g.lat_bins()).map(|i| g.cell_area_km2(i) * g.lon_bins() as f64).sum();
        let sphere = 4.0 * core::f64::consts::PI * EARTH_RADIUS_KM * EARTH_RADIUS_KM;
        assert!((total - sphere).abs() / sphere < 1e-9);
    }
}
