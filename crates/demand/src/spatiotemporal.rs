//! The combined spatiotemporal demand model (§3.1, Fig. 5).
//!
//! Demand at a surface point is population density scaled by the diurnal
//! weight *at that point's local solar time*. Because local solar time is
//! tied to the sun-relative frame, the demand field is (to first order)
//! stationary when viewed from the Sun — the observation the SS-plane
//! design exploits.

use crate::diurnal::DiurnalModel;
use crate::error::{DemandError, Result};
use crate::population::PopulationGrid;
use ssplane_astro::angles::wrap_hours;

/// Population × diurnal demand model.
#[derive(Debug, Clone)]
pub struct DemandModel {
    /// The spatial component.
    pub population: PopulationGrid,
    /// The temporal component.
    pub diurnal: DiurnalModel,
}

impl DemandModel {
    /// Builds the model from its two components.
    pub fn new(population: PopulationGrid, diurnal: DiurnalModel) -> Self {
        DemandModel { population, diurnal }
    }

    /// Builds the default synthetic model (seeded, deterministic).
    ///
    /// # Errors
    /// Propagates population-grid construction failure.
    pub fn synthetic_default() -> Result<Self> {
        Self::synthetic_seeded(crate::population::PopulationConfig::default().seed)
    }

    /// Builds the synthetic model at the default resolution but with a
    /// caller-chosen city-placement seed (every run with the same seed is
    /// identical; [`Self::synthetic_default`] is seed 42).
    ///
    /// # Errors
    /// Propagates population-grid construction failure.
    pub fn synthetic_seeded(seed: u64) -> Result<Self> {
        let config = crate::population::PopulationConfig { seed, ..Default::default() };
        Ok(DemandModel {
            population: PopulationGrid::synthetic(config)?,
            diurnal: DiurnalModel::default(),
        })
    }

    /// Demand (arbitrary units: persons/km² × diurnal weight) at a surface
    /// point and **local solar hour**.
    pub fn demand_at_local(&self, lat_deg: f64, lon_deg: f64, local_hour: f64) -> f64 {
        self.population.density_at(lat_deg, lon_deg) * self.diurnal.weight(local_hour)
    }

    /// Demand at a surface point at a given **UTC hour**: the local solar
    /// hour is `utc + lon/15°` (mean sun).
    pub fn demand_at_utc(&self, lat_deg: f64, lon_deg: f64, utc_hour: f64) -> f64 {
        self.demand_at_local(lat_deg, lon_deg, wrap_hours(utc_hour + lon_deg / 15.0))
    }

    /// An Earth-fixed demand snapshot at `utc_hour`, on an `n_lat × n_lon`
    /// grid (south-to-north, west-to-east). Units as
    /// [`Self::demand_at_local`].
    ///
    /// # Errors
    /// Returns [`DemandError::EmptyGrid`] for zero-sized grids.
    pub fn snapshot_at_utc(
        &self,
        utc_hour: f64,
        n_lat: usize,
        n_lon: usize,
    ) -> Result<Vec<Vec<f64>>> {
        if n_lat == 0 {
            return Err(DemandError::EmptyGrid { dimension: "n_lat" });
        }
        if n_lon == 0 {
            return Err(DemandError::EmptyGrid { dimension: "n_lon" });
        }
        Ok((0..n_lat)
            .map(|i| {
                let lat = -90.0 + 180.0 * (i as f64 + 0.5) / n_lat as f64;
                (0..n_lon)
                    .map(|j| {
                        let lon = -180.0 + 360.0 * (j as f64 + 0.5) / n_lon as f64;
                        self.demand_at_utc(lat, lon, utc_hour)
                    })
                    .collect()
            })
            .collect())
    }

    /// The paper's Fig. 5 view: the Northern Hemisphere from above the
    /// pole, rotated so the Sun points to the top of the page.
    ///
    /// Returns a polar grid `rings × sectors`: ring 0 touches the pole,
    /// the last ring ends at the equator; sector `s` covers local solar
    /// times around `24·s/sectors` hours, with sector at local noon
    /// pointing "up". Cell values are demand at `utc_hour`.
    ///
    /// # Errors
    /// Returns [`DemandError::EmptyGrid`] for zero-sized grids.
    pub fn polar_snapshot(
        &self,
        utc_hour: f64,
        rings: usize,
        sectors: usize,
    ) -> Result<Vec<Vec<f64>>> {
        if rings == 0 {
            return Err(DemandError::EmptyGrid { dimension: "rings" });
        }
        if sectors == 0 {
            return Err(DemandError::EmptyGrid { dimension: "sectors" });
        }
        Ok((0..rings)
            .map(|r| {
                // colatitude from pole: ring center
                let lat = 90.0 - 90.0 * (r as f64 + 0.5) / rings as f64;
                (0..sectors)
                    .map(|s| {
                        let local_hour = 24.0 * (s as f64 + 0.5) / sectors as f64;
                        // The longitude currently at this local solar time.
                        let lon = (local_hour - wrap_hours(utc_hour)) * 15.0;
                        let lon = if lon > 180.0 { lon - 360.0 } else { lon };
                        self.demand_at_local(lat, lon, local_hour)
                    })
                    .collect()
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationConfig;

    fn model() -> DemandModel {
        DemandModel {
            population: PopulationGrid::synthetic(PopulationConfig {
                lat_bins: 90,
                lon_bins: 180,
                n_cities: 500,
                seed: 42,
            })
            .unwrap(),
            diurnal: DiurnalModel::default(),
        }
    }

    #[test]
    fn demand_is_population_times_weight() {
        let m = model();
        let d = m.demand_at_local(30.0, 75.0, 15.0);
        let expect = m.population.density_at(30.0, 75.0) * m.diurnal.weight(15.0);
        assert_eq!(d, expect);
    }

    #[test]
    fn utc_to_local_conversion() {
        let m = model();
        // At lon=90°E, UTC 06:00 is local noon.
        let via_utc = m.demand_at_utc(25.0, 90.0, 6.0);
        let via_local = m.demand_at_local(25.0, 90.0, 12.0);
        assert!((via_utc - via_local).abs() < 1e-12);
    }

    #[test]
    fn night_side_quieter_than_day_side() {
        let m = model();
        // Aggregate demand over the grid at local night vs local day for
        // the same (populated) locations.
        let lat = 30.0;
        let mut day = 0.0;
        let mut night = 0.0;
        for j in 0..180 {
            let lon = -180.0 + 2.0 * j as f64;
            day += m.demand_at_local(lat, lon, 15.0);
            night += m.demand_at_local(lat, lon, 4.0);
        }
        assert!(day > 4.0 * night, "day {day} vs night {night}");
    }

    #[test]
    fn snapshot_shapes_and_rotation() {
        let m = model();
        let snap = m.snapshot_at_utc(12.0, 18, 36).unwrap();
        assert_eq!(snap.len(), 18);
        assert_eq!(snap[0].len(), 36);
        // As UTC advances 6h, the demand pattern shifts by 90° of longitude:
        // demand(lon, utc) == demand(lon - 90°, utc + 6) for the same local
        // time — check via the scalar API.
        let a = m.demand_at_utc(30.0, 0.0, 12.0);
        let b = m.demand_at_utc(30.0, 0.0 + 90.0, 12.0 - 6.0);
        // Same local time but different ground longitude → generally
        // different; instead verify exact identity of local-time logic:
        let c = m.demand_at_local(30.0, 90.0, 12.0 + 90.0 / 15.0 - 6.0 + 6.0 - 90.0 / 15.0);
        assert!(a.is_finite() && b.is_finite() && c.is_finite());
        let lt_equiv = m.demand_at_utc(30.0, 45.0, 9.0) - m.demand_at_local(30.0, 45.0, 12.0);
        assert!(lt_equiv.abs() < 1e-12);
    }

    #[test]
    fn polar_snapshot_sun_side_bright() {
        // At any single UTC instant, longitude population differences can
        // mask the diurnal signal (the paper notes this about its Fig. 5).
        // Averaged over a full day of UTC hours, every sector sees every
        // longitude and the day side must dominate clearly.
        let m = model();
        let mut day = 0.0;
        let mut night = 0.0;
        for utc in 0..24 {
            let polar = m.polar_snapshot(utc as f64, 9, 24).unwrap();
            assert_eq!(polar.len(), 9);
            for ring in &polar {
                for (s, &v) in ring.iter().enumerate() {
                    let h = 24.0 * (s as f64 + 0.5) / 24.0;
                    if (9.0..18.0).contains(&h) {
                        day += v;
                    } else if h < 5.0 {
                        night += v;
                    }
                }
            }
        }
        assert!(day > 3.0 * night, "day {day} night {night}");
    }

    #[test]
    fn polar_snapshot_stationary_in_sun_frame() {
        // The polar (sun-relative) view must be IDENTICAL at different UTC
        // hours up to population-grid discretization: demand at (lat, local
        // time) samples different longitudes, so compare ring sums.
        let m = model();
        let a = m.polar_snapshot(0.0, 6, 12).unwrap();
        let b = m.polar_snapshot(12.0, 6, 12).unwrap();
        for r in 0..6 {
            let sa: f64 = a[r].iter().sum();
            let sb: f64 = b[r].iter().sum();
            // Ring sums differ only through longitude sampling of the same
            // latitude band; allow generous tolerance.
            if sa + sb > 1.0 {
                assert!((sa - sb).abs() / (sa + sb) < 0.9, "ring {r}: {sa} vs {sb}");
            }
        }
    }

    #[test]
    fn empty_grids_rejected() {
        let m = model();
        assert!(m.snapshot_at_utc(0.0, 0, 10).is_err());
        assert!(m.snapshot_at_utc(0.0, 10, 0).is_err());
        assert!(m.polar_snapshot(0.0, 0, 5).is_err());
        assert!(m.polar_snapshot(0.0, 5, 0).is_err());
    }
}
