//! Property-based tests for the demand substrate.

use proptest::prelude::*;
use ssplane_astro::frames::SunRelativePoint;
use ssplane_demand::diurnal::DiurnalModel;
use ssplane_demand::grid::LatTodGrid;
use ssplane_demand::population::latitude_envelope;

proptest! {
    #[test]
    fn diurnal_weight_in_unit_interval(hour in -100.0f64..100.0) {
        let m = DiurnalModel::default();
        let w = m.weight(hour);
        prop_assert!(w > 0.0 && w <= 1.0 + 1e-12);
        // 24h periodicity.
        prop_assert!((w - m.weight(hour + 24.0)).abs() < 1e-9);
    }

    #[test]
    fn diurnal_median_consistency(hour in 0.0f64..24.0) {
        let m = DiurnalModel::default();
        // median_percent = 100 * relative_load by definition.
        prop_assert!((m.median_percent(hour) - 100.0 * m.relative_load(hour)).abs() < 1e-9);
    }

    #[test]
    fn envelope_nonnegative_and_bounded(lat in -90.0f64..90.0) {
        let e = latitude_envelope(lat);
        prop_assert!(e >= 0.0);
        prop_assert!(e <= 6000.0 + 1e-6);
    }

    #[test]
    fn grid_scaling_linear(mult in 0.0f64..1000.0) {
        let g = LatTodGrid::from_values(6, 8, (0..48).map(|k| k as f64 / 7.0).collect()).unwrap();
        let s = g.scaled(mult);
        prop_assert!((s.peak() - g.peak() * mult).abs() < 1e-9 * (1.0 + mult));
        prop_assert!((s.total() - g.total() * mult).abs() < 1e-6 * (1.0 + mult));
    }

    #[test]
    fn cell_of_always_in_bounds(lat in -1.570f64..1.570, tod in -48.0f64..48.0) {
        let g = LatTodGrid::from_values(36, 24, vec![0.0; 36 * 24]).unwrap();
        let (i, j) = g.cell_of(SunRelativePoint { lat, local_time_h: tod });
        prop_assert!(i < 36);
        prop_assert!(j < 24);
    }

    #[test]
    fn cell_of_center_round_trip(i in 0usize..36, j in 0usize..24) {
        let g = LatTodGrid::from_values(36, 24, vec![0.0; 36 * 24]).unwrap();
        let p = SunRelativePoint {
            lat: g.lat_center_deg(i).to_radians(),
            local_time_h: g.tod_center_h(j),
        };
        prop_assert_eq!(g.cell_of(p), (i, j));
    }

    #[test]
    fn argmax_is_max(values in proptest::collection::vec(0.0f64..10.0, 24)) {
        let g = LatTodGrid::from_values(4, 6, values.clone()).unwrap();
        if let Some((i, j)) = g.argmax() {
            let m = g.value(i, j);
            for (_, _, v) in g.cells() {
                prop_assert!(v <= m);
            }
            prop_assert!(m > 0.0);
        } else {
            prop_assert!(values.iter().all(|&v| v <= 0.0));
        }
    }
}
