//! A hand-rolled Rust token scanner — just enough lexical structure for
//! the lint rules: identifiers, string/char/number literals, single-char
//! punctuation, and line comments (block comments are skipped, raw and
//! byte strings are recognized so their *contents* never masquerade as
//! code). Every token carries its 1-based source line.
//!
//! This is deliberately not a parser: the rules pattern-match short token
//! sequences (`Instant :: now`, `as u32`, `"key" =>`), which a token
//! stream supports exactly and a regex over raw text does not (comments,
//! strings, and `use x as y` would all false-positive).

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `as`, `fn`, …).
    Ident(String),
    /// String literal (normal, raw, or byte); the unescaped-as-written
    /// content, used by the scenario-schema key extractor.
    Str(String),
    /// Character literal (content irrelevant to every rule).
    Char,
    /// Numeric literal (content irrelevant to every rule).
    Num,
    /// Single punctuation character; multi-char operators appear as
    /// consecutive tokens (`::` is `Punct(':') Punct(':')`).
    Punct(char),
    /// `//` line comment content (without the slashes) — the carrier of
    /// `ssplane-lint: allow(...)` annotations.
    Comment(String),
}

/// A token plus its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was scanned.
    pub kind: TokenKind,
    /// 1-based line the token starts on.
    pub line: usize,
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Tokenizes Rust source. Never fails: unterminated constructs simply
/// consume to end-of-file (the linter scans code that `cargo build`
/// already accepted, so graceful degradation beats error plumbing).
pub fn lex(src: &str) -> Vec<Token> {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && b[j] != '\n' {
                j += 1;
            }
            out.push(Token { kind: TokenKind::Comment(b[start..j].iter().collect()), line });
            i = j;
        } else if c == '/' && i + 1 < n && b[i + 1] == '*' {
            // Nested block comment (contents discarded: allow
            // annotations are line comments only, as the README says).
            let mut depth = 1;
            let mut j = i + 2;
            while j < n && depth > 0 {
                if b[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if b[j] == '/' && j + 1 < n && b[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == '*' && j + 1 < n && b[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            i = j;
        } else if c == '"' {
            let (content, next, newlines) = scan_string(&b, i + 1);
            out.push(Token { kind: TokenKind::Str(content), line });
            line += newlines;
            i = next;
        } else if c == '\'' {
            i = scan_quote(&b, i, line, &mut out);
        } else if c.is_ascii_digit() {
            let start_line = line;
            let mut j = i + 1;
            loop {
                while j < n && (b[j].is_ascii_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                // `1.5` continues the number; `1..n` does not.
                if j < n && b[j] == '.' && j + 1 < n && b[j + 1].is_ascii_digit() {
                    j += 1;
                    continue;
                }
                // `1e-3` / `1E+9` exponent signs.
                if j < n
                    && (b[j] == '+' || b[j] == '-')
                    && (b[j - 1] == 'e' || b[j - 1] == 'E')
                    && j + 1 < n
                    && b[j + 1].is_ascii_digit()
                {
                    j += 1;
                    continue;
                }
                break;
            }
            out.push(Token { kind: TokenKind::Num, line: start_line });
            i = j;
        } else if is_ident_start(c) {
            let mut j = i + 1;
            while j < n && is_ident_continue(b[j]) {
                j += 1;
            }
            let ident: String = b[i..j].iter().collect();
            // Raw / byte string prefixes: the contents must not be
            // scanned as code.
            let raw = (ident == "r" || ident == "br") && j < n && (b[j] == '"' || b[j] == '#');
            let byte = ident == "b" && j < n && b[j] == '"';
            if raw {
                let (content, next, newlines) = scan_raw_string(&b, j);
                out.push(Token { kind: TokenKind::Str(content), line });
                line += newlines;
                i = next;
            } else if byte {
                let (content, next, newlines) = scan_string(&b, j + 1);
                out.push(Token { kind: TokenKind::Str(content), line });
                line += newlines;
                i = next;
            } else {
                out.push(Token { kind: TokenKind::Ident(ident), line });
                i = j;
            }
        } else {
            out.push(Token { kind: TokenKind::Punct(c), line });
            i += 1;
        }
    }
    out
}

/// Scans a normal (escaped) string body starting just past the opening
/// quote; returns `(content, index past closing quote, newlines seen)`.
fn scan_string(b: &[char], mut i: usize) -> (String, usize, usize) {
    let n = b.len();
    let mut content = String::new();
    let mut newlines = 0;
    while i < n {
        match b[i] {
            '\\' if i + 1 < n => {
                content.push(b[i]);
                content.push(b[i + 1]);
                if b[i + 1] == '\n' {
                    newlines += 1;
                }
                i += 2;
            }
            '"' => return (content, i + 1, newlines),
            c => {
                if c == '\n' {
                    newlines += 1;
                }
                content.push(c);
                i += 1;
            }
        }
    }
    (content, n, newlines)
}

/// Scans a raw string starting at its `#`s-or-quote; returns
/// `(content, index past the closing delimiter, newlines seen)`.
fn scan_raw_string(b: &[char], mut i: usize) -> (String, usize, usize) {
    let n = b.len();
    let mut hashes = 0;
    while i < n && b[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i < n && b[i] == '"' {
        i += 1;
    }
    let mut content = String::new();
    let mut newlines = 0;
    while i < n {
        if b[i] == '"' {
            let mut k = 0;
            while k < hashes && i + 1 + k < n && b[i + 1 + k] == '#' {
                k += 1;
            }
            if k == hashes {
                return (content, i + 1 + hashes, newlines);
            }
        }
        if b[i] == '\n' {
            newlines += 1;
        }
        content.push(b[i]);
        i += 1;
    }
    (content, n, newlines)
}

/// Disambiguates `'a'` (char literal) from `'a` (lifetime) at a `'`;
/// returns the index after the construct, pushing a token when one is
/// produced (lifetimes are dropped — no rule consults them).
fn scan_quote(b: &[char], i: usize, line: usize, out: &mut Vec<Token>) -> usize {
    let n = b.len();
    if i + 1 >= n {
        return n;
    }
    if b[i + 1] == '\\' {
        // Escaped char literal: scan to the closing quote, hopping over
        // escape pairs so `'\''` terminates correctly.
        let mut j = i + 1;
        while j < n {
            if b[j] == '\\' {
                j += 2;
            } else if b[j] == '\'' {
                break;
            } else {
                j += 1;
            }
        }
        out.push(Token { kind: TokenKind::Char, line });
        return (j + 1).min(n);
    }
    if i + 2 < n && b[i + 2] == '\'' {
        out.push(Token { kind: TokenKind::Char, line });
        return i + 3;
    }
    if is_ident_start(b[i + 1]) {
        // Lifetime: consume the identifier, emit nothing.
        let mut j = i + 2;
        while j < n && is_ident_continue(b[j]) {
            j += 1;
        }
        return j;
    }
    i + 1
}

/// The non-comment view rules scan (comments feed the allow table
/// instead).
pub fn code_tokens(tokens: &[Token]) -> Vec<&Token> {
    tokens.iter().filter(|t| !matches!(t.kind, TokenKind::Comment(_))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_code() {
        // Mentions inside comments and strings must not look like code.
        let src = "// HashMap here\nlet x = \"Instant::now\"; /* SystemTime */ let y = 1;";
        assert!(!idents(src).iter().any(|s| s == "HashMap" || s == "Instant" || s == "SystemTime"));
        assert!(idents(src).iter().any(|s| s == "let"));
    }

    #[test]
    fn raw_strings_and_chars_and_lifetimes() {
        let src = "let s = r#\"HashMap \"quoted\" body\"#; fn f<'a>(x: &'a str, c: char) -> char { '\\'' }";
        let ids = idents(src);
        assert!(!ids.iter().any(|s| s == "HashMap"));
        assert!(ids.iter().any(|s| s == "str"));
        // Lifetime 'a produced no char literal mis-scan: the fn body
        // still lexes (the escaped quote char is one Char token).
        let chars = lex(src).iter().filter(|t| t.kind == TokenKind::Char).count();
        assert_eq!(chars, 1);
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "let a = 1;\n/* two\nlines */\nlet b = \"x\ny\";\nlet c = 2;";
        let toks = lex(src);
        let c_line =
            toks.iter().find(|t| t.kind == TokenKind::Ident("c".into())).map(|t| t.line).unwrap();
        assert_eq!(c_line, 6);
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let src = "for i in 0..n { let x = 1.5e-3; let y = 2.0f64; let z = 0x1f; }";
        let ids = idents(src);
        assert!(ids.iter().any(|s| s == "n"));
        let nums = lex(src).iter().filter(|t| t.kind == TokenKind::Num).count();
        assert_eq!(nums, 4, "0, 1.5e-3, 2.0f64, 0x1f");
    }

    #[test]
    fn line_comment_content_is_captured() {
        let toks = lex("let x = 1; // ssplane-lint: allow(hash-iter) -- why");
        let comment = toks
            .iter()
            .find_map(|t| match &t.kind {
                TokenKind::Comment(s) => Some(s.clone()),
                _ => None,
            })
            .unwrap();
        assert!(comment.contains("allow(hash-iter)"));
    }
}
