//! # ssplane-lint
//!
//! Workspace determinism & scale-safety static analysis for the
//! ss-plane reproduction — a self-contained, dependency-free token-level
//! linter (the build environment is offline, so no dylint/clippy-plugin
//! route) with five rules:
//!
//! * **hash-iter** — `HashMap`/`HashSet`/`RandomState` in library code:
//!   hash iteration order is nondeterministic, and every report byte
//!   must be a pure function of spec + seed.
//! * **wall-clock** — `Instant::now`/`SystemTime` outside the runner's
//!   `--timings` side channel and `crates/compat`.
//! * **unseeded-rng** — entropy-source or thread-local RNG construction
//!   outside test code.
//! * **lossy-cast** — `as`-casts to sized integer types in the
//!   `ssplane-lsn` hot paths, where 10k→100k-satellite scale makes
//!   truncation real; use `try_from` or `ssplane_lsn::cast`.
//! * **scenario-schema** — every `scenarios/*.toml` key validated
//!   against the surface `apply_param` recognizes.
//!
//! Findings are suppressed only by an inline
//! `// ssplane-lint: allow(<rule>) -- <justification>` annotation on the
//! offending line or the line above; annotations without a justification
//! are themselves findings (`bad-allow`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;
pub mod schema;

use rules::{AllowCounts, Rule};
use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Registry name of the violated rule.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// The outcome of a workspace scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Allow-annotation totals.
    pub allows: AllowCounts,
    /// Rust files scanned.
    pub files_scanned: usize,
    /// Scenario TOML files validated.
    pub scenarios_checked: usize,
}

impl Report {
    /// Whether the scan is clean (exit code 0).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Deterministic JSON rendering (hand-rolled: std only).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
                json_escape(&f.file),
                f.line,
                f.rule,
                json_escape(&f.message)
            ));
        }
        out.push_str(&format!(
            "],\"allows\":{{\"declared\":{},\"used\":{}}},\"files_scanned\":{},\
             \"scenarios_checked\":{}}}",
            self.allows.declared, self.allows.used, self.files_scanned, self.scenarios_checked
        ));
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Which rules apply to a workspace-relative Rust path. This scoping is
/// the policy half of the linter:
///
/// * test code (`tests/`, `benches/`, fixture corpora) is exempt from
///   everything — determinism there is pinned by the tests themselves;
/// * `crates/compat/` may read clocks (the criterion stand-in *is* a
///   stopwatch) and defines the RNG seeding machinery;
/// * **lossy-cast** is scoped to `crates/lsn/src/` — the percolation /
///   optimizer / traffic hot paths where index truncation scales into
///   real bugs (the ISSUE's target list).
pub fn rules_for_path(rel: &str) -> Vec<Rule> {
    let p = rel.replace('\\', "/");
    let test_like = p.starts_with("tests/")
        || p.contains("/tests/")
        || p.starts_with("benches/")
        || p.contains("/benches/")
        || p.contains("/fixtures/");
    if test_like {
        return Vec::new();
    }
    let mut rules = vec![Rule::HashIter];
    if !p.starts_with("crates/compat/") {
        rules.push(Rule::WallClock);
        rules.push(Rule::UnseededRng);
    }
    if p.starts_with("crates/lsn/src/") {
        rules.push(Rule::LossyCast);
    }
    rules
}

/// Recursively collects files under `dir` with extension `ext`, sorted
/// for a deterministic scan order.
fn collect_files(dir: &Path, ext: &str, out: &mut BTreeSet<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = path.file_name().and_then(|s| s.to_str()).unwrap_or("");
            if name == "target" || name == ".git" {
                continue;
            }
            collect_files(&path, ext, out);
        } else if path.extension().and_then(|s| s.to_str()) == Some(ext) {
            out.insert(path);
        }
    }
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/")
}

/// Scans the Rust sources of the workspace rooted at `root` (the code
/// half: `src/`, `examples/`, `crates/*/src/`), appending findings and
/// allow counts.
///
/// # Errors
/// An unreadable source file (reported with its path).
pub fn scan_rust_tree(root: &Path, report: &mut Report) -> Result<(), String> {
    let mut files = BTreeSet::new();
    for top in ["src", "examples", "crates"] {
        collect_files(&root.join(top), "rs", &mut files);
    }
    for path in files {
        let rel = rel_path(root, &path);
        let rules = rules_for_path(&rel);
        if rules.is_empty() {
            continue;
        }
        let src =
            fs::read_to_string(&path).map_err(|e| format!("{}: unreadable source: {e}", rel))?;
        let (findings, allows) = rules::scan_rust(&rel, &src, &rules);
        report.findings.extend(findings);
        report.allows.absorb(&allows);
        report.files_scanned += 1;
    }
    Ok(())
}

/// Validates every `scenarios/*.toml` under `root` against the key
/// surface extracted from `crates/scenario/src/sweep.rs`.
///
/// # Errors
/// A missing/unreadable sweep.rs or a failed key extraction — schema
/// checking must never silently pass because its input vanished.
pub fn scan_scenarios(root: &Path, report: &mut Report) -> Result<(), String> {
    let sweep_path = root.join("crates/scenario/src/sweep.rs");
    let sweep_src = fs::read_to_string(&sweep_path)
        .map_err(|e| format!("{}: cannot read the schema source: {e}", sweep_path.display()))?;
    let keys = schema::extract_keys(&sweep_src)?;
    let mut files = BTreeSet::new();
    collect_files(&root.join("scenarios"), "toml", &mut files);
    for path in files {
        let rel = rel_path(root, &path);
        let src =
            fs::read_to_string(&path).map_err(|e| format!("{rel}: unreadable scenario: {e}"))?;
        schema::validate_scenario(&rel, &src, &keys, &mut report.findings);
        report.scenarios_checked += 1;
    }
    Ok(())
}

/// The full `--workspace` pass: Rust tree + scenario schema, findings
/// sorted deterministically.
///
/// # Errors
/// As [`scan_rust_tree`] and [`scan_scenarios`].
pub fn scan_workspace(root: &Path) -> Result<Report, String> {
    let mut report = Report {
        findings: Vec::new(),
        allows: AllowCounts::default(),
        files_scanned: 0,
        scenarios_checked: 0,
    };
    scan_rust_tree(root, &mut report)?;
    scan_scenarios(root, &mut report)?;
    report
        .findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(report)
}

/// Locates the workspace root: an explicit override, else the nearest
/// ancestor of `start` whose `Cargo.toml` declares `[workspace]`, else
/// the lint crate's own grandparent (the in-repo layout).
pub fn find_root(explicit: Option<&Path>, start: &Path) -> PathBuf {
    if let Some(root) = explicit {
        return root.to_path_buf();
    }
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return d;
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    // Compile-time fallback: crates/lint/../..
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoping_policy() {
        let all = rules_for_path("crates/lsn/src/percolation.rs");
        assert!(all.contains(&Rule::LossyCast) && all.contains(&Rule::HashIter));
        let scenario = rules_for_path("crates/scenario/src/runner.rs");
        assert!(scenario.contains(&Rule::WallClock) && !scenario.contains(&Rule::LossyCast));
        let compat = rules_for_path("crates/compat/criterion/src/lib.rs");
        assert!(!compat.contains(&Rule::WallClock) && compat.contains(&Rule::HashIter));
        assert!(rules_for_path("crates/lint/tests/fixtures/hash_iter_pos.rs").is_empty());
        assert!(rules_for_path("tests/integration.rs").is_empty());
        assert!(!rules_for_path("examples/routing.rs").is_empty());
    }

    #[test]
    fn json_is_escaped_and_deterministic() {
        let report = Report {
            findings: vec![Finding {
                file: "a\\b.rs".into(),
                line: 3,
                rule: "hash-iter",
                message: "quote \" and\nnewline".into(),
            }],
            allows: AllowCounts { declared: 2, used: 1 },
            files_scanned: 5,
            scenarios_checked: 7,
        };
        let json = report.to_json();
        assert!(json.contains("\"file\":\"a\\\\b.rs\""));
        assert!(json.contains("quote \\\" and\\nnewline"));
        assert!(json.contains("\"allows\":{\"declared\":2,\"used\":1}"));
        assert_eq!(json, report.to_json());
    }
}
