//! `ssplane-lint` CLI.
//!
//! ```text
//! cargo run -p ssplane-lint -- --workspace            # full scan, human output
//! cargo run -p ssplane-lint -- --workspace --json     # machine-readable
//! cargo run -p ssplane-lint -- --scenarios            # scenario-schema only
//! cargo run -p ssplane-lint -- path/to/file.rs …      # ad-hoc files (all token rules)
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

use ssplane_lint::rules::{scan_rust, ALL_RULES};
use ssplane_lint::{find_root, scan_scenarios, scan_workspace, Report};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    workspace: bool,
    scenarios: bool,
    json: bool,
    root: Option<PathBuf>,
    files: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args =
        Args { workspace: false, scenarios: false, json: false, root: None, files: Vec::new() };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => args.workspace = true,
            "--scenarios" => args.scenarios = true,
            "--json" => args.json = true,
            "--root" => {
                let path = it.next().ok_or("--root needs a path")?;
                args.root = Some(PathBuf::from(path));
            }
            "--help" | "-h" => {
                return Err("usage: ssplane-lint [--workspace | --scenarios | FILES…] [--json] \
                            [--root PATH]"
                    .to_string())
            }
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            other => args.files.push(PathBuf::from(other)),
        }
    }
    if !args.workspace && !args.scenarios && args.files.is_empty() {
        return Err(
            "nothing to do: pass --workspace, --scenarios, or file paths (--help)".to_string()
        );
    }
    Ok(args)
}

fn run() -> Result<Report, String> {
    let args = parse_args()?;
    let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
    let root = find_root(args.root.as_deref(), &cwd);

    let mut report = if args.workspace {
        scan_workspace(&root)?
    } else {
        let mut r = Report {
            findings: Vec::new(),
            allows: Default::default(),
            files_scanned: 0,
            scenarios_checked: 0,
        };
        if args.scenarios {
            scan_scenarios(&root, &mut r)?;
        }
        r
    };

    // Ad-hoc file mode: every token rule, no path-based scoping — the
    // caller pointed at the file on purpose.
    for path in &args.files {
        let rel = path.to_string_lossy().replace('\\', "/");
        let src = std::fs::read_to_string(path).map_err(|e| format!("{rel}: {e}"))?;
        if rel.ends_with(".toml") {
            let sweep = std::fs::read_to_string(root.join("crates/scenario/src/sweep.rs"))
                .map_err(|e| format!("schema source: {e}"))?;
            let keys = ssplane_lint::schema::extract_keys(&sweep)?;
            ssplane_lint::schema::validate_scenario(&rel, &src, &keys, &mut report.findings);
            report.scenarios_checked += 1;
        } else {
            let (findings, allows) = scan_rust(&rel, &src, &ALL_RULES);
            report.findings.extend(findings);
            report.allows.absorb(&allows);
            report.files_scanned += 1;
        }
    }
    report
        .findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));

    if args.json {
        println!("{}", report.to_json());
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        println!(
            "ssplane-lint: {} finding(s), {} allow(s) declared ({} used), {} file(s) scanned, \
             {} scenario(s) checked",
            report.findings.len(),
            report.allows.declared,
            report.allows.used,
            report.files_scanned,
            report.scenarios_checked
        );
    }
    Ok(report)
}

fn main() -> ExitCode {
    match run() {
        Ok(report) if report.is_clean() => ExitCode::SUCCESS,
        Ok(_) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("ssplane-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
