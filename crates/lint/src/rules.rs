//! The rule registry and the token-level rules, plus the
//! `ssplane-lint: allow(...)` suppression machinery.
//!
//! Every rule here exists because a nondeterminism or truncation bug of
//! exactly its shape has either already been fixed by hand in this
//! workspace (HashMap-order in the traffic link loads, float-scaled RNG
//! index draws) or becomes plausible at mega-constellation scale. The
//! rules are syntactic — a token scanner cannot do type inference — so
//! each is scoped (see [`crate::rules_for_path`]) to keep the
//! signal-to-noise high enough that the workspace runs clean.

use crate::lexer::{code_tokens, lex, Token, TokenKind};
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// A registered rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `HashMap`/`HashSet`/`RandomState` in library code: iteration
    /// order is nondeterministic across processes, so any traversal —
    /// now or added later — can leak into report bytes.
    HashIter,
    /// `Instant::now` / `SystemTime` outside the runner's `--timings`
    /// side channel and `crates/compat`: wall-clock readings are
    /// run-dependent by definition.
    WallClock,
    /// Entropy-seeded or thread-local RNG construction: every stream in
    /// this workspace must be a pure function of a scenario seed.
    UnseededRng,
    /// `as`-casts to sized integer types in the `ssplane-lsn` hot paths:
    /// at 10k→100k-satellite scale, silent truncation (f64→usize,
    /// u64→u32) is a real bug class. Use `try_from` or
    /// `ssplane_lsn::cast`.
    LossyCast,
    /// Scenario TOML keys outside the surface `apply_param` recognizes:
    /// a typoed key or sweep axis must fail CI, not silently no-op.
    ScenarioSchema,
    /// A malformed `ssplane-lint: allow(...)` annotation (unknown rule,
    /// missing `-- justification`). Not suppressible.
    BadAllow,
}

impl Rule {
    /// The rule's registry name — the token used in `allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::HashIter => "hash-iter",
            Rule::WallClock => "wall-clock",
            Rule::UnseededRng => "unseeded-rng",
            Rule::LossyCast => "lossy-cast",
            Rule::ScenarioSchema => "scenario-schema",
            Rule::BadAllow => "bad-allow",
        }
    }

    /// Parses a registry name (the five public rules only — `bad-allow`
    /// findings cannot be allowed away).
    pub fn parse(s: &str) -> Option<Rule> {
        match s {
            "hash-iter" => Some(Rule::HashIter),
            "wall-clock" => Some(Rule::WallClock),
            "unseeded-rng" => Some(Rule::UnseededRng),
            "lossy-cast" => Some(Rule::LossyCast),
            "scenario-schema" => Some(Rule::ScenarioSchema),
            _ => None,
        }
    }
}

/// Every public rule, in registry order.
pub const ALL_RULES: [Rule; 5] =
    [Rule::HashIter, Rule::WallClock, Rule::UnseededRng, Rule::LossyCast, Rule::ScenarioSchema];

/// One parsed `// ssplane-lint: allow(rule, ...) -- justification`.
#[derive(Debug, Clone)]
pub struct Allow {
    /// 1-based line the annotation *suppresses*: the annotation's own
    /// line for a trailing comment, the line below for a standalone one.
    pub target_line: usize,
    /// The rules it suppresses.
    pub rules: BTreeSet<Rule>,
    /// The mandatory justification text.
    pub justification: String,
}

/// The allow annotations of one file plus usage tracking.
#[derive(Debug, Default)]
pub struct AllowTable {
    entries: Vec<Allow>,
    used: BTreeSet<usize>,
}

impl AllowTable {
    /// Whether a finding for `rule` at `line` is suppressed by an
    /// annotation targeting exactly that line.
    fn suppresses(&mut self, rule: Rule, line: usize) -> bool {
        for (k, a) in self.entries.iter().enumerate() {
            if a.target_line == line && a.rules.contains(&rule) {
                self.used.insert(k);
                return true;
            }
        }
        false
    }

    /// Annotations declared in the file.
    pub fn declared(&self) -> usize {
        self.entries.len()
    }

    /// Annotations that suppressed at least one finding.
    pub fn used(&self) -> usize {
        self.used.len()
    }
}

const MARKER: &str = "ssplane-lint:";

/// Parses the allow annotations out of a file's comment tokens; grammar
/// violations become unsuppressible [`Rule::BadAllow`] findings.
///
/// Only plain `//` comments whose text *begins* with the
/// `ssplane-lint:` marker count — doc comments (`///`, `//!`) merely
/// *describing* the grammar are prose, not annotations. A trailing
/// annotation covers the code on its own line; a standalone annotation
/// line covers the line directly below it.
pub fn collect_allows(tokens: &[Token], file: &str, findings: &mut Vec<Finding>) -> AllowTable {
    let code_lines: BTreeSet<usize> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::Comment(_)))
        .map(|t| t.line)
        .collect();
    let mut table = AllowTable::default();
    for t in tokens {
        let TokenKind::Comment(text) = &t.kind else { continue };
        // `///` and `//!` lex as comments starting with '/' or '!'.
        if text.starts_with('/') || text.starts_with('!') {
            continue;
        }
        let Some(rest) = text.trim_start().strip_prefix(MARKER) else { continue };
        match parse_allow_body(rest.trim_start()) {
            Ok((rules, justification)) => {
                let target_line = if code_lines.contains(&t.line) { t.line } else { t.line + 1 };
                table.entries.push(Allow { target_line, rules, justification });
            }
            Err(why) => findings.push(Finding {
                file: file.to_string(),
                line: t.line,
                rule: Rule::BadAllow.name(),
                message: format!(
                    "malformed allow annotation ({why}); expected \
                     `ssplane-lint: allow(<rule>[, <rule>]) -- <justification>`"
                ),
            }),
        }
    }
    table
}

fn parse_allow_body(rest: &str) -> Result<(BTreeSet<Rule>, String), String> {
    let inner = rest.strip_prefix("allow(").ok_or_else(|| "missing `allow(`".to_string())?;
    let close = inner.find(')').ok_or_else(|| "missing `)`".to_string())?;
    let mut rules = BTreeSet::new();
    for token in inner[..close].split(',') {
        let token = token.trim();
        let rule = Rule::parse(token).ok_or_else(|| format!("unknown rule `{token}`"))?;
        rules.insert(rule);
    }
    if rules.is_empty() {
        return Err("empty rule list".to_string());
    }
    let after = inner[close + 1..].trim_start();
    let justification = after
        .strip_prefix("--")
        .map(str::trim)
        .ok_or_else(|| "missing `-- <justification>`".to_string())?;
    if justification.is_empty() {
        return Err("empty justification".to_string());
    }
    Ok((rules, justification.to_string()))
}

/// Integer cast targets [`Rule::LossyCast`] flags. `f64`/`f32` targets
/// are deliberately exempt: count→float casts for statistics are the
/// dominant benign pattern and lossless below 2^53.
const INT_TYPES: [&str; 12] =
    ["u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize"];

/// Identifiers that mean an entropy-fed or thread-local RNG is being
/// constructed.
const ENTROPY_IDENTS: [&str; 6] =
    ["from_entropy", "thread_rng", "ThreadRng", "OsRng", "from_os_rng", "getrandom"];

/// Scans one Rust source with the given rules. `file` is the
/// workspace-relative path used in findings.
pub fn scan_rust(file: &str, src: &str, rules: &[Rule]) -> (Vec<Finding>, AllowTable) {
    let tokens = lex(src);
    let mut findings = Vec::new();
    let mut allows = collect_allows(&tokens, file, &mut findings);
    let code: Vec<&Token> = code_tokens(&tokens);
    let skip = test_spans(&code);

    // One finding per (line, rule): `HashMap<K, HashMap<K, V>>` on one
    // line reads as one decision to fix.
    let mut seen: BTreeSet<(usize, Rule)> = BTreeSet::new();
    let mut emit = |rule: Rule, line: usize, message: String, allows: &mut AllowTable| {
        if seen.insert((line, rule)) && !allows.suppresses(rule, line) {
            findings.push(Finding { file: file.to_string(), line, rule: rule.name(), message });
        }
    };

    for (idx, tok) in code.iter().enumerate() {
        if skip[idx] {
            continue;
        }
        let TokenKind::Ident(name) = &tok.kind else { continue };
        let line = tok.line;
        if rules.contains(&Rule::HashIter)
            && (name == "HashMap" || name == "HashSet" || name == "RandomState")
        {
            emit(
                Rule::HashIter,
                line,
                format!(
                    "`{name}` in library code: hash iteration order is nondeterministic — use \
                     BTreeMap/BTreeSet or a sorted Vec, or justify with an allow annotation"
                ),
                &mut allows,
            );
        }
        if rules.contains(&Rule::WallClock) {
            let instant_now = name == "Instant"
                && matches!(code.get(idx + 1).map(|t| &t.kind), Some(TokenKind::Punct(':')))
                && matches!(code.get(idx + 2).map(|t| &t.kind), Some(TokenKind::Punct(':')))
                && matches!(code.get(idx + 3).map(|t| &t.kind),
                    Some(TokenKind::Ident(m)) if m == "now");
            if instant_now || name == "SystemTime" {
                emit(
                    Rule::WallClock,
                    line,
                    "wall-clock read outside the --timings side channel: results must be a pure \
                     function of the spec and seed"
                        .to_string(),
                    &mut allows,
                );
            }
        }
        if rules.contains(&Rule::UnseededRng) && ENTROPY_IDENTS.contains(&name.as_str()) {
            emit(
                Rule::UnseededRng,
                line,
                format!(
                    "`{name}`: entropy-source or thread-local RNG — every stream must derive \
                     from a scenario seed (SeedableRng::seed_from_u64)"
                ),
                &mut allows,
            );
        }
        if rules.contains(&Rule::LossyCast) && name == "as" {
            if let Some(TokenKind::Ident(ty)) = code.get(idx + 1).map(|t| &t.kind) {
                if INT_TYPES.contains(&ty.as_str()) {
                    emit(
                        Rule::LossyCast,
                        line,
                        format!(
                            "`as {ty}` in a scale-sensitive hot path can truncate silently at \
                             mega-constellation sizes — use try_from or an ssplane_lsn::cast \
                             helper"
                        ),
                        &mut allows,
                    );
                }
            }
        }
    }
    (findings, allows)
}

/// Marks the token spans belonging to `#[cfg(test)]` / `#[test]` /
/// `#[bench]` items (attribute through end of the annotated item), so
/// test-only code is exempt from every rule. Conservative: any `cfg`
/// attribute naming `test` without a `not` counts.
fn test_spans(code: &[&Token]) -> Vec<bool> {
    let n = code.len();
    let mut skip = vec![false; n];
    let mut i = 0;
    while i < n {
        if !matches!(code[i].kind, TokenKind::Punct('#')) {
            i += 1;
            continue;
        }
        let Some((attr_end, names)) = attribute_at(code, i) else {
            i += 1;
            continue;
        };
        let is_test = (names.iter().any(|s| s == "test") && !names.iter().any(|s| s == "not"))
            || names.iter().any(|s| s == "bench");
        if !is_test {
            i = attr_end + 1;
            continue;
        }
        // Hop over any further attributes on the same item.
        let mut j = attr_end + 1;
        while j < n && matches!(code[j].kind, TokenKind::Punct('#')) {
            match attribute_at(code, j) {
                Some((e, _)) => j = e + 1,
                None => break,
            }
        }
        // The item body: to the matching `}` of its first `{`, or to a
        // top-level `;` (e.g. `#[cfg(test)] use …;`).
        let mut depth = 0usize;
        let mut end = j;
        while end < n {
            match code[end].kind {
                TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        break;
                    }
                }
                TokenKind::Punct(';') if depth == 0 => break,
                _ => {}
            }
            end += 1;
        }
        for s in skip.iter_mut().take((end + 1).min(n)).skip(i) {
            *s = true;
        }
        i = end + 1;
    }
    skip
}

/// If an attribute starts at token `i` (`#`), returns the index of its
/// closing `]` and the identifiers inside.
fn attribute_at(code: &[&Token], i: usize) -> Option<(usize, Vec<String>)> {
    let mut j = i + 1;
    // Inner attribute `#![…]`.
    if matches!(code.get(j).map(|t| &t.kind), Some(TokenKind::Punct('!'))) {
        j += 1;
    }
    if !matches!(code.get(j).map(|t| &t.kind), Some(TokenKind::Punct('['))) {
        return None;
    }
    let mut depth = 0usize;
    let mut names = Vec::new();
    while j < code.len() {
        match &code[j].kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some((j, names));
                }
            }
            TokenKind::Ident(s) => names.push(s.clone()),
            _ => {}
        }
        j += 1;
    }
    None
}

/// The allow-count summary of a scan, aggregated by
/// [`crate::scan_workspace`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AllowCounts {
    /// Annotations present in the scanned sources.
    pub declared: usize,
    /// Annotations that suppressed at least one finding.
    pub used: usize,
}

impl AllowCounts {
    /// Adds one file's table into the totals.
    pub fn absorb(&mut self, table: &AllowTable) {
        self.declared += table.declared();
        self.used += table.used();
    }
}

/// Per-line allow map, exposed for the schema rule (TOML files share the
/// annotation grammar via `#` comments — not currently used, reserved).
pub type LineAllows = BTreeMap<usize, Vec<Allow>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_grammar_round_trip() {
        let (rules, why) =
            parse_allow_body("allow(hash-iter, lossy-cast) -- audited: bounded by node count")
                .unwrap();
        assert!(rules.contains(&Rule::HashIter) && rules.contains(&Rule::LossyCast));
        assert_eq!(why, "audited: bounded by node count");
        assert!(parse_allow_body("allow(hash-iter)").is_err(), "justification required");
        assert!(parse_allow_body("allow(warp-drive) -- x").is_err(), "unknown rule");
        assert!(parse_allow_body("allow() -- x").is_err(), "empty list");
    }

    #[test]
    fn cfg_test_items_are_exempt() {
        let src = "
            use std::collections::BTreeMap;
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                #[test]
                fn t() { let _m: HashMap<u8, u8> = HashMap::new(); }
            }
        ";
        let (findings, _) = scan_rust("x.rs", src, &[Rule::HashIter]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn cfg_not_test_is_scanned() {
        let src =
            "#[cfg(not(test))]\nfn f() { let _m = std::collections::HashMap::<u8, u8>::new(); }";
        let (findings, _) = scan_rust("x.rs", src, &[Rule::HashIter]);
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn trailing_and_line_above_allows_suppress_and_count() {
        let src = "
            // ssplane-lint: allow(wall-clock) -- test harness stopwatch
            let t0 = Instant::now();
            let t1 = Instant::now(); // ssplane-lint: allow(wall-clock) -- second stopwatch
            let t2 = Instant::now();
        ";
        let (findings, allows) = scan_rust("x.rs", src, &[Rule::WallClock]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 5);
        assert_eq!(allows.declared(), 2);
        assert_eq!(allows.used(), 2);
    }

    #[test]
    fn bad_allow_is_a_finding_and_does_not_suppress() {
        let src = "let t0 = Instant::now(); // ssplane-lint: allow(wall-clock)";
        let (findings, _) = scan_rust("x.rs", src, &[Rule::WallClock]);
        let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"bad-allow"), "{findings:?}");
        assert!(rules.contains(&"wall-clock"), "{findings:?}");
    }

    #[test]
    fn lossy_cast_flags_int_targets_only() {
        let src = "fn f(x: f64, n: usize) { let _a = x as usize; let _b = n as f64; }";
        let (findings, _) = scan_rust("x.rs", src, &[Rule::LossyCast]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("as usize"));
    }

    #[test]
    fn use_renames_are_not_casts() {
        let src = "use std::collections::BTreeMap as Map;\nfn f() -> Map<u8, u8> { Map::new() }";
        let (findings, _) = scan_rust("x.rs", src, &[Rule::LossyCast, Rule::HashIter]);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
