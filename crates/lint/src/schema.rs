//! The cross-file **scenario-schema** rule: extract the recognized
//! parameter surface from the scenario crate's `apply_param` match and
//! statically validate every `scenarios/*.toml` against it, so a typoed
//! key or sweep axis fails CI instead of silently no-oping.
//!
//! The extraction is lexical, not semantic: `apply_param` is the single
//! funnel every config key and sweep axis passes through at runtime (the
//! loader documents this), and its match arms are plain string literals,
//! so the set of `"<section>.<key>" =>` arm heads *is* the schema.

use crate::lexer::{code_tokens, lex, TokenKind};
use crate::rules::Rule;
use crate::Finding;
use std::collections::BTreeSet;

/// Extracts the recognized key set from the source of
/// `crates/scenario/src/sweep.rs` (the `apply_param` match arms).
///
/// # Errors
/// A human-readable message when the function or a plausible key set
/// cannot be found — extraction failure must fail the lint run loudly,
/// never degrade into "every key is valid".
pub fn extract_keys(sweep_rs: &str) -> Result<BTreeSet<String>, String> {
    let tokens = lex(sweep_rs);
    let code = code_tokens(&tokens);
    // Locate `fn apply_param` and its body's brace span.
    let mut start = None;
    for i in 0..code.len().saturating_sub(1) {
        if matches!(&code[i].kind, TokenKind::Ident(s) if s == "fn")
            && matches!(&code[i + 1].kind, TokenKind::Ident(s) if s == "apply_param")
        {
            start = Some(i);
            break;
        }
    }
    let start = start.ok_or("`fn apply_param` not found in sweep.rs")?;
    let mut depth = 0usize;
    let mut keys = BTreeSet::new();
    let mut entered = false;
    let mut i = start;
    while i < code.len() {
        match &code[i].kind {
            TokenKind::Punct('{') => {
                depth += 1;
                entered = true;
            }
            TokenKind::Punct('}') => {
                depth -= 1;
                if entered && depth == 0 {
                    break;
                }
            }
            TokenKind::Str(s) if entered => {
                // A match-arm head: string literal directly followed by
                // `=>`. Value-token matches ("per-plane", error texts)
                // are filtered by the key shape: dotted lowercase paths,
                // plus the two top-level scalars.
                let is_arm =
                    matches!(code.get(i + 1).map(|t| &t.kind), Some(TokenKind::Punct('=')))
                        && matches!(code.get(i + 2).map(|t| &t.kind), Some(TokenKind::Punct('>')));
                if is_arm && (s == "name" || s == "seed" || is_dotted_key(s)) {
                    keys.insert(s.clone());
                }
            }
            _ => {}
        }
        i += 1;
    }
    // The live surface holds 74 keys (the shell-first design registry
    // added design.slim_*/design.starlink_scale and
    // survivability.per_satellite); a count below 71 means arms were
    // lost or the match shape changed.
    if keys.len() < 71 {
        return Err(format!(
            "schema extraction found only {} keys in apply_param — the match shape has changed; \
             update crates/lint/src/schema.rs",
            keys.len()
        ));
    }
    Ok(keys)
}

/// Whether `s` looks like a dotted config path (`section.key[.sub]`):
/// non-empty lowercase/underscore segments joined by `.`.
fn is_dotted_key(s: &str) -> bool {
    s.contains('.')
        && s.split('.')
            .all(|seg| !seg.is_empty() && seg.chars().all(|c| c.is_ascii_lowercase() || c == '_'))
}

/// One `key = …` entry of the TOML subset: its resolved dotted path and
/// source line.
struct Entry {
    path: String,
    line: usize,
    in_sweep: bool,
}

/// Reads the flat-section TOML subset the scenario loader accepts, well
/// enough to recover every key path (values are skipped, multi-line
/// arrays balanced). Malformed lines become findings rather than errors:
/// the linter reports, the runtime loader rejects.
fn toml_entries(src: &str, file: &str, findings: &mut Vec<Finding>) -> Vec<Entry> {
    let mut entries = Vec::new();
    let mut section = String::new();
    let mut depth = 0i64; // unbalanced '[' of a continued array value
    for (k, raw) in src.lines().enumerate() {
        let line = k + 1;
        let trimmed = raw.trim();
        if depth > 0 {
            depth += bracket_balance(trimmed);
            continue;
        }
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('[') {
            match rest.split(']').next() {
                Some(name) if rest.contains(']') => section = name.trim().to_string(),
                _ => findings.push(Finding {
                    file: file.to_string(),
                    line,
                    rule: Rule::ScenarioSchema.name(),
                    message: format!("unterminated section header `{trimmed}`"),
                }),
            }
            continue;
        }
        let Some(eq) = trimmed.find('=') else {
            findings.push(Finding {
                file: file.to_string(),
                line,
                rule: Rule::ScenarioSchema.name(),
                message: format!("expected `key = value`, got `{trimmed}`"),
            });
            continue;
        };
        let mut key = trimmed[..eq].trim().to_string();
        if key.len() >= 2 && key.starts_with('"') && key.ends_with('"') {
            key = key[1..key.len() - 1].to_string();
        }
        let in_sweep = section == "sweep";
        let path = if in_sweep || section.is_empty() { key } else { format!("{section}.{key}") };
        entries.push(Entry { path, line, in_sweep });
        depth += bracket_balance(&trimmed[eq + 1..]);
    }
    entries
}

/// Net `[`-minus-`]` of a value fragment, ignoring brackets inside
/// quoted strings and after `#` comments.
fn bracket_balance(s: &str) -> i64 {
    let mut depth = 0i64;
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => break,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth
}

/// Validates one scenario TOML source against the recognized key set,
/// appending findings. `file` is the path used in findings.
pub fn validate_scenario(
    file: &str,
    src: &str,
    keys: &BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    for entry in toml_entries(src, file, findings) {
        if entry.in_sweep && (entry.path == "name" || entry.path == "seed") {
            findings.push(Finding {
                file: file.to_string(),
                line: entry.line,
                rule: Rule::ScenarioSchema.name(),
                message: format!(
                    "`{}` cannot be a sweep axis: expansion derives per-scenario names and seeds",
                    entry.path
                ),
            });
            continue;
        }
        if !keys.contains(&entry.path) {
            let hint = nearest_key(&entry.path, keys)
                .map(|k| format!(" — did you mean `{k}`?"))
                .unwrap_or_default();
            findings.push(Finding {
                file: file.to_string(),
                line: entry.line,
                rule: Rule::ScenarioSchema.name(),
                message: format!(
                    "unknown scenario key `{}`: not in the apply_param surface{hint}",
                    entry.path
                ),
            });
        }
    }
}

/// The closest recognized key within edit distance 3, for typo hints.
fn nearest_key<'k>(path: &str, keys: &'k BTreeSet<String>) -> Option<&'k String> {
    keys.iter().map(|k| (edit_distance(path, k), k)).filter(|&(d, _)| d <= 3).min().map(|(_, k)| k)
}

/// Plain Levenshtein distance (short strings: the O(nm) table is fine).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_keys() -> BTreeSet<String> {
        ["name", "seed", "attack.planes_lost", "demand.total_demand_b", "network.enabled"]
            .into_iter()
            .map(String::from)
            .collect()
    }

    #[test]
    fn dotted_key_shape() {
        assert!(is_dotted_key("attack.planes_lost"));
        assert!(is_dotted_key("survivability.failure.kind"));
        assert!(!is_dotted_key("per-plane"));
        assert!(!is_dotted_key("name"));
        assert!(!is_dotted_key("a..b"));
    }

    #[test]
    fn extraction_reads_match_arms_only() {
        let src = r#"
            pub fn apply_param(spec: &mut S, key: &str, value: &V) -> Result<()> {
                match key {
                    "name" => spec.name = v(key, value)?,
                    "seed" => spec.seed = v(key, value)?,
                    "attack.planes_lost" => spec.attack = v(key, value)?,
                    "demand.total_demand_b" => {
                        spec.demand = need(key, value, "a number")?;
                    }
                    "spares.policy" => {
                        spec.policy = match v(key, value)? {
                            "per-plane" => P::PerPlane,
                            other => return Err(bad(key, other, "per-plane")),
                        };
                    }
                    _ => return Err(Unknown { key: key.to_string() }),
                }
                Ok(())
            }
        "#;
        // The 20-key floor rejects this toy surface, but the message
        // proves exactly the five arm heads were collected — the inner
        // "per-plane" value match and the "a number" argument were not.
        let err = extract_keys(src).unwrap_err();
        assert!(err.contains("only 5 keys"), "{err}");
    }

    #[test]
    fn validation_flags_typos_with_hints() {
        let mut findings = Vec::new();
        validate_scenario(
            "s.toml",
            "name = \"x\"\n[attack]\nplanes_lost = 2\nplane_lost = 3\n",
            &demo_keys(),
            &mut findings,
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 4);
        assert!(findings[0].message.contains("did you mean `attack.planes_lost`"));
    }

    #[test]
    fn sweep_keys_are_full_paths_and_reserved_axes_rejected() {
        let mut findings = Vec::new();
        validate_scenario(
            "s.toml",
            "[sweep]\n\"attack.planes_lost\" = [0, 2]\n\"demand.warp\" = [1]\n\"seed\" = [1, 2]\n",
            &demo_keys(),
            &mut findings,
        );
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].message.contains("demand.warp"));
        assert!(findings[1].message.contains("cannot be a sweep axis"));
    }

    #[test]
    fn multiline_arrays_and_comments_are_balanced() {
        let mut findings = Vec::new();
        validate_scenario(
            "s.toml",
            "# comment\n[sweep]\n\"attack.planes_lost\" = [\n  0, # [not a key]\n  2,\n]\n\
             \"network.enabled\" = [true]\n",
            &demo_keys(),
            &mut findings,
        );
        assert!(findings.is_empty(), "{findings:?}");
    }
}
