// Allow-annotation fixture: a trailing allow, a standalone allow, and
// one malformed allow (no justification) that must itself be flagged.
use std::collections::HashMap; // ssplane-lint: allow(hash-iter) -- fixture: trailing annotation

pub fn tick() -> std::time::Duration {
    // ssplane-lint: allow(wall-clock) -- fixture: standalone annotation targets the next line
    let start = std::time::Instant::now();
    start.elapsed()
}

pub fn shrink(n: u64) -> u32 {
    // ssplane-lint: allow(lossy-cast)
    n as u32
}

pub fn keep(m: HashMap<u32, u32>) -> usize {
    m.len()
}
