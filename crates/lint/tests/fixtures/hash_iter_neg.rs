// Negative fixture: ordered collections only.
use std::collections::BTreeMap;

pub fn tally(xs: &[u32]) -> Vec<(u32, usize)> {
    let mut counts = BTreeMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0usize) += 1;
    }
    counts.into_iter().collect()
}
