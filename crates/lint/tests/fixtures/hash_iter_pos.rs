// Positive fixture: hash collections in library code.
use std::collections::HashMap;

pub fn tally(xs: &[u32]) -> Vec<(u32, usize)> {
    let mut counts = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0usize) += 1;
    }
    let mut out: Vec<_> = counts.into_iter().collect();
    out.sort_unstable();
    out
}
