// Negative fixture: float statistics casts, checked conversions, and
// `use … as …` renames are all fine.
pub use std::vec::Vec as List;

pub fn ratio(hits: usize, total: usize) -> f64 {
    hits as f64 / total as f64
}

pub fn checked(n: u64) -> u32 {
    u32::try_from(n).expect("count exceeds u32")
}
