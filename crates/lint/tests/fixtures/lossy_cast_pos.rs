// Positive fixture: silent truncation candidates in a hot path.
pub fn shrink(n: u64) -> u32 {
    n as u32
}

pub fn index(x: f64) -> usize {
    x as usize
}
