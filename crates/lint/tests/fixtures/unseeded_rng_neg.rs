// Negative fixture: every stream derives from a scenario seed.
use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn stream(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
