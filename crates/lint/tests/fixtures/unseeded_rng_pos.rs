// Positive fixture: entropy-fed and thread-local RNG construction.
pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rand::Rng::gen(&mut rng)
}

pub fn fresh() -> rand::rngs::StdRng {
    rand::SeedableRng::from_entropy()
}
