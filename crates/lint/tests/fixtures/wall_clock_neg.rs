// Negative fixture: logical time only — results are a pure function of
// the tick count.
pub struct Tick(pub u64);

pub fn advance(t: Tick) -> Tick {
    Tick(t.0 + 1)
}
