// Positive fixture: wall-clock reads in result-producing code.
pub fn elapsed_seconds() -> f64 {
    let start = std::time::Instant::now();
    start.elapsed().as_secs_f64()
}

pub fn epoch_millis() -> u128 {
    use std::time::SystemTime;
    SystemTime::now().duration_since(SystemTime::UNIX_EPOCH).unwrap().as_millis()
}
