//! Fixture-driven rule tests plus the live-workspace gate: the real
//! tree must scan clean, and deliberate corruptions (a hash map in a
//! `crates/lsn` hot path, a typo'd scenario key) must be caught.

use ssplane_lint::rules::{scan_rust, Rule, ALL_RULES};
use ssplane_lint::schema::{extract_keys, validate_scenario};
use ssplane_lint::{rules_for_path, scan_workspace, Finding};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn scan_fixture(name: &str, rules: &[Rule]) -> Vec<Finding> {
    scan_rust(name, &fixture(name), rules).0
}

/// The live schema surface, extracted exactly as the workspace scan
/// extracts it.
fn live_keys() -> BTreeSet<String> {
    let sweep = workspace_root().join("crates/scenario/src/sweep.rs");
    extract_keys(&std::fs::read_to_string(sweep).expect("sweep.rs readable"))
        .expect("schema extraction")
}

#[test]
fn hash_iter_positive_and_negative() {
    let findings = scan_fixture("hash_iter_pos.rs", &ALL_RULES);
    assert!(!findings.is_empty(), "positive fixture must trip hash-iter");
    assert!(findings.iter().all(|f| f.rule == "hash-iter"), "{findings:?}");
    assert!(scan_fixture("hash_iter_neg.rs", &ALL_RULES).is_empty());
}

#[test]
fn wall_clock_positive_and_negative() {
    let findings = scan_fixture("wall_clock_pos.rs", &ALL_RULES);
    assert!(findings.len() >= 2, "Instant::now and SystemTime must both trip: {findings:?}");
    assert!(findings.iter().all(|f| f.rule == "wall-clock"), "{findings:?}");
    assert!(scan_fixture("wall_clock_neg.rs", &ALL_RULES).is_empty());
}

#[test]
fn unseeded_rng_positive_and_negative() {
    let findings = scan_fixture("unseeded_rng_pos.rs", &ALL_RULES);
    assert!(findings.len() >= 2, "thread_rng and from_entropy must both trip: {findings:?}");
    assert!(findings.iter().all(|f| f.rule == "unseeded-rng"), "{findings:?}");
    assert!(scan_fixture("unseeded_rng_neg.rs", &ALL_RULES).is_empty());
}

#[test]
fn lossy_cast_positive_and_negative() {
    let findings = scan_fixture("lossy_cast_pos.rs", &ALL_RULES);
    assert_eq!(findings.len(), 2, "`as u32` and `as usize` must both trip: {findings:?}");
    assert!(findings.iter().all(|f| f.rule == "lossy-cast"), "{findings:?}");
    // Float targets, try_from, and `use … as …` renames are all clean.
    assert!(scan_fixture("lossy_cast_neg.rs", &ALL_RULES).is_empty());
}

#[test]
fn lossy_cast_only_fires_where_enabled() {
    // The same source is clean when scanned with a non-lsn rule set.
    let rules = rules_for_path("crates/scenario/src/runner.rs");
    assert!(!rules.contains(&Rule::LossyCast));
    assert!(scan_fixture("lossy_cast_pos.rs", &rules).is_empty());
}

#[test]
fn allow_annotations_suppress_and_malformed_allows_are_findings() {
    let (findings, allows) = scan_rust("allows.rs", &fixture("allows.rs"), &ALL_RULES);
    // Trailing hash-iter allow and standalone wall-clock allow suppress;
    // the justification-free lossy-cast allow suppresses nothing and is
    // itself flagged.
    let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    assert!(rules.contains(&"bad-allow"), "{findings:?}");
    assert!(rules.contains(&"lossy-cast"), "malformed allow must not suppress: {findings:?}");
    assert!(!rules.contains(&"wall-clock"), "{findings:?}");
    // The second HashMap mention (no annotation) still trips.
    assert!(rules.contains(&"hash-iter"), "{findings:?}");
    assert_eq!(findings.iter().filter(|f| f.rule == "hash-iter").count(), 1);
    assert_eq!(allows.declared(), 2);
    assert_eq!(allows.used(), 2);
}

#[test]
fn schema_accepts_clean_and_rejects_typos() {
    let keys = live_keys();
    let mut findings = Vec::new();
    validate_scenario("scenario_clean.toml", &fixture("scenario_clean.toml"), &keys, &mut findings);
    assert!(findings.is_empty(), "{findings:?}");

    validate_scenario("scenario_typo.toml", &fixture("scenario_typo.toml"), &keys, &mut findings);
    assert_eq!(findings.len(), 3, "{findings:?}");
    assert!(findings.iter().all(|f| f.rule == "scenario-schema"));
    let typo = &findings[0];
    assert!(typo.message.contains("attack.planes_lots"), "{typo}");
    assert!(typo.message.contains("did you mean `attack.planes_lost`"), "{typo}");
    assert!(findings[1].message.contains("made_up.knob"), "{}", findings[1]);
    assert!(findings[2].message.contains("cannot be a sweep axis"), "{}", findings[2]);
}

#[test]
fn live_workspace_is_clean() {
    let report = scan_workspace(&workspace_root()).expect("workspace scan");
    assert!(
        report.is_clean(),
        "the workspace must lint clean; findings:\n{}",
        report.findings.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
    // Every allow must be justified AND load-bearing — a stale allow
    // (declared but suppressing nothing) fails here.
    assert_eq!(report.allows.declared, report.allows.used, "stale allow annotation");
    assert!(report.allows.declared <= 4, "allow budget exceeded: {}", report.allows.declared);
    assert!(report.files_scanned > 50, "scan missed the tree: {}", report.files_scanned);
    assert!(report.scenarios_checked >= 10, "scan missed scenarios: {}", report.scenarios_checked);
}

#[test]
fn workspace_scan_is_deterministic() {
    let root = workspace_root();
    let a = scan_workspace(&root).expect("scan");
    let b = scan_workspace(&root).expect("scan");
    assert_eq!(a, b);
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn corrupting_lsn_code_is_caught() {
    // The acceptance corruption: a hash map introduced into a crates/lsn
    // hot path must produce findings under that path's rule set.
    let rules = rules_for_path("crates/lsn/src/percolation.rs");
    let corrupt = "pub fn bad(n: u64) -> usize {\n    let m = std::collections::HashMap::<u64, \
                   u64>::new();\n    m.len() + n as usize\n}\n";
    let (findings, _) = scan_rust("crates/lsn/src/percolation.rs", corrupt, &rules);
    let rules_hit: BTreeSet<&str> = findings.iter().map(|f| f.rule).collect();
    assert!(rules_hit.contains("hash-iter"), "{findings:?}");
    assert!(rules_hit.contains("lossy-cast"), "{findings:?}");
}

#[test]
fn corrupting_a_scenario_key_is_caught() {
    // The acceptance corruption: typo one key of a real shipped scenario.
    let keys = live_keys();
    let baseline = std::fs::read_to_string(workspace_root().join("scenarios/baseline.toml"))
        .expect("baseline scenario readable");
    let corrupt = baseline.replacen("[spares]", "[spare]", 1);
    assert_ne!(baseline, corrupt, "corruption did not apply");
    let mut findings = Vec::new();
    validate_scenario("scenarios/baseline.toml", &corrupt, &keys, &mut findings);
    assert!(!findings.is_empty(), "typo'd section must be flagged");
    assert!(findings.iter().all(|f| f.rule == "scenario-schema"));
}
