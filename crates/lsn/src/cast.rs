//! Checked index/count conversions for the scale-sensitive hot paths.
//!
//! At 10k→100k-satellite scale, raw `as`-casts between index/count
//! types stop being harmless: `f64 → usize` truncates toward zero
//! silently (and maps NaN/negatives to 0 on some paths), and
//! `u64 → usize` would wrap on a 32-bit host. The **lossy-cast** lint
//! rule bans `as`-casts to integer types throughout `crates/lsn`; these
//! helpers are the sanctioned replacements — each states its domain and
//! panics loudly (debug *and* release) instead of truncating quietly.

/// Widens a count to `u64`. Infallible on every supported platform
/// (usize ≤ 64 bits), expressed through `try_from` so the domain claim
/// is checked, not assumed.
#[inline]
pub fn count_u64(n: usize) -> u64 {
    u64::try_from(n).expect("count exceeds u64")
}

/// Narrows a `u64` count (bounded by a node/satellite count that was a
/// `usize` to begin with) back to `usize`. Panics on a 32-bit host if
/// the count genuinely overflows rather than wrapping.
#[inline]
pub fn count_usize(n: u64) -> usize {
    usize::try_from(n).expect("count exceeds usize")
}

/// Converts a non-negative finite `f64` (a rank, a scaled threshold)
/// into a `usize` index. The float must already be integral-intent —
/// callers `ceil()`/`floor()` first; values at or above 2^53 have lost
/// integer precision and are rejected.
///
/// # Panics
/// On NaN, infinities, negatives, or magnitudes at/above 2^53.
#[inline]
pub fn f64_to_index(x: f64) -> usize {
    const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
    assert!(
        x.is_finite() && (0.0..MAX_EXACT).contains(&x),
        "f64_to_index: {x} outside the exactly-representable index domain"
    );
    // The one audited truncation site the checked helpers funnel into.
    x as usize // ssplane-lint: allow(lossy-cast) -- domain asserted non-negative finite < 2^53 above
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_domains() {
        assert_eq!(count_u64(0), 0);
        assert_eq!(count_u64(123_456), 123_456);
        assert_eq!(count_usize(count_u64(usize::MAX / 2)), usize::MAX / 2);
        assert_eq!(f64_to_index(0.0), 0);
        assert_eq!(f64_to_index(42.9), 42, "truncation toward zero, post-ceil by callers");
        assert_eq!(f64_to_index(100_000.0), 100_000);
    }

    #[test]
    fn bad_floats_panic_instead_of_truncating() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0, 9.1e15] {
            let res = std::panic::catch_unwind(|| f64_to_index(bad));
            assert!(res.is_err(), "{bad} should panic");
        }
    }
}
