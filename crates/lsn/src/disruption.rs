//! The pluggable disruption API: attacks and failure processes.
//!
//! The paper's survivability argument (§3.2, §5) is about how a
//! constellation *degrades* — under deliberate attacks and
//! radiation-driven failures — yet the original model was a hard-coded
//! "remove k strided planes" helper plus one closed exponential renewal
//! loop, neither of which ever touched the network. This module opens
//! both surfaces, mirroring the `ssplane_core::system::Designer`
//! registry pattern:
//!
//! * an [`AttackModel`] maps a constellation (an [`AttackTarget`] view of
//!   its planes) to the set of destroyed slots — shipped models:
//!   [`LeadingPlanes`] (byte-compatible with the historical strided
//!   plane-loss helper), [`RandomSats`], [`DeclinationBand`] (a
//!   debris-event-like regional loss), and [`WholeShell`];
//! * a [`FailureProcess`] samples satellite lifetimes — shipped
//!   processes: [`RadiationExponential`] (the historical fluence-driven
//!   exponential) and [`WeibullBathtub`] (infant mortality plus
//!   dose-accelerated wear-out);
//! * an [`OutageTimeline`] is the deterministic, seeded product of a
//!   failure process run through the spare/resupply machinery (see
//!   [`crate::survivability::outage_timeline`]): per-satellite
//!   `[start, end)` outage intervals over the mission, instead of a
//!   scalar availability — the raw material the degraded-network stage
//!   masks [`crate::snapshot::Snapshot`]s with.

use crate::error::{LsnError, Result};
use crate::failures::FailureModel;
use crate::topology::SatId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssplane_astro::kepler::OrbitalElements;
use ssplane_astro::propagate::J2Propagator;
use ssplane_astro::time::Epoch;
use ssplane_radiation::fluence::DailyFluence;

/// The view of a constellation an attack acts on: per-plane satellite
/// elements (design order), a group tag per plane (the fluence-evaluation
/// group — SS: the plane itself; Walker: the owning shell; RGT: the
/// track), and the epoch geometry-dependent attacks evaluate at.
#[derive(Debug, Clone)]
pub struct AttackTarget<'a> {
    /// Satellites per plane, in design (attack/spares) order.
    pub planes: Vec<&'a [OrbitalElements]>,
    /// Evaluation-group (shell) tag per plane.
    pub plane_groups: Vec<usize>,
    /// The epoch position-dependent attacks evaluate the geometry at.
    pub epoch: Epoch,
}

impl AttackTarget<'_> {
    /// Total satellites across planes.
    pub fn total_sats(&self) -> usize {
        self.planes.iter().map(|p| p.len()).sum()
    }
}

/// A deliberate-attack model: maps a constellation to the set of
/// destroyed slots. Implementations must be deterministic in
/// `(target, seed)` — the scenario engine's byte-identical-output
/// contract extends to attacks.
pub trait AttackModel {
    /// The model's registry name (also its config token).
    fn name(&self) -> &'static str;

    /// The destroyed slots, sorted plane-major, each listed once.
    ///
    /// # Errors
    /// Model-specific configuration failure (e.g. a shell index outside
    /// the target's groups).
    fn destroyed(&self, target: &AttackTarget<'_>, seed: u64) -> Result<Vec<SatId>>;
}

/// The plane indices removed by a `planes_lost`-plane attack on `n`
/// planes: evenly strided so the loss spreads across the constellation
/// (the strongest variant of the attack for a +grid topology). This is
/// the exact historical `attacked_indices` selection, kept as a free
/// function so the parity test can pin [`LeadingPlanes`] against it.
pub fn strided_plane_indices(n: usize, planes_lost: usize) -> Vec<usize> {
    let lost = planes_lost.min(n);
    if lost == 0 {
        return Vec::new();
    }
    (0..lost).map(|k| k * n / lost).collect()
}

/// Whole-plane loss at evenly strided plane indices — byte-compatible
/// with the historical `attacked_indices` scenario helper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeadingPlanes {
    /// Whole planes destroyed (clamped to the plane count).
    pub planes_lost: usize,
}

impl AttackModel for LeadingPlanes {
    fn name(&self) -> &'static str {
        "leading-planes"
    }

    fn destroyed(&self, target: &AttackTarget<'_>, _seed: u64) -> Result<Vec<SatId>> {
        let hit = strided_plane_indices(target.planes.len(), self.planes_lost);
        Ok(hit
            .into_iter()
            .flat_map(|p| (0..target.planes[p].len()).map(move |s| SatId { plane: p, slot: s }))
            .collect())
    }
}

/// Uniform random satellite loss: `sats_lost` distinct satellites drawn
/// without replacement, seeded — the "shot noise" counterpart of the
/// structured plane attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomSats {
    /// Satellites destroyed (clamped to the fleet size).
    pub sats_lost: usize,
}

impl AttackModel for RandomSats {
    fn name(&self) -> &'static str {
        "random-sats"
    }

    fn destroyed(&self, target: &AttackTarget<'_>, seed: u64) -> Result<Vec<SatId>> {
        let ids: Vec<SatId> = target
            .planes
            .iter()
            .enumerate()
            .flat_map(|(p, plane)| (0..plane.len()).map(move |s| SatId { plane: p, slot: s }))
            .collect();
        let lost = self.sats_lost.min(ids.len());
        // Partial Fisher-Yates over the flat id list: the first `lost`
        // entries after shuffling are the victims. The per-step draw is
        // the shared `gen_index` float-scaled recipe, so the seeded
        // victim sets are byte-identical to the historical inline draw.
        let mut pool = ids;
        let mut rng = StdRng::seed_from_u64(seed);
        for k in 0..lost {
            let j = k + rng.gen_index(pool.len() - k);
            pool.swap(k, j);
        }
        let mut out: Vec<SatId> = pool.into_iter().take(lost).collect();
        out.sort_unstable();
        Ok(out)
    }
}

/// Regional loss à la a debris event: every satellite whose geocentric
/// declination at the target epoch falls inside `[min_deg, max_deg]` is
/// destroyed — the signature of a fragmentation cloud spread along a
/// latitude band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeclinationBand {
    /// Band lower edge \[deg\].
    pub min_deg: f64,
    /// Band upper edge \[deg\].
    pub max_deg: f64,
}

impl AttackModel for DeclinationBand {
    fn name(&self) -> &'static str {
        "declination-band"
    }

    fn destroyed(&self, target: &AttackTarget<'_>, _seed: u64) -> Result<Vec<SatId>> {
        if !(self.min_deg.is_finite() && self.max_deg.is_finite() && self.min_deg <= self.max_deg) {
            return Err(LsnError::BadParameter {
                name: "DeclinationBand",
                constraint: "finite min_deg <= max_deg",
            });
        }
        let (lo, hi) = (self.min_deg.to_radians(), self.max_deg.to_radians());
        let mut out = Vec::new();
        for (p, plane) in target.planes.iter().enumerate() {
            for (s, el) in plane.iter().enumerate() {
                let r = J2Propagator::new(target.epoch, *el)?.position_at(target.epoch)?;
                let dec = (r.z / r.norm()).asin();
                if (lo..=hi).contains(&dec) {
                    out.push(SatId { plane: p, slot: s });
                }
            }
        }
        Ok(out)
    }
}

/// Whole-shell loss: every plane tagged with evaluation group `shell` is
/// destroyed (for an SS design a "shell" is one plane; for Walker the
/// whole stacked shell; for RGT the entire track).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WholeShell {
    /// The evaluation-group index to destroy.
    pub shell: usize,
}

impl AttackModel for WholeShell {
    fn name(&self) -> &'static str {
        "shell"
    }

    fn destroyed(&self, target: &AttackTarget<'_>, _seed: u64) -> Result<Vec<SatId>> {
        let n_groups = target.plane_groups.iter().max().map_or(0, |&g| g + 1);
        if self.shell >= n_groups {
            return Err(LsnError::BadParameter {
                name: "WholeShell::shell",
                constraint: "< the target's evaluation-group count",
            });
        }
        Ok(target
            .plane_groups
            .iter()
            .enumerate()
            .filter(|&(_, &g)| g == self.shell)
            .flat_map(|(p, _)| {
                (0..target.planes[p].len()).map(move |s| SatId { plane: p, slot: s })
            })
            .collect())
    }
}

/// A satellite failure process: samples the lifetime of one (new) unit
/// under a given radiation dose. Lifetimes are drawn per unit — a
/// replacement satellite starts a fresh life, so infant mortality applies
/// to spares too.
pub trait FailureProcess {
    /// The process's registry name (also its config token).
    fn name(&self) -> &'static str;

    /// Checks the process parameters once before a simulation.
    ///
    /// # Errors
    /// Degenerate configurations (zero total hazard, non-positive shapes
    /// or scales).
    fn validate(&self) -> Result<()>;

    /// Samples one unit's lifetime \[days\] under daily dose `dose`,
    /// advancing `rng` deterministically.
    fn sample_lifetime_days(&self, dose: DailyFluence, rng: &mut StdRng) -> f64;
}

/// The historical radiation-driven exponential process: constant hazard
/// `baseline + electron_coeff·dose_e + proton_coeff·dose_p` per year (see
/// [`FailureModel`]). One uniform draw per lifetime, arithmetic identical
/// to the original closed renewal loop — the survivability goldens pin
/// this bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadiationExponential {
    /// The hazard model.
    pub model: FailureModel,
}

impl FailureProcess for RadiationExponential {
    fn name(&self) -> &'static str {
        "exponential"
    }

    fn validate(&self) -> Result<()> {
        // The same guard sample_fleet applies: non-negative coefficients
        // with positive total hazard.
        self.model.sample_fleet(&[DailyFluence { electron: 0.0, proton: 0.0 }], 0).map(|_| ())
    }

    fn sample_lifetime_days(&self, dose: DailyFluence, rng: &mut StdRng) -> f64 {
        let hazard_per_day = self.model.hazard_per_year(dose) / 365.25;
        let u: f64 = rng.gen::<f64>().max(1e-300);
        -u.ln() / hazard_per_day
    }
}

/// A bathtub-curve process: the unit's lifetime is the minimum of an
/// infant-mortality Weibull (shape < 1: deployment defects surface early)
/// and a wear-out Weibull (shape > 1) whose characteristic life shrinks
/// with radiation dose — `scale / (1 + electron_accel·dose_e +
/// proton_accel·dose_p)`. Two uniform draws per lifetime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeibullBathtub {
    /// Infant-mortality Weibull shape (< 1 for a decreasing early
    /// hazard).
    pub infant_shape: f64,
    /// Infant-mortality characteristic life \[years\].
    pub infant_scale_years: f64,
    /// Wear-out Weibull shape (> 1 for an increasing late hazard).
    pub wearout_shape: f64,
    /// Wear-out characteristic life at zero dose \[years\].
    pub wearout_scale_years: f64,
    /// Wear-out acceleration per unit electron daily fluence.
    pub electron_accel: f64,
    /// Wear-out acceleration per unit proton daily fluence.
    pub proton_accel: f64,
}

impl Default for WeibullBathtub {
    fn default() -> Self {
        // ~4% first-year infant mortality; an 8-year zero-dose design
        // life pulled to ~5 years at a typical LEO dose — the same "few
        // percent a year, radiation-dominated" regime the exponential
        // default is calibrated to.
        WeibullBathtub {
            infant_shape: 0.5,
            infant_scale_years: 500.0,
            wearout_shape: 3.0,
            wearout_scale_years: 8.0,
            electron_accel: 1.2e-11,
            proton_accel: 1.0e-8,
        }
    }
}

impl WeibullBathtub {
    /// The dose-accelerated wear-out characteristic life \[years\].
    pub fn wearout_scale_at(&self, dose: DailyFluence) -> f64 {
        self.wearout_scale_years
            / (1.0 + self.electron_accel * dose.electron + self.proton_accel * dose.proton)
    }
}

impl FailureProcess for WeibullBathtub {
    fn name(&self) -> &'static str {
        "weibull"
    }

    fn validate(&self) -> Result<()> {
        let pos = |x: f64| x.is_finite() && x > 0.0;
        if !(pos(self.infant_shape)
            && pos(self.infant_scale_years)
            && pos(self.wearout_shape)
            && pos(self.wearout_scale_years))
            || self.electron_accel < 0.0
            || self.proton_accel < 0.0
        {
            return Err(LsnError::BadParameter {
                name: "WeibullBathtub",
                constraint: "positive shapes/scales and non-negative accelerations",
            });
        }
        Ok(())
    }

    fn sample_lifetime_days(&self, dose: DailyFluence, rng: &mut StdRng) -> f64 {
        // Inverse-CDF Weibull: scale * (-ln u)^(1/shape).
        let u1: f64 = rng.gen::<f64>().max(1e-300);
        let u2: f64 = rng.gen::<f64>().max(1e-300);
        let infant = self.infant_scale_years * (-u1.ln()).powf(1.0 / self.infant_shape);
        let wearout = self.wearout_scale_at(dose) * (-u2.ln()).powf(1.0 / self.wearout_shape);
        infant.min(wearout) * 365.25
    }
}

/// One `[start, end)` service outage of one satellite slot \[days since
/// mission start\].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutageInterval {
    /// Outage start \[days\] (the failure instant).
    pub start_day: f64,
    /// Outage end \[days\] (replacement in service), clamped to the
    /// horizon.
    pub end_day: f64,
}

impl OutageInterval {
    /// Interval length \[days\].
    pub fn days(&self) -> f64 {
        self.end_day - self.start_day
    }

    /// Whether `day` falls inside the outage.
    pub fn contains(&self, day: f64) -> bool {
        (self.start_day..self.end_day).contains(&day)
    }
}

/// The time-resolved product of a failure process run through the spare
/// machinery: per-satellite outage intervals over the mission horizon —
/// what a scalar availability throws away. Built by
/// [`crate::survivability::outage_timeline`]; deterministic in its seed.
#[derive(Debug, Clone, PartialEq)]
pub struct OutageTimeline {
    /// Mission horizon \[days\].
    pub horizon_days: f64,
    /// Start index per plane (with a trailing total) in the flat
    /// plane-major slot order — the layout snapshots share.
    pub plane_offsets: Vec<usize>,
    /// Chronologically sorted outage intervals per slot, flat plane-major.
    /// Slots destroyed before the mission (an attack) carry one interval
    /// covering the whole horizon.
    pub outages: Vec<Vec<OutageInterval>>,
    /// Failures over the horizon (excluding pre-destroyed slots).
    pub failures: usize,
    /// Replacements performed.
    pub replacements: usize,
    /// Spares consumed (counting resupplies).
    pub spares_consumed: usize,
    /// Slot-days lost to failure-driven vacancies, accumulated in the
    /// engine's event order — bit-identical to the scalar simulation's
    /// running sum (recomputing it from the intervals would round
    /// differently). Pre-destroyed slots are *not* counted here: their
    /// loss is the attack's accounting, as in the scalar report.
    pub vacancy_slot_days: f64,
    /// Slots destroyed before the mission (the `dead` mask's victims).
    pub destroyed_slots: usize,
}

impl OutageTimeline {
    /// Total satellite slots.
    pub fn n_sats(&self) -> usize {
        self.outages.len()
    }

    /// Slot-days lost to failure-driven vacancies (the scalar report's
    /// `lost_slot_days`; destroyed slots excluded).
    pub fn lost_slot_days(&self) -> f64 {
        self.vacancy_slot_days
    }

    /// Time-averaged fraction of slots in service, counting destroyed
    /// slots as out for the whole horizon.
    pub fn availability(&self) -> f64 {
        let slot_days = self.n_sats() as f64 * self.horizon_days;
        if slot_days <= 0.0 {
            return 0.0;
        }
        1.0 - (self.vacancy_slot_days + self.destroyed_slots as f64 * self.horizon_days) / slot_days
    }

    /// Whether slot `flat` is in service at mission `day`.
    pub fn alive_at(&self, flat: usize, day: f64) -> bool {
        !self.outages[flat].iter().any(|o| o.contains(day))
    }

    /// Fills `out[flat] &= alive_at(flat, day)` for every slot —
    /// composing the timeline onto an existing (e.g. attack) mask.
    ///
    /// # Panics
    /// If `out.len() != self.n_sats()`.
    pub fn mask_alive(&self, day: f64, out: &mut [bool]) {
        assert_eq!(out.len(), self.n_sats(), "mask length mismatch");
        for (flat, alive) in out.iter_mut().enumerate() {
            *alive = *alive && self.alive_at(flat, day);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssplane_astro::sunsync::sun_synchronous_orbit;

    fn elements(planes: usize, slots: usize) -> Vec<Vec<OrbitalElements>> {
        let epoch = Epoch::J2000;
        let orbit = sun_synchronous_orbit(560.0).unwrap();
        (0..planes)
            .map(|p| orbit.with_ltan(7.0 + p as f64 * 1.3).plane_elements(epoch, slots).unwrap())
            .collect()
    }

    fn target(planes: &[Vec<OrbitalElements>], groups: Vec<usize>) -> AttackTarget<'_> {
        AttackTarget {
            planes: planes.iter().map(Vec::as_slice).collect(),
            plane_groups: groups,
            epoch: Epoch::J2000,
        }
    }

    #[test]
    fn leading_planes_matches_the_historical_stride() {
        // The parity pin: for every (n, lost), LeadingPlanes destroys the
        // whole planes the original attacked_indices helper selected.
        for n in 1..=12usize {
            let planes = elements(n, 4);
            for lost in 0..=n + 3 {
                let t = target(&planes, (0..n).collect());
                let destroyed = LeadingPlanes { planes_lost: lost }.destroyed(&t, 99).unwrap();
                let expect: Vec<SatId> = strided_plane_indices(n, lost)
                    .into_iter()
                    .flat_map(|p| (0..4).map(move |s| SatId { plane: p, slot: s }))
                    .collect();
                assert_eq!(destroyed, expect, "n={n} lost={lost}");
            }
        }
        // Spot-check the stride itself against the historical values.
        assert_eq!(strided_plane_indices(10, 0), Vec::<usize>::new());
        assert_eq!(strided_plane_indices(10, 2), vec![0, 5]);
        assert_eq!(strided_plane_indices(4, 9), vec![0, 1, 2, 3]);
    }

    #[test]
    fn random_sats_deterministic_distinct_and_clamped() {
        let planes = elements(5, 8);
        let t = target(&planes, (0..5).collect());
        let a = RandomSats { sats_lost: 13 }.destroyed(&t, 7).unwrap();
        let b = RandomSats { sats_lost: 13 }.destroyed(&t, 7).unwrap();
        assert_eq!(a, b, "same seed, same victims");
        assert_eq!(a.len(), 13);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
        let c = RandomSats { sats_lost: 13 }.destroyed(&t, 8).unwrap();
        assert_ne!(a, c, "different seed, different victims");
        // Clamp: asking for more than the fleet destroys the fleet.
        let all = RandomSats { sats_lost: 10_000 }.destroyed(&t, 7).unwrap();
        assert_eq!(all.len(), 40);
        assert_eq!(RandomSats { sats_lost: 0 }.destroyed(&t, 7).unwrap(), Vec::new());
    }

    #[test]
    fn random_sats_victims_pinned_across_the_gen_index_refactor() {
        // The shared `gen_index` helper must leave every seeded victim
        // set byte-identical to the historical inline float-scaled draw:
        // replay the exact pre-refactor partial Fisher-Yates here and
        // require the model to match it id for id.
        let planes = elements(6, 7);
        let t = target(&planes, (0..6).collect());
        for seed in [0u64, 7, 42, 0xDEAD_BEEF] {
            for lost in [1usize, 5, 17, 42] {
                let got = RandomSats { sats_lost: lost }.destroyed(&t, seed).unwrap();
                let mut pool: Vec<SatId> =
                    (0..6).flat_map(|p| (0..7).map(move |s| SatId { plane: p, slot: s })).collect();
                let mut rng = StdRng::seed_from_u64(seed);
                for k in 0..lost {
                    let span = pool.len() - k;
                    let j = k + ((rng.gen::<f64>() * span as f64) as usize).min(span - 1);
                    pool.swap(k, j);
                }
                let mut expect: Vec<SatId> = pool.into_iter().take(lost).collect();
                expect.sort_unstable();
                assert_eq!(got, expect, "seed {seed} lost {lost}");
            }
        }
    }

    #[test]
    fn declination_band_hits_the_band_only() {
        let planes = elements(3, 20);
        let t = target(&planes, vec![0, 1, 2]);
        let destroyed = DeclinationBand { min_deg: -15.0, max_deg: 15.0 }.destroyed(&t, 0).unwrap();
        assert!(!destroyed.is_empty(), "a 20-slot polar plane crosses the equator band");
        assert!(destroyed.len() < t.total_sats(), "a narrow band spares the rest");
        for id in &destroyed {
            let el = planes[id.plane][id.slot];
            let r = J2Propagator::new(Epoch::J2000, el).unwrap().position_at(Epoch::J2000).unwrap();
            let dec = (r.z / r.norm()).asin().to_degrees();
            assert!((-15.0..=15.0).contains(&dec), "victim at dec {dec}");
        }
        // The full sphere takes everything; an inverted band is an error.
        let all = DeclinationBand { min_deg: -90.0, max_deg: 90.0 }.destroyed(&t, 0).unwrap();
        assert_eq!(all.len(), t.total_sats());
        assert!(DeclinationBand { min_deg: 10.0, max_deg: -10.0 }.destroyed(&t, 0).is_err());
    }

    #[test]
    fn whole_shell_takes_its_planes_and_rejects_bad_indices() {
        let planes = elements(4, 6);
        // Planes 0/1 form shell 0, planes 2/3 shell 1.
        let t = target(&planes, vec![0, 0, 1, 1]);
        let destroyed = WholeShell { shell: 1 }.destroyed(&t, 0).unwrap();
        assert_eq!(destroyed.len(), 12);
        assert!(destroyed.iter().all(|id| id.plane >= 2));
        assert!(WholeShell { shell: 2 }.destroyed(&t, 0).is_err());
    }

    #[test]
    fn exponential_process_matches_the_failure_model_stream() {
        // One uniform draw per lifetime, identical arithmetic to the
        // original loop: -ln(u) / (hazard_per_year / 365.25).
        let process = RadiationExponential { model: FailureModel::default() };
        process.validate().unwrap();
        let dose = DailyFluence { electron: 3e10, proton: 2e7 };
        let mut rng = StdRng::seed_from_u64(5);
        let life = process.sample_lifetime_days(dose, &mut rng);
        let mut reference = StdRng::seed_from_u64(5);
        let u: f64 = reference.gen::<f64>().max(1e-300);
        let expect = -u.ln() / (process.model.hazard_per_year(dose) / 365.25);
        assert_eq!(life, expect);
        let zero = RadiationExponential {
            model: FailureModel { baseline_per_year: 0.0, electron_coeff: 0.0, proton_coeff: 0.0 },
        };
        assert!(zero.validate().is_err());
    }

    #[test]
    fn weibull_dose_shortens_life_and_validates() {
        let process = WeibullBathtub::default();
        process.validate().unwrap();
        let cool = DailyFluence { electron: 1e10, proton: 1e7 };
        let hot = DailyFluence { electron: 5e10, proton: 3e7 };
        assert!(process.wearout_scale_at(hot) < process.wearout_scale_at(cool));
        // Mean lifetime over many draws shrinks with dose.
        let mean = |dose| {
            let mut rng = StdRng::seed_from_u64(11);
            (0..4000).map(|_| process.sample_lifetime_days(dose, &mut rng)).sum::<f64>() / 4000.0
        };
        assert!(mean(hot) < mean(cool));
        // Infant mortality: a visible fraction of units dies in year one,
        // far more than the wear-out tail alone would produce.
        let mut rng = StdRng::seed_from_u64(3);
        let early =
            (0..4000).filter(|_| process.sample_lifetime_days(cool, &mut rng) < 365.25).count();
        assert!((40..1000).contains(&early), "first-year failures {early}/4000");
        assert!(WeibullBathtub { infant_shape: 0.0, ..process }.validate().is_err());
        assert!(WeibullBathtub { wearout_scale_years: -1.0, ..process }.validate().is_err());
        assert!(WeibullBathtub { electron_accel: -1.0, ..process }.validate().is_err());
    }

    #[test]
    fn outage_timeline_queries() {
        let timeline = OutageTimeline {
            horizon_days: 100.0,
            plane_offsets: vec![0, 2, 3],
            outages: vec![
                vec![
                    OutageInterval { start_day: 10.0, end_day: 20.0 },
                    OutageInterval { start_day: 50.0, end_day: 55.0 },
                ],
                vec![],
                vec![OutageInterval { start_day: 0.0, end_day: 100.0 }],
            ],
            failures: 2,
            replacements: 2,
            spares_consumed: 2,
            vacancy_slot_days: 15.0,
            destroyed_slots: 1,
        };
        assert_eq!(timeline.n_sats(), 3);
        assert_eq!(timeline.lost_slot_days(), 15.0);
        assert!((timeline.availability() - (1.0 - 115.0 / 300.0)).abs() < 1e-12);
        assert!(timeline.alive_at(0, 5.0));
        assert!(!timeline.alive_at(0, 10.0), "start is inclusive");
        assert!(timeline.alive_at(0, 20.0), "end is exclusive");
        assert!(!timeline.alive_at(2, 99.0));
        let mut mask = vec![true, false, true];
        timeline.mask_alive(52.0, &mut mask);
        assert_eq!(mask, vec![false, false, false]);
        let mut mask = vec![true, true, true];
        timeline.mask_alive(30.0, &mut mask);
        assert_eq!(mask, vec![true, true, false]);
    }
}
