//! Error types for the LSN networking layer.

use core::fmt;

/// Result alias with [`LsnError`].
pub type Result<T> = core::result::Result<T, LsnError>;

/// Errors produced by topology construction, routing, and simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum LsnError {
    /// An astrodynamics routine failed.
    Astro(ssplane_astro::AstroError),
    /// A constellation-design routine failed.
    Core(ssplane_core::CoreError),
    /// A radiation routine failed.
    Radiation(ssplane_radiation::RadiationError),
    /// The requested node does not exist in the topology.
    UnknownNode {
        /// Plane index requested.
        plane: usize,
        /// Slot index requested.
        slot: usize,
    },
    /// No route exists between the requested endpoints.
    NoRoute,
    /// A configuration parameter was out of its domain.
    BadParameter {
        /// Parameter name.
        name: &'static str,
        /// Constraint description.
        constraint: &'static str,
    },
}

impl fmt::Display for LsnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LsnError::Astro(e) => write!(f, "astrodynamics error: {e}"),
            LsnError::Core(e) => write!(f, "constellation design error: {e}"),
            LsnError::Radiation(e) => write!(f, "radiation error: {e}"),
            LsnError::UnknownNode { plane, slot } => {
                write!(f, "unknown satellite (plane {plane}, slot {slot})")
            }
            LsnError::NoRoute => write!(f, "no route between the requested endpoints"),
            LsnError::BadParameter { name, constraint } => {
                write!(f, "bad parameter {name}: must satisfy {constraint}")
            }
        }
    }
}

impl std::error::Error for LsnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LsnError::Astro(e) => Some(e),
            LsnError::Core(e) => Some(e),
            LsnError::Radiation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ssplane_astro::AstroError> for LsnError {
    fn from(e: ssplane_astro::AstroError) -> Self {
        LsnError::Astro(e)
    }
}

impl From<ssplane_core::CoreError> for LsnError {
    fn from(e: ssplane_core::CoreError) -> Self {
        LsnError::Core(e)
    }
}

impl From<ssplane_radiation::RadiationError> for LsnError {
    fn from(e: ssplane_radiation::RadiationError) -> Self {
        LsnError::Radiation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_sources() {
        let e = LsnError::NoRoute;
        assert!(e.to_string().contains("no route"));
        assert!(e.source().is_none());
        let e = LsnError::UnknownNode { plane: 2, slot: 5 };
        assert!(e.to_string().contains("plane 2"));
        let e: LsnError = ssplane_astro::AstroError::NoSolution { what: "x" }.into();
        assert!(e.source().is_some());
        let e = LsnError::BadParameter { name: "step", constraint: "> 0" };
        assert!(e.to_string().contains("step"));
    }
}
