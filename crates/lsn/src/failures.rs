//! Radiation-driven satellite failure model.
//!
//! §3.2 of the paper posits trapped-particle radiation as a persistent
//! driver of satellite failures, which is why constellations carry
//! in-orbit spares. This module turns accumulated fluence into a failure
//! process: each satellite's hazard rate is a baseline (non-radiation
//! causes) plus a term proportional to its daily dose, and failure times
//! are sampled from the resulting exponential lifetime.

use crate::error::{LsnError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssplane_radiation::fluence::DailyFluence;

/// Failure-model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureModel {
    /// Baseline hazard \[failures per satellite-year\] from non-radiation
    /// causes (deployment defects, debris, reaction-wheel wear, ...).
    pub baseline_per_year: f64,
    /// Hazard per unit electron daily fluence \[failures per year per
    /// (#/cm²/MeV/day)\]. Electronics upsets and deep-dielectric charging
    /// scale with the electron environment.
    pub electron_coeff: f64,
    /// Hazard per unit proton daily fluence (displacement damage).
    pub proton_coeff: f64,
}

impl Default for FailureModel {
    fn default() -> Self {
        // Calibrated so a Starlink-like 560 km / 53° satellite sees a few
        // percent annual failure probability, dominated by the radiation
        // term at moderate inclinations (consistent with the paper's
        // "2-10 spares per plane" practice).
        FailureModel { baseline_per_year: 0.01, electron_coeff: 1.2e-12, proton_coeff: 1.0e-9 }
    }
}

impl FailureModel {
    /// Annual hazard rate \[1/year\] for a satellite with the given daily
    /// fluence.
    pub fn hazard_per_year(&self, dose: DailyFluence) -> f64 {
        self.baseline_per_year
            + self.electron_coeff * dose.electron
            + self.proton_coeff * dose.proton
    }

    /// Mean time to failure \[years\].
    pub fn mttf_years(&self, dose: DailyFluence) -> f64 {
        1.0 / self.hazard_per_year(dose)
    }

    /// Probability of failure within `years` (exponential lifetime).
    pub fn failure_probability(&self, dose: DailyFluence, years: f64) -> f64 {
        1.0 - (-self.hazard_per_year(dose) * years).exp()
    }

    /// Samples a failure time \[years\] for one satellite.
    pub fn sample_failure_time(&self, dose: DailyFluence, rng: &mut StdRng) -> f64 {
        let u: f64 = rng.gen::<f64>().max(1e-300);
        -u.ln() / self.hazard_per_year(dose)
    }

    /// Samples failure times \[years\] for a fleet of satellites with
    /// per-satellite doses, deterministically from `seed`.
    ///
    /// # Errors
    /// Rejects non-positive hazard configurations.
    pub fn sample_fleet(&self, doses: &[DailyFluence], seed: u64) -> Result<Vec<f64>> {
        if self.baseline_per_year < 0.0
            || self.electron_coeff < 0.0
            || self.proton_coeff < 0.0
            || self.baseline_per_year == 0.0
                && self.electron_coeff == 0.0
                && self.proton_coeff == 0.0
        {
            return Err(LsnError::BadParameter {
                name: "FailureModel",
                constraint: "non-negative coefficients with positive total hazard",
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        Ok(doses.iter().map(|&d| self.sample_failure_time(d, &mut rng)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dose(e: f64, p: f64) -> DailyFluence {
        DailyFluence { electron: e, proton: p }
    }

    #[test]
    fn hazard_increases_with_dose() {
        let m = FailureModel::default();
        let low = m.hazard_per_year(dose(5e9, 1e7));
        let high = m.hazard_per_year(dose(4e10, 3e7));
        assert!(high > low);
        assert!(low > m.baseline_per_year);
        // Calibration: moderate-inclination LEO dose → a few %/year.
        let typical = m.hazard_per_year(dose(3e10, 2.3e7));
        assert!((0.02..0.25).contains(&typical), "hazard = {typical}/yr");
    }

    #[test]
    fn mttf_and_probability_consistent() {
        let m = FailureModel::default();
        let d = dose(1e10, 2e7);
        let mttf = m.mttf_years(d);
        // At t = MTTF the exponential failure probability is 1 - 1/e.
        let p = m.failure_probability(d, mttf);
        assert!((p - (1.0 - core::f64::consts::E.recip())).abs() < 1e-12);
        assert!(m.failure_probability(d, 0.0).abs() < 1e-15);
        assert!(m.failure_probability(d, 1e6) > 0.9999);
    }

    #[test]
    fn fleet_sampling_deterministic_and_mean_near_mttf() {
        let m = FailureModel::default();
        let doses = vec![dose(2e10, 2e7); 4000];
        let a = m.sample_fleet(&doses, 11).unwrap();
        let b = m.sample_fleet(&doses, 11).unwrap();
        assert_eq!(a, b);
        let mean: f64 = a.iter().sum::<f64>() / a.len() as f64;
        let mttf = m.mttf_years(doses[0]);
        assert!((mean - mttf).abs() / mttf < 0.1, "mean {mean} vs mttf {mttf}");
        // Different seed -> different sample.
        assert_ne!(m.sample_fleet(&doses, 12).unwrap(), a);
    }

    #[test]
    fn zero_model_rejected() {
        let m = FailureModel { baseline_per_year: 0.0, electron_coeff: 0.0, proton_coeff: 0.0 };
        assert!(m.sample_fleet(&[dose(0.0, 0.0)], 1).is_err());
    }

    #[test]
    fn lower_radiation_means_longer_life() {
        // The paper's survivability argument in one assert: an SS-dose
        // satellite outlives a 65°-dose satellite on average.
        let m = FailureModel::default();
        let sso = m.mttf_years(dose(3.4e10, 2.1e7));
        let walker65 = m.mttf_years(dose(4.1e10, 2.3e7));
        assert!(sso > walker65);
    }
}
