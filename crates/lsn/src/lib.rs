//! # ssplane-lsn
//!
//! LEO satellite networking on SS-plane constellations — the paper's §5
//! research agenda ("Implications for networking") made executable:
//!
//! * [`snapshot`] — the shared time-grid propagation cache: a
//!   [`SnapshotSeries`] batch-propagates the whole constellation over an
//!   explicit time grid once (in parallel when asked) and every position
//!   consumer below reads from a [`Snapshot`] view instead of
//!   re-propagating.
//! * [`topology`] — inter-satellite-link (ISL) topologies: the classic
//!   +grid (intra-plane ring + cross-plane neighbors) with line-of-sight
//!   and range feasibility checks (§5(1): *time-aware satellite network
//!   topologies*).
//! * [`routing`] — snapshot and time-expanded shortest-delay routing with
//!   handoff accounting (§5(1): *precomputed time-aware paths*).
//! * [`traffic`] — flow-level traffic assignment driven by the
//!   sun-relative demand model, reporting link utilization and latency
//!   stretch (§5(1): *bandwidth allocation exploiting the regularity of
//!   human activity*).
//! * [`traffic_engine`] — the population-scale engine on top: gravity
//!   workloads aggregated by serving-satellite pair, k-path candidates,
//!   and capacity-constrained waterfilling with drop accounting — the
//!   served-demand fraction and link-utilization percentiles.
//! * [`failures`] — radiation-driven failure processes: per-satellite
//!   hazard proportional to accumulated fluence (§3.2's mechanism).
//! * [`disruption`] — the pluggable disruption API: [`AttackModel`]s
//!   mapping a constellation to destroyed slots (strided plane loss,
//!   random loss, declination-band debris events, whole-shell loss),
//!   [`FailureProcess`]es sampling satellite lifetimes (the radiation
//!   exponential, a Weibull bathtub), and the [`OutageTimeline`] of
//!   per-satellite outage intervals that couples both into the network
//!   stage via [`Snapshot`] alive masks.
//! * [`percolation`] — percolation & robustness analytics: an
//!   incremental union-find [`ClusterTracker`] replaying attack-registry
//!   removal orderings into loss-fraction phase-transition curves
//!   (giant-component fraction, susceptibility χ, mean finite-cluster
//!   size), algebraic connectivity λ₂ via a deterministic deflated power
//!   iteration, and the *masking threshold* — the critical loss fraction
//!   where redundancy stops hiding targeted-attack damage.
//! * [`optimizer`] — adversarial attack search: a [`DegradedEvaluator`]
//!   scoring candidate destroyed sets over a prebuilt [`SnapshotSeries`]
//!   (intact topologies filtered per candidate, never rebuilt), an
//!   incremental delta scorer (shortest-path-tree repair, cached
//!   candidate states, affected-flow filtering — byte-identical to the
//!   full path at a fraction of the cost), and a seeded greedy +
//!   random-restart swap search for the worst k-plane / k-satellite
//!   attack against a degraded-network objective.
//! * [`spares`] — spare provisioning policies (per-plane hot spares vs a
//!   shared on-demand pool), the paper's "2–10 spares per plane" practice.
//! * [`cast`] — checked index/count conversions: the sanctioned
//!   replacements for the `as`-casts the workspace's **lossy-cast** lint
//!   rule bans in these hot paths.
//! * [`survivability`] — a discrete-event simulation tying it together:
//!   failures, replacements, and capacity availability over mission time
//!   (§5(2): *lighter-weight fault tolerance for low-radiation
//!   constellations*), now a scalar reduction of the outage timeline.
//!
//! [`AttackModel`]: disruption::AttackModel
//! [`ClusterTracker`]: percolation::ClusterTracker
//! [`FailureProcess`]: disruption::FailureProcess
//! [`OutageTimeline`]: disruption::OutageTimeline
//! [`DegradedEvaluator`]: optimizer::DegradedEvaluator

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cast;
pub mod disruption;
pub mod error;
pub mod failures;
pub mod optimizer;
pub mod percolation;
pub mod routing;
pub mod schedule;
pub mod snapshot;
pub mod spares;
pub mod survivability;
pub mod topology;
pub mod traffic;
pub mod traffic_engine;

pub use disruption::{AttackModel, AttackTarget, FailureProcess, OutageTimeline};
pub use error::{LsnError, Result};
pub use optimizer::{AttackObjective, AttackSearchConfig, DegradedEvaluator, IncrementalScorer};
pub use percolation::{ClusterTracker, Lambda2Config, PercolationCurve};
pub use snapshot::{Snapshot, SnapshotSeries};
pub use topology::{Constellation, SatId, Topology};
pub use traffic_engine::{CapacityConfig, ServedDemandSummary, TrafficWorkload};
