//! Adversarial attack search: find the destroyed set that hurts the
//! routed network most.
//!
//! The fixed [`crate::disruption::AttackModel`]s answer "what does *this*
//! attack cost?"; the paper's survivability claim needs the converse —
//! "what is the **worst** attack a bounded adversary can mount?" ("Your
//! Mega-Constellations Can Be Slim" judges designs the same way: against
//! the most damaging loss pattern, not an average one). This module
//! provides:
//!
//! * a [`DegradedEvaluator`] — the reusable per-candidate evaluation the
//!   degraded network stage and the search share: one prebuilt intact
//!   [`Topology`] per slot of a [`SnapshotSeries`], and candidate alive
//!   masks scored by filtering that topology ([`Topology::masked`], an
//!   O(links) incremental pass that never re-runs the geometric
//!   construction, let alone re-propagates an orbit) followed by
//!   [`assign_traffic_with_capacity`] and the slot aggregates;
//! * an [`AttackObjective`] — the degraded metric the adversary drives
//!   down: mean routed-flow fraction, survivor connectivity (largest
//!   surviving component fraction), (negated) link-load inflation, or —
//!   with a population-scale [`TrafficWorkload`] attached — the
//!   capacity-constrained served-demand fraction;
//! * an [`IncrementalScorer`] ([`incremental`] has the details) — the
//!   delta-evaluation layer the search scores through: per-source
//!   shortest-path trees repaired instead of rebuilt, cached candidate
//!   states keyed by canonical victim set, and only damage-affected
//!   flows re-routed, all pinned byte-identical to the full
//!   [`DegradedEvaluator::score_attack`] path;
//! * [`optimize_attack`] — a seeded, deterministic search over k-plane or
//!   k-satellite candidate sets: greedy construction (each step scores
//!   its whole frontier in parallel across threads) followed by
//!   random-restart local swap refinement, with caller-supplied fixed
//!   attacks (e.g. the strided plane baseline) seeded into the start
//!   pool so the found attack is never weaker than them.
//!
//! Determinism contract: for a given `(evaluator inputs, config, seed)`
//! the outcome is byte-identical across runs **and thread counts** —
//! parallel scoring writes into per-candidate slots and every selection
//! reduces over candidate index order with strict `<`.

pub mod incremental;

pub use incremental::IncrementalScorer;

use crate::error::Result;
use crate::snapshot::SnapshotSeries;
use crate::topology::{GridTopologyConfig, SatId, Topology};
use crate::traffic::{assign_traffic_with_capacity, Flow, TrafficReport};
use crate::traffic_engine::{assign_capacity_constrained, ServedDemandSummary, TrafficWorkload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Greedy frontier sample per step for satellite-unit searches: scoring
/// every remaining satellite each step would cost O(budget · fleet)
/// evaluations on a mega-constellation, so each step scores a seeded
/// sample of this many candidates instead (plane-unit searches score
/// their whole frontier — plane counts are small).
const GREEDY_SAT_SAMPLE: usize = 24;

/// The degraded metric an adversary minimizes. All three are computed
/// from the same per-slot evaluations, so switching objective never
/// changes what a candidate evaluation costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackObjective {
    /// Mean over slots of `routed flows / offered flows` — the headline
    /// service metric.
    RoutedFraction,
    /// Mean over slots of `largest surviving component / surviving
    /// satellites` — graded survivor connectivity (a 50/50 split scores
    /// far worse than one cut-off straggler).
    Connectivity,
    /// Negated load inflation: `-(mean degraded link load / mean intact
    /// link load)` — minimizing this *maximizes* the detour load the
    /// survivors carry.
    LoadInflation,
    /// Mean over slots of the capacity-constrained **served-demand
    /// fraction** ([`crate::traffic_engine`]) — the population-scale
    /// service metric. Needs an evaluator built with a
    /// [`TrafficWorkload`] ([`DegradedEvaluator::with_workload`]);
    /// without one it degrades to [`AttackObjective::RoutedFraction`]
    /// semantics.
    ServedDemand,
    /// Mean over slots of the **masking-collapse score**
    /// ([`crate::percolation::collapse_score`]): the candidate's victims
    /// lead a percolation removal ordering (the targeted plane schedule
    /// finishes it) and the score is the loss fraction at which the
    /// giant component stops masking the damage — so the search hunts
    /// the attack that collapses the masking regime *earliest*. Pure
    /// union-find over the prebuilt per-slot topologies: no routing, no
    /// traffic, far cheaper per candidate than the service objectives.
    MaskingThreshold,
}

impl AttackObjective {
    /// The objective's registry name (also its config token).
    pub fn as_str(self) -> &'static str {
        match self {
            AttackObjective::RoutedFraction => "routed-fraction",
            AttackObjective::Connectivity => "connectivity",
            AttackObjective::LoadInflation => "load-inflation",
            AttackObjective::ServedDemand => "served-demand",
            AttackObjective::MaskingThreshold => "masking-threshold",
        }
    }
}

/// The candidate-set unit and size of the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackBudget {
    /// Destroy whole planes: `k` planes of the network constellation.
    Planes(usize),
    /// Destroy individual satellites: `k` satellites anywhere.
    Sats(usize),
}

impl AttackBudget {
    /// The unit token (`"planes"` / `"sats"`).
    pub fn unit_str(self) -> &'static str {
        match self {
            AttackBudget::Planes(_) => "planes",
            AttackBudget::Sats(_) => "sats",
        }
    }

    /// The raw budget count.
    pub fn count(self) -> usize {
        match self {
            AttackBudget::Planes(k) | AttackBudget::Sats(k) => k,
        }
    }
}

/// Everything one slot's degraded evaluation produces — the raw material
/// of both the scenario report aggregates and the search objectives.
#[derive(Debug, Clone)]
pub struct SlotEvaluation {
    /// Whether the surviving subgraph is connected.
    pub connected: bool,
    /// Largest surviving connected component (satellites).
    pub largest_component: usize,
    /// Satellites in service.
    pub alive: usize,
    /// The traffic assignment over the survivors.
    pub traffic: TrafficReport,
    /// The capacity-constrained served-demand summary — present when the
    /// evaluator carries a [`TrafficWorkload`].
    pub served: Option<ServedDemandSummary>,
}

/// The reusable per-candidate evaluation pipeline: mask →
/// [`Topology::masked`] → [`assign_traffic_with_capacity`] → aggregates, over every
/// slot of one prebuilt [`SnapshotSeries`]. Construction builds the
/// intact per-slot topologies **and** the intact evaluations once; every
/// candidate afterwards only filters links and re-routes flows — no
/// candidate ever re-propagates or re-runs the geometric +grid search.
#[derive(Debug)]
pub struct DegradedEvaluator<'a> {
    series: &'a SnapshotSeries,
    flows: &'a [Flow],
    min_elevation: f64,
    workload: Option<&'a TrafficWorkload>,
    /// The capacity the classic load statistics normalize by — the
    /// workload's link capacity when one is carried, else `1.0` (raw
    /// load, the historical semantics).
    link_capacity: f64,
    topologies: Vec<Topology>,
    intact: Vec<SlotEvaluation>,
    intact_mean_link_load: f64,
    all_alive: Vec<bool>,
    /// The targeted plane-spread removal ordering the masking-threshold
    /// objective finishes candidate orderings with — one ordering for
    /// every slot, since all slots share the flat node layout.
    spread_order: Vec<usize>,
    /// Loss-fraction steps of the masking-threshold sweep.
    percolation_steps: usize,
    /// Giant-component gap that declares the masking regime broken.
    percolation_gap: f64,
    /// Damage-threshold fallback of the incremental scorer: a tree
    /// repair whose affected region exceeds this fraction of the
    /// constellation recomputes from scratch instead (the repair would
    /// cost more than it saves).
    repair_threshold: f64,
}

/// Default [`DegradedEvaluator::with_repair_threshold`] fraction: always
/// repair. Since repairs are cut short at the re-routed destinations, a
/// repair never costs more than the from-scratch rebuild it replaces, so
/// the fallback only pays off below this when callers want to bound the
/// damage-region walk itself.
pub const DEFAULT_REPAIR_THRESHOLD: f64 = 1.0;

impl<'a> DegradedEvaluator<'a> {
    /// Builds the evaluator: one intact +grid topology and one intact
    /// evaluation per slot of `series`.
    ///
    /// # Errors
    /// Propagates topology or traffic-assignment failure.
    pub fn new(
        series: &'a SnapshotSeries,
        flows: &'a [Flow],
        min_elevation: f64,
        config: GridTopologyConfig,
    ) -> Result<Self> {
        Self::with_workload(series, flows, min_elevation, config, None)
    }

    /// [`Self::new`] plus an optional population-scale
    /// [`TrafficWorkload`]: every evaluation (intact and per-candidate)
    /// then also runs the capacity-constrained engine and carries a
    /// [`ServedDemandSummary`], the classic load statistics normalize by
    /// the workload's link capacity, and
    /// [`AttackObjective::ServedDemand`] becomes meaningful.
    ///
    /// # Errors
    /// Propagates topology or traffic-assignment failure.
    pub fn with_workload(
        series: &'a SnapshotSeries,
        flows: &'a [Flow],
        min_elevation: f64,
        config: GridTopologyConfig,
        workload: Option<&'a TrafficWorkload>,
    ) -> Result<Self> {
        let link_capacity = workload.map_or(1.0, |w| w.capacity.link_capacity);
        let all_alive = vec![true; series.n_sats()];
        let mut topologies = Vec::with_capacity(series.len());
        let mut intact = Vec::with_capacity(series.len());
        for snapshot in series.iter() {
            let topology = Topology::plus_grid(&snapshot, config)?;
            let traffic = assign_traffic_with_capacity(
                &snapshot,
                &topology,
                flows,
                min_elevation,
                link_capacity,
            )?;
            let served = workload
                .map(|w| {
                    assign_capacity_constrained(
                        &snapshot,
                        &topology,
                        &w.flows,
                        min_elevation,
                        &w.capacity,
                    )
                })
                .transpose()?;
            intact.push(SlotEvaluation {
                connected: topology.is_connected(),
                largest_component: topology.largest_component_among(&all_alive),
                alive: series.n_sats(),
                traffic,
                served,
            });
            topologies.push(topology);
        }
        let intact_mean_link_load = intact.iter().map(|s| s.traffic.mean_link_load()).sum::<f64>()
            / intact.len().max(1) as f64;
        let spread_order =
            topologies.first().map(crate::percolation::plane_spread_ordering).unwrap_or_default();
        Ok(DegradedEvaluator {
            series,
            flows,
            min_elevation,
            workload,
            link_capacity,
            topologies,
            intact,
            intact_mean_link_load,
            all_alive,
            spread_order,
            percolation_steps: crate::percolation::DEFAULT_PERCOLATION_STEPS,
            percolation_gap: crate::percolation::DEFAULT_MASKING_GAP,
            repair_threshold: DEFAULT_REPAIR_THRESHOLD,
        })
    }

    /// Overrides the masking-threshold sweep parameters (defaults:
    /// [`crate::percolation::DEFAULT_PERCOLATION_STEPS`] steps,
    /// [`crate::percolation::DEFAULT_MASKING_GAP`] gap).
    ///
    /// # Panics
    /// If `steps == 0` or `gap` is not in `(0, 1)`.
    #[must_use]
    pub fn with_percolation(mut self, steps: usize, gap: f64) -> Self {
        assert!(steps >= 1, "a sweep needs at least one step");
        assert!(gap > 0.0 && gap < 1.0, "the masking gap is a fraction in (0, 1)");
        self.percolation_steps = steps;
        self.percolation_gap = gap;
        self
    }

    /// Overrides the incremental scorer's damage-threshold fraction
    /// (default [`DEFAULT_REPAIR_THRESHOLD`]): tree repairs whose
    /// affected region exceeds `fraction` of the constellation fall back
    /// to a from-scratch masked Dijkstra. Purely a performance knob —
    /// both branches produce bit-identical trees.
    ///
    /// # Panics
    /// If `fraction` is not in `(0, 1]`.
    #[must_use]
    pub fn with_repair_threshold(mut self, fraction: f64) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0, "the damage threshold is a fraction in (0, 1]");
        self.repair_threshold = fraction;
        self
    }

    /// The incremental scorer's damage-threshold fraction.
    pub fn repair_threshold(&self) -> f64 {
        self.repair_threshold
    }

    /// Builds an [`IncrementalScorer`] over this evaluator for
    /// `objective` — the delta-evaluation layer [`optimize_attack`]
    /// scores through (see [`incremental`]).
    pub fn incremental_scorer(&self, objective: AttackObjective) -> IncrementalScorer<'_, 'a> {
        IncrementalScorer::new(self, objective)
    }

    /// Slots of the underlying series.
    pub fn n_slots(&self) -> usize {
        self.series.len()
    }

    /// Satellites per slot.
    pub fn n_sats(&self) -> usize {
        self.series.n_sats()
    }

    /// Flows offered per slot.
    pub fn n_flows(&self) -> usize {
        self.flows.len()
    }

    /// The intact (unmasked) per-slot evaluations, computed once at
    /// construction — the baseline the degraded stage reports against.
    pub fn intact(&self) -> &[SlotEvaluation] {
        &self.intact
    }

    /// The intact topology of slot `k`.
    ///
    /// # Panics
    /// If `k` is out of range.
    pub fn intact_topology(&self, k: usize) -> &Topology {
        &self.topologies[k]
    }

    /// Mean intact link load over slots (the load-inflation divisor).
    pub fn intact_mean_link_load(&self) -> f64 {
        self.intact_mean_link_load
    }

    /// The all-true alive mask, built once at construction — the shared
    /// buffer every per-candidate mask clones from instead of
    /// re-allocating an all-true vec per candidate (the scenario
    /// runner's degraded passes borrow it for the same reason).
    pub fn all_alive(&self) -> &[bool] {
        &self.all_alive
    }

    /// The [`AttackObjective::MaskingThreshold`] value of one destroyed
    /// set: mean over slots of the masking-collapse score of the removal
    /// ordering that takes the victims first and the targeted
    /// plane-spread schedule after (lower = the masking regime collapses
    /// earlier). Computed directly from the prebuilt topologies — no
    /// routing, no traffic assignment.
    pub fn masking_collapse_value(&self, destroyed: &[SatId]) -> f64 {
        if self.topologies.is_empty() {
            return 0.0;
        }
        let snapshot = self.series.snapshot(0);
        let priority: Vec<usize> =
            destroyed.iter().filter_map(|id| snapshot.flat_index(*id)).collect();
        let order = crate::percolation::priority_ordering(&priority, &self.spread_order);
        let total: f64 = self
            .topologies
            .iter()
            .map(|t| {
                crate::percolation::collapse_score(
                    t,
                    &order,
                    self.percolation_steps,
                    self.percolation_gap,
                )
            })
            .sum();
        total / self.topologies.len() as f64
    }

    /// Evaluates slot `k` under `alive` (`None` = the intact network,
    /// returned from the construction-time cache).
    ///
    /// # Errors
    /// Propagates traffic-assignment failure.
    ///
    /// # Panics
    /// If `k` is out of range or the mask length mismatches.
    pub fn evaluate_slot(&self, k: usize, alive: Option<&[bool]>) -> Result<SlotEvaluation> {
        let Some(mask) = alive else {
            return Ok(self.intact[k].clone());
        };
        let snapshot = self.series.snapshot(k).with_alive(mask);
        let topology = self.topologies[k].masked(mask);
        let traffic = assign_traffic_with_capacity(
            &snapshot,
            &topology,
            self.flows,
            self.min_elevation,
            self.link_capacity,
        )?;
        let served = self
            .workload
            .map(|w| {
                assign_capacity_constrained(
                    &snapshot,
                    &topology,
                    &w.flows,
                    self.min_elevation,
                    &w.capacity,
                )
            })
            .transpose()?;
        Ok(SlotEvaluation {
            connected: topology.is_connected_among(mask),
            largest_component: topology.largest_component_among(mask),
            alive: snapshot.alive_count(),
            traffic,
            served,
        })
    }

    /// Evaluates every slot under one mask (`None` = intact).
    ///
    /// # Errors
    /// Propagates per-slot failure.
    pub fn evaluate(&self, alive: Option<&[bool]>) -> Result<Vec<SlotEvaluation>> {
        (0..self.n_slots()).map(|k| self.evaluate_slot(k, alive)).collect()
    }

    /// The scalar objective value of a set of per-slot evaluations
    /// (lower = more damaging).
    pub fn objective_value(&self, objective: AttackObjective, slots: &[SlotEvaluation]) -> f64 {
        let denom = slots.len().max(1) as f64;
        match objective {
            AttackObjective::RoutedFraction => {
                if self.flows.is_empty() {
                    return 0.0;
                }
                slots.iter().map(|s| s.traffic.routed as f64).sum::<f64>()
                    / denom
                    / self.flows.len() as f64
            }
            AttackObjective::Connectivity => {
                slots
                    .iter()
                    .map(|s| {
                        if s.alive == 0 {
                            0.0
                        } else {
                            s.largest_component as f64 / s.alive as f64
                        }
                    })
                    .sum::<f64>()
                    / denom
            }
            AttackObjective::LoadInflation => {
                if self.intact_mean_link_load <= 0.0 {
                    return 0.0;
                }
                -(slots.iter().map(|s| s.traffic.mean_link_load()).sum::<f64>() / denom)
                    / self.intact_mean_link_load
            }
            AttackObjective::ServedDemand => {
                if self.workload.is_none() || slots.iter().any(|s| s.served.is_none()) {
                    // No capacity workload: fall back to the flow-count
                    // service metric so the objective stays total.
                    return self.objective_value(AttackObjective::RoutedFraction, slots);
                }
                slots
                    .iter()
                    .map(|s| s.served.as_ref().expect("checked above").served_fraction)
                    .sum::<f64>()
                    / denom
            }
            AttackObjective::MaskingThreshold => {
                // The masking score is a function of the destroyed set
                // itself, not of slot evaluations (see
                // [`Self::masking_collapse_value`], which
                // [`Self::score_attack`] routes candidates through
                // without ever building slot evaluations). Given only
                // evaluations, return the empty-attack value — exactly
                // the intact baseline `optimize_attack` needs.
                self.masking_collapse_value(&[])
            }
        }
    }

    /// The alive mask destroying exactly `destroyed` (network-layout
    /// ids); out-of-range ids are ignored.
    pub fn attack_mask(&self, destroyed: &[SatId]) -> Vec<bool> {
        let mut mask = self.all_alive.clone();
        let snapshot = self.series.snapshot(0);
        for id in destroyed {
            if let Some(flat) = snapshot.flat_index(*id) {
                mask[flat] = false;
            }
        }
        mask
    }

    /// Scores one destroyed set under `objective`.
    ///
    /// # Errors
    /// Propagates evaluation failure.
    pub fn score_attack(&self, destroyed: &[SatId], objective: AttackObjective) -> Result<f64> {
        if objective == AttackObjective::MaskingThreshold {
            // Pure union-find over the prebuilt topologies: skip the
            // mask/route/evaluate pipeline entirely.
            return Ok(self.masking_collapse_value(destroyed));
        }
        let mask = self.attack_mask(destroyed);
        let slots = self.evaluate(Some(&mask))?;
        Ok(self.objective_value(objective, &slots))
    }

    /// Scores a batch of candidates in parallel across `threads` scoped
    /// workers (`0` = the machine), returning scores in candidate order —
    /// the throughput the attack-search bench measures. The output is
    /// identical for every thread count: workers claim candidate indices
    /// off an atomic queue and write into that candidate's slot.
    ///
    /// # Errors
    /// The first (lowest-index) candidate failure.
    pub fn score_batch(
        &self,
        candidates: &[Vec<SatId>],
        objective: AttackObjective,
        threads: usize,
    ) -> Result<Vec<f64>> {
        let n = candidates.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let auto = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
        let workers = if threads == 0 { auto } else { threads }.clamp(1, n);
        if workers <= 1 {
            return candidates.iter().map(|c| self.score_attack(c, objective)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<f64>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let outcome = self.score_attack(&candidates[i], objective);
                    *slots[i].lock().expect("score slot poisoned") = Some(outcome);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner().expect("score slot poisoned").expect("every index claimed")
            })
            .collect()
    }
}

/// Configuration of one attack search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackSearchConfig {
    /// The degraded metric to minimize.
    pub objective: AttackObjective,
    /// Candidate-set unit and size (clamped to the constellation).
    pub budget: AttackBudget,
    /// Random-restart local searches after the greedy construction.
    pub restarts: usize,
    /// Swap proposals per start point (greedy, seeds, and restarts all
    /// get the same refinement length).
    pub swaps: usize,
    /// Worker threads for candidate scoring (`0` = the machine).
    pub threads: usize,
}

impl Default for AttackSearchConfig {
    fn default() -> Self {
        AttackSearchConfig {
            objective: AttackObjective::RoutedFraction,
            budget: AttackBudget::Planes(2),
            restarts: 3,
            swaps: 16,
            threads: 0,
        }
    }
}

/// The search result.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackSearchOutcome {
    /// The worst attack found: destroyed satellites in network-layout
    /// ids, sorted plane-major.
    pub destroyed: Vec<SatId>,
    /// Its objective value (lower = more damaging).
    pub objective_value: f64,
    /// The intact network's value of the same objective.
    pub intact_value: f64,
    /// Candidate evaluations requested by the search loop (the work the
    /// bench normalizes by); seen-cache hits included.
    pub candidates_evaluated: usize,
    /// Distinct candidate victim sets actually evaluated —
    /// `candidates_evaluated − candidates_unique` is what the
    /// canonical-victim-set dedup saved.
    pub candidates_unique: usize,
}

/// One candidate as sorted unit indices (plane indices for a plane
/// budget, flat satellite indices for a satellite budget).
type Units = Vec<usize>;

/// The search state shared by greedy and refinement: unit expansion and
/// membership bookkeeping.
struct UnitSpace {
    /// Satellites of each unit.
    members: Vec<Vec<SatId>>,
}

impl UnitSpace {
    fn build(series: &SnapshotSeries, budget: AttackBudget) -> Self {
        let snapshot = series.snapshot(0);
        let members = match budget {
            AttackBudget::Planes(_) => (0..snapshot.n_planes())
                .map(|p| {
                    (0..snapshot.slots_in_plane(p)).map(|s| SatId { plane: p, slot: s }).collect()
                })
                .collect(),
            AttackBudget::Sats(_) => snapshot.ids().map(|id| vec![id]).collect(),
        };
        UnitSpace { members }
    }

    fn n_units(&self) -> usize {
        self.members.len()
    }

    /// The destroyed set of a unit selection, sorted plane-major.
    fn expand(&self, units: &[usize]) -> Vec<SatId> {
        let mut out: Vec<SatId> =
            units.iter().flat_map(|&u| self.members[u].iter().copied()).collect();
        out.sort_unstable();
        out
    }
}

/// Local swap refinement: propose `swaps` member/non-member exchanges
/// (both drawn through the shared seeded [`Rng::gen_index`]), keeping
/// each only on strict improvement. Returns the refined units and value.
/// Swap neighbours share k−1 victims, so scoring through the
/// [`IncrementalScorer`] makes each trial a one-unit delta off a cached
/// state (and repeats — revisited swaps — free via its seen-cache).
fn refine(
    scorer: &IncrementalScorer<'_, '_>,
    space: &UnitSpace,
    start: Units,
    start_value: f64,
    config: &AttackSearchConfig,
    seed: u64,
) -> Result<(Units, f64)> {
    let n_units = space.n_units();
    let mut current = start;
    let mut value = start_value;
    if current.is_empty() || current.len() >= n_units {
        return Ok((current, value));
    }
    let mut member = vec![false; n_units];
    for &u in &current {
        member[u] = true;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..config.swaps {
        let out_pos = rng.gen_index(current.len());
        // The pick-th unit currently outside the set.
        let pick = rng.gen_index(n_units - current.len());
        let incoming = (0..n_units)
            .filter(|&u| !member[u])
            .nth(pick)
            .expect("pick is within the non-member count");
        let outgoing = current[out_pos];
        current[out_pos] = incoming;
        let trial = scorer.score(&space.expand(&current))?;
        if trial < value {
            value = trial;
            member[outgoing] = false;
            member[incoming] = true;
        } else {
            current[out_pos] = outgoing;
        }
    }
    Ok((current, value))
}

/// Runs the adversarial attack search over `evaluator`'s network.
///
/// `seeds` are caller-supplied fixed attacks (network-layout destroyed
/// sets, e.g. the strided-plane baseline or a seeded random set) scored
/// and refined alongside the search's own start points — the returned
/// attack is therefore **never weaker** (by the configured objective)
/// than any of them. For a plane budget the strided baseline is always
/// seeded implicitly.
///
/// Deterministic in `(evaluator inputs, config, seed)` across runs and
/// thread counts.
///
/// # Errors
/// Propagates candidate-evaluation failure.
pub fn optimize_attack(
    evaluator: &DegradedEvaluator<'_>,
    config: &AttackSearchConfig,
    seed: u64,
    seeds: &[Vec<SatId>],
) -> Result<AttackSearchOutcome> {
    let space = UnitSpace::build(evaluator.series, config.budget);
    let n_units = space.n_units();
    let k = config.budget.count().min(n_units);
    let intact_value = evaluator.objective_value(config.objective, evaluator.intact());
    if k == 0 {
        return Ok(AttackSearchOutcome {
            destroyed: Vec::new(),
            objective_value: intact_value,
            intact_value,
            candidates_evaluated: 0,
            candidates_unique: 0,
        });
    }
    // Every candidate scores through the incremental delta layer —
    // byte-identical to `score_attack`, but each greedy-frontier or swap
    // neighbour costs only its one-unit delta off a cached state, and
    // repeated victim sets dedup through the seen-cache.
    let scorer = evaluator.incremental_scorer(config.objective);

    // Greedy construction: grow the destroyed set one unit at a time,
    // scoring the whole frontier of each step in one parallel batch
    // (satellite budgets sample their frontier — see
    // [`GREEDY_SAT_SAMPLE`]).
    let mut greedy: Units = Vec::with_capacity(k);
    let mut member = vec![false; n_units];
    let mut greedy_rng = StdRng::seed_from_u64(seed ^ 0x6772_6565_6479); // "greedy"
    let mut greedy_value = intact_value;
    for _ in 0..k {
        let remaining: Vec<usize> = (0..n_units).filter(|&u| !member[u]).collect();
        let frontier: Vec<usize> = match config.budget {
            AttackBudget::Planes(_) => remaining,
            AttackBudget::Sats(_) if remaining.len() <= GREEDY_SAT_SAMPLE => remaining,
            AttackBudget::Sats(_) => {
                // Seeded sample without replacement: a partial
                // Fisher-Yates over the remaining units.
                let mut pool = remaining;
                for i in 0..GREEDY_SAT_SAMPLE {
                    let j = i + greedy_rng.gen_index(pool.len() - i);
                    pool.swap(i, j);
                }
                pool.truncate(GREEDY_SAT_SAMPLE);
                pool
            }
        };
        let candidates: Vec<Vec<SatId>> = frontier
            .iter()
            .map(|&u| {
                let mut units = greedy.clone();
                units.push(u);
                space.expand(&units)
            })
            .collect();
        let scores = scorer.score_batch(&candidates, config.threads)?;
        let mut best = 0usize;
        for (i, &s) in scores.iter().enumerate() {
            if s < scores[best] {
                best = i;
            }
        }
        greedy.push(frontier[best]);
        member[frontier[best]] = true;
        greedy_value = scores[best];
        if greedy.len() < k {
            // Pin the grown prefix so the next frontier batch deltas off
            // it instead of whatever the LRU happens to retain.
            scorer.ensure_resident(&space.expand(&greedy));
        }
    }

    // The start pool: greedy, the implicit strided-plane baseline, the
    // caller's seeded fixed attacks, and seeded random restarts.
    let mut starts: Vec<Units> = vec![greedy];
    if let AttackBudget::Planes(_) = config.budget {
        starts.push(crate::disruption::strided_plane_indices(n_units, k));
    }
    for fixed in seeds {
        // Map a destroyed set back onto whole units: a unit is selected
        // when any of its satellites is in the fixed attack. Truncate or
        // pad (lowest unselected units) to the budget so every start is
        // comparable. The membership probe needs sorted ids; callers owe
        // no ordering, so sort a local copy.
        let mut fixed = fixed.clone();
        fixed.sort_unstable();
        let mut units: Units = Vec::new();
        let mut selected = vec![false; n_units];
        for (u, sats) in space.members.iter().enumerate() {
            if sats.iter().any(|id| fixed.binary_search(id).is_ok()) && !selected[u] {
                selected[u] = true;
                units.push(u);
            }
        }
        units.truncate(k);
        let mut fill = 0usize;
        while units.len() < k && fill < n_units {
            if !selected[fill] {
                selected[fill] = true;
                units.push(fill);
            }
            fill += 1;
        }
        starts.push(units);
    }
    for r in 0..config.restarts {
        let mut rng = StdRng::seed_from_u64(
            seed ^ (crate::cast::count_u64(r) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let mut units: Units = Vec::with_capacity(k);
        let mut taken = vec![false; n_units];
        while units.len() < k {
            let u = rng.gen_index(n_units);
            if !taken[u] {
                taken[u] = true;
                units.push(u);
            }
        }
        starts.push(units);
    }

    // Score every start (except the greedy one, whose value the
    // construction already produced) in one parallel batch, then refine
    // each with the same swap budget — refinements run in parallel
    // across starts, each on its own deterministic stream.
    let expanded: Vec<Vec<SatId>> =
        starts.iter().skip(1).map(|units| space.expand(units)).collect();
    let start_values = scorer.score_batch(&expanded, config.threads)?;
    let n_starts = starts.len();
    let jobs: Vec<(Units, f64, u64)> = starts
        .into_iter()
        .zip(std::iter::once(greedy_value).chain(start_values))
        .enumerate()
        .map(|(i, (units, value))| {
            (units, value, seed ^ crate::cast::count_u64(i).wrapping_mul(0xA076_1D64_78BD_642F))
        })
        .collect();
    let auto = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    let workers = if config.threads == 0 { auto } else { config.threads }.clamp(1, n_starts);
    type RefineSlot = Mutex<Option<Result<(Units, f64)>>>;
    let refined: Vec<(Units, f64)> = if workers <= 1 {
        jobs.iter()
            .map(|(units, value, s)| refine(&scorer, &space, units.clone(), *value, config, *s))
            .collect::<Result<_>>()?
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<RefineSlot> = (0..n_starts).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_starts {
                        break;
                    }
                    let (units, value, s) = &jobs[i];
                    let outcome = refine(&scorer, &space, units.clone(), *value, config, *s);
                    *slots[i].lock().expect("refine slot poisoned") = Some(outcome);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner().expect("refine slot poisoned").expect("every index claimed")
            })
            .collect::<Result<_>>()?
    };

    // The final pick: strict < over start order, so ties resolve to the
    // earliest start (greedy, then baseline, then seeds, then restarts).
    let mut best: Option<(usize, f64)> = None;
    for (i, (_, value)) in refined.iter().enumerate() {
        if best.is_none_or(|(_, bv)| *value < bv) {
            best = Some((i, *value));
        }
    }
    let (best_idx, best_value) = best.expect("at least the greedy start exists");
    Ok(AttackSearchOutcome {
        destroyed: space.expand(&refined[best_idx].0),
        objective_value: best_value,
        intact_value,
        candidates_evaluated: scorer.candidates_scored(),
        candidates_unique: scorer.candidates_unique(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::time_grid;
    use crate::topology::Constellation;
    use crate::traffic::assign_traffic;
    use ssplane_astro::geo::GeoPoint;
    use ssplane_astro::kepler::OrbitalElements;
    use ssplane_astro::sunsync::sun_synchronous_orbit;
    use ssplane_astro::time::Epoch;

    pub(super) fn constellation(planes: usize, slots: usize) -> Constellation {
        let epoch = Epoch::J2000;
        let orbit = sun_synchronous_orbit(560.0).unwrap();
        let element_planes: Vec<Vec<OrbitalElements>> = (0..planes)
            .map(|p| orbit.with_ltan(7.5 + p as f64 * 1.2).plane_elements(epoch, slots).unwrap())
            .collect();
        Constellation::new(epoch, element_planes).unwrap()
    }

    pub(super) fn city_flows() -> Vec<Flow> {
        let cities = [
            (40.7, -74.0),
            (51.5, -0.1),
            (35.7, 139.7),
            (-23.5, -46.6),
            (19.1, 72.9),
            (48.9, 2.3),
            (34.1, -118.2),
            (1.3, 103.8),
        ];
        let mut out = Vec::new();
        for (i, &(a_lat, a_lon)) in cities.iter().enumerate() {
            for &(b_lat, b_lon) in cities.iter().skip(i + 1) {
                out.push(Flow {
                    src: GeoPoint::from_degrees(a_lat, a_lon),
                    dst: GeoPoint::from_degrees(b_lat, b_lon),
                    demand: 1.0,
                });
            }
        }
        out
    }

    pub(super) fn evaluator_fixture(
        c: &Constellation,
        flows: &[Flow],
        slots: usize,
    ) -> (SnapshotSeries, Vec<Flow>) {
        let series = SnapshotSeries::build(c, &time_grid(Epoch::J2000, slots, 300.0)).unwrap();
        let _ = c;
        (series, flows.to_vec())
    }

    #[test]
    fn intact_evaluation_matches_the_reference_pipeline() {
        let c = constellation(5, 12);
        let flows = city_flows();
        let (series, flows) = evaluator_fixture(&c, &flows, 3);
        let evaluator =
            DegradedEvaluator::new(&series, &flows, 20f64.to_radians(), Default::default())
                .unwrap();
        assert_eq!(evaluator.n_slots(), 3);
        assert_eq!(evaluator.n_sats(), 60);
        for (k, cached) in evaluator.intact().iter().enumerate() {
            let snapshot = series.snapshot(k);
            let topology = Topology::plus_grid(&snapshot, Default::default()).unwrap();
            let reference =
                assign_traffic(&snapshot, &topology, &flows, 20f64.to_radians()).unwrap();
            assert_eq!(cached.traffic.routed, reference.routed);
            assert_eq!(cached.traffic.link_load, reference.link_load);
            assert_eq!(cached.connected, topology.is_connected());
            assert_eq!(cached.alive, 60);
        }
        // evaluate(None) returns the cache.
        let again = evaluator.evaluate(None).unwrap();
        assert_eq!(again[0].traffic.routed, evaluator.intact()[0].traffic.routed);
    }

    #[test]
    fn masked_evaluation_matches_a_from_scratch_rebuild() {
        // The incremental fast path end to end: evaluate_slot through
        // Topology::masked must equal the plus_grid-from-scratch path the
        // scenario engine's degraded loop historically ran.
        let c = constellation(5, 12);
        let flows = city_flows();
        let (series, flows) = evaluator_fixture(&c, &flows, 2);
        let evaluator =
            DegradedEvaluator::new(&series, &flows, 20f64.to_radians(), Default::default())
                .unwrap();
        let destroyed: Vec<SatId> = (0..12).map(|s| SatId { plane: 2, slot: s }).collect();
        let mask = evaluator.attack_mask(&destroyed);
        for k in 0..2 {
            let fast = evaluator.evaluate_slot(k, Some(&mask)).unwrap();
            let snapshot = series.snapshot(k).with_alive(&mask);
            let topology = Topology::plus_grid(&snapshot, Default::default()).unwrap();
            let reference =
                assign_traffic(&snapshot, &topology, &flows, 20f64.to_radians()).unwrap();
            assert_eq!(fast.traffic.routed, reference.routed);
            assert_eq!(fast.traffic.link_load, reference.link_load);
            assert_eq!(fast.connected, topology.is_connected_among(&mask));
            assert_eq!(fast.alive, 48);
        }
    }

    #[test]
    fn score_batch_matches_sequential_and_every_thread_count() {
        let c = constellation(4, 10);
        let flows = city_flows();
        let (series, flows) = evaluator_fixture(&c, &flows, 2);
        let evaluator =
            DegradedEvaluator::new(&series, &flows, 20f64.to_radians(), Default::default())
                .unwrap();
        let candidates: Vec<Vec<SatId>> =
            (0..4).map(|p| (0..10).map(|s| SatId { plane: p, slot: s }).collect()).collect();
        let sequential: Vec<f64> = candidates
            .iter()
            .map(|d| evaluator.score_attack(d, AttackObjective::RoutedFraction).unwrap())
            .collect();
        for threads in [0, 1, 2, 7] {
            let batch = evaluator
                .score_batch(&candidates, AttackObjective::RoutedFraction, threads)
                .unwrap();
            assert_eq!(batch, sequential, "{threads} threads");
        }
        assert!(evaluator.score_batch(&[], AttackObjective::RoutedFraction, 0).unwrap().is_empty());
    }

    #[test]
    fn one_plane_budget_finds_the_argmin_plane() {
        // With budget Planes(1) the greedy step scores every plane, so
        // the outcome must be exactly the single most damaging plane.
        let c = constellation(5, 12);
        let flows = city_flows();
        let (series, flows) = evaluator_fixture(&c, &flows, 2);
        let evaluator =
            DegradedEvaluator::new(&series, &flows, 20f64.to_radians(), Default::default())
                .unwrap();
        let config = AttackSearchConfig {
            budget: AttackBudget::Planes(1),
            restarts: 1,
            swaps: 4,
            ..Default::default()
        };
        let outcome = optimize_attack(&evaluator, &config, 42, &[]).unwrap();
        assert_eq!(outcome.destroyed.len(), 12, "one whole plane");
        let mut best = f64::INFINITY;
        for p in 0..5 {
            let plane: Vec<SatId> = (0..12).map(|s| SatId { plane: p, slot: s }).collect();
            best =
                best.min(evaluator.score_attack(&plane, AttackObjective::RoutedFraction).unwrap());
        }
        assert_eq!(outcome.objective_value, best);
        assert!(outcome.objective_value <= outcome.intact_value);
        assert!(outcome.candidates_evaluated > 0);
    }

    #[test]
    fn search_is_deterministic_and_never_weaker_than_its_seeds() {
        let c = constellation(6, 10);
        let flows = city_flows();
        let (series, flows) = evaluator_fixture(&c, &flows, 2);
        let evaluator =
            DegradedEvaluator::new(&series, &flows, 20f64.to_radians(), Default::default())
                .unwrap();
        let config = AttackSearchConfig {
            budget: AttackBudget::Planes(2),
            restarts: 2,
            swaps: 6,
            ..Default::default()
        };
        // A deliberately arbitrary fixed seed attack: planes 1 and 4.
        let fixed: Vec<SatId> = [1usize, 4]
            .iter()
            .flat_map(|&p| (0..10).map(move |s| SatId { plane: p, slot: s }))
            .collect();
        let fixed_value = evaluator.score_attack(&fixed, config.objective).unwrap();
        let strided: Vec<SatId> = crate::disruption::strided_plane_indices(6, 2)
            .into_iter()
            .flat_map(|p| (0..10).map(move |s| SatId { plane: p, slot: s }))
            .collect();
        let strided_value = evaluator.score_attack(&strided, config.objective).unwrap();

        let a = optimize_attack(&evaluator, &config, 7, std::slice::from_ref(&fixed)).unwrap();
        let b = optimize_attack(&evaluator, &config, 7, std::slice::from_ref(&fixed)).unwrap();
        assert_eq!(a, b, "same seed, same outcome");
        assert_eq!(a.destroyed.len(), 20, "two whole planes");
        assert!(a.objective_value <= fixed_value, "never weaker than a seeded attack");
        assert!(a.objective_value <= strided_value, "never weaker than the strided baseline");
        assert!(a.objective_value <= a.intact_value);
        // Thread counts don't change the outcome.
        let serial = optimize_attack(
            &evaluator,
            &AttackSearchConfig { threads: 1, ..config },
            7,
            std::slice::from_ref(&fixed),
        )
        .unwrap();
        assert_eq!(a, serial);
        // A different seed may walk elsewhere but respects the budget.
        let other = optimize_attack(&evaluator, &config, 8, &[fixed]).unwrap();
        assert_eq!(other.destroyed.len(), 20);
    }

    #[test]
    fn satellite_budget_and_objectives_run() {
        let c = constellation(4, 10);
        let flows = city_flows();
        let (series, flows) = evaluator_fixture(&c, &flows, 2);
        let evaluator =
            DegradedEvaluator::new(&series, &flows, 20f64.to_radians(), Default::default())
                .unwrap();
        for objective in [
            AttackObjective::RoutedFraction,
            AttackObjective::Connectivity,
            AttackObjective::LoadInflation,
            // No workload attached: served-demand falls back to the
            // routed-fraction semantics and must still search fine.
            AttackObjective::ServedDemand,
            AttackObjective::MaskingThreshold,
        ] {
            let config = AttackSearchConfig {
                objective,
                budget: AttackBudget::Sats(6),
                restarts: 1,
                swaps: 4,
                threads: 1,
            };
            let outcome = optimize_attack(&evaluator, &config, 3, &[]).unwrap();
            assert_eq!(outcome.destroyed.len(), 6, "{objective:?}");
            assert!(
                outcome.destroyed.windows(2).all(|w| w[0] < w[1]),
                "sorted distinct victims ({objective:?})"
            );
            assert!(outcome.objective_value <= outcome.intact_value, "{objective:?}");
        }
    }

    #[test]
    fn masking_threshold_objective_collapses_earliest_and_is_deterministic() {
        let c = constellation(8, 12);
        let flows = city_flows();
        let (series, flows) = evaluator_fixture(&c, &flows, 2);
        let evaluator =
            DegradedEvaluator::new(&series, &flows, 20f64.to_radians(), Default::default())
                .unwrap()
                .with_percolation(32, 0.1);
        // The intact value is the empty-attack collapse score, however
        // it is asked for.
        let intact = evaluator.masking_collapse_value(&[]);
        assert_eq!(
            evaluator.objective_value(AttackObjective::MaskingThreshold, evaluator.intact()),
            intact
        );
        // A concentrated two-plane attack leads the ordering and can
        // only accelerate (never delay) the collapse.
        let strided: Vec<SatId> = crate::disruption::strided_plane_indices(8, 2)
            .into_iter()
            .flat_map(|p| (0..12).map(move |s| SatId { plane: p, slot: s }))
            .collect();
        let strided_value =
            evaluator.score_attack(&strided, AttackObjective::MaskingThreshold).unwrap();
        assert!(strided_value <= intact, "victims up front never delay the collapse");
        // The search is never weaker than the same-budget strided
        // baseline (implicitly seeded for plane budgets) and reruns
        // byte-identically across thread counts.
        let config = AttackSearchConfig {
            objective: AttackObjective::MaskingThreshold,
            budget: AttackBudget::Planes(2),
            restarts: 2,
            swaps: 6,
            threads: 0,
        };
        let a = optimize_attack(&evaluator, &config, 13, &[]).unwrap();
        assert_eq!(a.destroyed.len(), 24, "two whole planes");
        assert!(a.objective_value <= strided_value, "never weaker than the strided baseline");
        assert!(a.objective_value <= a.intact_value);
        for threads in [1usize, 2, 7] {
            let again =
                optimize_attack(&evaluator, &AttackSearchConfig { threads, ..config }, 13, &[])
                    .unwrap();
            assert_eq!(a, again, "thread count {threads} changed the outcome");
        }
        // Sweep parameters are really consulted: a coarser sweep
        // quantizes the threshold differently.
        let coarse =
            DegradedEvaluator::new(&series, &flows, 20f64.to_radians(), Default::default())
                .unwrap()
                .with_percolation(4, 0.1);
        assert_ne!(coarse.masking_collapse_value(&strided), strided_value);
    }

    /// A small gravity workload for the served-demand objective tests.
    pub(super) fn capacity_workload() -> TrafficWorkload {
        use ssplane_demand::diurnal::DiurnalModel;
        use ssplane_demand::gravity::{gravity_flows, GravityConfig};
        use ssplane_demand::population::{PopulationConfig, PopulationGrid};
        use ssplane_demand::DemandModel;
        let model = DemandModel::new(
            PopulationGrid::synthetic(PopulationConfig {
                lat_bins: 90,
                lon_bins: 180,
                n_cities: 400,
                seed: 42,
            })
            .unwrap(),
            DiurnalModel::default(),
        );
        let gravity = gravity_flows(
            &model,
            &GravityConfig { pairs: 1200, sites: 32, seed: 9, ..Default::default() },
            1,
        )
        .unwrap();
        let total: f64 = gravity.iter().map(|g| g.rate).sum();
        TrafficWorkload::from_gravity(
            &gravity,
            60.0 / total,
            crate::traffic_engine::CapacityConfig { link_capacity: 1.0, k_paths: 2 },
        )
    }

    #[test]
    fn served_demand_objective_degrades_under_attack_and_reruns_identically() {
        // A population-scale workload needs population-scale coverage:
        // 60 satellites leave nearly all gravity endpoints unattached, so
        // this test runs on a 240-satellite shell.
        let c = constellation(10, 24);
        let flows = city_flows();
        let (series, flows) = evaluator_fixture(&c, &flows, 2);
        let workload = capacity_workload();
        let evaluator = DegradedEvaluator::with_workload(
            &series,
            &flows,
            20f64.to_radians(),
            Default::default(),
            Some(&workload),
        )
        .unwrap();
        // Every slot evaluation carries a served summary.
        for slot in evaluator.intact() {
            let served = slot.served.as_ref().expect("workload attached");
            assert!(served.served_fraction > 0.0, "the intact network serves demand");
        }
        let intact_value =
            evaluator.objective_value(AttackObjective::ServedDemand, evaluator.intact());
        // A 10% satellite loss (24 of 240) must cut served demand. The
        // loss is concentrated — one whole plane — because a scattered
        // sprinkle merely reshuffles attachment under saturation.
        let destroyed: Vec<SatId> = (0..24).map(|slot| SatId { plane: 0, slot }).collect();
        let attacked = evaluator.score_attack(&destroyed, AttackObjective::ServedDemand).unwrap();
        assert!(
            attacked < intact_value,
            "10% loss must reduce served demand: {attacked} vs intact {intact_value}"
        );
        // The search over the new objective is deterministic across
        // reruns and thread counts, and never weaker than its baseline.
        let config = AttackSearchConfig {
            objective: AttackObjective::ServedDemand,
            budget: AttackBudget::Planes(1),
            restarts: 1,
            swaps: 2,
            threads: 0,
        };
        let a = optimize_attack(&evaluator, &config, 11, &[]).unwrap();
        let b = optimize_attack(&evaluator, &config, 11, &[]).unwrap();
        assert_eq!(a, b, "served-demand search must rerun identically");
        let serial =
            optimize_attack(&evaluator, &AttackSearchConfig { threads: 1, ..config }, 11, &[])
                .unwrap();
        assert_eq!(a, serial, "thread count changed the served-demand search");
        assert!(a.objective_value <= a.intact_value);
        assert_eq!(a.destroyed.len(), 24, "one whole plane");
    }

    #[test]
    fn workload_capacity_normalizes_the_classic_load_statistics() {
        // The same evaluator inputs with a 2x-capacity workload report
        // exactly halved link-load statistics (same raw loads).
        let c = constellation(4, 10);
        let flows = city_flows();
        let (series, flows) = evaluator_fixture(&c, &flows, 1);
        let plain = DegradedEvaluator::new(&series, &flows, 20f64.to_radians(), Default::default())
            .unwrap();
        let mut workload = capacity_workload();
        workload.capacity.link_capacity = 2.0;
        let scaled = DegradedEvaluator::with_workload(
            &series,
            &flows,
            20f64.to_radians(),
            Default::default(),
            Some(&workload),
        )
        .unwrap();
        let (a, b) = (&plain.intact()[0].traffic, &scaled.intact()[0].traffic);
        assert_eq!(a.link_load, b.link_load);
        assert!((b.max_link_load() - a.max_link_load() / 2.0).abs() < 1e-12);
        assert!(
            (scaled.intact_mean_link_load() - plain.intact_mean_link_load() / 2.0).abs() < 1e-12
        );
    }

    #[test]
    fn zero_budget_is_the_intact_network() {
        let c = constellation(3, 10);
        let flows = city_flows();
        let (series, flows) = evaluator_fixture(&c, &flows, 1);
        let evaluator =
            DegradedEvaluator::new(&series, &flows, 20f64.to_radians(), Default::default())
                .unwrap();
        let config = AttackSearchConfig { budget: AttackBudget::Planes(0), ..Default::default() };
        let outcome = optimize_attack(&evaluator, &config, 1, &[]).unwrap();
        assert!(outcome.destroyed.is_empty());
        assert_eq!(outcome.objective_value, outcome.intact_value);
        assert_eq!(outcome.candidates_evaluated, 0);
        // An over-budget search destroys everything and still terminates.
        let all = AttackSearchConfig {
            budget: AttackBudget::Planes(99),
            restarts: 1,
            swaps: 2,
            ..Default::default()
        };
        let wipeout = optimize_attack(&evaluator, &all, 1, &[]).unwrap();
        assert_eq!(wipeout.destroyed.len(), 30);
        assert_eq!(wipeout.objective_value, 0.0, "nothing routes with nobody alive");
    }
}
