//! Incremental candidate evaluation for the attack search.
//!
//! [`super::DegradedEvaluator::score_attack`] re-runs the full masked
//! pipeline per candidate: rebuild the masked topology, re-attach every
//! endpoint, re-run one Dijkstra per distinct serving satellite. The
//! search shapes that feed it are far more structured than that —
//! greedy-frontier neighbours share a (k−1)-victim prefix, swap
//! neighbours share k−1 of k victims — so almost all of that work
//! repeats verbatim between candidates. [`IncrementalScorer`] exploits
//! the structure with three mechanisms, each *exact*, never heuristic:
//!
//! 1. **Dynamic shortest-path-tree repair** — per-source trees are
//!    built once on the intact per-slot topologies; a candidate mask
//!    invalidates only the dead nodes' subtrees and repairs them with a
//!    bounded Dijkstra seeded from the frontier of still-final labels,
//!    cut short as soon as the re-routed flows' destinations settle
//!    (`ShortestPathTree::repaired_paths`), falling back to a full
//!    recompute past the evaluator's damage threshold
//!    ([`super::DegradedEvaluator::with_repair_threshold`]). With the
//!    canonical `(dist, node)` heap order every repaired label is
//!    bit-identical to a from-scratch run over the masked topology.
//! 2. **Candidate-delta scoring** — the evaluation state of recent
//!    candidates (servers, per-flow routes, repaired trees, k-path
//!    sets) is kept in a small LRU keyed by canonical victim set; a new
//!    candidate starts from the largest cached subset of its victims
//!    and applies only the delta. The greedy loop pins its growing
//!    prefix so every frontier neighbour is a one-unit delta.
//! 3. **Affected-flow filtering** — only flows whose cached route
//!    touches a newly dead node (or whose attachment died) are
//!    re-routed; everything else replays its cached outcome. Server
//!    re-attachment is monotone (a surviving winner stays the winner
//!    under a stricter mask), so only orphaned endpoints re-query.
//!
//! Aggregates (routed counts, per-link loads, waterfilled served
//! demand) are rebuilt in flow order from the per-flow outcomes — never
//! adjusted by floating-point deltas — so every objective value is
//! **byte-identical** to the full [`super::DegradedEvaluator`] path,
//! candidate for candidate, for all objectives and thread counts. The
//! scorer also deduplicates repeated candidates with a seen-cache keyed
//! by canonical victim set and reports scored-vs-unique counts.

use super::{AttackObjective, DegradedEvaluator, SlotEvaluation};
use crate::error::Result;
use crate::routing::{ServingIndex, ShortestPathTree};
use crate::topology::SatId;
use crate::traffic::{Flow, TrafficReport};
use crate::traffic_engine::{
    aggregate_attachments, k_paths_for_source, waterfill_summary, ServedDemandSummary,
};
use ssplane_astro::geo::GeoPoint;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Cached candidate states kept for delta evaluation. Small on purpose:
/// the intact state (always available) bounds the worst case, and every
/// cached state holds repaired trees worth O(sources · nodes).
const LRU_CAP: usize = 12;

/// Distinct flow endpoints, interned so per-candidate attachment work is
/// per *endpoint*, not per flow (gravity and city endpoints repeat).
#[derive(Debug, Default)]
struct EndpointTable {
    /// Distinct endpoint coordinates, first-appearance order.
    points: Vec<GeoPoint>,
    /// Per-flow (source endpoint, destination endpoint) indices.
    flow_eps: Vec<(usize, usize)>,
}

fn intern_endpoints(flows: &[Flow]) -> EndpointTable {
    let mut by_bits: BTreeMap<(u64, u64), usize> = BTreeMap::new();
    let mut points: Vec<GeoPoint> = Vec::new();
    let mut flow_eps = Vec::with_capacity(flows.len());
    for f in flows {
        let mut intern = |p: GeoPoint| -> usize {
            *by_bits.entry((p.lat.to_bits(), p.lon.to_bits())).or_insert_with(|| {
                points.push(p);
                points.len() - 1
            })
        };
        let a = intern(f.src);
        let b = intern(f.dst);
        flow_eps.push((a, b));
    }
    EndpointTable { points, flow_eps }
}

/// One flow's routing outcome under a mask — everything a stricter mask
/// needs to decide reuse.
#[derive(Debug, Clone)]
enum FlowState {
    /// An endpoint had no serving satellite.
    Unattached,
    /// Both endpoints attach to the same satellite (routed, no ISL).
    Local,
    /// Routed over the ISL path `hops` (flat indices, `s` → `d`).
    Path { s: usize, d: usize, hops: Arc<[usize]> },
    /// Attached at both ends but partitioned.
    Unreachable { s: usize, d: usize },
}

/// The k-path candidate set of one source satellite, shared across
/// cached states while it stays valid.
#[derive(Debug)]
struct SourcePaths {
    /// The destination set the rounds were run over (ascending).
    dsts: Vec<usize>,
    /// Up-to-k deduplicated candidate paths per destination.
    paths: BTreeMap<usize, Vec<Vec<usize>>>,
}

/// Served-demand evaluation state of one slot.
#[derive(Debug, Clone, Default)]
struct ServedState {
    /// Per workload endpoint: serving satellite (flat), if any.
    servers: Vec<Option<usize>>,
    /// Per source satellite: its k-path candidate set.
    sources: BTreeMap<usize, Arc<SourcePaths>>,
}

/// Cached evaluation state of one slot under one mask.
#[derive(Debug, Clone, Default)]
struct SlotState {
    /// Per classic-flow endpoint: serving satellite (flat), if any.
    servers: Vec<Option<usize>>,
    /// Per classic flow: its routing outcome.
    flows: Vec<FlowState>,
    /// Full from-scratch trees built past the damage threshold while
    /// evaluating this state (targeted repairs are consumed, not kept).
    trees: BTreeMap<usize, Arc<ShortestPathTree>>,
    /// Served-demand state, when the objective needs it.
    served: Option<ServedState>,
}

/// A fully evaluated candidate: the mask and every slot's reusable
/// state. The LRU holds these; the intact state is one with no victims.
#[derive(Debug)]
struct MaskState {
    /// Sorted, deduplicated flat victim indices — the canonical key.
    victims: Vec<usize>,
    /// The alive mask the state was evaluated under.
    mask: Vec<bool>,
    /// Per-slot state.
    slots: Vec<SlotState>,
}

impl MaskState {
    /// The empty bootstrap parent: no victims, nothing cached — every
    /// lookup against it recomputes from the intact tree cache.
    fn bootstrap(n_slots: usize, all_alive: &[bool]) -> MaskState {
        MaskState {
            victims: Vec::new(),
            mask: all_alive.to_vec(),
            slots: (0..n_slots).map(|_| SlotState::default()).collect(),
        }
    }
}

/// Sorted-slice subset test.
fn is_subset(small: &[usize], big: &[usize]) -> bool {
    let mut j = 0;
    for &s in small {
        while j < big.len() && big[j] < s {
            j += 1;
        }
        if j >= big.len() || big[j] != s {
            return false;
        }
        j += 1;
    }
    true
}

/// Connected-component labels over the alive nodes (dead nodes keep
/// `u32::MAX`): two alive nodes share a label iff the masked topology
/// connects them — the exact reachability verdict of a masked Dijkstra.
fn component_labels(topo: &crate::topology::Topology, alive: &[bool]) -> Vec<u32> {
    let n = topo.n_nodes();
    let mut comp = vec![u32::MAX; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next = 0u32;
    for v in 0..n {
        if !alive[v] || comp[v] != u32::MAX {
            continue;
        }
        comp[v] = next;
        stack.push(v);
        while let Some(u) = stack.pop() {
            for &(w, _) in topo.neighbors(u) {
                if alive[w] && comp[w] == u32::MAX {
                    comp[w] = next;
                    stack.push(w);
                }
            }
        }
        next += 1;
    }
    comp
}

/// `victims − parent` for sorted slices with `parent ⊆ victims`.
fn diff_sorted(victims: &[usize], parent: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(victims.len().saturating_sub(parent.len()));
    let mut j = 0;
    for &v in victims {
        if j < parent.len() && parent[j] == v {
            j += 1;
        } else {
            out.push(v);
        }
    }
    out
}

/// The incremental candidate scorer: [`Self::score`] is pinned
/// byte-identical to [`DegradedEvaluator::score_attack`] on the same
/// destroyed set and objective, at a per-candidate cost proportional to
/// the *damage delta* from the nearest cached state instead of the whole
/// constellation. Build one per search via
/// [`DegradedEvaluator::incremental_scorer`]; it is `Sync`, so one
/// instance serves every scoring thread (the caches are internally
/// locked, and cache content never influences returned values — only
/// how much work they cost).
#[derive(Debug)]
pub struct IncrementalScorer<'e, 'a> {
    ev: &'e DegradedEvaluator<'a>,
    objective: AttackObjective,
    /// Damage-threshold fallback: repaired regions larger than this many
    /// nodes recompute from scratch instead.
    max_affected: usize,
    /// Whether the objective reads classic per-flow routing.
    needs_routing: bool,
    /// Whether the objective reads per-link loads.
    need_load: bool,
    /// Whether the objective reads the waterfilled served demand.
    needs_served: bool,
    /// Whether the objective reads survivor-component sizes.
    needs_connectivity: bool,
    /// Flat index → network-layout id, for rebuilding `SatId` link keys.
    ids: Vec<SatId>,
    /// Interned classic-flow endpoints (empty unless routing is needed).
    endpoints: EndpointTable,
    /// Interned workload endpoints (present only with served demand).
    w_endpoints: Option<EndpointTable>,
    /// Total workload demand, summed once in flow order.
    w_offered: f64,
    /// Per-slot attachment indexes over the intact snapshots.
    indexes: Vec<ServingIndex<'a>>,
    /// Per-slot intact per-source trees, built lazily, kept for the
    /// scorer's lifetime — the repair baseline every state can reach.
    intact_trees: Vec<Mutex<BTreeMap<usize, Arc<ShortestPathTree>>>>,
    /// The fully evaluated intact state — the universal parent.
    intact_state: Arc<MaskState>,
    /// Recently evaluated candidate states, most recent first.
    lru: Mutex<Vec<Arc<MaskState>>>,
    /// The greedy prefix pinned by [`Self::ensure_resident`], exempt
    /// from LRU eviction so a whole frontier batch deltas off it.
    pinned: Mutex<Option<Arc<MaskState>>>,
    /// Seen-cache: canonical victim set → objective value.
    seen: Mutex<BTreeMap<Vec<usize>, f64>>,
    /// Score requests (cache hits included).
    scored: AtomicUsize,
}

impl<'e, 'a> IncrementalScorer<'e, 'a> {
    /// Builds the scorer: interns endpoints, builds per-slot attachment
    /// indexes, and evaluates the intact state (one tree per distinct
    /// intact source — the only whole-constellation Dijkstras the
    /// scorer's lifetime pays for, outside damage-threshold fallbacks).
    pub fn new(ev: &'e DegradedEvaluator<'a>, objective: AttackObjective) -> Self {
        let needs_served = objective == AttackObjective::ServedDemand && ev.workload.is_some();
        let needs_routing =
            matches!(objective, AttackObjective::RoutedFraction | AttackObjective::LoadInflation)
                || (objective == AttackObjective::ServedDemand && ev.workload.is_none());
        let need_load = objective == AttackObjective::LoadInflation;
        let needs_connectivity = objective == AttackObjective::Connectivity;
        let n_slots = ev.n_slots();
        let ids: Vec<SatId> =
            if n_slots > 0 { ev.series.snapshot(0).ids().collect() } else { Vec::new() };
        let endpoints =
            if needs_routing { intern_endpoints(ev.flows) } else { EndpointTable::default() };
        let w_endpoints =
            if needs_served { ev.workload.map(|w| intern_endpoints(&w.flows)) } else { None };
        let w_offered = ev.workload.map_or(0.0, |w| w.flows.iter().map(|f| f.demand).sum());
        let indexes: Vec<ServingIndex<'a>> = if needs_routing || needs_served {
            (0..n_slots)
                .map(|k| ServingIndex::new(ev.series.snapshot(k), ev.min_elevation))
                .collect()
        } else {
            Vec::new()
        };
        let n = ev.n_sats();
        let max_affected = crate::cast::f64_to_index(((n as f64) * ev.repair_threshold).ceil());
        let bootstrap = Arc::new(MaskState::bootstrap(n_slots, &ev.all_alive));
        let mut scorer = IncrementalScorer {
            ev,
            objective,
            max_affected,
            needs_routing,
            need_load,
            needs_served,
            needs_connectivity,
            ids,
            endpoints,
            w_endpoints,
            w_offered,
            indexes,
            intact_trees: (0..n_slots).map(|_| Mutex::new(BTreeMap::new())).collect(),
            intact_state: bootstrap.clone(),
            lru: Mutex::new(Vec::new()),
            pinned: Mutex::new(None),
            seen: Mutex::new(BTreeMap::new()),
            scored: AtomicUsize::new(0),
        };
        let (intact, _) = scorer.build_state(Vec::new(), &bootstrap);
        scorer.intact_state = Arc::new(intact);
        scorer
    }

    /// The objective this scorer evaluates.
    pub fn objective(&self) -> AttackObjective {
        self.objective
    }

    /// Score requests so far, cache hits included — the search-loop
    /// work the throughput benchmarks normalize by.
    pub fn candidates_scored(&self) -> usize {
        self.scored.load(Ordering::Relaxed)
    }

    /// Distinct candidates actually evaluated (canonical victim sets in
    /// the seen-cache) — `candidates_scored() − candidates_unique()` is
    /// what the dedup saved.
    pub fn candidates_unique(&self) -> usize {
        self.seen.lock().expect("seen cache poisoned").len()
    }

    /// Drops every cached candidate state and seen value, keeping only
    /// the intact state and intact tree cache — each following score
    /// pays the full delta-from-intact cost again. Benchmarks call this
    /// per iteration so repeated timing loops measure real incremental
    /// work instead of replaying the seen-cache. Counters keep counting.
    pub fn clear_cache(&self) {
        self.lru.lock().expect("state cache poisoned").clear();
        *self.pinned.lock().expect("pinned state poisoned") = None;
        self.seen.lock().expect("seen cache poisoned").clear();
    }

    /// Scores one destroyed set — byte-identical to
    /// [`DegradedEvaluator::score_attack`] with this scorer's objective.
    /// The destroyed set is canonicalized (sorted unique in-range flat
    /// indices) for caching, exactly the [`DegradedEvaluator::attack_mask`]
    /// semantics.
    ///
    /// # Errors
    /// None in practice; the `Result` mirrors `score_attack` so the two
    /// paths stay drop-in interchangeable.
    pub fn score(&self, destroyed: &[SatId]) -> Result<f64> {
        self.scored.fetch_add(1, Ordering::Relaxed);
        let key = self.canonical(destroyed);
        if let Some(&v) = self.seen.lock().expect("seen cache poisoned").get(&key) {
            return Ok(v);
        }
        let value = if self.objective == AttackObjective::MaskingThreshold {
            // Pure union-find over the prebuilt topologies, like
            // score_attack — only the seen-cache is new. Canonical ids
            // match the sorted sets the search always passes.
            let sorted_ids: Vec<SatId> = key.iter().map(|&f| self.ids[f]).collect();
            self.ev.masking_collapse_value(&sorted_ids)
        } else {
            let parent = self.best_parent(&key);
            let (state, slots) = self.build_state(key.clone(), &parent);
            let value = self.ev.objective_value(self.objective, &slots);
            self.push_lru(Arc::new(state));
            value
        };
        self.seen.lock().expect("seen cache poisoned").insert(key, value);
        Ok(value)
    }

    /// Scores a batch in parallel across `threads` scoped workers (`0` =
    /// the machine), returning scores in candidate order — the
    /// incremental counterpart of [`DegradedEvaluator::score_batch`],
    /// with the same atomic-queue determinism: cached states change how
    /// much a candidate costs, never what it scores.
    ///
    /// # Errors
    /// The first (lowest-index) candidate failure.
    pub fn score_batch(&self, candidates: &[Vec<SatId>], threads: usize) -> Result<Vec<f64>> {
        let n = candidates.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let auto = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
        let workers = if threads == 0 { auto } else { threads }.clamp(1, n);
        if workers <= 1 {
            return candidates.iter().map(|c| self.score(c)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<f64>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let outcome = self.score(&candidates[i]);
                    *slots[i].lock().expect("score slot poisoned") = Some(outcome);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner().expect("score slot poisoned").expect("every index claimed")
            })
            .collect()
    }

    /// Pins the state of `destroyed` (evaluating it if needed, without
    /// touching the counters) so following one-unit extensions delta off
    /// it — the greedy loop pins its prefix after every step. Pinning is
    /// a pure cache operation: values never depend on it.
    pub(super) fn ensure_resident(&self, destroyed: &[SatId]) {
        if self.objective == AttackObjective::MaskingThreshold {
            return;
        }
        let key = self.canonical(destroyed);
        let resident = {
            let mut lru = self.lru.lock().expect("state cache poisoned");
            lru.iter().position(|st| st.victims == key).map(|pos| lru.remove(pos))
        };
        let state = resident.unwrap_or_else(|| {
            let parent = self.best_parent(&key);
            let (state, _) = self.build_state(key, &parent);
            Arc::new(state)
        });
        *self.pinned.lock().expect("pinned state poisoned") = Some(state);
    }

    /// Canonical victim key: sorted unique in-range flat indices —
    /// exactly the set [`DegradedEvaluator::attack_mask`] would kill.
    fn canonical(&self, destroyed: &[SatId]) -> Vec<usize> {
        if self.ev.n_slots() == 0 {
            return Vec::new();
        }
        let snapshot = self.ev.series.snapshot(0);
        let mut v: Vec<usize> =
            destroyed.iter().filter_map(|id| snapshot.flat_index(*id)).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The largest cached state whose victims are a subset of `victims`
    /// (pinned state first, then most-recent LRU order); the intact
    /// state when nothing better is cached.
    fn best_parent(&self, victims: &[usize]) -> Arc<MaskState> {
        let pinned = self.pinned.lock().expect("pinned state poisoned").clone();
        let lru = self.lru.lock().expect("state cache poisoned");
        let mut best: Option<&Arc<MaskState>> = None;
        for st in pinned.iter().chain(lru.iter()) {
            if st.victims.len() <= victims.len()
                && best.is_none_or(|b| st.victims.len() > b.victims.len())
                && is_subset(&st.victims, victims)
            {
                best = Some(st);
            }
        }
        best.cloned().unwrap_or_else(|| self.intact_state.clone())
    }

    fn push_lru(&self, state: Arc<MaskState>) {
        let mut lru = self.lru.lock().expect("state cache poisoned");
        lru.insert(0, state);
        lru.truncate(LRU_CAP);
    }

    /// The intact tree of source `s` in slot `k`, built on first use and
    /// kept for the scorer's lifetime.
    fn intact_tree(&self, k: usize, s: usize) -> Arc<ShortestPathTree> {
        let mut cache = self.intact_trees[k].lock().expect("intact tree cache poisoned");
        cache
            .entry(s)
            .or_insert_with(|| {
                Arc::new(ShortestPathTree::from_flat(&self.ev.topologies[k], s, None))
            })
            .clone()
    }

    /// The routes from alive source `s` to each of `dsts` (ascending,
    /// deduplicated) under `mask`: a fallback tree built earlier in this
    /// evaluation, then a targeted repair of the parent's fallback tree
    /// by `dead_new`, then a targeted repair of the intact tree by the
    /// whole victim set — each cut short once the needed destinations
    /// settle ([`ShortestPathTree::repaired_paths`]) — then (damage
    /// threshold hit) a from-scratch masked tree, kept in `local` for
    /// this state's lifetime. Every branch is bit-identical.
    #[allow(clippy::too_many_arguments)]
    fn paths_for(
        &self,
        k: usize,
        s: usize,
        parent: &MaskState,
        mask: &[bool],
        dead_new: &[usize],
        victims: &[usize],
        dsts: &[usize],
        local: &mut BTreeMap<usize, Arc<ShortestPathTree>>,
    ) -> Vec<Option<Arc<[usize]>>> {
        let from_tree = |tree: &ShortestPathTree| {
            dsts.iter().map(|&d| tree.flat_path_to(d).map(|(h, _)| h.into())).collect()
        };
        if let Some(tree) = local.get(&s) {
            return from_tree(tree);
        }
        if victims.is_empty() {
            return from_tree(&self.intact_tree(k, s));
        }
        let topo = &self.ev.topologies[k];
        let repaired = parent.slots[k]
            .trees
            .get(&s)
            .and_then(|t| t.repaired_paths(topo, mask, dead_new, self.max_affected, dsts))
            .or_else(|| {
                self.intact_tree(k, s).repaired_paths(topo, mask, victims, self.max_affected, dsts)
            });
        match repaired {
            Some(paths) => paths.into_iter().map(|p| p.map(|(h, _)| h.into())).collect(),
            None => {
                let tree = Arc::new(ShortestPathTree::from_flat(topo, s, Some(mask)));
                local.insert(s, Arc::clone(&tree));
                from_tree(&tree)
            }
        }
    }

    /// Per-endpoint serving satellites under `mask`, from the parent's:
    /// a surviving winner stays the winner under a stricter mask and an
    /// unattached endpoint stays unattached, so only endpoints whose
    /// server died re-query. A parent without server state (the
    /// bootstrap) resolves everything fresh.
    fn update_servers(
        &self,
        k: usize,
        points: &[GeoPoint],
        parent: &[Option<usize>],
        mask: &[bool],
    ) -> Vec<Option<usize>> {
        let topo = &self.ev.topologies[k];
        let requery = |p: GeoPoint| {
            self.indexes[k].query_masked(p, mask).and_then(|(id, _)| topo.index_of(id))
        };
        if parent.len() == points.len() {
            parent
                .iter()
                .zip(points)
                .map(|(&srv, &p)| match srv {
                    Some(s) if mask[s] => Some(s),
                    Some(_) => requery(p),
                    None => None,
                })
                .collect()
        } else {
            points.iter().map(|&p| requery(p)).collect()
        }
    }

    /// The served-demand stage replay: cached attachment + per-source
    /// k-path reuse, then the shared waterfilling — bit-identical to
    /// [`crate::traffic_engine::assign_capacity_constrained`] over the
    /// masked snapshot and topology.
    fn eval_served(
        &self,
        k: usize,
        parent: &MaskState,
        mask: &[bool],
    ) -> (ServedState, ServedDemandSummary) {
        let w = self.ev.workload.expect("served demand needs a workload");
        if w.flows.is_empty() {
            return (ServedState::default(), ServedDemandSummary::empty(0, 0.0, 0.0));
        }
        let topo = &self.ev.topologies[k];
        let table = self.w_endpoints.as_ref().expect("built with the workload");
        let fresh = ServedState::default();
        let pserved = parent.slots[k].served.as_ref().unwrap_or(&fresh);
        let servers = self.update_servers(k, &table.points, &pserved.servers, mask);
        let tally = aggregate_attachments(&w.flows, |i, _| {
            let (a, b) = table.flow_eps[i];
            (servers[a], servers[b])
        });
        if tally.demand.is_empty() {
            let fraction =
                if self.w_offered > 0.0 { tally.local_served / self.w_offered } else { 0.0 };
            let summary = ServedDemandSummary {
                served: tally.local_served,
                served_fraction: fraction,
                ..ServedDemandSummary::empty(w.flows.len(), tally.unattached, self.w_offered)
            };
            return (ServedState { servers, sources: BTreeMap::new() }, summary);
        }
        let mut by_src: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &(s, d) in tally.demand.keys() {
            by_src.entry(s).or_default().push(d);
        }
        let kp = w.capacity.k_paths.max(1);
        let mut sources: BTreeMap<usize, Arc<SourcePaths>> = BTreeMap::new();
        for (&s, dsts) in &by_src {
            // Round-r penalties couple every destination of a source, so
            // reuse is whole-source: same destination set and every
            // stored candidate path still alive — then each round
            // replays identically and so does the merged path set.
            let reusable = pserved.sources.get(&s).filter(|sp| {
                sp.dsts == *dsts && sp.paths.values().flatten().flatten().all(|&h| mask[h])
            });
            let sp = match reusable {
                Some(sp) => Arc::clone(sp),
                None => Arc::new(SourcePaths {
                    dsts: dsts.clone(),
                    paths: k_paths_for_source(topo, s, dsts, kp, Some(mask)),
                }),
            };
            sources.insert(s, sp);
        }
        let summary = waterfill_summary(
            w.flows.len(),
            self.w_offered,
            tally.local_served,
            tally.unattached,
            &tally.demand,
            |s, d| sources.get(&s).and_then(|sp| sp.paths.get(&d)).map_or(&[][..], Vec::as_slice),
            w.capacity.link_capacity,
        );
        (ServedState { servers, sources }, summary)
    }

    /// One slot's delta evaluation: cached-or-repaired routing plus the
    /// slot aggregates the objective reads, synthesized into a
    /// [`SlotEvaluation`] whose read fields match the full pipeline's
    /// bit for bit (unread fields — stretch, hops, outcomes — are left
    /// inert).
    fn build_slot(
        &self,
        k: usize,
        parent: &MaskState,
        mask: &[bool],
        dead_new: &[usize],
        victims: &[usize],
    ) -> (SlotState, SlotEvaluation) {
        let mut state = SlotState::default();
        let mut routed = 0usize;
        let mut unrouted = 0usize;
        let mut link_load: BTreeMap<(SatId, SatId), f64> = BTreeMap::new();
        if self.needs_routing && !self.need_load {
            // Reachability-only objectives (routed fraction and its
            // served-demand fallback): the masked Dijkstra finds a path
            // iff both serving satellites share an alive component, so
            // component labels give the exact same routed/unrouted
            // counts without building a single path.
            let servers =
                self.update_servers(k, &self.endpoints.points, &parent.slots[k].servers, mask);
            let comp = component_labels(&self.ev.topologies[k], mask);
            for i in 0..self.ev.flows.len() {
                let (ea, eb) = self.endpoints.flow_eps[i];
                match (servers[ea], servers[eb]) {
                    (Some(a), Some(b)) if a == b || comp[a] == comp[b] => routed += 1,
                    _ => unrouted += 1,
                }
            }
            state.servers = servers;
        } else if self.needs_routing {
            let servers =
                self.update_servers(k, &self.endpoints.points, &parent.slots[k].servers, mask);
            let mut trees: BTreeMap<usize, Arc<ShortestPathTree>> = BTreeMap::new();
            // Classify every flow first; flows needing a fresh route are
            // grouped by source so each source pays one targeted repair
            // for all of its destinations.
            let mut staged: Vec<Option<FlowState>> = Vec::with_capacity(self.ev.flows.len());
            let mut pairs: Vec<(usize, usize)> = Vec::new();
            let mut by_src: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for i in 0..self.ev.flows.len() {
                let (ea, eb) = self.endpoints.flow_eps[i];
                let fs = match (servers[ea], servers[eb]) {
                    (Some(a), Some(b)) if a == b => Some(FlowState::Local),
                    (Some(a), Some(b)) => match parent.slots[k].flows.get(i) {
                        // Same serving pair and every hop alive: the
                        // cached route is still canonical (removals only
                        // lengthen competitors).
                        Some(FlowState::Path { s, d, hops })
                            if *s == a && *d == b && hops.iter().all(|&h| mask[h]) =>
                        {
                            Some(FlowState::Path { s: a, d: b, hops: Arc::clone(hops) })
                        }
                        // Reachability only shrinks under a stricter
                        // mask: unreachable stays unreachable.
                        Some(FlowState::Unreachable { s, d }) if *s == a && *d == b => {
                            Some(FlowState::Unreachable { s: a, d: b })
                        }
                        _ => {
                            by_src.entry(a).or_default().push(b);
                            pairs.push((a, b));
                            None
                        }
                    },
                    _ => Some(FlowState::Unattached),
                };
                staged.push(fs);
            }
            let mut routes: BTreeMap<(usize, usize), Option<Arc<[usize]>>> = BTreeMap::new();
            for (&s, dsts) in &mut by_src {
                dsts.sort_unstable();
                dsts.dedup();
                let found = self.paths_for(k, s, parent, mask, dead_new, victims, dsts, &mut trees);
                for (&d, hops) in dsts.iter().zip(found) {
                    routes.insert((s, d), hops);
                }
            }
            let mut pair_it = pairs.into_iter();
            let mut flows = Vec::with_capacity(self.ev.flows.len());
            for (flow, st) in self.ev.flows.iter().zip(staged) {
                let fs = st.unwrap_or_else(|| {
                    let (a, b) = pair_it.next().expect("one pending pair per staged hole");
                    match &routes[&(a, b)] {
                        Some(hops) => FlowState::Path { s: a, d: b, hops: Arc::clone(hops) },
                        None => FlowState::Unreachable { s: a, d: b },
                    }
                });
                match &fs {
                    FlowState::Local => routed += 1,
                    FlowState::Path { hops, .. } => {
                        routed += 1;
                        if self.need_load {
                            // Flow-order accumulation onto SatId keys:
                            // the exact summation the full path runs.
                            for hop in hops.windows(2) {
                                *link_load
                                    .entry((self.ids[hop[0]], self.ids[hop[1]]))
                                    .or_insert(0.0) += flow.demand;
                            }
                        }
                    }
                    FlowState::Unattached | FlowState::Unreachable { .. } => unrouted += 1,
                }
                flows.push(fs);
            }
            state.servers = servers;
            state.flows = flows;
            state.trees = trees;
        }
        let largest_component = if self.needs_connectivity {
            self.ev.topologies[k].largest_component_among(mask)
        } else {
            0
        };
        let served = if self.needs_served {
            let (ss, summary) = self.eval_served(k, parent, mask);
            state.served = Some(ss);
            Some(summary)
        } else {
            None
        };
        let evaluation = SlotEvaluation {
            connected: false,
            largest_component,
            alive: self.ev.n_sats() - victims.len(),
            traffic: TrafficReport {
                routed,
                unrouted,
                link_load,
                mean_stretch: f64::NAN,
                mean_hops: f64::NAN,
                flow_outcomes: Vec::new(),
                link_capacity: self.ev.link_capacity,
            },
            served,
        };
        (state, evaluation)
    }

    /// Evaluates `victims` as a delta off `parent`, returning the new
    /// cacheable state and the synthesized per-slot evaluations.
    fn build_state(
        &self,
        victims: Vec<usize>,
        parent: &MaskState,
    ) -> (MaskState, Vec<SlotEvaluation>) {
        let dead_new = diff_sorted(&victims, &parent.victims);
        let mut mask = parent.mask.clone();
        for &d in &dead_new {
            mask[d] = false;
        }
        let n_slots = self.ev.n_slots();
        let mut slots = Vec::with_capacity(n_slots);
        let mut evaluations = Vec::with_capacity(n_slots);
        for k in 0..n_slots {
            let (st, ev_k) = self.build_slot(k, parent, &mask, &dead_new, &victims);
            slots.push(st);
            evaluations.push(ev_k);
        }
        (MaskState { victims, mask, slots }, evaluations)
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::{capacity_workload, city_flows, constellation, evaluator_fixture};
    use super::super::{AttackObjective, DegradedEvaluator};
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Random distinct victim sets of every shape the search emits.
    fn random_victims(ev: &DegradedEvaluator<'_>, rng: &mut StdRng, k: usize) -> Vec<SatId> {
        let snapshot = ev.series.snapshot(0);
        let ids: Vec<SatId> = snapshot.ids().collect();
        let mut picked = Vec::new();
        let mut taken = vec![false; ids.len()];
        while picked.len() < k.min(ids.len()) {
            let i = rng.gen_index(ids.len());
            if !taken[i] {
                taken[i] = true;
                picked.push(ids[i]);
            }
        }
        picked.sort_unstable();
        picked
    }

    #[test]
    fn incremental_matches_full_for_every_objective() {
        let c = constellation(5, 12);
        let flows = city_flows();
        let (series, flows) = evaluator_fixture(&c, &flows, 2);
        let evaluator =
            DegradedEvaluator::new(&series, &flows, 20f64.to_radians(), Default::default())
                .unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let candidates: Vec<Vec<SatId>> = (0..8)
            .map(|i| random_victims(&evaluator, &mut rng, 1 + i % 7))
            .chain(std::iter::once(
                (0..12).map(|s| SatId { plane: 1, slot: s }).collect::<Vec<_>>(),
            ))
            .collect();
        for objective in [
            AttackObjective::RoutedFraction,
            AttackObjective::Connectivity,
            AttackObjective::LoadInflation,
            AttackObjective::ServedDemand, // no workload: routed-fraction semantics
            AttackObjective::MaskingThreshold,
        ] {
            let scorer = evaluator.incremental_scorer(objective);
            for destroyed in &candidates {
                let full = evaluator.score_attack(destroyed, objective).unwrap();
                let fast = scorer.score(destroyed).unwrap();
                assert_eq!(
                    full.to_bits(),
                    fast.to_bits(),
                    "{objective:?} diverged on {destroyed:?}"
                );
            }
            // Chained prefixes (the greedy shape) stay exact too.
            let chain = random_victims(&evaluator, &mut rng, 6);
            for end in 1..=chain.len() {
                let prefix = &chain[..end];
                let full = evaluator.score_attack(prefix, objective).unwrap();
                let fast = scorer.score(prefix).unwrap();
                assert_eq!(full.to_bits(), fast.to_bits(), "{objective:?} prefix {end}");
                scorer.ensure_resident(prefix);
            }
        }
    }

    #[test]
    fn incremental_matches_full_with_a_workload() {
        let c = constellation(10, 24);
        let flows = city_flows();
        let (series, flows) = evaluator_fixture(&c, &flows, 2);
        let workload = capacity_workload();
        let evaluator = DegradedEvaluator::with_workload(
            &series,
            &flows,
            20f64.to_radians(),
            Default::default(),
            Some(&workload),
        )
        .unwrap();
        let scorer = evaluator.incremental_scorer(AttackObjective::ServedDemand);
        let mut rng = StdRng::seed_from_u64(5);
        for k in [1usize, 4, 24] {
            let destroyed = random_victims(&evaluator, &mut rng, k);
            let full = evaluator.score_attack(&destroyed, AttackObjective::ServedDemand).unwrap();
            let fast = scorer.score(&destroyed).unwrap();
            assert_eq!(full.to_bits(), fast.to_bits(), "served-demand diverged at k={k}");
        }
        // A whole plane, then the same plane plus more: prefix chaining.
        let plane: Vec<SatId> = (0..24).map(|slot| SatId { plane: 0, slot }).collect();
        let full = evaluator.score_attack(&plane, AttackObjective::ServedDemand).unwrap();
        assert_eq!(full.to_bits(), scorer.score(&plane).unwrap().to_bits());
        scorer.ensure_resident(&plane);
        let mut wider = plane.clone();
        wider.extend((0..24).map(|slot| SatId { plane: 3, slot }));
        let full = evaluator.score_attack(&wider, AttackObjective::ServedDemand).unwrap();
        assert_eq!(full.to_bits(), scorer.score(&wider).unwrap().to_bits());
    }

    #[test]
    fn edge_cases_wipeout_zero_loss_and_duplicates() {
        let c = constellation(4, 10);
        let flows = city_flows();
        let (series, flows) = evaluator_fixture(&c, &flows, 2);
        let evaluator =
            DegradedEvaluator::new(&series, &flows, 20f64.to_radians(), Default::default())
                .unwrap();
        let scorer = evaluator.incremental_scorer(AttackObjective::RoutedFraction);
        // Zero loss = the intact value.
        let intact = evaluator.objective_value(AttackObjective::RoutedFraction, evaluator.intact());
        assert_eq!(scorer.score(&[]).unwrap().to_bits(), intact.to_bits());
        // Wipeout: nobody alive, nothing routes.
        let everyone: Vec<SatId> = series.snapshot(0).ids().collect();
        assert_eq!(scorer.score(&everyone).unwrap(), 0.0);
        assert_eq!(
            scorer.score(&everyone).unwrap().to_bits(),
            evaluator.score_attack(&everyone, AttackObjective::RoutedFraction).unwrap().to_bits()
        );
        // Duplicate and out-of-range victims canonicalize like attack_mask.
        let messy = vec![
            SatId { plane: 1, slot: 3 },
            SatId { plane: 1, slot: 3 },
            SatId { plane: 99, slot: 0 },
        ];
        let full = evaluator.score_attack(&messy, AttackObjective::RoutedFraction).unwrap();
        assert_eq!(scorer.score(&messy).unwrap().to_bits(), full.to_bits());
    }

    #[test]
    fn seen_cache_dedups_and_counts() {
        let c = constellation(4, 10);
        let flows = city_flows();
        let (series, flows) = evaluator_fixture(&c, &flows, 2);
        let evaluator =
            DegradedEvaluator::new(&series, &flows, 20f64.to_radians(), Default::default())
                .unwrap();
        let scorer = evaluator.incremental_scorer(AttackObjective::RoutedFraction);
        let a = vec![SatId { plane: 0, slot: 1 }, SatId { plane: 2, slot: 5 }];
        let b = vec![SatId { plane: 2, slot: 5 }, SatId { plane: 0, slot: 1 }]; // same set
        let c2 = vec![SatId { plane: 1, slot: 0 }];
        let va = scorer.score(&a).unwrap();
        assert_eq!(scorer.score(&b).unwrap().to_bits(), va.to_bits());
        scorer.score(&c2).unwrap();
        scorer.score(&a).unwrap();
        assert_eq!(scorer.candidates_scored(), 4);
        assert_eq!(scorer.candidates_unique(), 2);
        // clear_cache drops values but keeps counting monotonically.
        scorer.clear_cache();
        assert_eq!(scorer.candidates_unique(), 0);
        assert_eq!(scorer.score(&a).unwrap().to_bits(), va.to_bits());
        assert_eq!(scorer.candidates_scored(), 5);
        assert_eq!(scorer.candidates_unique(), 1);
    }

    #[test]
    fn score_batch_matches_sequential_across_thread_counts() {
        let c = constellation(5, 12);
        let flows = city_flows();
        let (series, flows) = evaluator_fixture(&c, &flows, 2);
        let evaluator =
            DegradedEvaluator::new(&series, &flows, 20f64.to_radians(), Default::default())
                .unwrap();
        let candidates: Vec<Vec<SatId>> =
            (0..5).map(|p| (0..12).map(|s| SatId { plane: p, slot: s }).collect()).collect();
        let reference =
            evaluator.score_batch(&candidates, AttackObjective::RoutedFraction, 1).unwrap();
        for threads in [0usize, 1, 2, 7] {
            let scorer = evaluator.incremental_scorer(AttackObjective::RoutedFraction);
            let batch = scorer.score_batch(&candidates, threads).unwrap();
            let bits: Vec<u64> = batch.iter().map(|v| v.to_bits()).collect();
            let ref_bits: Vec<u64> = reference.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits, ref_bits, "{threads} threads");
            assert_eq!(scorer.candidates_scored(), 5);
        }
    }

    #[test]
    fn tight_damage_threshold_still_exact() {
        // A threshold so low every repair falls back to full recompute:
        // values must not move (the fallback is the same math).
        let c = constellation(5, 12);
        let flows = city_flows();
        let (series, flows) = evaluator_fixture(&c, &flows, 2);
        let evaluator =
            DegradedEvaluator::new(&series, &flows, 20f64.to_radians(), Default::default())
                .unwrap()
                .with_repair_threshold(1e-9);
        let scorer = evaluator.incremental_scorer(AttackObjective::RoutedFraction);
        let destroyed: Vec<SatId> = (0..12).map(|s| SatId { plane: 2, slot: s }).collect();
        let full = evaluator.score_attack(&destroyed, AttackObjective::RoutedFraction).unwrap();
        assert_eq!(scorer.score(&destroyed).unwrap().to_bits(), full.to_bits());
    }
}
