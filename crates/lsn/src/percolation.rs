//! Percolation & robustness analytics over masked ISL topologies.
//!
//! The paper's survivability argument is about how gracefully
//! connectivity degrades, yet point metrics (routed fraction, largest
//! component at one budget) cannot see the *masking effect*: grid
//! redundancy hides targeted-attack damage until a critical failure
//! fraction — ~15% of the fleet at max degree 2 up to ~25% at degree 5
//! in the walker-percolation literature — and then the giant component
//! collapses. This module provides the phase-transition machinery:
//!
//! * a [`ClusterTracker`] — an incremental union-find over a
//!   [`Topology`]'s flat node space that maintains the giant-component
//!   size, the sum of squared component sizes, and the component count
//!   under node *additions*, so a whole loss-fraction sweep replays one
//!   removal ordering backwards in near-linear total time instead of
//!   recomputing components per step;
//! * [`percolation_sweep`] — the sweep itself: per loss step, the
//!   giant-component fraction, the susceptibility χ (finite-cluster
//!   second moment per alive node), and the mean finite-cluster size,
//!   collected into a [`PercolationCurve`];
//! * removal orderings mirroring the [`crate::disruption`] attack
//!   registry: [`plane_spread_ordering`] (targeted whole-plane loss at
//!   maximal spread — the sweep form of `leading-planes`),
//!   [`random_ordering`] (seeded uniform loss — `random-sats`),
//!   [`shell_ordering`] (whole evaluation groups — `shell`),
//!   [`keyed_ordering`] (ascending scalar key, e.g. declination distance
//!   from a debris-band center — `declination-band`), and
//!   [`priority_ordering`] (a searched destroyed set first, then a base
//!   ordering — the `optimized` attack as a sweep);
//! * [`PercolationCurve::masking_threshold`] — the critical loss
//!   fraction where the giant component stops tracking the surviving
//!   population (the drop versus the loss-free baseline exceeds a
//!   configurable gap), and
//!   [`PercolationCurve::threshold_vs`] for the drop versus an explicit
//!   random-loss baseline curve;
//! * [`algebraic_connectivity`] — λ₂ of the masked graph Laplacian via
//!   a deflated power iteration with a seeded deterministic start vector
//!   and fixed tolerance, so reports stay byte-reproducible across runs
//!   and thread counts without any external eigensolver;
//! * [`collapse_score`] — the scalar the attack optimizer minimizes
//!   under `attack.objective = "masking-threshold"`: the masking
//!   threshold of a removal ordering plus a sub-quantum mean-giant
//!   tie-breaker, so greedy search can rank candidates whose quantized
//!   thresholds tie.
//!
//! Everything here is pure sequential arithmetic over prebuilt
//! topologies: no re-propagation, no randomness beyond explicitly
//! seeded orderings and start vectors, and no threading — determinism
//! is structural.

use crate::topology::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default loss-fraction steps of a percolation sweep (33 samples
/// including the intact and fully-removed endpoints).
pub const DEFAULT_PERCOLATION_STEPS: usize = 32;

/// Default giant-component gap that declares the masking regime broken.
pub const DEFAULT_MASKING_GAP: f64 = 0.1;

/// The seed of the λ₂ power iteration's start vector ("lambda2").
pub const LAMBDA2_SEED: u64 = 0x6C61_6D62_6461_3200;

/// Incremental union-find over a topology's flat node space, tracking
/// the cluster statistics a percolation sweep samples: giant-component
/// size, sum of squared component sizes, and component count. Nodes
/// start *inactive* (removed); [`ClusterTracker::activate`] brings one
/// into service and [`ClusterTracker::union`] merges components — the
/// sweep replays a removal ordering backwards through these two calls.
#[derive(Debug, Clone)]
pub struct ClusterTracker {
    parent: Vec<usize>,
    size: Vec<u64>,
    active: Vec<bool>,
    n_active: usize,
    n_components: usize,
    largest: u64,
    sum_sq: u64,
}

/// One sample of a [`ClusterTracker`]'s state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterStats {
    /// Nodes in service.
    pub active: usize,
    /// Connected components among them.
    pub components: usize,
    /// Largest component size.
    pub largest: usize,
    /// Sum of squared component sizes (the percolation second moment,
    /// giant included).
    pub sum_sq: u64,
}

impl ClusterStats {
    /// Susceptibility χ: the finite-cluster (giant excluded) second
    /// moment per active node — the quantity that peaks at the
    /// percolation transition. `0` with nobody active.
    pub fn susceptibility(&self) -> f64 {
        if self.active == 0 {
            return 0.0;
        }
        let finite_sq = self.sum_sq - crate::cast::count_u64(self.largest).pow(2);
        finite_sq as f64 / self.active as f64
    }

    /// Mean finite-cluster size `Σs²/Σs` over the non-giant components
    /// (`0` when the giant is everything).
    pub fn mean_finite_cluster(&self) -> f64 {
        let finite_nodes = self.active - self.largest;
        if finite_nodes == 0 {
            return 0.0;
        }
        let finite_sq = self.sum_sq - crate::cast::count_u64(self.largest).pow(2);
        finite_sq as f64 / finite_nodes as f64
    }
}

impl ClusterTracker {
    /// A tracker over `n` nodes, all inactive.
    pub fn new(n: usize) -> ClusterTracker {
        ClusterTracker {
            parent: (0..n).collect(),
            size: vec![0; n],
            active: vec![false; n],
            n_active: 0,
            n_components: 0,
            largest: 0,
            sum_sq: 0,
        }
    }

    /// A tracker with every `alive` node active and every alive–alive
    /// link of `topology` unioned — the one-shot (non-incremental) form
    /// the equivalence tests pin the sweep against.
    ///
    /// # Panics
    /// If `alive.len()` is not the node count.
    pub fn from_alive(topology: &Topology, alive: &[bool]) -> ClusterTracker {
        assert_eq!(alive.len(), topology.n_nodes(), "alive mask length mismatch");
        let mut tracker = ClusterTracker::new(topology.n_nodes());
        for (v, &a) in alive.iter().enumerate() {
            if a {
                tracker.activate(v);
            }
        }
        for (a, b) in topology.edges() {
            if alive[a] && alive[b] {
                tracker.union(a, b);
            }
        }
        tracker
    }

    /// Total nodes (active or not).
    pub fn n_nodes(&self) -> usize {
        self.parent.len()
    }

    /// Whether node `v` is in service.
    pub fn is_active(&self, v: usize) -> bool {
        self.active[v]
    }

    /// Brings node `v` into service as its own singleton component
    /// (no-op if already active).
    pub fn activate(&mut self, v: usize) {
        if self.active[v] {
            return;
        }
        self.active[v] = true;
        self.parent[v] = v;
        self.size[v] = 1;
        self.n_active += 1;
        self.n_components += 1;
        self.sum_sq += 1;
        self.largest = self.largest.max(1);
    }

    fn find(&mut self, mut v: usize) -> usize {
        // Path halving: every probe links v to its grandparent.
        while self.parent[v] != v {
            self.parent[v] = self.parent[self.parent[v]];
            v = self.parent[v];
        }
        v
    }

    /// Merges the components of two active nodes (no-op if already
    /// together), updating the tracked statistics: merging sizes `a` and
    /// `b` adds `2ab` to the second moment.
    ///
    /// # Panics
    /// If either node is inactive.
    pub fn union(&mut self, a: usize, b: usize) {
        assert!(self.active[a] && self.active[b], "union of an inactive node");
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        let (sa, sb) = (self.size[ra], self.size[rb]);
        self.parent[rb] = ra;
        self.size[ra] = sa + sb;
        self.n_components -= 1;
        self.sum_sq += 2 * sa * sb;
        self.largest = self.largest.max(sa + sb);
    }

    /// Size of the largest active component.
    pub fn largest_component(&self) -> usize {
        crate::cast::count_usize(self.largest)
    }

    /// The current cluster statistics.
    pub fn stats(&self) -> ClusterStats {
        ClusterStats {
            active: self.n_active,
            components: self.n_components,
            largest: crate::cast::count_usize(self.largest),
            sum_sq: self.sum_sq,
        }
    }
}

/// The van der Corput radical inverse of `i` in base 2 — the key behind
/// [`spread_order`]'s maximal-spacing visit sequence.
fn radical_inverse(mut i: usize) -> f64 {
    let mut f = 0.5;
    let mut r = 0.0;
    while i > 0 {
        if i & 1 == 1 {
            r += f;
        }
        f *= 0.5;
        i >>= 1;
    }
    r
}

/// A maximal-spread visiting order of `0..n`: indices sorted by their
/// bit-reversal (van der Corput) key, so every prefix is spread as
/// evenly as possible across the range — for power-of-two `n` the
/// prefixes reproduce the strided sets of
/// [`crate::disruption::strided_plane_indices`] exactly, and
/// approximate them otherwise. This is the sweep form of the
/// `leading-planes` attack: each added plane lands mid-way between the
/// planes already gone, the strongest whole-plane schedule against a
/// +grid.
pub fn spread_order(n: usize) -> Vec<usize> {
    let mut keyed: Vec<(f64, usize)> = (0..n).map(|i| (radical_inverse(i), i)).collect();
    keyed.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    keyed.into_iter().map(|(_, i)| i).collect()
}

/// Targeted whole-plane removal ordering: planes visited in
/// [`spread_order`], each plane's slots removed consecutively.
pub fn plane_spread_ordering(topology: &Topology) -> Vec<usize> {
    let offsets = topology.plane_offsets();
    spread_order(topology.n_planes()).into_iter().flat_map(|p| offsets[p]..offsets[p + 1]).collect()
}

/// Seeded uniform-random removal ordering over `n` nodes: a full
/// Fisher–Yates shuffle through the shared [`Rng::gen_index`] recipe, so
/// the random-loss baseline is byte-reproducible per seed.
pub fn random_ordering(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for k in 0..n.saturating_sub(1) {
        let j = k + rng.gen_index(n - k);
        order.swap(k, j);
    }
    order
}

/// Whole-shell removal ordering: evaluation groups ascending, each
/// group's planes (and their slots) removed consecutively — the sweep
/// form of the `shell` attack.
///
/// # Panics
/// If `plane_groups.len()` is not the plane count.
pub fn shell_ordering(topology: &Topology, plane_groups: &[usize]) -> Vec<usize> {
    assert_eq!(plane_groups.len(), topology.n_planes(), "one group tag per plane");
    let offsets = topology.plane_offsets();
    let n_groups = plane_groups.iter().max().map_or(0, |&g| g + 1);
    (0..n_groups)
        .flat_map(|g| {
            plane_groups
                .iter()
                .enumerate()
                .filter(move |&(_, &tag)| tag == g)
                .flat_map(|(p, _)| offsets[p]..offsets[p + 1])
        })
        .collect()
}

/// Removal ordering by ascending scalar key (ties by flat index) — e.g.
/// each satellite's declination distance from a debris-band center, the
/// sweep form of the `declination-band` attack.
pub fn keyed_ordering(keys: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..keys.len()).collect();
    order.sort_unstable_by(|&a, &b| keys[a].total_cmp(&keys[b]).then(a.cmp(&b)));
    order
}

/// A removal ordering that takes `priority` nodes first (in the given
/// order, duplicates and out-of-range entries skipped) and then the
/// remaining nodes of `base` in base order — how a searched destroyed
/// set (the `optimized` attack) becomes a sweep: its victims lead, and
/// the targeted plane schedule finishes the curve.
pub fn priority_ordering(priority: &[usize], base: &[usize]) -> Vec<usize> {
    let n = base.len();
    let mut taken = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for &v in priority {
        if v < n && !taken[v] {
            taken[v] = true;
            order.push(v);
        }
    }
    for &v in base {
        if !taken[v] {
            taken[v] = true;
            order.push(v);
        }
    }
    order
}

/// One percolation phase-transition curve: per loss step, the sampled
/// cluster statistics of the survivors under one removal ordering.
#[derive(Debug, Clone, PartialEq)]
pub struct PercolationCurve {
    /// Total nodes of the swept topology.
    pub n_nodes: usize,
    /// Loss fraction per step (`k / steps`, including both endpoints).
    pub loss_fraction: Vec<f64>,
    /// Nodes removed per step (`⌊k·n/steps⌋` — exact integer schedule).
    pub removed: Vec<usize>,
    /// Largest-component size over the *total* node count per step.
    pub giant_fraction: Vec<f64>,
    /// Susceptibility χ per step ([`ClusterStats::susceptibility`]).
    pub susceptibility: Vec<f64>,
    /// Mean finite-cluster size per step
    /// ([`ClusterStats::mean_finite_cluster`]).
    pub mean_finite_cluster: Vec<f64>,
}

impl PercolationCurve {
    /// Samples on the curve (steps + 1).
    pub fn len(&self) -> usize {
        self.loss_fraction.len()
    }

    /// Whether the curve has no samples.
    pub fn is_empty(&self) -> bool {
        self.loss_fraction.is_empty()
    }

    /// Fraction of nodes still in service at step `k`.
    pub fn alive_fraction(&self, k: usize) -> f64 {
        if self.n_nodes == 0 {
            return 0.0;
        }
        (self.n_nodes - self.removed[k]) as f64 / self.n_nodes as f64
    }

    /// Mean giant-component fraction over the sweep — the area under the
    /// degradation curve (strictly below 1 for any non-empty topology,
    /// since the final step removes everybody).
    pub fn mean_giant(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.giant_fraction.iter().sum::<f64>() / self.len() as f64
    }

    /// The masking threshold against the loss-free baseline: the
    /// smallest loss fraction whose giant-component fraction falls more
    /// than `gap` below the surviving-population fraction — the point
    /// where redundancy stops hiding the damage. `None` if masking never
    /// breaks over the sweep.
    pub fn masking_threshold(&self, gap: f64) -> Option<f64> {
        (0..self.len())
            .find(|&k| self.alive_fraction(k) - self.giant_fraction[k] > gap)
            .map(|k| self.loss_fraction[k])
    }

    /// The masking threshold against an explicit baseline curve (same
    /// sweep grid — typically the seeded random-loss ordering): the
    /// smallest loss fraction where this curve's giant component falls
    /// more than `gap` below the baseline's. `None` if it never does.
    ///
    /// # Panics
    /// If the curves have different lengths.
    pub fn threshold_vs(&self, baseline: &PercolationCurve, gap: f64) -> Option<f64> {
        assert_eq!(self.len(), baseline.len(), "curves must share the sweep grid");
        (0..self.len())
            .find(|&k| baseline.giant_fraction[k] - self.giant_fraction[k] > gap)
            .map(|k| self.loss_fraction[k])
    }

    /// The susceptibility peak as `(loss fraction, χ)` — the transition
    /// point estimate. Ties resolve to the earliest step.
    pub fn chi_peak(&self) -> (f64, f64) {
        let mut best = 0usize;
        for k in 1..self.len() {
            if self.susceptibility[k] > self.susceptibility[best] {
                best = k;
            }
        }
        if self.is_empty() {
            (0.0, 0.0)
        } else {
            (self.loss_fraction[best], self.susceptibility[best])
        }
    }
}

/// Sweeps loss fraction `0..=1` in `steps` increments under one removal
/// ordering, replaying the ordering *backwards* through a
/// [`ClusterTracker`]: the sweep starts from the fully-removed state and
/// re-activates survivors in reverse removal order, so the whole curve
/// costs one pass over nodes and edges (union-find cannot split
/// components, but it never has to — addition order is removal order
/// reversed). Step `k` removes exactly `⌊k·n/steps⌋` nodes, so every
/// sample equals a from-scratch recomputation over the same prefix mask
/// — the equivalence the proptests pin.
///
/// # Panics
/// If `order` is not a permutation-sized cover of the node space, or
/// `steps == 0`.
pub fn percolation_sweep(topology: &Topology, order: &[usize], steps: usize) -> PercolationCurve {
    let n = topology.n_nodes();
    assert_eq!(order.len(), n, "removal ordering must cover every node");
    assert!(steps >= 1, "a sweep needs at least one step");
    let points = steps + 1;
    let mut curve = PercolationCurve {
        n_nodes: n,
        loss_fraction: vec![0.0; points],
        removed: vec![0; points],
        giant_fraction: vec![0.0; points],
        susceptibility: vec![0.0; points],
        mean_finite_cluster: vec![0.0; points],
    };
    let mut tracker = ClusterTracker::new(n);
    let mut j = n; // survivors are order[j..]
    for k in (0..points).rev() {
        let target = k * n / steps;
        while j > target {
            j -= 1;
            let v = order[j];
            tracker.activate(v);
            for &(nb, _) in topology.neighbors(v) {
                if tracker.is_active(nb) {
                    tracker.union(v, nb);
                }
            }
        }
        let stats = tracker.stats();
        curve.loss_fraction[k] = k as f64 / steps as f64;
        curve.removed[k] = target;
        curve.giant_fraction[k] = if n == 0 { 0.0 } else { stats.largest as f64 / n as f64 };
        curve.susceptibility[k] = stats.susceptibility();
        curve.mean_finite_cluster[k] = stats.mean_finite_cluster();
    }
    curve
}

/// Configuration of the λ₂ power iteration. Defaults converge the
/// closed-form test graphs to ~1e-8 and keep mega-constellation
/// Laplacians (whose spectral gap is tiny) bounded by the iteration cap
/// — both deterministically, since every parameter is fixed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lambda2Config {
    /// Convergence tolerance on the Rayleigh-quotient estimate between
    /// iterations.
    pub tolerance: f64,
    /// Iteration cap (the cost bound at mega-constellation scale).
    pub max_iterations: usize,
    /// Seed of the deterministic start vector.
    pub seed: u64,
}

impl Default for Lambda2Config {
    fn default() -> Self {
        Lambda2Config { tolerance: 1e-11, max_iterations: 4000, seed: LAMBDA2_SEED }
    }
}

/// Algebraic connectivity λ₂ (the Fiedler value) of the graph Laplacian
/// restricted to the `alive` nodes, via a deflated power iteration — no
/// external eigensolver, no randomness beyond the seeded start vector,
/// no threading: byte-reproducible across runs and thread counts.
///
/// The iteration runs on `M = cI − L` with `c = 2·d_max` (a Gershgorin
/// upper bound on the Laplacian spectrum, so `M ⪰ 0`); the all-ones
/// kernel vector of `L` is projected out each step, leaving `c − λ₂` as
/// the dominant eigenvalue. A disconnected (or empty, or single-node)
/// alive set returns exactly `0.0` — detected combinatorially through a
/// [`ClusterTracker`], not through the iteration's tolerance.
///
/// # Panics
/// If `alive.len()` is not the node count.
pub fn algebraic_connectivity(topology: &Topology, alive: &[bool], config: &Lambda2Config) -> f64 {
    assert_eq!(alive.len(), topology.n_nodes(), "alive mask length mismatch");
    // Compact the alive nodes to 0..m.
    let mut compact = vec![usize::MAX; topology.n_nodes()];
    let mut nodes = Vec::new();
    for (v, &a) in alive.iter().enumerate() {
        if a {
            compact[v] = nodes.len();
            nodes.push(v);
        }
    }
    let m = nodes.len();
    if m <= 1 {
        return 0.0;
    }
    let tracker = ClusterTracker::from_alive(topology, alive);
    if tracker.stats().components > 1 {
        return 0.0;
    }
    // Compact unweighted adjacency (the Laplacian convention the
    // closed-form spectra use).
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); m];
    for (a, b) in topology.edges() {
        if alive[a] && alive[b] {
            adj[compact[a]].push(compact[b]);
            adj[compact[b]].push(compact[a]);
        }
    }
    let d_max = adj.iter().map(Vec::len).max().unwrap_or(0);
    let c = 2.0 * d_max as f64;
    if c <= 0.0 {
        // m > 1 and connected implies edges exist; defensive only.
        return 0.0;
    }
    // Seeded start vector, deflated against the ones kernel.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut v: Vec<f64> = (0..m).map(|_| rng.gen::<f64>() - 0.5).collect();
    let project_and_normalize = |v: &mut Vec<f64>| -> bool {
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        for x in v.iter_mut() {
            *x -= mean;
        }
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-300 {
            return false;
        }
        for x in v.iter_mut() {
            *x /= norm;
        }
        true
    };
    if !project_and_normalize(&mut v) {
        // The random vector collapsed onto the kernel (vanishingly
        // unlikely); fall back to a deterministic non-kernel vector.
        v = (0..m).map(|i| if i == 0 { 1.0 } else { 0.0 }).collect();
        project_and_normalize(&mut v);
    }
    let mut estimate = f64::NAN;
    for _ in 0..config.max_iterations {
        // w = (cI − L) v = (c − d_i) v_i + Σ_{j∈N(i)} v_j.
        let mut w: Vec<f64> = (0..m)
            .map(|i| {
                let mut acc = (c - adj[i].len() as f64) * v[i];
                for &j in &adj[i] {
                    acc += v[j];
                }
                acc
            })
            .collect();
        // Rayleigh quotient with ‖v‖ = 1: μ = v·w estimates c − λ₂.
        let mu: f64 = v.iter().zip(&w).map(|(a, b)| a * b).sum();
        let converged = (mu - estimate).abs() <= config.tolerance * c.max(1.0);
        estimate = mu;
        if !project_and_normalize(&mut w) {
            // M v vanished after deflation: v was (numerically) the λ₂
            // eigenvector of eigenvalue c, i.e. λ₂ ≈ 0 within roundoff.
            break;
        }
        v = w;
        if converged {
            break;
        }
    }
    (c - estimate).max(0.0)
}

/// The attack optimizer's masking-collapse score of one removal ordering
/// over one topology (lower = the masking regime collapses earlier):
/// the [`PercolationCurve::masking_threshold`] at `gap` — `1 + 1/steps`
/// when masking never breaks, so an unbroken curve always ranks worst —
/// plus `mean_giant / steps` as a tie-breaker. The tie-breaker is
/// strictly smaller than one threshold quantum (`1/steps`), so it only
/// ever orders candidates whose quantized thresholds tie, letting the
/// greedy search make progress between threshold jumps.
pub fn collapse_score(topology: &Topology, order: &[usize], steps: usize, gap: f64) -> f64 {
    let curve = percolation_sweep(topology, order, steps);
    let threshold = curve.masking_threshold(gap).unwrap_or(1.0 + 1.0 / steps as f64);
    threshold + curve.mean_giant() / steps as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Link, SatId};

    /// A single-plane topology over `n` nodes with the given flat-index
    /// links, all unit length.
    fn graph(n: usize, edges: &[(usize, usize)]) -> Topology {
        let links = edges
            .iter()
            .map(|&(a, b)| Link {
                a: SatId { plane: 0, slot: a },
                b: SatId { plane: 0, slot: b },
                length_km: 1.0,
            })
            .collect();
        Topology::from_links(links, vec![0, n])
    }

    fn path(n: usize) -> Topology {
        graph(n, &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>())
    }

    fn cycle(n: usize) -> Topology {
        let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.push((0, n - 1));
        graph(n, &edges)
    }

    fn complete(n: usize) -> Topology {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in a + 1..n {
                edges.push((a, b));
            }
        }
        graph(n, &edges)
    }

    #[test]
    fn tracker_statistics_follow_unions() {
        let mut t = ClusterTracker::new(6);
        assert_eq!(t.stats(), ClusterStats { active: 0, components: 0, largest: 0, sum_sq: 0 });
        for v in 0..5 {
            t.activate(v);
        }
        t.activate(0); // idempotent
        assert_eq!(t.stats(), ClusterStats { active: 5, components: 5, largest: 1, sum_sq: 5 });
        t.union(0, 1);
        t.union(2, 3);
        t.union(0, 1); // already merged
                       // Components {0,1}, {2,3}, {4}: sum_sq = 4 + 4 + 1.
        assert_eq!(t.stats(), ClusterStats { active: 5, components: 3, largest: 2, sum_sq: 9 });
        t.union(1, 2);
        // {0,1,2,3}, {4}: sum_sq = 16 + 1.
        let stats = t.stats();
        assert_eq!(stats, ClusterStats { active: 5, components: 2, largest: 4, sum_sq: 17 });
        assert_eq!(t.largest_component(), 4);
        // χ excludes the giant: (17 - 16) / 5; mean finite: 1 / 1.
        assert!((stats.susceptibility() - 0.2).abs() < 1e-15);
        assert!((stats.mean_finite_cluster() - 1.0).abs() < 1e-15);
        assert!(!t.is_active(5));
    }

    #[test]
    fn from_alive_matches_bfs_largest_component() {
        let topo = path(7);
        // Kill node 3: components {0,1,2} and {4,5,6}.
        let mut alive = vec![true; 7];
        alive[3] = false;
        let tracker = ClusterTracker::from_alive(&topo, &alive);
        let stats = tracker.stats();
        assert_eq!(stats.active, 6);
        assert_eq!(stats.components, 2);
        assert_eq!(stats.largest, topo.largest_component_among(&alive));
        assert_eq!(stats.largest, 3);
        assert_eq!(stats.sum_sq, 18);
    }

    #[test]
    fn spread_order_prefixes_are_strided_for_powers_of_two() {
        assert_eq!(spread_order(4), vec![0, 2, 1, 3]);
        assert_eq!(spread_order(8), vec![0, 4, 2, 6, 1, 5, 3, 7]);
        for n in [1usize, 2, 3, 4, 6, 8, 10, 16] {
            let order = spread_order(n);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n).collect::<Vec<_>>(), "a permutation for n={n}");
        }
        // Power-of-two prefixes equal the strided sets.
        let order = spread_order(8);
        for lost in [1usize, 2, 4, 8] {
            let mut prefix: Vec<usize> = order[..lost].to_vec();
            prefix.sort_unstable();
            assert_eq!(prefix, crate::disruption::strided_plane_indices(8, lost), "lost={lost}");
        }
    }

    #[test]
    fn orderings_are_permutations_and_deterministic() {
        let topo = path(12);
        let planes = plane_spread_ordering(&topo);
        let mut sorted = planes.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..12).collect::<Vec<_>>());

        let a = random_ordering(12, 5);
        let b = random_ordering(12, 5);
        assert_eq!(a, b, "same seed, same shuffle");
        assert_ne!(a, random_ordering(12, 6), "different seed, different shuffle");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..12).collect::<Vec<_>>());

        let keyed = keyed_ordering(&[3.0, 1.0, 2.0, 1.0]);
        assert_eq!(keyed, vec![1, 3, 2, 0], "ascending keys, ties by index");

        let base: Vec<usize> = (0..6).collect();
        assert_eq!(priority_ordering(&[4, 2, 4, 99], &base), vec![4, 2, 0, 1, 3, 5]);
    }

    #[test]
    fn shell_ordering_groups_planes() {
        // Two planes of 2 slots each, tagged into groups 1 and 0.
        let topo = Topology::from_links(Vec::new(), vec![0, 2, 4]);
        assert_eq!(shell_ordering(&topo, &[1, 0]), vec![2, 3, 0, 1]);
    }

    #[test]
    fn sweep_matches_per_step_recomputation() {
        // The reverse-replay sweep must equal a from-scratch recompute
        // at every step, for several orderings and step counts.
        let topo = cycle(17);
        for (name, order) in [
            ("spread", plane_spread_ordering(&topo)),
            ("random", random_ordering(17, 3)),
            ("identity", (0..17).collect()),
        ] {
            for steps in [1usize, 4, 17, 23] {
                let curve = percolation_sweep(&topo, &order, steps);
                assert_eq!(curve.len(), steps + 1);
                for k in 0..curve.len() {
                    let removed = k * 17 / steps;
                    let mut alive = vec![true; 17];
                    for &v in &order[..removed] {
                        alive[v] = false;
                    }
                    let stats = ClusterTracker::from_alive(&topo, &alive).stats();
                    assert_eq!(curve.removed[k], removed, "{name} steps={steps} k={k}");
                    assert_eq!(
                        curve.giant_fraction[k],
                        stats.largest as f64 / 17.0,
                        "{name} steps={steps} k={k}"
                    );
                    assert_eq!(
                        curve.susceptibility[k],
                        stats.susceptibility(),
                        "{name} steps={steps} k={k}"
                    );
                    assert_eq!(
                        curve.mean_finite_cluster[k],
                        stats.mean_finite_cluster(),
                        "{name} steps={steps} k={k}"
                    );
                }
                // Endpoints: intact giant covers the cycle; full removal
                // leaves nothing.
                assert_eq!(curve.giant_fraction[0], 1.0);
                assert_eq!(curve.giant_fraction[steps], 0.0);
            }
        }
    }

    #[test]
    fn masking_threshold_detects_the_phase_transition() {
        // A path graph has no redundancy at all: removing spread-out
        // nodes shatters it immediately, while removing from one end
        // keeps the giant tracking the survivors for a long time.
        let topo = path(64);
        let steps = 32;
        let shatter = percolation_sweep(&topo, &spread_order(64), steps);
        let peel: Vec<usize> = (0..64).collect();
        let peel_curve = percolation_sweep(&topo, &peel, steps);
        let t_shatter = shatter.masking_threshold(0.1).expect("spread loss shatters a path");
        let t_peel = peel_curve.masking_threshold(0.1);
        assert!(t_peel.is_none(), "peeling one end never opens a gap: {t_peel:?}");
        assert!(t_shatter <= 0.1, "the first spread removals already shatter: {t_shatter}");
        // Against an explicit baseline curve the same ordering is never
        // below itself.
        assert_eq!(shatter.threshold_vs(&shatter, 0.1), None);
        assert!(shatter.threshold_vs(&peel_curve, 0.1).is_some());
        // The collapse score ranks the shattering ordering as more
        // damaging, and an unbroken curve beyond the worst broken one.
        let s = collapse_score(&topo, &spread_order(64), steps, 0.1);
        let p = collapse_score(&topo, &peel, steps, 0.1);
        assert!(s < p, "shatter {s} must beat peel {p}");
        assert!(p > 1.0, "an unbroken curve scores beyond any broken threshold");
    }

    #[test]
    fn chi_peaks_inside_the_sweep() {
        let topo = cycle(64);
        let curve = percolation_sweep(&topo, &random_ordering(64, 9), 32);
        let (at, chi) = curve.chi_peak();
        assert!(chi > 0.0);
        assert!(at > 0.0 && at < 1.0, "χ peaks strictly inside the sweep: {at}");
    }

    #[test]
    fn lambda2_matches_closed_forms() {
        use std::f64::consts::PI;
        let config = Lambda2Config::default();
        // Path P_n: λ₂ = 2(1 − cos(π/n)).
        for n in [2usize, 3, 5, 8, 12] {
            let topo = path(n);
            let expect = 2.0 * (1.0 - (PI / n as f64).cos());
            let got = algebraic_connectivity(&topo, &vec![true; n], &config);
            assert!((got - expect).abs() < 1e-6, "path n={n}: {got} vs {expect}");
        }
        // Cycle C_n: λ₂ = 2(1 − cos(2π/n)) (doubly degenerate — the
        // deflated iteration still lands on the right eigenvalue).
        for n in [3usize, 4, 6, 10] {
            let topo = cycle(n);
            let expect = 2.0 * (1.0 - (2.0 * PI / n as f64).cos());
            let got = algebraic_connectivity(&topo, &vec![true; n], &config);
            assert!((got - expect).abs() < 1e-6, "cycle n={n}: {got} vs {expect}");
        }
        // Complete K_n: λ₂ = n.
        for n in [2usize, 4, 7] {
            let topo = complete(n);
            let got = algebraic_connectivity(&topo, &vec![true; n], &config);
            assert!((got - n as f64).abs() < 1e-6, "complete n={n}: {got}");
        }
    }

    #[test]
    fn lambda2_is_zero_for_disconnected_empty_and_singleton() {
        let config = Lambda2Config::default();
        // Two disjoint edges: combinatorially disconnected, exactly 0.
        let topo = graph(4, &[(0, 1), (2, 3)]);
        assert_eq!(algebraic_connectivity(&topo, &[true; 4], &config), 0.0);
        // Masking a path's middle node disconnects it.
        let p = path(5);
        let mut alive = vec![true; 5];
        alive[2] = false;
        assert_eq!(algebraic_connectivity(&p, &alive, &config), 0.0);
        // Empty and singleton alive sets.
        assert_eq!(algebraic_connectivity(&p, &[false; 5], &config), 0.0);
        let mut one = vec![false; 5];
        one[1] = true;
        assert_eq!(algebraic_connectivity(&p, &one, &config), 0.0);
        // Masking only an endpoint keeps a connected path P_4.
        let mut tail = vec![true; 5];
        tail[4] = false;
        use std::f64::consts::PI;
        let got = algebraic_connectivity(&p, &tail, &config);
        let expect = 2.0 * (1.0 - (PI / 4.0).cos());
        assert!((got - expect).abs() < 1e-6, "masked path: {got} vs {expect}");
    }

    #[test]
    fn lambda2_reruns_identically() {
        let topo = cycle(20);
        let config = Lambda2Config::default();
        let a = algebraic_connectivity(&topo, &[true; 20], &config);
        let b = algebraic_connectivity(&topo, &[true; 20], &config);
        assert_eq!(a.to_bits(), b.to_bits(), "bit-identical across runs");
    }
}
