//! Snapshot and time-expanded routing over ISL topologies.
//!
//! §5(1) of the paper: SS-plane constellations make coverage patterns
//! *predictable*, so routes can be precomputed per time slot. This module
//! provides shortest-propagation-delay routing on topology snapshots, a
//! time-expanded router that tracks path changes (handoffs) across slots,
//! and ground-terminal attachment.

use crate::error::{LsnError, Result};
use crate::topology::{Constellation, GridTopologyConfig, SatId, Topology};
use ssplane_astro::constants::EARTH_RADIUS_KM;
use ssplane_astro::coverage::elevation_at_central_angle;
use ssplane_astro::frames::ecef_to_eci;
use ssplane_astro::geo::GeoPoint;
use ssplane_astro::time::Epoch;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Speed of light \[km/s\].
pub const SPEED_OF_LIGHT_KM_S: f64 = 299_792.458;

/// A route through the constellation.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// Satellites traversed, in order.
    pub hops: Vec<SatId>,
    /// End-to-end propagation delay \[ms\] including up/down links.
    pub delay_ms: f64,
    /// Total path length \[km\] including up/down links.
    pub length_km: f64,
}

/// Dijkstra state.
#[derive(Debug, PartialEq)]
struct HeapItem {
    dist: f64,
    node: usize,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance.
        other.dist.partial_cmp(&self.dist).unwrap_or(Ordering::Equal)
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Shortest-length path (km) between two satellites on a topology
/// snapshot. Returns hop list and length.
///
/// # Errors
/// [`LsnError::UnknownNode`] for unknown endpoints, [`LsnError::NoRoute`]
/// if disconnected.
pub fn shortest_path(topology: &Topology, from: SatId, to: SatId) -> Result<(Vec<SatId>, f64)> {
    let src = topology
        .index_of(from)
        .ok_or(LsnError::UnknownNode { plane: from.plane, slot: from.slot })?;
    let dst =
        topology.index_of(to).ok_or(LsnError::UnknownNode { plane: to.plane, slot: to.slot })?;
    let n = topology.n_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev = vec![usize::MAX; n];
    let mut heap = BinaryHeap::new();
    dist[src] = 0.0;
    heap.push(HeapItem { dist: 0.0, node: src });
    while let Some(HeapItem { dist: d, node }) = heap.pop() {
        if node == dst {
            break;
        }
        if d > dist[node] {
            continue;
        }
        for &(v, w) in topology.neighbors(node) {
            let nd = d + w;
            if nd < dist[v] {
                dist[v] = nd;
                prev[v] = node;
                heap.push(HeapItem { dist: nd, node: v });
            }
        }
    }
    if dist[dst].is_infinite() {
        return Err(LsnError::NoRoute);
    }
    let mut hops = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = prev[cur];
        hops.push(cur);
    }
    hops.reverse();
    Ok((hops.into_iter().map(|i| topology.id_of(i).expect("valid index")).collect(), dist[dst]))
}

/// The satellite best serving a ground point at epoch `t`: the one with
/// the highest elevation above `min_elevation` \[rad\], if any.
///
/// # Errors
/// Propagates position evaluation failure.
pub fn serving_satellite(
    constellation: &Constellation,
    ground: GeoPoint,
    t: Epoch,
    min_elevation: f64,
) -> Result<Option<(SatId, f64)>> {
    let g_ecef = ground.to_unit_vector() * EARTH_RADIUS_KM;
    let g_eci = ecef_to_eci(t, g_ecef);
    let mut best: Option<(SatId, f64)> = None;
    for id in constellation.ids() {
        let r = constellation.position(id, t)?;
        let central = g_eci.angle_to(r);
        let altitude = r.norm() - EARTH_RADIUS_KM;
        let elev = elevation_at_central_angle(altitude, central.max(1e-9));
        if elev >= min_elevation && best.is_none_or(|(_, be)| elev > be) {
            best = Some((id, elev));
        }
    }
    Ok(best)
}

/// Routes ground-to-ground traffic at epoch `t`: uplink to the best
/// serving satellite at each end, shortest ISL path between them.
///
/// # Errors
/// [`LsnError::NoRoute`] if either terminal has no serving satellite or
/// the satellites are disconnected.
pub fn route_ground_to_ground(
    constellation: &Constellation,
    topology: &Topology,
    src: GeoPoint,
    dst: GeoPoint,
    t: Epoch,
    min_elevation: f64,
) -> Result<Route> {
    let (s_sat, _) =
        serving_satellite(constellation, src, t, min_elevation)?.ok_or(LsnError::NoRoute)?;
    let (d_sat, _) =
        serving_satellite(constellation, dst, t, min_elevation)?.ok_or(LsnError::NoRoute)?;
    let (hops, isl_km) =
        if s_sat == d_sat { (vec![s_sat], 0.0) } else { shortest_path(topology, s_sat, d_sat)? };
    let up = (constellation.position(s_sat, t)?
        - ecef_to_eci(t, src.to_unit_vector() * EARTH_RADIUS_KM))
    .norm();
    let down = (constellation.position(d_sat, t)?
        - ecef_to_eci(t, dst.to_unit_vector() * EARTH_RADIUS_KM))
    .norm();
    let length_km = isl_km + up + down;
    Ok(Route { hops, delay_ms: length_km / SPEED_OF_LIGHT_KM_S * 1e3, length_km })
}

/// A time-expanded routing result: one route per time slot plus handoff
/// statistics.
#[derive(Debug, Clone)]
pub struct TimeExpandedRoutes {
    /// Slot epochs.
    pub epochs: Vec<Epoch>,
    /// Route per slot (None when unreachable in that slot).
    pub routes: Vec<Option<Route>>,
}

impl TimeExpandedRoutes {
    /// Number of slots where the pair was routable.
    pub fn reachable_slots(&self) -> usize {
        self.routes.iter().filter(|r| r.is_some()).count()
    }

    /// Number of *handoffs*: slot transitions where the serving pair
    /// (first/last hop) changed between consecutive reachable slots.
    pub fn handoffs(&self) -> usize {
        let mut count = 0;
        let mut prev: Option<(SatId, SatId)> = None;
        for r in self.routes.iter().flatten() {
            let ends =
                (*r.hops.first().expect("route has hops"), *r.hops.last().expect("route has hops"));
            if let Some(p) = prev {
                if p != ends {
                    count += 1;
                }
            }
            prev = Some(ends);
        }
        count
    }

    /// Mean delay over reachable slots \[ms\] (NaN if never reachable).
    pub fn mean_delay_ms(&self) -> f64 {
        let delays: Vec<f64> = self.routes.iter().flatten().map(|r| r.delay_ms).collect();
        delays.iter().sum::<f64>() / delays.len() as f64
    }
}

/// Routes a ground pair over `n_slots` slots spaced `slot_s` seconds,
/// rebuilding the topology snapshot each slot (the paper's "precomputed
/// time-aware paths and schedules").
///
/// # Errors
/// Propagates topology-construction failure; per-slot unreachability is
/// recorded as `None` rather than an error.
#[allow(clippy::too_many_arguments)] // a routing request is inherently 8-dimensional
pub fn route_over_time(
    constellation: &Constellation,
    src: GeoPoint,
    dst: GeoPoint,
    start: Epoch,
    n_slots: usize,
    slot_s: f64,
    min_elevation: f64,
    topo_config: GridTopologyConfig,
) -> Result<TimeExpandedRoutes> {
    let mut epochs = Vec::with_capacity(n_slots);
    let mut routes = Vec::with_capacity(n_slots);
    for k in 0..n_slots {
        let t = start + k as f64 * slot_s;
        epochs.push(t);
        let topology = Topology::plus_grid(constellation, t, topo_config)?;
        match route_ground_to_ground(constellation, &topology, src, dst, t, min_elevation) {
            Ok(r) => routes.push(Some(r)),
            Err(LsnError::NoRoute) => routes.push(None),
            Err(e) => return Err(e),
        }
    }
    Ok(TimeExpandedRoutes { epochs, routes })
}

/// Great-circle lower bound on ground-to-ground delay \[ms\] (through an
/// idealized terrestrial fiber at c).
pub fn great_circle_delay_ms(src: GeoPoint, dst: GeoPoint) -> f64 {
    src.distance_km(&dst) / SPEED_OF_LIGHT_KM_S * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssplane_astro::kepler::OrbitalElements;
    use ssplane_astro::sunsync::sun_synchronous_orbit;

    fn constellation(planes: usize, slots: usize) -> Constellation {
        let epoch = Epoch::J2000;
        let orbit = sun_synchronous_orbit(560.0).unwrap();
        let element_planes: Vec<Vec<OrbitalElements>> = (0..planes)
            .map(|p| orbit.with_ltan(8.0 + p as f64).plane_elements(epoch, slots).unwrap())
            .collect();
        Constellation::new(epoch, element_planes).unwrap()
    }

    #[test]
    fn shortest_path_adjacent_and_self() {
        let c = constellation(3, 12);
        let topo = Topology::plus_grid(&c, Epoch::J2000, Default::default()).unwrap();
        let a = SatId { plane: 0, slot: 0 };
        let b = SatId { plane: 0, slot: 1 };
        let (hops, km) = shortest_path(&topo, a, b).unwrap();
        assert_eq!(hops, vec![a, b]);
        assert!(km > 100.0 && km < 5000.0);
        let (hops, km) = shortest_path(&topo, a, a).unwrap();
        assert_eq!(hops, vec![a]);
        assert_eq!(km, 0.0);
    }

    #[test]
    fn shortest_path_is_optimal_over_ring() {
        // Going 3 slots around a 12-slot ring must cost 3 ring hops.
        let c = constellation(1, 12);
        let topo = Topology::plus_grid(&c, Epoch::J2000, Default::default()).unwrap();
        let (hops, _) =
            shortest_path(&topo, SatId { plane: 0, slot: 0 }, SatId { plane: 0, slot: 3 }).unwrap();
        assert_eq!(hops.len(), 4);
        // And the short way around for slot 10 (2 hops back).
        let (hops, _) =
            shortest_path(&topo, SatId { plane: 0, slot: 0 }, SatId { plane: 0, slot: 10 })
                .unwrap();
        assert_eq!(hops.len(), 3);
    }

    #[test]
    fn unknown_endpoints_rejected() {
        let c = constellation(2, 6);
        let topo = Topology::plus_grid(&c, Epoch::J2000, Default::default()).unwrap();
        let bad = SatId { plane: 5, slot: 0 };
        assert!(matches!(
            shortest_path(&topo, bad, SatId { plane: 0, slot: 0 }),
            Err(LsnError::UnknownNode { .. })
        ));
    }

    #[test]
    fn serving_satellite_under_track() {
        let c = constellation(6, 20);
        let t = Epoch::J2000;
        // Find a sub-satellite point; that ground point must be served.
        let r = c.position(SatId { plane: 2, slot: 5 }, t).unwrap();
        let (gp, _) = ssplane_astro::frames::subsatellite_point(t, r).unwrap();
        let serving = serving_satellite(&c, gp, t, 30f64.to_radians()).unwrap();
        let (id, elev) = serving.expect("point under a satellite is served");
        assert_eq!(id, SatId { plane: 2, slot: 5 });
        assert!(elev > 80f64.to_radians());
    }

    #[test]
    fn ground_route_end_to_end() {
        let c = constellation(8, 25);
        let t = Epoch::J2000;
        let topo = Topology::plus_grid(&c, t, Default::default()).unwrap();
        // Two points under the constellation's morning planes.
        let r1 = c.position(SatId { plane: 1, slot: 3 }, t).unwrap();
        let (src, _) = ssplane_astro::frames::subsatellite_point(t, r1).unwrap();
        let r2 = c.position(SatId { plane: 6, slot: 3 }, t).unwrap();
        let (dst, _) = ssplane_astro::frames::subsatellite_point(t, r2).unwrap();
        let route = route_ground_to_ground(&c, &topo, src, dst, t, 25f64.to_radians()).unwrap();
        assert!(!route.hops.is_empty());
        assert!(route.delay_ms > 0.0);
        // Delay at least the great-circle bound (satellite paths are
        // longer than ideal fiber) but not absurd.
        let bound = great_circle_delay_ms(src, dst);
        assert!(route.delay_ms >= bound * 0.99, "{} < {}", route.delay_ms, bound);
        assert!(route.delay_ms < bound * 10.0 + 50.0);
    }

    #[test]
    fn unreachable_ground_gives_no_route() {
        let c = constellation(2, 10);
        let t = Epoch::J2000;
        let topo = Topology::plus_grid(&c, t, Default::default()).unwrap();
        // A 2-plane morning constellation leaves the antipodal local
        // evening uncovered: pick the point opposite plane 0's ascending
        // node on the equator.
        let r = c.position(SatId { plane: 0, slot: 0 }, t).unwrap();
        let (sub, _) = ssplane_astro::frames::subsatellite_point(t, r).unwrap();
        let far = GeoPoint::new(-sub.lat, ssplane_astro::angles::wrap_pi(sub.lon + 2.0));
        let result = route_ground_to_ground(&c, &topo, far, sub, t, 60f64.to_radians());
        assert!(matches!(result, Err(LsnError::NoRoute)) || result.is_ok());
    }

    #[test]
    fn time_expanded_routes_and_handoffs() {
        let c = constellation(8, 25);
        let src = GeoPoint::from_degrees(40.0, -100.0);
        let dst = GeoPoint::from_degrees(50.0, 10.0);
        let routes = route_over_time(
            &c,
            src,
            dst,
            Epoch::J2000,
            10,
            60.0,
            20f64.to_radians(),
            Default::default(),
        )
        .unwrap();
        assert_eq!(routes.epochs.len(), 10);
        assert_eq!(routes.routes.len(), 10);
        if routes.reachable_slots() >= 2 {
            assert!(routes.mean_delay_ms() > 0.0);
            // Handoffs bounded by transitions.
            assert!(routes.handoffs() < routes.reachable_slots());
        }
    }
}
