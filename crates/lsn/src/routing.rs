//! Snapshot and time-expanded routing over ISL topologies.
//!
//! §5(1) of the paper: SS-plane constellations make coverage patterns
//! *predictable*, so routes can be precomputed per time slot. This module
//! provides shortest-propagation-delay routing on topology snapshots, a
//! time-expanded router that tracks path changes (handoffs) across slots,
//! and ground-terminal attachment. Everything position-dependent reads
//! from a [`Snapshot`] of the shared time-grid cache
//! ([`crate::snapshot::SnapshotSeries`]) — no function here propagates an
//! orbit.

use crate::error::{LsnError, Result};
use crate::snapshot::{Snapshot, SnapshotSeries};
use crate::topology::{GridTopologyConfig, SatId, Topology};
use ssplane_astro::constants::EARTH_RADIUS_KM;
use ssplane_astro::coverage::elevation_at_central_angle;
use ssplane_astro::frames::ecef_to_eci;
use ssplane_astro::geo::GeoPoint;
use ssplane_astro::time::Epoch;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::OnceLock;

/// Speed of light \[km/s\].
pub const SPEED_OF_LIGHT_KM_S: f64 = 299_792.458;

/// A route through the constellation.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// Satellites traversed, in order.
    pub hops: Vec<SatId>,
    /// End-to-end propagation delay \[ms\] including up/down links.
    pub delay_ms: f64,
    /// Total path length \[km\] including up/down links.
    pub length_km: f64,
}

/// Dijkstra state.
#[derive(Debug, PartialEq)]
struct HeapItem {
    dist: f64,
    node: usize,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance, ties broken on node index. The tie-break
        // makes the pop order — and therefore every label and predecessor
        // choice — a *pure function of the graph*, independent of heap
        // insertion order: since link weights are strictly positive, every
        // node at a given finalized distance is already in the heap before
        // the first node at that distance pops, so finalization is exactly
        // the global sort by `(dist, node)`. That canonicality is what
        // lets the incremental tree repair ([`ShortestPathTree::repaired`],
        // seeded from a damaged tree's frontier) reproduce a fresh masked
        // run's labels bit for bit.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then(other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs Dijkstra from `src`, optionally stopping once `stop_at` is
/// finalized, optionally restricting traversal to nodes flagged in
/// `alive` (a `None` mask is the full graph; `src` must be alive).
/// Because link weights are strictly positive and relaxations use strict
/// `<`, the distance and predecessor entries of every node on a
/// finalized node's shortest path are themselves final — so an
/// early-exit run and a full run reconstruct identical paths. With the
/// alive filter, the run is relaxation-for-relaxation identical to the
/// unfiltered run on [`Topology::masked`] of the same mask: a node's
/// masked neighbor list is the exact alive subsequence of its intact
/// one.
fn dijkstra(
    topology: &Topology,
    src: usize,
    stop_at: Option<usize>,
    alive: Option<&[bool]>,
) -> (Vec<f64>, Vec<usize>) {
    let n = topology.n_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev = vec![usize::MAX; n];
    let mut heap = BinaryHeap::new();
    dist[src] = 0.0;
    heap.push(HeapItem { dist: 0.0, node: src });
    while let Some(HeapItem { dist: d, node }) = heap.pop() {
        if Some(node) == stop_at {
            break;
        }
        if d > dist[node] {
            continue;
        }
        for &(v, w) in topology.neighbors(node) {
            if let Some(mask) = alive {
                if !mask[v] {
                    continue;
                }
            }
            let nd = d + w;
            if nd < dist[v] {
                dist[v] = nd;
                prev[v] = node;
                heap.push(HeapItem { dist: nd, node: v });
            }
        }
    }
    (dist, prev)
}

/// Rebuilds the hop list `src -> dst` from a predecessor array.
fn reconstruct(topology: &Topology, prev: &[usize], src: usize, dst: usize) -> Vec<SatId> {
    let mut hops = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = prev[cur];
        hops.push(cur);
    }
    hops.reverse();
    hops.into_iter().map(|i| topology.id_of(i).expect("valid index")).collect()
}

/// Shortest-length path (km) between two satellites on a topology
/// snapshot. Returns hop list and length.
///
/// # Errors
/// [`LsnError::UnknownNode`] for unknown endpoints, [`LsnError::NoRoute`]
/// if disconnected.
pub fn shortest_path(topology: &Topology, from: SatId, to: SatId) -> Result<(Vec<SatId>, f64)> {
    let src = topology
        .index_of(from)
        .ok_or(LsnError::UnknownNode { plane: from.plane, slot: from.slot })?;
    let dst =
        topology.index_of(to).ok_or(LsnError::UnknownNode { plane: to.plane, slot: to.slot })?;
    let (dist, prev) = dijkstra(topology, src, Some(dst), None);
    if dist[dst].is_infinite() {
        return Err(LsnError::NoRoute);
    }
    Ok((reconstruct(topology, &prev, src, dst), dist[dst]))
}

/// All-destinations shortest paths from one source satellite — one full
/// Dijkstra run, queryable for every destination. Traffic assignment
/// caches one of these per distinct serving satellite so flows sharing an
/// uplink attachment share the graph search; by the finalization argument
/// on the underlying Dijkstra run, every answered path is identical to a
/// fresh per-pair [`shortest_path`] call.
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    src: usize,
    dist: Vec<f64>,
    prev: Vec<usize>,
    /// Children lists of the predecessor forest, built lazily on the
    /// first repair: a pure function of `prev`, so one build serves every
    /// repair of this tree (the incremental evaluator repairs each cached
    /// tree once per candidate).
    kids: OnceLock<ChildrenCsr>,
}

/// CSR-packed children lists of a predecessor forest: the children of
/// node `u` are `children[counts[u]..counts[u + 1]]`.
#[derive(Debug, Clone)]
struct ChildrenCsr {
    counts: Vec<usize>,
    children: Vec<usize>,
}

impl ChildrenCsr {
    fn build(prev: &[usize]) -> Self {
        let n = prev.len();
        let mut counts = vec![0usize; n + 1];
        for &p in prev {
            if p != usize::MAX {
                counts[p + 1] += 1;
            }
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut fill = counts.clone();
        let mut children = vec![0usize; counts[n]];
        for (v, &p) in prev.iter().enumerate() {
            if p != usize::MAX {
                children[fill[p]] = v;
                fill[p] += 1;
            }
        }
        ChildrenCsr { counts, children }
    }
}

impl ShortestPathTree {
    /// Computes the tree rooted at `from`.
    ///
    /// # Errors
    /// [`LsnError::UnknownNode`] for an unknown root.
    pub fn from_source(topology: &Topology, from: SatId) -> Result<Self> {
        let src = topology
            .index_of(from)
            .ok_or(LsnError::UnknownNode { plane: from.plane, slot: from.slot })?;
        let (dist, prev) = dijkstra(topology, src, None, None);
        Ok(ShortestPathTree { src, dist, prev, kids: OnceLock::new() })
    }

    /// The tree rooted at flat node `src`, optionally restricted to the
    /// `alive` nodes — identical to [`Self::from_source`] on
    /// [`Topology::masked`] of the same mask (see [`dijkstra`]). The
    /// incremental evaluator's full-recompute path.
    ///
    /// # Panics
    /// If `src` is out of range (callers pass validated flat indices).
    pub(crate) fn from_flat(topology: &Topology, src: usize, alive: Option<&[bool]>) -> Self {
        assert!(src < topology.n_nodes(), "flat source out of range");
        let (dist, prev) = dijkstra(topology, src, None, alive);
        ShortestPathTree { src, dist, prev, kids: OnceLock::new() }
    }

    /// The hop list and length to `to`.
    ///
    /// # Errors
    /// [`LsnError::UnknownNode`] for an unknown destination,
    /// [`LsnError::NoRoute`] if unreachable.
    pub fn path_to(&self, topology: &Topology, to: SatId) -> Result<(Vec<SatId>, f64)> {
        let dst = topology
            .index_of(to)
            .ok_or(LsnError::UnknownNode { plane: to.plane, slot: to.slot })?;
        if self.dist[dst].is_infinite() {
            return Err(LsnError::NoRoute);
        }
        Ok((reconstruct(topology, &self.prev, self.src, dst), self.dist[dst]))
    }

    /// The flat hop list and length to flat node `dst`, `None` if
    /// unreachable.
    pub(crate) fn flat_path_to(&self, dst: usize) -> Option<(Vec<usize>, f64)> {
        if self.dist[dst].is_infinite() {
            return None;
        }
        let mut hops = vec![dst];
        let mut cur = dst;
        while cur != self.src {
            cur = self.prev[cur];
            hops.push(cur);
        }
        hops.reverse();
        Some((hops, self.dist[dst]))
    }

    /// Repairs a tree whose labels are valid for some mask `M` into the
    /// labels of the stricter mask `alive ⊆ M`, where `dead_new` lists
    /// exactly the nodes alive in `M` but dead under `alive`. Returns
    /// `None` — recompute from scratch — when the damaged region exceeds
    /// `max_affected` nodes (or the root itself died).
    ///
    /// The repair is exact, not approximate: with the canonical
    /// `(dist, node)` heap order, Dijkstra's output is a pure function of
    /// the graph, so re-running it only over the *invalidated* region
    /// reproduces the full masked run bit for bit. The invalidated region
    /// is the dead nodes plus their tree descendants; every still-valid
    /// label outside it is final (its shortest path avoids the region),
    /// and any path re-entering the region must cross an alive edge from
    /// an unaffected node — so seeding the heap with those frontier nodes
    /// at their known distances explores exactly what a fresh run would.
    #[cfg_attr(not(test), allow(dead_code))] // the tests' exactness reference for `repaired_paths`
    pub(crate) fn repaired(
        &self,
        topology: &Topology,
        alive: &[bool],
        dead_new: &[usize],
        max_affected: usize,
    ) -> Option<ShortestPathTree> {
        let (mut dist, mut prev, _, mut heap) =
            self.cut_region(topology, alive, dead_new, max_affected)?;
        while let Some(HeapItem { dist: d, node }) = heap.pop() {
            if d > dist[node] {
                continue;
            }
            for &(v, w) in topology.neighbors(node) {
                if !alive[v] {
                    continue;
                }
                let nd = d + w;
                if nd < dist[v] {
                    dist[v] = nd;
                    prev[v] = node;
                    heap.push(HeapItem { dist: nd, node: v });
                }
            }
        }
        Some(ShortestPathTree { src: self.src, dist, prev, kids: OnceLock::new() })
    }

    /// The repaired paths to `targets` only: [`Self::repaired`] with the
    /// region Dijkstra cut short once every affected target is settled.
    /// Exact by the same canonical-order argument — the truncated run
    /// pops a prefix of the full run's pop sequence, and when a node pops
    /// its label and whole predecessor chain are final — so each returned
    /// path is bit-identical to `flat_path_to` on the fully repaired
    /// tree. Unaffected targets read straight from the preserved labels.
    /// `None` means the damage exceeded `max_affected`: recompute from
    /// scratch.
    #[allow(clippy::type_complexity)]
    pub(crate) fn repaired_paths(
        &self,
        topology: &Topology,
        alive: &[bool],
        dead_new: &[usize],
        max_affected: usize,
        targets: &[usize],
    ) -> Option<Vec<Option<(Vec<usize>, f64)>>> {
        let (mut dist, mut prev, affected, mut heap) =
            self.cut_region(topology, alive, dead_new, max_affected)?;
        let mut pending = targets.iter().filter(|&&t| affected[t]).count();
        while pending > 0 {
            let Some(HeapItem { dist: d, node }) = heap.pop() else {
                // Heap exhausted: the remaining affected targets are
                // unreachable under the mask (their labels stay ∞).
                break;
            };
            if d > dist[node] {
                continue;
            }
            if affected[node] && targets.contains(&node) {
                pending -= 1;
            }
            for &(v, w) in topology.neighbors(node) {
                if !alive[v] {
                    continue;
                }
                let nd = d + w;
                if nd < dist[v] {
                    dist[v] = nd;
                    prev[v] = node;
                    heap.push(HeapItem { dist: nd, node: v });
                }
            }
        }
        let paths = targets
            .iter()
            .map(|&t| {
                if dist[t].is_infinite() {
                    return None;
                }
                let mut hops = vec![t];
                let mut cur = t;
                while cur != self.src {
                    cur = prev[cur];
                    hops.push(cur);
                }
                hops.reverse();
                Some((hops, dist[t]))
            })
            .collect();
        Some(paths)
    }

    /// The shared damage-region setup of [`Self::repaired`] and
    /// [`Self::repaired_paths`]: invalidated labels (dead nodes plus
    /// their tree descendants reset to ∞) and the heap seeded with every
    /// unaffected alive node holding an alive edge into the region, at
    /// its known-final label. `None` when the root died or the region
    /// exceeds `max_affected`.
    #[allow(clippy::type_complexity)]
    fn cut_region(
        &self,
        topology: &Topology,
        alive: &[bool],
        dead_new: &[usize],
        max_affected: usize,
    ) -> Option<(Vec<f64>, Vec<usize>, Vec<bool>, BinaryHeap<HeapItem>)> {
        if !alive[self.src] {
            return None;
        }
        let n = self.dist.len();
        let ChildrenCsr { counts, children } =
            self.kids.get_or_init(|| ChildrenCsr::build(&self.prev));
        // Affected = newly dead nodes and their whole subtrees.
        let mut affected = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut n_affected = 0usize;
        for &d in dead_new {
            if !affected[d] {
                affected[d] = true;
                n_affected += 1;
                stack.push(d);
            }
        }
        if n_affected > max_affected {
            return None;
        }
        while let Some(u) = stack.pop() {
            for &c in &children[counts[u]..counts[u + 1]] {
                if !affected[c] {
                    affected[c] = true;
                    n_affected += 1;
                    stack.push(c);
                }
            }
            if n_affected > max_affected {
                return None;
            }
        }
        let mut dist = self.dist.clone();
        let mut prev = self.prev.clone();
        for (v, flag) in affected.iter().enumerate() {
            if *flag {
                dist[v] = f64::INFINITY;
                prev[v] = usize::MAX;
            }
        }
        let mut heap = BinaryHeap::new();
        let mut seeded = vec![false; n];
        for (a, flag) in affected.iter().enumerate() {
            if !*flag {
                continue;
            }
            for &(u, _) in topology.neighbors(a) {
                if alive[u] && !affected[u] && !seeded[u] && dist[u].is_finite() {
                    seeded[u] = true;
                    heap.push(HeapItem { dist: dist[u], node: u });
                }
            }
        }
        Some((dist, prev, affected, heap))
    }
}

/// The satellite best serving a ground point at the snapshot's epoch: the
/// one with the highest elevation above `min_elevation` \[rad\], if any.
/// Satellites masked dead by the snapshot's alive mask cannot serve.
pub fn serving_satellite(
    snapshot: &Snapshot<'_>,
    ground: GeoPoint,
    min_elevation: f64,
) -> Option<(SatId, f64)> {
    serving_scan(snapshot, ground, min_elevation, None)
}

/// The full-scan attachment search, with an optional *extra* alive mask
/// layered on top of the snapshot's own: a satellite serves only if both
/// agree it is alive. With `extra = None` this is [`serving_satellite`];
/// with a mask it answers exactly what the scan over
/// `snapshot.with_alive(extra)` would (positions and elevations never
/// consult aliveness, and dropping non-winners never changes a strict
/// first-wins maximum).
fn serving_scan(
    snapshot: &Snapshot<'_>,
    ground: GeoPoint,
    min_elevation: f64,
    extra: Option<&[bool]>,
) -> Option<(SatId, f64)> {
    let t = snapshot.epoch();
    let g_ecef = ground.to_unit_vector() * EARTH_RADIUS_KM;
    let g_eci = ecef_to_eci(t, g_ecef);
    let mut best: Option<(SatId, f64)> = None;
    for (flat, id) in snapshot.ids().enumerate() {
        if !snapshot.is_alive_flat(flat) || extra.is_some_and(|m| !m[flat]) {
            continue;
        }
        let r = snapshot.position_flat(flat);
        let central = g_eci.angle_to(r);
        let altitude = r.norm() - EARTH_RADIUS_KM;
        let elev = elevation_at_central_angle(altitude, central.max(1e-9));
        if elev >= min_elevation && best.is_none_or(|(_, be)| elev > be) {
            best = Some((id, elev));
        }
    }
    best
}

/// A per-snapshot ground-attachment accelerator: precomputes every
/// satellite's declination and its own conservative maximum central
/// angle, so each query only runs the exact elevation math on the
/// satellites whose declination band can possibly clear `min_elevation`.
/// A satellite outside its band has central angle > its own visibility
/// cap, hence elevation < `min_elevation` — so the pruned query returns
/// exactly what [`serving_satellite`] returns (candidates are still
/// evaluated in flat order with the same strict comparison).
///
/// The band is **per satellite**, derived from each satellite's own
/// altitude: on a multi-shell constellation (a deployed catalog mixing
/// 540 km and 570 km shells, say) a low-shell satellite is pruned by its
/// own tighter visibility cap instead of the fleet-wide maximum, and a
/// mixed-altitude fleet never widens anyone's band. Per-satellite caps
/// are still conservative, so answers are identical to the single-band
/// index on single-shell fleets.
///
/// Build one per snapshot when answering many queries (traffic
/// assignment); for a single lookup the plain scan is cheaper.
#[derive(Debug, Clone)]
pub struct ServingIndex<'a> {
    snapshot: Snapshot<'a>,
    min_elevation: f64,
    /// Per-satellite declination \[rad\], flat order; empty when pruning
    /// is disabled and queries fall back to the full scan.
    declinations: Vec<f64>,
    /// Per-satellite band half-width \[rad\], flat order: the satellite's
    /// own visibility cap plus slack for the declination/central-angle
    /// bound. Same length as `declinations`.
    bands: Vec<f64>,
}

impl<'a> ServingIndex<'a> {
    /// Builds the index. Pruning needs a meaningful elevation mask
    /// (`0 < min_elevation < pi/2`) and a finite visibility cap for every
    /// satellite; for anything else the index degrades to the exact full
    /// scan.
    pub fn new(snapshot: Snapshot<'a>, min_elevation: f64) -> Self {
        let n = snapshot.total_sats();
        let mut declinations = Vec::with_capacity(n);
        let mut bands = Vec::with_capacity(n);
        let prune = min_elevation > 0.0 && min_elevation < std::f64::consts::FRAC_PI_2;
        for flat in 0..n {
            let r = snapshot.position_flat(flat);
            let norm = r.norm();
            declinations.push((r.z / norm).asin());
            if !prune {
                continue;
            }
            // 1e-6 rad of slack absorbs the rounding between the
            // declination-difference bound and the exact central angle.
            match ssplane_astro::coverage::coverage_half_angle(
                norm - EARTH_RADIUS_KM,
                min_elevation,
            ) {
                Ok(cap) => bands.push(cap + 1e-6),
                Err(_) => break,
            }
        }
        if bands.len() == n {
            ServingIndex { snapshot, min_elevation, declinations, bands }
        } else {
            ServingIndex { snapshot, min_elevation, declinations: Vec::new(), bands: Vec::new() }
        }
    }

    /// The serving satellite for `ground` — identical to
    /// [`serving_satellite`] on this snapshot.
    pub fn query(&self, ground: GeoPoint) -> Option<(SatId, f64)> {
        self.query_with(ground, None)
    }

    /// The serving satellite for `ground` under an additional alive mask
    /// (flat order): exactly what a fresh index over
    /// `snapshot.with_alive(alive)` would answer. Declinations and the
    /// band half-width never consult aliveness (they are computed over
    /// *all* satellites at build time), and removing non-winning
    /// candidates from a strict first-wins maximum cannot change it, so
    /// the cached geometry transfers to any mask.
    pub fn query_masked(&self, ground: GeoPoint, alive: &[bool]) -> Option<(SatId, f64)> {
        self.query_with(ground, Some(alive))
    }

    fn query_with(&self, ground: GeoPoint, extra: Option<&[bool]>) -> Option<(SatId, f64)> {
        if self.declinations.is_empty() {
            return serving_scan(&self.snapshot, ground, self.min_elevation, extra);
        }
        let t = self.snapshot.epoch();
        let g_eci = ecef_to_eci(t, ground.to_unit_vector() * EARTH_RADIUS_KM);
        let g_dec = (g_eci.z / g_eci.norm()).asin();
        let mut best: Option<(SatId, f64)> = None;
        for (flat, id) in self.snapshot.ids().enumerate() {
            // Central angle >= |declination difference|: out-of-band
            // satellites cannot clear the elevation mask. Dead satellites
            // cannot serve at all.
            if !self.snapshot.is_alive_flat(flat)
                || extra.is_some_and(|m| !m[flat])
                || (self.declinations[flat] - g_dec).abs() > self.bands[flat]
            {
                continue;
            }
            let r = self.snapshot.position_flat(flat);
            let central = g_eci.angle_to(r);
            let altitude = r.norm() - EARTH_RADIUS_KM;
            let elev = elevation_at_central_angle(altitude, central.max(1e-9));
            if elev >= self.min_elevation && best.is_none_or(|(_, be)| elev > be) {
                best = Some((id, elev));
            }
        }
        best
    }
}

/// Assembles the full ground-to-ground route from a serving pair and its
/// ISL path: up/down link lengths at the snapshot's epoch complete the
/// delay accounting.
///
/// # Errors
/// [`LsnError::UnknownNode`] for out-of-range serving satellites.
pub(crate) fn assemble_route(
    snapshot: &Snapshot<'_>,
    src: GeoPoint,
    dst: GeoPoint,
    s_sat: SatId,
    d_sat: SatId,
    hops: Vec<SatId>,
    isl_km: f64,
) -> Result<Route> {
    let t = snapshot.epoch();
    let up =
        (snapshot.position(s_sat)? - ecef_to_eci(t, src.to_unit_vector() * EARTH_RADIUS_KM)).norm();
    let down =
        (snapshot.position(d_sat)? - ecef_to_eci(t, dst.to_unit_vector() * EARTH_RADIUS_KM)).norm();
    let length_km = isl_km + up + down;
    Ok(Route { hops, delay_ms: length_km / SPEED_OF_LIGHT_KM_S * 1e3, length_km })
}

/// Routes ground-to-ground traffic at the snapshot's epoch: uplink to the
/// best serving satellite at each end, shortest ISL path between them.
///
/// # Errors
/// [`LsnError::NoRoute`] if either terminal has no serving satellite or
/// the satellites are disconnected.
pub fn route_ground_to_ground(
    snapshot: &Snapshot<'_>,
    topology: &Topology,
    src: GeoPoint,
    dst: GeoPoint,
    min_elevation: f64,
) -> Result<Route> {
    let (s_sat, _) = serving_satellite(snapshot, src, min_elevation).ok_or(LsnError::NoRoute)?;
    let (d_sat, _) = serving_satellite(snapshot, dst, min_elevation).ok_or(LsnError::NoRoute)?;
    let (hops, isl_km) =
        if s_sat == d_sat { (vec![s_sat], 0.0) } else { shortest_path(topology, s_sat, d_sat)? };
    assemble_route(snapshot, src, dst, s_sat, d_sat, hops, isl_km)
}

/// A time-expanded routing result: one route per time slot plus handoff
/// statistics.
#[derive(Debug, Clone)]
pub struct TimeExpandedRoutes {
    /// Slot epochs.
    pub epochs: Vec<Epoch>,
    /// Route per slot (None when unreachable in that slot).
    pub routes: Vec<Option<Route>>,
}

impl TimeExpandedRoutes {
    /// Number of slots where the pair was routable.
    pub fn reachable_slots(&self) -> usize {
        self.routes.iter().filter(|r| r.is_some()).count()
    }

    /// Number of *handoffs*: slot transitions where the serving pair
    /// (first/last hop) changed between consecutive reachable slots. An
    /// unreachable slot resets the comparison: re-acquiring service on a
    /// different pair after an outage gap is a fresh attachment, not a
    /// handoff, so `route → gap → route` never counts — only strictly
    /// adjacent routable slots do.
    pub fn handoffs(&self) -> usize {
        let mut count = 0;
        let mut prev: Option<(SatId, SatId)> = None;
        for r in &self.routes {
            let Some(r) = r else {
                prev = None;
                continue;
            };
            let ends =
                (*r.hops.first().expect("route has hops"), *r.hops.last().expect("route has hops"));
            if let Some(p) = prev {
                if p != ends {
                    count += 1;
                }
            }
            prev = Some(ends);
        }
        count
    }

    /// Mean delay over reachable slots \[ms\] (NaN if never reachable).
    pub fn mean_delay_ms(&self) -> f64 {
        let delays: Vec<f64> = self.routes.iter().flatten().map(|r| r.delay_ms).collect();
        delays.iter().sum::<f64>() / delays.len() as f64
    }
}

/// Routes a ground pair over every slot of a prebuilt [`SnapshotSeries`]
/// (the paper's "precomputed time-aware paths and schedules"). The series
/// carries the grid; positions are read from its shared buffers, so this
/// touches no propagator — the refactor that removed the per-slot
/// re-propagation of all N satellites.
///
/// # Errors
/// Propagates topology-construction failure; per-slot unreachability is
/// recorded as `None` rather than an error.
pub fn route_over_time(
    series: &SnapshotSeries,
    src: GeoPoint,
    dst: GeoPoint,
    min_elevation: f64,
    topo_config: GridTopologyConfig,
) -> Result<TimeExpandedRoutes> {
    let mut routes = Vec::with_capacity(series.len());
    for snapshot in series.iter() {
        let topology = Topology::plus_grid(&snapshot, topo_config)?;
        match route_ground_to_ground(&snapshot, &topology, src, dst, min_elevation) {
            Ok(r) => routes.push(Some(r)),
            Err(LsnError::NoRoute) => routes.push(None),
            Err(e) => return Err(e),
        }
    }
    Ok(TimeExpandedRoutes { epochs: series.epochs().to_vec(), routes })
}

/// Great-circle lower bound on ground-to-ground delay \[ms\] (through an
/// idealized terrestrial fiber at c).
pub fn great_circle_delay_ms(src: GeoPoint, dst: GeoPoint) -> f64 {
    src.distance_km(&dst) / SPEED_OF_LIGHT_KM_S * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::time_grid;
    use crate::topology::Constellation;
    use ssplane_astro::kepler::OrbitalElements;
    use ssplane_astro::sunsync::sun_synchronous_orbit;

    fn constellation(planes: usize, slots: usize) -> Constellation {
        let epoch = Epoch::J2000;
        let orbit = sun_synchronous_orbit(560.0).unwrap();
        let element_planes: Vec<Vec<OrbitalElements>> = (0..planes)
            .map(|p| orbit.with_ltan(8.0 + p as f64).plane_elements(epoch, slots).unwrap())
            .collect();
        Constellation::new(epoch, element_planes).unwrap()
    }

    fn single(c: &Constellation, t: Epoch) -> SnapshotSeries {
        SnapshotSeries::build(c, &[t]).unwrap()
    }

    #[test]
    fn shortest_path_adjacent_and_self() {
        let c = constellation(3, 12);
        let series = single(&c, Epoch::J2000);
        let topo = Topology::plus_grid(&series.snapshot(0), Default::default()).unwrap();
        let a = SatId { plane: 0, slot: 0 };
        let b = SatId { plane: 0, slot: 1 };
        let (hops, km) = shortest_path(&topo, a, b).unwrap();
        assert_eq!(hops, vec![a, b]);
        assert!(km > 100.0 && km < 5000.0);
        let (hops, km) = shortest_path(&topo, a, a).unwrap();
        assert_eq!(hops, vec![a]);
        assert_eq!(km, 0.0);
    }

    #[test]
    fn shortest_path_is_optimal_over_ring() {
        // Going 3 slots around a 12-slot ring must cost 3 ring hops.
        let c = constellation(1, 12);
        let series = single(&c, Epoch::J2000);
        let topo = Topology::plus_grid(&series.snapshot(0), Default::default()).unwrap();
        let (hops, _) =
            shortest_path(&topo, SatId { plane: 0, slot: 0 }, SatId { plane: 0, slot: 3 }).unwrap();
        assert_eq!(hops.len(), 4);
        // And the short way around for slot 10 (2 hops back).
        let (hops, _) =
            shortest_path(&topo, SatId { plane: 0, slot: 0 }, SatId { plane: 0, slot: 10 })
                .unwrap();
        assert_eq!(hops.len(), 3);
    }

    #[test]
    fn tree_paths_match_per_pair_dijkstra() {
        let c = constellation(4, 10);
        let series = single(&c, Epoch::J2000);
        let topo = Topology::plus_grid(&series.snapshot(0), Default::default()).unwrap();
        let from = SatId { plane: 1, slot: 3 };
        let tree = ShortestPathTree::from_source(&topo, from).unwrap();
        for p in 0..4 {
            for s in 0..10 {
                let to = SatId { plane: p, slot: s };
                match (shortest_path(&topo, from, to), tree.path_to(&topo, to)) {
                    (Ok((hops_a, km_a)), Ok((hops_b, km_b))) => {
                        assert_eq!(hops_a, hops_b, "to {to:?}");
                        assert_eq!(km_a, km_b, "to {to:?}");
                    }
                    (Err(LsnError::NoRoute), Err(LsnError::NoRoute)) => {}
                    (a, b) => panic!("divergent outcomes to {to:?}: {a:?} vs {b:?}"),
                }
            }
        }
        assert!(matches!(
            tree.path_to(&topo, SatId { plane: 9, slot: 0 }),
            Err(LsnError::UnknownNode { .. })
        ));
    }

    #[test]
    fn repaired_tree_matches_from_scratch_masked() {
        // Tree surgery must be bit-identical to a fresh masked run, for
        // every damage shape from zero loss to half the shell — and the
        // alive-filtered intact run must in turn match Dijkstra over the
        // materialized masked topology.
        let c = constellation(5, 12);
        let series = single(&c, Epoch::J2000 + 250.0);
        let topo = Topology::plus_grid(&series.snapshot(0), Default::default()).unwrap();
        let n = topo.n_nodes();
        let damage_shapes: Vec<Vec<usize>> = vec![
            vec![],
            vec![7],
            vec![3, 17, 18, 44, 59],
            (24..36).collect(),
            (0..n).step_by(2).collect(),
        ];
        for dead in &damage_shapes {
            let mut alive = vec![true; n];
            for &d in dead {
                alive[d] = false;
            }
            let masked = topo.masked(&alive);
            for src in [0usize, 5, 23, 41] {
                if !alive[src] {
                    continue;
                }
                let intact = ShortestPathTree::from_flat(&topo, src, None);
                let scratch = ShortestPathTree::from_flat(&topo, src, Some(&alive));
                let repaired =
                    intact.repaired(&topo, &alive, dead, n).expect("budget n covers any damage");
                let rebuilt = ShortestPathTree::from_flat(&masked, src, None);
                for v in 0..n {
                    let bits = scratch.dist[v].to_bits();
                    assert_eq!(repaired.dist[v].to_bits(), bits, "dist src {src} node {v}");
                    assert_eq!(rebuilt.dist[v].to_bits(), bits, "masked dist src {src} node {v}");
                    assert_eq!(repaired.prev[v], scratch.prev[v], "prev src {src} node {v}");
                    assert_eq!(rebuilt.prev[v], scratch.prev[v], "masked prev src {src} node {v}");
                }
            }
        }
        // A dead root or an over-budget damage region refuses to repair.
        let mut alive = vec![true; n];
        alive[0] = false;
        let tree = ShortestPathTree::from_flat(&topo, 0, None);
        assert!(tree.repaired(&topo, &alive, &[0], n).is_none());
        let tree5 = ShortestPathTree::from_flat(&topo, 5, None);
        assert!(tree5.repaired(&topo, &alive, &[0], 0).is_none(), "budget 0 must fall back");
        // Wipeout: everyone but the root dead still repairs (given budget)
        // to an all-unreachable tree.
        let lone: Vec<usize> = (1..n).collect();
        let mut only_root = vec![false; n];
        only_root[0] = true;
        let wiped = tree.repaired(&topo, &only_root, &lone, n).unwrap();
        assert!(wiped.dist[1..].iter().all(|d| d.is_infinite()));
        assert_eq!(wiped.dist[0], 0.0);
    }

    #[test]
    fn query_masked_matches_rebuilt_index() {
        let c = constellation(6, 15);
        let series = single(&c, Epoch::J2000 + 700.0);
        let snap = series.snapshot(0);
        let n = snap.total_sats();
        let mut mask = vec![true; n];
        mask[15..30].fill(false);
        for flat in (0..n).step_by(7) {
            mask[flat] = false;
        }
        let grounds: Vec<GeoPoint> = [(-60.0, 30.0), (-10.0, -120.0), (12.0, 88.0), (71.0, 5.0)]
            .iter()
            .map(|&(la, lo)| GeoPoint::from_degrees(la, lo))
            .collect();
        // Both the pruned path and the degenerate full-scan fallback
        // (min_elevation 0 disables the declination band) must answer
        // exactly what a fresh index over the masked snapshot answers.
        for &min_elev in &[0.0, 15f64.to_radians(), 40f64.to_radians()] {
            let index = ServingIndex::new(snap, min_elev);
            let rebuilt = ServingIndex::new(snap.with_alive(&mask), min_elev);
            for &g in &grounds {
                assert_eq!(index.query_masked(g, &mask), rebuilt.query(g), "min_elev {min_elev}");
            }
            // The trivial masks bracket the behavior.
            let all = vec![true; n];
            let none = vec![false; n];
            for &g in &grounds {
                assert_eq!(index.query_masked(g, &all), index.query(g));
                assert_eq!(index.query_masked(g, &none), None);
            }
        }
    }

    #[test]
    fn unknown_endpoints_rejected() {
        let c = constellation(2, 6);
        let series = single(&c, Epoch::J2000);
        let topo = Topology::plus_grid(&series.snapshot(0), Default::default()).unwrap();
        let bad = SatId { plane: 5, slot: 0 };
        assert!(matches!(
            shortest_path(&topo, bad, SatId { plane: 0, slot: 0 }),
            Err(LsnError::UnknownNode { .. })
        ));
        assert!(matches!(
            ShortestPathTree::from_source(&topo, bad),
            Err(LsnError::UnknownNode { .. })
        ));
    }

    #[test]
    fn serving_satellite_under_track() {
        let c = constellation(6, 20);
        let t = Epoch::J2000;
        let series = single(&c, t);
        let snap = series.snapshot(0);
        // Find a sub-satellite point; that ground point must be served.
        let r = c.position(SatId { plane: 2, slot: 5 }, t).unwrap();
        let (gp, _) = ssplane_astro::frames::subsatellite_point(t, r).unwrap();
        let serving = serving_satellite(&snap, gp, 30f64.to_radians());
        let (id, elev) = serving.expect("point under a satellite is served");
        assert_eq!(id, SatId { plane: 2, slot: 5 });
        assert!(elev > 80f64.to_radians());
    }

    #[test]
    fn serving_index_matches_plain_scan() {
        let c = constellation(8, 25);
        let series = single(&c, Epoch::J2000 + 1234.0);
        let snap = series.snapshot(0);
        for &min_elev in &[0.0, 10f64.to_radians(), 25f64.to_radians(), 70f64.to_radians()] {
            let index = ServingIndex::new(snap, min_elev);
            for lat in [-75.0, -40.0, -5.0, 0.0, 33.0, 51.5, 78.0] {
                for lon in [-170.0, -74.0, 0.1, 60.0, 139.7] {
                    let g = GeoPoint::from_degrees(lat, lon);
                    assert_eq!(
                        index.query(g),
                        serving_satellite(&snap, g, min_elev),
                        "diverged at ({lat}, {lon}) min_elev {min_elev}"
                    );
                }
            }
        }
    }

    #[test]
    fn dead_satellite_cannot_serve() {
        let c = constellation(6, 20);
        let t = Epoch::J2000;
        let series = single(&c, t);
        let snap = series.snapshot(0);
        let r = c.position(SatId { plane: 2, slot: 5 }, t).unwrap();
        let (gp, _) = ssplane_astro::frames::subsatellite_point(t, r).unwrap();
        let (best, _) = serving_satellite(&snap, gp, 10f64.to_radians()).unwrap();
        assert_eq!(best, SatId { plane: 2, slot: 5 });
        // Kill the overhead satellite: the mask must hand the point to a
        // different (lower-elevation) server, and the pruned index must
        // agree with the plain scan on the masked snapshot.
        let mut mask = vec![true; snap.total_sats()];
        mask[snap.flat_index(best).unwrap()] = false;
        let masked = snap.with_alive(&mask);
        let fallback = serving_satellite(&masked, gp, 10f64.to_radians());
        if let Some((second, _)) = fallback {
            assert_ne!(second, best);
        }
        let index = ServingIndex::new(masked, 10f64.to_radians());
        assert_eq!(index.query(gp), fallback);
        // Killing everything leaves the point unserved.
        let none = vec![false; snap.total_sats()];
        assert_eq!(serving_satellite(&snap.with_alive(&none), gp, 0.0), None);
    }

    #[test]
    fn ground_route_end_to_end() {
        let c = constellation(8, 25);
        let t = Epoch::J2000;
        let series = single(&c, t);
        let snap = series.snapshot(0);
        let topo = Topology::plus_grid(&snap, Default::default()).unwrap();
        // Two points under the constellation's morning planes.
        let r1 = c.position(SatId { plane: 1, slot: 3 }, t).unwrap();
        let (src, _) = ssplane_astro::frames::subsatellite_point(t, r1).unwrap();
        let r2 = c.position(SatId { plane: 6, slot: 3 }, t).unwrap();
        let (dst, _) = ssplane_astro::frames::subsatellite_point(t, r2).unwrap();
        let route = route_ground_to_ground(&snap, &topo, src, dst, 25f64.to_radians()).unwrap();
        assert!(!route.hops.is_empty());
        assert!(route.delay_ms > 0.0);
        // Delay at least the great-circle bound (satellite paths are
        // longer than ideal fiber) but not absurd.
        let bound = great_circle_delay_ms(src, dst);
        assert!(route.delay_ms >= bound * 0.99, "{} < {}", route.delay_ms, bound);
        assert!(route.delay_ms < bound * 10.0 + 50.0);
    }

    #[test]
    fn unreachable_ground_gives_no_route() {
        let c = constellation(2, 10);
        let t = Epoch::J2000;
        let series = single(&c, t);
        let snap = series.snapshot(0);
        let topo = Topology::plus_grid(&snap, Default::default()).unwrap();
        // A 2-plane morning constellation leaves the antipodal local
        // evening uncovered: pick the point opposite plane 0's ascending
        // node on the equator.
        let r = c.position(SatId { plane: 0, slot: 0 }, t).unwrap();
        let (sub, _) = ssplane_astro::frames::subsatellite_point(t, r).unwrap();
        let far = GeoPoint::new(-sub.lat, ssplane_astro::angles::wrap_pi(sub.lon + 2.0));
        let result = route_ground_to_ground(&snap, &topo, far, sub, 60f64.to_radians());
        assert!(matches!(result, Err(LsnError::NoRoute)) || result.is_ok());
    }

    #[test]
    fn time_expanded_routes_and_handoffs() {
        let c = constellation(8, 25);
        let src = GeoPoint::from_degrees(40.0, -100.0);
        let dst = GeoPoint::from_degrees(50.0, 10.0);
        let series = SnapshotSeries::build(&c, &time_grid(Epoch::J2000, 10, 60.0)).unwrap();
        let routes =
            route_over_time(&series, src, dst, 20f64.to_radians(), Default::default()).unwrap();
        assert_eq!(routes.epochs.len(), 10);
        assert_eq!(routes.routes.len(), 10);
        if routes.reachable_slots() >= 2 {
            assert!(routes.mean_delay_ms() > 0.0);
            // Handoffs bounded by transitions.
            assert!(routes.handoffs() < routes.reachable_slots());
        }
    }

    #[test]
    fn handoffs_reset_across_unreachable_gaps() {
        // The regression the doc comment promises: a route, then an
        // unreachable gap, then a route on a *different* serving pair is
        // a re-acquisition, not a handoff — the gap must reset the
        // previous pair instead of comparing across it.
        let sat = |p: usize, s: usize| SatId { plane: p, slot: s };
        let route = |ends: (SatId, SatId)| Route {
            hops: vec![ends.0, ends.1],
            delay_ms: 10.0,
            length_km: 3000.0,
        };
        let a = (sat(0, 0), sat(1, 0));
        let b = (sat(2, 3), sat(3, 3));
        let grid = time_grid(Epoch::J2000, 3, 60.0);
        let gapped = TimeExpandedRoutes {
            epochs: grid.clone(),
            routes: vec![Some(route(a)), None, Some(route(b))],
        };
        assert_eq!(gapped.handoffs(), 0, "a gap separates the pair change");
        assert_eq!(gapped.reachable_slots(), 2);
        // The same pair change with no gap *is* a handoff.
        let adjacent = TimeExpandedRoutes {
            epochs: grid.clone(),
            routes: vec![Some(route(a)), Some(route(b)), None],
        };
        assert_eq!(adjacent.handoffs(), 1);
        // Same pair on both sides of a gap: still no handoff, and a
        // change after the re-acquisition counts once.
        let resumed = TimeExpandedRoutes {
            epochs: time_grid(Epoch::J2000, 4, 60.0),
            routes: vec![Some(route(a)), None, Some(route(a)), Some(route(b))],
        };
        assert_eq!(resumed.handoffs(), 1);
    }

    #[test]
    fn route_over_time_handoff_regression() {
        // Pinned counts for the reference NYC -> London walk: the
        // snapshot refactor must not change which slots are reachable or
        // how often the serving pair churns.
        let c = constellation(8, 25);
        let src = GeoPoint::from_degrees(40.7, -74.0);
        let dst = GeoPoint::from_degrees(51.5, -0.1);
        let series = SnapshotSeries::build(&c, &time_grid(Epoch::J2000, 20, 120.0)).unwrap();
        let routes =
            route_over_time(&series, src, dst, 20f64.to_radians(), Default::default()).unwrap();
        assert_eq!(routes.reachable_slots(), 20);
        assert_eq!(routes.handoffs(), 15);
    }
}
