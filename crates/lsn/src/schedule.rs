//! Precomputed, handoff-minimizing route schedules.
//!
//! §5(1): "Routing protocols must be capable of handling predictable gaps
//! and surges in connectivity, possibly by precomputing time-aware paths
//! and schedules." The plain per-slot shortest path re-optimizes every
//! slot and churns end-satellites; this module computes a schedule that
//! *sticks* to the current serving pair while it remains feasible within
//! a delay-stretch budget, switching only when forced — trading a bounded
//! amount of latency for far fewer handoffs. All position reads go
//! through one [`SnapshotSeries`] built up front for the whole planning
//! horizon.

use crate::error::{LsnError, Result};
use crate::routing::{route_ground_to_ground, serving_satellite, shortest_path, Route};
use crate::snapshot::{time_grid, Snapshot, SnapshotSeries};
use crate::topology::{Constellation, GridTopologyConfig, SatId, Topology};
use ssplane_astro::constants::EARTH_RADIUS_KM;
use ssplane_astro::coverage::elevation_at_central_angle;
use ssplane_astro::frames::ecef_to_eci;
use ssplane_astro::geo::GeoPoint;
use ssplane_astro::time::Epoch;

/// Scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleConfig {
    /// Number of time slots.
    pub n_slots: usize,
    /// Slot duration \[s\].
    pub slot_s: f64,
    /// Minimum terminal elevation \[rad\].
    pub min_elevation: f64,
    /// Maximum tolerated delay stretch vs the per-slot optimum before a
    /// handoff is forced (1.3 = stay on the current satellites while
    /// within 30% of optimal delay).
    pub max_stretch: f64,
    /// Topology construction parameters.
    pub topology: GridTopologyConfig,
}

impl Default for ScheduleConfig {
    fn default() -> Self {
        ScheduleConfig {
            n_slots: 12,
            slot_s: 60.0,
            min_elevation: 20f64.to_radians(),
            max_stretch: 1.3,
            topology: GridTopologyConfig::default(),
        }
    }
}

/// A precomputed schedule: a route per slot with sticky serving pairs.
#[derive(Debug, Clone)]
pub struct RouteSchedule {
    /// Slot epochs.
    pub epochs: Vec<Epoch>,
    /// Route per slot (`None` where unreachable).
    pub routes: Vec<Option<Route>>,
    /// Handoffs under the sticky policy.
    pub handoffs: usize,
    /// Handoffs the naive per-slot-optimal policy would have made.
    pub naive_handoffs: usize,
}

impl RouteSchedule {
    /// Mean delay over reachable slots \[ms\] (NaN if never reachable).
    pub fn mean_delay_ms(&self) -> f64 {
        let d: Vec<f64> = self.routes.iter().flatten().map(|r| r.delay_ms).collect();
        d.iter().sum::<f64>() / d.len() as f64
    }
}

/// Elevation \[rad\] of satellite `id` from `ground` at the snapshot's
/// epoch.
fn elevation_of(snapshot: &Snapshot<'_>, id: SatId, ground: GeoPoint) -> Result<f64> {
    let t = snapshot.epoch();
    let g_eci = ecef_to_eci(t, ground.to_unit_vector() * EARTH_RADIUS_KM);
    let r = snapshot.position(id)?;
    let central = g_eci.angle_to(r);
    Ok(elevation_at_central_angle(r.norm() - EARTH_RADIUS_KM, central.max(1e-9)))
}

/// Builds a route with the given serving pair (ISL shortest path between
/// them plus up/down links).
fn route_via(
    snapshot: &Snapshot<'_>,
    topology: &Topology,
    src: GeoPoint,
    dst: GeoPoint,
    s_sat: SatId,
    d_sat: SatId,
) -> Result<Route> {
    let (hops, isl_km) =
        if s_sat == d_sat { (vec![s_sat], 0.0) } else { shortest_path(topology, s_sat, d_sat)? };
    crate::routing::assemble_route(snapshot, src, dst, s_sat, d_sat, hops, isl_km)
}

/// Computes the sticky schedule for a ground pair.
///
/// # Errors
/// Propagates topology/propagation failure; per-slot unreachability is
/// recorded as `None`.
pub fn plan_schedule(
    constellation: &Constellation,
    src: GeoPoint,
    dst: GeoPoint,
    start: Epoch,
    config: ScheduleConfig,
) -> Result<RouteSchedule> {
    if config.max_stretch < 1.0 {
        return Err(LsnError::BadParameter { name: "max_stretch", constraint: ">= 1.0" });
    }
    if config.n_slots == 0 {
        return Ok(RouteSchedule {
            epochs: Vec::new(),
            routes: Vec::new(),
            handoffs: 0,
            naive_handoffs: 0,
        });
    }
    let series =
        SnapshotSeries::build(constellation, &time_grid(start, config.n_slots, config.slot_s))?;
    let mut routes: Vec<Option<Route>> = Vec::with_capacity(config.n_slots);
    let mut current: Option<(SatId, SatId)> = None;
    let mut naive_prev: Option<(SatId, SatId)> = None;
    let mut handoffs = 0usize;
    let mut naive_handoffs = 0usize;

    for snapshot in series.iter() {
        let topology = Topology::plus_grid(&snapshot, config.topology)?;

        // The per-slot optimum (for the stretch budget and the naive
        // handoff count).
        let optimal =
            match route_ground_to_ground(&snapshot, &topology, src, dst, config.min_elevation) {
                Ok(r) => r,
                Err(LsnError::NoRoute) => {
                    routes.push(None);
                    current = None;
                    continue;
                }
                Err(e) => return Err(e),
            };
        let optimal_ends = (
            *optimal.hops.first().expect("route has hops"),
            *optimal.hops.last().expect("route has hops"),
        );
        if let Some(p) = naive_prev {
            if p != optimal_ends {
                naive_handoffs += 1;
            }
        }
        naive_prev = Some(optimal_ends);

        // Try to stick with the current pair.
        let chosen = if let Some((s_sat, d_sat)) = current {
            let visible = elevation_of(&snapshot, s_sat, src)? >= config.min_elevation
                && elevation_of(&snapshot, d_sat, dst)? >= config.min_elevation;
            if visible {
                match route_via(&snapshot, &topology, src, dst, s_sat, d_sat) {
                    Ok(r) if r.delay_ms <= optimal.delay_ms * config.max_stretch => Some(r),
                    _ => None,
                }
            } else {
                None
            }
        } else {
            None
        };
        let route = match chosen {
            Some(r) => r,
            None => {
                if current.is_some() {
                    handoffs += 1;
                }
                optimal
            }
        };
        current = Some((
            *route.hops.first().expect("route has hops"),
            *route.hops.last().expect("route has hops"),
        ));
        routes.push(Some(route));
    }
    Ok(RouteSchedule { epochs: series.epochs().to_vec(), routes, handoffs, naive_handoffs })
}

/// Coverage-gap forecast for a terminal: which of the next `n_slots`
/// slots have no serving satellite — the "predictable gaps" the paper's
/// agenda asks routing to plan around.
///
/// # Errors
/// Propagates propagation failure.
pub fn coverage_forecast(
    constellation: &Constellation,
    ground: GeoPoint,
    start: Epoch,
    n_slots: usize,
    slot_s: f64,
    min_elevation: f64,
) -> Result<Vec<bool>> {
    if n_slots == 0 {
        return Ok(Vec::new());
    }
    let series = SnapshotSeries::build(constellation, &time_grid(start, n_slots, slot_s))?;
    Ok(series
        .iter()
        .map(|snapshot| serving_satellite(&snapshot, ground, min_elevation).is_some())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssplane_astro::kepler::OrbitalElements;
    use ssplane_astro::sunsync::sun_synchronous_orbit;

    fn constellation() -> Constellation {
        let epoch = Epoch::J2000;
        let orbit = sun_synchronous_orbit(560.0).unwrap();
        let planes: Vec<Vec<OrbitalElements>> = (0..10)
            .map(|p| orbit.with_ltan(p as f64 * 2.4).plane_elements(epoch, 24).unwrap())
            .collect();
        Constellation::new(epoch, planes).unwrap()
    }

    #[test]
    fn schedule_reduces_handoffs() {
        let c = constellation();
        let src = GeoPoint::from_degrees(40.7, -74.0);
        let dst = GeoPoint::from_degrees(48.8, 2.3);
        let schedule = plan_schedule(
            &c,
            src,
            dst,
            Epoch::J2000,
            ScheduleConfig { n_slots: 15, slot_s: 60.0, ..Default::default() },
        )
        .unwrap();
        assert_eq!(schedule.routes.len(), 15);
        // The sticky policy never does more handoffs than the naive one.
        assert!(
            schedule.handoffs <= schedule.naive_handoffs,
            "sticky {} vs naive {}",
            schedule.handoffs,
            schedule.naive_handoffs
        );
        if schedule.routes.iter().flatten().count() > 0 {
            assert!(schedule.mean_delay_ms() > 0.0);
        }
    }

    #[test]
    fn stretch_budget_respected() {
        let c = constellation();
        let src = GeoPoint::from_degrees(35.0, -90.0);
        let dst = GeoPoint::from_degrees(45.0, 10.0);
        let cfg =
            ScheduleConfig { n_slots: 10, slot_s: 90.0, max_stretch: 1.2, ..Default::default() };
        let schedule = plan_schedule(&c, src, dst, Epoch::J2000, cfg).unwrap();
        // Recompute optima and check every chosen route is within budget.
        let series =
            SnapshotSeries::build(&c, &time_grid(Epoch::J2000, cfg.n_slots, cfg.slot_s)).unwrap();
        for (k, route) in schedule.routes.iter().enumerate() {
            let Some(route) = route else { continue };
            let snap = series.snapshot(k);
            let topo = Topology::plus_grid(&snap, cfg.topology).unwrap();
            let opt = route_ground_to_ground(&snap, &topo, src, dst, cfg.min_elevation).unwrap();
            assert!(
                route.delay_ms <= opt.delay_ms * cfg.max_stretch + 1e-9,
                "slot {k}: {} vs opt {}",
                route.delay_ms,
                opt.delay_ms
            );
        }
    }

    #[test]
    fn invalid_stretch_rejected_and_zero_slots_empty() {
        let c = constellation();
        let g = GeoPoint::from_degrees(0.0, 0.0);
        let cfg = ScheduleConfig { max_stretch: 0.5, ..Default::default() };
        assert!(matches!(
            plan_schedule(&c, g, g, Epoch::J2000, cfg),
            Err(LsnError::BadParameter { .. })
        ));
        let empty = plan_schedule(
            &c,
            g,
            g,
            Epoch::J2000,
            ScheduleConfig { n_slots: 0, ..Default::default() },
        )
        .unwrap();
        assert!(empty.routes.is_empty());
        assert!(coverage_forecast(&c, g, Epoch::J2000, 0, 60.0, 0.3).unwrap().is_empty());
    }

    #[test]
    fn coverage_forecast_shape() {
        let c = constellation();
        let forecast = coverage_forecast(
            &c,
            GeoPoint::from_degrees(40.0, -74.0),
            Epoch::J2000,
            20,
            120.0,
            20f64.to_radians(),
        )
        .unwrap();
        assert_eq!(forecast.len(), 20);
        // A 240-satellite SS constellation serves a mid-latitude terminal
        // in at least some slots.
        assert!(forecast.iter().any(|&v| v));
    }
}
