//! The shared time-grid propagation cache.
//!
//! Every stage of the network pipeline needs satellite positions, and
//! before this module each stage recomputed them on demand: topology
//! construction propagated all N satellites per call, ground attachment
//! propagated all N per terminal per flow, and the time-expanded router
//! repeated both per slot. A [`SnapshotSeries`] batch-propagates the
//! whole constellation over an explicit time grid **once** — in
//! parallel across slots when asked — into flat structure-of-arrays
//! buffers, and every consumer ([`crate::topology::Topology::plus_grid`],
//! [`crate::routing`], [`crate::traffic`]) reads positions from a cheap
//! [`Snapshot`] view instead of re-propagating.
//!
//! Positions are produced by the same
//! [`ssplane_astro::propagate::J2Propagator::position_at`] math as the
//! per-call path (via [`ssplane_astro::propagate::batch_positions_soa`]),
//! so snapshot-fed results are bit-identical to the legacy
//! recompute-everywhere results — a property the parity suite in
//! `tests/proptests.rs` pins down.

use crate::error::{LsnError, Result};
use crate::topology::{Constellation, SatId};
use ssplane_astro::linalg::Vec3;
use ssplane_astro::propagate::batch_positions_soa;
use ssplane_astro::time::Epoch;
use std::sync::Mutex;

/// The epochs of a uniform time grid: `n_slots` slots spaced `slot_s`
/// seconds from `start`.
pub fn time_grid(start: Epoch, n_slots: usize, slot_s: f64) -> Vec<Epoch> {
    (0..n_slots).map(|k| start + k as f64 * slot_s).collect()
}

/// One slot's build job: its epoch and the disjoint SoA buffer chunks a
/// worker fills for it.
type SlotJob<'b> = (Epoch, &'b mut [f64], &'b mut [f64], &'b mut [f64]);

/// Batch-propagated positions of one constellation over a time grid.
///
/// Storage is slot-major SoA: coordinate `i` of slot `k` lives at index
/// `k * total_sats + i` of the `xs`/`ys`/`zs` buffers, where `i` is the
/// flat plane-major satellite index (the same order
/// [`Constellation::ids`] enumerates).
#[derive(Debug, Clone)]
pub struct SnapshotSeries {
    epochs: Vec<Epoch>,
    xs: Vec<f64>,
    ys: Vec<f64>,
    zs: Vec<f64>,
    plane_offsets: Vec<usize>,
    n_sats: usize,
}

impl SnapshotSeries {
    /// Builds the series sequentially.
    ///
    /// # Errors
    /// Rejects an empty epoch list; propagates propagation failure.
    pub fn build(constellation: &Constellation, epochs: &[Epoch]) -> Result<Self> {
        Self::build_parallel(constellation, epochs, 1)
    }

    /// Builds the series with `threads` workers (`0` = the machine's
    /// available parallelism), splitting the slot list across scoped
    /// threads. Each slot's buffer chunk is written by exactly one
    /// worker, so the result is identical for every thread count.
    ///
    /// # Errors
    /// Rejects an empty epoch list; propagates propagation failure.
    pub fn build_parallel(
        constellation: &Constellation,
        epochs: &[Epoch],
        threads: usize,
    ) -> Result<Self> {
        if epochs.is_empty() {
            return Err(LsnError::BadParameter { name: "epochs", constraint: "non-empty" });
        }
        let props = constellation.propagators();
        let n = props.len();
        let mut xs = vec![0.0; n * epochs.len()];
        let mut ys = vec![0.0; n * epochs.len()];
        let mut zs = vec![0.0; n * epochs.len()];

        let auto = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
        let workers = if threads == 0 { auto } else { threads }.clamp(1, epochs.len());
        if workers <= 1 {
            for (k, &t) in epochs.iter().enumerate() {
                batch_positions_soa(
                    &props,
                    t,
                    &mut xs[k * n..(k + 1) * n],
                    &mut ys[k * n..(k + 1) * n],
                    &mut zs[k * n..(k + 1) * n],
                )?;
            }
        } else {
            let mut jobs: Vec<SlotJob<'_>> = epochs
                .iter()
                .copied()
                .zip(xs.chunks_mut(n).zip(ys.chunks_mut(n).zip(zs.chunks_mut(n))))
                .map(|(t, (x, (y, z)))| (t, x, y, z))
                .collect();
            let per_worker = jobs.len().div_ceil(workers);
            let failure: Mutex<Option<LsnError>> = Mutex::new(None);
            std::thread::scope(|scope| {
                for group in jobs.chunks_mut(per_worker) {
                    scope.spawn(|| {
                        for (t, x, y, z) in group.iter_mut() {
                            if let Err(e) = batch_positions_soa(&props, *t, x, y, z) {
                                failure
                                    .lock()
                                    .expect("snapshot build lock poisoned")
                                    .get_or_insert(LsnError::from(e));
                                return;
                            }
                        }
                    });
                }
            });
            if let Some(e) = failure.into_inner().expect("snapshot build lock poisoned") {
                return Err(e);
            }
        }
        Ok(SnapshotSeries {
            epochs: epochs.to_vec(),
            xs,
            ys,
            zs,
            plane_offsets: constellation.plane_offsets(),
            n_sats: n,
        })
    }

    /// Number of time slots.
    pub fn len(&self) -> usize {
        self.epochs.len()
    }

    /// Whether the series has no slots (never true for a built series).
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }

    /// The slot epochs.
    pub fn epochs(&self) -> &[Epoch] {
        &self.epochs
    }

    /// Satellites per slot.
    pub fn n_sats(&self) -> usize {
        self.n_sats
    }

    /// The view of slot `k`.
    ///
    /// # Panics
    /// If `k` is out of range.
    pub fn snapshot(&self, k: usize) -> Snapshot<'_> {
        assert!(k < self.epochs.len(), "slot {k} out of range");
        Snapshot { series: self, slot: k, alive: None }
    }

    /// Iterates the slots in time order.
    pub fn iter(&self) -> impl Iterator<Item = Snapshot<'_>> {
        (0..self.epochs.len()).map(move |k| self.snapshot(k))
    }
}

/// One time slot of a [`SnapshotSeries`]: every consumer that used to
/// take `(constellation, t)` now takes one of these.
///
/// A snapshot can carry an **alive mask** ([`Snapshot::with_alive`]):
/// consumers that build the network — topology construction, ground
/// attachment, traffic assignment — then see only the surviving
/// satellites, which is how a
/// [`disruption`](crate::disruption) attack or outage timeline couples
/// into the network stage. Positions of dead satellites remain
/// addressable (the buffers are untouched); only network participation
/// is masked.
#[derive(Debug, Clone, Copy)]
pub struct Snapshot<'a> {
    series: &'a SnapshotSeries,
    slot: usize,
    /// One flag per satellite (flat order); `None` = everything alive.
    alive: Option<&'a [bool]>,
}

impl<'a> Snapshot<'a> {
    /// This view restricted to the satellites flagged `true` in `alive`
    /// (flat plane-major order, one flag per satellite).
    ///
    /// # Panics
    /// If `alive.len()` is not the satellite count.
    pub fn with_alive(self, alive: &'a [bool]) -> Snapshot<'a> {
        assert_eq!(alive.len(), self.series.n_sats, "alive mask length mismatch");
        Snapshot { alive: Some(alive), ..self }
    }
}

impl Snapshot<'_> {
    /// Whether the satellite at flat index `i` is in service (always
    /// `true` for an unmasked snapshot).
    pub fn is_alive_flat(&self, i: usize) -> bool {
        self.alive.is_none_or(|mask| mask[i])
    }

    /// Satellites in service at this slot.
    pub fn alive_count(&self) -> usize {
        match self.alive {
            None => self.series.n_sats,
            Some(mask) => mask.iter().filter(|&&a| a).count(),
        }
    }
    /// The slot's epoch.
    pub fn epoch(&self) -> Epoch {
        self.series.epochs[self.slot]
    }

    /// Number of planes.
    pub fn n_planes(&self) -> usize {
        self.series.plane_offsets.len() - 1
    }

    /// Slots in plane `p` (0 if out of range).
    pub fn slots_in_plane(&self, p: usize) -> usize {
        match (self.series.plane_offsets.get(p), self.series.plane_offsets.get(p + 1)) {
            (Some(&a), Some(&b)) => b - a,
            _ => 0,
        }
    }

    /// Total satellites.
    pub fn total_sats(&self) -> usize {
        self.series.n_sats
    }

    /// Start index per plane (with a trailing total) in the flat order.
    pub fn plane_offsets(&self) -> &[usize] {
        &self.series.plane_offsets
    }

    /// Flat plane-major index of a satellite id (`None` if out of range).
    pub fn flat_index(&self, id: SatId) -> Option<usize> {
        let start = *self.series.plane_offsets.get(id.plane)?;
        let end = *self.series.plane_offsets.get(id.plane + 1)?;
        let idx = start + id.slot;
        (idx < end).then_some(idx)
    }

    /// All satellite ids, plane-major (flat order).
    pub fn ids(&self) -> impl Iterator<Item = SatId> + '_ {
        (0..self.n_planes()).flat_map(move |p| {
            (0..self.slots_in_plane(p)).map(move |s| SatId { plane: p, slot: s })
        })
    }

    /// ECI position \[km\] of the satellite at flat index `i`.
    ///
    /// # Panics
    /// If `i` is out of range.
    pub fn position_flat(&self, i: usize) -> Vec3 {
        let base = self.slot * self.series.n_sats;
        Vec3::new(self.series.xs[base + i], self.series.ys[base + i], self.series.zs[base + i])
    }

    /// ECI position \[km\] of a satellite.
    ///
    /// # Errors
    /// [`LsnError::UnknownNode`] for out-of-range ids.
    pub fn position(&self, id: SatId) -> Result<Vec3> {
        self.flat_index(id)
            .map(|i| self.position_flat(i))
            .ok_or(LsnError::UnknownNode { plane: id.plane, slot: id.slot })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssplane_astro::kepler::OrbitalElements;
    use ssplane_astro::sunsync::sun_synchronous_orbit;

    fn constellation(planes: usize, slots: usize) -> Constellation {
        let epoch = Epoch::J2000;
        let orbit = sun_synchronous_orbit(560.0).unwrap();
        let element_planes: Vec<Vec<OrbitalElements>> = (0..planes)
            .map(|p| orbit.with_ltan(7.0 + p as f64 * 1.1).plane_elements(epoch, slots).unwrap())
            .collect();
        Constellation::new(epoch, element_planes).unwrap()
    }

    #[test]
    fn positions_bit_identical_to_per_call_propagation() {
        let c = constellation(4, 9);
        let epochs = time_grid(Epoch::J2000, 5, 137.0);
        let series = SnapshotSeries::build(&c, &epochs).unwrap();
        assert_eq!(series.len(), 5);
        assert_eq!(series.n_sats(), 36);
        for (k, snap) in series.iter().enumerate() {
            assert_eq!(snap.epoch(), epochs[k]);
            for id in c.ids() {
                let expected = c.position(id, epochs[k]).unwrap();
                let got = snap.position(id).unwrap();
                assert_eq!((got.x, got.y, got.z), (expected.x, expected.y, expected.z));
            }
        }
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let c = constellation(3, 11);
        let epochs = time_grid(Epoch::J2000 + 60.0, 9, 73.0);
        let seq = SnapshotSeries::build(&c, &epochs).unwrap();
        for threads in [0, 2, 3, 16] {
            let par = SnapshotSeries::build_parallel(&c, &epochs, threads).unwrap();
            assert_eq!(par.xs, seq.xs, "{threads} threads");
            assert_eq!(par.ys, seq.ys, "{threads} threads");
            assert_eq!(par.zs, seq.zs, "{threads} threads");
        }
    }

    #[test]
    fn snapshot_accessors_and_bounds() {
        let c = constellation(2, 6);
        let series = SnapshotSeries::build(&c, &[Epoch::J2000]).unwrap();
        let snap = series.snapshot(0);
        assert_eq!(snap.n_planes(), 2);
        assert_eq!(snap.slots_in_plane(1), 6);
        assert_eq!(snap.slots_in_plane(5), 0);
        assert_eq!(snap.total_sats(), 12);
        assert_eq!(snap.ids().count(), 12);
        assert_eq!(snap.flat_index(SatId { plane: 1, slot: 2 }), Some(8));
        assert!(snap.flat_index(SatId { plane: 1, slot: 9 }).is_none());
        assert!(snap.position(SatId { plane: 3, slot: 0 }).is_err());
        assert!(!series.is_empty());
    }

    #[test]
    fn alive_mask_view() {
        let c = constellation(2, 5);
        let series = SnapshotSeries::build(&c, &[Epoch::J2000]).unwrap();
        let snap = series.snapshot(0);
        assert_eq!(snap.alive_count(), 10);
        assert!(snap.is_alive_flat(3));
        let mut mask = vec![true; 10];
        mask[3] = false;
        mask[7] = false;
        let masked = snap.with_alive(&mask);
        assert_eq!(masked.alive_count(), 8);
        assert!(!masked.is_alive_flat(3));
        assert!(masked.is_alive_flat(4));
        // Positions stay addressable for dead satellites.
        assert_eq!(
            masked.position(SatId { plane: 0, slot: 3 }).unwrap().x,
            snap.position(SatId { plane: 0, slot: 3 }).unwrap().x
        );
    }

    #[test]
    #[should_panic(expected = "alive mask length mismatch")]
    fn alive_mask_length_checked() {
        let c = constellation(1, 4);
        let series = SnapshotSeries::build(&c, &[Epoch::J2000]).unwrap();
        let _ = series.snapshot(0).with_alive(&[true, false]);
    }

    #[test]
    fn empty_grid_rejected() {
        let c = constellation(1, 4);
        assert!(matches!(
            SnapshotSeries::build(&c, &[]),
            Err(LsnError::BadParameter { name: "epochs", .. })
        ));
    }

    #[test]
    fn time_grid_spacing() {
        let grid = time_grid(Epoch::J2000, 4, 30.0);
        assert_eq!(grid.len(), 4);
        assert_eq!(grid[0], Epoch::J2000);
        assert!((grid[3] - Epoch::J2000 - 90.0).abs() < 1e-12);
    }
}
