//! Spare-satellite provisioning policies.
//!
//! §2.1: deployed LSNs keep "2–10 spares per orbital plane" to hot-swap
//! failures. §5(2) argues that lower-radiation constellations can adopt
//! lighter-weight redundancy. This module models the two canonical
//! policies and computes the spare count needed to sustain a target
//! availability given a failure rate and a replenishment cadence.

use crate::error::{LsnError, Result};

/// A spare provisioning policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SparePolicy {
    /// `k` hot spares parked in every orbital plane; replacement is fast
    /// (in-plane phasing only).
    PerPlane {
        /// Spares per plane.
        spares_per_plane: usize,
        /// Time to phase a spare into a failed slot \[days\].
        replacement_days: f64,
    },
    /// One shared pool (e.g. a parking orbit + launch-on-demand);
    /// replacement is slow (plane change or new launch).
    SharedPool {
        /// Total spares in the pool.
        pool_size: usize,
        /// Time to deliver a replacement \[days\].
        replacement_days: f64,
    },
}

impl SparePolicy {
    /// Total spare satellites carried by a constellation with `planes`
    /// planes.
    pub fn total_spares(&self, planes: usize) -> usize {
        match *self {
            SparePolicy::PerPlane { spares_per_plane, .. } => spares_per_plane * planes,
            SparePolicy::SharedPool { pool_size, .. } => pool_size,
        }
    }

    /// Replacement latency \[days\].
    pub fn replacement_days(&self) -> f64 {
        match *self {
            SparePolicy::PerPlane { replacement_days, .. }
            | SparePolicy::SharedPool { replacement_days, .. } => replacement_days,
        }
    }
}

/// The live spare inventory of a [`SparePolicy`] during a simulation.
///
/// Replaces the sentinel arithmetic (`isize::MAX` shared-pool marker,
/// `1e18`-clamped per-plane floats) the survivability engine used to
/// carry: each policy's accounting is its own variant, so per-plane and
/// shared-pool draws can't be silently confused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpareBudget {
    /// Per-plane hot spares: one independent counter per plane.
    PerPlane {
        /// The policy's parked budget per plane (the resupply target).
        budget: usize,
        /// Spares currently parked in each plane.
        remaining: Vec<usize>,
    },
    /// One common pool drawn by every plane.
    SharedPool {
        /// The policy's pool size (the resupply target).
        pool_size: usize,
        /// Spares currently in the pool.
        remaining: usize,
    },
}

impl SpareBudget {
    /// The starting inventory of `policy` over `planes` planes.
    pub fn new(policy: &SparePolicy, planes: usize) -> Self {
        match *policy {
            SparePolicy::PerPlane { spares_per_plane, .. } => SpareBudget::PerPlane {
                budget: spares_per_plane,
                remaining: vec![spares_per_plane; planes],
            },
            SparePolicy::SharedPool { pool_size, .. } => {
                SpareBudget::SharedPool { pool_size, remaining: pool_size }
            }
        }
    }

    /// Draws one spare for a failure in `plane`; `false` if the relevant
    /// inventory is exhausted.
    pub fn draw(&mut self, plane: usize) -> bool {
        match self {
            SpareBudget::PerPlane { remaining, .. } => {
                if remaining[plane] > 0 {
                    remaining[plane] -= 1;
                    true
                } else {
                    false
                }
            }
            SpareBudget::SharedPool { remaining, .. } => {
                if *remaining > 0 {
                    *remaining -= 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// A resupply epoch triggered by an exhausted `plane`: tops the
    /// relevant inventory back up to the policy's budget (the delivered
    /// replacement for the waiting slot arrives alongside and is not
    /// drawn from the inventory).
    pub fn resupply(&mut self, plane: usize) {
        match self {
            SpareBudget::PerPlane { budget, remaining } => remaining[plane] = *budget,
            SpareBudget::SharedPool { pool_size, remaining } => *remaining = *pool_size,
        }
    }
}

/// Expected failures per plane per resupply period, for sizing spares:
/// with `sats_per_plane` satellites of annual hazard `hazard_per_year`
/// and resupply every `resupply_days`.
pub fn expected_failures_per_plane(
    sats_per_plane: usize,
    hazard_per_year: f64,
    resupply_days: f64,
) -> f64 {
    sats_per_plane as f64 * hazard_per_year * resupply_days / 365.25
}

/// Spares per plane needed so that the probability of exhausting the
/// plane's spares within one resupply period is below `exhaustion_prob`,
/// modeling failures as Poisson. Returns the smallest `k` with
/// `P[N > k] < exhaustion_prob`.
///
/// # Errors
/// Rejects non-positive rates or probabilities outside (0, 1).
pub fn spares_for_availability(expected_failures: f64, exhaustion_prob: f64) -> Result<usize> {
    if expected_failures.is_nan() || expected_failures < 0.0 {
        return Err(LsnError::BadParameter { name: "expected_failures", constraint: ">= 0" });
    }
    if !(0.0 < exhaustion_prob && exhaustion_prob < 1.0) {
        return Err(LsnError::BadParameter { name: "exhaustion_prob", constraint: "in (0, 1)" });
    }
    // Poisson tail: walk the CDF.
    let lambda = expected_failures;
    let mut pmf = (-lambda).exp();
    let mut cdf = pmf;
    let mut k = 0usize;
    while 1.0 - cdf >= exhaustion_prob {
        k += 1;
        pmf *= lambda / k as f64;
        cdf += pmf;
        if k > 100_000 {
            return Err(LsnError::BadParameter {
                name: "expected_failures",
                constraint: "finite (Poisson tail did not converge)",
            });
        }
    }
    Ok(k)
}

/// Fractional capacity availability of a constellation under a policy:
/// the steady-state expected fraction of slots occupied by a working
/// satellite, approximating each failed slot as vacant for the policy's
/// replacement latency (M/G/∞-style):
/// `availability = 1 − hazard·latency` (clamped), degraded further if the
/// spare pool is undersized for the observed failure rate.
pub fn steady_state_availability(
    hazard_per_year: f64,
    policy: &SparePolicy,
    planes: usize,
    sats_per_plane: usize,
    resupply_days: f64,
) -> f64 {
    let latency_years = policy.replacement_days() / 365.25;
    let vacancy = (hazard_per_year * latency_years).min(1.0);
    // Pool exhaustion: expected failures fleet-wide per resupply period vs
    // total spares.
    let expected =
        expected_failures_per_plane(sats_per_plane, hazard_per_year, resupply_days) * planes as f64;
    let spares = policy.total_spares(planes) as f64;
    let coverage = if expected <= 0.0 { 1.0 } else { (spares / expected).min(1.0) };
    // Failures beyond the spare budget stay vacant until resupply (about
    // half a resupply period on average).
    let uncovered = (1.0 - coverage) * (hazard_per_year * resupply_days / 365.25 / 2.0).min(1.0);
    (1.0 - vacancy - uncovered).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_latency() {
        let per_plane = SparePolicy::PerPlane { spares_per_plane: 3, replacement_days: 2.0 };
        assert_eq!(per_plane.total_spares(20), 60);
        assert_eq!(per_plane.replacement_days(), 2.0);
        let pool = SparePolicy::SharedPool { pool_size: 25, replacement_days: 30.0 };
        assert_eq!(pool.total_spares(20), 25);
        assert_eq!(pool.replacement_days(), 30.0);
    }

    #[test]
    fn poisson_spares_reference_values() {
        // λ = 0 needs no spares at any confidence.
        assert_eq!(spares_for_availability(0.0, 0.01).unwrap(), 0);
        // λ = 1: P[N>2] ≈ 0.080, P[N>3] ≈ 0.019, P[N>4] ≈ 0.0037.
        assert_eq!(spares_for_availability(1.0, 0.05).unwrap(), 3);
        assert_eq!(spares_for_availability(1.0, 0.01).unwrap(), 4);
        // Higher failure rates need more spares.
        let lo = spares_for_availability(0.5, 0.01).unwrap();
        let hi = spares_for_availability(5.0, 0.01).unwrap();
        assert!(hi > lo);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(spares_for_availability(f64::NAN, 0.01).is_err());
        assert!(spares_for_availability(1.0, 0.0).is_err());
        assert!(spares_for_availability(1.0, 1.0).is_err());
    }

    #[test]
    fn expected_failures_scaling() {
        let base = expected_failures_per_plane(20, 0.05, 180.0);
        assert!((base - 20.0 * 0.05 * 180.0 / 365.25).abs() < 1e-12);
        assert!(expected_failures_per_plane(40, 0.05, 180.0) > base);
        assert!(expected_failures_per_plane(20, 0.10, 180.0) > base);
    }

    #[test]
    fn availability_improves_with_spares_and_lower_hazard() {
        let fast = SparePolicy::PerPlane { spares_per_plane: 4, replacement_days: 3.0 };
        let none = SparePolicy::PerPlane { spares_per_plane: 0, replacement_days: 3.0 };
        let a_spared = steady_state_availability(0.08, &fast, 20, 25, 180.0);
        let a_bare = steady_state_availability(0.08, &none, 20, 25, 180.0);
        assert!(a_spared > a_bare);
        // Lower hazard (the SS constellation) → higher availability under
        // the same policy.
        let a_low = steady_state_availability(0.04, &fast, 20, 25, 180.0);
        assert!(a_low > a_spared);
        assert!((0.0..=1.0).contains(&a_spared));
    }

    #[test]
    fn per_plane_budget_draws_independently_and_resupplies_one_plane() {
        let policy = SparePolicy::PerPlane { spares_per_plane: 2, replacement_days: 3.0 };
        let mut budget = SpareBudget::new(&policy, 3);
        assert!(budget.draw(0));
        assert!(budget.draw(0));
        assert!(!budget.draw(0), "plane 0 exhausted");
        assert!(budget.draw(1), "plane 1 untouched by plane 0's draws");
        budget.resupply(0);
        assert!(budget.draw(0) && budget.draw(0) && !budget.draw(0), "topped back to 2");
        // Resupplying plane 0 must not touch plane 1's count.
        assert!(budget.draw(1));
        assert!(!budget.draw(1));
    }

    #[test]
    fn shared_pool_resupply_tops_the_pool_back_up() {
        // The regression the survivability bugfix pins: a resupply epoch
        // restores the *whole* pool, not a single spare.
        let policy = SparePolicy::SharedPool { pool_size: 3, replacement_days: 20.0 };
        let mut budget = SpareBudget::new(&policy, 5);
        for _ in 0..3 {
            assert!(budget.draw(4));
        }
        assert!(!budget.draw(0), "pool exhausted");
        budget.resupply(0);
        for k in 0..3 {
            assert!(budget.draw(k), "draw {k} after a full top-up");
        }
        assert!(!budget.draw(0), "exactly pool_size spares delivered");
    }

    #[test]
    fn per_plane_beats_pool_on_latency() {
        let per_plane = SparePolicy::PerPlane { spares_per_plane: 2, replacement_days: 2.0 };
        let pool = SparePolicy::SharedPool { pool_size: 40, replacement_days: 45.0 };
        let a_plane = steady_state_availability(0.08, &per_plane, 20, 25, 180.0);
        let a_pool = steady_state_availability(0.08, &pool, 20, 25, 180.0);
        assert!(a_plane > a_pool, "{a_plane} vs {a_pool}");
    }
}
