//! Discrete-event survivability simulation.
//!
//! Ties the failure model and spare policies together over mission time:
//! satellites fail according to their radiation-driven hazard, spares
//! phase in after the policy's latency, exhausted planes wait for
//! resupply. The output quantifies the paper's §5(2) claim — a
//! lower-radiation (SS) constellation sustains the same availability with
//! fewer spares.

use crate::error::Result;
use crate::failures::FailureModel;
use crate::spares::SparePolicy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssplane_radiation::fluence::DailyFluence;

/// Simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurvivabilityConfig {
    /// Mission horizon \[years\].
    pub horizon_years: f64,
    /// Resupply cadence \[days\]: planes receive fresh spares (topping the
    /// policy's budget back up) every interval.
    pub resupply_days: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SurvivabilityConfig {
    fn default() -> Self {
        SurvivabilityConfig { horizon_years: 5.0, resupply_days: 180.0, seed: 42 }
    }
}

/// Result of a survivability run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurvivabilityReport {
    /// Time-averaged fraction of slots occupied by a working satellite.
    pub availability: f64,
    /// Total failures over the horizon.
    pub failures: usize,
    /// Total replacements performed.
    pub replacements: usize,
    /// Slot-days lost to vacancies.
    pub lost_slot_days: f64,
    /// Spares consumed (counting resupplies).
    pub spares_consumed: usize,
}

/// Event-driven simulation of one constellation.
///
/// `plane_doses[p]` is the representative daily fluence of plane `p`;
/// `sats_per_plane` its slot count. Failed slots consume a spare (if the
/// plane's budget has one) and return to service after the policy's
/// replacement latency; otherwise they stay vacant until the next
/// resupply epoch.
///
/// # Errors
/// Rejects empty constellations, non-positive horizons, and degenerate
/// failure models.
pub fn simulate(
    plane_doses: &[DailyFluence],
    sats_per_plane: usize,
    failure_model: &FailureModel,
    policy: &SparePolicy,
    config: SurvivabilityConfig,
) -> Result<SurvivabilityReport> {
    if plane_doses.is_empty() || sats_per_plane == 0 {
        return Err(crate::error::LsnError::BadParameter {
            name: "constellation",
            constraint: "at least one plane and one satellite per plane",
        });
    }
    if config.horizon_years.is_nan() || config.horizon_years <= 0.0 {
        return Err(crate::error::LsnError::BadParameter {
            name: "horizon_years",
            constraint: "> 0",
        });
    }
    // Validate the model once up front (sample_fleet checks coefficients).
    failure_model.sample_fleet(&plane_doses[..1.min(plane_doses.len())], config.seed)?;

    let planes = plane_doses.len();
    let horizon_days = config.horizon_years * 365.25;
    let replacement_days = policy.replacement_days();
    let per_plane_budget = match *policy {
        SparePolicy::PerPlane { spares_per_plane, .. } => spares_per_plane as f64,
        // Shared pool: express as an average per-plane budget; draws are
        // made from the common pool below.
        SparePolicy::SharedPool { .. } => f64::INFINITY,
    };
    let mut shared_pool = match *policy {
        SparePolicy::SharedPool { pool_size, .. } => pool_size as isize,
        SparePolicy::PerPlane { .. } => isize::MAX,
    };

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut failures = 0usize;
    let mut replacements = 0usize;
    let mut lost_slot_days = 0.0f64;
    let mut spares_consumed = 0usize;

    let mut plane_spares: Vec<f64> = vec![per_plane_budget.min(1e18); planes];

    for (p, dose) in plane_doses.iter().enumerate() {
        let hazard_per_day = failure_model.hazard_per_year(*dose) / 365.25;
        for _slot in 0..sats_per_plane {
            // Renewal process for this slot across the horizon.
            let mut t = 0.0f64;
            loop {
                let u: f64 = rng.gen::<f64>().max(1e-300);
                let life_days = -u.ln() / hazard_per_day;
                t += life_days;
                if t >= horizon_days {
                    break;
                }
                failures += 1;
                // Draw a spare.
                let have_spare = if shared_pool == isize::MAX {
                    if plane_spares[p] >= 1.0 {
                        plane_spares[p] -= 1.0;
                        true
                    } else {
                        false
                    }
                } else if shared_pool > 0 {
                    shared_pool -= 1;
                    true
                } else {
                    false
                };
                let vacancy_days = if have_spare {
                    spares_consumed += 1;
                    replacements += 1;
                    replacement_days
                } else {
                    // Wait for the next resupply epoch, then replace.
                    let next_resupply = (t / config.resupply_days).ceil() * config.resupply_days;
                    // Resupply also tops the plane's budget back up.
                    plane_spares[p] = per_plane_budget.min(1e18);
                    if shared_pool != isize::MAX {
                        shared_pool += 1; // one delivered for this slot
                    }
                    replacements += 1;
                    spares_consumed += 1;
                    (next_resupply - t) + replacement_days
                };
                let vacancy_days = vacancy_days.min(horizon_days - t);
                lost_slot_days += vacancy_days;
                t += vacancy_days;
            }
        }
    }

    let slot_days = planes as f64 * sats_per_plane as f64 * horizon_days;
    Ok(SurvivabilityReport {
        availability: 1.0 - lost_slot_days / slot_days,
        failures,
        replacements,
        lost_slot_days,
        spares_consumed,
    })
}

/// Convenience comparison: same policy and model, two constellations'
/// plane doses (e.g. SS vs WD). Returns `(ss_report, wd_report)`.
///
/// # Errors
/// Propagates [`simulate`] failure.
pub fn compare(
    ss_plane_doses: &[DailyFluence],
    wd_plane_doses: &[DailyFluence],
    sats_per_plane: usize,
    failure_model: &FailureModel,
    policy: &SparePolicy,
    config: SurvivabilityConfig,
) -> Result<(SurvivabilityReport, SurvivabilityReport)> {
    Ok((
        simulate(ss_plane_doses, sats_per_plane, failure_model, policy, config)?,
        simulate(wd_plane_doses, sats_per_plane, failure_model, policy, config)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dose(e: f64, p: f64) -> DailyFluence {
        DailyFluence { electron: e, proton: p }
    }

    fn policy() -> SparePolicy {
        SparePolicy::PerPlane { spares_per_plane: 3, replacement_days: 3.0 }
    }

    #[test]
    fn basic_run_properties() {
        let doses = vec![dose(3e10, 2e7); 10];
        let report = simulate(
            &doses,
            20,
            &FailureModel::default(),
            &policy(),
            SurvivabilityConfig::default(),
        )
        .unwrap();
        assert!((0.0..=1.0).contains(&report.availability));
        assert!(report.availability > 0.95, "availability {}", report.availability);
        assert!(report.failures > 0);
        assert_eq!(report.replacements, report.failures);
        assert!(report.spares_consumed >= report.replacements);
    }

    #[test]
    fn deterministic_given_seed() {
        let doses = vec![dose(3e10, 2e7); 6];
        let cfg = SurvivabilityConfig::default();
        let a = simulate(&doses, 15, &FailureModel::default(), &policy(), cfg).unwrap();
        let b = simulate(&doses, 15, &FailureModel::default(), &policy(), cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn lower_dose_fewer_failures_higher_availability() {
        let hot = vec![dose(4.2e10, 2.4e7); 12];
        let cool = vec![dose(2.0e10, 1.2e7); 12];
        let (cool_rep, hot_rep) = compare(
            &cool,
            &hot,
            20,
            &FailureModel::default(),
            &policy(),
            SurvivabilityConfig { horizon_years: 8.0, ..Default::default() },
        )
        .unwrap();
        assert!(cool_rep.failures < hot_rep.failures);
        assert!(cool_rep.availability >= hot_rep.availability);
        assert!(cool_rep.spares_consumed < hot_rep.spares_consumed);
    }

    #[test]
    fn zero_spares_hurts_availability() {
        let doses = vec![dose(4e10, 2.5e7); 8];
        let none = SparePolicy::PerPlane { spares_per_plane: 0, replacement_days: 3.0 };
        let cfg = SurvivabilityConfig { horizon_years: 6.0, ..Default::default() };
        let bare = simulate(&doses, 20, &FailureModel::default(), &none, cfg).unwrap();
        let spared = simulate(&doses, 20, &FailureModel::default(), &policy(), cfg).unwrap();
        assert!(spared.availability > bare.availability);
        assert!(bare.lost_slot_days > spared.lost_slot_days);
    }

    #[test]
    fn shared_pool_runs() {
        let doses = vec![dose(3e10, 2e7); 10];
        let pool = SparePolicy::SharedPool { pool_size: 30, replacement_days: 20.0 };
        let report =
            simulate(&doses, 20, &FailureModel::default(), &pool, SurvivabilityConfig::default())
                .unwrap();
        assert!((0.0..=1.0).contains(&report.availability));
        // Slow pool replacement costs more than fast in-plane spares.
        let fast = simulate(
            &doses,
            20,
            &FailureModel::default(),
            &policy(),
            SurvivabilityConfig::default(),
        )
        .unwrap();
        assert!(fast.availability >= report.availability);
    }

    #[test]
    fn bad_inputs_rejected() {
        let doses = vec![dose(1e10, 1e7)];
        assert!(simulate(&[], 5, &FailureModel::default(), &policy(), Default::default()).is_err());
        assert!(
            simulate(&doses, 0, &FailureModel::default(), &policy(), Default::default()).is_err()
        );
        assert!(simulate(
            &doses,
            5,
            &FailureModel::default(),
            &policy(),
            SurvivabilityConfig { horizon_years: 0.0, ..Default::default() }
        )
        .is_err());
    }
}
