//! Discrete-event survivability simulation.
//!
//! Ties a [`FailureProcess`] and the spare policies together over mission
//! time: satellites fail according to the process's lifetime law, spares
//! phase in after the policy's latency, exhausted planes wait for
//! resupply. One engine — [`outage_timeline`] — records the resulting
//! per-satellite `[start, end)` outage intervals; the scalar
//! [`simulate`] wrapper (the paper's §5(2) claim quantified: a
//! lower-radiation SS constellation sustains the same availability with
//! fewer spares) derives its report from the same intervals, so a
//! timeline and a scalar report built from identical arguments describe
//! the same realization. (Callers may still run them as independent
//! draws — the scenario engine deliberately seeds its degraded-network
//! timeline separately from its aggregate survivability report.)

use crate::disruption::{FailureProcess, OutageInterval, OutageTimeline, RadiationExponential};
use crate::error::Result;
use crate::failures::FailureModel;
use crate::spares::{SpareBudget, SparePolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ssplane_radiation::fluence::DailyFluence;

/// Simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurvivabilityConfig {
    /// Mission horizon \[years\].
    pub horizon_years: f64,
    /// Resupply cadence \[days\]: planes receive fresh spares (topping the
    /// policy's budget back up) every interval.
    pub resupply_days: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SurvivabilityConfig {
    fn default() -> Self {
        SurvivabilityConfig { horizon_years: 5.0, resupply_days: 180.0, seed: 42 }
    }
}

/// Result of a survivability run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurvivabilityReport {
    /// Time-averaged fraction of slots occupied by a working satellite.
    pub availability: f64,
    /// Total failures over the horizon.
    pub failures: usize,
    /// Total replacements performed.
    pub replacements: usize,
    /// Slot-days lost to vacancies.
    pub lost_slot_days: f64,
    /// Spares consumed (counting resupplies).
    pub spares_consumed: usize,
}

/// The renewal engine: runs `process` over every slot of every plane and
/// records the outage intervals instead of only their sum.
///
/// `plane_doses[p]` is the representative daily fluence of plane `p`,
/// `plane_sats[p]` its slot count. A failed slot consumes a spare from
/// the policy's [`SpareBudget`] (if one remains) and returns to service
/// after the replacement latency; otherwise it stays vacant until the
/// next resupply epoch, which tops the exhausted inventory back up to
/// the policy's budget. Slots flagged in `dead` (flat plane-major — an
/// attack's victims) are out for the whole horizon: they draw no
/// lifetimes and consume no spares, exactly as destroyed capacity is
/// excluded from the scalar report.
///
/// Deterministic in `config.seed`: slots are processed in flat
/// plane-major order, each failure drawing from one shared stream.
///
/// # Errors
/// Rejects empty constellations, mismatched `plane_doses`/`plane_sats`
/// lengths, non-positive horizons, and degenerate failure processes.
pub fn outage_timeline(
    plane_doses: &[DailyFluence],
    plane_sats: &[usize],
    dead: Option<&[bool]>,
    process: &dyn FailureProcess,
    policy: &SparePolicy,
    config: SurvivabilityConfig,
) -> Result<OutageTimeline> {
    let total: usize = plane_sats.iter().sum();
    if plane_doses.is_empty() || plane_doses.len() != plane_sats.len() || total == 0 {
        return Err(crate::error::LsnError::BadParameter {
            name: "constellation",
            constraint: "at least one plane and one satellite per plane",
        });
    }
    if config.horizon_years.is_nan() || config.horizon_years <= 0.0 {
        return Err(crate::error::LsnError::BadParameter {
            name: "horizon_years",
            constraint: "> 0",
        });
    }
    if let Some(d) = dead {
        if d.len() != total {
            return Err(crate::error::LsnError::BadParameter {
                name: "dead",
                constraint: "one flag per satellite slot",
            });
        }
    }
    process.validate()?;

    let planes = plane_doses.len();
    let horizon_days = config.horizon_years * 365.25;
    let replacement_days = policy.replacement_days();
    let mut budget = SpareBudget::new(policy, planes);

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut failures = 0usize;
    let mut replacements = 0usize;
    let mut spares_consumed = 0usize;
    let mut vacancy_slot_days = 0.0f64;
    let mut destroyed_slots = 0usize;

    let mut plane_offsets = Vec::with_capacity(planes + 1);
    let mut outages: Vec<Vec<OutageInterval>> = Vec::with_capacity(total);

    for (p, dose) in plane_doses.iter().enumerate() {
        plane_offsets.push(outages.len());
        for _slot in 0..plane_sats[p] {
            if dead.is_some_and(|d| d[outages.len()]) {
                // Destroyed before the mission: one wall-to-wall outage,
                // no lifetime draws, no spare consumption.
                destroyed_slots += 1;
                outages.push(vec![OutageInterval { start_day: 0.0, end_day: horizon_days }]);
                continue;
            }
            // Renewal process for this slot across the horizon.
            let mut slot_outages = Vec::new();
            let mut t = 0.0f64;
            loop {
                t += process.sample_lifetime_days(*dose, &mut rng);
                if t >= horizon_days {
                    break;
                }
                failures += 1;
                let vacancy_days = if budget.draw(p) {
                    spares_consumed += 1;
                    replacements += 1;
                    replacement_days
                } else {
                    // Wait for the next resupply epoch, which tops the
                    // exhausted inventory back up; the waiting slot's
                    // replacement is delivered alongside.
                    let next_resupply = (t / config.resupply_days).ceil() * config.resupply_days;
                    budget.resupply(p);
                    replacements += 1;
                    spares_consumed += 1;
                    (next_resupply - t) + replacement_days
                };
                let vacancy_days = vacancy_days.min(horizon_days - t);
                vacancy_slot_days += vacancy_days;
                slot_outages.push(OutageInterval { start_day: t, end_day: t + vacancy_days });
                t += vacancy_days;
            }
            outages.push(slot_outages);
        }
    }
    plane_offsets.push(outages.len());

    Ok(OutageTimeline {
        horizon_days,
        plane_offsets,
        outages,
        failures,
        replacements,
        spares_consumed,
        vacancy_slot_days,
        destroyed_slots,
    })
}

/// Event-driven simulation of one constellation under an arbitrary
/// [`FailureProcess`]: the [`outage_timeline`] engine reduced to the
/// scalar report.
///
/// # Errors
/// As [`outage_timeline`].
pub fn simulate_process(
    plane_doses: &[DailyFluence],
    sats_per_plane: usize,
    process: &dyn FailureProcess,
    policy: &SparePolicy,
    config: SurvivabilityConfig,
) -> Result<SurvivabilityReport> {
    let plane_sats = vec![sats_per_plane; plane_doses.len()];
    let timeline = outage_timeline(plane_doses, &plane_sats, None, process, policy, config)?;
    let lost_slot_days = timeline.lost_slot_days();
    let slot_days =
        plane_doses.len() as f64 * sats_per_plane as f64 * (config.horizon_years * 365.25);
    Ok(SurvivabilityReport {
        availability: 1.0 - lost_slot_days / slot_days,
        failures: timeline.failures,
        replacements: timeline.replacements,
        lost_slot_days,
        spares_consumed: timeline.spares_consumed,
    })
}

/// Event-driven simulation under the historical radiation-driven
/// exponential process (`plane_doses[p]` is the representative daily
/// fluence of plane `p`; `sats_per_plane` its slot count) — a
/// [`simulate_process`] shorthand, bit-identical to the pre-timeline
/// closed loop.
///
/// # Errors
/// Rejects empty constellations, non-positive horizons, and degenerate
/// failure models.
pub fn simulate(
    plane_doses: &[DailyFluence],
    sats_per_plane: usize,
    failure_model: &FailureModel,
    policy: &SparePolicy,
    config: SurvivabilityConfig,
) -> Result<SurvivabilityReport> {
    simulate_process(
        plane_doses,
        sats_per_plane,
        &RadiationExponential { model: *failure_model },
        policy,
        config,
    )
}

/// Convenience comparison: same policy and model, two constellations'
/// plane doses (e.g. SS vs WD). Returns `(ss_report, wd_report)`.
///
/// # Errors
/// Propagates [`simulate`] failure.
pub fn compare(
    ss_plane_doses: &[DailyFluence],
    wd_plane_doses: &[DailyFluence],
    sats_per_plane: usize,
    failure_model: &FailureModel,
    policy: &SparePolicy,
    config: SurvivabilityConfig,
) -> Result<(SurvivabilityReport, SurvivabilityReport)> {
    Ok((
        simulate(ss_plane_doses, sats_per_plane, failure_model, policy, config)?,
        simulate(wd_plane_doses, sats_per_plane, failure_model, policy, config)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dose(e: f64, p: f64) -> DailyFluence {
        DailyFluence { electron: e, proton: p }
    }

    fn policy() -> SparePolicy {
        SparePolicy::PerPlane { spares_per_plane: 3, replacement_days: 3.0 }
    }

    #[test]
    fn basic_run_properties() {
        let doses = vec![dose(3e10, 2e7); 10];
        let report = simulate(
            &doses,
            20,
            &FailureModel::default(),
            &policy(),
            SurvivabilityConfig::default(),
        )
        .unwrap();
        assert!((0.0..=1.0).contains(&report.availability));
        assert!(report.availability > 0.95, "availability {}", report.availability);
        assert!(report.failures > 0);
        assert_eq!(report.replacements, report.failures);
        assert!(report.spares_consumed >= report.replacements);
    }

    #[test]
    fn deterministic_given_seed() {
        let doses = vec![dose(3e10, 2e7); 6];
        let cfg = SurvivabilityConfig::default();
        let a = simulate(&doses, 15, &FailureModel::default(), &policy(), cfg).unwrap();
        let b = simulate(&doses, 15, &FailureModel::default(), &policy(), cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn lower_dose_fewer_failures_higher_availability() {
        let hot = vec![dose(4.2e10, 2.4e7); 12];
        let cool = vec![dose(2.0e10, 1.2e7); 12];
        let (cool_rep, hot_rep) = compare(
            &cool,
            &hot,
            20,
            &FailureModel::default(),
            &policy(),
            SurvivabilityConfig { horizon_years: 8.0, ..Default::default() },
        )
        .unwrap();
        assert!(cool_rep.failures < hot_rep.failures);
        assert!(cool_rep.availability >= hot_rep.availability);
        assert!(cool_rep.spares_consumed < hot_rep.spares_consumed);
    }

    #[test]
    fn zero_spares_hurts_availability() {
        let doses = vec![dose(4e10, 2.5e7); 8];
        let none = SparePolicy::PerPlane { spares_per_plane: 0, replacement_days: 3.0 };
        let cfg = SurvivabilityConfig { horizon_years: 6.0, ..Default::default() };
        let bare = simulate(&doses, 20, &FailureModel::default(), &none, cfg).unwrap();
        let spared = simulate(&doses, 20, &FailureModel::default(), &policy(), cfg).unwrap();
        assert!(spared.availability > bare.availability);
        assert!(bare.lost_slot_days > spared.lost_slot_days);
    }

    #[test]
    fn shared_pool_runs() {
        let doses = vec![dose(3e10, 2e7); 10];
        let pool = SparePolicy::SharedPool { pool_size: 30, replacement_days: 20.0 };
        let report =
            simulate(&doses, 20, &FailureModel::default(), &pool, SurvivabilityConfig::default())
                .unwrap();
        assert!((0.0..=1.0).contains(&report.availability));
        // With resupply topping the whole pool back up, a 30-spare pool
        // rarely exhausts: vacancies are dominated by the 20-day
        // delivery latency, so the loss is at least ~one delivery per
        // failure.
        assert!(
            report.lost_slot_days >= report.failures as f64 * 20.0 * 0.9,
            "lost {} for {} failures",
            report.lost_slot_days,
            report.failures
        );
        // A faster delivery with the same pool strictly helps.
        let quick = SparePolicy::SharedPool { pool_size: 30, replacement_days: 2.0 };
        let fast =
            simulate(&doses, 20, &FailureModel::default(), &quick, SurvivabilityConfig::default())
                .unwrap();
        assert!(fast.availability > report.availability);
    }

    /// A lifetime law with no randomness: every unit lives exactly
    /// `life_days`. Lets the resupply arithmetic be pinned in closed
    /// form.
    struct ConstLife {
        life_days: f64,
    }

    impl FailureProcess for ConstLife {
        fn name(&self) -> &'static str {
            "const"
        }
        fn validate(&self) -> Result<()> {
            Ok(())
        }
        fn sample_lifetime_days(&self, _dose: DailyFluence, _rng: &mut StdRng) -> f64 {
            self.life_days
        }
    }

    #[test]
    fn shared_pool_resupply_delivers_the_whole_pool() {
        // Regression for the single-spare resupply bug: one slot failing
        // every 10 days against a 2-spare pool with instant replacement
        // and 1000-day resupply. Failures at t = 10 and 20 draw the
        // pool; the one at t = 30 waits for day 1000 *and tops the pool
        // back to 2*, so the failures at 1010 and 1020 draw again and
        // the one at 1030 waits out the rest of the horizon — the cycle
        // is draw, draw, wait. Under the old `pool += 1` behavior every
        // second failure after the first wait would have waited instead.
        let pool = SparePolicy::SharedPool { pool_size: 2, replacement_days: 0.0 };
        let cfg =
            SurvivabilityConfig { horizon_years: 2000.0 / 365.25, resupply_days: 1000.0, seed: 1 };
        let timeline = outage_timeline(
            &[dose(0.0, 0.0)],
            &[1],
            None,
            &ConstLife { life_days: 10.0 },
            &pool,
            cfg,
        )
        .unwrap();
        // Six failures total (10, 20, 30, 1010, 1020, 1030); only the
        // two exhaustion events lose time, 970 days each.
        assert_eq!(timeline.failures, 6);
        let waits: Vec<OutageInterval> =
            timeline.outages[0].iter().copied().filter(|o| o.days() > 0.0).collect();
        assert_eq!(waits.len(), 2, "one wait per resupply cycle, not every other failure");
        assert!((waits[0].start_day - 30.0).abs() < 1e-9);
        assert!((waits[0].end_day - 1000.0).abs() < 1e-9);
        assert!((waits[1].start_day - 1030.0).abs() < 1e-9);
        assert!((waits[1].end_day - 2000.0).abs() < 1e-9);
        assert!((timeline.lost_slot_days() - (970.0 + 970.0)).abs() < 1e-9);
    }

    #[test]
    fn timeline_matches_the_scalar_report() {
        // simulate() is the timeline reduced: availability, counters, and
        // lost days must agree exactly.
        let doses = vec![dose(3.5e10, 2.2e7); 7];
        let cfg = SurvivabilityConfig { horizon_years: 6.0, ..Default::default() };
        let report = simulate(&doses, 12, &FailureModel::default(), &policy(), cfg).unwrap();
        let timeline = outage_timeline(
            &doses,
            &[12; 7],
            None,
            &RadiationExponential { model: FailureModel::default() },
            &policy(),
            cfg,
        )
        .unwrap();
        assert_eq!(timeline.failures, report.failures);
        assert_eq!(timeline.replacements, report.replacements);
        assert_eq!(timeline.spares_consumed, report.spares_consumed);
        assert_eq!(timeline.lost_slot_days(), report.lost_slot_days);
        assert_eq!(timeline.n_sats(), 84);
        assert_eq!(timeline.plane_offsets, (0..=7).map(|p| p * 12).collect::<Vec<_>>());
        // Intervals are chronological, inside the horizon, and match the
        // aggregate loss.
        for slot in &timeline.outages {
            for w in slot.windows(2) {
                assert!(w[0].end_day <= w[1].start_day);
            }
            for o in slot {
                assert!(o.start_day >= 0.0 && o.end_day <= timeline.horizon_days + 1e-9);
            }
        }
    }

    #[test]
    fn dead_slots_are_excluded_from_failures_and_spares() {
        let doses = vec![dose(4e10, 2.5e7); 4];
        let plane_sats = vec![5usize; 4];
        let cfg = SurvivabilityConfig { horizon_years: 5.0, ..Default::default() };
        let process = RadiationExponential { model: FailureModel::default() };
        let full = outage_timeline(&doses, &plane_sats, None, &process, &policy(), cfg).unwrap();
        // Kill plane 2 outright.
        let mut dead = vec![false; 20];
        dead[10..15].fill(true);
        let masked =
            outage_timeline(&doses, &plane_sats, Some(&dead), &process, &policy(), cfg).unwrap();
        assert!(masked.failures < full.failures, "dead slots draw no lifetimes");
        for flat in 10..15 {
            assert_eq!(masked.outages[flat].len(), 1);
            assert!(!masked.alive_at(flat, 0.0));
            assert!(!masked.alive_at(flat, masked.horizon_days - 1.0));
        }
        // A surviving slot's stream starts where the dead plane's would
        // have: slot 0 of plane 0 is identical in both runs.
        assert_eq!(masked.outages[0], full.outages[0]);
        // Wrong mask length is rejected.
        assert!(
            outage_timeline(&doses, &plane_sats, Some(&[true]), &process, &policy(), cfg).is_err()
        );
    }

    #[test]
    fn weibull_process_runs_end_to_end() {
        use crate::disruption::WeibullBathtub;
        let doses = vec![dose(3e10, 2e7); 6];
        let cfg = SurvivabilityConfig::default();
        let a = simulate_process(&doses, 15, &WeibullBathtub::default(), &policy(), cfg).unwrap();
        let b = simulate_process(&doses, 15, &WeibullBathtub::default(), &policy(), cfg).unwrap();
        assert_eq!(a, b, "weibull runs are seed-deterministic");
        assert!((0.0..=1.0).contains(&a.availability));
        assert!(a.failures > 0, "a 5-year horizon sees infant mortality at least");
    }

    #[test]
    fn bad_inputs_rejected() {
        let doses = vec![dose(1e10, 1e7)];
        assert!(simulate(&[], 5, &FailureModel::default(), &policy(), Default::default()).is_err());
        assert!(
            simulate(&doses, 0, &FailureModel::default(), &policy(), Default::default()).is_err()
        );
        assert!(simulate(
            &doses,
            5,
            &FailureModel::default(),
            &policy(),
            SurvivabilityConfig { horizon_years: 0.0, ..Default::default() }
        )
        .is_err());
        // The engine also rejects mismatched plane vectors.
        assert!(outage_timeline(
            &doses,
            &[1, 2],
            None,
            &RadiationExponential { model: FailureModel::default() },
            &policy(),
            Default::default()
        )
        .is_err());
    }
}
