//! Inter-satellite-link (ISL) topology construction.
//!
//! Satellites are organized as `planes × slots`; the workhorse topology is
//! the **+grid** used by deployed LSNs: each satellite links fore and aft
//! within its plane and to the nearest slot in the two adjacent planes.
//! Links are checked for physical feasibility (range and Earth occlusion)
//! at construction epochs.

use crate::error::{LsnError, Result};
use ssplane_astro::constants::EARTH_RADIUS_KM;
use ssplane_astro::kepler::OrbitalElements;
use ssplane_astro::linalg::Vec3;
use ssplane_astro::propagate::J2Propagator;
use ssplane_astro::time::Epoch;
use ssplane_core::SsConstellation;

/// Identifier of a satellite as (plane, slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SatId {
    /// Orbital plane index.
    pub plane: usize,
    /// Slot within the plane.
    pub slot: usize,
}

/// A constellation as planes of orbital elements, with propagators.
#[derive(Debug, Clone)]
pub struct Constellation {
    planes: Vec<Vec<J2Propagator>>,
    epoch: Epoch,
}

impl Constellation {
    /// Builds from explicit per-plane elements at `epoch`.
    ///
    /// # Errors
    /// Rejects empty constellations and invalid elements.
    pub fn new(epoch: Epoch, planes: Vec<Vec<OrbitalElements>>) -> Result<Self> {
        if planes.is_empty() || planes.iter().all(|p| p.is_empty()) {
            return Err(LsnError::BadParameter { name: "planes", constraint: "non-empty" });
        }
        let planes = planes
            .into_iter()
            .map(|els| {
                els.into_iter()
                    .map(|el| J2Propagator::new(epoch, el).map_err(LsnError::from))
                    .collect::<Result<Vec<_>>>()
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Constellation { planes, epoch })
    }

    /// Builds from the per-plane satellite geometry of *any* designed
    /// system (SS, Walker, RGT, …), in the caller's network order. Planes
    /// that carry no satellites are dropped: a design may keep an empty
    /// plane for bookkeeping, but the topology only links real nodes.
    ///
    /// # Errors
    /// Rejects constellations with no satellites at all, and invalid
    /// elements.
    pub fn from_planes(epoch: Epoch, planes: Vec<Vec<OrbitalElements>>) -> Result<Self> {
        let planes: Vec<Vec<OrbitalElements>> =
            planes.into_iter().filter(|p| !p.is_empty()).collect();
        Constellation::new(epoch, planes)
    }

    /// Builds from a designed SS constellation, ordering planes by LTAN.
    ///
    /// # Errors
    /// Propagates element generation failure.
    pub fn from_ss(epoch: Epoch, constellation: &SsConstellation) -> Result<Self> {
        let mut planes = constellation.planes.clone();
        planes.sort_by(|a, b| a.orbit.ltan_h.partial_cmp(&b.orbit.ltan_h).expect("finite LTAN"));
        let element_planes = planes
            .iter()
            .map(|p| p.satellites(epoch).map_err(LsnError::from))
            .collect::<Result<Vec<_>>>()?;
        Constellation::from_planes(epoch, element_planes)
    }

    /// Construction epoch.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Number of planes.
    pub fn n_planes(&self) -> usize {
        self.planes.len()
    }

    /// Slots in plane `p` (0 if out of range).
    pub fn slots_in_plane(&self, p: usize) -> usize {
        self.planes.get(p).map_or(0, Vec::len)
    }

    /// Total satellites.
    pub fn total_sats(&self) -> usize {
        self.planes.iter().map(Vec::len).sum()
    }

    /// All satellite ids, plane-major.
    pub fn ids(&self) -> Vec<SatId> {
        (0..self.planes.len())
            .flat_map(|p| (0..self.planes[p].len()).map(move |s| SatId { plane: p, slot: s }))
            .collect()
    }

    /// ECI position \[km\] of a satellite at epoch `t`.
    ///
    /// # Errors
    /// [`LsnError::UnknownNode`] for out-of-range ids.
    pub fn position(&self, id: SatId, t: Epoch) -> Result<Vec3> {
        let prop = self
            .planes
            .get(id.plane)
            .and_then(|p| p.get(id.slot))
            .ok_or(LsnError::UnknownNode { plane: id.plane, slot: id.slot })?;
        Ok(prop.position_at(t)?)
    }
}

/// Whether the straight line between two ECI positions clears the Earth
/// plus an atmosphere margin of `margin_km` (ISL feasibility).
pub fn line_of_sight(a: Vec3, b: Vec3, margin_km: f64) -> bool {
    let r_min = EARTH_RADIUS_KM + margin_km;
    let ab = b - a;
    let len2 = ab.norm_squared();
    if len2 == 0.0 {
        return a.norm() >= r_min;
    }
    // Closest approach of the segment to the geocenter.
    let t = (-a.dot(ab) / len2).clamp(0.0, 1.0);
    (a + ab * t).norm() >= r_min
}

/// One inter-satellite link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Endpoint A.
    pub a: SatId,
    /// Endpoint B.
    pub b: SatId,
    /// Link length \[km\] at the topology's evaluation epoch.
    pub length_km: f64,
}

/// An ISL topology over a constellation.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Feasible links at the evaluation epoch.
    pub links: Vec<Link>,
    /// Adjacency list indexed by flattened satellite index.
    adjacency: Vec<Vec<(usize, f64)>>,
    /// Flattened index bounds: start index per plane.
    plane_offsets: Vec<usize>,
}

/// Configuration for +grid topology construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridTopologyConfig {
    /// Maximum ISL range \[km\] (laser terminal budget).
    pub max_range_km: f64,
    /// Atmosphere clearance margin \[km\] for line-of-sight.
    pub occlusion_margin_km: f64,
    /// Whether to close the ring across the highest-index plane back to
    /// plane 0 (false leaves a *seam*, as deployed systems do between
    /// counter-rotating or LTAN-wrapped planes).
    pub wrap_planes: bool,
}

impl Default for GridTopologyConfig {
    fn default() -> Self {
        GridTopologyConfig { max_range_km: 5000.0, occlusion_margin_km: 80.0, wrap_planes: false }
    }
}

impl Topology {
    /// Builds a +grid topology at epoch `t`: intra-plane ring plus links
    /// to the nearest slot of each adjacent plane, keeping only links that
    /// are in range and unoccluded at `t`.
    ///
    /// # Errors
    /// Propagates position evaluation failure.
    pub fn plus_grid(
        constellation: &Constellation,
        t: Epoch,
        config: GridTopologyConfig,
    ) -> Result<Topology> {
        let n_planes = constellation.n_planes();
        let mut plane_offsets = Vec::with_capacity(n_planes + 1);
        let mut total = 0usize;
        for p in 0..n_planes {
            plane_offsets.push(total);
            total += constellation.slots_in_plane(p);
        }
        plane_offsets.push(total);

        // Cache positions.
        let mut positions = Vec::with_capacity(total);
        for p in 0..n_planes {
            for s in 0..constellation.slots_in_plane(p) {
                positions.push(constellation.position(SatId { plane: p, slot: s }, t)?);
            }
        }

        let flat = |id: SatId| plane_offsets[id.plane] + id.slot;
        let mut links: Vec<Link> = Vec::new();
        let push_link = |a: SatId, b: SatId, links: &mut Vec<Link>| {
            let (pa, pb) = (positions[flat(a)], positions[flat(b)]);
            let length = (pa - pb).norm();
            if length <= config.max_range_km && line_of_sight(pa, pb, config.occlusion_margin_km) {
                links.push(Link { a, b, length_km: length });
            }
        };

        for p in 0..n_planes {
            let slots = constellation.slots_in_plane(p);
            // Intra-plane ring.
            if slots > 1 {
                for s in 0..slots {
                    let next = (s + 1) % slots;
                    if slots == 2 && next < s {
                        continue; // avoid double link on 2-slot planes
                    }
                    push_link(
                        SatId { plane: p, slot: s },
                        SatId { plane: p, slot: next },
                        &mut links,
                    );
                }
            }
            // Cross-plane to the next plane's nearest slot.
            let next_plane = if p + 1 < n_planes {
                Some(p + 1)
            } else if config.wrap_planes && n_planes > 2 {
                Some(0)
            } else {
                None
            };
            if let Some(q) = next_plane {
                let q_slots = constellation.slots_in_plane(q);
                for s in 0..slots {
                    let from = SatId { plane: p, slot: s };
                    // Nearest slot in plane q at epoch t.
                    let mut best: Option<(usize, f64)> = None;
                    for sq in 0..q_slots {
                        let d = (positions[flat(from)]
                            - positions[flat(SatId { plane: q, slot: sq })])
                        .norm();
                        if best.is_none_or(|(_, bd)| d < bd) {
                            best = Some((sq, d));
                        }
                    }
                    if let Some((sq, _)) = best {
                        push_link(from, SatId { plane: q, slot: sq }, &mut links);
                    }
                }
            }
        }

        // Build adjacency (deduplicated, undirected).
        let mut adjacency = vec![Vec::new(); total];
        let mut seen = std::collections::HashSet::new();
        links.retain(|l| {
            let key =
                if flat(l.a) < flat(l.b) { (flat(l.a), flat(l.b)) } else { (flat(l.b), flat(l.a)) };
            seen.insert(key)
        });
        for l in &links {
            adjacency[flat(l.a)].push((flat(l.b), l.length_km));
            adjacency[flat(l.b)].push((flat(l.a), l.length_km));
        }
        Ok(Topology { links, adjacency, plane_offsets })
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        *self.plane_offsets.last().unwrap_or(&0)
    }

    /// Flattened index of a satellite id (`None` if out of range).
    pub fn index_of(&self, id: SatId) -> Option<usize> {
        let start = *self.plane_offsets.get(id.plane)?;
        let end = *self.plane_offsets.get(id.plane + 1)?;
        let idx = start + id.slot;
        (idx < end).then_some(idx)
    }

    /// Satellite id of a flattened index.
    pub fn id_of(&self, index: usize) -> Option<SatId> {
        let plane = self.plane_offsets.windows(2).position(|w| index >= w[0] && index < w[1])?;
        Some(SatId { plane, slot: index - self.plane_offsets[plane] })
    }

    /// Neighbors (flattened index, link length km) of a node.
    pub fn neighbors(&self, index: usize) -> &[(usize, f64)] {
        &self.adjacency[index]
    }

    /// Mean node degree.
    pub fn mean_degree(&self) -> f64 {
        if self.n_nodes() == 0 {
            0.0
        } else {
            2.0 * self.links.len() as f64 / self.n_nodes() as f64
        }
    }

    /// Whether the topology is connected (BFS from node 0).
    pub fn is_connected(&self) -> bool {
        let n = self.n_nodes();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::from([0usize]);
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = queue.pop_front() {
            for &(v, _) in self.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    queue.push_back(v);
                }
            }
        }
        count == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssplane_astro::sunsync::sun_synchronous_orbit;

    fn test_constellation(planes: usize, slots: usize) -> Constellation {
        let epoch = Epoch::J2000;
        let orbit = sun_synchronous_orbit(560.0).unwrap();
        let element_planes: Vec<Vec<OrbitalElements>> = (0..planes)
            .map(|p| orbit.with_ltan(8.0 + p as f64 * 0.8).plane_elements(epoch, slots).unwrap())
            .collect();
        Constellation::new(epoch, element_planes).unwrap()
    }

    #[test]
    fn line_of_sight_geometry() {
        let r = EARTH_RADIUS_KM + 560.0;
        let a = Vec3::new(r, 0.0, 0.0);
        // Neighbor 30° along the orbit: clear.
        let b = Vec3::new(r * 0.866, r * 0.5, 0.0);
        assert!(line_of_sight(a, b, 80.0));
        // Antipodal satellite: blocked by the Earth.
        let c = Vec3::new(-r, 0.0, 0.0);
        assert!(!line_of_sight(a, c, 80.0));
        // Degenerate zero-length segment above surface.
        assert!(line_of_sight(a, a, 80.0));
    }

    #[test]
    fn constellation_accessors() {
        let c = test_constellation(4, 10);
        assert_eq!(c.n_planes(), 4);
        assert_eq!(c.slots_in_plane(0), 10);
        assert_eq!(c.slots_in_plane(9), 0);
        assert_eq!(c.total_sats(), 40);
        assert_eq!(c.ids().len(), 40);
        assert!(c.position(SatId { plane: 7, slot: 0 }, Epoch::J2000).is_err());
        let r = c.position(SatId { plane: 0, slot: 0 }, Epoch::J2000).unwrap();
        assert!((r.norm() - (EARTH_RADIUS_KM + 560.0)).abs() < 30.0);
    }

    #[test]
    fn empty_constellation_rejected() {
        assert!(Constellation::new(Epoch::J2000, vec![]).is_err());
        assert!(Constellation::new(Epoch::J2000, vec![vec![], vec![]]).is_err());
    }

    #[test]
    fn from_planes_drops_empty_planes_and_takes_any_geometry() {
        let epoch = Epoch::J2000;
        let orbit = sun_synchronous_orbit(560.0).unwrap();
        let real = orbit.with_ltan(8.0).plane_elements(epoch, 6).unwrap();
        let c = Constellation::from_planes(epoch, vec![vec![], real, vec![]]).unwrap();
        assert_eq!(c.n_planes(), 1);
        assert_eq!(c.total_sats(), 6);
        assert!(Constellation::from_planes(epoch, vec![vec![], vec![]]).is_err());

        // Non-sun-synchronous (Walker-delta) geometry builds and routes
        // through the same +grid machinery (12 sats/plane keeps the
        // intra-plane spacing under the default ISL range).
        let pattern = ssplane_astro::walker::WalkerDelta::new(550.0, 53f64.to_radians(), 96, 8, 1)
            .unwrap()
            .generate()
            .unwrap();
        let planes: Vec<Vec<OrbitalElements>> = pattern.chunks(12).map(<[_]>::to_vec).collect();
        let walker = Constellation::from_planes(epoch, planes).unwrap();
        assert_eq!(walker.n_planes(), 8);
        let topo = Topology::plus_grid(&walker, epoch, Default::default()).unwrap();
        assert!(topo.is_connected(), "Walker +grid must be connected");
    }

    #[test]
    fn plus_grid_structure() {
        let c = test_constellation(4, 12);
        let topo = Topology::plus_grid(&c, Epoch::J2000, Default::default()).unwrap();
        assert_eq!(topo.n_nodes(), 48);
        // Ring links: 12 per plane × 4 planes; cross-plane ≈ 12 × 3.
        assert!(topo.links.len() >= 48 + 24, "links = {}", topo.links.len());
        assert!(topo.mean_degree() >= 3.0, "degree = {}", topo.mean_degree());
        assert!(topo.is_connected());
        // index/id round trip.
        for id in c.ids() {
            let idx = topo.index_of(id).unwrap();
            assert_eq!(topo.id_of(idx), Some(id));
        }
        assert!(topo.index_of(SatId { plane: 0, slot: 99 }).is_none());
        assert!(topo.id_of(999).is_none());
    }

    #[test]
    fn range_limit_prunes_links() {
        let c = test_constellation(3, 8);
        let tight = Topology::plus_grid(
            &c,
            Epoch::J2000,
            GridTopologyConfig { max_range_km: 100.0, ..Default::default() },
        )
        .unwrap();
        assert!(tight.links.is_empty(), "no link is under 100 km");
        let loose = Topology::plus_grid(&c, Epoch::J2000, Default::default()).unwrap();
        assert!(!loose.links.is_empty());
    }

    #[test]
    fn all_links_within_range_and_los() {
        let c = test_constellation(5, 15);
        let cfg = GridTopologyConfig::default();
        let topo = Topology::plus_grid(&c, Epoch::J2000, cfg).unwrap();
        for l in &topo.links {
            assert!(l.length_km <= cfg.max_range_km);
            let pa = c.position(l.a, Epoch::J2000).unwrap();
            let pb = c.position(l.b, Epoch::J2000).unwrap();
            assert!(line_of_sight(pa, pb, cfg.occlusion_margin_km));
        }
    }

    #[test]
    fn wrap_planes_adds_links() {
        let c = test_constellation(5, 8);
        let open = Topology::plus_grid(&c, Epoch::J2000, Default::default()).unwrap();
        let wrapped = Topology::plus_grid(
            &c,
            Epoch::J2000,
            GridTopologyConfig { wrap_planes: true, ..Default::default() },
        )
        .unwrap();
        assert!(wrapped.links.len() >= open.links.len());
    }
}
