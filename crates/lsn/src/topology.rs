//! Inter-satellite-link (ISL) topology construction.
//!
//! Satellites are organized as `planes × slots`; the workhorse topology is
//! the **+grid** used by deployed LSNs: each satellite links fore and aft
//! within its plane and to the nearest slot in the two adjacent planes.
//! Links are checked for physical feasibility (range and Earth occlusion)
//! at construction epochs.

use crate::error::{LsnError, Result};
use crate::snapshot::Snapshot;
use ssplane_astro::constants::EARTH_RADIUS_KM;
use ssplane_astro::kepler::OrbitalElements;
use ssplane_astro::linalg::Vec3;
use ssplane_astro::propagate::J2Propagator;
use ssplane_astro::time::Epoch;
use ssplane_core::SsConstellation;

/// Identifier of a satellite as (plane, slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SatId {
    /// Orbital plane index.
    pub plane: usize,
    /// Slot within the plane.
    pub slot: usize,
}

/// A constellation as planes of orbital elements, with propagators.
#[derive(Debug, Clone)]
pub struct Constellation {
    planes: Vec<Vec<J2Propagator>>,
    epoch: Epoch,
}

impl Constellation {
    /// Builds from explicit per-plane elements at `epoch`.
    ///
    /// # Errors
    /// Rejects empty constellations and invalid elements.
    pub fn new(epoch: Epoch, planes: Vec<Vec<OrbitalElements>>) -> Result<Self> {
        if planes.is_empty() || planes.iter().all(|p| p.is_empty()) {
            return Err(LsnError::BadParameter { name: "planes", constraint: "non-empty" });
        }
        let planes = planes
            .into_iter()
            .map(|els| {
                els.into_iter()
                    .map(|el| J2Propagator::new(epoch, el).map_err(LsnError::from))
                    .collect::<Result<Vec<_>>>()
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Constellation { planes, epoch })
    }

    /// Builds from the per-plane satellite geometry of *any* designed
    /// system (SS, Walker, RGT, …), in the caller's network order. Planes
    /// that carry no satellites are dropped: a design may keep an empty
    /// plane for bookkeeping, but the topology only links real nodes.
    ///
    /// # Errors
    /// Rejects constellations with no satellites at all, and invalid
    /// elements.
    pub fn from_planes(epoch: Epoch, planes: Vec<Vec<OrbitalElements>>) -> Result<Self> {
        let planes: Vec<Vec<OrbitalElements>> =
            planes.into_iter().filter(|p| !p.is_empty()).collect();
        Constellation::new(epoch, planes)
    }

    /// Builds from a designed SS constellation, ordering planes by LTAN.
    ///
    /// # Errors
    /// Propagates element generation failure.
    pub fn from_ss(epoch: Epoch, constellation: &SsConstellation) -> Result<Self> {
        let mut planes = constellation.planes.clone();
        planes.sort_by(|a, b| a.orbit.ltan_h.partial_cmp(&b.orbit.ltan_h).expect("finite LTAN"));
        let element_planes = planes
            .iter()
            .map(|p| p.satellites(epoch).map_err(LsnError::from))
            .collect::<Result<Vec<_>>>()?;
        Constellation::from_planes(epoch, element_planes)
    }

    /// Construction epoch.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Number of planes.
    pub fn n_planes(&self) -> usize {
        self.planes.len()
    }

    /// Slots in plane `p` (0 if out of range).
    pub fn slots_in_plane(&self, p: usize) -> usize {
        self.planes.get(p).map_or(0, Vec::len)
    }

    /// Total satellites.
    pub fn total_sats(&self) -> usize {
        self.planes.iter().map(Vec::len).sum()
    }

    /// All satellite ids, plane-major.
    pub fn ids(&self) -> Vec<SatId> {
        (0..self.planes.len())
            .flat_map(|p| (0..self.planes[p].len()).map(move |s| SatId { plane: p, slot: s }))
            .collect()
    }

    /// Start index per plane in the flat plane-major satellite order,
    /// with a trailing total — the layout snapshots and topologies share.
    pub fn plane_offsets(&self) -> Vec<usize> {
        let mut offsets = Vec::with_capacity(self.planes.len() + 1);
        let mut total = 0usize;
        for p in &self.planes {
            offsets.push(total);
            total += p.len();
        }
        offsets.push(total);
        offsets
    }

    /// The propagators in flat plane-major order (the snapshot layout).
    pub fn propagators(&self) -> Vec<J2Propagator> {
        self.planes.iter().flatten().copied().collect()
    }

    /// ECI position \[km\] of a satellite at epoch `t`.
    ///
    /// # Errors
    /// [`LsnError::UnknownNode`] for out-of-range ids.
    pub fn position(&self, id: SatId, t: Epoch) -> Result<Vec3> {
        let prop = self
            .planes
            .get(id.plane)
            .and_then(|p| p.get(id.slot))
            .ok_or(LsnError::UnknownNode { plane: id.plane, slot: id.slot })?;
        Ok(prop.position_at(t)?)
    }
}

/// Whether the straight line between two ECI positions clears the Earth
/// plus an atmosphere margin of `margin_km` (ISL feasibility).
pub fn line_of_sight(a: Vec3, b: Vec3, margin_km: f64) -> bool {
    let r_min = EARTH_RADIUS_KM + margin_km;
    let ab = b - a;
    let len2 = ab.norm_squared();
    if len2 == 0.0 {
        return a.norm() >= r_min;
    }
    // Closest approach of the segment to the geocenter.
    let t = (-a.dot(ab) / len2).clamp(0.0, 1.0);
    (a + ab * t).norm() >= r_min
}

/// One inter-satellite link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Endpoint A.
    pub a: SatId,
    /// Endpoint B.
    pub b: SatId,
    /// Link length \[km\] at the topology's evaluation epoch.
    pub length_km: f64,
}

/// An ISL topology over a constellation.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Feasible links at the evaluation epoch.
    pub links: Vec<Link>,
    /// CSR adjacency: node `i`'s neighbors live at
    /// `adj_entries[adj_offsets[i]..adj_offsets[i + 1]]`. One flat
    /// allocation instead of a `Vec` per node — Dijkstra's inner loop
    /// walks contiguous memory.
    adj_offsets: Vec<usize>,
    adj_entries: Vec<(usize, f64)>,
    /// Flattened index bounds: start index per plane.
    plane_offsets: Vec<usize>,
}

/// Builds the CSR adjacency from an undirected link list. Entries keep
/// the per-node insertion order a `Vec<Vec<_>>` build would produce
/// (links scanned in emission order, both directions appended), so graph
/// traversal order — and every downstream tie-break — is unchanged.
fn build_adjacency(
    links: &[Link],
    flat: impl Fn(SatId) -> usize,
    total: usize,
) -> (Vec<usize>, Vec<(usize, f64)>) {
    let mut degrees = vec![0usize; total];
    for l in links {
        degrees[flat(l.a)] += 1;
        degrees[flat(l.b)] += 1;
    }
    let mut offsets = Vec::with_capacity(total + 1);
    let mut acc = 0usize;
    offsets.push(0);
    for &d in &degrees {
        acc += d;
        offsets.push(acc);
    }
    let mut cursor = offsets[..total].to_vec();
    let mut entries = vec![(0usize, 0.0f64); acc];
    for l in links {
        let (ia, ib) = (flat(l.a), flat(l.b));
        entries[cursor[ia]] = (ib, l.length_km);
        cursor[ia] += 1;
        entries[cursor[ib]] = (ia, l.length_km);
        cursor[ib] += 1;
    }
    (offsets, entries)
}

/// Configuration for +grid topology construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridTopologyConfig {
    /// Maximum ISL range \[km\] (laser terminal budget).
    pub max_range_km: f64,
    /// Atmosphere clearance margin \[km\] for line-of-sight.
    pub occlusion_margin_km: f64,
    /// Whether to close the ring across the highest-index plane back to
    /// plane 0 (false leaves a *seam*, as deployed systems do between
    /// counter-rotating or LTAN-wrapped planes).
    pub wrap_planes: bool,
}

impl Default for GridTopologyConfig {
    fn default() -> Self {
        GridTopologyConfig { max_range_km: 5000.0, occlusion_margin_km: 80.0, wrap_planes: false }
    }
}

/// Sorted angular index of one plane's satellites, used to answer
/// nearest-slot queries in O(log S + window) instead of a full O(S) scan
/// per query. Built only when the plane really is a common-radius
/// coplanar circle (always true for mean-element orbital planes); any
/// other geometry falls back to the exact brute-force scan.
struct PlaneCircle {
    /// In-plane orthonormal basis.
    basis_a: Vec3,
    basis_b: Vec3,
    /// Slot indices sorted by angle.
    order: Vec<usize>,
    /// The sorted angles \[rad, in `(-pi, pi]`\].
    angles: Vec<f64>,
    /// Common orbit radius \[km\].
    radius: f64,
}

/// Relative tolerance for the circle check: far above position rounding
/// (~1e-12 relative) yet far below any genuine geometric deviation.
const CIRCLE_TOL: f64 = 1e-6;

/// Planes smaller than this are cheaper to brute-force than to index.
const MIN_INDEXED_SLOTS: usize = 8;

impl PlaneCircle {
    /// Builds the index for the plane whose flat indices are
    /// `offset..offset + slots`, or `None` if the satellites do not lie
    /// on a common circle about the geocenter (within [`CIRCLE_TOL`]).
    fn build(positions: &impl Fn(usize) -> Vec3, offset: usize, slots: usize) -> Option<Self> {
        if slots < MIN_INDEXED_SLOTS {
            return None;
        }
        let r0 = positions(offset);
        let radius = r0.norm();
        if radius <= 0.0 {
            return None;
        }
        let normal = r0.cross(positions(offset + 1));
        if normal.norm() <= CIRCLE_TOL * radius * radius {
            return None; // first two satellites (anti)parallel: no plane
        }
        let normal = normal * (1.0 / normal.norm());
        let basis_a = r0 * (1.0 / radius);
        let basis_b = normal.cross(basis_a);
        let tol = CIRCLE_TOL * radius;
        let mut angles: Vec<(f64, usize)> = Vec::with_capacity(slots);
        for k in 0..slots {
            let r = positions(offset + k);
            if (r.norm() - radius).abs() > tol || r.dot(normal).abs() > tol {
                return None; // off-radius or out-of-plane satellite
            }
            angles.push((r.dot(basis_b).atan2(r.dot(basis_a)), k));
        }
        angles.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite angles"));
        Some(PlaneCircle {
            basis_a,
            basis_b,
            order: angles.iter().map(|&(_, k)| k).collect(),
            angles: angles.iter().map(|&(a, _)| a).collect(),
            radius,
        })
    }

    /// The slot nearest to `x`, found by locating `x`'s in-plane angle
    /// among the sorted slot angles and comparing true distances over a
    /// six-slot window around the insertion point — enough to cover the
    /// angular nearest and its runners-up, so the winner (including its
    /// lowest-index tie-break) matches the brute-force scan exactly.
    /// Returns `None` when `x` is too close to the plane normal for the
    /// angular ordering to be trustworthy (the caller brute-forces).
    fn nearest_slot(
        &self,
        x: Vec3,
        positions: &impl Fn(usize) -> Vec3,
        offset: usize,
    ) -> Option<usize> {
        let xa = x.dot(self.basis_a);
        let xb = x.dot(self.basis_b);
        if xa.hypot(xb) < 1e-3 * self.radius {
            return None; // degenerate: all slots nearly equidistant
        }
        let phi = xb.atan2(xa);
        let m = self.order.len();
        let i = self.angles.partition_point(|&theta| theta < phi);
        let mut candidates = [0usize; 6];
        for (d, slot) in candidates.iter_mut().enumerate() {
            *slot = self.order[(i + m - 3 + d) % m];
        }
        candidates.sort_unstable();
        // The brute-force comparison, restricted to the window: strict
        // `<` in ascending slot order keeps the lowest-index tie-break
        // (duplicate candidates are harmless under strict `<`).
        let mut best: Option<(usize, f64)> = None;
        for &sq in &candidates {
            let d = (x - positions(offset + sq)).norm();
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((sq, d));
            }
        }
        best.map(|(sq, _)| sq)
    }
}

/// The brute-force nearest-slot scan (the reference semantics): strict
/// `<` in ascending slot order, so the lowest index wins ties.
fn nearest_slot_scan(
    x: Vec3,
    positions: &impl Fn(usize) -> Vec3,
    offset: usize,
    slots: usize,
) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for sq in 0..slots {
        let d = (x - positions(offset + sq)).norm();
        if best.is_none_or(|(_, bd)| d < bd) {
            best = Some((sq, d));
        }
    }
    best.map(|(sq, _)| sq)
}

impl Topology {
    /// Builds a +grid topology over one [`Snapshot`]: intra-plane ring
    /// plus links to the nearest slot of each adjacent plane, keeping
    /// only links that are in range and unoccluded at the snapshot's
    /// epoch. Positions come from the snapshot's shared buffers — nothing
    /// is propagated here.
    ///
    /// Links are emitted in canonical `(min, max)` flat order, each
    /// exactly once: the ring walks `s -> s+1` and closes with `(0,
    /// slots-1)`, so no post-hoc deduplication pass (and no special case
    /// for 2-slot planes) is needed. Cross-plane nearest-slot queries go
    /// through a sorted-by-angle index per target plane instead of a full
    /// scan per satellite pair — the same links, found in O(log S).
    ///
    /// If the snapshot carries an alive mask
    /// ([`Snapshot::with_alive`](crate::snapshot::Snapshot::with_alive)),
    /// links touching a dead satellite are dropped: +grid laser terminals
    /// point at fixed fore/aft/cross-plane partners, so a destroyed
    /// neighbor takes its links down with it rather than being re-pointed
    /// around — the standard node-failure model on a fixed grid. Dead
    /// satellites remain zero-degree nodes (indexing is unchanged); use
    /// [`Topology::is_connected_among`] for connectivity over the
    /// survivors.
    ///
    /// # Errors
    /// Currently infallible (positions are precomputed); kept fallible
    /// for signature stability with construction-time feasibility checks.
    pub fn plus_grid(snapshot: &Snapshot<'_>, config: GridTopologyConfig) -> Result<Topology> {
        let n_planes = snapshot.n_planes();
        let plane_offsets = snapshot.plane_offsets().to_vec();
        let total = snapshot.total_sats();
        let position = |i: usize| snapshot.position_flat(i);

        let flat = |id: SatId| plane_offsets[id.plane] + id.slot;
        // Each satellite contributes at most one ring link and one
        // cross-plane link.
        let mut links: Vec<Link> = Vec::with_capacity(2 * total);
        let push_link = |a: SatId, b: SatId, links: &mut Vec<Link>| {
            debug_assert!(flat(a) < flat(b), "links are emitted in canonical order");
            if !snapshot.is_alive_flat(flat(a)) || !snapshot.is_alive_flat(flat(b)) {
                return;
            }
            let (pa, pb) = (position(flat(a)), position(flat(b)));
            let length = (pa - pb).norm();
            if length <= config.max_range_km && line_of_sight(pa, pb, config.occlusion_margin_km) {
                links.push(Link { a, b, length_km: length });
            }
        };

        // Sorted angular index per *target* plane, built on first use (a
        // plane is a cross-link target at most twice: as successor and as
        // the wrap target).
        let mut circles: Vec<Option<Option<PlaneCircle>>> = (0..n_planes).map(|_| None).collect();

        for p in 0..n_planes {
            let slots = snapshot.slots_in_plane(p);
            // Intra-plane ring, canonical order, each link once.
            if slots > 1 {
                for s in 0..slots - 1 {
                    push_link(
                        SatId { plane: p, slot: s },
                        SatId { plane: p, slot: s + 1 },
                        &mut links,
                    );
                }
                if slots > 2 {
                    push_link(
                        SatId { plane: p, slot: 0 },
                        SatId { plane: p, slot: slots - 1 },
                        &mut links,
                    );
                }
            }
            // Cross-plane to the next plane's nearest slot.
            let next_plane = if p + 1 < n_planes {
                Some(p + 1)
            } else if config.wrap_planes && n_planes > 2 {
                Some(0)
            } else {
                None
            };
            if let Some(q) = next_plane {
                let q_slots = snapshot.slots_in_plane(q);
                let q_offset = plane_offsets[q];
                let circle = circles[q]
                    .get_or_insert_with(|| PlaneCircle::build(&position, q_offset, q_slots));
                for s in 0..slots {
                    let from = SatId { plane: p, slot: s };
                    let x = position(flat(from));
                    let nearest = circle
                        .as_ref()
                        .and_then(|c| c.nearest_slot(x, &position, q_offset))
                        .or_else(|| nearest_slot_scan(x, &position, q_offset, q_slots));
                    if let Some(sq) = nearest {
                        let to = SatId { plane: q, slot: sq };
                        // Canonicalize (the wrap pair has q < p).
                        if flat(from) < flat(to) {
                            push_link(from, to, &mut links);
                        } else {
                            push_link(to, from, &mut links);
                        }
                    }
                }
            }
        }

        // Build adjacency; emission above is duplicate-free by
        // construction, so no dedup pass.
        let (adj_offsets, adj_entries) = build_adjacency(&links, flat, total);
        Ok(Topology { links, adj_offsets, adj_entries, plane_offsets })
    }

    /// The legacy single-shot construction: propagates every position on
    /// demand from `constellation` at epoch `t` and runs the original
    /// per-pair nearest-slot scan with a post-hoc dedup pass. Kept as the
    /// reference implementation the snapshot-based [`Topology::plus_grid`]
    /// is parity-tested and benchmarked against; prefer building a
    /// [`SnapshotSeries`](crate::snapshot::SnapshotSeries) and using
    /// [`Topology::plus_grid`].
    ///
    /// # Errors
    /// Propagates position evaluation failure.
    pub fn plus_grid_at(
        constellation: &Constellation,
        t: Epoch,
        config: GridTopologyConfig,
    ) -> Result<Topology> {
        let n_planes = constellation.n_planes();
        let plane_offsets = constellation.plane_offsets();
        let total = *plane_offsets.last().expect("offsets non-empty");

        // Cache positions.
        let mut positions = Vec::with_capacity(total);
        for p in 0..n_planes {
            for s in 0..constellation.slots_in_plane(p) {
                positions.push(constellation.position(SatId { plane: p, slot: s }, t)?);
            }
        }

        let flat = |id: SatId| plane_offsets[id.plane] + id.slot;
        let mut links: Vec<Link> = Vec::new();
        let push_link = |a: SatId, b: SatId, links: &mut Vec<Link>| {
            let (pa, pb) = (positions[flat(a)], positions[flat(b)]);
            let length = (pa - pb).norm();
            if length <= config.max_range_km && line_of_sight(pa, pb, config.occlusion_margin_km) {
                links.push(Link { a, b, length_km: length });
            }
        };

        for p in 0..n_planes {
            let slots = constellation.slots_in_plane(p);
            // Intra-plane ring.
            if slots > 1 {
                for s in 0..slots {
                    let next = (s + 1) % slots;
                    if slots == 2 && next < s {
                        continue; // avoid double link on 2-slot planes
                    }
                    push_link(
                        SatId { plane: p, slot: s },
                        SatId { plane: p, slot: next },
                        &mut links,
                    );
                }
            }
            // Cross-plane to the next plane's nearest slot.
            let next_plane = if p + 1 < n_planes {
                Some(p + 1)
            } else if config.wrap_planes && n_planes > 2 {
                Some(0)
            } else {
                None
            };
            if let Some(q) = next_plane {
                let q_slots = constellation.slots_in_plane(q);
                for s in 0..slots {
                    let from = SatId { plane: p, slot: s };
                    let x = positions[flat(from)];
                    if let Some(sq) =
                        nearest_slot_scan(x, &|i| positions[i], plane_offsets[q], q_slots)
                    {
                        push_link(from, SatId { plane: q, slot: sq }, &mut links);
                    }
                }
            }
        }

        // Build adjacency (deduplicated, undirected). An ordered set —
        // never a hash set — so the membership structure itself can
        // never leak iteration-order nondeterminism into link order
        // (the hash-iter lint rule bans hash collections here outright).
        let mut seen = std::collections::BTreeSet::new();
        links.retain(|l| {
            let key =
                if flat(l.a) < flat(l.b) { (flat(l.a), flat(l.b)) } else { (flat(l.b), flat(l.a)) };
            seen.insert(key)
        });
        let (adj_offsets, adj_entries) = build_adjacency(&links, flat, total);
        Ok(Topology { links, adj_offsets, adj_entries, plane_offsets })
    }

    /// Builds a topology directly from an explicit link list and plane
    /// layout — the analytic-graph entry point the percolation and
    /// spectral tests pin closed-form results with (path, cycle, and
    /// complete graphs have known Laplacian spectra that no orbital
    /// geometry reproduces exactly). Links are kept in the given order;
    /// endpoints must be valid under `plane_offsets`.
    ///
    /// # Panics
    /// If a link endpoint is outside the plane layout.
    pub fn from_links(links: Vec<Link>, plane_offsets: Vec<usize>) -> Topology {
        let total = *plane_offsets.last().unwrap_or(&0);
        let flat = |id: SatId| {
            let idx = plane_offsets[id.plane] + id.slot;
            assert!(idx < plane_offsets[id.plane + 1], "link endpoint outside its plane");
            idx
        };
        for l in &links {
            let _ = (flat(l.a), flat(l.b));
        }
        let flat_unchecked = |id: SatId| plane_offsets[id.plane] + id.slot;
        let (adj_offsets, adj_entries) = build_adjacency(&links, flat_unchecked, total);
        Topology { links, adj_offsets, adj_entries, plane_offsets }
    }

    /// The subgraph of this topology over the satellites flagged alive:
    /// every link incident to a dead satellite is dropped, in emission
    /// order, and the adjacency rebuilt. Because a masked
    /// [`Topology::plus_grid`] selects its partners from *positions*
    /// (nearest-slot queries never consult the mask) and only filters at
    /// link emission, this is **exactly** the topology `plus_grid` builds
    /// over the same snapshot with the same alive mask — link for link,
    /// length for length — computed in O(links) instead of re-running the
    /// geometric construction. This is the incremental fast path the
    /// attack optimizer scores candidates through: the intact topology is
    /// built once per slot and every candidate mask only filters it.
    ///
    /// # Panics
    /// If `alive.len()` is not the node count.
    pub fn masked(&self, alive: &[bool]) -> Topology {
        assert_eq!(alive.len(), self.n_nodes(), "alive mask length mismatch");
        let flat = |id: SatId| self.plane_offsets[id.plane] + id.slot;
        let links: Vec<Link> =
            self.links.iter().filter(|l| alive[flat(l.a)] && alive[flat(l.b)]).copied().collect();
        let (adj_offsets, adj_entries) = build_adjacency(&links, flat, self.n_nodes());
        Topology { links, adj_offsets, adj_entries, plane_offsets: self.plane_offsets.clone() }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        *self.plane_offsets.last().unwrap_or(&0)
    }

    /// Flattened index of a satellite id (`None` if out of range).
    pub fn index_of(&self, id: SatId) -> Option<usize> {
        let start = *self.plane_offsets.get(id.plane)?;
        let end = *self.plane_offsets.get(id.plane + 1)?;
        let idx = start + id.slot;
        (idx < end).then_some(idx)
    }

    /// Satellite id of a flattened index.
    pub fn id_of(&self, index: usize) -> Option<SatId> {
        let plane = self.plane_offsets.windows(2).position(|w| index >= w[0] && index < w[1])?;
        Some(SatId { plane, slot: index - self.plane_offsets[plane] })
    }

    /// Neighbors (flattened index, link length km) of a node.
    pub fn neighbors(&self, index: usize) -> &[(usize, f64)] {
        &self.adj_entries[self.adj_offsets[index]..self.adj_offsets[index + 1]]
    }

    /// Neighbors of a node restricted to an alive mask — the lazy
    /// equivalent of `self.masked(alive).neighbors(index)`. Because
    /// [`Topology::masked`] filters links in emission order and
    /// `build_adjacency` preserves per-node insertion order, the masked
    /// neighbor list is exactly the alive subsequence of the intact one,
    /// so filtering on the fly visits the same `(neighbor, length)` pairs
    /// in the same order without materializing the masked topology. This
    /// is what makes alive-filtered Dijkstra over the intact topology
    /// bit-identical to Dijkstra over [`Topology::masked`]. A dead
    /// `index` has no surviving links at all (masking drops a link when
    /// *either* endpoint is dead), so its list is empty.
    pub fn neighbors_alive<'m>(
        &'m self,
        index: usize,
        alive: &'m [bool],
    ) -> impl Iterator<Item = (usize, f64)> + 'm {
        self.neighbors(index).iter().copied().filter(move |&(v, _)| alive[index] && alive[v])
    }

    /// Start index per plane (with a trailing total) in the flat node
    /// order — the layout [`crate::snapshot::Snapshot`]s share. The
    /// percolation cluster machinery walks planes through this.
    pub fn plane_offsets(&self) -> &[usize] {
        &self.plane_offsets
    }

    /// Number of planes.
    pub fn n_planes(&self) -> usize {
        self.plane_offsets.len().saturating_sub(1)
    }

    /// Every undirected link as a flat node-index pair `(a, b)` with
    /// `a < b`, in link-emission order — the edge stream the percolation
    /// cluster tracker unions over.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let flat = |id: SatId| self.plane_offsets[id.plane] + id.slot;
        self.links.iter().map(move |l| {
            let (a, b) = (flat(l.a), flat(l.b));
            if a < b {
                (a, b)
            } else {
                (b, a)
            }
        })
    }

    /// Mean node degree.
    pub fn mean_degree(&self) -> f64 {
        if self.n_nodes() == 0 {
            0.0
        } else {
            2.0 * self.links.len() as f64 / self.n_nodes() as f64
        }
    }

    /// Whether the topology is connected (BFS from node 0).
    pub fn is_connected(&self) -> bool {
        let n = self.n_nodes();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::from([0usize]);
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = queue.pop_front() {
            for &(v, _) in self.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    queue.push_back(v);
                }
            }
        }
        count == n
    }

    /// Whether every satellite flagged alive can reach every other over
    /// the topology — connectivity of the degraded network, ignoring the
    /// zero-degree dead nodes a masked
    /// [`Topology::plus_grid`] leaves behind. A network with no
    /// survivors is not connected.
    ///
    /// # Panics
    /// If `alive.len()` is not the node count.
    pub fn is_connected_among(&self, alive: &[bool]) -> bool {
        assert_eq!(alive.len(), self.n_nodes(), "alive mask length mismatch");
        let Some(start) = alive.iter().position(|&a| a) else {
            return false;
        };
        let n_alive = alive.iter().filter(|&&a| a).count();
        let mut seen = vec![false; self.n_nodes()];
        let mut queue = std::collections::VecDeque::from([start]);
        seen[start] = true;
        let mut count = 1;
        while let Some(u) = queue.pop_front() {
            for &(v, _) in self.neighbors(u) {
                if !seen[v] && alive[v] {
                    seen[v] = true;
                    count += 1;
                    queue.push_back(v);
                }
            }
        }
        count == n_alive
    }

    /// Size of the largest connected component among the satellites
    /// flagged alive (0 when nobody is). The graded form of
    /// [`Topology::is_connected_among`]: an attack optimizer minimizing
    /// survivor connectivity needs to distinguish "split 50/50" from
    /// "one straggler cut off", which the boolean cannot.
    ///
    /// # Panics
    /// If `alive.len()` is not the node count.
    pub fn largest_component_among(&self, alive: &[bool]) -> usize {
        assert_eq!(alive.len(), self.n_nodes(), "alive mask length mismatch");
        let mut seen = vec![false; self.n_nodes()];
        let mut queue = std::collections::VecDeque::new();
        let mut largest = 0usize;
        for start in 0..self.n_nodes() {
            if !alive[start] || seen[start] {
                continue;
            }
            seen[start] = true;
            queue.push_back(start);
            let mut size = 1usize;
            while let Some(u) = queue.pop_front() {
                for &(v, _) in self.neighbors(u) {
                    if alive[v] && !seen[v] {
                        seen[v] = true;
                        size += 1;
                        queue.push_back(v);
                    }
                }
            }
            largest = largest.max(size);
        }
        largest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotSeries;
    use ssplane_astro::sunsync::sun_synchronous_orbit;

    /// Snapshot-based +grid at one epoch (the test-suite shorthand).
    fn grid_at(c: &Constellation, t: Epoch, config: GridTopologyConfig) -> Topology {
        let series = SnapshotSeries::build(c, &[t]).unwrap();
        Topology::plus_grid(&series.snapshot(0), config).unwrap()
    }

    fn test_constellation(planes: usize, slots: usize) -> Constellation {
        let epoch = Epoch::J2000;
        let orbit = sun_synchronous_orbit(560.0).unwrap();
        let element_planes: Vec<Vec<OrbitalElements>> = (0..planes)
            .map(|p| orbit.with_ltan(8.0 + p as f64 * 0.8).plane_elements(epoch, slots).unwrap())
            .collect();
        Constellation::new(epoch, element_planes).unwrap()
    }

    #[test]
    fn line_of_sight_geometry() {
        let r = EARTH_RADIUS_KM + 560.0;
        let a = Vec3::new(r, 0.0, 0.0);
        // Neighbor 30° along the orbit: clear.
        let b = Vec3::new(r * 0.866, r * 0.5, 0.0);
        assert!(line_of_sight(a, b, 80.0));
        // Antipodal satellite: blocked by the Earth.
        let c = Vec3::new(-r, 0.0, 0.0);
        assert!(!line_of_sight(a, c, 80.0));
        // Degenerate zero-length segment above surface.
        assert!(line_of_sight(a, a, 80.0));
    }

    #[test]
    fn constellation_accessors() {
        let c = test_constellation(4, 10);
        assert_eq!(c.n_planes(), 4);
        assert_eq!(c.slots_in_plane(0), 10);
        assert_eq!(c.slots_in_plane(9), 0);
        assert_eq!(c.total_sats(), 40);
        assert_eq!(c.ids().len(), 40);
        assert!(c.position(SatId { plane: 7, slot: 0 }, Epoch::J2000).is_err());
        let r = c.position(SatId { plane: 0, slot: 0 }, Epoch::J2000).unwrap();
        assert!((r.norm() - (EARTH_RADIUS_KM + 560.0)).abs() < 30.0);
    }

    #[test]
    fn empty_constellation_rejected() {
        assert!(Constellation::new(Epoch::J2000, vec![]).is_err());
        assert!(Constellation::new(Epoch::J2000, vec![vec![], vec![]]).is_err());
    }

    /// The legacy builder's dedup pass must be order-stable: the link
    /// list is a function of the geometry alone, with no duplicate
    /// undirected pairs and no run-to-run variation (the dedup
    /// membership set is ordered precisely so it cannot reorder links).
    #[test]
    fn plus_grid_at_dedup_is_deterministic() {
        let c = test_constellation(5, 8);
        let config = GridTopologyConfig::default();
        let first = Topology::plus_grid_at(&c, Epoch::J2000, config).unwrap();
        let offsets = c.plane_offsets();
        let flat = |id: SatId| offsets[id.plane] + id.slot;
        let mut pairs = std::collections::BTreeSet::new();
        for l in &first.links {
            let key =
                if flat(l.a) < flat(l.b) { (flat(l.a), flat(l.b)) } else { (flat(l.b), flat(l.a)) };
            assert!(pairs.insert(key), "duplicate undirected link {l:?} survived dedup");
        }
        for _ in 0..3 {
            let again = Topology::plus_grid_at(&c, Epoch::J2000, config).unwrap();
            assert_eq!(first.links, again.links, "link order varied between builds");
        }
    }

    #[test]
    fn from_planes_drops_empty_planes_and_takes_any_geometry() {
        let epoch = Epoch::J2000;
        let orbit = sun_synchronous_orbit(560.0).unwrap();
        let real = orbit.with_ltan(8.0).plane_elements(epoch, 6).unwrap();
        let c = Constellation::from_planes(epoch, vec![vec![], real, vec![]]).unwrap();
        assert_eq!(c.n_planes(), 1);
        assert_eq!(c.total_sats(), 6);
        assert!(Constellation::from_planes(epoch, vec![vec![], vec![]]).is_err());

        // Non-sun-synchronous (Walker-delta) geometry builds and routes
        // through the same +grid machinery (12 sats/plane keeps the
        // intra-plane spacing under the default ISL range).
        let pattern = ssplane_astro::walker::WalkerDelta::new(550.0, 53f64.to_radians(), 96, 8, 1)
            .unwrap()
            .generate()
            .unwrap();
        let planes: Vec<Vec<OrbitalElements>> = pattern.chunks(12).map(<[_]>::to_vec).collect();
        let walker = Constellation::from_planes(epoch, planes).unwrap();
        assert_eq!(walker.n_planes(), 8);
        let topo = grid_at(&walker, epoch, Default::default());
        assert!(topo.is_connected(), "Walker +grid must be connected");
    }

    #[test]
    fn plus_grid_structure() {
        let c = test_constellation(4, 12);
        let topo = grid_at(&c, Epoch::J2000, Default::default());
        assert_eq!(topo.n_nodes(), 48);
        // Ring links: 12 per plane × 4 planes; cross-plane ≈ 12 × 3.
        assert!(topo.links.len() >= 48 + 24, "links = {}", topo.links.len());
        assert!(topo.mean_degree() >= 3.0, "degree = {}", topo.mean_degree());
        assert!(topo.is_connected());
        // index/id round trip.
        for id in c.ids() {
            let idx = topo.index_of(id).unwrap();
            assert_eq!(topo.id_of(idx), Some(id));
        }
        assert!(topo.index_of(SatId { plane: 0, slot: 99 }).is_none());
        assert!(topo.id_of(999).is_none());
    }

    #[test]
    fn range_limit_prunes_links() {
        let c = test_constellation(3, 8);
        let tight = grid_at(
            &c,
            Epoch::J2000,
            GridTopologyConfig { max_range_km: 100.0, ..Default::default() },
        );
        assert!(tight.links.is_empty(), "no link is under 100 km");
        let loose = grid_at(&c, Epoch::J2000, Default::default());
        assert!(!loose.links.is_empty());
    }

    #[test]
    fn all_links_within_range_and_los() {
        let c = test_constellation(5, 15);
        let cfg = GridTopologyConfig::default();
        let topo = grid_at(&c, Epoch::J2000, cfg);
        for l in &topo.links {
            assert!(l.length_km <= cfg.max_range_km);
            let pa = c.position(l.a, Epoch::J2000).unwrap();
            let pb = c.position(l.b, Epoch::J2000).unwrap();
            assert!(line_of_sight(pa, pb, cfg.occlusion_margin_km));
        }
    }

    #[test]
    fn alive_mask_drops_incident_links_only() {
        let c = test_constellation(4, 12);
        let series = SnapshotSeries::build(&c, &[Epoch::J2000]).unwrap();
        let snap = series.snapshot(0);
        let intact = Topology::plus_grid(&snap, Default::default()).unwrap();

        // An all-alive mask is byte-identical to no mask.
        let all = vec![true; 48];
        let same = Topology::plus_grid(&snap.with_alive(&all), Default::default()).unwrap();
        assert_eq!(same.links.len(), intact.links.len());
        for (a, b) in same.links.iter().zip(&intact.links) {
            assert_eq!((a.a, a.b, a.length_km), (b.a, b.b, b.length_km));
        }

        // Kill one satellite: exactly its incident links disappear, no
        // others move.
        let victim = SatId { plane: 1, slot: 5 };
        let mut mask = all.clone();
        mask[intact.index_of(victim).unwrap()] = false;
        let degraded = Topology::plus_grid(&snap.with_alive(&mask), Default::default()).unwrap();
        let expected: Vec<&Link> =
            intact.links.iter().filter(|l| l.a != victim && l.b != victim).collect();
        assert_eq!(degraded.links.len(), expected.len());
        for (got, want) in degraded.links.iter().zip(expected) {
            assert_eq!((got.a, got.b), (want.a, want.b));
        }
        assert!(degraded.neighbors(intact.index_of(victim).unwrap()).is_empty());

        // The survivors stay connected; the full node set (dead node
        // included) does not.
        assert!(degraded.is_connected_among(&mask));
        assert!(!degraded.is_connected());
    }

    #[test]
    fn connectivity_among_survivors() {
        let c = test_constellation(3, 10);
        let series = SnapshotSeries::build(&c, &[Epoch::J2000]).unwrap();
        let snap = series.snapshot(0);
        // Kill the whole middle plane: planes 0 and 2 are only bridged
        // through plane 1, so the survivors split.
        let mut mask = vec![true; 30];
        mask[10..20].fill(false);
        let degraded = Topology::plus_grid(&snap.with_alive(&mask), Default::default()).unwrap();
        assert!(!degraded.is_connected_among(&mask), "severed planes must disconnect");
        // Nobody alive: not connected by definition.
        assert!(!degraded.is_connected_among(&[false; 30]));
        // A single survivor is trivially connected.
        let mut lone = vec![false; 30];
        lone[0] = true;
        assert!(degraded.is_connected_among(&lone));
    }

    #[test]
    fn masked_subgraph_matches_masked_plus_grid() {
        // The incremental fast path's contract: filtering the intact
        // topology by a mask is link-for-link identical to rebuilding
        // plus_grid over the masked snapshot — including adjacency order
        // (and therefore every downstream tie-break).
        let c = test_constellation(5, 12);
        let series = SnapshotSeries::build(&c, &[Epoch::J2000 + 400.0]).unwrap();
        let snap = series.snapshot(0);
        let intact = Topology::plus_grid(&snap, Default::default()).unwrap();
        // Kill a mixed set: a whole plane, scattered slots, a ring pair.
        let mut mask = vec![true; 60];
        mask[12..24].fill(false);
        for flat in [3usize, 30, 31, 47, 59] {
            mask[flat] = false;
        }
        let filtered = intact.masked(&mask);
        let rebuilt = Topology::plus_grid(&snap.with_alive(&mask), Default::default()).unwrap();
        assert_eq!(filtered.links.len(), rebuilt.links.len());
        for (a, b) in filtered.links.iter().zip(&rebuilt.links) {
            assert_eq!((a.a, a.b, a.length_km), (b.a, b.b, b.length_km));
        }
        for node in 0..60 {
            assert_eq!(filtered.neighbors(node), rebuilt.neighbors(node), "node {node}");
        }
        // All-alive filtering is the identity.
        let same = intact.masked(&[true; 60]);
        assert_eq!(same.links.len(), intact.links.len());
        // All-dead filtering leaves a linkless graph.
        assert!(intact.masked(&[false; 60]).links.is_empty());
    }

    #[test]
    fn neighbors_alive_matches_masked_adjacency() {
        // The lazy filter must visit exactly the masked topology's
        // neighbor list, pair for pair, in order — the contract the
        // incremental evaluator's alive-filtered Dijkstra rests on.
        let c = test_constellation(4, 9);
        let series = SnapshotSeries::build(&c, &[Epoch::J2000 + 90.0]).unwrap();
        let intact = Topology::plus_grid(&series.snapshot(0), Default::default()).unwrap();
        let n = intact.n_nodes();
        let mut mask = vec![true; n];
        for flat in (0..n).step_by(4) {
            mask[flat] = false;
        }
        mask[9..18].fill(false);
        let masked = intact.masked(&mask);
        for node in 0..n {
            let lazy: Vec<(usize, f64)> = intact.neighbors_alive(node, &mask).collect();
            assert_eq!(lazy.as_slice(), masked.neighbors(node), "node {node}");
        }
        // All-alive is the identity; all-dead leaves every list empty.
        let all = vec![true; n];
        for node in 0..n {
            let lazy: Vec<(usize, f64)> = intact.neighbors_alive(node, &all).collect();
            assert_eq!(lazy.as_slice(), intact.neighbors(node));
        }
        let none = vec![false; n];
        assert!((0..n).all(|v| intact.neighbors_alive(v, &none).next().is_none()));
    }

    #[test]
    fn largest_component_grades_connectivity() {
        let c = test_constellation(3, 10);
        let series = SnapshotSeries::build(&c, &[Epoch::J2000]).unwrap();
        let snap = series.snapshot(0);
        let topo = Topology::plus_grid(&snap, Default::default()).unwrap();
        let all = vec![true; 30];
        assert_eq!(topo.largest_component_among(&all), 30, "intact +grid is one component");
        // Kill the middle plane: survivors split into the two outer
        // plane rings of 10 each.
        let mut mask = all.clone();
        mask[10..20].fill(false);
        let degraded = topo.masked(&mask);
        assert!(!degraded.is_connected_among(&mask));
        assert_eq!(degraded.largest_component_among(&mask), 10);
        // Nobody alive: size 0; one survivor: size 1.
        assert_eq!(topo.largest_component_among(&[false; 30]), 0);
        let mut lone = vec![false; 30];
        lone[7] = true;
        assert_eq!(topo.largest_component_among(&lone), 1);
    }

    #[test]
    fn wrap_planes_adds_links() {
        let c = test_constellation(5, 8);
        let open = grid_at(&c, Epoch::J2000, Default::default());
        let wrapped = grid_at(
            &c,
            Epoch::J2000,
            GridTopologyConfig { wrap_planes: true, ..Default::default() },
        );
        assert!(wrapped.links.len() >= open.links.len());
    }
}
