//! Flow-level traffic assignment over ISL topologies.
//!
//! §5(1): bandwidth allocation should "exploit the regularity of human
//! activity". This module generates ground-to-ground flows weighted by the
//! spatiotemporal demand model, routes them over a topology snapshot, and
//! reports link utilization and latency stretch — the metrics a time-aware
//! traffic engineer would optimize.

use crate::error::{LsnError, Result};
use crate::routing::{
    assemble_route, great_circle_delay_ms, shortest_path, Route, ServingIndex, ShortestPathTree,
};
use crate::snapshot::Snapshot;
use crate::topology::{SatId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssplane_astro::geo::GeoPoint;
use ssplane_demand::DemandModel;
use std::collections::BTreeMap;

/// A ground-to-ground traffic flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flow {
    /// Source terminal.
    pub src: GeoPoint,
    /// Destination terminal.
    pub dst: GeoPoint,
    /// Offered load \[arbitrary capacity units\].
    pub demand: f64,
}

/// Samples `n` flows with endpoints drawn from the demand model at the
/// given UTC hour (rejection sampling against the Earth-fixed demand
/// snapshot) — busy regions originate and attract proportionally more
/// traffic.
pub fn sample_flows(model: &DemandModel, utc_hour: f64, n: usize, seed: u64) -> Vec<Flow> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Upper bound for rejection sampling.
    let mut max_d: f64 = 1e-12;
    for lat in (-60..=70).step_by(5) {
        for lon in (-180..180).step_by(10) {
            max_d = max_d.max(model.demand_at_utc(lat as f64, lon as f64, utc_hour));
        }
    }
    let sample_point = |rng: &mut StdRng| -> GeoPoint {
        loop {
            // cos-weighted latitude for uniform-area proposals.
            let lat = (rng.gen::<f64>() * 2.0 - 1.0).asin().to_degrees();
            let lon = rng.gen::<f64>() * 360.0 - 180.0;
            let d = model.demand_at_utc(lat, lon, utc_hour);
            if rng.gen::<f64>() * max_d <= d {
                return GeoPoint::from_degrees(lat, lon);
            }
        }
    };
    (0..n)
        .map(|_| {
            let src = sample_point(&mut rng);
            let dst = sample_point(&mut rng);
            Flow { src, dst, demand: 0.5 + rng.gen::<f64>() }
        })
        .collect()
}

/// The per-flow routing outcome a time-resolved analysis needs: enough
/// to compute delay percentiles and serving-pair handoffs across slots
/// without keeping whole routes alive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowOutcome {
    /// End-to-end delay \[ms\].
    pub delay_ms: f64,
    /// The serving pair (first/last hop).
    pub ends: (SatId, SatId),
}

/// Result of assigning flows to a snapshot.
#[derive(Debug, Clone)]
pub struct TrafficReport {
    /// Flows successfully routed.
    pub routed: usize,
    /// Flows with no route (endpoint uncovered or partition).
    pub unrouted: usize,
    /// Load per directed link (keyed by ordered satellite pair). A
    /// `BTreeMap` so iteration — and therefore the floating-point
    /// summation order of the aggregate statistics — is deterministic:
    /// the scenario engine's byte-identical-output contract covers the
    /// network stage too.
    pub link_load: BTreeMap<(SatId, SatId), f64>,
    /// Mean latency stretch over routed flows: route delay / great-circle
    /// fiber delay.
    pub mean_stretch: f64,
    /// Mean hop count of routed flows.
    pub mean_hops: f64,
    /// Per-flow outcomes, index-aligned with the input flow list (`None`
    /// where unrouted) — the raw material for slot-to-slot handoff and
    /// delay-distribution statistics.
    pub flow_outcomes: Vec<Option<FlowOutcome>>,
    /// The per-link capacity the load statistics normalize by.
    /// [`assign_traffic`] reports raw offered load (capacity `1.0`, the
    /// historical behavior); a capacity-aware caller
    /// ([`assign_traffic_with_capacity`]) turns the same statistics into
    /// link *utilization*.
    pub link_capacity: f64,
}

impl TrafficReport {
    /// The maximum utilization on any link (raw load at unit capacity).
    pub fn max_link_load(&self) -> f64 {
        self.link_load.values().cloned().fold(0.0, f64::max) / self.link_capacity
    }

    /// Mean utilization over loaded links (raw load at unit capacity).
    pub fn mean_link_load(&self) -> f64 {
        if self.link_load.is_empty() {
            0.0
        } else {
            self.link_load.values().sum::<f64>() / self.link_load.len() as f64 / self.link_capacity
        }
    }
}

/// Routes every flow at the snapshot's epoch and accumulates per-link
/// load. Ground attachment reads positions from the snapshot (no
/// propagation), and flows sharing a serving satellite share one cached
/// [`ShortestPathTree`] instead of re-running Dijkstra per pair — both
/// produce bit-identical routes to the per-flow reference path.
///
/// # Errors
/// Propagates topology failure; per-flow unreachability is counted, not
/// raised.
pub fn assign_traffic(
    snapshot: &Snapshot<'_>,
    topology: &Topology,
    flows: &[Flow],
    min_elevation: f64,
) -> Result<TrafficReport> {
    assign_traffic_with_capacity(snapshot, topology, flows, min_elevation, 1.0)
}

/// [`assign_traffic`] with an explicit per-link capacity: routing is
/// identical (shortest paths, no admission control — the
/// capacity-*constrained* engine is [`crate::traffic_engine`]), but the
/// report's load statistics read as utilization of `link_capacity`.
/// Capacity `1.0` is byte-identical to [`assign_traffic`].
///
/// # Errors
/// Propagates topology failure; per-flow unreachability is counted, not
/// raised.
pub fn assign_traffic_with_capacity(
    snapshot: &Snapshot<'_>,
    topology: &Topology,
    flows: &[Flow],
    min_elevation: f64,
    link_capacity: f64,
) -> Result<TrafficReport> {
    // Resolve ground attachment up front: one declination-pruned index
    // per snapshot, one exact query per *distinct* endpoint (demand
    // sampling concentrates endpoints in cities, so flows share them).
    let index = ServingIndex::new(*snapshot, min_elevation);
    let mut endpoint_cache: BTreeMap<(u64, u64), Option<SatId>> = BTreeMap::new();
    let mut serve = |p: GeoPoint| -> Option<SatId> {
        *endpoint_cache
            .entry((p.lat.to_bits(), p.lon.to_bits()))
            .or_insert_with(|| index.query(p).map(|(id, _)| id))
    };
    let pairs: Vec<Option<(SatId, SatId)>> =
        flows.iter().map(|f| serve(f.src).zip(serve(f.dst))).collect();
    // Sources serving several flows amortize one full Dijkstra tree;
    // one-flow sources keep the cheaper early-exit per-pair search.
    let mut source_flows: BTreeMap<SatId, usize> = BTreeMap::new();
    for (s_sat, d_sat) in pairs.iter().flatten() {
        if s_sat != d_sat {
            *source_flows.entry(*s_sat).or_insert(0) += 1;
        }
    }

    let mut link_load: BTreeMap<(SatId, SatId), f64> = BTreeMap::new();
    let mut routed = 0usize;
    let mut unrouted = 0usize;
    let mut stretch_sum = 0.0;
    let mut hop_sum = 0usize;
    let mut flow_outcomes: Vec<Option<FlowOutcome>> = Vec::with_capacity(flows.len());
    let mut trees: BTreeMap<SatId, ShortestPathTree> = BTreeMap::new();
    for (flow, pair) in flows.iter().zip(&pairs) {
        let Some((s_sat, d_sat)) = *pair else {
            unrouted += 1;
            flow_outcomes.push(None);
            continue;
        };
        let isl = if s_sat == d_sat {
            Ok((vec![s_sat], 0.0))
        } else if source_flows[&s_sat] > 1 {
            let tree = match trees.entry(s_sat) {
                std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(ShortestPathTree::from_source(topology, s_sat)?)
                }
            };
            tree.path_to(topology, d_sat)
        } else {
            shortest_path(topology, s_sat, d_sat)
        };
        let route: Route = match isl {
            Ok((hops, isl_km)) => {
                assemble_route(snapshot, flow.src, flow.dst, s_sat, d_sat, hops, isl_km)?
            }
            Err(LsnError::NoRoute) => {
                unrouted += 1;
                flow_outcomes.push(None);
                continue;
            }
            Err(e) => return Err(e),
        };
        routed += 1;
        hop_sum += route.hops.len();
        let fiber = great_circle_delay_ms(flow.src, flow.dst).max(0.1);
        stretch_sum += route.delay_ms / fiber;
        for pair in route.hops.windows(2) {
            *link_load.entry((pair[0], pair[1])).or_insert(0.0) += flow.demand;
        }
        flow_outcomes.push(Some(FlowOutcome { delay_ms: route.delay_ms, ends: (s_sat, d_sat) }));
    }
    Ok(TrafficReport {
        routed,
        unrouted,
        link_load,
        mean_stretch: if routed == 0 { f64::NAN } else { stretch_sum / routed as f64 },
        mean_hops: if routed == 0 { f64::NAN } else { hop_sum as f64 / routed as f64 },
        flow_outcomes,
        link_capacity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotSeries;
    use crate::topology::{Constellation, GridTopologyConfig};
    use ssplane_astro::kepler::OrbitalElements;
    use ssplane_astro::sunsync::sun_synchronous_orbit;
    use ssplane_astro::time::Epoch;
    use ssplane_demand::diurnal::DiurnalModel;
    use ssplane_demand::population::{PopulationConfig, PopulationGrid};

    fn model() -> DemandModel {
        DemandModel::new(
            PopulationGrid::synthetic(PopulationConfig {
                lat_bins: 90,
                lon_bins: 180,
                n_cities: 400,
                seed: 42,
            })
            .unwrap(),
            DiurnalModel::default(),
        )
    }

    fn constellation() -> Constellation {
        let epoch = Epoch::J2000;
        let orbit = sun_synchronous_orbit(560.0).unwrap();
        let planes: Vec<Vec<OrbitalElements>> = (0..10)
            .map(|p| orbit.with_ltan(p as f64 * 2.4).plane_elements(epoch, 24).unwrap())
            .collect();
        Constellation::new(epoch, planes).unwrap()
    }

    #[test]
    fn flows_deterministic_and_in_populated_areas() {
        let m = model();
        let flows = sample_flows(&m, 12.0, 40, 7);
        assert_eq!(flows.len(), 40);
        assert_eq!(sample_flows(&m, 12.0, 40, 7)[0].src, flows[0].src);
        // Flow endpoints should cluster at inhabited latitudes.
        let mean_abs_lat: f64 =
            flows.iter().map(|f| f.src.lat.abs().to_degrees()).sum::<f64>() / 40.0;
        assert!(mean_abs_lat < 50.0, "mean |lat| = {mean_abs_lat}");
        for f in &flows {
            assert!(f.demand > 0.0);
        }
    }

    #[test]
    fn traffic_assignment_end_to_end() {
        let c = constellation();
        let series = SnapshotSeries::build(&c, &[Epoch::J2000]).unwrap();
        let snap = series.snapshot(0);
        let topo = Topology::plus_grid(&snap, GridTopologyConfig::default()).unwrap();
        let flows = sample_flows(&model(), 12.0, 30, 3);
        let report = assign_traffic(&snap, &topo, &flows, 25f64.to_radians()).unwrap();
        assert_eq!(report.routed + report.unrouted, 30);
        assert!(report.routed > 0, "some flows must route on a 240-sat constellation");
        if report.routed > 0 {
            assert!(report.mean_stretch >= 1.0, "stretch {}", report.mean_stretch);
            assert!(report.mean_hops >= 1.0);
            assert!(report.max_link_load() >= report.mean_link_load());
        }
        // Per-flow outcomes line up with the aggregate counts.
        assert_eq!(report.flow_outcomes.len(), 30);
        assert_eq!(report.flow_outcomes.iter().flatten().count(), report.routed);
        for outcome in report.flow_outcomes.iter().flatten() {
            assert!(outcome.delay_ms > 0.0);
        }
    }

    #[test]
    fn cached_trees_match_per_flow_routing() {
        // The per-source Dijkstra cache must be invisible: routing the
        // same flow list one flow at a time through the uncached
        // reference path gives identical aggregates.
        let c = constellation();
        let series = SnapshotSeries::build(&c, &[Epoch::J2000]).unwrap();
        let snap = series.snapshot(0);
        let topo = Topology::plus_grid(&snap, GridTopologyConfig::default()).unwrap();
        let flows = sample_flows(&model(), 9.0, 40, 11);
        let batched = assign_traffic(&snap, &topo, &flows, 25f64.to_radians()).unwrap();
        for (flow, outcome) in flows.iter().zip(&batched.flow_outcomes) {
            let reference = crate::routing::route_ground_to_ground(
                &snap,
                &topo,
                flow.src,
                flow.dst,
                25f64.to_radians(),
            );
            match (reference, outcome) {
                (Ok(route), Some(out)) => {
                    assert_eq!(route.delay_ms, out.delay_ms);
                    assert_eq!(
                        (*route.hops.first().unwrap(), *route.hops.last().unwrap()),
                        out.ends
                    );
                }
                (Err(LsnError::NoRoute), None) => {}
                (r, o) => panic!("divergent flow outcome: {r:?} vs {o:?}"),
            }
        }
    }

    #[test]
    fn masked_assignment_routes_around_dead_satellites() {
        // The degraded-network coupling: the same flows over the same
        // snapshot with half a plane destroyed must route no *more*
        // flows, never transit a dead satellite, and still be
        // deterministic.
        let c = constellation();
        let series = SnapshotSeries::build(&c, &[Epoch::J2000]).unwrap();
        let snap = series.snapshot(0);
        let flows = sample_flows(&model(), 12.0, 40, 5);
        let intact_topo = Topology::plus_grid(&snap, GridTopologyConfig::default()).unwrap();
        let intact = assign_traffic(&snap, &intact_topo, &flows, 25f64.to_radians()).unwrap();

        let mut mask = vec![true; snap.total_sats()];
        for (flat, alive) in mask.iter_mut().enumerate() {
            if flat % 24 < 12 && flat < 5 * 24 {
                *alive = false; // half of each of the first 5 planes
            }
        }
        let masked = snap.with_alive(&mask);
        let degraded_topo = Topology::plus_grid(&masked, GridTopologyConfig::default()).unwrap();
        let degraded = assign_traffic(&masked, &degraded_topo, &flows, 25f64.to_radians()).unwrap();
        assert!(degraded.routed <= intact.routed);
        assert_eq!(degraded.routed + degraded.unrouted, 40);
        for (a, b) in degraded.link_load.keys().map(|&(a, b)| (a, b)) {
            for end in [a, b] {
                assert!(mask[snap.flat_index(end).unwrap()], "load crosses dead sat {end:?}");
            }
        }
        let rerun = assign_traffic(&masked, &degraded_topo, &flows, 25f64.to_radians()).unwrap();
        assert_eq!(rerun.routed, degraded.routed);
        assert_eq!(rerun.link_load, degraded.link_load);
    }

    #[test]
    fn capacity_normalizes_the_load_statistics() {
        // Unit capacity is the historical raw-load report; capacity c
        // divides both load statistics by exactly c and changes nothing
        // else.
        let c = constellation();
        let series = SnapshotSeries::build(&c, &[Epoch::J2000]).unwrap();
        let snap = series.snapshot(0);
        let topo = Topology::plus_grid(&snap, GridTopologyConfig::default()).unwrap();
        let flows = sample_flows(&model(), 12.0, 30, 3);
        let unit = assign_traffic(&snap, &topo, &flows, 25f64.to_radians()).unwrap();
        assert_eq!(unit.link_capacity, 1.0);
        let scaled =
            assign_traffic_with_capacity(&snap, &topo, &flows, 25f64.to_radians(), 2.0).unwrap();
        assert_eq!(scaled.routed, unit.routed);
        assert_eq!(scaled.link_load, unit.link_load, "raw loads are capacity-independent");
        assert!((scaled.max_link_load() - unit.max_link_load() / 2.0).abs() < 1e-12);
        assert!((scaled.mean_link_load() - unit.mean_link_load() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_flow_list() {
        let c = constellation();
        let series = SnapshotSeries::build(&c, &[Epoch::J2000]).unwrap();
        let snap = series.snapshot(0);
        let topo = Topology::plus_grid(&snap, GridTopologyConfig::default()).unwrap();
        let report = assign_traffic(&snap, &topo, &[], 0.5).unwrap();
        assert_eq!(report.routed, 0);
        assert_eq!(report.unrouted, 0);
        assert!(report.link_load.is_empty());
        assert!(report.mean_stretch.is_nan());
        assert_eq!(report.max_link_load(), 0.0);
        assert_eq!(report.mean_link_load(), 0.0);
        assert!(report.flow_outcomes.is_empty());
    }
}
