//! Flow-level traffic assignment over ISL topologies.
//!
//! §5(1): bandwidth allocation should "exploit the regularity of human
//! activity". This module generates ground-to-ground flows weighted by the
//! spatiotemporal demand model, routes them over a topology snapshot, and
//! reports link utilization and latency stretch — the metrics a time-aware
//! traffic engineer would optimize.

use crate::error::{LsnError, Result};
use crate::routing::{great_circle_delay_ms, route_ground_to_ground, Route};
use crate::topology::{Constellation, SatId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssplane_astro::geo::GeoPoint;
use ssplane_astro::time::Epoch;
use ssplane_demand::DemandModel;
use std::collections::BTreeMap;

/// A ground-to-ground traffic flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flow {
    /// Source terminal.
    pub src: GeoPoint,
    /// Destination terminal.
    pub dst: GeoPoint,
    /// Offered load \[arbitrary capacity units\].
    pub demand: f64,
}

/// Samples `n` flows with endpoints drawn from the demand model at the
/// given UTC hour (rejection sampling against the Earth-fixed demand
/// snapshot) — busy regions originate and attract proportionally more
/// traffic.
pub fn sample_flows(model: &DemandModel, utc_hour: f64, n: usize, seed: u64) -> Vec<Flow> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Upper bound for rejection sampling.
    let mut max_d: f64 = 1e-12;
    for lat in (-60..=70).step_by(5) {
        for lon in (-180..180).step_by(10) {
            max_d = max_d.max(model.demand_at_utc(lat as f64, lon as f64, utc_hour));
        }
    }
    let sample_point = |rng: &mut StdRng| -> GeoPoint {
        loop {
            // cos-weighted latitude for uniform-area proposals.
            let lat = (rng.gen::<f64>() * 2.0 - 1.0).asin().to_degrees();
            let lon = rng.gen::<f64>() * 360.0 - 180.0;
            let d = model.demand_at_utc(lat, lon, utc_hour);
            if rng.gen::<f64>() * max_d <= d {
                return GeoPoint::from_degrees(lat, lon);
            }
        }
    };
    (0..n)
        .map(|_| {
            let src = sample_point(&mut rng);
            let dst = sample_point(&mut rng);
            Flow { src, dst, demand: 0.5 + rng.gen::<f64>() }
        })
        .collect()
}

/// Result of assigning flows to a snapshot.
#[derive(Debug, Clone)]
pub struct TrafficReport {
    /// Flows successfully routed.
    pub routed: usize,
    /// Flows with no route (endpoint uncovered or partition).
    pub unrouted: usize,
    /// Load per directed link (keyed by ordered satellite pair). A
    /// `BTreeMap` so iteration — and therefore the floating-point
    /// summation order of the aggregate statistics — is deterministic:
    /// the scenario engine's byte-identical-output contract covers the
    /// network stage too.
    pub link_load: BTreeMap<(SatId, SatId), f64>,
    /// Mean latency stretch over routed flows: route delay / great-circle
    /// fiber delay.
    pub mean_stretch: f64,
    /// Mean hop count of routed flows.
    pub mean_hops: f64,
}

impl TrafficReport {
    /// The maximum load on any link.
    pub fn max_link_load(&self) -> f64 {
        self.link_load.values().cloned().fold(0.0, f64::max)
    }

    /// Mean load over loaded links.
    pub fn mean_link_load(&self) -> f64 {
        if self.link_load.is_empty() {
            0.0
        } else {
            self.link_load.values().sum::<f64>() / self.link_load.len() as f64
        }
    }
}

/// Routes every flow at epoch `t` and accumulates per-link load.
///
/// # Errors
/// Propagates topology/propagation failure; per-flow unreachability is
/// counted, not raised.
pub fn assign_traffic(
    constellation: &Constellation,
    topology: &Topology,
    flows: &[Flow],
    t: Epoch,
    min_elevation: f64,
) -> Result<TrafficReport> {
    let mut link_load: BTreeMap<(SatId, SatId), f64> = BTreeMap::new();
    let mut routed = 0usize;
    let mut unrouted = 0usize;
    let mut stretch_sum = 0.0;
    let mut hop_sum = 0usize;
    for flow in flows {
        let route: Route = match route_ground_to_ground(
            constellation,
            topology,
            flow.src,
            flow.dst,
            t,
            min_elevation,
        ) {
            Ok(r) => r,
            Err(LsnError::NoRoute) => {
                unrouted += 1;
                continue;
            }
            Err(e) => return Err(e),
        };
        routed += 1;
        hop_sum += route.hops.len();
        let fiber = great_circle_delay_ms(flow.src, flow.dst).max(0.1);
        stretch_sum += route.delay_ms / fiber;
        for pair in route.hops.windows(2) {
            *link_load.entry((pair[0], pair[1])).or_insert(0.0) += flow.demand;
        }
    }
    Ok(TrafficReport {
        routed,
        unrouted,
        link_load,
        mean_stretch: if routed == 0 { f64::NAN } else { stretch_sum / routed as f64 },
        mean_hops: if routed == 0 { f64::NAN } else { hop_sum as f64 / routed as f64 },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::GridTopologyConfig;
    use ssplane_astro::kepler::OrbitalElements;
    use ssplane_astro::sunsync::sun_synchronous_orbit;
    use ssplane_demand::diurnal::DiurnalModel;
    use ssplane_demand::population::{PopulationConfig, PopulationGrid};

    fn model() -> DemandModel {
        DemandModel::new(
            PopulationGrid::synthetic(PopulationConfig {
                lat_bins: 90,
                lon_bins: 180,
                n_cities: 400,
                seed: 42,
            })
            .unwrap(),
            DiurnalModel::default(),
        )
    }

    fn constellation() -> Constellation {
        let epoch = Epoch::J2000;
        let orbit = sun_synchronous_orbit(560.0).unwrap();
        let planes: Vec<Vec<OrbitalElements>> = (0..10)
            .map(|p| orbit.with_ltan(p as f64 * 2.4).plane_elements(epoch, 24).unwrap())
            .collect();
        Constellation::new(epoch, planes).unwrap()
    }

    #[test]
    fn flows_deterministic_and_in_populated_areas() {
        let m = model();
        let flows = sample_flows(&m, 12.0, 40, 7);
        assert_eq!(flows.len(), 40);
        assert_eq!(sample_flows(&m, 12.0, 40, 7)[0].src, flows[0].src);
        // Flow endpoints should cluster at inhabited latitudes.
        let mean_abs_lat: f64 =
            flows.iter().map(|f| f.src.lat.abs().to_degrees()).sum::<f64>() / 40.0;
        assert!(mean_abs_lat < 50.0, "mean |lat| = {mean_abs_lat}");
        for f in &flows {
            assert!(f.demand > 0.0);
        }
    }

    #[test]
    fn traffic_assignment_end_to_end() {
        let c = constellation();
        let t = Epoch::J2000;
        let topo = Topology::plus_grid(&c, t, GridTopologyConfig::default()).unwrap();
        let flows = sample_flows(&model(), 12.0, 30, 3);
        let report = assign_traffic(&c, &topo, &flows, t, 25f64.to_radians()).unwrap();
        assert_eq!(report.routed + report.unrouted, 30);
        assert!(report.routed > 0, "some flows must route on a 240-sat constellation");
        if report.routed > 0 {
            assert!(report.mean_stretch >= 1.0, "stretch {}", report.mean_stretch);
            assert!(report.mean_hops >= 1.0);
            assert!(report.max_link_load() >= report.mean_link_load());
        }
    }

    #[test]
    fn empty_flow_list() {
        let c = constellation();
        let t = Epoch::J2000;
        let topo = Topology::plus_grid(&c, t, GridTopologyConfig::default()).unwrap();
        let report = assign_traffic(&c, &topo, &[], t, 0.5).unwrap();
        assert_eq!(report.routed, 0);
        assert_eq!(report.unrouted, 0);
        assert!(report.link_load.is_empty());
        assert!(report.mean_stretch.is_nan());
        assert_eq!(report.max_link_load(), 0.0);
        assert_eq!(report.mean_link_load(), 0.0);
    }
}
