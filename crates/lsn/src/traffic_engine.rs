//! The population-scale traffic engine: attachment aggregation and
//! capacity-constrained k-path assignment with a served-demand metric.
//!
//! [`crate::traffic::assign_traffic`] piles every flow onto one shortest
//! path and counts *routed flows* — fine for a hand-sized sample, but at
//! 10⁵–10⁶ gravity-model flows ([`ssplane_demand::gravity`]) the
//! questions change: how much of the offered demand is actually
//! **served** once links have finite capacity, and what do the survivors
//! carry? This module answers them in three stages:
//!
//! 1. **Attachment aggregation** — every flow endpoint resolves to its
//!    serving satellite through one [`ServingIndex`] (one exact query per
//!    *distinct* endpoint — gravity flows reuse a few hundred sites), and
//!    flows collapse into per-(source satellite, destination satellite)
//!    demand. Per-slot routing cost then scales with *attachment points*,
//!    not users: a million flows between 256 sites cost the same routing
//!    work as one flow per site pair.
//! 2. **k-path candidates** — per distinct source satellite, `k_paths`
//!    rounds of penalized Dijkstra (edges of already-chosen paths get
//!    their weight inflated each round, the classic path-diversity
//!    penalty scheme) produce up to `k` loop-free candidate paths per
//!    destination, shortest first, deduplicated.
//! 3. **Waterfilling with drop accounting** — aggregated pairs are
//!    visited in deterministic (source, destination) order; each pair's
//!    demand spills across its candidate paths in order, bounded by the
//!    minimum *residual* capacity along each path (ECMP-style splitting
//!    with saturation). Demand that no candidate path can carry is
//!    **dropped**; demand with an uncovered endpoint is **unattached**.
//!    `served + dropped + unattached = offered` by construction.
//!
//! The output is a [`ServedDemandSummary`]: the served-demand fraction
//! plus link-utilization percentiles — the capacity-aware counterpart of
//! the routed-fraction metric, and the `served-demand` objective of the
//! adversarial attack search ([`crate::optimizer`]).
//!
//! Everything is deterministic: aggregation and waterfilling iterate
//! `BTreeMap`s, and the penalized Dijkstra breaks distance ties on node
//! index exactly like the routing module's.

use crate::error::Result;
use crate::routing::ServingIndex;
use crate::snapshot::Snapshot;
use crate::topology::Topology;
use crate::traffic::Flow;
use ssplane_astro::geo::GeoPoint;
use ssplane_demand::gravity::GravityFlow;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

/// Capacity and path-diversity configuration of one assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityConfig {
    /// Per-directed-ISL capacity, in the same units as flow demand.
    pub link_capacity: f64,
    /// Candidate paths per satellite pair (≥ 1; 1 = single shortest
    /// path with saturation).
    pub k_paths: usize,
}

impl Default for CapacityConfig {
    fn default() -> Self {
        CapacityConfig { link_capacity: 1.0, k_paths: 3 }
    }
}

/// A population-scale workload: the flow list plus the capacity model it
/// is assigned under. Built once per scenario and shared by the intact
/// and degraded passes.
#[derive(Debug, Clone)]
pub struct TrafficWorkload {
    /// Ground-to-ground flows (typically gravity-model output).
    pub flows: Vec<Flow>,
    /// The capacity model.
    pub capacity: CapacityConfig,
}

impl TrafficWorkload {
    /// Builds a workload from gravity-model flows, rescaling rates by
    /// `scale` (e.g. from grid demand mass to satellite-capacity units).
    pub fn from_gravity(gravity: &[GravityFlow], scale: f64, capacity: CapacityConfig) -> Self {
        let flows = gravity
            .iter()
            .map(|g| Flow {
                src: GeoPoint::from_degrees(g.src_lat_deg, g.src_lon_deg),
                dst: GeoPoint::from_degrees(g.dst_lat_deg, g.dst_lon_deg),
                demand: g.rate * scale,
            })
            .collect();
        TrafficWorkload { flows, capacity }
    }

    /// Total offered demand.
    pub fn offered(&self) -> f64 {
        self.flows.iter().map(|f| f.demand).sum()
    }
}

/// What one capacity-constrained assignment served, dropped, and loaded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServedDemandSummary {
    /// Flows offered.
    pub flows: usize,
    /// Distinct (source satellite, destination satellite) attachment
    /// pairs the flows collapsed into.
    pub pairs: usize,
    /// Total offered demand.
    pub offered: f64,
    /// Demand actually carried (including same-satellite local demand,
    /// which needs no ISL).
    pub served: f64,
    /// Demand attached at both ends but beyond what the candidate paths'
    /// residual capacity could carry (saturation and partitions).
    pub dropped: f64,
    /// Demand with at least one endpoint no satellite serves.
    pub unattached: f64,
    /// `served / offered` (0 when nothing is offered).
    pub served_fraction: f64,
    /// Median link utilization (load / capacity) over loaded links.
    pub utilization_p50: f64,
    /// 90th-percentile link utilization.
    pub utilization_p90: f64,
    /// 99th-percentile link utilization.
    pub utilization_p99: f64,
    /// Peak link utilization (≤ 1 by construction).
    pub utilization_max: f64,
}

impl ServedDemandSummary {
    pub(crate) fn empty(flows: usize, unattached: f64, offered: f64) -> Self {
        ServedDemandSummary {
            flows,
            pairs: 0,
            offered,
            served: 0.0,
            dropped: 0.0,
            unattached,
            served_fraction: 0.0,
            utilization_p50: 0.0,
            utilization_p90: 0.0,
            utilization_p99: 0.0,
            utilization_max: 0.0,
        }
    }
}

/// Dijkstra state (min-heap on penalized distance, ties on node index so
/// reconstruction is deterministic).
#[derive(Debug, PartialEq)]
struct HeapItem {
    dist: f64,
    node: usize,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then(other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Full single-source Dijkstra where every directed edge's weight is
/// inflated by its accumulated penalty — the diversity mechanism of the
/// k-path rounds. An empty penalty map is the plain shortest-path tree.
///
/// `alive` restricts the run to a node mask exactly as
/// [`Topology::neighbors_alive`] would: relaxations into (or out of) dead
/// nodes are skipped, so the output is bit-identical to running over
/// [`Topology::masked`] — the same lengths in the same canonical
/// `(dist, node)` order, hence the same `prev` choices. Penalty keys are
/// flat node pairs, which masking preserves (nodes are never renumbered).
fn penalized_dijkstra(
    topology: &Topology,
    src: usize,
    penalty: &BTreeMap<(usize, usize), f64>,
    alive: Option<&[bool]>,
) -> (Vec<f64>, Vec<usize>) {
    let n = topology.n_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev = vec![usize::MAX; n];
    let mut heap = BinaryHeap::new();
    dist[src] = 0.0;
    // A dead source keeps its zero label but reaches nothing, exactly as
    // in the masked topology where it has no surviving links.
    if alive.is_none_or(|m| m[src]) {
        heap.push(HeapItem { dist: 0.0, node: src });
    }
    while let Some(HeapItem { dist: d, node }) = heap.pop() {
        if d > dist[node] {
            continue;
        }
        for &(next, w) in topology.neighbors(node) {
            if let Some(m) = alive {
                if !m[next] {
                    continue;
                }
            }
            let factor = 1.0 + penalty.get(&(node, next)).copied().unwrap_or(0.0);
            let nd = d + w * factor;
            if nd < dist[next] {
                dist[next] = nd;
                prev[next] = node;
                heap.push(HeapItem { dist: nd, node: next });
            }
        }
    }
    (dist, prev)
}

/// The node path `src → dst` out of a predecessor array.
fn reconstruct(prev: &[usize], src: usize, dst: usize) -> Vec<usize> {
    let mut path = vec![dst];
    let mut node = dst;
    while node != src {
        node = prev[node];
        path.push(node);
    }
    path.reverse();
    path
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = crate::cast::f64_to_index((q * sorted.len() as f64).ceil());
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Stage-1 output: how the flow list classified under some attachment
/// resolution — shared between the from-scratch assignment and the
/// incremental evaluator (which replays it with cached per-flow servers).
pub(crate) struct AttachmentTally {
    /// Demand with at least one unserved endpoint.
    pub(crate) unattached: f64,
    /// Same-satellite demand, served without touching an ISL.
    pub(crate) local_served: f64,
    /// Per-(source satellite, destination satellite) aggregated demand.
    pub(crate) demand: BTreeMap<(usize, usize), f64>,
}

/// Classifies every flow through `serve_pair(flow index, flow)` →
/// (source server, destination server), accumulating in flow order —
/// the exact summation order of the original single-pass loop, so any
/// resolver that returns the same servers reproduces the tally bit for
/// bit.
pub(crate) fn aggregate_attachments<F>(flows: &[Flow], mut serve_pair: F) -> AttachmentTally
where
    F: FnMut(usize, &Flow) -> (Option<usize>, Option<usize>),
{
    let mut tally = AttachmentTally { unattached: 0.0, local_served: 0.0, demand: BTreeMap::new() };
    for (i, flow) in flows.iter().enumerate() {
        match serve_pair(i, flow) {
            (Some(s), Some(d)) if s == d => tally.local_served += flow.demand,
            (Some(s), Some(d)) => *tally.demand.entry((s, d)).or_insert(0.0) += flow.demand,
            _ => tally.unattached += flow.demand,
        }
    }
    tally
}

/// Stage 2 for one source satellite: `k` rounds of penalized Dijkstra
/// over `dsts` (ascending — the `BTreeMap` key order the caller groups
/// by), returning up to `k` deduplicated candidate paths per
/// destination, shortest first. With an `alive` mask the rounds run
/// alive-filtered, which is bit-identical to running them over
/// [`Topology::masked`] (penalties key flat node pairs, and masking
/// never renumbers nodes).
pub(crate) fn k_paths_for_source(
    topology: &Topology,
    s: usize,
    dsts: &[usize],
    k: usize,
    alive: Option<&[bool]>,
) -> BTreeMap<usize, Vec<Vec<usize>>> {
    let mut penalty: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    let mut paths: BTreeMap<usize, Vec<Vec<usize>>> = BTreeMap::new();
    for round in 0..k {
        let (dist, prev) = penalized_dijkstra(topology, s, &penalty, alive);
        let mut round_edges: BTreeSet<(usize, usize)> = BTreeSet::new();
        for &d in dsts {
            if !dist[d].is_finite() {
                continue;
            }
            let path = reconstruct(&prev, s, d);
            for hop in path.windows(2) {
                round_edges.insert((hop[0], hop[1]));
            }
            let entry = paths.entry(d).or_default();
            if !entry.contains(&path) {
                entry.push(path);
            }
        }
        if round + 1 < k {
            for edge in round_edges {
                *penalty.entry(edge).or_insert(0.0) += 1.0;
            }
        }
    }
    paths
}

/// Stage 3: deterministic residual-capacity waterfilling over the
/// aggregated demand, visiting pairs in `(source, destination)` order
/// and spilling each pair's demand across `paths_for(s, d)` in
/// candidate order. `local_served` seeds the served accumulator (the
/// same-satellite demand from stage 1), preserving the original
/// single-pass summation order exactly.
pub(crate) fn waterfill_summary<'p, F>(
    n_flows: usize,
    offered: f64,
    local_served: f64,
    unattached: f64,
    demand: &BTreeMap<(usize, usize), f64>,
    paths_for: F,
    capacity: f64,
) -> ServedDemandSummary
where
    F: Fn(usize, usize) -> &'p [Vec<usize>],
{
    let mut served = local_served;
    let mut residual: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    let mut load: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    let mut dropped = 0.0;
    for (&(s, d), &dem) in demand {
        let mut rest = dem;
        for path in paths_for(s, d) {
            if rest <= 0.0 {
                break;
            }
            let available = path
                .windows(2)
                .map(|hop| residual.get(&(hop[0], hop[1])).copied().unwrap_or(capacity))
                .fold(f64::INFINITY, f64::min);
            let put = rest.min(available);
            if put <= 0.0 {
                continue;
            }
            for hop in path.windows(2) {
                *residual.entry((hop[0], hop[1])).or_insert(capacity) -= put;
                *load.entry((hop[0], hop[1])).or_insert(0.0) += put;
            }
            served += put;
            rest -= put;
        }
        dropped += rest.max(0.0);
    }

    let mut utilization: Vec<f64> = load.values().map(|&l| l / capacity).collect();
    utilization.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal));
    ServedDemandSummary {
        flows: n_flows,
        pairs: demand.len(),
        offered,
        served,
        dropped,
        unattached,
        served_fraction: if offered > 0.0 { served / offered } else { 0.0 },
        utilization_p50: percentile(&utilization, 0.50),
        utilization_p90: percentile(&utilization, 0.90),
        utilization_p99: percentile(&utilization, 0.99),
        utilization_max: utilization.last().copied().unwrap_or(0.0),
    }
}

/// Assigns `flows` over `topology` under finite per-link capacity:
/// attachment aggregation → per-source k-path candidates → deterministic
/// residual-capacity waterfilling. See the module docs for the scheme.
///
/// Dead satellites (a masked snapshot) never serve an endpoint and carry
/// no links, so the same call evaluates the degraded network.
///
/// # Errors
/// Currently infallible in practice (the `Result` mirrors the other
/// assignment entry points so capacity models that can fail slot in).
pub fn assign_capacity_constrained(
    snapshot: &Snapshot<'_>,
    topology: &Topology,
    flows: &[Flow],
    min_elevation: f64,
    config: &CapacityConfig,
) -> Result<ServedDemandSummary> {
    let capacity = config.link_capacity;
    let offered: f64 = flows.iter().map(|f| f.demand).sum();
    if flows.is_empty() {
        return Ok(ServedDemandSummary::empty(0, 0.0, 0.0));
    }

    // --- 1. attachment aggregation ----------------------------------
    let index = ServingIndex::new(*snapshot, min_elevation);
    let mut endpoint_cache: BTreeMap<(u64, u64), Option<usize>> = BTreeMap::new();
    let mut serve = |p: GeoPoint| -> Option<usize> {
        *endpoint_cache
            .entry((p.lat.to_bits(), p.lon.to_bits()))
            .or_insert_with(|| index.query(p).and_then(|(id, _)| topology.index_of(id)))
    };
    let tally = aggregate_attachments(flows, |_, flow| (serve(flow.src), serve(flow.dst)));
    let AttachmentTally { unattached, local_served, demand } = tally;
    if demand.is_empty() {
        let fraction = if offered > 0.0 { local_served / offered } else { 0.0 };
        return Ok(ServedDemandSummary {
            served: local_served,
            served_fraction: fraction,
            ..ServedDemandSummary::empty(flows.len(), unattached, offered)
        });
    }

    // --- 2. k-path candidates per source satellite -------------------
    let mut by_src: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for &(s, d) in demand.keys() {
        by_src.entry(s).or_default().push(d);
    }
    let k = config.k_paths.max(1);
    let mut paths: BTreeMap<(usize, usize), Vec<Vec<usize>>> = BTreeMap::new();
    for (&s, dsts) in &by_src {
        for (d, p) in k_paths_for_source(topology, s, dsts, k, None) {
            paths.insert((s, d), p);
        }
    }

    // --- 3. deterministic residual-capacity waterfilling -------------
    Ok(waterfill_summary(
        flows.len(),
        offered,
        local_served,
        unattached,
        &demand,
        |s, d| paths.get(&(s, d)).map_or(&[][..], Vec::as_slice),
        capacity,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotSeries;
    use crate::topology::{Constellation, GridTopologyConfig};
    use proptest::prelude::*;
    use ssplane_astro::kepler::OrbitalElements;
    use ssplane_astro::sunsync::sun_synchronous_orbit;
    use ssplane_astro::time::Epoch;
    use ssplane_demand::diurnal::DiurnalModel;
    use ssplane_demand::gravity::{gravity_flows, GravityConfig};
    use ssplane_demand::population::{PopulationConfig, PopulationGrid};
    use ssplane_demand::DemandModel;

    fn model() -> DemandModel {
        DemandModel::new(
            PopulationGrid::synthetic(PopulationConfig {
                lat_bins: 90,
                lon_bins: 180,
                n_cities: 400,
                seed: 42,
            })
            .unwrap(),
            DiurnalModel::default(),
        )
    }

    fn constellation() -> Constellation {
        let epoch = Epoch::J2000;
        let orbit = sun_synchronous_orbit(560.0).unwrap();
        let planes: Vec<Vec<OrbitalElements>> = (0..10)
            .map(|p| orbit.with_ltan(p as f64 * 2.4).plane_elements(epoch, 24).unwrap())
            .collect();
        Constellation::new(epoch, planes).unwrap()
    }

    fn workload(pairs: usize, capacity: f64, k_paths: usize) -> TrafficWorkload {
        let m = model();
        let gravity = gravity_flows(
            &m,
            &GravityConfig { pairs, sites: 48, seed: 5, ..Default::default() },
            1,
        )
        .unwrap();
        // Rescale the grid-mass rates to a few hundred capacity units so
        // saturation is reachable but not total.
        let total: f64 = gravity.iter().map(|g| g.rate).sum();
        TrafficWorkload::from_gravity(
            &gravity,
            120.0 / total,
            CapacityConfig { link_capacity: capacity, k_paths },
        )
    }

    #[test]
    fn served_plus_dropped_plus_unattached_is_offered() {
        let c = constellation();
        let series = SnapshotSeries::build(&c, &[Epoch::J2000]).unwrap();
        let snap = series.snapshot(0);
        let topo = Topology::plus_grid(&snap, GridTopologyConfig::default()).unwrap();
        let w = workload(5000, 1.0, 3);
        let summary =
            assign_capacity_constrained(&snap, &topo, &w.flows, 25f64.to_radians(), &w.capacity)
                .unwrap();
        assert_eq!(summary.flows, 5000);
        assert!(summary.pairs > 0, "flows must aggregate into satellite pairs");
        assert!(summary.pairs < 5000, "aggregation must collapse flows");
        let accounted = summary.served + summary.dropped + summary.unattached;
        assert!(
            (accounted - summary.offered).abs() < 1e-6 * summary.offered.max(1.0),
            "accounting leak: {accounted} vs offered {}",
            summary.offered
        );
        assert!(summary.served > 0.0);
        assert!(summary.served_fraction > 0.0 && summary.served_fraction <= 1.0);
        assert!(summary.utilization_max <= 1.0 + 1e-9, "capacity exceeded");
        assert!(summary.utilization_p50 <= summary.utilization_p90);
        assert!(summary.utilization_p90 <= summary.utilization_p99);
        assert!(summary.utilization_p99 <= summary.utilization_max);
    }

    #[test]
    fn unconstrained_capacity_serves_everything_attached_and_connected() {
        let c = constellation();
        let series = SnapshotSeries::build(&c, &[Epoch::J2000]).unwrap();
        let snap = series.snapshot(0);
        let topo = Topology::plus_grid(&snap, GridTopologyConfig::default()).unwrap();
        let w = workload(2000, f64::INFINITY, 1);
        let summary =
            assign_capacity_constrained(&snap, &topo, &w.flows, 25f64.to_radians(), &w.capacity)
                .unwrap();
        if topo.is_connected() {
            assert!(summary.dropped.abs() < 1e-9, "infinite capacity must drop nothing");
        }
        assert!((summary.served + summary.unattached - summary.offered).abs() < 1e-6);
    }

    #[test]
    fn tighter_capacity_serves_less_and_more_paths_serve_more() {
        let c = constellation();
        let series = SnapshotSeries::build(&c, &[Epoch::J2000]).unwrap();
        let snap = series.snapshot(0);
        let topo = Topology::plus_grid(&snap, GridTopologyConfig::default()).unwrap();
        let min_elev = 25f64.to_radians();
        let loose = workload(4000, 4.0, 3);
        let tight = workload(4000, 0.5, 3);
        let a = assign_capacity_constrained(&snap, &topo, &loose.flows, min_elev, &loose.capacity)
            .unwrap();
        let b = assign_capacity_constrained(&snap, &topo, &tight.flows, min_elev, &tight.capacity)
            .unwrap();
        assert!(b.served <= a.served + 1e-9, "tighter links cannot serve more");
        // With saturation present, extra candidate paths only help.
        let k1 = workload(4000, 0.5, 1);
        let single =
            assign_capacity_constrained(&snap, &topo, &k1.flows, min_elev, &k1.capacity).unwrap();
        assert!(
            b.served >= single.served - 1e-9,
            "k=3 ({}) must serve at least k=1 ({})",
            b.served,
            single.served
        );
    }

    #[test]
    fn degraded_network_serves_no_more_than_intact() {
        let c = constellation();
        let series = SnapshotSeries::build(&c, &[Epoch::J2000]).unwrap();
        let snap = series.snapshot(0);
        let topo = Topology::plus_grid(&snap, GridTopologyConfig::default()).unwrap();
        let w = workload(3000, 1.0, 3);
        let min_elev = 25f64.to_radians();
        let intact =
            assign_capacity_constrained(&snap, &topo, &w.flows, min_elev, &w.capacity).unwrap();
        // Kill 10% of the fleet as an adversary would: one whole plane
        // (24 of 240) — concentrated capacity loss, not scattered noise.
        let mut mask = vec![true; snap.total_sats()];
        for (flat, alive) in mask.iter_mut().enumerate() {
            if flat < 24 {
                *alive = false;
            }
        }
        let masked = snap.with_alive(&mask);
        let degraded_topo = topo.masked(&mask);
        let degraded =
            assign_capacity_constrained(&masked, &degraded_topo, &w.flows, min_elev, &w.capacity)
                .unwrap();
        assert!(
            degraded.served_fraction < intact.served_fraction,
            "10% loss must cut served demand: {} vs {}",
            degraded.served_fraction,
            intact.served_fraction
        );
        let rerun =
            assign_capacity_constrained(&masked, &degraded_topo, &w.flows, min_elev, &w.capacity)
                .unwrap();
        assert_eq!(degraded, rerun, "assignment must be deterministic");
    }

    #[test]
    fn empty_flow_list_is_all_zeros() {
        let c = constellation();
        let series = SnapshotSeries::build(&c, &[Epoch::J2000]).unwrap();
        let snap = series.snapshot(0);
        let topo = Topology::plus_grid(&snap, GridTopologyConfig::default()).unwrap();
        let summary =
            assign_capacity_constrained(&snap, &topo, &[], 0.5, &CapacityConfig::default())
                .unwrap();
        assert_eq!(summary.flows, 0);
        assert_eq!(summary.offered, 0.0);
        assert_eq!(summary.served_fraction, 0.0);
        assert_eq!(summary.utilization_max, 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// The capacity invariant as a property: whatever the seed,
        /// capacity, and path budget, no directed link ever carries more
        /// than its capacity (checked through the utilization ceiling)
        /// and the demand accounting never leaks.
        #[test]
        fn no_link_ever_exceeds_capacity(
            seed in 0u64..100,
            capacity in 0.1f64..4.0,
            k_paths in 1usize..5,
        ) {
            let m = model();
            let gravity = gravity_flows(
                &m,
                &GravityConfig { pairs: 1500, sites: 32, seed, ..Default::default() },
                1,
            ).unwrap();
            let total: f64 = gravity.iter().map(|g| g.rate).sum();
            let w = TrafficWorkload::from_gravity(
                &gravity,
                90.0 / total,
                CapacityConfig { link_capacity: capacity, k_paths },
            );
            let c = constellation();
            let series = SnapshotSeries::build(&c, &[Epoch::J2000]).unwrap();
            let snap = series.snapshot(0);
            let topo = Topology::plus_grid(&snap, GridTopologyConfig::default()).unwrap();
            let s = assign_capacity_constrained(
                &snap, &topo, &w.flows, 25f64.to_radians(), &w.capacity,
            ).unwrap();
            prop_assert!(s.utilization_max <= 1.0 + 1e-9, "utilization {}", s.utilization_max);
            let accounted = s.served + s.dropped + s.unattached;
            prop_assert!((accounted - s.offered).abs() < 1e-6 * s.offered.max(1.0));
        }
    }
}
