//! Property-based tests for the networking layer.

use proptest::prelude::*;
use ssplane_astro::kepler::OrbitalElements;
use ssplane_astro::linalg::Vec3;
use ssplane_astro::sunsync::sun_synchronous_orbit;
use ssplane_astro::time::Epoch;
use ssplane_lsn::routing::shortest_path;
use ssplane_lsn::spares::spares_for_availability;
use ssplane_lsn::topology::{line_of_sight, Constellation, GridTopologyConfig, SatId, Topology};

fn small_constellation(planes: usize, slots: usize) -> Constellation {
    let epoch = Epoch::J2000;
    let orbit = sun_synchronous_orbit(560.0).unwrap();
    let element_planes: Vec<Vec<OrbitalElements>> = (0..planes)
        .map(|p| orbit.with_ltan(6.0 + 1.3 * p as f64).plane_elements(epoch, slots).unwrap())
        .collect();
    Constellation::new(epoch, element_planes).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn line_of_sight_symmetric(
        ax in -9000.0f64..9000.0, ay in -9000.0f64..9000.0, az in -9000.0f64..9000.0,
        bx in -9000.0f64..9000.0, by in -9000.0f64..9000.0, bz in -9000.0f64..9000.0,
    ) {
        let a = Vec3::new(ax, ay, az);
        let b = Vec3::new(bx, by, bz);
        prop_assert_eq!(line_of_sight(a, b, 80.0), line_of_sight(b, a, 80.0));
    }

    #[test]
    fn routes_are_valid_walks(
        p1 in 0usize..4, s1 in 0usize..8,
        p2 in 0usize..4, s2 in 0usize..8,
    ) {
        let c = small_constellation(4, 8);
        let topo = Topology::plus_grid(&c, Epoch::J2000, GridTopologyConfig::default()).unwrap();
        let from = SatId { plane: p1, slot: s1 };
        let to = SatId { plane: p2, slot: s2 };
        match shortest_path(&topo, from, to) {
            Ok((hops, km)) => {
                prop_assert_eq!(*hops.first().unwrap(), from);
                prop_assert_eq!(*hops.last().unwrap(), to);
                prop_assert!(km >= 0.0);
                // Each consecutive pair must be an actual link.
                for w in hops.windows(2) {
                    let ia = topo.index_of(w[0]).unwrap();
                    let ib = topo.index_of(w[1]).unwrap();
                    prop_assert!(
                        topo.neighbors(ia).iter().any(|&(v, _)| v == ib),
                        "hop {:?} -> {:?} is not a link", w[0], w[1]
                    );
                }
                // No repeated nodes (it is a path).
                let mut sorted = hops.clone();
                sorted.sort();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), hops.len());
            }
            Err(ssplane_lsn::LsnError::NoRoute) => {} // disconnected is legal
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    #[test]
    fn shortest_path_triangle_inequality(
        s1 in 0usize..8, s2 in 0usize..8, s3 in 0usize..8,
    ) {
        let c = small_constellation(3, 8);
        let topo = Topology::plus_grid(&c, Epoch::J2000, GridTopologyConfig::default()).unwrap();
        let a = SatId { plane: 0, slot: s1 };
        let b = SatId { plane: 1, slot: s2 };
        let d = SatId { plane: 2, slot: s3 };
        if let (Ok((_, ab)), Ok((_, bd)), Ok((_, ad))) = (
            shortest_path(&topo, a, b),
            shortest_path(&topo, b, d),
            shortest_path(&topo, a, d),
        ) {
            prop_assert!(ad <= ab + bd + 1e-9, "ad {ad} > ab {ab} + bd {bd}");
        }
    }

    #[test]
    fn spares_monotone_in_rate_and_confidence(
        lambda in 0.0f64..20.0,
        p_exp in -4.0f64..-1.0,
    ) {
        let p = 10f64.powf(p_exp);
        let k = spares_for_availability(lambda, p).unwrap();
        let k_more_failures = spares_for_availability(lambda + 1.0, p).unwrap();
        prop_assert!(k_more_failures >= k);
        let k_stricter = spares_for_availability(lambda, p / 10.0).unwrap();
        prop_assert!(k_stricter >= k);
        // Poisson mean bound: k is at least lambda - a few sigma.
        prop_assert!((k as f64) >= lambda - 4.0 * lambda.sqrt() - 1.0);
    }
}
