//! Property-based tests for the networking layer, including the
//! snapshot-parity suite: the SoA-cached, sorted-search
//! [`Topology::plus_grid`] must produce exactly the links and adjacency
//! of the legacy per-call-position construction over arbitrary plane
//! sets.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssplane_astro::geo::GeoPoint;
use ssplane_astro::kepler::OrbitalElements;
use ssplane_astro::linalg::Vec3;
use ssplane_astro::sunsync::sun_synchronous_orbit;
use ssplane_astro::time::Epoch;
use ssplane_lsn::optimizer::{AttackObjective, DegradedEvaluator};
use ssplane_lsn::percolation::{
    keyed_ordering, percolation_sweep, plane_spread_ordering, random_ordering, ClusterTracker,
};
use ssplane_lsn::routing::{serving_satellite, shortest_path, ServingIndex};
use ssplane_lsn::snapshot::SnapshotSeries;
use ssplane_lsn::spares::spares_for_availability;
use ssplane_lsn::topology::{line_of_sight, Constellation, GridTopologyConfig, SatId, Topology};
use ssplane_lsn::traffic::Flow;

fn small_constellation(planes: usize, slots: usize) -> Constellation {
    let epoch = Epoch::J2000;
    let orbit = sun_synchronous_orbit(560.0).unwrap();
    let element_planes: Vec<Vec<OrbitalElements>> = (0..planes)
        .map(|p| orbit.with_ltan(6.0 + 1.3 * p as f64).plane_elements(epoch, slots).unwrap())
        .collect();
    Constellation::new(epoch, element_planes).unwrap()
}

fn snapshot_grid(c: &Constellation, t: Epoch, config: GridTopologyConfig) -> Topology {
    let series = SnapshotSeries::build(c, &[t]).unwrap();
    Topology::plus_grid(&series.snapshot(0), config).unwrap()
}

/// A constellation of sun-synchronous planes with per-plane LTAN, slot
/// count, and phase offset drawn from the strategy inputs — "random
/// plane sets" in the parity property.
fn random_constellation(altitude_km: f64, plane_params: &[(f64, usize)]) -> Constellation {
    let epoch = Epoch::J2000;
    let orbit = sun_synchronous_orbit(altitude_km).unwrap();
    let element_planes: Vec<Vec<OrbitalElements>> = plane_params
        .iter()
        .map(|&(ltan, slots)| orbit.with_ltan(ltan).plane_elements(epoch, slots).unwrap())
        .collect();
    Constellation::new(epoch, element_planes).unwrap()
}

/// Asserts that two topologies are identical: same canonical link list
/// (order included) and the same adjacency lists entry for entry. The
/// legacy construction may emit a link's endpoints in either orientation,
/// so links are compared after canonicalizing to `(min, max)` flat order.
fn assert_topologies_identical(legacy: &Topology, snapshot: &Topology) {
    assert_eq!(legacy.n_nodes(), snapshot.n_nodes());
    assert_eq!(legacy.links.len(), snapshot.links.len(), "link counts diverge");
    for (l, s) in legacy.links.iter().zip(&snapshot.links) {
        let (lf, lt) = (legacy.index_of(l.a).unwrap(), legacy.index_of(l.b).unwrap());
        let canonical = if lf < lt { (l.a, l.b) } else { (l.b, l.a) };
        assert_eq!((s.a, s.b), canonical, "link endpoint order diverged");
        assert!(
            snapshot.index_of(s.a).unwrap() < snapshot.index_of(s.b).unwrap(),
            "snapshot link not canonical: {:?} -> {:?}",
            s.a,
            s.b
        );
        assert_eq!(l.length_km, s.length_km, "link length diverged for {:?}-{:?}", s.a, s.b);
    }
    for i in 0..legacy.n_nodes() {
        assert_eq!(legacy.neighbors(i), snapshot.neighbors(i), "adjacency of node {i} diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn line_of_sight_symmetric(
        ax in -9000.0f64..9000.0, ay in -9000.0f64..9000.0, az in -9000.0f64..9000.0,
        bx in -9000.0f64..9000.0, by in -9000.0f64..9000.0, bz in -9000.0f64..9000.0,
    ) {
        let a = Vec3::new(ax, ay, az);
        let b = Vec3::new(bx, by, bz);
        prop_assert_eq!(line_of_sight(a, b, 80.0), line_of_sight(b, a, 80.0));
    }

    #[test]
    fn routes_are_valid_walks(
        p1 in 0usize..4, s1 in 0usize..8,
        p2 in 0usize..4, s2 in 0usize..8,
    ) {
        let c = small_constellation(4, 8);
        let topo = snapshot_grid(&c, Epoch::J2000, GridTopologyConfig::default());
        let from = SatId { plane: p1, slot: s1 };
        let to = SatId { plane: p2, slot: s2 };
        match shortest_path(&topo, from, to) {
            Ok((hops, km)) => {
                prop_assert_eq!(*hops.first().unwrap(), from);
                prop_assert_eq!(*hops.last().unwrap(), to);
                prop_assert!(km >= 0.0);
                // Each consecutive pair must be an actual link.
                for w in hops.windows(2) {
                    let ia = topo.index_of(w[0]).unwrap();
                    let ib = topo.index_of(w[1]).unwrap();
                    prop_assert!(
                        topo.neighbors(ia).iter().any(|&(v, _)| v == ib),
                        "hop {:?} -> {:?} is not a link", w[0], w[1]
                    );
                }
                // No repeated nodes (it is a path).
                let mut sorted = hops.clone();
                sorted.sort();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), hops.len());
            }
            Err(ssplane_lsn::LsnError::NoRoute) => {} // disconnected is legal
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    #[test]
    fn shortest_path_triangle_inequality(
        s1 in 0usize..8, s2 in 0usize..8, s3 in 0usize..8,
    ) {
        let c = small_constellation(3, 8);
        let topo = snapshot_grid(&c, Epoch::J2000, GridTopologyConfig::default());
        let a = SatId { plane: 0, slot: s1 };
        let b = SatId { plane: 1, slot: s2 };
        let d = SatId { plane: 2, slot: s3 };
        if let (Ok((_, ab)), Ok((_, bd)), Ok((_, ad))) = (
            shortest_path(&topo, a, b),
            shortest_path(&topo, b, d),
            shortest_path(&topo, a, d),
        ) {
            prop_assert!(ad <= ab + bd + 1e-9, "ad {ad} > ab {ab} + bd {bd}");
        }
    }

    #[test]
    fn snapshot_plus_grid_matches_legacy_construction(
        altitude_km in 450.0f64..1200.0,
        ltans in collection::vec(0.0f64..24.0, 1usize..7),
        slot_counts in collection::vec(1usize..45, 1usize..7),
        dt in 0.0f64..172_800.0,
        wrap in 0usize..2,
        max_range_km in 1500.0f64..6000.0,
    ) {
        // Pair the sampled LTANs and slot counts into a random plane set
        // (the shorter list bounds the plane count).
        // (both vec strategies have minimum length 1, so at least one
        // plane always survives the zip)
        let plane_params: Vec<(f64, usize)> =
            ltans.iter().copied().zip(slot_counts.iter().copied()).collect();
        let c = random_constellation(altitude_km, &plane_params);
        let t = Epoch::J2000 + dt;
        let config = GridTopologyConfig {
            max_range_km,
            wrap_planes: wrap == 1,
            ..GridTopologyConfig::default()
        };
        let legacy = Topology::plus_grid_at(&c, t, config).unwrap();
        let series = SnapshotSeries::build(&c, &[t]).unwrap();
        let snapshot = Topology::plus_grid(&series.snapshot(0), config).unwrap();
        assert_topologies_identical(&legacy, &snapshot);
    }

    #[test]
    fn snapshot_plus_grid_matches_legacy_on_walker_chunks(
        total in 40usize..200,
        planes in 2usize..9,
        phasing in 0usize..4,
        inclination_deg in 40.0f64..90.0,
        dt in 0.0f64..86_400.0,
    ) {
        // Walker-delta geometry reaches plus_grid through
        // `Constellation::from_planes` in the scenario engine; the parity
        // must hold there too.
        let per_plane = (total / planes).max(1);
        let count = per_plane * planes;
        let pattern = ssplane_astro::walker::WalkerDelta::new(
            550.0,
            inclination_deg.to_radians(),
            count,
            planes,
            phasing % planes,
        )
        .unwrap()
        .generate()
        .unwrap();
        let element_planes: Vec<Vec<OrbitalElements>> =
            pattern.chunks(per_plane).map(<[_]>::to_vec).collect();
        let c = Constellation::from_planes(Epoch::J2000, element_planes).unwrap();
        let t = Epoch::J2000 + dt;
        let config = GridTopologyConfig::default();
        let legacy = Topology::plus_grid_at(&c, t, config).unwrap();
        let series = SnapshotSeries::build(&c, &[t]).unwrap();
        let snapshot = Topology::plus_grid(&series.snapshot(0), config).unwrap();
        assert_topologies_identical(&legacy, &snapshot);
    }

    /// Cross-shell ground attachment: the pruned [`ServingIndex`] (whose
    /// declination bands are now per satellite, from each satellite's own
    /// altitude) must return exactly what the brute-force
    /// nearest-satellite scan returns on random multi-shell geometries —
    /// same winner, same elevation, same lowest-flat-index tie-break —
    /// both unmasked and under a random alive mask.
    #[test]
    fn serving_index_matches_brute_force_across_shells(
        shells in collection::vec(
            (450.0f64..1200.0, 40.0f64..98.0, 2usize..5, 3usize..9),
            2usize..4,
        ),
        min_elevation_deg in 5.0f64..40.0,
        dt in 0.0f64..86_400.0,
        kill in 0.0f64..0.7,
        mask_seed in 0u64..10_000,
        ground in collection::vec((-80.0f64..80.0, -180.0f64..180.0), 4usize..9),
    ) {
        // Each shell contributes its own Walker-delta plane block at its
        // own altitude and inclination; concatenating the plane lists
        // yields the mixed-altitude constellation the index must span.
        let mut element_planes: Vec<Vec<OrbitalElements>> = Vec::new();
        for &(altitude_km, inclination_deg, planes, per_plane) in &shells {
            let pattern = ssplane_astro::walker::WalkerDelta::new(
                altitude_km,
                inclination_deg.to_radians(),
                planes * per_plane,
                planes,
                0,
            )
            .unwrap()
            .generate()
            .unwrap();
            element_planes.extend(pattern.chunks(per_plane).map(<[_]>::to_vec));
        }
        let c = Constellation::from_planes(Epoch::J2000, element_planes).unwrap();
        let series = SnapshotSeries::build(&c, &[Epoch::J2000 + dt]).unwrap();
        let snapshot = series.snapshot(0);
        let min_elevation = min_elevation_deg.to_radians();
        let index = ServingIndex::new(snapshot, min_elevation);
        let mut rng = StdRng::seed_from_u64(mask_seed);
        let alive: Vec<bool> = (0..c.total_sats()).map(|_| rng.gen::<f64>() >= kill).collect();
        for &(lat, lon) in &ground {
            let g = GeoPoint::from_degrees(lat, lon);
            prop_assert_eq!(
                index.query(g),
                serving_satellite(&snapshot, g, min_elevation),
                "unmasked attachment diverged at ({}, {})", lat, lon
            );
            prop_assert_eq!(
                index.query_masked(g, &alive),
                serving_satellite(&snapshot.with_alive(&alive), g, min_elevation),
                "masked attachment diverged at ({}, {})", lat, lon
            );
        }
    }

    #[test]
    fn spares_monotone_in_rate_and_confidence(
        lambda in 0.0f64..20.0,
        p_exp in -4.0f64..-1.0,
    ) {
        let p = 10f64.powf(p_exp);
        let k = spares_for_availability(lambda, p).unwrap();
        let k_more_failures = spares_for_availability(lambda + 1.0, p).unwrap();
        prop_assert!(k_more_failures >= k);
        let k_stricter = spares_for_availability(lambda, p / 10.0).unwrap();
        prop_assert!(k_stricter >= k);
        // Poisson mean bound: k is at least lambda - a few sigma.
        prop_assert!((k as f64) >= lambda - 4.0 * lambda.sqrt() - 1.0);
    }

    #[test]
    fn cluster_tracker_matches_bfs_on_random_sunsync_masks(
        altitude_km in 450.0f64..1200.0,
        ltans in collection::vec(0.0f64..24.0, 2usize..7),
        slot_counts in collection::vec(2usize..20, 2usize..7),
        kill in 0.0f64..0.9,
        mask_seed in 0u64..10_000,
    ) {
        // The union-find giant-component tracker must agree with the BFS
        // reference on arbitrary alive masks over random sun-sync plane
        // sets.
        let plane_params: Vec<(f64, usize)> =
            ltans.iter().copied().zip(slot_counts.iter().copied()).collect();
        let c = random_constellation(altitude_km, &plane_params);
        let series = SnapshotSeries::build(&c, &[Epoch::J2000]).unwrap();
        let topo = Topology::plus_grid(&series.snapshot(0), GridTopologyConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(mask_seed);
        let alive: Vec<bool> = (0..topo.n_nodes()).map(|_| rng.gen::<f64>() >= kill).collect();
        let stats = ClusterTracker::from_alive(&topo, &alive).stats();
        prop_assert_eq!(stats.largest, topo.largest_component_among(&alive));
        prop_assert_eq!(stats.active, alive.iter().filter(|&&a| a).count());
        prop_assert!(stats.sum_sq >= (stats.largest as u64).pow(2), "second moment holds the giant");
    }

    #[test]
    fn cluster_tracker_matches_bfs_on_random_walker_masks(
        total in 40usize..160,
        planes in 2usize..8,
        inclination_deg in 40.0f64..90.0,
        kill in 0.0f64..0.9,
        mask_seed in 0u64..10_000,
    ) {
        let per_plane = (total / planes).max(1);
        let count = per_plane * planes;
        let pattern = ssplane_astro::walker::WalkerDelta::new(
            550.0,
            inclination_deg.to_radians(),
            count,
            planes,
            0,
        )
        .unwrap()
        .generate()
        .unwrap();
        let element_planes: Vec<Vec<OrbitalElements>> =
            pattern.chunks(per_plane).map(<[_]>::to_vec).collect();
        let c = Constellation::from_planes(Epoch::J2000, element_planes).unwrap();
        let series = SnapshotSeries::build(&c, &[Epoch::J2000]).unwrap();
        let topo = Topology::plus_grid(&series.snapshot(0), GridTopologyConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(mask_seed);
        let alive: Vec<bool> = (0..topo.n_nodes()).map(|_| rng.gen::<f64>() >= kill).collect();
        let stats = ClusterTracker::from_alive(&topo, &alive).stats();
        prop_assert_eq!(stats.largest, topo.largest_component_among(&alive));
        prop_assert_eq!(stats.active, alive.iter().filter(|&&a| a).count());
    }

    #[test]
    fn percolation_sweep_matches_recompute_across_orderings(
        ltans in collection::vec(0.0f64..24.0, 2usize..6),
        slot_counts in collection::vec(2usize..14, 2usize..6),
        steps in 1usize..40,
        order_seed in 0u64..10_000,
        which in 0usize..3,
    ) {
        // Incremental-vs-recompute equivalence: every sample of the
        // reverse-replay sweep must equal a from-scratch union-find (and
        // the BFS reference) over the same prefix mask — for targeted,
        // random, and keyed removal orderings alike.
        let plane_params: Vec<(f64, usize)> =
            ltans.iter().copied().zip(slot_counts.iter().copied()).collect();
        let c = random_constellation(700.0, &plane_params);
        let series = SnapshotSeries::build(&c, &[Epoch::J2000]).unwrap();
        let topo = Topology::plus_grid(&series.snapshot(0), GridTopologyConfig::default()).unwrap();
        let n = topo.n_nodes();
        let order = match which {
            0 => plane_spread_ordering(&topo),
            1 => random_ordering(n, order_seed),
            _ => keyed_ordering(&(0..n).map(|i| ((i * 37) % 11) as f64).collect::<Vec<f64>>()),
        };
        let curve = percolation_sweep(&topo, &order, steps);
        prop_assert_eq!(curve.len(), steps + 1);
        for k in 0..curve.len() {
            let removed = curve.removed[k];
            let mut alive = vec![true; n];
            for &v in &order[..removed] {
                alive[v] = false;
            }
            let stats = ClusterTracker::from_alive(&topo, &alive).stats();
            prop_assert_eq!(stats.largest, topo.largest_component_among(&alive), "step {}", k);
            prop_assert_eq!(curve.giant_fraction[k], stats.largest as f64 / n as f64);
            prop_assert_eq!(curve.susceptibility[k], stats.susceptibility());
            prop_assert_eq!(curve.mean_finite_cluster[k], stats.mean_finite_cluster());
        }
    }
}

/// A small city mesh for the attack-search evaluator properties: six
/// terminals, all-pairs unit demand (15 flows).
fn attack_flows() -> Vec<Flow> {
    let cities =
        [(40.7, -74.0), (51.5, -0.1), (35.7, 139.7), (-23.5, -46.6), (19.1, 72.9), (1.3, 103.8)];
    let mut out = Vec::new();
    for (i, &(a_lat, a_lon)) in cities.iter().enumerate() {
        for &(b_lat, b_lon) in cities.iter().skip(i + 1) {
            out.push(Flow {
                src: GeoPoint::from_degrees(a_lat, a_lon),
                dst: GeoPoint::from_degrees(b_lat, b_lon),
                demand: 1.0,
            });
        }
    }
    out
}

const ATTACK_OBJECTIVES: [AttackObjective; 5] = [
    AttackObjective::RoutedFraction,
    AttackObjective::Connectivity,
    AttackObjective::LoadInflation,
    AttackObjective::ServedDemand,
    AttackObjective::MaskingThreshold,
];

// Each case builds a full evaluator (topologies + intact routing for two
// slots), so this block runs far fewer cases than the cheap ones above.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The incremental scorer is byte-identical to the from-scratch
    /// `Topology::masked` + re-route evaluation on random sun-synchronous
    /// geometries under random k-satellite masks, including the zero-loss
    /// and wipeout extremes, for every attack objective.
    #[test]
    fn incremental_scoring_matches_full_on_random_sunsync_sat_masks(
        ltans in collection::vec(0.0f64..24.0, 2usize..5),
        slot_counts in collection::vec(4usize..9, 2usize..5),
        kill in 0.05f64..0.6,
        mask_seed in 0u64..10_000,
        which in 0usize..5,
    ) {
        let plane_params: Vec<(f64, usize)> = ltans
            .iter()
            .copied()
            .zip(slot_counts.iter().copied())
            .collect();
        let c = random_constellation(620.0, &plane_params);
        let series =
            SnapshotSeries::build(&c, &[Epoch::J2000, Epoch::J2000 + 300.0]).unwrap();
        let flows = attack_flows();
        let evaluator = DegradedEvaluator::new(
            &series,
            &flows,
            20f64.to_radians(),
            GridTopologyConfig::default(),
        )
        .unwrap();
        let objective = ATTACK_OBJECTIVES[which];
        let ids: Vec<SatId> = series.snapshot(0).ids().collect();
        let mut rng = StdRng::seed_from_u64(mask_seed);
        let destroyed: Vec<SatId> =
            ids.iter().copied().filter(|_| rng.gen::<f64>() < kill).collect();
        let scorer = evaluator.incremental_scorer(objective);
        for victims in [Vec::new(), destroyed, ids] {
            let full = evaluator.score_attack(&victims, objective).unwrap();
            let fast = scorer.score(&victims).unwrap();
            prop_assert_eq!(
                full.to_bits(),
                fast.to_bits(),
                "objective {:?}, |victims| = {}: full {} vs incremental {}",
                objective,
                victims.len(),
                full,
                fast
            );
        }
    }

    /// Same property on Walker-delta geometries under whole-plane masks
    /// grown as a prefix chain (the greedy-frontier shape), so repairs
    /// delta off the previous prefix state in the LRU rather than the
    /// intact trees.
    #[test]
    fn incremental_scoring_matches_full_on_walker_plane_prefixes(
        total in 36usize..100,
        planes in 3usize..7,
        inclination_deg in 45.0f64..80.0,
        mask_seed in 0u64..10_000,
        which in 0usize..5,
    ) {
        let per_plane = (total / planes).max(4);
        let count = per_plane * planes;
        let pattern = ssplane_astro::walker::WalkerDelta::new(
            550.0,
            inclination_deg.to_radians(),
            count,
            planes,
            0,
        )
        .unwrap()
        .generate()
        .unwrap();
        let element_planes: Vec<Vec<OrbitalElements>> =
            pattern.chunks(per_plane).map(<[_]>::to_vec).collect();
        let c = Constellation::from_planes(Epoch::J2000, element_planes).unwrap();
        let series =
            SnapshotSeries::build(&c, &[Epoch::J2000, Epoch::J2000 + 300.0]).unwrap();
        let flows = attack_flows();
        let evaluator = DegradedEvaluator::new(
            &series,
            &flows,
            20f64.to_radians(),
            GridTopologyConfig::default(),
        )
        .unwrap();
        let objective = ATTACK_OBJECTIVES[which];
        let scorer = evaluator.incremental_scorer(objective);
        let mut rng = StdRng::seed_from_u64(mask_seed);
        let mut order: Vec<usize> = (0..planes).collect();
        for i in 0..planes - 1 {
            let j = i + rng.gen_index(planes - i);
            order.swap(i, j);
        }
        let depth = 1 + rng.gen_index(planes.min(3));
        let mut victims: Vec<SatId> = Vec::new();
        for &p in &order[..depth] {
            victims.extend((0..per_plane).map(|s| SatId { plane: p, slot: s }));
            victims.sort_unstable();
            let full = evaluator.score_attack(&victims, objective).unwrap();
            let fast = scorer.score(&victims).unwrap();
            prop_assert_eq!(
                full.to_bits(),
                fast.to_bits(),
                "objective {:?}, prefix of {} planes: full {} vs incremental {}",
                objective,
                victims.len() / per_plane,
                full,
                fast
            );
        }
    }
}
