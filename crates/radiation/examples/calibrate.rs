//! Calibration probe: prints fluence-vs-inclination and key flux points so
//! belt amplitudes can be tuned against the paper's Fig. 6/7 decades.

use ssplane_astro::geo::GeoPoint;
use ssplane_astro::kepler::OrbitalElements;
use ssplane_astro::time::Epoch;
use ssplane_radiation::fluence::daily_fluence;
use ssplane_radiation::flux::{RadiationEnvironment, Species};

fn main() {
    let env = RadiationEnvironment::default();
    let epoch = Epoch::from_calendar(2013, 6, 1, 0, 0, 0.0);

    println!("--- point fluxes at 560 km (epoch 2013-06-01) ---");
    for (name, lat, lon) in [
        ("SAA core      ", -26.0, -50.0),
        ("SAA fringe    ", -15.0, -30.0),
        ("Pacific eq    ", 0.0, 170.0),
        ("N horn (0E)   ", 60.0, 0.0),
        ("N horn (90W)  ", 55.0, -90.0),
        ("S horn (0E)   ", -70.0, 0.0),
        ("mid-lat N     ", 35.0, 0.0),
        ("pole N        ", 85.0, 0.0),
    ] {
        let p = GeoPoint::from_degrees(lat, lon);
        let e = env.flux_at(Species::Electron, p, 560.0, epoch).unwrap();
        let pr = env.flux_at(Species::Proton, p, 560.0, epoch).unwrap();
        println!("{name} e = {e:10.3e}  p = {pr:10.3e}");
    }

    println!("--- daily fluence vs inclination at 560 km ---");
    for inc in [20.0f64, 30.0, 40.0, 50.0, 53.0, 60.0, 65.0, 70.0, 75.0, 80.0, 85.0, 90.0, 97.64] {
        let el = OrbitalElements::circular(560.0, inc.to_radians(), 0.0, 0.0).unwrap();
        let f = daily_fluence(&env, &el, epoch, 30.0).unwrap();
        println!("i = {inc:6.2}  e = {:10.3e}  p = {:10.3e}", f.electron, f.proton);
    }
}
